package sim

import (
	"reflect"
	"testing"

	"mobilecache/internal/invariant"
	"mobilecache/internal/sample"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Property (satellite of PR 5): a disabled sampling spec is provably
// zero-cost — for every standard machine the sampled entry points
// return a RunReport DeepEqual to the unsampled ones.
func TestSampledFactorOneDeepEqual(t *testing.T) {
	t.Cleanup(SetAuditMode(invariant.ModeStrict))
	prof := workload.Profiles()[0]
	const seed, accesses = 1, 20_000
	for _, cfg := range StandardMachines() {
		store := tracestore.New(0)
		want, err := RunWorkloadFrom(store, cfg, prof, seed, accesses)
		if err != nil {
			t.Fatalf("%s full: %v", cfg.Name, err)
		}
		for _, spec := range []sample.Spec{{}, {Factor: 1}, {Factor: 1, Hash: true}} {
			got, err := RunWorkloadFromSampled(store, cfg, prof, seed, accesses, spec)
			if err != nil {
				t.Fatalf("%s sampled %v: %v", cfg.Name, spec, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: factor-1 sampled report differs from unsampled (spec %+v)", cfg.Name, spec)
			}
		}
		// Generator-driven path too.
		got, err := RunWorkloadSampled(cfg, prof, seed, accesses, sample.Spec{Factor: 1})
		if err != nil {
			t.Fatalf("%s generator sampled: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: generator factor-1 sampled report differs", cfg.Name)
		}
	}
}

func TestSampledWarmFactorOneDeepEqual(t *testing.T) {
	t.Cleanup(SetAuditMode(invariant.ModeStrict))
	prof := workload.Profiles()[1]
	const seed, warmup, measure = 7, 5_000, 15_000
	for _, cfg := range StandardMachines() {
		store := tracestore.New(0)
		want, err := RunWarmWorkloadFrom(store, cfg, prof, seed, warmup, measure)
		if err != nil {
			t.Fatalf("%s full warm: %v", cfg.Name, err)
		}
		got, err := RunWarmWorkloadFromSampled(store, cfg, prof, seed, warmup, measure, sample.Spec{Factor: 1})
		if err != nil {
			t.Fatalf("%s sampled warm: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: factor-1 warm sampled report differs from unsampled", cfg.Name)
		}
	}
}

// Sampled runs must be strict-audit clean twice over: the raw
// counters are audited inside the entry point, and the scaled report
// must satisfy the same conservation laws (uniform scaling preserves
// every exact identity).
func TestSampledStrictAuditCleanRawAndScaled(t *testing.T) {
	t.Cleanup(SetAuditMode(invariant.ModeStrict))
	prof := workload.Profiles()[2]
	for _, cfg := range StandardMachines() {
		for _, spec := range []sample.Spec{{Factor: 8}, {Factor: 8, Hash: true}} {
			store := tracestore.New(0)
			rep, err := RunWorkloadFromSampled(store, cfg, prof, 3, 40_000, spec)
			if err != nil {
				t.Fatalf("%s %s: %v", cfg.Name, spec, err)
			}
			if rep.SampleFactor != 8 {
				t.Fatalf("%s %s: SampleFactor = %d, want 8", cfg.Name, spec, rep.SampleFactor)
			}
			if vs := Audit(rep); len(vs) != 0 {
				t.Errorf("%s %s: scaled report violates invariants: %v", cfg.Name, spec, vs)
			}
		}
	}
}

// The scaled set-indexed counters of a factor-f run are exact
// multiples of f (every extensive counter is multiplied, never
// averaged), and the instruction redistribution in the filter makes
// the scaled instruction count land essentially on the full run's:
// dropped records' gaps are carried into the kept stream at 1/f, so
// the estimate is exact up to the trailing remainder. The access
// count is per-reference, not per-set — popularity of the selected
// groups is workload-dependent (>2x off nominal on zipfian apps) —
// so the scaler corrects it with the filter's measured total
// seen/kept ratio, which for a cold run reconstructs the full count
// exactly: the filter saw every raw record.
func TestSampledScalingShape(t *testing.T) {
	t.Cleanup(SetAuditMode(invariant.ModeStrict))
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[0]
	store := tracestore.New(0)
	full, err := RunWorkloadFrom(store, cfg, prof, 1, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, hash := range []bool{false, true} {
		for _, f := range []int{2, 4, 8} {
			rep, err := RunWorkloadFromSampled(store, cfg, prof, 1, 80_000, sample.Spec{Factor: f, Hash: hash})
			if err != nil {
				t.Fatalf("factor %d: %v", f, err)
			}
			uf := uint64(f)
			for name, v := range map[string]uint64{
				"cpu.cycles":  rep.CPU.Cycles,
				"l2.accesses": rep.L2.TotalAccesses(),
				"dram.reads":  rep.DRAMReads,
			} {
				if v%uf != 0 {
					t.Errorf("hash=%v factor %d: %s = %d not a multiple of the factor", hash, f, name, v)
				}
			}
			if d := int64(rep.CPU.Accesses) - int64(full.CPU.Accesses); d < -1 || d > 1 {
				t.Errorf("hash=%v factor %d: scaled accesses %d != full %d (cold-run ratio correction is exact)",
					hash, f, rep.CPU.Accesses, full.CPU.Accesses)
			}
			ratio := float64(rep.CPU.Instructions) / float64(full.CPU.Instructions)
			if ratio < 0.999 || ratio > 1.001 {
				t.Errorf("hash=%v factor %d: scaled instructions %d vs full %d (ratio %.5f) outside 0.1%%",
					hash, f, rep.CPU.Instructions, full.CPU.Instructions, ratio)
			}
			// Simulated time follows instructions plus stalls; stalls carry
			// set-sampling variance, so the bound is looser.
			cr := float64(rep.CPU.Cycles) / float64(full.CPU.Cycles)
			if cr < 0.95 || cr > 1.05 {
				t.Errorf("hash=%v factor %d: scaled cycles %d vs full %d (ratio %.3f) outside 5%%",
					hash, f, rep.CPU.Cycles, full.CPU.Cycles, cr)
			}
		}
	}
}

// Smoke accuracy bound at the sim level (the engine-level quick-matrix
// validation is the authoritative gate): at the default 1/8 spec the
// headline metrics stay within a loose bound on one machine/app pair.
func TestSampledAccuracySmoke(t *testing.T) {
	t.Cleanup(SetAuditMode(invariant.ModeStrict))
	cfg, err := MachineByName("sp-mr")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[0]
	store := tracestore.New(0)
	full, err := RunWorkloadFrom(store, cfg, prof, 1, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkloadFromSampled(store, cfg, prof, 1, 80_000, sample.Spec{Factor: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fullMR, sampMR := full.L2.MissRate(), rep.L2.MissRate(); fullMR > 0 {
		if d := (sampMR - fullMR) / fullMR; d > 0.05 || d < -0.05 {
			t.Errorf("miss rate rel err %.3f outside 5%%: full %.4f sampled %.4f", d, fullMR, sampMR)
		}
	}
	fullE, sampE := full.Energy.TotalJ(), rep.Energy.TotalJ()
	if d := (sampE - fullE) / fullE; d > 0.05 || d < -0.05 {
		t.Errorf("energy rel err %.3f outside 5%%: full %.4g sampled %.4g", d, fullE, sampE)
	}
}
