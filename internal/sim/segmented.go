package sim

import (
	"fmt"
	"runtime"
	"sync"

	"mobilecache/internal/config"
	"mobilecache/internal/core"
	"mobilecache/internal/cpu"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// This file implements segmented intra-cell replay: one (machine,
// workload) cell's record stream is split into contiguous segments,
// each replayed on its own freshly built machine from a warm state
// established by replaying a warmup prefix, and the per-segment
// measured deltas are stitched into one report. Because every segment
// is independent, they replay concurrently — the parallelism axis the
// engine's cell-level worker pool cannot reach when a sweep has fewer
// cells than cores.
//
// Two warmup regimes:
//
//   - Exact (Warmup < 0): segment k warms over the full prefix
//     [0, start_k). The machine state at measurement start is the
//     serial machine state at that record, the RunState is continuous
//     across warmup and measurement, and the stitched integer counters
//     (hits, misses, evictions, refreshes, cycles, DRAM traffic, the
//     partition trajectory) exactly equal the serial run's. Only the
//     float energy terms differ, at last-ulp association order, because
//     each segment's leakage integral is accumulated in its own sum.
//     Total replay work is O(Segments * N) — this mode is the
//     equivalence oracle, not the fast path.
//
//   - Approximate (Warmup >= 0): segment k warms over at most Warmup
//     records immediately preceding it. Total work is N + Segments *
//     Warmup, wall-clock divides by the worker count, and the stitched
//     counters carry a bounded cold-boundary error that the
//     engine.ValidateSegmented harness audits (see DESIGN.md for the
//     error model).
//
// The warmup/measure boundary inside one segment reuses the warm-diff
// machinery of RunWarm: all counters are cumulative, so the measured
// contribution is the difference of two snapshots, and the hierarchy's
// leakage clocks are synchronized once at the boundary so warmup-era
// leakage never leaks into the measured delta.

// DefaultSegmentWarmup is the per-segment warmup prefix used when a
// SegmentPlan leaves Warmup zero. The stitch error is dominated by
// L2-resident state the warmup fails to rebuild, so the prefix must
// cover the working set's reuse distance, not just the hot set: on the
// standard 1MB machines the measured miss-rate error collapses from
// ~6% at a 32k prefix to ~0.4% at 64k (the knee where warmup refills
// the fits-in-L2 working set) and keeps falling beyond it. 64k also
// spans two repartition epochs, letting the dynamic controller
// re-converge before measurement starts.
const DefaultSegmentWarmup = 65_536

// SegmentedMinAccesses is the cell size below which approximate
// segmented replay is not worth its overhead: each segment rebuilds a
// machine and replays a DefaultSegmentWarmup-sized prefix, so on a
// cell this small the warmup work rivals the measured work and the
// stitched answer costs more than the serial exact one (BENCH_PR9
// measured 0.92x/0.82x/0.76x of serial at 1/2/4 workers on a 600k
// cell on a single-core host).
const SegmentedMinAccesses = 262_144

// SegmentPlan describes how to split one cell's replay.
type SegmentPlan struct {
	// Segments is how many contiguous pieces the stream splits into.
	// <= 1 disables segmentation.
	Segments int
	// Warmup is the per-segment warmup prefix in records: >= 1 replays
	// that many records before each segment's measured range, 0 selects
	// DefaultSegmentWarmup, and < 0 selects exact full-prefix warmup
	// (bit-identical integer counters, no speedup — the oracle mode).
	Warmup int
	// Workers bounds how many segments replay concurrently; <= 0 means
	// one worker per segment. Like Force, Workers never joins a content
	// key: it changes wall clock, not the stitched result.
	Workers int
	// Force disables the serial auto-fallback (FallsBackToSerial), so
	// the segmented machinery runs even where it cannot pay for itself
	// — stitch-error audits, oracle equivalence tests and benchmark
	// emitters set it; sweeps leave it off.
	Force bool
}

// FallsBackToSerial reports whether an approximate plan should degrade
// to one serial exact replay of the n-record cell on a host with procs
// schedulable CPUs: with one CPU the segments just time-slice and the
// per-segment warmup replay is pure added work, and below
// SegmentedMinAccesses the warmups dominate at any width. Exact
// full-prefix plans (Warmup < 0) never fall back — they are the
// equivalence oracle and must exercise the stitching machinery — and
// Force overrides the heuristic outright. The serial answer is exact
// where the stitched one is approximate, so the fallback only ever
// improves accuracy; the honest cost is that a "segmented" request on
// such hosts or cells quietly reports exact numbers (DESIGN.md,
// "Segmented replay and the stitching error model").
func (p SegmentPlan) FallsBackToSerial(n, procs int) bool {
	return !p.Force && p.Warmup >= 0 && (procs <= 1 || n < SegmentedMinAccesses)
}

// Enabled reports whether the plan actually segments the replay.
func (p SegmentPlan) Enabled() bool { return p.Segments > 1 }

// Norm fills defaulted fields.
func (p SegmentPlan) Norm() SegmentPlan {
	if p.Warmup == 0 {
		p.Warmup = DefaultSegmentWarmup
	}
	if p.Workers <= 0 {
		p.Workers = p.Segments
	}
	return p
}

// Validate reports plan errors.
func (p SegmentPlan) Validate() error {
	if p.Segments < 1 {
		return fmt.Errorf("sim: segment plan needs >= 1 segments, got %d", p.Segments)
	}
	return nil
}

func addBreakdown(a *energy.Breakdown, b energy.Breakdown) {
	a.ReadJ += b.ReadJ
	a.WriteJ += b.WriteJ
	a.LeakageJ += b.LeakageJ
	a.RefreshJ += b.RefreshJ
}

func addEnergy(a *mem.EnergyReport, b mem.EnergyReport) {
	addBreakdown(&a.L1I, b.L1I)
	addBreakdown(&a.L1D, b.L1D)
	addBreakdown(&a.L2, b.L2)
	a.DRAMJ += b.DRAMJ
}

func addL2Stats(a *core.L2Stats, b core.L2Stats) {
	for d := 0; d < trace.NumDomains; d++ {
		a.Accesses[d] += b.Accesses[d]
		a.Hits[d] += b.Hits[d]
		a.Misses[d] += b.Misses[d]
	}
	a.Evictions += b.Evictions
	a.InterferenceEvictions += b.InterferenceEvictions
	a.Writebacks += b.Writebacks
	a.ExpiryInvalidations += b.ExpiryInvalidations
	a.Refreshes += b.Refreshes
	a.EagerWritebacks += b.EagerWritebacks
	a.CleanExpiries += b.CleanExpiries
	a.DirtyExpiries += b.DirtyExpiries
	a.FaultExpiries += b.FaultExpiries
}

// segmentResult is one segment's measured delta plus the end-state
// capacity snapshot (the last segment's wins in the stitched report).
type segmentResult struct {
	cpu      cpu.Result
	l2       core.L2Stats
	energy   mem.EnergyReport
	dramR    uint64
	dramW    uint64
	history  []core.PartitionDecision
	flush    uint64
	powered  uint64
	installd uint64
}

// RunSegmented splits the first `accesses` records of tr (0 or past the
// end means all of them) into plan.Segments contiguous segments,
// replays each on its own machine built from cfg — warmed per the
// plan's regime — and stitches the measured deltas into one report.
// Segments replay concurrently under plan.Workers. With Segments <= 1
// the replay is the ordinary serial RunTrace.
func RunSegmented(cfg config.Machine, name string, tr tracestore.Trace, accesses int, plan SegmentPlan) (RunReport, error) {
	if err := plan.Validate(); err != nil {
		return RunReport{}, err
	}
	n := 0
	switch {
	case tr.Records != nil:
		n = len(tr.Records)
	case tr.Packed != nil:
		n = tr.Packed.Len()
	default:
		return RunReport{}, fmt.Errorf("sim: segmented replay of empty trace")
	}
	if accesses > 0 && accesses < n {
		n = accesses
	}
	if n == 0 {
		return RunReport{}, fmt.Errorf("sim: segmented replay of zero records")
	}
	plan = plan.Norm()
	segments := plan.Segments
	if plan.FallsBackToSerial(n, runtime.GOMAXPROCS(0)) {
		segments = 1
	}
	if segments > n {
		segments = n
	}
	if segments <= 1 {
		m, err := Build(cfg)
		if err != nil {
			return RunReport{}, err
		}
		return RunTrace(m, name, tr.Cursor(), uint64(n)), nil
	}

	// Segment k measures records [bounds[k], bounds[k+1]) after warming
	// over [warm[k], bounds[k]).
	bounds := make([]int, segments+1)
	for k := 0; k <= segments; k++ {
		bounds[k] = k * n / segments
	}
	warms := make([]int, segments)
	for k := range warms {
		if plan.Warmup < 0 {
			warms[k] = 0 // exact: full prefix
		} else if w := bounds[k] - plan.Warmup; w > 0 {
			warms[k] = w
		}
	}
	// Resolve every segment's packed start position in one forward
	// pass; the warm starts are non-decreasing by construction.
	var positions []trace.Pos
	if tr.Records == nil {
		positions = tr.Packed.Positions(warms)
	}

	results := make([]segmentResult, segments)
	errs := make([]error, segments)
	var wg sync.WaitGroup
	sem := make(chan struct{}, plan.Workers)
	for k := 0; k < segments; k++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			var src trace.Source
			total := bounds[k+1] - warms[k]
			if tr.Records != nil {
				sc := trace.NewSliceCursor(tr.Records[:n])
				seg := sc.Segment(warms[k], total)
				src = &seg
			} else {
				cur := tr.Packed.CursorAt(positions[k], total)
				src = &cur
			}
			results[k], errs[k] = runSegment(cfg, src, bounds[k]-warms[k], bounds[k+1]-bounds[k], k == 0)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return RunReport{}, err
		}
	}

	rep := RunReport{
		Machine:  cfg.Name,
		Workload: name,
		Segments: segments,
	}
	for k := range results {
		r := &results[k]
		rep.CPU.Add(r.cpu)
		addL2Stats(&rep.L2, r.l2)
		addEnergy(&rep.Energy, r.energy)
		rep.DRAMReads += r.dramR
		rep.DRAMWrites += r.dramW
		rep.History = append(rep.History, r.history...)
		rep.FlushWritebacks += r.flush
	}
	last := &results[segments-1]
	rep.L2InstalledBytes = last.installd
	rep.L2PoweredBytes = last.powered
	return rep, nil
}

// runSegment replays one segment on a fresh machine: warmLen records of
// warmup, a boundary clock sync, then measureLen measured records. The
// RunState is continuous across the boundary, so in full-prefix mode
// the measured contribution is bit-identical to the serial run's over
// the same range. first marks the stream-opening segment, whose
// measured history must include the dynamic controller's
// construction-time initial allocation (epoch 0) the way a serial
// run's does; later segments correctly trim their own machines'
// initial decisions as warmup artifacts.
func runSegment(cfg config.Machine, src trace.Source, warmLen, measureLen int, first bool) (segmentResult, error) {
	m, err := Build(cfg)
	if err != nil {
		return segmentResult{}, err
	}
	rs := m.CPU.NewRunState()
	if warmLen > 0 {
		m.CPU.RunFrom(rs, src, uint64(warmLen))
		// Synchronize the leakage clocks so the warmup era's leakage is
		// fully attributed before the `before` snapshot. The STT-RAM
		// scan schedule is clock-driven, not call-driven, so this extra
		// sync perturbs no integer counter.
		m.Hier.Advance(m.CPU.Now())
	}
	beforeL2 := m.L2.Stats()
	beforeEnergy := m.Hier.Energy()
	beforeReads, beforeWrites := m.DRAM.Reads(), m.DRAM.Writes()
	var beforeDecisions int
	var beforeFlush uint64
	if m.Dynamic != nil && !first {
		beforeDecisions = len(m.Dynamic.History())
		beforeFlush = m.Dynamic.FlushWritebacks()
	}

	measured := m.CPU.RunFrom(rs, src, uint64(measureLen))
	m.CPU.Finish()

	res := segmentResult{
		cpu:      measured,
		l2:       subL2Stats(m.L2.Stats(), beforeL2),
		energy:   subEnergy(m.Hier.Energy(), beforeEnergy),
		dramR:    m.DRAM.Reads() - beforeReads,
		dramW:    m.DRAM.Writes() - beforeWrites,
		powered:  m.L2.PoweredBytes(),
		installd: m.L2.SizeBytes(),
	}
	if m.Dynamic != nil {
		hist := m.Dynamic.History()
		res.history = append([]core.PartitionDecision(nil), hist[beforeDecisions:]...)
		res.flush = m.Dynamic.FlushWritebacks() - beforeFlush
	}
	return res, nil
}

// RunSegmentedWorkloadFrom is the store-aware segmented variant of
// RunWorkloadFrom: the cell's trace comes from the shared arena and is
// replayed in plan.Segments concurrent pieces. Segmented replay needs
// the materialized trace for random access, so a nil store is an
// error, not a generator fallback.
func RunSegmentedWorkloadFrom(store *tracestore.Store, cfg config.Machine, prof workload.Profile, seed uint64, accesses int, plan SegmentPlan) (RunReport, error) {
	if store == nil {
		return RunReport{}, fmt.Errorf("sim: segmented replay needs a trace store")
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	tr, err := store.GetTrace(prof, seed, accesses)
	if err != nil {
		return RunReport{}, err
	}
	rep, err := RunSegmented(cfg, prof.Name, tr, accesses, plan)
	if err != nil {
		return RunReport{}, err
	}
	return auditExit(rep, nil)
}
