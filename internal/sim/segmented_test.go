package sim

import (
	"math"
	"reflect"
	"testing"

	"mobilecache/internal/config"
	"mobilecache/internal/tracestore"
)

// MachineOrDie looks up a standard machine or fails the test.
func MachineOrDie(t *testing.T, name string) config.Machine {
	t.Helper()
	cfg, err := MachineByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// relErrF is a local relative-error helper for float comparisons.
func relErrF(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestRunFromSegmentComposition pins the core refactor contract: for
// every standard machine, a replay split into arbitrary consecutive
// RunFrom calls on one RunState (one Finish at the end) is bit-identical
// — every counter, every float — to one uninterrupted Run.
func TestRunFromSegmentComposition(t *testing.T) {
	store := tracestore.New(0)
	prof := smallProfile()
	const total = 40_000
	tr, err := store.GetTrace(prof, 11, total)
	if err != nil {
		t.Fatal(err)
	}
	chunks := []uint64{1, 7, 997, 8192, 0} // 0 = run to exhaustion
	for _, cfg := range StandardMachines() {
		m1, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep1 := RunTrace(m1, prof.Name, tr.Cursor(), 0)

		m2, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := tr.Cursor()
		rs := m2.CPU.NewRunState()
		for _, c := range chunks {
			m2.CPU.RunFrom(rs, cur, c)
		}
		m2.CPU.Finish()

		if !reflect.DeepEqual(rep1.CPU, rs.Result()) {
			t.Fatalf("%s: composed CPU result diverges:\n serial   %+v\n composed %+v", cfg.Name, rep1.CPU, rs.Result())
		}
		if !reflect.DeepEqual(rep1.L2, m2.L2.Stats()) {
			t.Fatalf("%s: composed L2 stats diverge", cfg.Name)
		}
		if !reflect.DeepEqual(rep1.Energy, m2.Hier.Energy()) {
			t.Fatalf("%s: composed energy diverges:\n serial   %+v\n composed %+v", cfg.Name, rep1.Energy, m2.Hier.Energy())
		}
		if rep1.DRAMReads != m2.DRAM.Reads() || rep1.DRAMWrites != m2.DRAM.Writes() {
			t.Fatalf("%s: composed DRAM traffic diverges", cfg.Name)
		}
		if rep1.L2PoweredBytes != m2.L2.PoweredBytes() {
			t.Fatalf("%s: composed powered bytes diverge", cfg.Name)
		}
		if m1.Dynamic != nil {
			if !reflect.DeepEqual(m1.Dynamic.History(), m2.Dynamic.History()) {
				t.Fatalf("%s: composed partition history diverges", cfg.Name)
			}
		}
	}
}

// snapRun captures the comparable outcome of a finished replay.
type snapRun struct {
	cpu     interface{}
	l2      interface{}
	energy  interface{}
	reads   uint64
	writes  uint64
	powered uint64
}

func snapOf(m *Machine, cpuRes interface{}) snapRun {
	return snapRun{
		cpu: cpuRes, l2: m.L2.Stats(), energy: m.Hier.Energy(),
		reads: m.DRAM.Reads(), writes: m.DRAM.Writes(), powered: m.L2.PoweredBytes(),
	}
}

// TestSnapshotRestoreContinue pins the snapshot contract: interrupting
// a replay with Snapshot, continuing to the end, then rewinding with
// Restore and replaying the identical tail again reproduces the same
// outcome bit-for-bit — and both match the uninterrupted run.
func TestSnapshotRestoreContinue(t *testing.T) {
	store := tracestore.New(0)
	prof := smallProfile()
	const total = 40_000
	const cut = 17_500
	tr, err := store.GetTrace(prof, 23, total)
	if err != nil {
		t.Fatal(err)
	}
	// Resolve the packed-stream position of the cut once; the restored
	// replay resumes its own fresh cursor there.
	tailPos := tr.Packed.Positions([]int{cut})[0]

	for _, name := range StandardMachineNames() {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m1, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c1 := tr.Packed.Cursor()
		rep := RunTrace(m1, prof.Name, &c1, 0)

		m2, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := tr.Packed.Cursor()
		rs := m2.CPU.NewRunState()
		m2.CPU.RunFrom(rs, &cur, cut)

		snap := m2.Snapshot()
		rsSnap := *rs // RunState is a plain value: copy = snapshot

		// First continuation, through to the end.
		m2.CPU.RunFrom(rs, &cur, 0)
		m2.CPU.Finish()
		first := snapOf(m2, rs.Result())

		if !reflect.DeepEqual(rep.CPU, rs.Result()) {
			t.Fatalf("%s: interrupted replay CPU diverges from uninterrupted:\n uninterrupted %+v\n interrupted   %+v", name, rep.CPU, rs.Result())
		}
		if !reflect.DeepEqual(rep.Energy, first.energy) {
			t.Fatalf("%s: interrupted replay energy diverges from uninterrupted", name)
		}

		// Rewind and replay the identical tail from a fresh cursor.
		m2.Restore(snap)
		rs2 := rsSnap
		tail := tr.Packed.CursorAt(tailPos, -1)
		m2.CPU.RunFrom(&rs2, &tail, 0)
		m2.CPU.Finish()
		second := snapOf(m2, rs2.Result())

		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: restored tail replay diverges from first continuation:\n first  %+v\n second %+v", name, first, second)
		}
	}
}

// TestRunSegmentedExactMatchesSerial pins the oracle mode: segmented
// replay with full-prefix warmup stitches to the serial run's exact
// integer counters on every standard machine, with energy agreeing to
// float association order.
func TestRunSegmentedExactMatchesSerial(t *testing.T) {
	store := tracestore.New(0)
	prof := smallProfile()
	const total = 40_000
	tr, err := store.GetTrace(prof, 7, total)
	if err != nil {
		t.Fatal(err)
	}
	plan := SegmentPlan{Segments: 4, Warmup: -1, Workers: 2}
	for _, cfg := range StandardMachines() {
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial := RunTrace(m, prof.Name, tr.Cursor(), 0)

		seg, err := RunSegmented(cfg, prof.Name, tr, total, plan)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Segments != 4 {
			t.Fatalf("%s: report marks %d segments", cfg.Name, seg.Segments)
		}
		if !reflect.DeepEqual(serial.CPU, seg.CPU) {
			t.Fatalf("%s: exact segmented CPU diverges:\n serial    %+v\n segmented %+v", cfg.Name, serial.CPU, seg.CPU)
		}
		if !reflect.DeepEqual(serial.L2, seg.L2) {
			t.Fatalf("%s: exact segmented L2 stats diverge:\n serial    %+v\n segmented %+v", cfg.Name, serial.L2, seg.L2)
		}
		if serial.DRAMReads != seg.DRAMReads || serial.DRAMWrites != seg.DRAMWrites {
			t.Fatalf("%s: exact segmented DRAM traffic diverges", cfg.Name)
		}
		if serial.L2PoweredBytes != seg.L2PoweredBytes || serial.L2InstalledBytes != seg.L2InstalledBytes {
			t.Fatalf("%s: exact segmented capacity snapshot diverges", cfg.Name)
		}
		if !reflect.DeepEqual(serial.History, seg.History) {
			t.Fatalf("%s: exact segmented partition history diverges", cfg.Name)
		}
		if serial.FlushWritebacks != seg.FlushWritebacks {
			t.Fatalf("%s: exact segmented flush writebacks diverge", cfg.Name)
		}
		// Energy tolerance: the boundary leakage sync splits an
		// integration interval, which is pure float association for
		// every machine except the drowsy baseline, whose controller
		// demotes idle lines at sync granularity — the extra sync
		// legitimately shifts demotion instants (RunWarm shares this
		// property). Integer counters are exact everywhere regardless.
		tol := 1e-9
		if cfg.Scheme == config.SchemeDrowsy {
			tol = 2e-3
		}
		if e := relErrF(seg.L2EnergyJ(), serial.L2EnergyJ()); e > tol {
			t.Fatalf("%s: exact segmented L2 energy off by %.3g rel", cfg.Name, e)
		}
		if e := relErrF(seg.Energy.DRAMJ, serial.Energy.DRAMJ); e > 1e-9 {
			t.Fatalf("%s: exact segmented DRAM energy off by %.3g rel", cfg.Name, e)
		}
	}
}

// TestRunSegmentedExactPackedTier repeats the oracle check on the
// packed-only tier (budget 1 demotes the hot decoded form), so the
// CursorAt/Positions resume path is the one under test.
func TestRunSegmentedExactPackedTier(t *testing.T) {
	store := tracestore.New(1)
	prof := smallProfile()
	const total = 30_000
	tr, err := store.GetTrace(prof, 7, total)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records != nil {
		t.Fatal("budget-1 store kept the hot tier; test needs packed-only")
	}
	plan := SegmentPlan{Segments: 3, Warmup: -1, Workers: 3}
	for _, name := range []string{"baseline-sram", "sp-mr", "dp-sr"} {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial := RunTrace(m, prof.Name, tr.Cursor(), 0)
		seg, err := RunSegmented(cfg, prof.Name, tr, total, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.CPU, seg.CPU) || !reflect.DeepEqual(serial.L2, seg.L2) {
			t.Fatalf("%s: packed-tier exact segmented replay diverges", name)
		}
	}
}

// TestRunSegmentedApproxBounded checks the fast path's stitching error:
// with the default warmup prefix and sweep-scale segment lengths the
// stitched miss rate and L2 energy stay within the documented 2% bound
// of the serial run. The bound holds when segments are several times
// the warmup prefix (the cold-boundary error amortizes as warmup /
// segment length — see DESIGN.md); deliberately short segments can
// exceed it, which is what ValidateSegmented exists to audit.
func TestRunSegmentedApproxBounded(t *testing.T) {
	store := tracestore.New(0)
	prof := smallProfile()
	const total = 240_000
	tr, err := store.GetTrace(prof, 31, total)
	if err != nil {
		t.Fatal(err)
	}
	// The unified/static designs meet the bound at the default warmup;
	// the dynamic design needs a longer prefix because its repartition
	// epochs are phase-shifted at segment boundaries and the controller
	// re-converges over ~2 epochs of L2 accesses (the DESIGN.md error
	// model) — ValidateSegmented is the harness that audits whichever
	// setting a sweep actually uses.
	cases := []struct {
		name string
		plan SegmentPlan
	}{
		// Force: these cases audit the approximate stitching itself, so
		// the serial auto-fallback (which would make both arms identical)
		// must not replace it on small hosts. Norm fills Warmup + Workers.
		{"baseline-sram", SegmentPlan{Segments: 4, Force: true}},
		{"baseline-stt", SegmentPlan{Segments: 4, Force: true}},
		{"dp", SegmentPlan{Segments: 4, Warmup: 131_072, Force: true}},
	}
	for _, tc := range cases {
		name, plan := tc.name, tc.plan
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial := RunTrace(m, prof.Name, tr.Cursor(), 0)
		seg, err := RunSegmented(cfg, prof.Name, tr, total, plan)
		if err != nil {
			t.Fatal(err)
		}
		if seg.CPU.Accesses != serial.CPU.Accesses {
			t.Fatalf("%s: segmented replay covered %d accesses, serial %d", name, seg.CPU.Accesses, serial.CPU.Accesses)
		}
		serialMiss := float64(serial.L2.TotalMisses()) / float64(serial.L2.TotalAccesses())
		segMiss := float64(seg.L2.TotalMisses()) / float64(seg.L2.TotalAccesses())
		if e := relErrF(segMiss, serialMiss); e > 0.02 {
			t.Fatalf("%s: stitched miss rate off by %.2f%% (serial %.4f, segmented %.4f)", name, e*100, serialMiss, segMiss)
		}
		if e := relErrF(seg.L2EnergyJ(), serial.L2EnergyJ()); e > 0.02 {
			t.Fatalf("%s: stitched L2 energy off by %.2f%%", name, e*100)
		}
	}
}

// TestRunSegmentedValidation covers the plan's error paths.
func TestRunSegmentedValidation(t *testing.T) {
	if err := (SegmentPlan{Segments: 0}).Validate(); err == nil {
		t.Fatal("zero-segment plan validated")
	}
	if _, err := RunSegmented(MachineOrDie(t, "baseline-sram"), "x", tracestore.Trace{}, 0, SegmentPlan{Segments: 2}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := RunSegmentedWorkloadFrom(nil, MachineOrDie(t, "baseline-sram"), smallProfile(), 1, 1000, SegmentPlan{Segments: 2}); err == nil {
		t.Fatal("nil store accepted")
	}
}

// TestSegmentedAutoFallback pins the serial auto-fallback decision
// table and its behavioral consequence: an approximate plan on a cell
// the heuristic rejects produces exactly the serial report.
func TestSegmentedAutoFallback(t *testing.T) {
	norm := func(p SegmentPlan) SegmentPlan { return p.Norm() }
	cases := []struct {
		name     string
		plan     SegmentPlan
		n, procs int
		want     bool
	}{
		{"single core", norm(SegmentPlan{Segments: 4}), 10 * SegmentedMinAccesses, 1, true},
		{"small cell", norm(SegmentPlan{Segments: 4}), SegmentedMinAccesses - 1, 8, true},
		{"threshold cell keeps segments", norm(SegmentPlan{Segments: 4}), SegmentedMinAccesses, 8, false},
		{"big cell, many cores", norm(SegmentPlan{Segments: 4}), 10 * SegmentedMinAccesses, 8, false},
		{"exact oracle never falls back", norm(SegmentPlan{Segments: 4, Warmup: -1}), 100, 1, false},
		{"force overrides", norm(SegmentPlan{Segments: 4, Force: true}), 100, 1, false},
	}
	for _, tc := range cases {
		if got := tc.plan.FallsBackToSerial(tc.n, tc.procs); got != tc.want {
			t.Errorf("%s: FallsBackToSerial(%d, %d) = %v, want %v", tc.name, tc.n, tc.procs, got, tc.want)
		}
	}

	// Behavioral arm: the cell is far below SegmentedMinAccesses, so the
	// approximate plan must degrade to serial on any host — the report
	// matches RunTrace bit-for-bit on the integer counters and is not
	// marked segmented.
	store := tracestore.New(0)
	prof := smallProfile()
	const total = 20_000
	tr, err := store.GetTrace(prof, 13, total)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MachineOrDie(t, "baseline-sram")
	m, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial := RunTrace(m, prof.Name, tr.Cursor(), 0)
	seg, err := RunSegmented(cfg, prof.Name, tr, total, SegmentPlan{Segments: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seg.Segments != 0 {
		t.Fatalf("fallback report marks %d segments, want unsegmented", seg.Segments)
	}
	if !reflect.DeepEqual(serial.CPU, seg.CPU) || !reflect.DeepEqual(serial.L2, seg.L2) {
		t.Fatal("fallback report diverges from serial replay")
	}

	// Forcing the same plan on the same tiny cell must exercise the real
	// stitching machinery and say so in the report.
	forced, err := RunSegmented(cfg, prof.Name, tr, total, SegmentPlan{Segments: 4, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Segments != 4 {
		t.Fatalf("forced plan reports %d segments, want 4", forced.Segments)
	}
}
