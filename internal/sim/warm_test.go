package sim

import (
	"testing"

	"mobilecache/internal/config"
)

func TestRunWarmExcludesWarmup(t *testing.T) {
	prof := smallProfile()
	cold, err := RunWorkload(config.Default(), prof, 5, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunWarmWorkload(config.Default(), prof, 5, 40_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	// The measured portion covers only the post-warmup accesses.
	if warm.CPU.Accesses != 40_000 {
		t.Fatalf("measured accesses = %d, want 40000", warm.CPU.Accesses)
	}
	// Warm measurement must show a lower miss rate than the cold run
	// (compulsory misses landed in the warmup window).
	if warm.L2.MissRate() >= cold.L2.MissRate() {
		t.Fatalf("warm miss rate %.3f not below cold %.3f", warm.L2.MissRate(), cold.L2.MissRate())
	}
	// Energy and DRAM traffic are measurement-only and must be well
	// below the cold whole-run totals.
	if warm.Energy.L2.Total() >= cold.Energy.L2.Total() {
		t.Fatal("warm energy not below full-run energy")
	}
	if warm.DRAMReads >= cold.DRAMReads {
		t.Fatal("warm DRAM reads not below full-run reads")
	}
}

func TestRunWarmCountersNonNegative(t *testing.T) {
	warm, err := RunWarmWorkload(config.Default(), smallProfile(), 9, 20_000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if warm.L2.TotalAccesses() == 0 {
		t.Fatal("no measured L2 accesses")
	}
	if warm.L2.MissRate() < 0 || warm.L2.MissRate() > 1 {
		t.Fatalf("miss rate out of range: %g", warm.L2.MissRate())
	}
	bd := warm.Energy.L2
	for name, v := range map[string]float64{
		"read": bd.ReadJ, "write": bd.WriteJ, "leak": bd.LeakageJ, "refresh": bd.RefreshJ,
	} {
		if v < 0 {
			t.Fatalf("negative %s energy %g after subtraction", name, v)
		}
	}
}

func TestRunWarmDynamicHistoryTrimmed(t *testing.T) {
	cfg, err := MachineByName("dp")
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunWarmWorkload(cfg, smallProfile(), 3, 60_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range warm.History {
		// All reported decisions must postdate the warmup window;
		// epoch 0 (the initial allocation) belongs to warmup.
		if d.Epoch == 0 {
			t.Fatal("history includes the warmup-era initial allocation")
		}
	}
}

func TestRunWarmDeterministic(t *testing.T) {
	a, err := RunWarmWorkload(config.Default(), smallProfile(), 2, 30_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWarmWorkload(config.Default(), smallProfile(), 2, 30_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if a.L2.TotalMisses() != b.L2.TotalMisses() || a.Energy.L2.Total() != b.Energy.L2.Total() {
		t.Fatal("warm runs not deterministic")
	}
}
