package sim

import (
	"testing"

	"mobilecache/internal/config"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func TestStandardMachinesBuild(t *testing.T) {
	ms := StandardMachines()
	if len(ms) != 7 {
		t.Fatalf("standard machines = %d, want 7", len(ms))
	}
	for _, cfg := range ms {
		if err := cfg.Validate(); err != nil {
			t.Errorf("machine %s invalid: %v", cfg.Name, err)
			continue
		}
		m, err := Build(cfg)
		if err != nil {
			t.Errorf("machine %s failed to build: %v", cfg.Name, err)
			continue
		}
		if m.L2 == nil || m.CPU == nil || m.Hier == nil {
			t.Errorf("machine %s incompletely built", cfg.Name)
		}
	}
}

func TestMachineByName(t *testing.T) {
	m, err := MachineByName("sp-mr")
	if err != nil || m.Name != "sp-mr" {
		t.Fatalf("MachineByName(sp-mr) = %v, %v", m.Name, err)
	}
	if _, err := MachineByName("nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if len(StandardMachineNames()) != 7 {
		t.Fatal("names list wrong")
	}
}

func TestBuildSchemeSpecificHandles(t *testing.T) {
	for _, tc := range []struct {
		name                      string
		unified, static_, dynamic bool
		drowsy                    bool
	}{
		{"baseline-sram", true, false, false, false},
		{"sp", false, true, false, false},
		{"dp", false, false, true, false},
		{"baseline-drowsy", false, false, false, true},
	} {
		cfg, err := MachineByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if (m.Unified != nil) != tc.unified || (m.Static != nil) != tc.static_ ||
			(m.Dynamic != nil) != tc.dynamic || (m.Drowsy != nil) != tc.drowsy {
			t.Errorf("%s handles wrong: unified=%v static=%v dynamic=%v drowsy=%v",
				tc.name, m.Unified != nil, m.Static != nil, m.Dynamic != nil, m.Drowsy != nil)
		}
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	bad := config.Default()
	bad.Name = ""
	if _, err := Build(bad); err == nil {
		t.Fatal("invalid config built")
	}
}

func smallProfile() workload.Profile {
	return workload.Profile{
		Name: "mini", KernelShare: 0.45,
		UserWorkingSet: 256 * workload.KB, KernelWorkingSet: 96 * workload.KB,
		UserZipf: 0.9, KernelZipf: 0.6,
		UserWriteRatio: 0.25, KernelWriteRatio: 0.5,
		UserStreamFrac: 0.05, KernelStreamFrac: 0.15,
		IfetchFrac: 0.25, UserCodeSet: 64 * workload.KB, KernelCodeSet: 32 * workload.KB,
		UserBurstMean: 120, GapMean: 2.2, Phases: 2,
	}
}

func TestRunWorkloadProducesReport(t *testing.T) {
	rep, err := RunWorkload(config.Default(), smallProfile(), 3, 60000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Machine != "baseline-sram" || rep.Workload != "mini" {
		t.Fatalf("identity wrong: %s/%s", rep.Machine, rep.Workload)
	}
	if rep.CPU.Accesses != 60000 {
		t.Fatalf("accesses = %d", rep.CPU.Accesses)
	}
	if rep.L2.TotalAccesses() == 0 {
		t.Fatal("no L2 accesses — L1 filtered everything?")
	}
	if rep.L2EnergyJ() <= 0 {
		t.Fatal("no L2 energy")
	}
	if rep.IPC() <= 0 || rep.IPC() > 1 {
		t.Fatalf("IPC = %g", rep.IPC())
	}
	if rep.DRAMReads == 0 {
		t.Fatal("no DRAM traffic")
	}
	if rep.L2InstalledBytes != 1024*1024 {
		t.Fatalf("installed = %d", rep.L2InstalledBytes)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := RunWorkload(config.Default(), smallProfile(), 9, 30000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(config.Default(), smallProfile(), 9, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if a.CPU.Cycles != b.CPU.Cycles || a.L2.TotalMisses() != b.L2.TotalMisses() || a.L2EnergyJ() != b.L2EnergyJ() {
		t.Fatal("same-seed runs diverge")
	}
}

func TestDynamicRunRecordsHistory(t *testing.T) {
	cfg, err := MachineByName("dp")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkload(cfg, smallProfile(), 5, 120000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.History) == 0 {
		t.Fatal("dynamic run recorded no partition history")
	}
	if rep.L2PoweredBytes > rep.L2InstalledBytes {
		t.Fatal("powered exceeds installed")
	}
}

func TestStaticPartitionEliminatesInterference(t *testing.T) {
	base, err := RunWorkload(config.Default(), smallProfile(), 7, 80000)
	if err != nil {
		t.Fatal(err)
	}
	spCfg, err := MachineByName("sp")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := RunWorkload(spCfg, smallProfile(), 7, 80000)
	if err != nil {
		t.Fatal(err)
	}
	if base.L2.InterferenceEvictions == 0 {
		t.Fatal("baseline shows no interference; workload too small?")
	}
	if sp.L2.InterferenceEvictions != 0 {
		t.Fatalf("static partition has %d interference evictions", sp.L2.InterferenceEvictions)
	}
}

func TestSchemesEnergyOrdering(t *testing.T) {
	// The paper's headline ordering on a representative app:
	// baseline-sram >> sp > sp-mr and dp-sr lowest (or close to sp-mr).
	prof := smallProfile()
	runs := map[string]RunReport{}
	for _, name := range []string{"baseline-sram", "sp", "sp-mr", "dp-sr"} {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunWorkload(cfg, prof, 21, 100000)
		if err != nil {
			t.Fatal(err)
		}
		runs[name] = rep
	}
	base := runs["baseline-sram"].L2EnergyJ()
	if runs["sp"].L2EnergyJ() >= base {
		t.Fatalf("SP energy %g not below baseline %g", runs["sp"].L2EnergyJ(), base)
	}
	if runs["sp-mr"].L2EnergyJ() >= runs["sp"].L2EnergyJ() {
		t.Fatalf("SP-MR energy %g not below SP %g", runs["sp-mr"].L2EnergyJ(), runs["sp"].L2EnergyJ())
	}
	if runs["dp-sr"].L2EnergyJ() >= runs["sp"].L2EnergyJ() {
		t.Fatalf("DP-SR energy %g not below SP %g", runs["dp-sr"].L2EnergyJ(), runs["sp"].L2EnergyJ())
	}
}

func TestRunTraceWithSlice(t *testing.T) {
	m, err := Build(config.Default())
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Access{
		{Addr: 0x1000, Op: trace.Load, Domain: trace.User},
		{Addr: 0x1000, Op: trace.Load, Domain: trace.User},
	}
	rep := RunTrace(m, "slice", trace.NewSliceSource(recs), 0)
	if rep.CPU.Accesses != 2 {
		t.Fatalf("accesses = %d", rep.CPU.Accesses)
	}
}
