package sim

import (
	"reflect"
	"testing"

	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// TestStoreReplayMatchesGenerator is the arena's correctness contract:
// replaying a cached packed trace through every standard machine yields
// a RunReport identical — CPU result, L2 stats, energy buckets, DRAM
// traffic, partition history — to the generator-driven RunWorkload for
// the same (profile, seed, accesses).
func TestStoreReplayMatchesGenerator(t *testing.T) {
	store := tracestore.New(0)
	// A phased standard profile exercises the phase-length derivation;
	// use full multi-phase behaviour and both domains.
	prof := workload.Profiles()[0]
	const seed, accesses = 11, 60_000

	for _, name := range StandardMachineNames() {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunWorkload(cfg, prof, seed, accesses)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWorkloadFrom(store, cfg, prof, seed, accesses)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: cached replay diverges from generator run:\n generator: %+v\n cached:    %+v", name, want, got)
		}
	}
	st := store.Stats()
	if st.Generated != 1 {
		t.Fatalf("store generated %d traces for one (profile, seed); want 1", st.Generated)
	}
	if st.Hits != uint64(len(StandardMachineNames())-1) {
		t.Fatalf("store hits = %d, want %d", st.Hits, len(StandardMachineNames())-1)
	}
}

// TestStoreDemotedReplayMatchesGenerator covers the packed tier: with a
// budget too small to hold any hot decoded form, every replay goes
// through the packed decoding cursor and must still reproduce the
// generator-driven reports exactly.
func TestStoreDemotedReplayMatchesGenerator(t *testing.T) {
	store := tracestore.New(1) // demotes every trace to packed-only
	prof := workload.Profiles()[1]
	const seed, accesses = 13, 40_000

	for _, name := range []string{"baseline-sram", "sp-mr", "dp-sr"} {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunWorkload(cfg, prof, seed, accesses)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWorkloadFrom(store, cfg, prof, seed, accesses)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: demoted packed replay diverges from generator run", name)
		}
	}
	if st := store.Stats(); st.Demotions == 0 {
		t.Fatalf("expected demotions under a 1-byte budget, got %+v", st)
	}
}

// TestStoreWarmReplayMatchesGenerator covers the warmup+measure path.
func TestStoreWarmReplayMatchesGenerator(t *testing.T) {
	store := tracestore.New(0)
	prof := workload.Profiles()[0]
	cfg, err := MachineByName("sp-mr")
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunWarmWorkload(cfg, prof, 5, 20_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWarmWorkloadFrom(store, cfg, prof, 5, 20_000, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("warm cached replay diverges:\n generator: %+v\n cached:    %+v", want, got)
	}
}

// TestRunWorkloadFromNilStore: a nil store must behave exactly like
// RunWorkload.
func TestRunWorkloadFromNilStore(t *testing.T) {
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunWorkloadFrom(nil, cfg, smallProfile(), 3, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CPU.Accesses != 10_000 {
		t.Fatalf("nil-store run replayed %d accesses", rep.CPU.Accesses)
	}
}

// TestStandardMachinesMemoizedCopies: lookups return independent deep
// copies, so mutations through the returned pointers can never corrupt
// the memoized configs.
func TestStandardMachinesMemoizedCopies(t *testing.T) {
	a, err := MachineByName("sp-mr")
	if err != nil {
		t.Fatal(err)
	}
	a.User.Tech = "sram"
	a.Kernel.SizeKB = 1

	b, err := MachineByName("sp-mr")
	if err != nil {
		t.Fatal(err)
	}
	if b.User.Tech != "stt-medium" || b.Kernel.SizeKB != 256 {
		t.Fatalf("mutation through a returned config leaked into the memo: %+v %+v", b.User, b.Kernel)
	}

	ms := StandardMachines()
	ms[0].Unified.SizeKB = 7
	ms2 := StandardMachines()
	if ms2[0].Unified.SizeKB == 7 {
		t.Fatal("StandardMachines slices share segment pointers")
	}
	if len(ms2) != 7 {
		t.Fatalf("StandardMachines returned %d machines, want 7", len(ms2))
	}
}
