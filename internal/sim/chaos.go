package sim

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"mobilecache/internal/runner"
)

// Chaos is a test-only hook that makes RunWorkload and RunWarmWorkload
// misbehave at a configurable cell rate — forced panics, error
// returns, transient (retry-then-succeed) failures and delays — so the
// parallel run harness (internal/runner, cmd/mcsweep) can prove it
// contains failures instead of letting one bad cell kill a sweep.
// Draws are a pure function of (chaos seed, machine, app, workload
// seed), so a given configuration fails the same cells every run
// regardless of scheduling.
//
// Rates are per-cell probabilities evaluated in order: panic, then
// error, then flaky; their sum should stay <= 1.
type Chaos struct {
	// PanicRate is the fraction of cells whose run panics.
	PanicRate float64
	// ErrorRate is the fraction of cells whose run returns a permanent
	// error.
	ErrorRate float64
	// FlakyRate is the fraction of cells that fail with a transient
	// (runner-retryable) error on their first attempt only.
	FlakyRate float64
	// Delay is slept at the start of every run (deadline testing).
	Delay time.Duration
	// Seed drives the deterministic per-cell draws.
	Seed uint64

	mu    sync.Mutex
	calls map[string]int
}

// installed holds the active chaos configuration; nil = no injection.
var installed atomic.Pointer[Chaos]

// InstallChaos activates failure injection for every subsequent
// RunWorkload/RunWarmWorkload in this process and returns a restore
// function that removes it. Tests must call the restore function
// (typically via t.Cleanup) — chaos is process-global.
func InstallChaos(c *Chaos) (restore func()) {
	prev := installed.Swap(c)
	return func() { installed.Store(prev) }
}

// draw maps a cell identity to a uniform [0,1) value. The FNV digest
// is finalized through a splitmix64 mixer: FNV-1a alone diffuses the
// last input bytes only into the low bits, and the draw uses the high
// ones.
func (c *Chaos) draw(machine, app string, seed uint64) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d", c.Seed, machine, app, seed)
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// enter runs the chaos decision for one cell; called on entry to the
// workload runners. It may panic, sleep, or return an error.
func (c *Chaos) enter(machine, app string, seed uint64) error {
	if c.Delay > 0 {
		time.Sleep(c.Delay)
	}
	u := c.draw(machine, app, seed)
	cell := fmt.Sprintf("%s|%s|%d", machine, app, seed)
	switch {
	case u < c.PanicRate:
		panic(fmt.Sprintf("chaos: injected panic in %s", cell))
	case u < c.PanicRate+c.ErrorRate:
		return fmt.Errorf("chaos: injected error in %s", cell)
	case u < c.PanicRate+c.ErrorRate+c.FlakyRate:
		c.mu.Lock()
		if c.calls == nil {
			c.calls = map[string]int{}
		}
		c.calls[cell]++
		first := c.calls[cell] == 1
		c.mu.Unlock()
		if first {
			return runner.Transient(fmt.Errorf("chaos: injected transient error in %s", cell))
		}
	}
	return nil
}

// chaosEnter fires the installed chaos configuration, if any.
func chaosEnter(machine, app string, seed uint64) error {
	if c := installed.Load(); c != nil {
		return c.enter(machine, app, seed)
	}
	return nil
}
