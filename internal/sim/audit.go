package sim

import (
	"log"
	"sync/atomic"

	"mobilecache/internal/invariant"
)

// This file wires the invariant auditor (internal/invariant) into the
// workload entry points. Every report RunWorkload / RunWarmWorkload
// (and their store-aware variants) returns is checked against the
// simulator's conservation laws:
//
//   - off:    no checking
//   - warn:   violations are logged (rate-capped) and the run proceeds
//   - strict: violations become a structured *invariant.Error, which
//     internal/runner records in the failure manifest
//
// The default is warn — a miscounting simulator should never fail
// silently, but library users shouldn't see hard failures they didn't
// opt into. CLI flags (-audit on mcsweep/mcbench) select the mode.

// auditMode holds the active mode (stored as uint32 for atomicity).
var auditMode atomic.Uint32

func init() { auditMode.Store(uint32(invariant.ModeWarn)) }

// AuditMode reports the active audit mode.
func AuditMode() invariant.Mode { return invariant.Mode(auditMode.Load()) }

// SetAuditMode selects how workload runs react to invariant
// violations and returns a restore function. The mode is
// process-global (it guards the simulator itself, not one run);
// tests must call the restore function, typically via t.Cleanup.
func SetAuditMode(m invariant.Mode) (restore func()) {
	prev := auditMode.Swap(uint32(m))
	return func() { auditMode.Store(prev) }
}

// auditTamper, when set, mutates reports before they are audited. It
// exists so tests (and the golden-audit CI step) can prove a
// miscounted report is actually caught end to end — there is no
// legitimate production use.
var auditTamper atomic.Pointer[func(*RunReport)]

// SetAuditTamper installs a report mutator applied before auditing,
// returning a restore function. Test-only.
func SetAuditTamper(f func(*RunReport)) (restore func()) {
	var p *func(*RunReport)
	if f != nil {
		p = &f
	}
	prev := auditTamper.Swap(p)
	return func() { auditTamper.Store(prev) }
}

// auditView flattens a RunReport into the auditor's subject type.
func auditView(rep RunReport) invariant.Report {
	return invariant.Report{
		Machine:          rep.Machine,
		Workload:         rep.Workload,
		CPU:              rep.CPU,
		L2:               rep.L2,
		Energy:           rep.Energy,
		L2InstalledBytes: rep.L2InstalledBytes,
		L2PoweredBytes:   rep.L2PoweredBytes,
		DRAMReads:        rep.DRAMReads,
		DRAMWrites:       rep.DRAMWrites,
		FlushWritebacks:  rep.FlushWritebacks,
		SampleFactor:     rep.SampleFactor,
	}
}

// Audit checks one report against the conservation invariants,
// regardless of the active mode. Experiments use it for golden-audit
// assertions.
func Audit(rep RunReport) []invariant.Violation {
	return invariant.Auditor{}.Check(auditView(rep))
}

// ApplyAudit runs the active audit policy over a report produced
// outside the workload entry points — a raw RunTrace replay of a
// captured trace file, say. (RunWorkload and friends audit
// automatically; calling this on their reports would double-count
// warn-mode statistics.)
func ApplyAudit(rep RunReport) (RunReport, error) { return auditExit(rep, nil) }

// warnLogged caps warn-mode log spam: after warnLogCap violating
// reports the audit keeps counting but stops printing.
var warnLogged atomic.Uint64

const warnLogCap = 8

// AuditWarnings reports how many violating reports warn mode has seen
// since process start (strict and off modes don't count).
func AuditWarnings() uint64 { return warnLogged.Load() }

// auditExit runs the active audit policy on a finished report. It is
// the single exit gate for every workload entry point.
func auditExit(rep RunReport, err error) (RunReport, error) {
	if err != nil {
		return rep, err
	}
	if t := auditTamper.Load(); t != nil {
		(*t)(&rep)
	}
	mode := AuditMode()
	if mode == invariant.ModeOff {
		return rep, nil
	}
	vs := Audit(rep)
	if len(vs) == 0 {
		return rep, nil
	}
	if mode == invariant.ModeStrict {
		return rep, &invariant.Error{Machine: rep.Machine, Workload: rep.Workload, Violation: vs}
	}
	if n := warnLogged.Add(1); n <= warnLogCap {
		for _, v := range vs {
			log.Printf("invariant audit [warn]: %s/%s: %s", rep.Machine, rep.Workload, v)
		}
		if n == warnLogCap {
			log.Printf("invariant audit [warn]: %d violating reports seen; further warnings suppressed", n)
		}
	}
	return rep, nil
}
