package sim

import (
	"mobilecache/internal/config"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// This file adds warm measurement: run a warmup prefix to populate the
// caches (and let the dynamic controller converge), then measure only
// the remainder. All simulator counters are cumulative, so the
// measured report is the difference of two snapshots.
//
// The standard experiments measure cold-start runs on purpose —
// interactive mobile episodes are short and include their cold misses —
// but warm measurement is the right tool for steady-state studies.

func subBreakdown(a, b energy.Breakdown) energy.Breakdown {
	return energy.Breakdown{
		ReadJ:    a.ReadJ - b.ReadJ,
		WriteJ:   a.WriteJ - b.WriteJ,
		LeakageJ: a.LeakageJ - b.LeakageJ,
		RefreshJ: a.RefreshJ - b.RefreshJ,
	}
}

func subEnergy(a, b mem.EnergyReport) mem.EnergyReport {
	return mem.EnergyReport{
		L1I:   subBreakdown(a.L1I, b.L1I),
		L1D:   subBreakdown(a.L1D, b.L1D),
		L2:    subBreakdown(a.L2, b.L2),
		DRAMJ: a.DRAMJ - b.DRAMJ,
	}
}

func subL2Stats(a, b core.L2Stats) core.L2Stats {
	var out core.L2Stats
	for d := 0; d < trace.NumDomains; d++ {
		out.Accesses[d] = a.Accesses[d] - b.Accesses[d]
		out.Hits[d] = a.Hits[d] - b.Hits[d]
		out.Misses[d] = a.Misses[d] - b.Misses[d]
	}
	out.Evictions = a.Evictions - b.Evictions
	out.InterferenceEvictions = a.InterferenceEvictions - b.InterferenceEvictions
	out.Writebacks = a.Writebacks - b.Writebacks
	out.ExpiryInvalidations = a.ExpiryInvalidations - b.ExpiryInvalidations
	out.Refreshes = a.Refreshes - b.Refreshes
	out.EagerWritebacks = a.EagerWritebacks - b.EagerWritebacks
	out.CleanExpiries = a.CleanExpiries - b.CleanExpiries
	out.DirtyExpiries = a.DirtyExpiries - b.DirtyExpiries
	// FaultExpiries was historically dropped from warm diffs, silently
	// zeroing fault-loss accounting in warm measurements; subtract it
	// like every other counter.
	out.FaultExpiries = a.FaultExpiries - b.FaultExpiries
	return out
}

// RunWarm replays warmupAccesses records of src to warm the machine,
// then measures the next measureAccesses records (0 = until the source
// ends). The returned report covers only the measured portion; its
// History (for dynamic designs) is trimmed to decisions taken during
// measurement.
func RunWarm(m *Machine, name string, src trace.Source, warmupAccesses, measureAccesses uint64) RunReport {
	if warmupAccesses > 0 {
		// Run bounds itself by the access count; skipping the LimitSource
		// wrapper keeps packed-cursor sources on their fast path.
		m.CPU.Run(src, warmupAccesses)
	}
	m.Hier.Advance(m.CPU.Now())

	before := RunReport{
		L2:     m.L2.Stats(),
		Energy: m.Hier.Energy(),
	}
	beforeReads, beforeWrites := m.DRAM.Reads(), m.DRAM.Writes()
	var beforeDecisions int
	if m.Dynamic != nil {
		beforeDecisions = len(m.Dynamic.History())
	}
	var beforeFlush uint64
	if m.Dynamic != nil {
		beforeFlush = m.Dynamic.FlushWritebacks()
	}

	measured := m.CPU.Run(src, measureAccesses)
	m.Hier.Advance(m.CPU.Now())

	rep := RunReport{
		Machine:          m.Config.Name,
		Workload:         name,
		CPU:              measured,
		L2:               subL2Stats(m.L2.Stats(), before.L2),
		Energy:           subEnergy(m.Hier.Energy(), before.Energy),
		L2InstalledBytes: m.L2.SizeBytes(),
		L2PoweredBytes:   m.L2.PoweredBytes(),
		DRAMReads:        m.DRAM.Reads() - beforeReads,
		DRAMWrites:       m.DRAM.Writes() - beforeWrites,
	}
	if m.Dynamic != nil {
		hist := m.Dynamic.History()
		rep.History = hist[beforeDecisions:]
		rep.FlushWritebacks = m.Dynamic.FlushWritebacks() - beforeFlush
	}
	return rep
}

// RunWarmWorkload is the convenience wrapper mirroring RunWorkload: it
// builds the machine, generates warmup+measure accesses of the app and
// measures only the post-warmup portion.
func RunWarmWorkload(cfg config.Machine, prof workload.Profile, seed uint64, warmup, measure int) (RunReport, error) {
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := Build(cfg)
	if err != nil {
		return RunReport{}, err
	}
	total := warmup + measure
	gen, err := workload.NewGenerator(prof, seed, workload.PhaseLen(prof, total))
	if err != nil {
		return RunReport{}, err
	}
	src := trace.NewLimitSource(gen, total)
	return auditExit(RunWarm(m, prof.Name, src, uint64(warmup), uint64(measure)), nil)
}

// RunWarmWorkloadFrom is the store-aware variant of RunWarmWorkload:
// the warmup+measure stream comes from the shared trace arena and is
// replayed through one stateful cursor (hot-tier zero-copy when
// resident, packed otherwise). A nil store falls back to the
// generator-driven path.
func RunWarmWorkloadFrom(store *tracestore.Store, cfg config.Machine, prof workload.Profile, seed uint64, warmup, measure int) (RunReport, error) {
	if store == nil {
		return RunWarmWorkload(cfg, prof, seed, warmup, measure)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := Build(cfg)
	if err != nil {
		return RunReport{}, err
	}
	tr, err := store.GetTrace(prof, seed, warmup+measure)
	if err != nil {
		return RunReport{}, err
	}
	return auditExit(RunWarm(m, prof.Name, tr.Cursor(), uint64(warmup), uint64(measure)), nil)
}
