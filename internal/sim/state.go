package sim

import (
	"mobilecache/internal/cpu"
	"mobilecache/internal/mem"
)

// SimState is a complete, self-contained snapshot of a machine's
// mutable simulation state: the CPU clock and the full memory
// hierarchy (both L1s, the L2 organization, DRAM, and every energy
// meter). It deliberately does NOT capture:
//
//   - the replay position — that lives in the trace cursor
//     (trace.Cursor.Pos) and the cpu.RunState the caller threads
//     through RunFrom, both of which are owned by the replay driver,
//     not the machine;
//   - configuration — a snapshot may only be restored into a machine
//     built from the identical config (geometry mismatches panic);
//   - scratch buffers — the CPU's staging arrays hold no state between
//     batches.
//
// Determinism contract: restoring a SimState into an identically
// configured machine and replaying the same record range with the same
// RunState reproduces the original run bit-identically — every integer
// counter, every float energy term, every partition decision. This
// holds because the simulator has no hidden stochastic state: the
// STT-RAM fault and jitter draws are pure functions of (seed, set,
// way, write time), so they replay rather than resample.
type SimState struct {
	CPU  cpu.State
	Hier *mem.HierState
}

// Snapshot captures the machine's complete mutable simulation state.
// The snapshot is an independent deep copy: the machine may keep
// running (and the snapshot restored repeatedly) without aliasing.
func (m *Machine) Snapshot() SimState {
	return SimState{CPU: m.CPU.Snapshot(), Hier: m.Hier.Snapshot()}
}

// Restore rewinds the machine to a snapshot taken from an identically
// configured machine. State is copied in, so one snapshot can seed any
// number of divergent replays.
func (m *Machine) Restore(s SimState) {
	m.CPU.Restore(s.CPU)
	m.Hier.Restore(s.Hier)
}
