package sim

import (
	"errors"
	"strings"
	"testing"

	"mobilecache/internal/invariant"
	"mobilecache/internal/workload"
)

// TestStrictAuditCleanAcrossMachines runs every standard machine under
// strict audit: a violation here means the simulator itself miscounts.
func TestStrictAuditCleanAcrossMachines(t *testing.T) {
	restore := SetAuditMode(invariant.ModeStrict)
	t.Cleanup(restore)
	apps := workload.Profiles()
	for _, cfg := range StandardMachines() {
		for _, prof := range apps[:2] {
			rep, err := RunWorkload(cfg, prof, 7, 30_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.Name, prof.Name, err)
			}
			if rep.L2.TotalAccesses() == 0 {
				t.Fatalf("%s/%s: empty run", cfg.Name, prof.Name)
			}
		}
	}
}

// TestStrictAuditCleanWarm covers the warm (counter-diff) path, whose
// windowed reports must satisfy the same conservation laws.
func TestStrictAuditCleanWarm(t *testing.T) {
	restore := SetAuditMode(invariant.ModeStrict)
	t.Cleanup(restore)
	apps := workload.Profiles()
	for _, name := range []string{"baseline-stt", "dp-sr", "sp-mr"} {
		cfg, err := MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunWarmWorkload(cfg, apps[0], 11, 10_000, 20_000); err != nil {
			t.Fatalf("%s warm: %v", name, err)
		}
	}
}

// TestStrictAuditCatchesTamperedReport proves the end-to-end promise:
// a miscounted report surfaces as a structured *invariant.Error.
func TestStrictAuditCatchesTamperedReport(t *testing.T) {
	restore := SetAuditMode(invariant.ModeStrict)
	t.Cleanup(restore)
	restoreTamper := SetAuditTamper(func(r *RunReport) {
		r.L2.Hits[0]++ // break accesses = hits + misses
	})
	t.Cleanup(restoreTamper)

	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorkload(cfg, workload.Profiles()[0], 1, 5_000)
	if err == nil {
		t.Fatal("tampered report passed strict audit")
	}
	var ie *invariant.Error
	if !errors.As(err, &ie) {
		t.Fatalf("error type %T, want *invariant.Error", err)
	}
	var hook interface{ InvariantViolations() []string }
	if !errors.As(err, &hook) || len(hook.InvariantViolations()) == 0 {
		t.Fatalf("no structured violations on %v", err)
	}
	if !strings.Contains(hook.InvariantViolations()[0], "l2.conservation") {
		t.Fatalf("unexpected violation: %v", hook.InvariantViolations())
	}
}

// TestAuditOffSkipsTamper: off mode must not even look at the report.
func TestAuditOffSkipsTamper(t *testing.T) {
	restore := SetAuditMode(invariant.ModeOff)
	t.Cleanup(restore)
	restoreTamper := SetAuditTamper(func(r *RunReport) { r.DRAMWrites += 99 })
	t.Cleanup(restoreTamper)

	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(cfg, workload.Profiles()[0], 1, 5_000); err != nil {
		t.Fatalf("off mode failed a run: %v", err)
	}
}

// TestAuditWarnDoesNotFail: warn mode logs but returns the report.
func TestAuditWarnDoesNotFail(t *testing.T) {
	restore := SetAuditMode(invariant.ModeWarn)
	t.Cleanup(restore)
	restoreTamper := SetAuditTamper(func(r *RunReport) { r.DRAMReads = ^uint64(0) })
	t.Cleanup(restoreTamper)

	before := AuditWarnings()
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(cfg, workload.Profiles()[0], 1, 5_000); err != nil {
		t.Fatalf("warn mode failed a run: %v", err)
	}
	if AuditWarnings() != before+1 {
		t.Fatalf("warn counter did not advance: %d -> %d", before, AuditWarnings())
	}
}
