package sim

import (
	"fmt"

	"mobilecache/internal/config"
	"mobilecache/internal/energy"
	"mobilecache/internal/sample"
	"mobilecache/internal/trace"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// This file adds set-sampled workload runs: the machine comes from
// BuildSampled, the replay stream is filtered to the selected sets,
// and the finished report is scaled from the 1/Factor raw counters
// back to full-cache estimates. The invariant audit runs on the RAW
// counters — conservation must hold for what was actually simulated —
// and because every integer counter scales by the same factor, the
// scaled report satisfies the same exact identities (the per-class
// energy ratio correction only touches float buckets, whose audit
// checks are sign and sum consistency).
//
// With a disabled spec (factor <= 1) every entry point here is
// behaviorally identical to its unsampled counterpart: same machine,
// same cursor, same report, SampleFactor zero.

// scaleBreakdown scales one energy account by the sampling factor.
func scaleBreakdown(b *energy.Breakdown, f float64) {
	b.ReadJ *= f
	b.WriteJ *= f
	b.LeakageJ *= f
	b.RefreshJ *= f
}

// scaleReport extrapolates a sampled run's raw counters to full-cache
// estimates. Every extensive quantity — instructions, cycles, event
// counts, energy in every bucket and domain — scales by the factor;
// intensive and structural quantities (capacities, the partition
// trajectory, which is reported in compressed sampled time) do not.
//
// The per-reference quantities are the exception to the nominal
// 1/factor rule: the access count and the L1 dynamic energy buckets
// are charged once per reference, and per-reference popularity of the
// selected groups can be far from 1/factor (a few hot data blocks
// dominate L1 traffic). The filter measures the true seen/kept ratio
// per op class, and its Stats carry it here so the access count
// scales by the total ratio, L1I reads by the ifetch ratio and L1D
// reads/writes by the load/store ratios. Everything set-indexed (L2,
// DRAM) or time-based (leakage, refresh) stays on the nominal factor,
// which the gap redistribution in the filter makes unbiased.
func scaleReport(rep *RunReport, factor int, st sample.Stats) {
	if factor <= 1 {
		return
	}
	f := uint64(factor)
	rep.CPU.Instructions *= f
	rep.CPU.Cycles *= f
	// The access count is per-reference, not per-set: scale it by the
	// measured total seen/kept ratio, which for a cold run reconstructs
	// the full record count exactly (the filter saw every raw record).
	// Nominal 1/factor would overstate it whenever hot blocks cluster
	// in the selected groups — by >2x on the zipfian app profiles.
	rep.CPU.Accesses = uint64(float64(rep.CPU.Accesses)*st.TotalRatio(factor) + 0.5)
	rep.CPU.StallCycles *= f
	rep.CPU.IdleCycles *= f
	for d := range rep.CPU.CyclesByDomain {
		rep.CPU.CyclesByDomain[d] *= f
	}
	for d := 0; d < trace.NumDomains; d++ {
		rep.L2.Accesses[d] *= f
		rep.L2.Hits[d] *= f
		rep.L2.Misses[d] *= f
	}
	rep.L2.Evictions *= f
	rep.L2.InterferenceEvictions *= f
	rep.L2.Writebacks *= f
	rep.L2.ExpiryInvalidations *= f
	rep.L2.Refreshes *= f
	rep.L2.EagerWritebacks *= f
	rep.L2.CleanExpiries *= f
	rep.L2.DirtyExpiries *= f
	rep.L2.FaultExpiries *= f
	rep.FlushWritebacks *= f
	rep.DRAMReads *= f
	rep.DRAMWrites *= f
	ff := float64(factor)
	scaleBreakdown(&rep.Energy.L1I, ff)
	scaleBreakdown(&rep.Energy.L1D, ff)
	scaleBreakdown(&rep.Energy.L2, ff)
	rep.Energy.DRAMJ *= ff
	// Re-scale the reference-proportional buckets from the nominal
	// factor to the measured per-class ratios.
	rep.Energy.L1I.ReadJ *= st.Ratio(trace.Ifetch, factor) / ff
	rep.Energy.L1D.ReadJ *= st.Ratio(trace.Load, factor) / ff
	rep.Energy.L1D.WriteJ *= st.Ratio(trace.Store, factor) / ff
}

// sampledSource filters src through the machine's selector; an
// unsampled machine replays src untouched (preserving its concrete
// type, and with it the CPU's cursor fast paths). The second return
// is the filter itself when one was interposed — finishSampled reads
// its measured bias ratios.
func sampledSource(m *Machine, src trace.Source) (trace.Source, *sample.Source) {
	if m.Sample == nil {
		return src, nil
	}
	fs := sample.NewSource(m.Sample, src)
	return fs, fs
}

// statser yields the filter statistics of a sampled replay stream —
// either live from the interposed sample.Source, or recorded alongside
// a cached pre-filtered trace. It is read only after the replay
// finishes, so a live source reports its final counts.
type statser interface{ Stats() sample.Stats }

// staticStats adapts recorded stats (from the arena's derived-trace
// cache) to the statser the scaler reads.
type staticStats sample.Stats

func (st staticStats) Stats() sample.Stats { return sample.Stats(st) }

// finishSampled stamps the factor, audits the raw counters, then
// scales. The audit-before-scale order is deliberate: conservation is
// checked on what was simulated, and the factor rides along in the
// report so the auditor can apply sampled-mode context.
func finishSampled(m *Machine, fs statser, rep RunReport) (RunReport, error) {
	if m.Sample != nil {
		rep.SampleFactor = m.Sample.Factor()
	}
	rep, err := auditExit(rep, nil)
	if err != nil {
		return rep, err
	}
	if fs != nil {
		scaleReport(&rep, rep.SampleFactor, fs.Stats())
	}
	return rep, nil
}

// filteredTrace returns the machine's sampled replay stream for
// (prof, seed, accesses) from the arena's derived-trace cache. The
// sample filter is a deterministic per-record transform of the base
// trace, so it runs ONCE per (trace, spec, block size) — materializing
// the kept records with their redistributed gaps plus the filter's
// seen/kept statistics — and every machine of a sweep replays the
// result zero-copy. This is what makes the sampled quick matrix
// near-linear in 1/Factor: filtering on the fly would pay the bulk
// decode and selector on every raw record of every cell, capping the
// speedup near 2.5x regardless of factor. The materialized stream is
// bit-identical to what the on-the-fly filter emits (same transform,
// same order), so results do not depend on which path served a run.
func filteredTrace(store *tracestore.Store, m *Machine, prof workload.Profile, seed uint64, accesses int) (trace.Source, sample.Stats, error) {
	sel := m.Sample
	variant := fmt.Sprintf("sample:%s:b%d", sel.Spec(), sel.BlockBytes())
	tr, meta, err := store.DeriveTrace(prof, seed, accesses, variant,
		func(base tracestore.Trace) (*trace.Packed, []trace.Access, any, error) {
			fs := sample.NewSource(sel, base.Cursor())
			out := make([]trace.Access, 0, accesses/sel.Factor()+16)
			var buf [512]trace.Access
			for {
				n := fs.Decode(buf[:])
				out = append(out, buf[:n]...)
				if n < len(buf) {
					break
				}
			}
			return trace.PackSlice(out), out, fs.Stats(), nil
		})
	if err != nil {
		return nil, sample.Stats{}, err
	}
	return tr.Cursor(), meta.(sample.Stats), nil
}

// RunSampledTrace replays a prepared source on a (possibly sampled)
// machine and returns the scaled, audited report. maxAccesses bounds
// the raw records consumed — the same trace extent a full run of the
// same bound covers — not the post-filter count.
func RunSampledTrace(m *Machine, name string, src trace.Source, maxAccesses uint64) (RunReport, error) {
	if m.Sample == nil {
		return auditExit(RunTrace(m, name, src, maxAccesses), nil)
	}
	if maxAccesses > 0 {
		src = trace.NewLimitSource(src, int(maxAccesses))
	}
	fsrc, fs := sampledSource(m, src)
	return finishSampled(m, fs, RunTrace(m, name, fsrc, 0))
}

// RunWorkloadSampled is RunWorkload under a sampling spec: the full
// trace is generated, the selector keeps ~1/Factor of it, and the
// scaled report estimates what the full replay would have measured.
func RunWorkloadSampled(cfg config.Machine, prof workload.Profile, seed uint64, accesses int, spec sample.Spec) (RunReport, error) {
	if !spec.Norm().Enabled() {
		return RunWorkload(cfg, prof, seed, accesses)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := BuildSampled(cfg, spec)
	if err != nil {
		return RunReport{}, err
	}
	gen, err := workload.NewGenerator(prof, seed, workload.PhaseLen(prof, accesses))
	if err != nil {
		return RunReport{}, err
	}
	fsrc, fs := sampledSource(m, trace.NewLimitSource(gen, accesses))
	return finishSampled(m, fs, RunTrace(m, prof.Name, fsrc, 0))
}

// RunWorkloadFromSampled is the store-aware sampled run: the arena
// generates and caches the FULL trace (shared with unsampled runs of
// the same cell) and additionally caches the filtered derived stream,
// so the per-cell replay touches only the ~1/Factor kept records.
func RunWorkloadFromSampled(store *tracestore.Store, cfg config.Machine, prof workload.Profile, seed uint64, accesses int, spec sample.Spec) (RunReport, error) {
	if !spec.Norm().Enabled() {
		return RunWorkloadFrom(store, cfg, prof, seed, accesses)
	}
	if store == nil {
		return RunWorkloadSampled(cfg, prof, seed, accesses, spec)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := BuildSampled(cfg, spec)
	if err != nil {
		return RunReport{}, err
	}
	src, st, err := filteredTrace(store, m, prof, seed, accesses)
	if err != nil {
		return RunReport{}, err
	}
	return finishSampled(m, staticStats(st), RunTrace(m, prof.Name, src, 0))
}

// RunWarmWorkloadFromSampled is the warm-measurement sampled run. The
// warmup boundary is access-denominated, so it compresses with the
// stream: warmup/Factor filtered records warm the machine, and the
// measured remainder covers the same trace extent the full run
// measures. Counters are two-snapshot diffs, so scaling composes.
func RunWarmWorkloadFromSampled(store *tracestore.Store, cfg config.Machine, prof workload.Profile, seed uint64, warmup, measure int, spec sample.Spec) (RunReport, error) {
	spec = spec.Norm()
	if !spec.Enabled() {
		return RunWarmWorkloadFrom(store, cfg, prof, seed, warmup, measure)
	}
	if store == nil {
		return RunWarmWorkloadSampled(cfg, prof, seed, warmup, measure, spec)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := BuildSampled(cfg, spec)
	if err != nil {
		return RunReport{}, err
	}
	src, st, err := filteredTrace(store, m, prof, seed, warmup+measure)
	if err != nil {
		return RunReport{}, err
	}
	return finishSampled(m, staticStats(st), RunWarm(m, prof.Name, src, uint64(warmup)/uint64(spec.Factor), 0))
}

// RunWarmWorkloadSampled is the generator-driven warm sampled run.
func RunWarmWorkloadSampled(cfg config.Machine, prof workload.Profile, seed uint64, warmup, measure int, spec sample.Spec) (RunReport, error) {
	spec = spec.Norm()
	if !spec.Enabled() {
		return RunWarmWorkload(cfg, prof, seed, warmup, measure)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := BuildSampled(cfg, spec)
	if err != nil {
		return RunReport{}, err
	}
	total := warmup + measure
	gen, err := workload.NewGenerator(prof, seed, workload.PhaseLen(prof, total))
	if err != nil {
		return RunReport{}, err
	}
	fsrc, fs := sampledSource(m, trace.NewLimitSource(gen, total))
	return finishSampled(m, fs, RunWarm(m, prof.Name, fsrc, uint64(warmup)/uint64(spec.Factor), 0))
}
