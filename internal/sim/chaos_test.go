package sim

import (
	"strings"
	"testing"

	"mobilecache/internal/runner"
	"mobilecache/internal/workload"
)

func TestChaosOffByDefault(t *testing.T) {
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ProfileByName("music")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(cfg, prof, 1, 1000); err != nil {
		t.Fatalf("clean run failed without chaos: %v", err)
	}
}

func TestChaosRatesAndDeterminism(t *testing.T) {
	restore := InstallChaos(&Chaos{PanicRate: 0.25, ErrorRate: 0.25, Seed: 42})
	t.Cleanup(restore)
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ProfileByName("music")
	if err != nil {
		t.Fatal(err)
	}
	outcome := func(seed uint64) string {
		var res string
		func() {
			defer func() {
				if r := recover(); r != nil {
					res = "panic"
				}
			}()
			if _, err := RunWorkload(cfg, prof, seed, 500); err != nil {
				res = "error"
				return
			}
			res = "ok"
		}()
		return res
	}
	counts := map[string]int{}
	for seed := uint64(0); seed < 40; seed++ {
		first := outcome(seed)
		counts[first]++
		// Same cell identity must fail the same way every time.
		if again := outcome(seed); again != first {
			t.Fatalf("seed %d: outcome changed %s -> %s", seed, first, again)
		}
	}
	if counts["panic"] == 0 || counts["error"] == 0 || counts["ok"] == 0 {
		t.Fatalf("chaos rates not exercised over 40 cells: %v", counts)
	}
}

func TestChaosFlakyIsTransientOnce(t *testing.T) {
	restore := InstallChaos(&Chaos{FlakyRate: 1, Seed: 7})
	t.Cleanup(restore)
	cfg, err := MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := workload.ProfileByName("music")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunWorkload(cfg, prof, 9, 500)
	if err == nil || !runner.IsTransient(err) {
		t.Fatalf("first attempt err = %v, want transient", err)
	}
	if !strings.Contains(err.Error(), "chaos") {
		t.Fatalf("error does not identify chaos: %v", err)
	}
	if _, err := RunWorkload(cfg, prof, 9, 500); err != nil {
		t.Fatalf("second attempt should succeed, got %v", err)
	}
}

func TestInstallChaosRestores(t *testing.T) {
	restore := InstallChaos(&Chaos{ErrorRate: 1})
	restore()
	cfg, _ := MachineByName("baseline-sram")
	prof, _ := workload.ProfileByName("music")
	if _, err := RunWorkload(cfg, prof, 1, 500); err != nil {
		t.Fatalf("chaos still active after restore: %v", err)
	}
}
