// Package sim assembles machines from configs and runs workloads on
// them, producing the uniform RunReport every experiment consumes. It
// also defines the six standard machines the paper compares:
//
//	baseline-sram  1MB 16-way unified SRAM L2 (normalization baseline)
//	baseline-stt   1MB 16-way unified long-retention STT-RAM L2
//	baseline-drowsy 1MB 16-way drowsy SRAM L2 (circuit-level baseline)
//	sp             static partition, 512KB user + 256KB kernel, SRAM
//	sp-mr          static partition, multi-retention STT-RAM
//	dp             dynamic partition, 1MB 16-way SRAM, way gating
//	dp-sr          dynamic partition, short-retention STT-RAM
package sim

import (
	"fmt"
	"math/bits"
	"sync"

	"mobilecache/internal/config"
	"mobilecache/internal/core"
	"mobilecache/internal/cpu"
	"mobilecache/internal/mem"
	"mobilecache/internal/sample"
	"mobilecache/internal/trace"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Machine is a built, runnable machine.
type Machine struct {
	Config config.Machine
	CPU    *cpu.CPU
	Hier   *mem.Hierarchy
	L2     core.L2
	DRAM   *mem.DRAM
	// Dynamic is non-nil when the L2 is the dynamic design, giving
	// experiments access to the partition history.
	Dynamic *core.DynamicPartition
	// Static is non-nil when the L2 is the static design.
	Static *core.StaticPartition
	// Unified is non-nil for unified L2s.
	Unified *core.Unified
	// Drowsy is non-nil for the drowsy-SRAM baseline.
	Drowsy *core.DrowsyUnified
	// Sample is non-nil for a set-sampled machine (BuildSampled with an
	// enabled spec): replay sources must be filtered through it, and
	// the resulting raw report covers 1/Factor of the workload.
	Sample *sample.Selector
}

// Build assembles a runnable machine from its description.
func Build(cfg config.Machine) (*Machine, error) {
	return build(cfg, nil)
}

// BuildSampled assembles a set-sampled machine: only the sets the
// spec's selector keeps receive traffic, and every time-denominated
// machine constant (retention, refresh cadence, drowsy window, idle
// cadence, repartition epoch) is compressed by the sampling factor to
// match the compressed replay clock. A disabled spec (factor <= 1)
// builds the identical machine Build does, selector-free.
func BuildSampled(cfg config.Machine, spec sample.Spec) (*Machine, error) {
	spec = spec.Norm()
	if !spec.Enabled() {
		return build(cfg, nil)
	}
	blockBytes, err := sampleBlockBytes(cfg)
	if err != nil {
		return nil, err
	}
	sel, err := sample.NewSelector(spec, blockBytes)
	if err != nil {
		return nil, err
	}
	return build(cfg, sel)
}

// sampleBlockBytes validates the geometry set sampling requires — one
// common block size across every level (the selector keys on it) and
// at least one set per selection group in every cache — and returns
// that block size.
func sampleBlockBytes(cfg config.Machine) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	type level struct {
		name             string
		blockBytes, sets int
	}
	levels := []level{
		{"L1I", cfg.L1I.BlockBytes, cfg.L1I.SizeKB * 1024 / (cfg.L1I.Ways * cfg.L1I.BlockBytes)},
		{"L1D", cfg.L1D.BlockBytes, cfg.L1D.SizeKB * 1024 / (cfg.L1D.Ways * cfg.L1D.BlockBytes)},
	}
	for _, s := range []*config.Segment{cfg.Unified, cfg.User, cfg.Kernel} {
		if s != nil {
			levels = append(levels, level{s.Name, s.BlockBytes, s.SizeKB * 1024 / (s.Ways * s.BlockBytes)})
		}
	}
	blockBytes := levels[0].blockBytes
	for _, l := range levels {
		if l.blockBytes != blockBytes {
			return 0, fmt.Errorf("sim: machine %s: set sampling needs one block size across levels, got %d (%s) vs %d (%s)",
				cfg.Name, blockBytes, levels[0].name, l.blockBytes, l.name)
		}
		if l.sets < sample.NumGroups {
			return 0, fmt.Errorf("sim: machine %s: %s has %d sets, set sampling needs at least %d per cache",
				cfg.Name, l.name, l.sets, sample.NumGroups)
		}
	}
	return blockBytes, nil
}

// compressCycles divides a time constant by the sampling factor,
// keeping a nonzero constant nonzero.
func compressCycles(v, factor uint64) uint64 {
	if v == 0 || factor <= 1 {
		return v
	}
	if v /= factor; v == 0 {
		v = 1
	}
	return v
}

func build(cfg config.Machine, sel *sample.Selector) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	factor := uint64(1)
	if sel != nil {
		factor = uint64(sel.Factor())
	}
	compress := func(seg *core.SegmentConfig) {
		if factor > 1 {
			seg.TimeCompress = factor
		}
	}
	dram := mem.NewDRAM(cfg.DRAMConfig())
	wb := func(addr uint64) { dram.Write(addr) }

	m := &Machine{Config: cfg, DRAM: dram, Sample: sel}
	var l2 core.L2
	switch cfg.Scheme {
	case config.SchemeUnified:
		seg, err := cfg.Unified.ToCore()
		if err != nil {
			return nil, err
		}
		compress(&seg)
		u, err := core.NewUnified(seg, wb)
		if err != nil {
			return nil, err
		}
		m.Unified = u
		l2 = u
	case config.SchemeStatic:
		us, err := cfg.User.ToCore()
		if err != nil {
			return nil, err
		}
		ks, err := cfg.Kernel.ToCore()
		if err != nil {
			return nil, err
		}
		compress(&us)
		compress(&ks)
		sp, err := core.NewStaticPartition(cfg.Name, us, ks, wb)
		if err != nil {
			return nil, err
		}
		m.Static = sp
		l2 = sp
	case config.SchemeDynamic:
		seg, err := cfg.Unified.ToCore()
		if err != nil {
			return nil, err
		}
		compress(&seg)
		dc := cfg.DynamicConfig(seg)
		if sel != nil {
			// The controller's clocks are access-denominated: the epoch
			// compresses with the stream, and the monitors both follow
			// the live sets and open their subsampling by log2(factor)
			// so each epoch still sees a full-strength utility signal.
			dc.EpochAccesses = compressCycles(dc.EpochAccesses, factor)
			shift := uint(bits.TrailingZeros64(factor))
			if dc.SampleShift > shift {
				dc.SampleShift -= shift
			} else {
				dc.SampleShift = 0
			}
			dc.Sample = sel
		}
		dp, err := core.NewDynamicPartition(dc, wb)
		if err != nil {
			return nil, err
		}
		m.Dynamic = dp
		l2 = dp
	case config.SchemeDrowsy:
		seg, err := cfg.Unified.ToCore()
		if err != nil {
			return nil, err
		}
		compress(&seg)
		dc := cfg.DrowsyConfig(seg)
		dc.WindowCycles = compressCycles(dc.WindowCycles, factor)
		dw, err := core.NewDrowsyUnified(dc, wb)
		if err != nil {
			return nil, err
		}
		m.Drowsy = dw
		l2 = dw
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q", cfg.Scheme)
	}
	m.L2 = l2

	hier, err := mem.NewHierarchy(cfg.L1I.L1Config("L1I"), cfg.L1D.L1Config("L1D"), l2, dram)
	if err != nil {
		return nil, err
	}
	hier.NextLinePrefetch = cfg.Prefetch
	if sel != nil {
		hier.SampleFilter = sel.SelectsAddr
	}
	m.Hier = hier
	c, err := cpu.New(cpu.Config{
		BaseCPI:    cfg.BaseCPI,
		IdleEvery:  compressCycles(cfg.IdleEvery, factor),
		IdleCycles: compressCycles(cfg.IdleCycles, factor),
	}, hier)
	if err != nil {
		return nil, err
	}
	m.CPU = c
	return m, nil
}

// RunReport is the uniform outcome record of one (machine, workload)
// simulation.
type RunReport struct {
	Machine  string
	Workload string

	CPU cpu.Result
	L2  core.L2Stats

	Energy mem.EnergyReport
	// L2InstalledBytes and L2PoweredBytes snapshot capacity at run end.
	L2InstalledBytes uint64
	L2PoweredBytes   uint64

	// DRAMReads / DRAMWrites are the main-memory traffic.
	DRAMReads  uint64
	DRAMWrites uint64

	// History is the dynamic design's partition trajectory (nil
	// otherwise).
	History []core.PartitionDecision
	// FlushWritebacks is the dynamic design's repartition cost.
	FlushWritebacks uint64

	// SampleFactor is the set-sampling denominator of a sampled run
	// whose counters have been scaled back to full-cache estimates;
	// zero (or one) marks an exact, unsampled report.
	SampleFactor int `json:",omitempty"`

	// Segments is the segment count of a stitched segmented replay
	// (RunSegmented); zero marks an ordinary serial report.
	Segments int `json:",omitempty"`
}

// L2EnergyJ is the L2's total energy — the quantity the paper's 75%/85%
// claims are about.
func (r RunReport) L2EnergyJ() float64 { return r.Energy.L2.Total() }

// IPC forwards the CPU's metric.
func (r RunReport) IPC() float64 { return r.CPU.IPC() }

// RunTrace replays a prepared source on the machine.
func RunTrace(m *Machine, name string, src trace.Source, maxAccesses uint64) RunReport {
	res := m.CPU.Run(src, maxAccesses)
	rep := RunReport{
		Machine:          m.Config.Name,
		Workload:         name,
		CPU:              res,
		L2:               m.L2.Stats(),
		Energy:           m.Hier.Energy(),
		L2InstalledBytes: m.L2.SizeBytes(),
		L2PoweredBytes:   m.L2.PoweredBytes(),
		DRAMReads:        m.DRAM.Reads(),
		DRAMWrites:       m.DRAM.Writes(),
	}
	if m.Dynamic != nil {
		rep.History = m.Dynamic.History()
		rep.FlushWritebacks = m.Dynamic.FlushWritebacks()
	}
	return rep
}

// RunWorkload builds the machine fresh, generates the app's trace and
// replays it. Machines are single-use: each run gets cold caches.
func RunWorkload(cfg config.Machine, prof workload.Profile, seed uint64, accesses int) (RunReport, error) {
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := Build(cfg)
	if err != nil {
		return RunReport{}, err
	}
	gen, err := workload.NewGenerator(prof, seed, workload.PhaseLen(prof, accesses))
	if err != nil {
		return RunReport{}, err
	}
	return auditExit(RunTrace(m, prof.Name, trace.NewLimitSource(gen, accesses), 0), nil)
}

// RunWorkloadFrom is the store-aware variant of RunWorkload: the app's
// trace comes from the shared trace arena (generated once per
// (profile, seed, accesses) across every machine that replays it) and
// is replayed zero-copy from the arena's hot tier, or through a
// zero-allocation packed cursor once the budget has demoted it. A nil
// store falls back to generator-driven RunWorkload. Reports are
// identical to RunWorkload's for equal inputs — the arena caches the
// byte-identical stream.
func RunWorkloadFrom(store *tracestore.Store, cfg config.Machine, prof workload.Profile, seed uint64, accesses int) (RunReport, error) {
	if store == nil {
		return RunWorkload(cfg, prof, seed, accesses)
	}
	if err := chaosEnter(cfg.Name, prof.Name, seed); err != nil {
		return RunReport{}, err
	}
	m, err := Build(cfg)
	if err != nil {
		return RunReport{}, err
	}
	tr, err := store.GetTrace(prof, seed, accesses)
	if err != nil {
		return RunReport{}, err
	}
	return auditExit(RunTrace(m, prof.Name, tr.Cursor(), 0), nil)
}

// buildStandardMachines constructs the seven schemes of the paper's
// evaluation. The static segment sizes follow the paper's shrink: the
// partition totals 768KB against the 1MB baseline.
func buildStandardMachines() []config.Machine {
	base := config.Default() // baseline-sram

	baseSTT := config.Default()
	baseSTT.Name = "baseline-stt"
	baseSTT.Unified.Tech = "stt-long"

	// The circuit-level alternative: drowsy SRAM keeps the array but
	// drops idle lines to a state-preserving low-voltage mode.
	drowsy := config.Default()
	drowsy.Name = "baseline-drowsy"
	drowsy.Scheme = config.SchemeDrowsy

	sp := config.Default()
	sp.Name = "sp"
	sp.Scheme = config.SchemeStatic
	sp.Unified = nil
	sp.User = &config.Segment{Name: "L2-user", SizeKB: 512, Ways: 16, BlockBytes: 64, Policy: "lru", Tech: "sram", Refresh: "dirty-only"}
	sp.Kernel = &config.Segment{Name: "L2-kernel", SizeKB: 256, Ways: 16, BlockBytes: 64, Policy: "lru", Tech: "sram", Refresh: "dirty-only"}

	// SP-MR matches each segment's retention class to its block
	// behaviour (E4): second-class retention for the longer-lived user
	// blocks, a millisecond-class cheap-write point (chosen to cover
	// the measured kernel block lifetimes, per the paper's method and
	// the E10 sweep) with a dynamic refresh cap for the short-lived
	// kernel blocks.
	spmr := sp
	spmr.Name = "sp-mr"
	userSeg := *sp.User
	userSeg.Tech = "stt-medium"
	kernelSeg := *sp.Kernel
	kernelSeg.Tech = "stt-short"
	kernelSeg.RetentionS = 2.65e-3
	kernelSeg.Refresh = "periodic-all" // keep hot clean lines alive...
	kernelSeg.RefreshLimit = 3         // ...but stop refreshing idle ones
	spmr.User = &userSeg
	spmr.Kernel = &kernelSeg

	dp := config.Default()
	dp.Name = "dp"
	dp.Scheme = config.SchemeDynamic
	dp.Unified.Name = "L2-dp"
	dp.Dynamic = &config.Dynamic{EpochAccesses: 25_000, Slack: 0.003}

	// The dynamic design shares one array between both domains, so its
	// retention must cover *user* block lifetimes too; following the
	// paper's method of matching retention to measured lifetimes (E4),
	// it uses a millisecond-class relaxed-retention design point
	// rather than the kernel segment's 26.5us class.
	dpsr := config.Default()
	dpsr.Name = "dp-sr"
	dpsr.Scheme = config.SchemeDynamic
	dpsr.Dynamic = &config.Dynamic{EpochAccesses: 25_000, Slack: 0.003}
	dpsr.Unified = &config.Segment{Name: "L2-dpsr", SizeKB: 1024, Ways: 16, BlockBytes: 64, Policy: "lru", Tech: "stt-short", Refresh: "periodic-all", RetentionS: 2.65e-3, RefreshLimit: 3}

	return []config.Machine{base, baseSTT, drowsy, sp, spmr, dp, dpsr}
}

// standard memoizes the built configs: name lookups used to rebuild
// all seven machines per call, which showed up in sweep profiles.
// Callers only ever see deep copies (config.Machine holds pointers, and
// the ablation experiments mutate what they get back), so the memo can
// never be corrupted.
var standard struct {
	once     sync.Once
	machines []config.Machine
	names    []string
	index    map[string]int
}

func standardInit() {
	standard.once.Do(func() {
		standard.machines = buildStandardMachines()
		standard.names = make([]string, len(standard.machines))
		standard.index = make(map[string]int, len(standard.machines))
		for i, m := range standard.machines {
			standard.names[i] = m.Name
			standard.index[m.Name] = i
		}
	})
}

// StandardMachines returns the seven schemes of the paper's evaluation
// as independent copies of the memoized configs.
func StandardMachines() []config.Machine {
	standardInit()
	out := make([]config.Machine, len(standard.machines))
	for i, m := range standard.machines {
		out[i] = m.Clone()
	}
	return out
}

// MachineByName finds one of the standard machines, returning a copy
// the caller may freely mutate.
func MachineByName(name string) (config.Machine, error) {
	standardInit()
	if i, ok := standard.index[name]; ok {
		return standard.machines[i].Clone(), nil
	}
	return config.Machine{}, fmt.Errorf("sim: unknown standard machine %q", name)
}

// StandardMachineNames lists the standard machine names in order.
func StandardMachineNames() []string {
	standardInit()
	return append([]string(nil), standard.names...)
}
