// Package report renders experiment results as aligned ASCII tables,
// CSV, and horizontal bar charts — the textual equivalents of the
// paper's tables and figures that cmd/mcbench prints.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of string cells.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded, long rows truncated to
// the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	return append([]string(nil), t.rows[i]...)
}

// Fprint writes the table as aligned ASCII.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// String renders the table via Fprint.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Fprint(&b)
	return b.String()
}

// WriteMarkdown writes the table as a GitHub-flavoured markdown table,
// with the title as a bold caption line.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	if err := row(seps); err != nil {
		return err
	}
	for _, r := range t.rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Bars renders a horizontal bar chart: one labeled row per value,
// scaled so the largest value spans width characters.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 40
	}
	maxV, maxL := 0.0, 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "  %s  %s %.4g\n", pad(labels[i], maxL), strings.Repeat("#", n), v); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Joules formats an energy with an SI prefix.
func Joules(j float64) string {
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3f J", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3f mJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3f uJ", j*1e6)
	case j > 0:
		return fmt.Sprintf("%.3f nJ", j*1e9)
	default:
		return "0 J"
	}
}

// Bytes formats a capacity in binary units.
func Bytes(b uint64) string {
	switch {
	case b >= 1024*1024 && b%(1024*1024) == 0:
		return fmt.Sprintf("%dMB", b/(1024*1024))
	case b >= 1024:
		return fmt.Sprintf("%dKB", b/1024)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Normalize divides each value by base, guarding zero.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		if base != 0 {
			out[i] = v / base
		}
	}
	return out
}
