package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "app", "miss", "energy")
	tb.AddRow("browser", "0.12", "1.2 mJ")
	tb.AddRow("email", "0.08")
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "browser") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	// Header columns aligned: 'miss' starts at the same offset in
	// header and rows.
	hIdx := strings.Index(lines[1], "miss")
	rIdx := strings.Index(lines[3], "0.12")
	if hIdx != rIdx {
		t.Fatalf("columns misaligned: header@%d row@%d\n%s", hIdx, rIdx, out)
	}
	// Short row padded without panic.
	if !strings.Contains(lines[4], "email") {
		t.Fatal("short row missing")
	}
}

func TestTableRowCopy(t *testing.T) {
	tb := NewTable("t", "a")
	tb.AddRow("x")
	row := tb.Row(0)
	row[0] = "mutated"
	if tb.Row(0)[0] != "x" {
		t.Fatal("Row returned a live reference")
	}
}

func TestTableLongRowTruncated(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2", "3", "4")
	if got := tb.Row(0); len(got) != 2 {
		t.Fatalf("row has %d cells, want 2", len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "has,comma")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"has,comma\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWriteMarkdown(t *testing.T) {
	tb := NewTable("Caption", "a", "b")
	tb.AddRow("1", "x|y")
	var buf bytes.Buffer
	if err := tb.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "**Caption**") {
		t.Fatalf("caption missing:\n%s", out)
	}
	if !strings.Contains(out, "| a | b |") || !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("header/separator wrong:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Fatalf("pipe not escaped:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	err := Bars(&buf, "Energy", []string{"base", "sp"}, []float64{1.0, 0.25}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Energy") {
		t.Fatal("title missing")
	}
	baseHashes := strings.Count(strings.Split(out, "\n")[1], "#")
	spHashes := strings.Count(strings.Split(out, "\n")[2], "#")
	if baseHashes != 20 {
		t.Fatalf("max bar = %d chars, want 20", baseHashes)
	}
	if spHashes != 5 {
		t.Fatalf("quarter bar = %d chars, want 5", spHashes)
	}
}

func TestBarsTinyValueVisible(t *testing.T) {
	var buf bytes.Buffer
	if err := Bars(&buf, "", []string{"a", "b"}, []float64{1000, 0.001}, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatal("nonzero value rendered without any bar")
	}
}

func TestBarsMismatch(t *testing.T) {
	if err := Bars(&bytes.Buffer{}, "", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 4 {
		return 0, errFail
	}
	return len(p), nil
}

var errFail = &failError{}

type failError struct{}

func (*failError) Error() string { return "synthetic write failure" }

func TestWritersPropagateErrors(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "2")
	if err := tb.Fprint(&failWriter{}); err == nil {
		t.Error("Fprint swallowed a write error")
	}
	if err := tb.WriteMarkdown(&failWriter{}); err == nil {
		t.Error("WriteMarkdown swallowed a write error")
	}
	if err := tb.WriteCSV(&failWriter{}); err == nil {
		t.Error("WriteCSV swallowed a write error")
	}
	if err := Bars(&failWriter{}, "title", []string{"a"}, []float64{1}, 10); err == nil {
		t.Error("Bars swallowed a write error")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.756); got != "75.6%" {
		t.Fatalf("Pct = %q", got)
	}
}

func TestJoules(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{2.5, "2.500 J"},
		{3.2e-3, "3.200 mJ"},
		{4.5e-6, "4.500 uJ"},
		{6e-9, "6.000 nJ"},
		{0, "0 J"},
	}
	for _, tc := range cases {
		if got := Joules(tc.in); got != tc.want {
			t.Errorf("Joules(%g) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512B"},
		{768 * 1024, "768KB"},
		{1024 * 1024, "1MB"},
		{3 * 1024 * 1024, "3MB"},
	}
	for _, tc := range cases {
		if got := Bytes(tc.in); got != tc.want {
			t.Errorf("Bytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8}, 4)
	if got[0] != 0.5 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("normalize = %v", got)
	}
	if z := Normalize([]float64{1}, 0); z[0] != 0 {
		t.Fatal("zero base should produce zeros")
	}
}
