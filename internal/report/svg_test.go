package report

import (
	"strings"
	"testing"
)

func TestSVGGroupedBars(t *testing.T) {
	labels := []string{"browser", "email"}
	series := map[string][]float64{
		"sp-mr": {0.19, 0.18},
		"dp-sr": {0.15, 0.13},
	}
	svg, err := SVGGroupedBars("Normalized L2 energy", "normalized", labels, series, []string{"sp-mr", "dp-sr"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// 2 groups x 2 series = 4 bars plus the background rect and legend
	// swatches.
	if n := strings.Count(svg, "<rect"); n < 4+1+2 {
		t.Fatalf("rect count = %d, want >= 7", n)
	}
	for _, want := range []string{"Normalized L2 energy", "browser", "email", "sp-mr", "dp-sr"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestSVGGroupedBarsErrors(t *testing.T) {
	if _, err := SVGGroupedBars("t", "y", nil, nil, nil); err == nil {
		t.Fatal("empty figure accepted")
	}
	if _, err := SVGGroupedBars("t", "y", []string{"a"}, map[string][]float64{"s": {1, 2}}, []string{"s"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := SVGGroupedBars("t", "y", []string{"a"}, map[string][]float64{"s": {-1}}, []string{"s"}); err == nil {
		t.Fatal("negative value accepted")
	}
	if _, err := SVGGroupedBars("t", "y", []string{"a"}, map[string][]float64{}, []string{"missing"}); err == nil {
		t.Fatal("missing series accepted")
	}
}

func TestSVGGroupedBarsAllZero(t *testing.T) {
	svg, err := SVGGroupedBars("t", "y", []string{"a"}, map[string][]float64{"s": {0}}, []string{"s"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") {
		t.Fatal("zero-valued chart broken")
	}
}

func TestSVGStepLines(t *testing.T) {
	xs := []float64{0, 100, 200, 300}
	series := map[string][]float64{
		"user":   {2, 4, 6, 6},
		"kernel": {2, 3, 4, 4},
	}
	svg, err := SVGStepLines("Partition trajectory", "ways", xs, series, []string{"user", "kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg, "<path") != 2 {
		t.Fatalf("path count = %d, want 2", strings.Count(svg, "<path"))
	}
	if !strings.Contains(svg, "Partition trajectory") {
		t.Fatal("title missing")
	}
}

func TestSVGStepLinesErrors(t *testing.T) {
	if _, err := SVGStepLines("t", "y", []float64{1}, nil, []string{"s"}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := SVGStepLines("t", "y", []float64{1, 1}, map[string][]float64{"s": {1, 2}}, []string{"s"}); err == nil {
		t.Fatal("degenerate x range accepted")
	}
	if _, err := SVGStepLines("t", "y", []float64{1, 2}, map[string][]float64{"s": {1}}, []string{"s"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSVGEscaping(t *testing.T) {
	svg, err := SVGGroupedBars(`<&"title>`, "y", []string{"a<b"}, map[string][]float64{"s&t": {1}}, []string{"s&t"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `<&"title>`) || strings.Contains(svg, ">a<b<") {
		t.Fatal("XML not escaped")
	}
	if !strings.Contains(svg, "&amp;") || !strings.Contains(svg, "&lt;") {
		t.Fatal("escapes missing")
	}
}

func TestSortedSeriesNames(t *testing.T) {
	names := SortedSeriesNames(map[string][]float64{"b": nil, "a": nil, "c": nil})
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}
