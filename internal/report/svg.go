package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Minimal SVG figure rendering — enough to publish the evaluation's
// bar and line figures without any dependency. The coordinate system
// is fixed (800x440 with margins); values are scaled to fit.

const (
	svgW       = 800
	svgH       = 440
	svgLeft    = 70
	svgRight   = 20
	svgTop     = 50
	svgBottom  = 70
	plotW      = svgW - svgLeft - svgRight
	plotH      = svgH - svgTop - svgBottom
	svgFont    = "ui-sans-serif, system-ui, sans-serif"
	labelAngle = 30
)

// palette cycles through distinguishable fills.
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

type svgBuilder struct {
	strings.Builder
}

func (b *svgBuilder) open(title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		svgW, svgH, svgW, svgH)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`, svgW, svgH)
	fmt.Fprintf(b, `<text x="%d" y="28" font-family="%s" font-size="17" font-weight="bold">%s</text>`,
		svgW/2-len(title)*4, svgFont, escapeXML(title))
}

func (b *svgBuilder) axes(maxY float64, yLabel string) {
	// Y grid lines and labels at 5 ticks.
	for i := 0; i <= 5; i++ {
		y := float64(svgTop) + float64(plotH)*float64(i)/5
		v := maxY * float64(5-i) / 5
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			svgLeft, y, svgW-svgRight, y)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%s</text>`,
			svgLeft-6, y+4, svgFont, formatTick(v))
	}
	fmt.Fprintf(b, `<text x="16" y="%d" font-family="%s" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`,
		svgTop+plotH/2, svgFont, svgTop+plotH/2, escapeXML(yLabel))
	// Axis lines.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		svgLeft, svgTop, svgLeft, svgTop+plotH)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		svgLeft, svgTop+plotH, svgW-svgRight, svgTop+plotH)
}

func (b *svgBuilder) legend(names []string) {
	x := svgLeft
	y := svgH - 14
	for i, n := range names {
		fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, x, y-9, palette[i%len(palette)])
		fmt.Fprintf(b, `<text x="%d" y="%d" font-family="%s" font-size="11">%s</text>`, x+14, y, svgFont, escapeXML(n))
		x += 14 + 7*len(n) + 18
	}
}

func (b *svgBuilder) close() { b.WriteString("</svg>") }

func formatTick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) < 0.01 || math.Abs(v) >= 10000:
		return fmt.Sprintf("%.1e", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGGroupedBars renders a grouped bar chart: one group per label, one
// bar per series (in seriesOrder) within each group. Values must be
// non-negative; every series must have len(labels) values.
func SVGGroupedBars(title, yLabel string, labels []string, series map[string][]float64, seriesOrder []string) (string, error) {
	if len(labels) == 0 || len(seriesOrder) == 0 {
		return "", fmt.Errorf("report: empty figure")
	}
	maxY := 0.0
	for _, name := range seriesOrder {
		vals, ok := series[name]
		if !ok || len(vals) != len(labels) {
			return "", fmt.Errorf("report: series %q missing or wrong length", name)
		}
		for _, v := range vals {
			if v < 0 {
				return "", fmt.Errorf("report: negative bar value in %q", name)
			}
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	maxY *= 1.05

	var b svgBuilder
	b.open(title)
	b.axes(maxY, yLabel)

	groupW := float64(plotW) / float64(len(labels))
	barW := groupW * 0.8 / float64(len(seriesOrder))
	for gi, label := range labels {
		gx := float64(svgLeft) + groupW*float64(gi) + groupW*0.1
		for si, name := range seriesOrder {
			v := series[name][gi]
			h := float64(plotH) * v / maxY
			x := gx + barW*float64(si)
			y := float64(svgTop+plotH) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %.4g</title></rect>`,
				x, y, barW, h, palette[si%len(palette)], escapeXML(label), escapeXML(name), v)
		}
		lx := gx + groupW*0.4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="end" transform="rotate(-%d %.1f %d)">%s</text>`,
			lx, svgTop+plotH+16, svgFont, labelAngle, lx, svgTop+plotH+16, escapeXML(label))
	}
	b.legend(seriesOrder)
	b.close()
	return b.String(), nil
}

// SVGStepLines renders step lines (one per series) over a shared x
// axis — the shape of the dynamic partition's allocation trajectory.
func SVGStepLines(title, yLabel string, xs []float64, series map[string][]float64, seriesOrder []string) (string, error) {
	if len(xs) < 2 || len(seriesOrder) == 0 {
		return "", fmt.Errorf("report: need at least two points")
	}
	maxY, maxX, minX := 0.0, xs[0], xs[0]
	for _, x := range xs {
		if x > maxX {
			maxX = x
		}
		if x < minX {
			minX = x
		}
	}
	if maxX == minX {
		return "", fmt.Errorf("report: degenerate x range")
	}
	for _, name := range seriesOrder {
		vals, ok := series[name]
		if !ok || len(vals) != len(xs) {
			return "", fmt.Errorf("report: series %q missing or wrong length", name)
		}
		for _, v := range vals {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	maxY *= 1.1

	var b svgBuilder
	b.open(title)
	b.axes(maxY, yLabel)

	px := func(x float64) float64 {
		return float64(svgLeft) + float64(plotW)*(x-minX)/(maxX-minX)
	}
	py := func(v float64) float64 {
		return float64(svgTop+plotH) - float64(plotH)*v/maxY
	}
	for si, name := range seriesOrder {
		vals := series[name]
		var path strings.Builder
		fmt.Fprintf(&path, "M %.1f %.1f", px(xs[0]), py(vals[0]))
		for i := 1; i < len(xs); i++ {
			// Step: horizontal to the new x, then vertical.
			fmt.Fprintf(&path, " L %.1f %.1f L %.1f %.1f", px(xs[i]), py(vals[i-1]), px(xs[i]), py(vals[i]))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`, path.String(), palette[si%len(palette)])
	}
	// X tick labels at 5 positions.
	for i := 0; i <= 5; i++ {
		x := minX + (maxX-minX)*float64(i)/5
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%s</text>`,
			px(x), svgTop+plotH+16, svgFont, formatTick(x))
	}
	b.legend(seriesOrder)
	b.close()
	return b.String(), nil
}

// SortedSeriesNames returns map keys in deterministic order, for
// callers that have no natural ordering.
func SortedSeriesNames(series map[string][]float64) []string {
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
