// Package mem assembles the memory hierarchy around an L2
// organization: split L1 instruction/data caches in front, a
// fixed-latency DRAM behind, and the plumbing between them (demand
// fills, dirty writebacks, energy accounting). The L2 itself is any
// implementation of core.L2 — the unified baseline or one of the
// paper's partitioned designs plug in interchangeably.
package mem

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// RowPolicy selects the DRAM timing model.
type RowPolicy uint8

const (
	// RowFlat charges a single flat latency per access (closed-page
	// abstraction) — the default the experiments calibrate against.
	RowFlat RowPolicy = iota
	// RowOpenPage models per-bank open rows: accesses to the open row
	// are faster and cheaper, row conflicts pay precharge+activate.
	RowOpenPage
)

// DRAMConfig parameterizes the main-memory model: either a flat access
// latency (LPDDR-class abstraction) or an open-page row-buffer model.
type DRAMConfig struct {
	// Policy selects flat or open-page timing.
	Policy RowPolicy

	// LatencyCycles, ReadPJ and WritePJ drive the flat model, and are
	// also the row-miss costs of the open-page model.
	LatencyCycles uint64
	ReadPJ        float64
	WritePJ       float64

	// Open-page parameters (ignored under RowFlat):
	// RowHitCycles/RowHitPJ are the open-row costs; Banks and RowBytes
	// define the interleaving.
	RowHitCycles uint64
	RowHitPJ     float64
	Banks        int
	RowBytes     uint64
}

// DefaultDRAMConfig returns the LPDDR-style flat parameters used by
// the experiments: 200 cycles (~100ns at 2GHz) and tens of nanojoules
// per access.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Policy: RowFlat, LatencyCycles: 200, ReadPJ: 20_000, WritePJ: 22_000}
}

// OpenPageDRAMConfig returns an LPDDR-style open-page model whose
// average behaviour brackets the flat default: row hits cost 120
// cycles/12nJ, row misses 260 cycles/26nJ across 8 banks of 2KB rows.
func OpenPageDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Policy:        RowOpenPage,
		LatencyCycles: 260, ReadPJ: 26_000, WritePJ: 28_000,
		RowHitCycles: 120, RowHitPJ: 12_000,
		Banks: 8, RowBytes: 2048,
	}
}

const noOpenRow = ^uint64(0)

// DRAM is the main memory model. Like energy.Meter, it keeps only
// integer event counts on the access path — reads, writebacks, and the
// row-hit split of each — and computes energy from them at EnergyJ()
// time. The per-access work is pure integer bookkeeping; the float
// multiplies run once per report, and accumulation-order rounding
// disappears (the sum n*pJ is exact where adding pJ n times is not).
type DRAM struct {
	cfg    DRAMConfig
	reads  uint64
	writes uint64

	openRows []uint64
	// rowHitReads/rowHitWrites split the open-page row hits by
	// operation: the two sides charge different miss energies, so the
	// deferred energy computation needs the split, and the public
	// RowHits/RowMisses counters derive from them (every access
	// classifies exactly once).
	rowHitReads  uint64
	rowHitWrites uint64
}

// NewDRAM builds a DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	d := &DRAM{cfg: cfg}
	if cfg.Policy == RowOpenPage {
		banks := cfg.Banks
		if banks <= 0 {
			banks = 8
		}
		d.cfg.Banks = banks
		if d.cfg.RowBytes == 0 {
			d.cfg.RowBytes = 2048
		}
		d.openRows = make([]uint64, banks)
		for i := range d.openRows {
			d.openRows[i] = noOpenRow
		}
	}
	return d
}

// rowLookup classifies an access against the open-row state and
// updates it, returning whether it hit the open row.
func (d *DRAM) rowLookup(addr uint64) bool {
	row := addr / d.cfg.RowBytes
	bank := int(row) % d.cfg.Banks
	if d.openRows[bank] == row {
		return true
	}
	d.openRows[bank] = row
	return false
}

// Read charges one demand fill of addr and returns its latency.
func (d *DRAM) Read(addr uint64) uint64 {
	d.reads++
	if d.cfg.Policy == RowOpenPage && d.rowLookup(addr) {
		d.rowHitReads++
		return d.cfg.RowHitCycles
	}
	return d.cfg.LatencyCycles
}

// Write charges one writeback of addr (off the critical path; no
// latency returned).
func (d *DRAM) Write(addr uint64) {
	d.writes++
	if d.cfg.Policy == RowOpenPage && d.rowLookup(addr) {
		d.rowHitWrites++
	}
}

// Reads reports demand fills served.
func (d *DRAM) Reads() uint64 { return d.reads }

// Writes reports writebacks absorbed.
func (d *DRAM) Writes() uint64 { return d.writes }

// RowHits reports open-page row-buffer hits (zero under RowFlat).
func (d *DRAM) RowHits() uint64 { return d.rowHitReads + d.rowHitWrites }

// RowMisses reports row-buffer conflicts (zero under RowFlat: no
// access classifies, so the difference below is zero by construction).
func (d *DRAM) RowMisses() uint64 {
	if d.cfg.Policy != RowOpenPage {
		return 0
	}
	return d.reads + d.writes - d.rowHitReads - d.rowHitWrites
}

// EnergyJ computes total DRAM access energy from the event counts.
// Deferring the float math here (rather than accumulating joules per
// access) mirrors energy.Meter.Breakdown: the hot path stays integer,
// and each event class contributes one exactly-rounded product instead
// of n incremental additions.
func (d *DRAM) EnergyJ() float64 {
	pJ := float64(d.reads)*d.cfg.ReadPJ + float64(d.writes)*d.cfg.WritePJ
	if d.cfg.Policy == RowOpenPage {
		// Row hits charge RowHitPJ instead of the full access energy:
		// swap the difference in, per operation class.
		pJ += float64(d.rowHitReads)*(d.cfg.RowHitPJ-d.cfg.ReadPJ) +
			float64(d.rowHitWrites)*(d.cfg.RowHitPJ-d.cfg.WritePJ)
	}
	return pJ * 1e-12
}

// L1Config parameterizes one first-level cache.
type L1Config struct {
	Name       string
	SizeBytes  uint64
	Ways       int
	BlockBytes int
	// HitCycles is the L1 hit latency; it is assumed pipelined and is
	// not charged as a stall, but is reported for documentation.
	HitCycles uint64
}

// DefaultL1I returns the 32KB 2-way instruction cache used throughout.
func DefaultL1I() L1Config {
	return L1Config{Name: "L1I", SizeBytes: 32 * 1024, Ways: 2, BlockBytes: 64, HitCycles: 1}
}

// DefaultL1D returns the 32KB 4-way data cache used throughout.
func DefaultL1D() L1Config {
	return L1Config{Name: "L1D", SizeBytes: 32 * 1024, Ways: 4, BlockBytes: 64, HitCycles: 2}
}

// L1 is a first-level cache: SRAM, write-back, write-allocate.
type L1 struct {
	cfg   L1Config
	c     *cache.Cache
	meter *energy.Meter
}

// NewL1 builds an L1 from cfg.
func NewL1(cfg L1Config) (*L1, error) {
	c, err := cache.New(cache.Config{
		Name: cfg.Name, SizeBytes: cfg.SizeBytes, Ways: cfg.Ways,
		BlockBytes: cfg.BlockBytes, Policy: cache.LRU,
	})
	if err != nil {
		return nil, err
	}
	// L1s are always SRAM; leakage scales with their (small) size.
	meter := energy.NewMeter(energy.DefaultParams(energy.SRAM), cfg.SizeBytes)
	return &L1{cfg: cfg, c: c, meter: meter}, nil
}

// Stats exposes the underlying cache counters.
func (l *L1) Stats() *cache.Stats { return l.c.Stats() }

// Energy reports the L1's energy breakdown.
func (l *L1) Energy() energy.Breakdown { return l.meter.Breakdown() }

// MissRate is the L1's overall miss rate.
func (l *L1) MissRate() float64 { return l.c.Stats().MissRate() }

// Hierarchy wires CPU-visible accesses through L1s, the L2, and DRAM.
type Hierarchy struct {
	L1I  *L1
	L1D  *L1
	L2   core.L2
	DRAM *DRAM

	// L2Tap, when set, observes every L2-level access (demand misses
	// from the L1s and dirty L1 writebacks) as a trace record. The
	// static sizing experiments replay this captured stream.
	L2Tap func(a trace.Access)

	// NextLinePrefetch enables a simple L1 next-line prefetcher: on an
	// L1 data miss, the following block is fetched into the L1 as well
	// (through the L2, off the critical path). Mobile cores ship
	// stride/next-line prefetchers; the E17 experiment checks the
	// paper's conclusions hold with one enabled.
	NextLinePrefetch bool
	// SampleFilter, when set, restricts internally generated traffic to
	// the sampled block population: the prefetcher must not fetch a
	// block the replay filter would have dropped, or the sampled run
	// touches sets the scaling rules assume are idle. The demand stream
	// is filtered upstream; this guards only hierarchy-originated
	// addresses. A func field rather than a selector type keeps mem
	// free of a sample-package dependency.
	SampleFilter func(blockAddr uint64) bool
	// Prefetches counts issued prefetch fills.
	Prefetches uint64

	// lastAdvance remembers the last leakage integration point.
	lastAdvance uint64
}

// NewHierarchy assembles a hierarchy; any argument may use defaults via
// the Default* helpers.
func NewHierarchy(l1i, l1d L1Config, l2 core.L2, dram *DRAM) (*Hierarchy, error) {
	if l2 == nil {
		return nil, fmt.Errorf("mem: hierarchy needs an L2")
	}
	if dram == nil {
		return nil, fmt.Errorf("mem: hierarchy needs a DRAM")
	}
	i, err := NewL1(l1i)
	if err != nil {
		return nil, err
	}
	d, err := NewL1(l1d)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{L1I: i, L1D: d, L2: l2, DRAM: dram}, nil
}

// Access performs one CPU access at time now and returns the stall
// cycles the instruction suffers beyond its pipelined L1 hit.
//
// Model: L1 hits stall nothing. An L1 miss pays the L2 access (bank
// wait + array read); an L2 miss additionally pays DRAM. Dirty L1
// victims are written back into the L2 (write-allocate, no fetch);
// dirty L2 victims are written back to DRAM. Writebacks consume
// bandwidth and energy but do not stall the CPU.
func (h *Hierarchy) Access(a trace.Access, now uint64) uint64 {
	l1 := h.L1D
	if a.Op == trace.Ifetch {
		l1 = h.L1I
	}
	write := a.Op.IsWrite()

	// Fused allocation-free lookup: probe, access counting and hit-path
	// touch in one call — the dominant case (L1 hit) touches the cache
	// exactly once.
	if _, _, hit := l1.c.Lookup(a.Addr, write, a.Domain, now); hit {
		if write {
			l1.meter.Write(1)
		} else {
			l1.meter.Read(1)
		}
		return 0
	}
	return h.missPath(l1, a, write, now)
}

// missPath is the L1-miss continuation shared by Access and AccessPre:
// demand fill through the L2 (and DRAM on an L2 miss), victim
// writeback, and the optional next-line prefetch.
func (h *Hierarchy) missPath(l1 *L1, a trace.Access, write bool, now uint64) uint64 {
	// L1 miss: demand-read the block from L2.
	l1.meter.Read(1) // tag probe
	blockAddr := l1.c.BlockAddr(a.Addr)
	if h.L2Tap != nil {
		h.tap(blockAddr, a.PC, false, a.Domain)
	}
	l2hit, l2lat := h.L2.Access(blockAddr, false, a.Domain, now)
	stall := l2lat
	if !l2hit {
		stall += h.DRAM.Read(blockAddr)
	}

	// Fill the L1; a dirty victim goes down into the L2 as a write.
	res := l1.c.Fill(a.Addr, write, a.Domain, now)
	l1.meter.Write(1)
	if res.Evicted && res.EvictedDirty {
		l1.meter.Read(1) // victim readout
		if h.L2Tap != nil {
			h.tap(res.EvictedAddr, a.PC, true, res.EvictedDomain)
		}
		h.L2.Access(res.EvictedAddr, true, res.EvictedDomain, now)
	}

	// Next-line prefetch: bring block+1 into the L1 off the critical
	// path (no stall), unless it is already resident.
	if h.NextLinePrefetch && a.Op != trace.Ifetch {
		next := blockAddr + uint64(l1.cfg.BlockBytes)
		if h.SampleFilter != nil && !h.SampleFilter(next) {
			return stall
		}
		if _, _, hit := l1.c.Probe(next); !hit {
			h.Prefetches++
			l1.meter.Read(1)
			h.tap(next, a.PC, false, a.Domain)
			if pfHit, _ := h.L2.Access(next, false, a.Domain, now); !pfHit {
				h.DRAM.Read(next) // energy/traffic, no stall
			}
			pres := l1.c.Fill(next, false, a.Domain, now)
			l1.meter.Write(1)
			if pres.Evicted && pres.EvictedDirty {
				l1.meter.Read(1)
				h.tap(pres.EvictedAddr, a.PC, true, pres.EvictedDomain)
				h.L2.Access(pres.EvictedAddr, true, pres.EvictedDomain, now)
			}
		}
	}
	return stall
}

func (h *Hierarchy) tap(addr, pc uint64, write bool, dom trace.Domain) {
	if h.L2Tap == nil {
		return
	}
	op := trace.Load
	if write {
		op = trace.Store
	}
	h.L2Tap(trace.Access{Addr: addr, PC: pc, Op: op, Domain: dom})
}

// Advance integrates leakage in every level up to cycle now.
func (h *Hierarchy) Advance(now uint64) {
	if now < h.lastAdvance {
		return
	}
	h.L1I.meter.Advance(now)
	h.L1D.meter.Advance(now)
	h.L2.Advance(now)
	h.lastAdvance = now
}

// EnergyReport is the hierarchy-wide energy account.
type EnergyReport struct {
	L1I   energy.Breakdown
	L1D   energy.Breakdown
	L2    energy.Breakdown
	DRAMJ float64
}

// TotalJ sums every level.
func (r EnergyReport) TotalJ() float64 {
	return r.L1I.Total() + r.L1D.Total() + r.L2.Total() + r.DRAMJ
}

// Energy reports the account as of the last Advance.
func (h *Hierarchy) Energy() EnergyReport {
	return EnergyReport{
		L1I:   h.L1I.Energy(),
		L1D:   h.L1D.Energy(),
		L2:    h.L2.Energy(),
		DRAMJ: h.DRAM.EnergyJ(),
	}
}
