package mem

import (
	"mobilecache/internal/trace"
)

// This file implements the frame-precompute stage of the batched replay
// path. The per-access L1 lookup spends its first instructions deciding
// which L1 the access targets and decomposing the address into (set,
// tag) — pure functions of the record and the fixed geometry. Over a
// decoded frame those decisions vectorize into one tight pass with no
// cache-state dependencies, and the subsequent lookup loop runs
// branch-minimized: AccessPre starts directly at the tag scan via
// cache.LookupAt. The split is bit-identical to Access by construction
// — LookupAt is Lookup minus the index computation, and the miss
// continuation is the shared missPath.

// FramePre is the precomputed per-record lookup context: the target
// L1's set/tag decomposition and the decoded op classification.
type FramePre struct {
	Tag    uint64
	Set    int32
	Write  bool
	Ifetch bool
}

// PrecomputeFrame fills pre[i] for each record of the frame. pre must
// be at least len(batch) long.
func (h *Hierarchy) PrecomputeFrame(batch []trace.Access, pre []FramePre) {
	ic, dc := h.L1I.c, h.L1D.c
	_ = pre[len(batch)-1]
	for i := range batch {
		a := &batch[i]
		c := dc
		isIF := a.Op == trace.Ifetch
		if isIF {
			c = ic
		}
		set, tag := c.Index(a.Addr)
		pre[i] = FramePre{Tag: tag, Set: int32(set), Write: a.Op.IsWrite(), Ifetch: isIF}
	}
}

// AccessPre is Access with the precomputed context applied: identical
// counters, state transitions and stall cycles, minus the per-access
// routing and index arithmetic.
func (h *Hierarchy) AccessPre(a trace.Access, p FramePre, now uint64) uint64 {
	l1 := h.L1D
	if p.Ifetch {
		l1 = h.L1I
	}
	if _, hit := l1.c.LookupAt(int(p.Set), p.Tag, p.Write, a.Domain, now); hit {
		if p.Write {
			l1.meter.Write(1)
		} else {
			l1.meter.Read(1)
		}
		return 0
	}
	return h.missPath(l1, a, p.Write, now)
}
