package mem

import (
	"math/bits"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// This file implements the frame-batched hierarchy kernel of the
// replay hot path. cpu.Run stages the trace in frames of up to 256
// precomputed records (trace.FramePre: decoded access plus set/tag
// decomposition and routing) and hands each frame to AccessFrame,
// which replays it with all invariant state — tag sidecars, way
// strides, meter pointers, the line arrays — hoisted into locals once
// per frame:
//
//	hit path   branch-minimized scan of the target L1's tags sidecar
//	           row (a full-slice expression, so the bounds check lifts
//	           out of the way loop), verified against the line, then
//	           the specialized LRU touch. No Lookup call, no Result
//	           struct, no stats writes — access/hit tallies and meter
//	           counts accumulate in frame locals and flush once at the
//	           frame boundary.
//	miss path  the shared missPath, inline and in order. Misses cannot
//	           be deferred to the frame boundary: a fill changes the
//	           set the very next record may index, so eviction,
//	           writeback and interference semantics stay exact only if
//	           the miss runs at its trace position.
//
// The kernel requires both L1s in their permanent configuration
// (every way powered, LRU — cache.FrameKernelOK); otherwise the frame
// degrades to the per-record AccessPre path with identical semantics.
// Deferring the tallies is safe because nothing observes L1 stats or
// meter counts mid-frame: the CPU only calls Advance (leakage
// integration, which reads time, not counts) at frame boundaries, and
// every reporting path runs after Run returns.

// FramePre is the precomputed per-record lookup context; the concrete
// type lives in trace so the packed-trace decoder can emit it
// directly (Cursor.DecodeFrame) without a layering inversion.
type FramePre = trace.FramePre

// FrameStats is what a frame of accesses did to the clock: busy
// cycles consumed by the records' instructions, stall cycles from L1
// misses, and the per-domain split of both.
type FrameStats struct {
	Busy     uint64
	Stall    uint64
	ByDomain [trace.NumDomains]uint64
}

// FrameGeom exports both L1 geometries for the trace-side precompute,
// indexed by trace.KindData / trace.KindIfetch.
func (h *Hierarchy) FrameGeom() trace.FrameGeom {
	return trace.FrameGeom{
		trace.KindData:   h.L1D.c.Geometry(),
		trace.KindIfetch: h.L1I.c.Geometry(),
	}
}

// PrecomputeFrame fills pre[i] for each record of the frame. pre must
// be at least len(batch) long. This staging pass serves sources that
// produce []Access batches; the packed-cursor path fuses it into the
// decode loop instead (trace.Cursor.DecodeFrame).
func (h *Hierarchy) PrecomputeFrame(batch []trace.Access, pre []FramePre) {
	geom := h.FrameGeom()
	trace.PrecomputeInto(batch, pre, &geom)
}

// frameL1 is one L1's hoisted state plus its frame-local tallies.
type frameL1 struct {
	l1    *L1
	c     *cache.Cache
	meter *energy.Meter
	tags  []uint64
	ways  int
	// wayMask keeps only the cache's real ways of the fixed-width scan
	// window's match bits (the window may overlap the next set's row,
	// or the sidecar's sentinel padding, on a <4-way cache).
	wayMask uint

	acc    [trace.NumDomains]uint64
	hits   [trace.NumDomains]uint64
	reads  uint64
	writes uint64
}

func (s *frameL1) init(l1 *L1) {
	s.l1 = l1
	s.c = l1.c
	s.meter = l1.meter
	s.tags = l1.c.FrameTags()
	s.ways = l1.c.Ways()
	s.wayMask = uint(1)<<s.ways - 1
}

func (s *frameL1) flush() {
	s.c.AddFrameCounts(&s.acc, &s.hits)
	s.meter.Read(s.reads)
	s.meter.Write(s.writes)
}

// AccessFrame replays one frame of precomputed records starting at
// time now, where pre[k].Busy is the busy cycles the CPU charges
// before record k's access. It returns the frame's clock totals; the
// caller's clock advances by Busy+Stall. Semantics are bit-identical
// to calling Access per record at the same times.
func (h *Hierarchy) AccessFrame(pre []FramePre, now uint64) FrameStats {
	var fs FrameStats
	if !h.L1D.c.FrameKernelOK() || !h.L1I.c.FrameKernelOK() {
		return h.accessFrameSlow(pre, now)
	}
	var l1s [2]frameL1
	l1s[trace.KindData].init(h.L1D)
	l1s[trace.KindIfetch].init(h.L1I)
	for k := range pre {
		p := &pre[k]
		now += p.Busy
		s := &l1s[p.Kind]
		base := int(p.Set) * s.ways
		// Branchless tag match over a fixed four-wide window: fold each
		// way's compare into a bitmask instead of scanning with an early
		// break — the break's position is data-dependent and mispredicts
		// constantly, and a mispredict costs more than comparing four
		// tags (one host cache line). The constant width removes the
		// loop; wayMask drops window bits past the row's real ways
		// (possible only on the <4-way cache, where the window overlaps
		// the next row or the sidecar's sentinel padding).
		// (v|-v)>>63 is 1 exactly when v != 0.
		tg := (*[cache.FrameScanWays]uint64)(s.tags[base:])
		v0 := tg[0] ^ p.Tag
		v1 := tg[1] ^ p.Tag
		v2 := tg[2] ^ p.Tag
		v3 := tg[3] ^ p.Tag
		m := (uint((v0|-v0)>>63^1) |
			uint((v1|-v1)>>63^1)<<1 |
			uint((v2|-v2)>>63^1)<<2 |
			uint((v3|-v3)>>63^1)<<3) & s.wayMask
		// Domain values are 0 or 1 by construction; masking proves it to
		// the compiler so the tally indexing needs no bounds checks.
		dom := p.Dom & 1
		s.acc[dom]++
		var stall uint64
		if m != 0 {
			// A sidecar match is a hint (invalidTag can collide with a
			// genuine tag): verify against the line. Almost always the
			// first set bit verifies — both branches below predict well.
			way := -1
			for ; m != 0; m &= m - 1 {
				if w := bits.TrailingZeros(m); s.c.VerifyHit(base+w, p.Tag) {
					way = w
					break
				}
			}
			if way >= 0 {
				s.hits[dom]++
				if p.Write {
					s.c.TouchWriteHitLRU(base+way, dom, now)
					s.writes++
				} else {
					s.c.TouchReadHitLRU(base+way, now)
					s.reads++
				}
				fs.Busy += p.Busy
				fs.ByDomain[dom] += p.Busy
				continue
			}
		}
		// Misses leave the kernel and replay through the shared miss
		// continuation at their exact trace position.
		stall = h.missPath(s.l1, trace.Access{Addr: p.Addr, PC: p.PC, Op: p.Op(), Domain: dom}, p.Write, now)
		now += stall
		fs.Stall += stall
		fs.Busy += p.Busy
		fs.ByDomain[dom] += p.Busy + stall
	}
	l1s[trace.KindData].flush()
	l1s[trace.KindIfetch].flush()
	return fs
}

// accessFrameSlow is the frame loop over the general per-record path,
// for hierarchies whose L1s fall outside the kernel's specialization.
func (h *Hierarchy) accessFrameSlow(pre []FramePre, now uint64) FrameStats {
	var fs FrameStats
	for k := range pre {
		p := &pre[k]
		now += p.Busy
		stall := h.AccessPre(p, now)
		now += stall
		fs.Busy += p.Busy
		fs.Stall += stall
		fs.ByDomain[p.Dom] += p.Busy + stall
	}
	return fs
}

// AccessPre is Access with the precomputed context applied: identical
// counters, state transitions and stall cycles, minus the per-access
// routing and index arithmetic.
func (h *Hierarchy) AccessPre(p *FramePre, now uint64) uint64 {
	l1 := h.L1D
	if p.Kind == trace.KindIfetch {
		l1 = h.L1I
	}
	if _, hit := l1.c.LookupAt(int(p.Set), p.Tag, p.Write, p.Dom, now); hit {
		if p.Write {
			l1.meter.Write(1)
		} else {
			l1.meter.Read(1)
		}
		return 0
	}
	return h.missPath(l1, trace.Access{Addr: p.Addr, PC: p.PC, Op: p.Op(), Domain: p.Dom}, p.Write, now)
}
