package mem

import (
	"math"
	"testing"
)

// The DRAM model defers its energy computation to EnergyJ(): the
// access path counts integer events and the joules are computed once
// per report, like energy.Meter.Breakdown. An earlier revision instead
// accumulated a float64 per access; the two orderings round
// differently, so the replacement is gated here by replaying the same
// access stream through both accountings and requiring agreement to
// within 1e-9 relative — far tighter than any result the simulator
// reports, and loose enough to absorb the legitimate accumulation-
// order drift. EXPERIMENTS.md ("Accumulation-order equivalence")
// documents the methodology; make check runs this via the mem package
// race tests.

// accumDRAMEnergy replays the reference per-access accounting: it
// mirrors the deferred model's event classification but adds each
// access's joules to a float64 as the retired implementation did.
type accumDRAMEnergy struct {
	cfg      DRAMConfig
	openRows []uint64
	energyJ  float64
}

func newAccumDRAMEnergy(cfg DRAMConfig) *accumDRAMEnergy {
	a := &accumDRAMEnergy{cfg: cfg}
	if cfg.Policy == RowOpenPage {
		if a.cfg.Banks <= 0 {
			a.cfg.Banks = 8
		}
		if a.cfg.RowBytes == 0 {
			a.cfg.RowBytes = 2048
		}
		a.openRows = make([]uint64, a.cfg.Banks)
		for i := range a.openRows {
			a.openRows[i] = noOpenRow
		}
	}
	return a
}

func (a *accumDRAMEnergy) rowHit(addr uint64) bool {
	row := addr / a.cfg.RowBytes
	bank := int(row) % a.cfg.Banks
	if a.openRows[bank] == row {
		return true
	}
	a.openRows[bank] = row
	return false
}

func (a *accumDRAMEnergy) read(addr uint64) {
	if a.cfg.Policy == RowOpenPage && a.rowHit(addr) {
		a.energyJ += a.cfg.RowHitPJ * 1e-12
		return
	}
	a.energyJ += a.cfg.ReadPJ * 1e-12
}

func (a *accumDRAMEnergy) write(addr uint64) {
	if a.cfg.Policy == RowOpenPage && a.rowHit(addr) {
		a.energyJ += a.cfg.RowHitPJ * 1e-12
		return
	}
	a.energyJ += a.cfg.WritePJ * 1e-12
}

func relErrF(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / den
}

// TestDRAMEnergyDeferralEquivalence is the ≤1e-9 gate: deferred
// count-based energy vs per-access accumulation over a deterministic
// mixed read/write stream with row locality, under both row policies.
func TestDRAMEnergyDeferralEquivalence(t *testing.T) {
	const n = 200_000
	for _, tc := range []struct {
		name string
		cfg  DRAMConfig
	}{
		{"flat", DefaultDRAMConfig()},
		{"open-page", OpenPageDRAMConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDRAM(tc.cfg)
			ref := newAccumDRAMEnergy(tc.cfg)
			state := uint64(0x243f6a8885a308d3)
			for i := 0; i < n; i++ {
				state ^= state >> 12
				state ^= state << 25
				state ^= state >> 27
				r := state * 0x2545f4914f6cdd1d
				// Mostly row-local strides with occasional long jumps, a
				// quarter of the stream writebacks.
				addr := (r>>16)%(1<<12)*64 + (r>>40)%(1<<8)*(2048*8)
				if r&3 == 0 {
					d.Write(addr)
					ref.write(addr)
				} else {
					d.Read(addr)
					ref.read(addr)
				}
			}
			if err := relErrF(d.EnergyJ(), ref.energyJ); err > 1e-9 {
				t.Fatalf("deferred energy %g vs accumulated %g: rel err %g > 1e-9",
					d.EnergyJ(), ref.energyJ, err)
			}
			if d.EnergyJ() <= 0 {
				t.Fatal("stream charged no energy")
			}
		})
	}
}
