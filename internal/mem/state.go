package mem

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
)

// This file implements snapshot/restore of the memory hierarchy. A
// HierState is an independent deep copy of every mutable structure the
// access path touches — both L1 arrays and meters, the L2
// organization's opaque state, the DRAM counters and open rows, and the
// hierarchy's own prefetch/advance bookkeeping — so restoring one and
// replaying the same access stream reproduces the original run
// bit-identically.

// DRAMState is a copyable snapshot of the DRAM model's mutable state.
// Energy is not captured: the model keeps only event counts and
// computes joules at report time, so the counts are the whole state.
type DRAMState struct {
	reads        uint64
	writes       uint64
	openRows     []uint64
	rowHitReads  uint64
	rowHitWrites uint64
}

// Snapshot captures the DRAM's complete mutable state.
func (d *DRAM) Snapshot() DRAMState {
	return DRAMState{
		reads: d.reads, writes: d.writes,
		openRows:    append([]uint64(nil), d.openRows...),
		rowHitReads: d.rowHitReads, rowHitWrites: d.rowHitWrites,
	}
}

// Restore rewinds the DRAM to a snapshot of the same configuration.
func (d *DRAM) Restore(s DRAMState) {
	if len(s.openRows) != len(d.openRows) {
		panic(fmt.Sprintf("mem: restoring DRAM snapshot with %d banks, have %d", len(s.openRows), len(d.openRows)))
	}
	d.reads, d.writes = s.reads, s.writes
	copy(d.openRows, s.openRows)
	d.rowHitReads, d.rowHitWrites = s.rowHitReads, s.rowHitWrites
}

// L1State snapshots one first-level cache: array plus meter.
type L1State struct {
	cache cache.State
	meter energy.MeterState
}

// Snapshot captures the L1's complete mutable state.
func (l *L1) Snapshot() L1State {
	return L1State{cache: l.c.Snapshot(), meter: l.meter.Snapshot()}
}

// Restore rewinds the L1 to a snapshot of the same geometry.
func (l *L1) Restore(s L1State) {
	l.c.Restore(s.cache)
	l.meter.Restore(s.meter)
}

// HierState snapshots the full hierarchy.
type HierState struct {
	L1I  L1State
	L1D  L1State
	L2   core.L2State
	DRAM DRAMState

	prefetches  uint64
	lastAdvance uint64
}

// Snapshot captures the hierarchy's complete mutable state.
func (h *Hierarchy) Snapshot() *HierState {
	return &HierState{
		L1I:  h.L1I.Snapshot(),
		L1D:  h.L1D.Snapshot(),
		L2:   h.L2.Snapshot(),
		DRAM: h.DRAM.Snapshot(),

		prefetches:  h.Prefetches,
		lastAdvance: h.lastAdvance,
	}
}

// Restore rewinds the hierarchy to a snapshot taken from an identically
// constructed hierarchy. The state is copied in, so the same snapshot
// may be restored repeatedly.
func (h *Hierarchy) Restore(s *HierState) {
	h.L1I.Restore(s.L1I)
	h.L1D.Restore(s.L1D)
	h.L2.Restore(s.L2)
	h.DRAM.Restore(s.DRAM)
	h.Prefetches = s.prefetches
	h.lastAdvance = s.lastAdvance
}
