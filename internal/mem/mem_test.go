package mem

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
)

func testL2(t *testing.T, dram *DRAM) core.L2 {
	t.Helper()
	u, err := core.NewUnified(core.SegmentConfig{
		Name: "L2", SizeBytes: 64 * 1024, Ways: 8, BlockBytes: 64,
		Policy: cache.LRU, Tech: energy.SRAM, Refresh: sttram.DirtyOnly,
	}, func(addr uint64) { dram.Write(addr) })
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func testHierarchy(t *testing.T) (*Hierarchy, *DRAM) {
	t.Helper()
	dram := NewDRAM(DefaultDRAMConfig())
	h, err := NewHierarchy(DefaultL1I(), DefaultL1D(), testL2(t, dram), dram)
	if err != nil {
		t.Fatal(err)
	}
	return h, dram
}

func TestDRAMAccounting(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig())
	lat := d.Read(0x1000)
	if lat != DefaultDRAMConfig().LatencyCycles {
		t.Fatalf("read latency = %d", lat)
	}
	d.Write(0x2000)
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("counts = %d/%d", d.Reads(), d.Writes())
	}
	want := (DefaultDRAMConfig().ReadPJ + DefaultDRAMConfig().WritePJ) * 1e-12
	if got := d.EnergyJ(); got != want {
		t.Fatalf("energy = %g, want %g", got, want)
	}
	if d.RowHits() != 0 || d.RowMisses() != 0 {
		t.Fatal("flat DRAM tracked row state")
	}
}

func TestDRAMOpenPageRowBehaviour(t *testing.T) {
	cfg := OpenPageDRAMConfig()
	d := NewDRAM(cfg)
	// First touch of a row: miss. Same row again: hit, cheaper+faster.
	lat1 := d.Read(0x1000)
	lat2 := d.Read(0x1040)
	if lat1 != cfg.LatencyCycles {
		t.Fatalf("first access latency = %d, want row-miss %d", lat1, cfg.LatencyCycles)
	}
	if lat2 != cfg.RowHitCycles {
		t.Fatalf("same-row access latency = %d, want row-hit %d", lat2, cfg.RowHitCycles)
	}
	if d.RowHits() != 1 || d.RowMisses() != 1 {
		t.Fatalf("row stats = %d hits / %d misses", d.RowHits(), d.RowMisses())
	}
	// A different row in the same bank evicts the open row.
	rowStride := cfg.RowBytes * uint64(cfg.Banks)
	if lat := d.Read(0x1000 + rowStride); lat != cfg.LatencyCycles {
		t.Fatalf("bank-conflict latency = %d, want row-miss", lat)
	}
	if lat := d.Read(0x1000); lat != cfg.LatencyCycles {
		t.Fatal("evicted row still open")
	}
	// Writes participate in the same row state.
	d.Write(0x1000)
	if d.RowHits() != 2 {
		t.Fatalf("write to open row not a hit: %d hits", d.RowHits())
	}
}

func TestDRAMOpenPageEnergyCheaperOnHits(t *testing.T) {
	cfg := OpenPageDRAMConfig()
	hot := NewDRAM(cfg)
	cold := NewDRAM(cfg)
	// Sequential within a row vs strided across rows.
	for i := uint64(0); i < 32; i++ {
		hot.Read(i * 64)                                // one row: 1 miss + 31 hits
		cold.Read(i * cfg.RowBytes * uint64(cfg.Banks)) // all conflicts
	}
	if hot.EnergyJ() >= cold.EnergyJ() {
		t.Fatalf("row-friendly stream cost %g >= conflict stream %g", hot.EnergyJ(), cold.EnergyJ())
	}
}

func TestDRAMOpenPageDefaults(t *testing.T) {
	d := NewDRAM(DRAMConfig{Policy: RowOpenPage, LatencyCycles: 100, ReadPJ: 1, WritePJ: 1, RowHitCycles: 50, RowHitPJ: 0.5})
	// Banks and RowBytes default sensibly instead of dividing by zero.
	if lat := d.Read(0); lat != 100 {
		t.Fatalf("defaulted open-page read latency = %d", lat)
	}
	if lat := d.Read(64); lat != 50 {
		t.Fatalf("defaulted open-page row hit = %d", lat)
	}
}

func TestNewHierarchyValidation(t *testing.T) {
	dram := NewDRAM(DefaultDRAMConfig())
	if _, err := NewHierarchy(DefaultL1I(), DefaultL1D(), nil, dram); err == nil {
		t.Fatal("nil L2 accepted")
	}
	if _, err := NewHierarchy(DefaultL1I(), DefaultL1D(), testL2(t, dram), nil); err == nil {
		t.Fatal("nil DRAM accepted")
	}
	bad := DefaultL1I()
	bad.Ways = 0
	if _, err := NewHierarchy(bad, DefaultL1D(), testL2(t, dram), dram); err == nil {
		t.Fatal("bad L1 geometry accepted")
	}
}

func TestL1HitNoStall(t *testing.T) {
	h, _ := testHierarchy(t)
	a := trace.Access{Addr: 0x1000, Op: trace.Load, Domain: trace.User}
	stall1 := h.Access(a, 100)
	if stall1 == 0 {
		t.Fatal("cold access should stall (L2+DRAM)")
	}
	stall2 := h.Access(a, 200)
	if stall2 != 0 {
		t.Fatalf("L1 hit stalled %d cycles", stall2)
	}
}

func TestIfetchRoutesToL1I(t *testing.T) {
	h, _ := testHierarchy(t)
	h.Access(trace.Access{Addr: 0x4000, Op: trace.Ifetch, Domain: trace.User}, 1)
	h.Access(trace.Access{Addr: 0x8000, Op: trace.Load, Domain: trace.User}, 2)
	if h.L1I.Stats().TotalAccesses() != 1 {
		t.Fatalf("L1I accesses = %d, want 1", h.L1I.Stats().TotalAccesses())
	}
	if h.L1D.Stats().TotalAccesses() != 1 {
		t.Fatalf("L1D accesses = %d, want 1", h.L1D.Stats().TotalAccesses())
	}
}

func TestL2MissPaysDRAM(t *testing.T) {
	h, dram := testHierarchy(t)
	stall := h.Access(trace.Access{Addr: 0x1000, Op: trace.Load, Domain: trace.User}, 100)
	if stall < DefaultDRAMConfig().LatencyCycles {
		t.Fatalf("cold stall %d below DRAM latency", stall)
	}
	if dram.Reads() != 1 {
		t.Fatalf("DRAM reads = %d, want 1", dram.Reads())
	}
	// L2 hit (after L1 eviction) must not touch DRAM. Force an L1
	// conflict: L1D is 32KB 4-way => set stride 8KB. Access 5 blocks
	// in the same L1 set; all go to different L2 sets.
	reads := dram.Reads()
	for i := uint64(0); i < 5; i++ {
		h.Access(trace.Access{Addr: 0x100000 + i*8192, Op: trace.Load, Domain: trace.User}, 200+i*10)
	}
	missesBefore := dram.Reads() - reads
	if missesBefore != 5 {
		t.Fatalf("expected 5 cold DRAM fills, got %d", missesBefore)
	}
	// The first of those five was evicted from L1 but lives in L2.
	stall = h.Access(trace.Access{Addr: 0x100000, Op: trace.Load, Domain: trace.User}, 500)
	if dram.Reads() != reads+5 {
		t.Fatal("L2 hit went to DRAM")
	}
	if stall == 0 || stall >= DefaultDRAMConfig().LatencyCycles {
		t.Fatalf("L2-hit stall = %d, want between 0 and DRAM latency", stall)
	}
}

func TestDirtyL1WritebackReachesL2(t *testing.T) {
	h, _ := testHierarchy(t)
	// Dirty a block, then evict it from L1 via conflicting fills.
	h.Access(trace.Access{Addr: 0x100000, Op: trace.Store, Domain: trace.User}, 1)
	for i := uint64(1); i <= 4; i++ {
		h.Access(trace.Access{Addr: 0x100000 + i*8192, Op: trace.Load, Domain: trace.User}, 1+i)
	}
	st := h.L2.Stats()
	// 5 demand reads + 1 writeback write.
	if st.TotalAccesses() != 6 {
		t.Fatalf("L2 accesses = %d, want 6 (5 fills + 1 writeback)", st.TotalAccesses())
	}
	if h.L1D.Stats().Writebacks != 1 {
		t.Fatalf("L1D writebacks = %d, want 1", h.L1D.Stats().Writebacks)
	}
}

func TestL2TapSeesDemandAndWriteback(t *testing.T) {
	h, _ := testHierarchy(t)
	var tapped []trace.Access
	h.L2Tap = func(a trace.Access) { tapped = append(tapped, a) }
	h.Access(trace.Access{Addr: 0x100000, Op: trace.Store, Domain: trace.Kernel}, 1)
	for i := uint64(1); i <= 4; i++ {
		h.Access(trace.Access{Addr: 0x100000 + i*8192, Op: trace.Load, Domain: trace.User}, 1+i)
	}
	if len(tapped) != 6 {
		t.Fatalf("tap saw %d records, want 6", len(tapped))
	}
	stores := 0
	for _, a := range tapped {
		if a.Op == trace.Store {
			stores++
			if a.Domain != trace.Kernel {
				t.Fatalf("writeback domain = %v, want kernel (owner of dirty block)", a.Domain)
			}
		}
	}
	if stores != 1 {
		t.Fatalf("tap saw %d stores, want 1 writeback", stores)
	}
}

func TestDomainPreservedThroughWriteback(t *testing.T) {
	// A kernel-dirty block evicted from L1 must be written into the L2
	// as a *kernel* access even when user accesses trigger the
	// eviction — otherwise partitioned L2s would misroute it.
	h, _ := testHierarchy(t)
	h.Access(trace.Access{Addr: 0xffff800000000000, Op: trace.Store, Domain: trace.Kernel}, 1)
	for i := uint64(1); i <= 4; i++ {
		h.Access(trace.Access{Addr: 0xffff800000000000 + i*8192, Op: trace.Load, Domain: trace.User}, 1+i)
	}
	st := h.L2.Stats()
	if st.Accesses[trace.Kernel] != 2 { // 1 demand fill + 1 writeback
		t.Fatalf("kernel L2 accesses = %d, want 2", st.Accesses[trace.Kernel])
	}
}

func TestNextLinePrefetch(t *testing.T) {
	h, dram := testHierarchy(t)
	h.NextLinePrefetch = true
	// A miss on block N prefetches N+1: the next sequential access
	// must hit the L1 without touching DRAM again.
	h.Access(trace.Access{Addr: 0x10000, Op: trace.Load, Domain: trace.User}, 1)
	if h.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", h.Prefetches)
	}
	reads := dram.Reads()
	stall := h.Access(trace.Access{Addr: 0x10040, Op: trace.Load, Domain: trace.User}, 100)
	if stall != 0 {
		t.Fatalf("prefetched block stalled %d cycles", stall)
	}
	if dram.Reads() != reads {
		t.Fatal("prefetched block re-fetched from DRAM")
	}
	// Ifetches do not trigger the data prefetcher.
	pf := h.Prefetches
	h.Access(trace.Access{Addr: 0x40000, Op: trace.Ifetch, Domain: trace.User}, 200)
	if h.Prefetches != pf {
		t.Fatal("ifetch triggered the next-line prefetcher")
	}
	// Already-resident next blocks are not prefetched again.
	h.Access(trace.Access{Addr: 0x10000, Op: trace.Load, Domain: trace.User}, 300) // hit, no pf path
	if h.Prefetches != pf {
		t.Fatal("L1 hit issued a prefetch")
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	h, _ := testHierarchy(t)
	h.Access(trace.Access{Addr: 0x10000, Op: trace.Load, Domain: trace.User}, 1)
	if h.Prefetches != 0 {
		t.Fatal("prefetcher active without opt-in")
	}
	if stall := h.Access(trace.Access{Addr: 0x10040, Op: trace.Load, Domain: trace.User}, 100); stall == 0 {
		t.Fatal("next block hit without prefetching — test setup wrong")
	}
}

func TestAdvanceAccumulatesLeakage(t *testing.T) {
	h, _ := testHierarchy(t)
	h.Access(trace.Access{Addr: 0x1000, Op: trace.Load, Domain: trace.User}, 1)
	h.Advance(energy.Cycles(0.01))
	rep := h.Energy()
	if rep.L2.LeakageJ <= 0 || rep.L1D.LeakageJ <= 0 {
		t.Fatalf("leakage not integrated: %+v", rep)
	}
	if rep.TotalJ() <= rep.L2.Total() {
		t.Fatal("total must include all levels")
	}
	// Advance is monotone-safe: going backwards is a no-op.
	h.Advance(10)
	if h.Energy().L2.LeakageJ != rep.L2.LeakageJ {
		t.Fatal("backwards advance changed energy")
	}
}

func TestEnergyReportIncludesDRAM(t *testing.T) {
	h, dram := testHierarchy(t)
	h.Access(trace.Access{Addr: 0x1000, Op: trace.Load, Domain: trace.User}, 1)
	rep := h.Energy()
	if rep.DRAMJ != dram.EnergyJ() || rep.DRAMJ <= 0 {
		t.Fatalf("DRAM energy = %g, want %g > 0", rep.DRAMJ, dram.EnergyJ())
	}
}
