package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testKey(i int) Key {
	k, err := KeyOf("test-entry", i)
	if err != nil {
		panic(err)
	}
	return k
}

// writeJournal creates a journal at path with n payloads of varying
// sizes and returns the payloads.
func writeJournal(t *testing.T, path string, n int) [][]byte {
	t.Helper()
	j, err := Create(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 10+i*7)
		payloads = append(payloads, p)
		if err := j.Append(testKey(i), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	payloads := writeJournal(t, path, 3)
	entries, info, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != 3 || info.DiscardedBytes != 0 {
		t.Fatalf("info = %+v, want 3 entries, 0 discarded", info)
	}
	for i, e := range entries {
		if e.Key != testKey(i) {
			t.Fatalf("entry %d key mismatch", i)
		}
		if !bytes.Equal(e.Data, payloads[i]) {
			t.Fatalf("entry %d payload mismatch", i)
		}
	}
}

func TestKeyOfDiscriminates(t *testing.T) {
	a, err := KeyOf("machine", "app", uint64(1))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := KeyOf("machine", "app", uint64(2))
	if a == b {
		t.Fatal("different seeds produced the same key")
	}
	// Length-prefixing: part boundaries must matter.
	c, _ := KeyOf("ab", "c")
	d, _ := KeyOf("a", "bc")
	if c == d {
		t.Fatal("part boundaries do not affect the key")
	}
	e, _ := KeyOf("machine", "app", uint64(1))
	if a != e {
		t.Fatal("identical inputs produced different keys")
	}
}

// tailRecordStart locates the byte offset where the last of n records
// begins, by re-reading the journal and re-framing all but the last.
func tailRecordStart(t *testing.T, data []byte) int {
	t.Helper()
	entries, validLen, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != len(data) || len(entries) == 0 {
		t.Fatalf("journal not clean: validLen %d of %d, %d entries", validLen, len(data), len(entries))
	}
	last := entries[len(entries)-1]
	return len(data) - (frameLen + KeySize + len(last.Data))
}

// TestRecoverTruncatedAtEveryTailOffset is the property test the PR's
// crash-safety claim rests on: however many bytes of the final record
// a crash managed to write, recovery returns exactly the records
// before it.
func TestRecoverTruncatedAtEveryTailOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	writeJournal(t, full, 3)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	start := tailRecordStart(t, data)
	for cut := start; cut < len(data); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.journal", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		entries, info, err := Read(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(entries) != 2 {
			t.Fatalf("cut %d: recovered %d entries, want exactly the 2-record prefix", cut, len(entries))
		}
		if info.ValidBytes != int64(start) {
			t.Fatalf("cut %d: valid prefix %d bytes, want %d", cut, info.ValidBytes, start)
		}
		if info.DiscardedBytes != int64(cut-start) {
			t.Fatalf("cut %d: discarded %d bytes, want %d", cut, info.DiscardedBytes, cut-start)
		}
	}
}

// TestRecoverCorruptAtEveryTailByte flips each byte of the tail record
// in turn; the CRC (or framing) must reject the record every time, and
// the prefix must survive untouched.
func TestRecoverCorruptAtEveryTailByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	writeJournal(t, full, 3)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	start := tailRecordStart(t, data)
	for off := start; off < len(data); off++ {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0xff
		path := filepath.Join(dir, fmt.Sprintf("flip%d.journal", off))
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		entries, info, err := Read(path)
		if err != nil {
			t.Fatalf("flip %d: %v", off, err)
		}
		if len(entries) != 2 {
			t.Fatalf("flip %d: recovered %d entries, want 2 (corrupt tail must never be trusted)", off, len(entries))
		}
		if info.ValidBytes != int64(start) {
			t.Fatalf("flip %d: valid prefix %d, want %d", off, info.ValidBytes, start)
		}
	}
}

// TestResumeTruncatesCorruptTail: resuming over a torn tail must
// truncate it so newly appended records are reachable to recovery.
func TestResumeTruncatesCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.journal")
	writeJournal(t, path, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	start := tailRecordStart(t, data)
	// Simulate a crash halfway through the last record's write.
	if err := os.WriteFile(path, data[:start+5], 0o644); err != nil {
		t.Fatal(err)
	}

	j, entries, info, err := Resume(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || info.DiscardedBytes != 5 {
		t.Fatalf("resume saw %d entries, %d discarded; want 2 entries, 5 discarded", len(entries), info.DiscardedBytes)
	}
	if err := j.Append(testKey(9), []byte("post-crash")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	after, info2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 3 || info2.DiscardedBytes != 0 {
		t.Fatalf("after resume+append: %d entries, %d discarded; want 3 clean entries", len(after), info2.DiscardedBytes)
	}
	if string(after[2].Data) != "post-crash" || after[2].Key != testKey(9) {
		t.Fatalf("post-crash record wrong: %+v", after[2])
	}
	if !reflect.DeepEqual(after[:2], entries) {
		t.Fatal("resume changed the surviving prefix")
	}
}

func TestResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.journal")
	j, entries, info, err := Resume(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || info.DiscardedBytes != 0 {
		t.Fatalf("fresh resume: %d entries, %d discarded", len(entries), info.DiscardedBytes)
	}
	if err := j.AppendJSON(testKey(0), map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	after, _, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || string(after[0].Data) != `{"x":1}` {
		t.Fatalf("recovered %v", after)
	}
}

func TestResumePartialHeaderStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	if err := os.WriteFile(path, []byte(magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries, _, err := Resume(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries from a torn header: %v", entries)
	}
	if err := j.Append(testKey(1), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	after, _, err := Read(path)
	if err != nil || len(after) != 1 {
		t.Fatalf("after = %v, err = %v", after, err)
	}
}

// TestReadRejectsNonJournal: arbitrary files must be refused, not
// "recovered" to zero entries and then truncated by a resume.
func TestReadRejectsNonJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("these are not the records you are looking for"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Read(path); err == nil {
		t.Fatal("Read accepted a non-journal file")
	}
	if _, _, _, err := Resume(path, 0); err == nil {
		t.Fatal("Resume accepted a non-journal file")
	}
}

func TestAppendFileSharedHelper(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lines.jsonl")
	af, err := NewAppendFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := af.Append([]byte(fmt.Sprintf("{\"i\":%d}\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := "{\"i\":0}\n{\"i\":1}\n{\"i\":2}\n"
	if string(data) != want {
		t.Fatalf("append file holds %q, want %q", data, want)
	}
}
