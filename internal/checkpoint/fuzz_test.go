package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzJournalDecode hammers the recovery scanner with arbitrary bytes.
// Whatever a crash, a disk error, or an adversarial file feeds it,
// Decode must never panic, must only ever trust a prefix, and that
// prefix must be exactly the canonical encoding of the entries it
// returns (so re-appending after recovery reproduces a well-formed
// journal).
func FuzzJournalDecode(f *testing.F) {
	// A clean two-record journal, its truncations, and assorted junk.
	clean := []byte(magic)
	clean = appendFrame(clean, testFuzzKey(1), []byte("hello"))
	clean = appendFrame(clean, testFuzzKey(2), bytes.Repeat([]byte{0xAB}, 100))
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add(clean[:len(magic)+4])
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a journal"))
	huge := append([]byte(magic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, validLen, err := Decode(data)
		if err != nil {
			if len(entries) != 0 || validLen != 0 {
				t.Fatalf("error path leaked results: %d entries, validLen %d", len(entries), validLen)
			}
			return
		}
		if validLen < len(magic) || validLen > len(data) {
			t.Fatalf("validLen %d outside [%d, %d]", validLen, len(magic), len(data))
		}
		// Canonical re-encoding of the recovered entries must reproduce
		// the trusted prefix byte for byte.
		re := []byte(magic)
		for _, e := range entries {
			re = appendFrame(re, e.Key, e.Data)
		}
		if !bytes.Equal(re, data[:validLen]) {
			t.Fatalf("re-encoded prefix diverges from trusted prefix (%d entries, validLen %d)", len(entries), validLen)
		}
	})
}

func testFuzzKey(i int) Key {
	k, err := KeyOf("fuzz", i)
	if err != nil {
		panic(err)
	}
	return k
}
