package checkpoint

import (
	"fmt"
	"os"
	"sync"

	"mobilecache/internal/faultfs"
)

// AppendFile is the crash-safe append-only sink shared by the sweep
// journal and the runner's incremental failure manifest. Each Append
// lands in a single write syscall on an O_APPEND descriptor, so
// concurrent appenders can never interleave bytes inside one record,
// and the file is fsynced every SyncEvery appends and on Close, so a
// SIGKILL loses at most the records since the last sync (and a torn
// final write, which framed readers detect and discard).
//
// Errors are sticky (fsyncgate semantics): after any failed write or
// fsync, every later Append and Sync returns the first error without
// touching the file — the kernel may have dropped the dirty pages a
// failed fsync covered, so continuing to append would acknowledge
// records that can never be made durable.
type AppendFile struct {
	mu        sync.Mutex
	f         faultfs.File
	syncEvery int
	sinceSync int
	err       error // first fatal write/sync error; sticky
}

// DefaultSyncEvery is the default fsync cadence in appends.
const DefaultSyncEvery = 16

// NewAppendFile opens (creating if needed) path for appending.
// syncEvery <= 0 selects DefaultSyncEvery; 1 fsyncs every append.
func NewAppendFile(path string, syncEvery int) (*AppendFile, error) {
	return NewAppendFileFS(faultfs.OS, path, syncEvery)
}

// NewAppendFileFS is NewAppendFile over an injectable filesystem.
func NewAppendFileFS(fsys faultfs.FS, path string, syncEvery int) (*AppendFile, error) {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &AppendFile{f: f, syncEvery: syncEvery}, nil
}

// newAppendFileFrom wraps an already-positioned file (journal resume
// truncates the corrupt tail first, then hands the descriptor over).
func newAppendFileFrom(f faultfs.File, syncEvery int) *AppendFile {
	if syncEvery <= 0 {
		syncEvery = DefaultSyncEvery
	}
	return &AppendFile{f: f, syncEvery: syncEvery}
}

// Append writes p as one record. A short write poisons the file: every
// later Append returns the first error, because bytes after a partial
// record would be unreachable to a framed reader anyway.
func (a *AppendFile) Append(p []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	if _, err := a.f.Write(p); err != nil {
		a.err = fmt.Errorf("checkpoint: append to %s: %w", a.f.Name(), err)
		return a.err
	}
	a.sinceSync++
	if a.sinceSync >= a.syncEvery {
		return a.syncLocked()
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (a *AppendFile) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.err != nil {
		return a.err
	}
	return a.syncLocked()
}

func (a *AppendFile) syncLocked() error {
	if err := a.f.Sync(); err != nil {
		a.err = fmt.Errorf("checkpoint: fsync %s: %w", a.f.Name(), err)
		return a.err
	}
	a.sinceSync = 0
	return nil
}

// Close syncs and closes the file. Safe to call once.
func (a *AppendFile) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	serr := a.err
	if serr == nil && a.sinceSync > 0 {
		serr = a.f.Sync()
	}
	cerr := a.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// Name reports the underlying file path.
func (a *AppendFile) Name() string { return a.f.Name() }
