// Package checkpoint makes long sweeps crash-safe: each completed
// cell's result is appended to a framed, checksummed journal keyed by
// a content hash of everything that determines the result (machine
// spec, workload profile, seed, run length). A sweep killed at cell
// 4,999 of 5,000 resumes by replaying the journal's valid prefix and
// re-simulating only what is missing; reordering or editing the sweep
// spec cannot mis-attribute entries, because keys hash content, not
// position.
//
// On-disk format: an 8-byte magic header, then records of
//
//	[u32 length n][u32 CRC-32C of the next n bytes][32-byte key][payload]
//
// written via single-syscall appends with periodic fsync. Recovery
// scans from the start and trusts exactly the longest prefix of intact
// records: a torn final write, a truncated tail, or any corrupt byte
// fails the CRC (or the framing) and everything from that point on is
// discarded, never trusted. Resuming truncates the file back to the
// valid prefix before appending, so post-crash records are reachable.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync/atomic"

	"mobilecache/internal/faultfs"
)

// magic identifies a journal file; bump the digit on format changes.
const magic = "mcckpt1\n"

// KeySize is the byte length of a content-hash key.
const KeySize = sha256.Size

// maxRecord bounds a record's framed length: a length field beyond it
// is treated as corruption, not as a 4GB allocation request.
const maxRecord = 64 << 20

// Key identifies one journal entry by content hash.
type Key [KeySize]byte

// String renders the key as hex for logs and summaries.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf hashes the JSON encodings of parts into a Key. Each part is
// length-prefixed before hashing so ("ab","c") and ("a","bc") cannot
// collide. Marshaling is deterministic for the config/profile structs
// this repo journals (fixed field order, no maps).
func KeyOf(parts ...any) (Key, error) {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		b, err := json.Marshal(p)
		if err != nil {
			return Key{}, fmt.Errorf("checkpoint: keying %T: %w", p, err)
		}
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
		h.Write(lenBuf[:])
		h.Write(b)
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// Entry is one recovered journal record.
type Entry struct {
	Key  Key
	Data []byte
}

// RecoverInfo summarizes a recovery scan.
type RecoverInfo struct {
	// Entries is how many intact records the valid prefix holds.
	Entries int
	// ValidBytes is the length of the trusted prefix (including the
	// header); DiscardedBytes is what followed it — zero for a cleanly
	// closed journal.
	ValidBytes     int64
	DiscardedBytes int64
}

// crcTable is the Castagnoli polynomial (hardware-accelerated on
// current CPUs).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameLen is the fixed per-record overhead before the key+payload.
const frameLen = 8

// appendFrame appends the framed record for (key, data) to buf.
func appendFrame(buf []byte, key Key, data []byte) []byte {
	n := uint32(KeySize + len(data))
	var hdr [frameLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], n)
	start := len(buf) + frameLen
	buf = append(buf, hdr[:]...)
	buf = append(buf, key[:]...)
	buf = append(buf, data...)
	binary.LittleEndian.PutUint32(buf[start-4:start], crc32.Checksum(buf[start:], crcTable))
	return buf
}

// Decode scans raw journal bytes (header included) and returns the
// entries of the longest valid prefix plus its byte length. Truncated
// or corrupt tails are not an error — they are the normal post-crash
// state, reported through validLen < len(data). The only error is a
// missing or wrong magic header: such a file is not a journal at all,
// and callers must not truncate or append to it.
func Decode(data []byte) (entries []Entry, validLen int, err error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("checkpoint: missing journal magic (not a journal, or a pre-%q format)", magic)
	}
	off := len(magic)
	for {
		if len(data)-off < frameLen {
			return entries, off, nil
		}
		n := binary.LittleEndian.Uint32(data[off : off+4])
		if n < KeySize || n > maxRecord || uint64(len(data)-off-frameLen) < uint64(n) {
			return entries, off, nil
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		body := data[off+frameLen : off+frameLen+int(n)]
		if crc32.Checksum(body, crcTable) != want {
			return entries, off, nil
		}
		var e Entry
		copy(e.Key[:], body[:KeySize])
		e.Data = append([]byte(nil), body[KeySize:]...)
		entries = append(entries, e)
		off += frameLen + int(n)
	}
}

// Journal is an open, appendable checkpoint file. Appends are safe
// for concurrent use (sweep workers checkpoint from the pool).
type Journal struct {
	af       *AppendFile
	appended atomic.Int64
}

// Create starts a fresh journal at path, truncating any previous file.
// syncEvery <= 0 selects DefaultSyncEvery.
func Create(path string, syncEvery int) (*Journal, error) {
	return CreateFS(faultfs.OS, path, syncEvery)
}

// CreateFS is Create over an injectable filesystem.
func CreateFS(fsys faultfs.FS, path string, syncEvery int) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: writing header to %s: %w", path, err)
	}
	return &Journal{af: newAppendFileFrom(f, syncEvery)}, nil
}

// Read recovers the entries of the journal at path without opening it
// for writing. A missing file is zero entries, not an error.
func Read(path string) ([]Entry, RecoverInfo, error) {
	return ReadFS(faultfs.OS, path)
}

// ReadFS is Read over an injectable filesystem.
func ReadFS(fsys faultfs.FS, path string) ([]Entry, RecoverInfo, error) {
	data, err := fsys.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, RecoverInfo{}, nil
	}
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	if len(data) < len(magic) && string(data) == magic[:len(data)] {
		// Created but killed before the full header landed (this
		// includes the empty file): same as missing.
		return nil, RecoverInfo{}, nil
	}
	entries, validLen, derr := Decode(data)
	if derr != nil {
		return nil, RecoverInfo{}, fmt.Errorf("%w (file %s)", derr, path)
	}
	info := RecoverInfo{
		Entries:        len(entries),
		ValidBytes:     int64(validLen),
		DiscardedBytes: int64(len(data) - validLen),
	}
	return entries, info, nil
}

// Resume reopens the journal at path for appending, first recovering
// its valid prefix and truncating away any corrupt tail so that new
// appends land on trusted ground (appending after garbage would leave
// them unreachable to every future recovery). A missing file becomes a
// fresh journal. The recovered entries and scan summary are returned so
// the caller can skip finished work and report what a crash lost.
func Resume(path string, syncEvery int) (*Journal, []Entry, RecoverInfo, error) {
	return ResumeFS(faultfs.OS, path, syncEvery)
}

// ResumeFS is Resume over an injectable filesystem.
func ResumeFS(fsys faultfs.FS, path string, syncEvery int) (*Journal, []Entry, RecoverInfo, error) {
	entries, info, err := ReadFS(fsys, path)
	if err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	if info.ValidBytes == 0 && info.DiscardedBytes == 0 {
		j, err := CreateFS(fsys, path, syncEvery)
		if err != nil {
			return nil, nil, RecoverInfo{}, err
		}
		return j, nil, RecoverInfo{ValidBytes: int64(len(magic))}, nil
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, RecoverInfo{}, err
	}
	if info.DiscardedBytes > 0 {
		if err := f.Truncate(info.ValidBytes); err != nil {
			f.Close()
			return nil, nil, RecoverInfo{}, fmt.Errorf("checkpoint: truncating corrupt tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(info.ValidBytes, 0); err != nil {
		f.Close()
		return nil, nil, RecoverInfo{}, err
	}
	j := &Journal{af: newAppendFileFrom(f, syncEvery)}
	return j, entries, info, nil
}

// Append journals one completed result under its content key. The
// framed record is written in a single syscall; durability follows the
// journal's fsync cadence (see AppendFile).
func (j *Journal) Append(key Key, data []byte) error {
	if KeySize+len(data) > maxRecord {
		return fmt.Errorf("checkpoint: record of %d bytes exceeds the %d-byte bound", len(data), maxRecord)
	}
	frame := appendFrame(make([]byte, 0, frameLen+KeySize+len(data)), key, data)
	if err := j.af.Append(frame); err != nil {
		return err
	}
	j.appended.Add(1)
	return nil
}

// AppendJSON marshals v and journals it under key.
func (j *Journal) AppendJSON(key Key, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding entry: %w", err)
	}
	return j.Append(key, data)
}

// Appended reports how many records this handle has written.
func (j *Journal) Appended() int { return int(j.appended.Load()) }

// Sync forces everything appended so far to disk.
func (j *Journal) Sync() error { return j.af.Sync() }

// Close syncs and closes the journal.
func (j *Journal) Close() error { return j.af.Close() }
