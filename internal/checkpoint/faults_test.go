package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"mobilecache/internal/faultfs"
)

// faultPayload builds deterministic per-record payloads so frame
// lengths are known exactly (offset enumeration needs them).
func faultPayload(i int) []byte {
	return bytes.Repeat([]byte{byte('a' + i)}, 10+i*7)
}

// frameSize is the on-disk length of record i's frame.
func frameSize(i int) int { return frameLen + KeySize + len(faultPayload(i)) }

// TestAppendFileStickyAfterFsyncError pins the fsyncgate semantics the
// PR's satellite demands: after a failed Sync, every later Append must
// return the first error immediately — without writing a byte — and
// Close must report it too. Buffering past a failed fsync would
// acknowledge records the kernel may already have dropped.
func TestAppendFileStickyAfterFsyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sticky.jsonl")
	fsys := faultfs.New(faultfs.NewPlan().FsyncErrNth(1))
	af, err := NewAppendFileFS(fsys, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("first\n")); err != nil { // sync 0: clean
		t.Fatal(err)
	}
	err = af.Append([]byte("second\n")) // sync 1: EIO
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("append over failed fsync: %v, want EIO", err)
	}
	sizeAfterFault, _ := os.Stat(path)
	for i := 0; i < 3; i++ {
		serr := af.Append([]byte("third\n"))
		if !errors.Is(serr, syscall.EIO) {
			t.Fatalf("append %d after poisoning: %v, want the sticky EIO", i, serr)
		}
	}
	if st, _ := os.Stat(path); st.Size() != sizeAfterFault.Size() {
		t.Fatalf("poisoned AppendFile kept writing: %d bytes, had %d at fault time",
			st.Size(), sizeAfterFault.Size())
	}
	if err := af.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync after poisoning: %v, want the sticky EIO", err)
	}
	if err := af.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close after poisoning: %v, want the sticky EIO", err)
	}
}

// TestJournalShortWriteAtEveryOffset extends the torn-tail property
// test one level down: instead of truncating a finished file, the
// fault filesystem cuts the record's write short at every possible
// offset while the journal is being written. Whatever the offset,
// recovery must return exactly the records fsynced before the fault,
// the writer must be poisoned, and a resume must complete the journal
// byte-for-byte.
func TestJournalShortWriteAtEveryOffset(t *testing.T) {
	const records = 3
	for rec := 0; rec < records; rec++ {
		for keep := 0; keep < frameSize(rec); keep++ {
			dir := t.TempDir()
			path := filepath.Join(dir, "cells.ckpt")
			// Write index rec+1: the header is write 0, record i is
			// write i+1 (syncEvery 1 puts a sync between, not a write).
			fsys := faultfs.New(faultfs.NewPlan().ShortWriteNth(rec+1, keep))
			j, err := CreateFS(fsys, path, 1)
			if err != nil {
				t.Fatal(err)
			}
			var faultErr error
			for i := 0; i < records; i++ {
				err := j.Append(testKey(i), faultPayload(i))
				switch {
				case i < rec && err != nil:
					t.Fatalf("rec %d keep %d: record %d failed early: %v", rec, keep, i, err)
				case i == rec && !errors.Is(err, syscall.ENOSPC):
					t.Fatalf("rec %d keep %d: fault did not surface: %v", rec, keep, err)
				case i > rec && (err == nil || !errors.Is(err, faultErr)):
					t.Fatalf("rec %d keep %d: record %d not sticky-poisoned: %v", rec, keep, i, err)
				}
				if i == rec {
					faultErr = err
				}
			}
			j.Close()

			entries, info, err := Read(path)
			if err != nil {
				t.Fatalf("rec %d keep %d: read: %v", rec, keep, err)
			}
			if len(entries) != rec {
				t.Fatalf("rec %d keep %d: recovered %d entries, want the %d-record prefix",
					rec, keep, len(entries), rec)
			}
			if info.DiscardedBytes != int64(keep) {
				t.Fatalf("rec %d keep %d: discarded %d bytes, want the %d torn bytes",
					rec, keep, info.DiscardedBytes, keep)
			}

			// Resume over the torn tail with healthy storage: the
			// journal must end up identical to an unfaulted run.
			j2, resumed, _, err := Resume(path, 1)
			if err != nil {
				t.Fatalf("rec %d keep %d: resume: %v", rec, keep, err)
			}
			if len(resumed) != rec {
				t.Fatalf("rec %d keep %d: resume saw %d entries, want %d", rec, keep, len(resumed), rec)
			}
			for i := rec; i < records; i++ {
				if err := j2.Append(testKey(i), faultPayload(i)); err != nil {
					t.Fatalf("rec %d keep %d: resumed append %d: %v", rec, keep, i, err)
				}
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			final, info2, err := Read(path)
			if err != nil || len(final) != records || info2.DiscardedBytes != 0 {
				t.Fatalf("rec %d keep %d: final journal %d entries, %d discarded, err %v",
					rec, keep, len(final), info2.DiscardedBytes, err)
			}
			for i, e := range final {
				if e.Key != testKey(i) || !bytes.Equal(e.Data, faultPayload(i)) {
					t.Fatalf("rec %d keep %d: final entry %d corrupted", rec, keep, i)
				}
			}
		}
	}
}

// TestJournalENOSPCStreakThenResume interleaves an ENOSPC streak with
// journal appends at every possible start op: the writer poisons at
// the first failed op, recovery trusts only the fsynced prefix, and a
// resume on recovered storage completes the journal.
func TestJournalENOSPCStreakThenResume(t *testing.T) {
	const records = 4
	// A clean run performs: create+header-write (ops 0..1), then per
	// record one write + one sync. Sweep the streak start across all of
	// them, with a streak long enough to catch several ops.
	cleanOps := func() int {
		fsys := faultfs.New(nil)
		path := filepath.Join(t.TempDir(), "count.ckpt")
		j, err := CreateFS(fsys, path, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			if err := j.Append(testKey(i), faultPayload(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return fsys.Ops()
	}()

	for start := 0; start < cleanOps; start++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "cells.ckpt")
		fsys := faultfs.New(faultfs.NewPlan().ENOSPCStreak(start, 3))
		j, err := CreateFS(fsys, path, 1)
		if err != nil {
			// The streak caught the header write: no journal exists;
			// a fresh run on recovered storage must simply work.
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("start %d: create failed oddly: %v", start, err)
			}
			continue
		}
		completed := 0
		poisoned := false
		for i := 0; i < records; i++ {
			err := j.Append(testKey(i), faultPayload(i))
			if err == nil {
				if poisoned {
					t.Fatalf("start %d: append %d succeeded after poisoning", start, i)
				}
				completed++
				continue
			}
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("start %d: append %d: %v, want ENOSPC", start, i, err)
			}
			poisoned = true
		}
		j.Close()

		entries, _, err := Read(path)
		if err != nil {
			t.Fatalf("start %d: read: %v", start, err)
		}
		// syncEvery=1 means every acked append was fsynced before the
		// ack, so recovery must return at least the acked prefix. It may
		// return one more: a record whose write landed but whose fsync
		// failed was never acked, yet can still be on disk — harmless,
		// since resume dedups by content key.
		if len(entries) < completed {
			t.Fatalf("start %d: recovered %d entries but %d were acked as durable", start, len(entries), completed)
		}
		for i, e := range entries {
			if e.Key != testKey(i) || !bytes.Equal(e.Data, faultPayload(i)) {
				t.Fatalf("start %d: recovered entry %d corrupted", start, i)
			}
		}

		// Disk recovered: resume and finish.
		j2, resumed, _, err := Resume(path, 1)
		if err != nil {
			t.Fatalf("start %d: resume: %v", start, err)
		}
		for i := len(resumed); i < records; i++ {
			if err := j2.Append(testKey(i), faultPayload(i)); err != nil {
				t.Fatalf("start %d: resumed append %d: %v", start, i, err)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		final, info, err := Read(path)
		if err != nil || len(final) != records || info.DiscardedBytes != 0 {
			t.Fatalf("start %d: final journal %d entries, %d discarded, err %v",
				start, len(final), info.DiscardedBytes, err)
		}
	}
}

// TestAppendFileWriteErrorPoisons: a plain failed write (not just a
// failed fsync) poisons the file the same way.
func TestAppendFileWriteErrorPoisons(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.jsonl")
	fsys := faultfs.New(faultfs.NewPlan().FailNthKind(1, faultfs.OpWrite, syscall.EIO))
	af, err := NewAppendFileFS(fsys, path, 100) // no intervening syncs
	if err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("ok\n")); err != nil {
		t.Fatal(err)
	}
	if err := af.Append([]byte("boom\n")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if err := af.Append([]byte("after\n")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append after write error not sticky: %v", err)
	}
	if err := af.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("close hides the sticky error: %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "ok\n" {
		t.Fatalf("file holds %q, want only the acked record", data)
	}
}

// TestResumeAfterCrashAtEveryOp drives the journal writer into a
// simulated power loss at every op of its lifetime and proves the
// recover-then-resume contract end to end, including the loss of
// writes that were acked but not yet fsynced (syncEvery > 1): resume
// re-appends them and the final journal is complete.
func TestResumeAfterCrashAtEveryOp(t *testing.T) {
	const records = 4
	cleanOps := func() int {
		fsys := faultfs.New(nil)
		j, err := CreateFS(fsys, filepath.Join(t.TempDir(), "c.ckpt"), 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < records; i++ {
			if err := j.Append(testKey(i), faultPayload(i)); err != nil {
				t.Fatal(err)
			}
		}
		j.Close()
		return fsys.Ops()
	}()

	for crash := 0; crash < cleanOps; crash++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "cells.ckpt")
		fsys := faultfs.New(faultfs.NewPlan().CrashAtNth(crash))
		func() {
			j, err := CreateFS(fsys, path, 2)
			if err != nil {
				return // crashed before the journal existed
			}
			for i := 0; i < records; i++ {
				if j.Append(testKey(i), faultPayload(i)) != nil {
					return
				}
			}
			j.Close()
		}()

		// "Reboot": resume on healthy storage and complete every record
		// recovery did not preserve.
		j2, resumed, _, err := ResumeFS(faultfs.OS, path, 1)
		if err != nil {
			t.Fatalf("crash %d: resume: %v", crash, err)
		}
		have := map[Key]bool{}
		for _, e := range resumed {
			have[e.Key] = true
		}
		for i := 0; i < records; i++ {
			if have[testKey(i)] {
				continue
			}
			if err := j2.Append(testKey(i), faultPayload(i)); err != nil {
				t.Fatalf("crash %d: re-append %d: %v", crash, i, err)
			}
		}
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		final, info, err := Read(path)
		if err != nil || info.DiscardedBytes != 0 {
			t.Fatalf("crash %d: final read: %d discarded, err %v", crash, info.DiscardedBytes, err)
		}
		got := map[Key][]byte{}
		for _, e := range final {
			got[e.Key] = e.Data
		}
		if len(got) != records {
			t.Fatalf("crash %d: final journal has %d distinct records, want %d", crash, len(got), records)
		}
		for i := 0; i < records; i++ {
			if !bytes.Equal(got[testKey(i)], faultPayload(i)) {
				t.Fatalf("crash %d: record %d corrupted after resume", crash, i)
			}
		}
	}
}
