// Package config defines the declarative, JSON-serializable description
// of a simulated machine — CPU, L1s, the L2 scheme under study, and
// DRAM — plus validation and conversion to the runtime types. The
// cmd/mcsim tool consumes these files; the experiment harness builds
// them programmatically via sim.StandardMachines.
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/sttram"
)

// Scheme names the L2 organization families the paper compares.
type Scheme string

const (
	// SchemeUnified is a conventional shared L2 (the baselines).
	SchemeUnified Scheme = "unified"
	// SchemeStatic is the static user/kernel partition.
	SchemeStatic Scheme = "static"
	// SchemeDynamic is the dynamic way-partitioned design.
	SchemeDynamic Scheme = "dynamic"
	// SchemeDrowsy is a unified SRAM L2 with drowsy leakage management
	// — the circuit-level alternative baseline.
	SchemeDrowsy Scheme = "drowsy"
)

// L1 describes a first-level cache.
type L1 struct {
	SizeKB     int `json:"size_kb"`
	Ways       int `json:"ways"`
	BlockBytes int `json:"block_bytes"`
}

// Segment describes one L2 array (or one side of a static partition).
type Segment struct {
	Name       string `json:"name"`
	SizeKB     int    `json:"size_kb"`
	Ways       int    `json:"ways"`
	BlockBytes int    `json:"block_bytes"`
	Policy     string `json:"policy"`  // lru, plru, random, fifo, srrip
	Tech       string `json:"tech"`    // sram, stt-short, stt-medium, stt-long
	Refresh    string `json:"refresh"` // periodic-all, dirty-only, eager-writeback
	// RetentionS, when positive, replaces the technology's default
	// retention with a parametric STT-RAM design point from
	// energy.ParamsForRetention — how the paper matches a segment's
	// retention time to its measured block lifetimes. Only valid for
	// STT-RAM technologies.
	RetentionS float64 `json:"retention_s,omitempty"`
	// RefreshLimit caps consecutive idle refreshes per line (the
	// dynamic refresh scheme); 0 = unlimited.
	RefreshLimit uint32 `json:"refresh_limit,omitempty"`
	// Banks interleaves the array across independently schedulable
	// banks; 0/1 = single bank.
	Banks int `json:"banks,omitempty"`
	// RetentionJitter derates per-line retention by up to this
	// fraction (process variation); 0 = nominal.
	RetentionJitter float64 `json:"retention_jitter,omitempty"`
	// FaultBER injects stochastic retention faults: the probability,
	// per line fill, of a seeded thermal-tail early expiry (0 = ideal
	// cells). Requires an STT-RAM tech.
	FaultBER float64 `json:"fault_ber,omitempty"`
	// FaultSeed seeds the deterministic fault draws; runs with the
	// same seed fault identically.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
}

// Dynamic holds the dynamic-partition controller knobs.
type Dynamic struct {
	EpochAccesses    uint64  `json:"epoch_accesses"`
	Slack            float64 `json:"slack"`
	MinWaysPerDomain int     `json:"min_ways_per_domain"`
	SampleShift      uint    `json:"sample_shift"`
}

// Drowsy holds the drowsy-SRAM knobs.
type Drowsy struct {
	WindowCycles    uint64  `json:"window_cycles"`
	WakeCycles      uint64  `json:"wake_cycles"`
	DrowsyLeakRatio float64 `json:"drowsy_leak_ratio"`
}

// DRAM holds the main-memory parameters.
type DRAM struct {
	LatencyCycles uint64  `json:"latency_cycles"`
	ReadPJ        float64 `json:"read_pj"`
	WritePJ       float64 `json:"write_pj"`
	// Policy selects the timing model: "" or "flat" for a single
	// latency, "open-page" for the row-buffer model (the remaining
	// fields then configure it; zeros take the open-page defaults).
	Policy       string  `json:"policy,omitempty"`
	RowHitCycles uint64  `json:"row_hit_cycles,omitempty"`
	RowHitPJ     float64 `json:"row_hit_pj,omitempty"`
	Banks        int     `json:"banks,omitempty"`
	RowBytes     uint64  `json:"row_bytes,omitempty"`
}

// Machine is a full machine description.
type Machine struct {
	Name    string  `json:"name"`
	Scheme  Scheme  `json:"scheme"`
	BaseCPI float64 `json:"base_cpi"`
	// IdleEvery/IdleCycles insert an idle stretch of IdleCycles cycles
	// every IdleEvery accesses, modeling interactive think-time and
	// screen-off periods. Zero IdleEvery disables idling.
	IdleEvery  uint64 `json:"idle_every,omitempty"`
	IdleCycles uint64 `json:"idle_cycles,omitempty"`
	// Prefetch enables the L1 next-line prefetcher.
	Prefetch bool `json:"prefetch,omitempty"`

	L1I L1 `json:"l1i"`
	L1D L1 `json:"l1d"`

	// Unified is the single array for unified and dynamic schemes.
	Unified *Segment `json:"unified,omitempty"`
	// User and Kernel are the two arrays of the static scheme.
	User   *Segment `json:"user,omitempty"`
	Kernel *Segment `json:"kernel,omitempty"`
	// Dynamic configures the controller for the dynamic scheme.
	Dynamic *Dynamic `json:"dynamic,omitempty"`
	// Drowsy configures the drowsy scheme (nil takes defaults).
	Drowsy *Drowsy `json:"drowsy,omitempty"`

	DRAM DRAM `json:"dram"`
}

// Clone returns a deep copy of the machine: the pointed-to segment and
// controller structs are duplicated, so mutating the clone (as the
// ablation experiments do) can never leak into the original. This is
// what lets sim.StandardMachines memoize its configs safely.
func (m Machine) Clone() Machine {
	out := m
	if m.Unified != nil {
		seg := *m.Unified
		out.Unified = &seg
	}
	if m.User != nil {
		seg := *m.User
		out.User = &seg
	}
	if m.Kernel != nil {
		seg := *m.Kernel
		out.Kernel = &seg
	}
	if m.Dynamic != nil {
		d := *m.Dynamic
		out.Dynamic = &d
	}
	if m.Drowsy != nil {
		d := *m.Drowsy
		out.Drowsy = &d
	}
	return out
}

// Default returns the baseline machine the paper's comparisons are
// normalized to: 1MB 16-way SRAM unified L2.
func Default() Machine {
	return Machine{
		Name:    "baseline-sram",
		Scheme:  SchemeUnified,
		BaseCPI: 1.0,
		L1I:     L1{SizeKB: 32, Ways: 2, BlockBytes: 64},
		L1D:     L1{SizeKB: 32, Ways: 4, BlockBytes: 64},
		Unified: &Segment{
			Name: "L2", SizeKB: 1024, Ways: 16, BlockBytes: 64,
			Policy: "lru", Tech: "sram", Refresh: "dirty-only",
		},
		DRAM: DRAM{LatencyCycles: 200, ReadPJ: 20_000, WritePJ: 22_000},
	}
}

// Validate checks the machine description.
func (m Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("config: machine needs a name")
	}
	if m.BaseCPI <= 0 {
		return fmt.Errorf("config %s: base CPI %g must be positive", m.Name, m.BaseCPI)
	}
	for _, l1 := range []struct {
		label string
		cfg   L1
	}{{"l1i", m.L1I}, {"l1d", m.L1D}} {
		if l1.cfg.SizeKB <= 0 || l1.cfg.Ways <= 0 || l1.cfg.BlockBytes <= 0 {
			return fmt.Errorf("config %s: %s has non-positive geometry", m.Name, l1.label)
		}
	}
	if m.DRAM.LatencyCycles == 0 {
		return fmt.Errorf("config %s: DRAM latency must be positive", m.Name)
	}
	switch m.DRAM.Policy {
	case "", "flat", "open-page":
	default:
		return fmt.Errorf("config %s: unknown DRAM policy %q", m.Name, m.DRAM.Policy)
	}
	switch m.Scheme {
	case SchemeUnified:
		if m.Unified == nil {
			return fmt.Errorf("config %s: unified scheme needs a unified segment", m.Name)
		}
		if _, err := m.Unified.ToCore(); err != nil {
			return err
		}
	case SchemeStatic:
		if m.User == nil || m.Kernel == nil {
			return fmt.Errorf("config %s: static scheme needs user and kernel segments", m.Name)
		}
		if _, err := m.User.ToCore(); err != nil {
			return err
		}
		if _, err := m.Kernel.ToCore(); err != nil {
			return err
		}
	case SchemeDynamic:
		if m.Unified == nil {
			return fmt.Errorf("config %s: dynamic scheme needs a unified segment", m.Name)
		}
		seg, err := m.Unified.ToCore()
		if err != nil {
			return err
		}
		dc := m.DynamicConfig(seg)
		if err := dc.Validate(); err != nil {
			return err
		}
	case SchemeDrowsy:
		if m.Unified == nil {
			return fmt.Errorf("config %s: drowsy scheme needs a unified segment", m.Name)
		}
		seg, err := m.Unified.ToCore()
		if err != nil {
			return err
		}
		if err := m.DrowsyConfig(seg).Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("config %s: unknown scheme %q", m.Name, m.Scheme)
	}
	return nil
}

// ToCore converts a Segment to the runtime SegmentConfig.
func (s Segment) ToCore() (core.SegmentConfig, error) {
	pol := cache.LRU
	if s.Policy != "" {
		var err error
		pol, err = cache.ParsePolicy(s.Policy)
		if err != nil {
			return core.SegmentConfig{}, err
		}
	}
	tech := energy.SRAM
	if s.Tech != "" {
		var err error
		tech, err = energy.ParseTech(s.Tech)
		if err != nil {
			return core.SegmentConfig{}, err
		}
	}
	ref := sttram.DirtyOnly
	if s.Refresh != "" {
		var err error
		ref, err = sttram.ParseRefreshPolicy(s.Refresh)
		if err != nil {
			return core.SegmentConfig{}, err
		}
	}
	cfg := core.SegmentConfig{
		Name: s.Name, SizeBytes: uint64(s.SizeKB) * 1024, Ways: s.Ways,
		BlockBytes: s.BlockBytes, Policy: pol, Tech: tech, Refresh: ref,
		RefreshLimit: s.RefreshLimit, Banks: s.Banks,
		RetentionJitter: s.RetentionJitter,
		FaultBER:        s.FaultBER, FaultSeed: s.FaultSeed,
	}
	if s.RetentionS > 0 {
		if !tech.IsSTT() {
			return core.SegmentConfig{}, fmt.Errorf("config: segment %s: retention_s requires an STT-RAM tech, got %s", s.Name, tech)
		}
		params := energy.ParamsForRetention(s.RetentionS)
		cfg.ParamsOverride = &params
	}
	return cfg, cfg.Validate()
}

// DynamicConfig converts the dynamic knobs (falling back to defaults)
// for the given segment.
func (m Machine) DynamicConfig(seg core.SegmentConfig) core.DynamicConfig {
	dc := core.DefaultDynamicConfig(seg)
	if m.Dynamic != nil {
		if m.Dynamic.EpochAccesses != 0 {
			dc.EpochAccesses = m.Dynamic.EpochAccesses
		}
		if m.Dynamic.Slack != 0 {
			dc.Slack = m.Dynamic.Slack
		}
		if m.Dynamic.MinWaysPerDomain != 0 {
			dc.MinWaysPerDomain = m.Dynamic.MinWaysPerDomain
		}
		if m.Dynamic.SampleShift != 0 {
			dc.SampleShift = m.Dynamic.SampleShift
		}
	}
	return dc
}

// DrowsyConfig converts the drowsy knobs (falling back to defaults)
// for the given segment.
func (m Machine) DrowsyConfig(seg core.SegmentConfig) core.DrowsyConfig {
	dc := core.DefaultDrowsyConfig(seg)
	if m.Drowsy != nil {
		if m.Drowsy.WindowCycles != 0 {
			dc.WindowCycles = m.Drowsy.WindowCycles
		}
		if m.Drowsy.WakeCycles != 0 {
			dc.WakeCycles = m.Drowsy.WakeCycles
		}
		if m.Drowsy.DrowsyLeakRatio != 0 {
			dc.DrowsyLeakRatio = m.Drowsy.DrowsyLeakRatio
		}
	}
	return dc
}

// L1Config converts an L1 description.
func (l L1) L1Config(name string) mem.L1Config {
	hit := uint64(2)
	if name == "L1I" {
		hit = 1
	}
	return mem.L1Config{
		Name: name, SizeBytes: uint64(l.SizeKB) * 1024, Ways: l.Ways,
		BlockBytes: l.BlockBytes, HitCycles: hit,
	}
}

// DRAMConfig converts the DRAM description.
func (m Machine) DRAMConfig() mem.DRAMConfig {
	cfg := mem.DRAMConfig{
		LatencyCycles: m.DRAM.LatencyCycles,
		ReadPJ:        m.DRAM.ReadPJ,
		WritePJ:       m.DRAM.WritePJ,
	}
	if m.DRAM.Policy == "open-page" {
		open := mem.OpenPageDRAMConfig()
		cfg.Policy = mem.RowOpenPage
		cfg.RowHitCycles = m.DRAM.RowHitCycles
		if cfg.RowHitCycles == 0 {
			cfg.RowHitCycles = open.RowHitCycles
		}
		cfg.RowHitPJ = m.DRAM.RowHitPJ
		if cfg.RowHitPJ == 0 {
			cfg.RowHitPJ = open.RowHitPJ
		}
		cfg.Banks = m.DRAM.Banks
		cfg.RowBytes = m.DRAM.RowBytes
	}
	return cfg
}

// Load reads and validates a machine description from JSON.
func Load(r io.Reader) (Machine, error) {
	var m Machine
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return Machine{}, fmt.Errorf("config: decoding: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// LoadFile reads a machine description from a file.
func LoadFile(path string) (Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return Machine{}, err
	}
	defer f.Close()
	return Load(f)
}

// Save writes the machine as indented JSON.
func (m Machine) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
