package config

import (
	"bytes"
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default machine invalid: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"empty name", func(m *Machine) { m.Name = "" }},
		{"zero cpi", func(m *Machine) { m.BaseCPI = 0 }},
		{"bad l1i", func(m *Machine) { m.L1I.Ways = 0 }},
		{"bad l1d", func(m *Machine) { m.L1D.SizeKB = 0 }},
		{"zero dram latency", func(m *Machine) { m.DRAM.LatencyCycles = 0 }},
		{"unified missing segment", func(m *Machine) { m.Unified = nil }},
		{"bad scheme", func(m *Machine) { m.Scheme = "exotic" }},
		{"bad tech", func(m *Machine) { m.Unified.Tech = "pcm" }},
		{"bad policy", func(m *Machine) { m.Unified.Policy = "mru" }},
		{"bad refresh", func(m *Machine) { m.Unified.Refresh = "never" }},
		{"bad geometry", func(m *Machine) { m.Unified.SizeKB = 7 }},
	}
	for _, tc := range cases {
		m := Default()
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestStaticSchemeValidation(t *testing.T) {
	m := Default()
	m.Scheme = SchemeStatic
	m.Unified = nil
	if err := m.Validate(); err == nil {
		t.Fatal("static without segments accepted")
	}
	m.User = &Segment{Name: "u", SizeKB: 512, Ways: 16, BlockBytes: 64}
	m.Kernel = &Segment{Name: "k", SizeKB: 256, Ways: 16, BlockBytes: 64}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid static rejected: %v", err)
	}
}

func TestDynamicSchemeValidation(t *testing.T) {
	m := Default()
	m.Scheme = SchemeDynamic
	if err := m.Validate(); err != nil {
		t.Fatalf("valid dynamic rejected: %v", err)
	}
	m.Dynamic = &Dynamic{MinWaysPerDomain: 99}
	if err := m.Validate(); err == nil {
		t.Fatal("infeasible dynamic knobs accepted")
	}
}

func TestSegmentToCoreDefaults(t *testing.T) {
	s := Segment{Name: "x", SizeKB: 256, Ways: 8, BlockBytes: 64}
	cfg, err := s.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SizeBytes != 256*1024 || cfg.Ways != 8 {
		t.Fatalf("geometry wrong: %+v", cfg)
	}
	// Defaults: LRU, SRAM, dirty-only refresh.
	if cfg.Policy != 0 || cfg.Tech != 0 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestDynamicConfigOverrides(t *testing.T) {
	m := Default()
	m.Scheme = SchemeDynamic
	m.Dynamic = &Dynamic{EpochAccesses: 1234, Slack: 0.01, MinWaysPerDomain: 2, SampleShift: 3}
	seg, err := m.Unified.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	dc := m.DynamicConfig(seg)
	if dc.EpochAccesses != 1234 || dc.Slack != 0.01 || dc.MinWaysPerDomain != 2 || dc.SampleShift != 3 {
		t.Fatalf("overrides not applied: %+v", dc)
	}
	// Nil Dynamic falls back to defaults.
	m.Dynamic = nil
	dc = m.DynamicConfig(seg)
	if dc.EpochAccesses == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := Default()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != m.Name || got.Scheme != m.Scheme || got.Unified.SizeKB != m.Unified.SizeKB {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":"x","typo_field":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"name":""}`)); err == nil {
		t.Fatal("invalid machine accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/machine.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestL1Config(t *testing.T) {
	l := L1{SizeKB: 32, Ways: 4, BlockBytes: 64}
	c := l.L1Config("L1D")
	if c.SizeBytes != 32*1024 || c.Ways != 4 || c.HitCycles != 2 {
		t.Fatalf("L1D config wrong: %+v", c)
	}
	ci := l.L1Config("L1I")
	if ci.HitCycles != 1 {
		t.Fatalf("L1I hit cycles = %d, want 1", ci.HitCycles)
	}
}

func TestDRAMConfig(t *testing.T) {
	m := Default()
	dc := m.DRAMConfig()
	if dc.LatencyCycles != 200 || dc.ReadPJ != 20000 {
		t.Fatalf("DRAM config wrong: %+v", dc)
	}
}

func TestDRAMConfigOpenPage(t *testing.T) {
	m := Default()
	m.DRAM.Policy = "open-page"
	dc := m.DRAMConfig()
	if dc.Policy == 0 {
		t.Fatal("open-page policy not converted")
	}
	// Zero row fields take the open-page defaults.
	if dc.RowHitCycles == 0 || dc.RowHitPJ == 0 {
		t.Fatalf("open-page defaults not applied: %+v", dc)
	}
	// Explicit values win.
	m.DRAM.RowHitCycles = 77
	m.DRAM.RowHitPJ = 99
	m.DRAM.Banks = 4
	m.DRAM.RowBytes = 4096
	dc = m.DRAMConfig()
	if dc.RowHitCycles != 77 || dc.RowHitPJ != 99 || dc.Banks != 4 || dc.RowBytes != 4096 {
		t.Fatalf("open-page overrides lost: %+v", dc)
	}
	// Bad policy rejected at validation.
	m.DRAM.Policy = "closed-loop"
	if err := m.Validate(); err == nil {
		t.Fatal("bad DRAM policy accepted")
	}
}

func TestDrowsyConfigConversion(t *testing.T) {
	m := Default()
	m.Scheme = SchemeDrowsy
	if err := m.Validate(); err != nil {
		t.Fatalf("drowsy default invalid: %v", err)
	}
	seg, err := m.Unified.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	dc := m.DrowsyConfig(seg)
	if dc.WindowCycles == 0 || dc.DrowsyLeakRatio == 0 || dc.PeripheralFraction == 0 {
		t.Fatalf("drowsy defaults not applied: %+v", dc)
	}
	m.Drowsy = &Drowsy{WindowCycles: 123, WakeCycles: 9, DrowsyLeakRatio: 0.5}
	dc = m.DrowsyConfig(seg)
	if dc.WindowCycles != 123 || dc.WakeCycles != 9 || dc.DrowsyLeakRatio != 0.5 {
		t.Fatalf("drowsy overrides lost: %+v", dc)
	}
	// Missing unified segment rejected.
	m.Unified = nil
	if err := m.Validate(); err == nil {
		t.Fatal("drowsy without segment accepted")
	}
}

func TestSegmentRetentionValidation(t *testing.T) {
	s := Segment{Name: "x", SizeKB: 256, Ways: 8, BlockBytes: 64, Tech: "sram", RetentionS: 1e-3}
	if _, err := s.ToCore(); err == nil {
		t.Fatal("retention override on SRAM accepted")
	}
	s.Tech = "stt-short"
	cfg, err := s.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ParamsOverride == nil || cfg.ParamsOverride.RetentionSeconds != 1e-3 {
		t.Fatalf("retention override not applied: %+v", cfg.ParamsOverride)
	}
}

func TestSegmentBanksConversion(t *testing.T) {
	s := Segment{Name: "x", SizeKB: 256, Ways: 8, BlockBytes: 64, Banks: 8}
	cfg, err := s.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Banks != 8 {
		t.Fatalf("banks lost: %+v", cfg)
	}
}

func TestSegmentFaultValidation(t *testing.T) {
	// Faults on SRAM are meaningless and must be rejected.
	s := Segment{Name: "x", SizeKB: 256, Ways: 8, BlockBytes: 64, Tech: "sram", FaultBER: 1e-4}
	if _, err := s.ToCore(); err == nil {
		t.Fatal("fault BER on SRAM accepted")
	}
	s.Tech = "stt-short"
	s.FaultBER = -0.1
	if _, err := s.ToCore(); err == nil {
		t.Fatal("negative fault BER accepted")
	}
	s.FaultBER = 1.5
	if _, err := s.ToCore(); err == nil {
		t.Fatal("fault BER above 1 accepted")
	}
	s.FaultBER = 1e-4
	s.FaultSeed = 77
	cfg, err := s.ToCore()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FaultBER != 1e-4 || cfg.FaultSeed != 77 {
		t.Fatalf("fault knobs lost in conversion: %+v", cfg)
	}
}

func TestFaultKnobsJSONRoundTrip(t *testing.T) {
	m := Default()
	m.Unified.Tech = "stt-short"
	m.Unified.FaultBER = 5e-4
	m.Unified.FaultSeed = 9
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Unified.FaultBER != 5e-4 || back.Unified.FaultSeed != 9 {
		t.Fatalf("fault knobs lost in JSON round trip: %+v", back.Unified)
	}
}
