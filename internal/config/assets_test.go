package config

import (
	"os"
	"path/filepath"
	"testing"
)

// TestShippedConfigsLoad verifies every JSON machine description under
// configs/ parses, validates, and round-trips.
func TestShippedConfigsLoad(t *testing.T) {
	dir := filepath.Join("..", "..", "configs")
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("expected at least 4 shipped configs, found %d in %s", len(files), dir)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Load(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if m.Name == "" {
			t.Errorf("%s: empty machine name", filepath.Base(path))
		}
	}
}
