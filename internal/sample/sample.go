// Package sample implements set-sampled fast simulation: instead of
// replaying a workload against every set of every cache, a run
// simulates a power-of-two fraction of the sets and statistically
// scales the counters back to full-cache estimates. Per-cell sweep
// cost drops near-linearly in the sampling factor — the standard
// fast-estimation technique behind large design-space explorations.
//
// # Selection
//
// Selection is a pure function of the low GroupBits bits of the block
// index, addr >> log2(blockBytes). Those bits are shared by the set
// index of every cache level with at least NumGroups sets (the L1D's
// 128 sets are the smallest standard geometry), so one selection
// decision is consistent across the whole hierarchy: a selected block
// maps to a selected set at every level, and a non-selected block maps
// to no selected set anywhere. Selected sets keep their true index —
// tag and set arithmetic are unchanged — and non-selected accesses are
// filtered out of the replay stream before any cache sees them.
//
// Two selection modes exist. The default keeps the groups whose index
// is a multiple of the factor (low-bit selection); Hash mode instead
// keeps the groups a fixed pseudo-random permutation maps onto
// multiples of the factor, which decorrelates selection from strided
// address patterns that could otherwise concentrate in (or dodge) the
// low-bit subset.
//
// # Scaling
//
// A sampled run compresses uniformly: the replay stream keeps 1/Factor
// of the records (dropped records surrender their instruction gaps),
// so simulated time, event counts and energy all shrink by the factor,
// and time-denominated machine constants (retention, refresh, drowsy
// windows, idle cadence) are divided by the factor to match the
// compressed clock. Scaling every counter and every energy bucket
// uniformly by the factor then yields full-run estimates while
// preserving the simulator's exact integer conservation laws — which is
// why sampled runs still pass the strict invariant audit.
package sample

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

const (
	// GroupBits is the number of low block-index bits selection keys
	// on. 1<<GroupBits must not exceed the set count of any cache the
	// sampled machine contains.
	GroupBits = 7
	// NumGroups is the number of distinct selection groups.
	NumGroups = 1 << GroupBits
	// MaxFactor is the coarsest sampling factor: one group.
	MaxFactor = NumGroups
)

// Spec names one sampling configuration: simulate 1/Factor of the
// sets, selected by low index bits or by the mixed-hash permutation.
// The zero Spec (and Factor 1) means full simulation.
type Spec struct {
	// Factor is the sampling denominator: 1/Factor of the sets are
	// simulated. Must be a power of two in [1, MaxFactor]; 0 is treated
	// as 1 (sampling off).
	Factor int
	// Hash selects permuted (stride-resistant) group selection instead
	// of low-bit selection. Irrelevant at Factor <= 1.
	Hash bool
}

// Norm maps the zero value's Factor 0 to the explicit 1.
func (s Spec) Norm() Spec {
	if s.Factor == 0 {
		s.Factor = 1
	}
	return s
}

// Enabled reports whether the spec actually samples (Factor > 1).
func (s Spec) Enabled() bool { return s.Factor > 1 }

// Validate reports spec errors. Factor 0 (unset) is valid.
func (s Spec) Validate() error {
	f := s.Factor
	if f == 0 {
		return nil
	}
	if f < 0 || f&(f-1) != 0 {
		return fmt.Errorf("sample: factor 1/%d is not a power of two", f)
	}
	if f > MaxFactor {
		return fmt.Errorf("sample: factor 1/%d is finer than the %d selection groups (max 1/%d)", f, NumGroups, MaxFactor)
	}
	return nil
}

// String renders the canonical flag spelling: "1/8", "hash:1/8",
// "1/1" for full simulation.
func (s Spec) String() string {
	s = s.Norm()
	if s.Enabled() && s.Hash {
		return fmt.Sprintf("hash:1/%d", s.Factor)
	}
	return fmt.Sprintf("1/%d", s.Factor)
}

// Parse reads a -sample flag value: "1/8" or plain "8", optionally
// prefixed "hash:" for permuted selection. The factor must be a
// positive power of two no finer than 1/MaxFactor.
func Parse(v string) (Spec, error) {
	var s Spec
	raw := strings.TrimSpace(v)
	body := raw
	if rest, ok := strings.CutPrefix(body, "hash:"); ok {
		s.Hash = true
		body = rest
	}
	if rest, ok := strings.CutPrefix(body, "1/"); ok {
		body = rest
	}
	f, err := strconv.Atoi(body)
	if err != nil {
		return Spec{}, fmt.Errorf("sample: %q is not a sampling factor (want \"1/8\", \"8\" or \"hash:1/8\")", raw)
	}
	if f < 1 {
		return Spec{}, fmt.Errorf("sample: factor 1/%d must be at least 1/1", f)
	}
	s.Factor = f
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Selector is a compiled Spec: a bitmask over the NumGroups selection
// groups plus the block geometry that maps addresses onto groups. One
// selector serves every cache level of a machine (the levels must
// share the block size the selector was built with).
type Selector struct {
	spec       Spec
	blockShift uint
	mask       [NumGroups / 64]uint64
	// rank[g] is g's position among the selected groups in ascending
	// group order, or -1 when g is not selected — the dense live-set
	// numbering sampled shadow directories index by.
	rank [NumGroups]int16
	nsel int
}

// NewSelector compiles a spec for caches with the given block size.
func NewSelector(spec Spec, blockBytes int) (*Selector, error) {
	spec = spec.Norm()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		return nil, fmt.Errorf("sample: block size %d must be a positive power of two", blockBytes)
	}
	sel := &Selector{spec: spec, blockShift: uint(bits.TrailingZeros(uint(blockBytes)))}
	perm := identityPerm()
	if spec.Hash && spec.Enabled() {
		perm = hashPerm()
	}
	f := uint(spec.Factor)
	for g := 0; g < NumGroups; g++ {
		sel.rank[g] = -1
		if uint(perm[g])&(f-1) == 0 {
			sel.mask[g>>6] |= 1 << (uint(g) & 63)
			sel.rank[g] = int16(sel.nsel)
			sel.nsel++
		}
	}
	return sel, nil
}

// identityPerm selects groups by their own low bits.
func identityPerm() [NumGroups]uint8 {
	var p [NumGroups]uint8
	for i := range p {
		p[i] = uint8(i)
	}
	return p
}

// hashPerm is a fixed Fisher-Yates permutation of the groups, driven
// by a splitmix64 stream from a constant seed. A genuine permutation
// is required: an affine map (g*odd+c mod NumGroups) leaves the low
// output bits a function of the low input bits alone, which collapses
// "hash" selection back into low-bit selection.
func hashPerm() [NumGroups]uint8 {
	p := identityPerm()
	state := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for i := NumGroups - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Spec returns the spec the selector was compiled from.
func (sel *Selector) Spec() Spec { return sel.spec }

// Factor returns the sampling denominator.
func (sel *Selector) Factor() int { return sel.spec.Factor }

// Groups reports how many of the NumGroups groups are selected.
func (sel *Selector) Groups() int { return sel.nsel }

// BlockBytes returns the block size the selector maps addresses with.
func (sel *Selector) BlockBytes() int { return 1 << sel.blockShift }

// SelectsAddr reports whether addr's block falls in a selected group.
// This is the replay hot-path test: shift, mask, bit probe.
func (sel *Selector) SelectsAddr(addr uint64) bool {
	g := (addr >> sel.blockShift) & (NumGroups - 1)
	return sel.mask[g>>6]>>(g&63)&1 != 0
}

// SelectsGroup reports whether group g is selected.
func (sel *Selector) SelectsGroup(g int) bool {
	return sel.rank[g&(NumGroups-1)] >= 0
}

// GroupRank returns g's dense index among the selected groups (in
// ascending group order), or -1 when g is not selected.
func (sel *Selector) GroupRank(g int) int {
	return int(sel.rank[g&(NumGroups-1)])
}

// LiveSets returns how many of a cache's sets receive traffic under
// this selector. sets must be a power-of-two multiple of NumGroups —
// the geometry CheckSets validates.
func (sel *Selector) LiveSets(sets int) int {
	return (sets >> GroupBits) * sel.nsel
}

// CheckSets validates that a cache geometry is compatible with group
// selection: at least NumGroups sets, so the group bits are a prefix
// of every level's set index.
func (sel *Selector) CheckSets(name string, sets int) error {
	if sets < NumGroups {
		return fmt.Errorf("sample: %s has %d sets, fewer than the %d selection groups; set sampling needs >= %d sets per cache",
			name, sets, NumGroups, NumGroups)
	}
	return nil
}
