package sample

import "mobilecache/internal/trace"

// fillLen is the staging-buffer size for filtering packed cursors:
// large enough to amortize the bulk varint decode, small enough to
// stay resident in L1.
const fillLen = 512

// maxRecordInstr caps how many instructions a single rewritten record
// may carry (Gap is a uint32, and the record itself counts as one).
const maxRecordInstr = int64(1) << 32

// Source filters a replay stream down to the selected sets: accesses
// whose blocks fall outside the selected groups are dropped before any
// cache sees them. The instruction gaps of dropped records are NOT
// discarded — they are redistributed onto the surviving records at
// 1/Factor, so the sampled clock advances by totalInstructions/Factor
// regardless of how unevenly the workload's references spread over the
// selected groups. Reference counts per set can be heavily skewed
// (a few hot blocks dominate L1 traffic), and charging only the
// selected records' own gaps would skew simulated time — and with it
// every leakage and retention account — by the same ratio. The
// integer carry makes the redistribution exact up to the trailing
// remainder, and at factor 1 it reduces to the identity (every record
// keeps its own gap), which keeps unsampled replay bit-identical.
//
// Stats counts the records a Source has consumed so far, split by op
// class: Seen covers every raw record, Kept only the selected ones.
// The per-class Seen/Kept ratio is the measured popularity bias of the
// selected groups for that reference stream — the report scaler uses
// it to correct reference-proportional (L1 dynamic) energy, which a
// nominal 1/Factor extrapolation would skew whenever hot blocks
// cluster in (or avoid) the selected groups.
type Stats struct {
	Seen [trace.NumOps]uint64
	Kept [trace.NumOps]uint64
}

// Ratio is the full-to-kept record ratio for one op class — the
// unbiased scale factor for costs charged once per reference of that
// class. When the class was never kept (or never seen) it falls back
// to the nominal factor f.
func (st Stats) Ratio(op trace.Op, f int) float64 {
	if int(op) >= trace.NumOps || st.Kept[op] == 0 {
		return float64(f)
	}
	return float64(st.Seen[op]) / float64(st.Kept[op])
}

// TotalRatio is the full-to-kept record ratio over every op class —
// the unbiased scale factor for per-reference counts (the report's
// access count). For a cold run it reconstructs the full record count
// exactly: kept x (seen/kept) = seen, and the filter saw every raw
// record. Falls back to the nominal factor f when nothing was kept.
func (st Stats) TotalRatio(f int) float64 {
	var seen, kept uint64
	for op := 0; op < trace.NumOps; op++ {
		seen += st.Seen[op]
		kept += st.Kept[op]
	}
	if kept == 0 {
		return float64(f)
	}
	return float64(seen) / float64(kept)
}

// Source implements trace.Source and additionally exposes the bulk
// Decode the CPU hot path batches through, with specialized fill paths
// for the two zero-allocation cursor types.
type Source struct {
	sel    *Selector
	slice  *trace.SliceCursor
	packed *trace.Cursor
	src    trace.Source
	buf    []trace.Access
	factor int64
	// carry accumulates instructions seen (selected and dropped) that
	// have not yet been charged to an emitted record. It can run
	// negative: a selected record always charges at least one
	// instruction, and the debt is repaid by later gaps.
	carry int64
	stats Stats
}

// NewSource wraps src, keeping only accesses sel selects.
func NewSource(sel *Selector, src trace.Source) *Source {
	s := &Source{sel: sel, src: src, factor: int64(sel.Factor())}
	switch c := src.(type) {
	case *trace.SliceCursor:
		s.slice = c
	case *trace.Cursor:
		s.packed = c
		s.buf = make([]trace.Access, fillLen)
	}
	return s
}

// Stats returns the seen/kept record counts consumed so far.
func (s *Source) Stats() Stats { return s.stats }

// emit folds a selected record's own instructions into the carry and
// rewrites its gap to the compressed share. The caller must pass a
// copy — cursor batches alias the shared trace arena.
func (s *Source) emit(a trace.Access) trace.Access {
	s.carry += int64(a.Gap) + 1
	if int(a.Op) < trace.NumOps {
		s.stats.Seen[a.Op]++
		s.stats.Kept[a.Op]++
	}
	g := s.carry / s.factor
	if g < 1 {
		g = 1
	} else if g > maxRecordInstr {
		g = maxRecordInstr
	}
	s.carry -= g * s.factor
	a.Gap = uint32(g - 1)
	return a
}

// drop accounts a non-selected record: its instructions feed the
// carry, and it is tallied as seen for the bias ratios.
func (s *Source) drop(a trace.Access) {
	s.carry += int64(a.Gap) + 1
	if int(a.Op) < trace.NumOps {
		s.stats.Seen[a.Op]++
	}
}

// Decode fills dst with the next selected accesses, returning how many
// were produced; fewer than len(dst) only at end of trace.
func (s *Source) Decode(dst []trace.Access) int {
	n := 0
	switch {
	case s.slice != nil:
		// Zero-copy path: filter straight out of the resident record
		// slice. Pull at most the remaining capacity per round so the
		// cursor never advances past records dst has no room for.
		for n < len(dst) {
			batch := s.slice.Batch(len(dst) - n)
			if len(batch) == 0 {
				return n
			}
			for i := range batch {
				if s.sel.SelectsAddr(batch[i].Addr) {
					dst[n] = s.emit(batch[i])
					n++
				} else {
					s.drop(batch[i])
				}
			}
		}
	case s.packed != nil:
		for n < len(dst) {
			want := len(dst) - n
			if want > len(s.buf) {
				want = len(s.buf)
			}
			got := s.packed.Decode(s.buf[:want])
			if got == 0 {
				return n
			}
			for i := 0; i < got; i++ {
				if s.sel.SelectsAddr(s.buf[i].Addr) {
					dst[n] = s.emit(s.buf[i])
					n++
				} else {
					s.drop(s.buf[i])
				}
			}
		}
	default:
		for n < len(dst) {
			a, ok := s.src.Next()
			if !ok {
				return n
			}
			if s.sel.SelectsAddr(a.Addr) {
				dst[n] = s.emit(a)
				n++
			} else {
				s.drop(a)
			}
		}
	}
	return n
}

// Next returns the next selected access.
func (s *Source) Next() (trace.Access, bool) {
	for {
		a, ok := s.src.Next()
		if !ok {
			return trace.Access{}, false
		}
		if s.sel.SelectsAddr(a.Addr) {
			return s.emit(a), true
		}
		s.drop(a)
	}
}
