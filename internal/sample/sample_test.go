package sample

import (
	"strings"
	"testing"

	"mobilecache/internal/trace"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"1/1", Spec{Factor: 1}},
		{"1", Spec{Factor: 1}},
		{"1/8", Spec{Factor: 8}},
		{"8", Spec{Factor: 8}},
		{" 1/8 ", Spec{Factor: 8}},
		{"hash:1/8", Spec{Factor: 8, Hash: true}},
		{"hash:4", Spec{Factor: 4, Hash: true}},
		{"1/128", Spec{Factor: 128}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"0", "at least 1/1"},
		{"1/0", "at least 1/1"},
		{"-8", "at least 1/1"},
		{"3", "power of two"},
		{"1/6", "power of two"},
		{"1/256", "finer than"},
		{"fast", "not a sampling factor"},
		{"", "not a sampling factor"},
		{"hash:", "not a sampling factor"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q): expected error", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.in, err, c.frag)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := []struct {
		in   Spec
		want string
	}{
		{Spec{}, "1/1"},
		{Spec{Factor: 1}, "1/1"},
		{Spec{Factor: 1, Hash: true}, "1/1"},
		{Spec{Factor: 8}, "1/8"},
		{Spec{Factor: 8, Hash: true}, "hash:1/8"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.in, got, c.want)
		}
	}
	// Canonical strings round-trip through Parse.
	for _, s := range []Spec{{Factor: 1}, {Factor: 2}, {Factor: 8, Hash: true}, {Factor: 128}} {
		got, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if got.Norm() != s.Norm() {
			t.Errorf("round trip %+v -> %q -> %+v", s, s.String(), got)
		}
	}
}

func TestValidate(t *testing.T) {
	for _, f := range []int{0, 1, 2, 4, 8, 16, 32, 64, 128} {
		if err := (Spec{Factor: f}).Validate(); err != nil {
			t.Errorf("factor %d: unexpected error %v", f, err)
		}
	}
	for _, f := range []int{-1, 3, 6, 12, 100, 256} {
		if err := (Spec{Factor: f}).Validate(); err == nil {
			t.Errorf("factor %d: expected error", f)
		}
	}
}

// Both selection modes must select exactly NumGroups/Factor groups —
// the scaling rules assume the sampled fraction is exact, not
// approximate.
func TestSelectionCountExact(t *testing.T) {
	for _, hash := range []bool{false, true} {
		for f := 1; f <= MaxFactor; f *= 2 {
			sel, err := NewSelector(Spec{Factor: f, Hash: hash}, 64)
			if err != nil {
				t.Fatalf("factor %d hash %v: %v", f, hash, err)
			}
			if got, want := sel.Groups(), NumGroups/f; got != want {
				t.Errorf("factor %d hash %v: %d groups selected, want %d", f, hash, got, want)
			}
			n := 0
			for g := 0; g < NumGroups; g++ {
				if sel.SelectsGroup(g) {
					n++
				}
			}
			if n != sel.Groups() {
				t.Errorf("factor %d hash %v: SelectsGroup count %d != Groups() %d", f, hash, n, sel.Groups())
			}
		}
	}
}

// Hash mode must genuinely differ from low-bit mode at every factor
// above 1 (otherwise the stride-dodging claim is vacuous).
func TestHashSelectionDiffers(t *testing.T) {
	for f := 2; f <= MaxFactor; f *= 2 {
		low, err := NewSelector(Spec{Factor: f}, 64)
		if err != nil {
			t.Fatal(err)
		}
		hash, err := NewSelector(Spec{Factor: f, Hash: true}, 64)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for g := 0; g < NumGroups; g++ {
			if low.SelectsGroup(g) != hash.SelectsGroup(g) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("factor %d: hash selection identical to low-bit selection", f)
		}
	}
}

// Hash selection is deterministic: two independently built selectors
// agree group-for-group (memo keys and checkpoint resume depend on it).
func TestHashSelectionDeterministic(t *testing.T) {
	a, _ := NewSelector(Spec{Factor: 8, Hash: true}, 64)
	b, _ := NewSelector(Spec{Factor: 8, Hash: true}, 64)
	for g := 0; g < NumGroups; g++ {
		if a.SelectsGroup(g) != b.SelectsGroup(g) {
			t.Fatalf("group %d: selection not deterministic", g)
		}
	}
}

func TestRankBijection(t *testing.T) {
	for _, hash := range []bool{false, true} {
		for f := 1; f <= MaxFactor; f *= 2 {
			sel, err := NewSelector(Spec{Factor: f, Hash: hash}, 64)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int]int)
			for g := 0; g < NumGroups; g++ {
				r := sel.GroupRank(g)
				if sel.SelectsGroup(g) != (r >= 0) {
					t.Fatalf("factor %d hash %v group %d: rank %d disagrees with selection", f, hash, g, r)
				}
				if r >= 0 {
					if prev, dup := seen[r]; dup {
						t.Fatalf("factor %d hash %v: rank %d assigned to groups %d and %d", f, hash, r, prev, g)
					}
					seen[r] = g
					if r >= sel.Groups() {
						t.Fatalf("factor %d hash %v group %d: rank %d out of range [0,%d)", f, hash, g, r, sel.Groups())
					}
				}
			}
			if len(seen) != sel.Groups() {
				t.Fatalf("factor %d hash %v: %d ranks assigned, want %d", f, hash, len(seen), sel.Groups())
			}
			// Ranks ascend with group index: the dense numbering is
			// order-preserving, so liveIndex arithmetic in sampled
			// shadow directories stays monotonic.
			last := -1
			for g := 0; g < NumGroups; g++ {
				if r := sel.GroupRank(g); r >= 0 {
					if r <= last {
						t.Fatalf("factor %d hash %v: rank %d at group %d not ascending (prev %d)", f, hash, r, g, last)
					}
					last = r
				}
			}
		}
	}
}

func TestFactorOneSelectsEverything(t *testing.T) {
	for _, hash := range []bool{false, true} {
		sel, err := NewSelector(Spec{Factor: 1, Hash: hash}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if sel.Groups() != NumGroups {
			t.Fatalf("hash %v: factor 1 selects %d groups, want %d", hash, sel.Groups(), NumGroups)
		}
		for g := 0; g < NumGroups; g++ {
			if sel.GroupRank(g) != g {
				t.Fatalf("hash %v: factor 1 rank of group %d is %d, want identity", hash, g, sel.GroupRank(g))
			}
		}
		for _, addr := range []uint64{0, 63, 64, 0xdeadbeef, 1 << 40} {
			if !sel.SelectsAddr(addr) {
				t.Fatalf("hash %v: factor 1 rejected addr %#x", hash, addr)
			}
		}
	}
}

func TestSelectsAddrMatchesGroup(t *testing.T) {
	sel, err := NewSelector(Spec{Factor: 8, Hash: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < NumGroups; g++ {
		// Several addresses landing in group g: vary tag and offset.
		for _, base := range []uint64{0, 1 << 20, 0xabc00000} {
			addr := base + uint64(g)*64 + 17
			if sel.SelectsAddr(addr) != sel.SelectsGroup(g) {
				t.Fatalf("addr %#x in group %d: SelectsAddr disagrees with SelectsGroup", addr, g)
			}
		}
	}
}

func TestNewSelectorErrors(t *testing.T) {
	if _, err := NewSelector(Spec{Factor: 3}, 64); err == nil {
		t.Error("factor 3: expected error")
	}
	if _, err := NewSelector(Spec{Factor: 8}, 48); err == nil {
		t.Error("block size 48: expected error")
	}
	if _, err := NewSelector(Spec{Factor: 8}, 0); err == nil {
		t.Error("block size 0: expected error")
	}
}

func TestLiveSets(t *testing.T) {
	sel, _ := NewSelector(Spec{Factor: 8}, 64)
	if got := sel.LiveSets(1024); got != 128 {
		t.Errorf("LiveSets(1024) at 1/8 = %d, want 128", got)
	}
	if got := sel.LiveSets(128); got != 16 {
		t.Errorf("LiveSets(128) at 1/8 = %d, want 16", got)
	}
	full, _ := NewSelector(Spec{Factor: 1}, 64)
	if got := full.LiveSets(1024); got != 1024 {
		t.Errorf("LiveSets(1024) at 1/1 = %d, want 1024", got)
	}
	if err := sel.CheckSets("l1d", 64); err == nil {
		t.Error("CheckSets(64): expected error for sub-group geometry")
	}
	if err := sel.CheckSets("l2", 1024); err != nil {
		t.Errorf("CheckSets(1024): %v", err)
	}
}

// synthetic trace for filter tests: addresses walk the groups with a
// mix of strides so every group sees traffic.
func testTrace(n int) []trace.Access {
	recs := make([]trace.Access, n)
	for i := range recs {
		addr := uint64(i)*64*3 + uint64(i*i)*7
		op := trace.Load
		if i%7 == 3 {
			op = trace.Store
		}
		dom := trace.User
		if i%5 == 0 {
			dom = trace.Kernel
		}
		recs[i] = trace.Access{Addr: addr, PC: uint64(i) * 4, Gap: uint32(i % 9), Op: op, Domain: dom}
	}
	return recs
}

// naiveFilter is the reference model for Source: keep selected
// records, redistribute every record's instruction count onto the
// kept stream at 1/factor through an integer carry.
func naiveFilter(sel *Selector, recs []trace.Access) []trace.Access {
	var out []trace.Access
	f := int64(sel.Factor())
	var carry int64
	for _, a := range recs {
		carry += int64(a.Gap) + 1
		if !sel.SelectsAddr(a.Addr) {
			continue
		}
		g := carry / f
		if g < 1 {
			g = 1
		}
		carry -= g * f
		a.Gap = uint32(g - 1)
		out = append(out, a)
	}
	return out
}

// All three fill paths (slice, packed, generic) must agree with a
// naive filter record-for-record, across decode window sizes that do
// and do not divide the trace length.
func TestSourceDecodeEquivalence(t *testing.T) {
	recs := testTrace(5000)
	packed := trace.PackSlice(recs)
	for _, hash := range []bool{false, true} {
		for _, f := range []int{1, 2, 8, 128} {
			sel, err := NewSelector(Spec{Factor: f, Hash: hash}, 64)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveFilter(sel, recs)
			for _, window := range []int{1, 7, 256, 4096} {
				sc := trace.NewSliceCursor(recs)
				pc := packed.Cursor()
				gc := trace.NewSliceCursor(recs)
				srcs := map[string]trace.Source{
					"slice":   &sc,
					"packed":  &pc,
					"generic": trace.NewLimitSource(&gc, len(recs)),
				}
				for name, under := range srcs {
					s := NewSource(sel, under)
					var got []trace.Access
					buf := make([]trace.Access, window)
					for {
						n := s.Decode(buf)
						got = append(got, buf[:n]...)
						if n < window {
							break
						}
					}
					if len(got) != len(want) {
						t.Fatalf("hash %v factor %d window %d %s: %d records, want %d", hash, f, window, name, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("hash %v factor %d window %d %s: record %d = %+v, want %+v", hash, f, window, name, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestSourceNext(t *testing.T) {
	recs := testTrace(2000)
	sel, err := NewSelector(Spec{Factor: 4, Hash: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveFilter(sel, recs)
	sc := trace.NewSliceCursor(recs)
	s := NewSource(sel, &sc)
	for i, w := range want {
		got, ok := s.Next()
		if !ok {
			t.Fatalf("record %d: premature end", i)
		}
		if got != w {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("expected end of trace")
	}
}

// The gap redistribution conserves instructions: factor times the
// filtered stream's instruction count equals the raw instructions seen
// up to the last kept record, within one factor's worth of trailing
// remainder. This is the property that keeps sampled simulated time —
// and with it every leakage and retention account — unbiased even when
// the selected groups' reference popularity is far from 1/factor.
func TestSourceInstructionConservation(t *testing.T) {
	recs := testTrace(20_000)
	for _, hash := range []bool{false, true} {
		for _, f := range []int{1, 2, 8, 128} {
			sel, err := NewSelector(Spec{Factor: f, Hash: hash}, 64)
			if err != nil {
				t.Fatal(err)
			}
			var seen uint64    // instructions up to and including the last kept record
			var pending uint64 // instructions since the last kept record
			kept := 0
			for _, a := range recs {
				pending += a.Instructions()
				if sel.SelectsAddr(a.Addr) {
					seen += pending
					pending = 0
					kept++
				}
			}
			if kept == 0 {
				t.Fatalf("hash=%v factor %d: no records kept", hash, f)
			}
			sc := trace.NewSliceCursor(recs)
			s := NewSource(sel, &sc)
			var emitted uint64
			for {
				a, ok := s.Next()
				if !ok {
					break
				}
				emitted += a.Instructions()
			}
			scaled := emitted * uint64(f)
			var diff uint64
			if scaled > seen {
				diff = scaled - seen
			} else {
				diff = seen - scaled
			}
			if diff >= uint64(f) {
				t.Errorf("hash=%v factor %d: scaled instructions %d vs seen %d (diff %d >= factor)",
					hash, f, scaled, seen, diff)
			}
			st := s.Stats()
			var totSeen, totKept uint64
			for op := 0; op < trace.NumOps; op++ {
				totSeen += st.Seen[op]
				totKept += st.Kept[op]
			}
			if totSeen != uint64(len(recs)) || totKept != uint64(kept) {
				t.Errorf("hash=%v factor %d: stats seen/kept %d/%d, want %d/%d",
					hash, f, totSeen, totKept, len(recs), kept)
			}
		}
	}
}
