package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format:
//
//	header:  magic "MCTR" | version u8 | reserved [3]byte
//	record:  addr u64 | pc u64 | gap u32 | op u8 | domain u8 (little endian)
//
// The format is deliberately flat — fixed 22-byte records after a
// 8-byte header — so traces can be produced and consumed by other
// tools with no framing logic.

const (
	binaryMagic   = "MCTR"
	binaryVersion = 1
	recordSize    = 22
)

// ErrBadMagic reports a stream that is not a mobilecache binary trace.
var ErrBadMagic = errors.New("trace: bad magic (not a mobilecache trace)")

// ErrBadVersion reports an unsupported trace format version.
var ErrBadVersion = errors.New("trace: unsupported format version")

// Writer encodes Access records to the binary trace format.
type Writer struct {
	w     *bufio.Writer
	n     uint64
	wrote bool
}

// NewWriter starts a binary trace on w. The header is written lazily
// on the first record (or Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (tw *Writer) writeHeader() error {
	if tw.wrote {
		return nil
	}
	tw.wrote = true
	if _, err := tw.w.WriteString(binaryMagic); err != nil {
		return err
	}
	_, err := tw.w.Write([]byte{binaryVersion, 0, 0, 0})
	return err
}

// Write appends one record.
func (tw *Writer) Write(a Access) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if err := tw.writeHeader(); err != nil {
		return err
	}
	var buf [recordSize]byte
	binary.LittleEndian.PutUint64(buf[0:], a.Addr)
	binary.LittleEndian.PutUint64(buf[8:], a.PC)
	binary.LittleEndian.PutUint32(buf[16:], a.Gap)
	buf[20] = byte(a.Op)
	buf[21] = byte(a.Domain)
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count reports how many records have been written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes any buffered data (and the header, for empty traces).
func (tw *Writer) Flush() error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace. It implements Source; decoding errors
// terminate the stream and are retrievable via Err.
type Reader struct {
	r      *bufio.Reader
	read   bool
	err    error
	closed bool
}

// NewReader prepares to decode a binary trace from r. The header is
// validated on the first Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) readHeader() error {
	if tr.read {
		return nil
	}
	tr.read = true
	var hdr [8]byte
	if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(hdr[:4]) != binaryMagic {
		return ErrBadMagic
	}
	if hdr[4] != binaryVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	return nil
}

// Next decodes the next record. It returns ok=false at end of stream or
// on error; check Err to distinguish.
func (tr *Reader) Next() (Access, bool) {
	if tr.closed {
		return Access{}, false
	}
	if err := tr.readHeader(); err != nil {
		tr.fail(err)
		return Access{}, false
	}
	var buf [recordSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err != io.EOF {
			tr.fail(fmt.Errorf("trace: reading record: %w", err))
		} else {
			tr.closed = true
		}
		return Access{}, false
	}
	a := Access{
		Addr:   binary.LittleEndian.Uint64(buf[0:]),
		PC:     binary.LittleEndian.Uint64(buf[8:]),
		Gap:    binary.LittleEndian.Uint32(buf[16:]),
		Op:     Op(buf[20]),
		Domain: Domain(buf[21]),
	}
	if err := a.Validate(); err != nil {
		tr.fail(err)
		return Access{}, false
	}
	return a, true
}

func (tr *Reader) fail(err error) {
	if tr.err == nil {
		tr.err = err
	}
	tr.closed = true
}

// Err reports the first decoding error, or nil for clean EOF.
func (tr *Reader) Err() error { return tr.err }

// Text trace format: one record per line,
//
//	<domain> <op> <addr-hex> <pc-hex> <gap>
//
// e.g. "kernel store 0xffff800000001040 0xffff800000400abc 12".
// Lines starting with '#' and blank lines are ignored.

// WriteText emits src as the human-readable text format.
func WriteText(w io.Writer, src Source) (n uint64, err error) {
	bw := bufio.NewWriter(w)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := a.Validate(); err != nil {
			return n, err
		}
		if _, err := fmt.Fprintf(bw, "%s %s 0x%x 0x%x %d\n", a.Domain, a.Op, a.Addr, a.PC, a.Gap); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ParseTextLine decodes one text-format record line.
func ParseTextLine(line string) (Access, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return Access{}, fmt.Errorf("trace: text record needs 5 fields, got %d in %q", len(fields), line)
	}
	var a Access
	switch fields[0] {
	case "user":
		a.Domain = User
	case "kernel":
		a.Domain = Kernel
	default:
		return Access{}, fmt.Errorf("trace: unknown domain %q", fields[0])
	}
	switch fields[1] {
	case "load":
		a.Op = Load
	case "store":
		a.Op = Store
	case "ifetch":
		a.Op = Ifetch
	default:
		return Access{}, fmt.Errorf("trace: unknown op %q", fields[1])
	}
	addr, err := strconv.ParseUint(strings.TrimPrefix(fields[2], "0x"), 16, 64)
	if err != nil {
		return Access{}, fmt.Errorf("trace: bad address %q: %w", fields[2], err)
	}
	a.Addr = addr
	pc, err := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), 16, 64)
	if err != nil {
		return Access{}, fmt.Errorf("trace: bad pc %q: %w", fields[3], err)
	}
	a.PC = pc
	gap, err := strconv.ParseUint(fields[4], 10, 32)
	if err != nil {
		return Access{}, fmt.Errorf("trace: bad gap %q: %w", fields[4], err)
	}
	a.Gap = uint32(gap)
	return a, nil
}

// TextReader decodes the text trace format; it implements Source.
type TextReader struct {
	sc   *bufio.Scanner
	err  error
	line int
	done bool
}

// NewTextReader prepares to decode text-format records from r.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &TextReader{sc: sc}
}

// Next decodes the next record, skipping comments and blank lines.
func (tr *TextReader) Next() (Access, bool) {
	if tr.done {
		return Access{}, false
	}
	for tr.sc.Scan() {
		tr.line++
		line := strings.TrimSpace(tr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		a, err := ParseTextLine(line)
		if err != nil {
			tr.err = fmt.Errorf("line %d: %w", tr.line, err)
			tr.done = true
			return Access{}, false
		}
		return a, true
	}
	tr.done = true
	tr.err = tr.sc.Err()
	return Access{}, false
}

// Err reports the first decoding error, or nil for clean EOF.
func (tr *TextReader) Err() error { return tr.err }
