package trace

import (
	"math/rand"
	"testing"
)

func acc(addr uint64, d Domain) Access {
	return Access{Addr: addr, Op: Load, Domain: d}
}

func TestReuseAnalyzerColdMisses(t *testing.T) {
	ra := NewReuseAnalyzer(64)
	for i := uint64(0); i < 10; i++ {
		ra.Observe(acc(i*64, User))
	}
	st := ra.Stats(User)
	if st.Accesses != 10 || st.ColdMisses != 10 || st.DistinctBlocks != 10 {
		t.Fatalf("cold stream stats wrong: %+v", st)
	}
}

func TestReuseAnalyzerImmediateReuse(t *testing.T) {
	ra := NewReuseAnalyzer(64)
	ra.Observe(acc(0, User))
	ra.Observe(acc(8, User)) // same block, distance 0
	st := ra.Stats(User)
	if st.Hist[0] != 1 {
		t.Fatalf("immediate reuse not in bin 0: %+v", st.Hist[:4])
	}
}

func TestReuseAnalyzerStackDistance(t *testing.T) {
	ra := NewReuseAnalyzer(64)
	// A, B, C, A: A's reuse has 2 distinct blocks in between
	// (d=2, d+1=3 -> bin 1).
	ra.Observe(acc(0*64, User))
	ra.Observe(acc(1*64, User))
	ra.Observe(acc(2*64, User))
	ra.Observe(acc(0*64, User))
	st := ra.Stats(User)
	if st.Hist[1] != 1 {
		t.Fatalf("distance-2 reuse not in bin 1: %+v", st.Hist[:4])
	}
	// Touching B again: distance 1 (only C more recent... wait, A was
	// re-touched after C). Order of recency now: A(4), C(3), B(2).
	ra.Observe(acc(1*64, User))
	st = ra.Stats(User)
	// B's distance is 2 (A and C touched since) -> bin 1 again.
	if st.Hist[1] != 2 {
		t.Fatalf("second distance-2 reuse miscounted: %+v", st.Hist[:4])
	}
}

func TestReuseAnalyzerDomainsSeparate(t *testing.T) {
	ra := NewReuseAnalyzer(64)
	// Kernel touches between user touches must not count toward the
	// user stack distance.
	ra.Observe(acc(0, User))
	for i := uint64(0); i < 8; i++ {
		ra.Observe(acc(0xffff000000000000+i*64, Kernel))
	}
	ra.Observe(acc(0, User))
	st := ra.Stats(User)
	if st.Hist[0] != 1 {
		t.Fatalf("kernel accesses polluted user distance: %+v", st.Hist[:4])
	}
}

func TestReuseAnalyzerCyclicPattern(t *testing.T) {
	// Cycling over N blocks gives every re-access distance N-1.
	const n = 16
	ra := NewReuseAnalyzer(64)
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < n; i++ {
			ra.Observe(acc(i*64, User))
		}
	}
	st := ra.Stats(User)
	// d = 15, d+1 = 16 -> bin 4.
	want := uint64(9 * n)
	if st.Hist[4] != want {
		t.Fatalf("cyclic distances: bin4 = %d, want %d (hist %v)", st.Hist[4], want, st.Hist[:6])
	}
	// A 16-block LRU cache hits all of them; an 8-block one none.
	if hr := st.HitRateAt(32); hr < 0.85 {
		t.Fatalf("hit rate at 32 blocks = %g, want high", hr)
	}
	if hr := st.HitRateAt(8); hr != 0 {
		t.Fatalf("hit rate at 8 blocks = %g, want 0", hr)
	}
}

// Reference implementation: naive O(n^2) stack distance.
func naiveDistances(addrs []uint64) map[int]int {
	out := map[int]int{}
	var history []uint64 // most recent last
	for _, a := range addrs {
		// Find previous position.
		prev := -1
		for i := len(history) - 1; i >= 0; i-- {
			if history[i] == a {
				prev = i
				break
			}
		}
		if prev >= 0 {
			distinct := map[uint64]bool{}
			for _, b := range history[prev+1:] {
				distinct[b] = true
			}
			out[len(distinct)]++
			history = append(history[:prev], history[prev+1:]...)
		}
		history = append(history, a)
	}
	return out
}

func TestReuseAnalyzerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	blocks := make([]uint64, 400)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(40)) * 64
	}
	ra := NewReuseAnalyzer(64)
	for _, b := range blocks {
		ra.Observe(acc(b, User))
	}
	st := ra.Stats(User)

	naive := naiveDistances(blocks)
	var wantHist [33]uint64
	for d, c := range naive {
		i := 0
		for (uint64(1)<<uint(i+1)) <= uint64(d)+1 && i < 32 {
			i++
		}
		wantHist[i] += uint64(c)
	}
	if st.Hist != wantHist {
		t.Fatalf("analyzer disagrees with naive:\n got %v\nwant %v", st.Hist[:8], wantHist[:8])
	}
}

func TestAnalyzeSource(t *testing.T) {
	recs := []Access{
		acc(0, User), acc(64, User), acc(0, User),
		{Addr: 0xffff000000000000, Op: Store, Domain: Kernel},
	}
	ra := Analyze(NewSliceSource(recs), 64)
	if ra.Stats(User).Accesses != 3 || ra.Stats(Kernel).Accesses != 1 {
		t.Fatal("analyze miscounted domains")
	}
}

func TestReuseAnalyzerPanicsOnBadBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad block size accepted")
		}
	}()
	NewReuseAnalyzer(48)
}

func TestReuseStatsEmpty(t *testing.T) {
	var st ReuseStats
	if st.CDF(5) != 0 || st.HitRateAt(1024) != 0 {
		t.Fatal("empty stats should report zeros")
	}
}
