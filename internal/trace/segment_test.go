package trace

import (
	"reflect"
	"testing"
)

// TestCursorDecodePartialFinalFrame pins the bulk decoder's behavior
// when the last batch is smaller than the destination buffer: the final
// Decode must report exactly the leftover count, fill only that prefix,
// and the next Decode must report 0.
func TestCursorDecodePartialFinalFrame(t *testing.T) {
	recs := synthAccesses(1000)
	p := PackSlice(recs)
	cur := p.Cursor()
	buf := make([]Access, 256)
	var got []Access
	for {
		n := cur.Decode(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	// 1000 = 3*256 + 232: the final frame is partial.
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("decoded records differ from source")
	}
	if n := cur.Decode(buf); n != 0 {
		t.Fatalf("Decode after exhaustion = %d, want 0", n)
	}
}

// TestCursorRemainingAfterPartialDecode checks Remaining stays exact
// through a mix of partial Decode and single-record Next calls.
func TestCursorRemainingAfterPartialDecode(t *testing.T) {
	recs := synthAccesses(500)
	p := PackSlice(recs)
	cur := p.Cursor()
	buf := make([]Access, 137)
	if n := cur.Decode(buf); n != 137 {
		t.Fatalf("first Decode = %d, want 137", n)
	}
	if cur.Remaining() != 500-137 {
		t.Fatalf("Remaining after partial decode = %d, want %d", cur.Remaining(), 500-137)
	}
	if _, ok := cur.Next(); !ok {
		t.Fatal("Next failed mid-trace")
	}
	if cur.Remaining() != 500-138 {
		t.Fatalf("Remaining after Next = %d, want %d", cur.Remaining(), 500-138)
	}
	// Drain: the leftover count must be exactly Remaining.
	total := 138
	for {
		n := cur.Decode(buf)
		if n == 0 {
			break
		}
		total += n
	}
	if total != 500 {
		t.Fatalf("drained %d records, want 500", total)
	}
}

// TestCursorResetMidFrame resets in the middle of a decoded frame and
// requires the replay to restart from the view's first record with all
// delta predecessors rewound.
func TestCursorResetMidFrame(t *testing.T) {
	recs := synthAccesses(300)
	p := PackSlice(recs)
	cur := p.Cursor()
	buf := make([]Access, 128)
	cur.Decode(buf)
	cur.Decode(buf[:70]) // stop mid-trace, mid-"frame"
	cur.Reset()
	if cur.Remaining() != 300 {
		t.Fatalf("Remaining after Reset = %d, want 300", cur.Remaining())
	}
	got := Collect(&cur, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("replay after mid-frame Reset differs from source")
	}
}

// segmentRecs builds a mix whose deltas force multi-byte varint groups
// everywhere (large user<->kernel swings), so segment boundaries land
// inside multi-byte varints by construction.
func segmentRecs(n int) []Access {
	recs := synthAccesses(n)
	for i := range recs {
		if i%2 == 1 {
			recs[i].Addr += 1 << 40 // guarantee >4-byte address deltas
		}
	}
	return recs
}

// TestSegmentViewBoundaries splits a packed trace at every alignment
// class relative to the varint groups and checks each segment replays
// exactly its slice of the source — including boundaries that land
// inside multi-byte varint groups.
func TestSegmentViewBoundaries(t *testing.T) {
	recs := segmentRecs(512)
	p := PackSlice(recs)
	for _, bounds := range [][]int{
		{0, 1, 2, 3},            // boundaries inside the first varint groups
		{0, 171, 342},           // odd splits: starts inside multi-byte groups
		{0, 255, 256, 257, 511}, // around the bulk-decode frame size
		{0, 512},                // a zero-length tail segment
	} {
		pos := p.Positions(bounds)
		for k, start := range bounds {
			end := len(recs)
			n := -1
			if k+1 < len(bounds) {
				end = bounds[k+1]
				n = end - start
			}
			seg := p.CursorAt(pos[k], n)
			if seg.Len() != end-start {
				t.Fatalf("segment [%d:%d) Len = %d", start, end, seg.Len())
			}
			got := Collect(&seg, 0)
			want := recs[start:end]
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("segment [%d:%d) replay differs from source slice", start, end)
			}
		}
	}
}

// TestSegmentViewDecodeAndReset checks a segment view's bulk decoder
// stops at the segment end (never crossing into the next segment) and
// that Reset rewinds to the segment start, not the trace start.
func TestSegmentViewDecodeAndReset(t *testing.T) {
	recs := segmentRecs(400)
	p := PackSlice(recs)
	pos := p.Positions([]int{100})
	seg := p.CursorAt(pos[0], 150)

	buf := make([]Access, 256) // larger than the segment
	if n := seg.Decode(buf); n != 150 {
		t.Fatalf("segment Decode = %d, want 150 (must stop at segment end)", n)
	}
	if !reflect.DeepEqual(buf[:150], recs[100:250]) {
		t.Fatal("segment bulk decode differs from source slice")
	}
	if n := seg.Decode(buf); n != 0 {
		t.Fatalf("Decode past segment end = %d, want 0", n)
	}

	seg.Reset()
	if seg.Remaining() != 150 {
		t.Fatalf("Remaining after segment Reset = %d, want 150", seg.Remaining())
	}
	got, ok := seg.Next()
	if !ok || got != recs[100] {
		t.Fatalf("first record after segment Reset = %+v, want %+v", got, recs[100])
	}
}

// TestCursorSkip checks Skip advances the delta predecessors exactly as
// a materializing decode would, and clamps at end of view.
func TestCursorSkip(t *testing.T) {
	recs := segmentRecs(300)
	p := PackSlice(recs)
	cur := p.Cursor()
	if n := cur.Skip(123); n != 123 {
		t.Fatalf("Skip = %d, want 123", n)
	}
	got, ok := cur.Next()
	if !ok || got != recs[123] {
		t.Fatalf("record after Skip(123) = %+v, want %+v", got, recs[123])
	}
	if n := cur.Skip(1 << 20); n != 300-124 {
		t.Fatalf("clamped Skip = %d, want %d", n, 300-124)
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("cursor yields records past the end after Skip")
	}
	if n := cur.Skip(1); n != 0 {
		t.Fatalf("Skip at end = %d, want 0", n)
	}
}

// TestPositionsRoundTrip cross-checks Positions against a cursor walked
// with interleaved Next/Decode calls: the Pos captured mid-walk must
// resume the identical suffix.
func TestPositionsRoundTrip(t *testing.T) {
	recs := segmentRecs(256)
	p := PackSlice(recs)
	cur := p.Cursor()
	buf := make([]Access, 97)
	cur.Decode(buf)
	cur.Next()
	pos := cur.Pos()
	if pos.I != 98 {
		t.Fatalf("Pos.I = %d, want 98", pos.I)
	}
	resumed := p.CursorAt(pos, -1)
	got := Collect(&resumed, 0)
	if !reflect.DeepEqual(got, recs[98:]) {
		t.Fatal("CursorAt(Pos) suffix differs from uninterrupted replay")
	}
	// The same boundary via Positions.
	viaPositions := p.Positions([]int{98})[0]
	if viaPositions != pos {
		t.Fatalf("Positions Pos %+v != walked Pos %+v", viaPositions, pos)
	}
}

// TestSliceCursorSegment checks the hot-tier twin: sub-range views with
// relative Len/Remaining/Reset and Batch clipped to the segment.
func TestSliceCursorSegment(t *testing.T) {
	recs := synthAccesses(100)
	full := NewSliceCursor(recs)
	seg := full.Segment(30, 40)
	if seg.Len() != 40 {
		t.Fatalf("segment Len = %d, want 40", seg.Len())
	}
	b := seg.Batch(1000)
	if len(b) != 40 || !reflect.DeepEqual(b, recs[30:70]) {
		t.Fatalf("segment Batch returned %d records, want the [30:70) slice", len(b))
	}
	if seg.Batch(1) != nil {
		t.Fatal("Batch past segment end is non-nil")
	}
	seg.Reset()
	got, ok := seg.Next()
	if !ok || got != recs[30] {
		t.Fatalf("first record after segment Reset = %+v, want %+v", got, recs[30])
	}
	// Tail segment via n < 0, and clamping past the end.
	tail := full.Segment(90, -1)
	if tail.Len() != 10 {
		t.Fatalf("tail Len = %d, want 10", tail.Len())
	}
	if over := full.Segment(200, 5); over.Len() != 0 {
		t.Fatalf("past-end segment Len = %d, want 0", over.Len())
	}
}
