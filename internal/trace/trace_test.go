package trace

import (
	"testing"
	"testing/quick"
)

func TestDomainString(t *testing.T) {
	if User.String() != "user" || Kernel.String() != "kernel" {
		t.Fatalf("domain strings = %q/%q", User, Kernel)
	}
	if got := Domain(7).String(); got != "domain(7)" {
		t.Fatalf("bad domain string = %q", got)
	}
}

func TestDomainOther(t *testing.T) {
	if User.Other() != Kernel || Kernel.Other() != User {
		t.Fatal("Other() is not an involution on {User,Kernel}")
	}
}

func TestDomainValid(t *testing.T) {
	if !User.Valid() || !Kernel.Valid() {
		t.Fatal("defined domains must be valid")
	}
	if Domain(2).Valid() {
		t.Fatal("domain 2 must be invalid")
	}
}

func TestOpProperties(t *testing.T) {
	if Load.IsWrite() || Ifetch.IsWrite() {
		t.Fatal("load/ifetch must not be writes")
	}
	if !Store.IsWrite() {
		t.Fatal("store must be a write")
	}
	for _, o := range []Op{Load, Store, Ifetch} {
		if !o.Valid() {
			t.Fatalf("%v must be valid", o)
		}
	}
	if Op(3).Valid() {
		t.Fatal("op 3 must be invalid")
	}
	if Load.String() != "load" || Store.String() != "store" || Ifetch.String() != "ifetch" {
		t.Fatal("op string names wrong")
	}
}

func TestAccessValidate(t *testing.T) {
	good := Access{Addr: 1, Op: Store, Domain: Kernel}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid access rejected: %v", err)
	}
	if err := (Access{Op: Op(9)}).Validate(); err == nil {
		t.Fatal("invalid op accepted")
	}
	if err := (Access{Domain: Domain(9)}).Validate(); err == nil {
		t.Fatal("invalid domain accepted")
	}
}

func TestAccessInstructions(t *testing.T) {
	if n := (Access{Gap: 0}).Instructions(); n != 1 {
		t.Fatalf("gap 0 => %d instructions, want 1", n)
	}
	if n := (Access{Gap: 9}).Instructions(); n != 10 {
		t.Fatalf("gap 9 => %d instructions, want 10", n)
	}
}

func sampleTrace() []Access {
	return []Access{
		{Addr: 0x1000, PC: 0x400, Gap: 3, Op: Load, Domain: User},
		{Addr: 0x2000, PC: 0x404, Gap: 0, Op: Store, Domain: User},
		{Addr: 0xffff0000, PC: 0xffff8000, Gap: 12, Op: Load, Domain: Kernel},
		{Addr: 0x1040, PC: 0x408, Gap: 1, Op: Ifetch, Domain: User},
		{Addr: 0xffff0040, PC: 0xffff8004, Gap: 0, Op: Store, Domain: Kernel},
	}
}

func TestSliceSource(t *testing.T) {
	src := NewSliceSource(sampleTrace())
	if src.Len() != 5 {
		t.Fatalf("len = %d, want 5", src.Len())
	}
	got := Collect(src, 0)
	if len(got) != 5 {
		t.Fatalf("collected %d, want 5", len(got))
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source yielded a record")
	}
	src.Reset()
	if got := Collect(src, 2); len(got) != 2 {
		t.Fatalf("limited collect = %d, want 2", len(got))
	}
}

func TestFilterAndDomainOnly(t *testing.T) {
	src := DomainOnly(NewSliceSource(sampleTrace()), Kernel)
	got := Collect(src, 0)
	if len(got) != 2 {
		t.Fatalf("kernel records = %d, want 2", len(got))
	}
	for _, a := range got {
		if a.Domain != Kernel {
			t.Fatalf("non-kernel record %+v leaked through filter", a)
		}
	}
}

func TestLimitSource(t *testing.T) {
	src := NewLimitSource(NewSliceSource(sampleTrace()), 3)
	if got := Collect(src, 0); len(got) != 3 {
		t.Fatalf("limit source = %d records, want 3", len(got))
	}
	src = NewLimitSource(NewSliceSource(sampleTrace()), 0)
	if _, ok := src.Next(); ok {
		t.Fatal("zero-limit source yielded a record")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize(NewSliceSource(sampleTrace()))
	if s.Records != 5 {
		t.Fatalf("records = %d, want 5", s.Records)
	}
	if s.Instructions != 5+3+12+1 {
		t.Fatalf("instructions = %d, want 21", s.Instructions)
	}
	if s.ByDomain[User] != 3 || s.ByDomain[Kernel] != 2 {
		t.Fatalf("by-domain = %v", s.ByDomain)
	}
	if s.Stores != 2 {
		t.Fatalf("stores = %d, want 2", s.Stores)
	}
	if ks := s.KernelShare(); ks != 0.4 {
		t.Fatalf("kernel share = %g, want 0.4", ks)
	}
	if ws := s.WriteShare(); ws != 0.4 {
		t.Fatalf("write share = %g, want 0.4", ws)
	}
	if s.MinAddr != 0x1000 || s.MaxAddr != 0xffff0040 {
		t.Fatalf("addr range = %#x..%#x", s.MinAddr, s.MaxAddr)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(NewSliceSource(nil))
	if s.Records != 0 || s.KernelShare() != 0 || s.WriteShare() != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestKernelSharePlusUserShareIsOne(t *testing.T) {
	f := func(raw []struct {
		Addr uint64
		Dom  bool
	}) bool {
		recs := make([]Access, len(raw))
		for i, r := range raw {
			d := User
			if r.Dom {
				d = Kernel
			}
			recs[i] = Access{Addr: r.Addr, Op: Load, Domain: d}
		}
		s := Summarize(NewSliceSource(recs))
		if s.Records == 0 {
			return s.KernelShare() == 0
		}
		userShare := float64(s.ByDomain[User]) / float64(s.Records)
		return userShare+s.KernelShare() == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
