package trace

import (
	"testing"
)

// synthAccesses builds a deterministic record mix exercising every op,
// domain, large address jumps (user<->kernel) and varied gaps.
func synthAccesses(n int) []Access {
	recs := make([]Access, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545f4914f6cdd1d
	}
	for i := range recs {
		r := next()
		dom := User
		base := uint64(0x1000_0000)
		if r&1 == 1 {
			dom = Kernel
			base = 0xffff_8000_0100_0000
		}
		recs[i] = Access{
			Addr:   base + (r>>8)%(1<<22)*8,
			PC:     base + (r>>32)%(1<<16)*4,
			Gap:    uint32(r >> 56 & 0x3f),
			Op:     Op(r >> 2 % NumOps),
			Domain: dom,
		}
	}
	return recs
}

func TestPackedRoundTrip(t *testing.T) {
	recs := synthAccesses(10_000)
	p := PackSlice(recs)
	if p.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(recs))
	}
	cur := p.Cursor()
	for i, want := range recs {
		got, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor ended at %d of %d", i, len(recs))
		}
		if got != want {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := cur.Next(); ok {
		t.Fatal("cursor yields records past the end")
	}
	if cur.Remaining() != 0 {
		t.Fatalf("Remaining = %d after drain", cur.Remaining())
	}
}

func TestPackedCursorReset(t *testing.T) {
	recs := synthAccesses(257)
	p := PackSlice(recs)
	cur := p.Cursor()
	for i := 0; i < 100; i++ {
		cur.Next()
	}
	cur.Reset()
	if cur.Remaining() != len(recs) {
		t.Fatalf("Remaining after Reset = %d, want %d", cur.Remaining(), len(recs))
	}
	got, ok := cur.Next()
	if !ok || got != recs[0] {
		t.Fatalf("first record after Reset = %+v, want %+v", got, recs[0])
	}
}

func TestPackFromSource(t *testing.T) {
	recs := synthAccesses(500)
	p := Pack(NewSliceSource(recs), 200)
	if p.Len() != 200 {
		t.Fatalf("Pack with max 200 kept %d records", p.Len())
	}
	cur := p.Cursor()
	got := Collect(&cur, 0)
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestPackedEmpty(t *testing.T) {
	p := PackSlice(nil)
	if p.Len() != 0 {
		t.Fatalf("empty pack Len = %d", p.Len())
	}
	cur := p.Cursor()
	if _, ok := cur.Next(); ok {
		t.Fatal("empty cursor yields a record")
	}
	var zero Cursor
	if _, ok := zero.Next(); ok {
		t.Fatal("zero cursor yields a record")
	}
}

func TestPackedCompresses(t *testing.T) {
	recs := synthAccesses(10_000)
	p := PackSlice(recs)
	raw := int64(len(recs)) * 24 // unpacked struct payload lower bound
	if p.SizeBytes() >= raw {
		t.Fatalf("packed %d bytes not smaller than raw %d", p.SizeBytes(), raw)
	}
}

// TestPackedCursorsIndependent proves concurrent replay safety at the
// API level: two cursors over one Packed do not disturb each other.
func TestPackedCursorsIndependent(t *testing.T) {
	recs := synthAccesses(100)
	p := PackSlice(recs)
	a, b := p.Cursor(), p.Cursor()
	for i := 0; i < 50; i++ {
		a.Next()
	}
	got, ok := b.Next()
	if !ok || got != recs[0] {
		t.Fatalf("second cursor saw %+v, want %+v", got, recs[0])
	}
}

// BenchmarkPackedDecode measures the raw zero-allocation decode rate.
func BenchmarkPackedDecode(b *testing.B) {
	p := PackSlice(synthAccesses(1 << 16))
	cur := p.Cursor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cur.Next(); !ok {
			cur.Reset()
		}
	}
}
