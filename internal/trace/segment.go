package trace

import "encoding/binary"

// This file implements offset-addressable segment views over packed and
// sliced traces. The packed streams are delta-coded, so a record's
// absolute position is the pair (per-stream byte offsets, running
// delta predecessors); Pos captures exactly that, letting a replay
// resume —
// or a segment view begin — at any record index without re-decoding the
// prefix. sim.RunSegmented splits one long trace at phase boundaries
// this way: Positions walks the streams once, and each segment then
// replays its own bounded CursorAt view concurrently.

// Pos is an absolute replay position inside a Packed trace: the record
// index, the byte offset of that record's value in each coded stream,
// and the running predecessors the deltas apply to. A Pos is only
// meaningful for the Packed it was derived from (via Cursor.Pos or
// Packed.Positions); the zero Pos addresses the first record.
type Pos struct {
	I       int
	AddrPos int
	PCPos   int
	GapPos  int

	PrevAddr uint64
	PrevPC   uint64
}

// Pos captures the cursor's current absolute position. Resuming a fresh
// cursor there with CursorAt replays exactly the records this cursor
// has not yet produced.
func (c *Cursor) Pos() Pos {
	return Pos{
		I: c.i, AddrPos: c.addrPos, PCPos: c.pcPos, GapPos: c.gapPos,
		PrevAddr: c.prevAddr, PrevPC: c.prevPC,
	}
}

// CursorAt returns a cursor view over the n records starting at pos
// (n < 0 means through the end of the trace). The view's Len, Remaining,
// Reset and end-of-trace are all relative to the segment: it decodes
// records pos.I .. pos.I+n-1 and then reports exhaustion, and Reset
// rewinds to pos, not to the start of the trace. pos must have been
// produced by Cursor.Pos or Packed.Positions on this same trace.
func (p *Packed) CursorAt(pos Pos, n int) Cursor {
	end := p.n
	if n >= 0 && pos.I+n < end {
		end = pos.I + n
	}
	return Cursor{
		p: p,
		i: pos.I, addrPos: pos.AddrPos, pcPos: pos.PCPos, gapPos: pos.GapPos,
		prevAddr: pos.PrevAddr, prevPC: pos.PrevPC,
		start: pos, end: end,
	}
}

// Skip advances the cursor past up to n records without materializing
// them, reporting how many were skipped (less than n only at end of
// segment). The gap stream is not even loaded — its position advances
// by the coded width alone — and the address and PC streams decode
// only the delta sums, so seeking to a segment boundary costs a
// fraction of a full decode.
func (c *Cursor) Skip(n int) int {
	p := c.p
	if p == nil || n <= 0 {
		return 0
	}
	if rem := c.end - c.i; n > rem {
		n = rem
	}
	if n <= 0 {
		return 0
	}
	addrS, pcS := p.addr, p.pc
	ctrlS := p.ctrl[c.i : c.i+n]
	addrPos, pcPos, gapPos := c.addrPos, c.pcPos, c.gapPos
	prevAddr, prevPC := c.prevAddr, c.prevPC
	for k := 0; k < n; k++ {
		ct := ctrlS[k]
		da := binary.LittleEndian.Uint64(addrS[addrPos:]) & widthMask[ct&3]
		addrPos += 1 << (ct & 3)
		dp := binary.LittleEndian.Uint64(pcS[pcPos:]) & widthMask[ct>>2&3]
		pcPos += 1 << (ct >> 2 & 3)
		gapPos += 1 << (ct >> 4 & 3)
		prevAddr += uint64(unzigzag(da))
		prevPC += uint64(unzigzag(dp))
	}
	c.addrPos, c.pcPos, c.gapPos = addrPos, pcPos, gapPos
	c.prevAddr, c.prevPC = prevAddr, prevPC
	c.i += n
	return n
}

// Positions resolves record offsets into absolute positions in one
// forward pass over the streams. Offsets must be non-decreasing and
// within [0, Len()]; the returned slice is parallel to offsets. This is
// how a segmented run plans its boundaries: one O(Len) walk, then every
// segment starts decoding at its own Pos with no prefix work.
func (p *Packed) Positions(offsets []int) []Pos {
	out := make([]Pos, len(offsets))
	c := p.Cursor()
	for k, off := range offsets {
		if off < c.i {
			panic("trace: Positions offsets must be non-decreasing")
		}
		if off > p.n {
			panic("trace: Positions offset past end of trace")
		}
		c.Skip(off - c.i)
		out[k] = c.Pos()
	}
	return out
}

// Segment returns a cursor view over the n records starting at record
// index start (n < 0 means through the end). It is the SliceCursor twin
// of Packed.CursorAt: Len, Remaining and Reset are relative to the
// segment, and Batch never crosses its end.
func (c *SliceCursor) Segment(start, n int) SliceCursor {
	if start < 0 {
		start = 0
	}
	if start > len(c.recs) {
		start = len(c.recs)
	}
	end := len(c.recs)
	if n >= 0 && start+n < end {
		end = start + n
	}
	return SliceCursor{recs: c.recs[start:end:end]}
}
