package trace

import "encoding/binary"

// This file defines the frame record of the batched replay kernel and
// the fused decode+precompute cursor entry point. The replay hot path
// (cpu.Run -> mem.AccessFrame) consumes traces in fixed-size frames of
// FramePre records: the decoded access plus everything the L1 lookup
// needs precomputed — the target cache's (set, tag) decomposition, the
// op classification and the instruction count. For packed traces the
// precompute folds into the varint decode loop itself via DecodeFrame:
// the set/tag arithmetic is independent of the serial varint position
// chains, so it fills pipeline bubbles the decode would otherwise
// stall on, and the intermediate Access staging pass disappears.
//
// The decomposition parameters arrive as plain shift/mask arithmetic
// (SetTagGeom) rather than a cache dependency: trace stays the bottom
// of the package graph.

// SetTagGeom is one cache's address decomposition: set index and tag
// are extracted from the block number (addr >> BlockShift).
type SetTagGeom struct {
	// BlockShift is log2 of the block size.
	BlockShift uint
	// IndexMask selects the set index bits of the block number.
	IndexMask uint64
	// TagShift drops the set index bits, leaving the tag.
	TagShift uint
}

// FrameGeom is the two-cache routing table of the frame precompute,
// indexed by FramePre.Kind: [KindData] describes the data L1 and
// [KindIfetch] the instruction L1.
type FrameGeom [2]SetTagGeom

// FramePre.Kind values: index into FrameGeom and the kernel's per-L1
// state.
const (
	KindData   = 0
	KindIfetch = 1
)

// FramePre is one frame record: the decoded access with its L1 lookup
// context precomputed. The struct packs to 40 bytes so a 256-record
// frame stays L1-resident on the host.
type FramePre struct {
	// Addr and PC are the record's raw fields (the miss path needs
	// them for block math and trace taps).
	Addr uint64
	PC   uint64
	// Tag is the address tag under the target L1's geometry.
	Tag uint64
	// Busy is filled as the record's instruction count (Gap+1); the
	// CPU rescales it in place to base cycles when the configured CPI
	// is not 1.
	Busy uint64
	// Set is the set index under the target L1's geometry.
	Set int32
	// Dom is the record's privilege domain.
	Dom Domain
	// Kind routes the record: KindData or KindIfetch.
	Kind uint8
	// Write marks stores.
	Write bool
}

// Op reconstructs the record's operation kind.
func (p *FramePre) Op() Op {
	if p.Kind == KindIfetch {
		return Ifetch
	}
	if p.Write {
		return Store
	}
	return Load
}

// PrecomputeInto fills pre[i] for each record of batch under geom. pre
// must be at least len(batch) long. This is the staging-path twin of
// Cursor.DecodeFrame for records that already exist in memory (the hot
// tier's zero-copy batches, the generic Source staging buffer).
func PrecomputeInto(batch []Access, pre []FramePre, geom *FrameGeom) {
	if len(batch) == 0 {
		return
	}
	_ = pre[len(batch)-1]
	for i := range batch {
		a := &batch[i]
		kind := uint8(KindData)
		if a.Op == Ifetch {
			kind = KindIfetch
		}
		g := &geom[kind]
		b := a.Addr >> g.BlockShift
		pre[i] = FramePre{
			Addr:  a.Addr,
			PC:    a.PC,
			Tag:   b >> g.TagShift,
			Busy:  uint64(a.Gap) + 1,
			Set:   int32(b & g.IndexMask),
			Dom:   a.Domain,
			Kind:  kind,
			Write: a.Op == Store,
		}
	}
}

// DecodeFrame fills dst with up to len(dst) precomputed frame records,
// advancing the cursor, and reports how many it wrote (0 at end of
// trace). It is Decode with the frame precompute fused into the same
// pass: each record's set/tag decomposition and op classification are
// computed while the next varints decode, and no intermediate Access
// staging is written. DecodeFrame performs no allocation.
func (c *Cursor) DecodeFrame(dst []FramePre, geom *FrameGeom) int {
	p := c.p
	if p == nil {
		return 0
	}
	n := c.end - c.i
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	out := dst[:n]
	addrS, pcS, gapS := p.addr, p.pc, p.gap
	ctrlS := p.ctrl[c.i : c.i+n]
	odS := p.opdom[c.i : c.i+n]
	addrPos, pcPos, gapPos := c.addrPos, c.pcPos, c.gapPos
	prevAddr, prevPC := c.prevAddr, c.prevPC
	for k := range out {
		// Branch-free coded-width decode, exactly as in Decode (see the
		// comment there).
		ct := ctrlS[k]
		da := binary.LittleEndian.Uint64(addrS[addrPos:]) & widthMask[ct&3]
		addrPos += 1 << (ct & 3)
		dp := binary.LittleEndian.Uint64(pcS[pcPos:]) & widthMask[ct>>2&3]
		pcPos += 1 << (ct >> 2 & 3)
		gap := binary.LittleEndian.Uint64(gapS[gapPos:]) & widthMask[ct>>4&3]
		gapPos += 1 << (ct >> 4 & 3)
		od := odS[k]
		prevAddr += uint64(unzigzag(da))
		prevPC += uint64(unzigzag(dp))
		op := Op(od & (1<<domShift - 1))
		kind := uint8(KindData)
		if op == Ifetch {
			kind = KindIfetch
		}
		g := &geom[kind]
		b := prevAddr >> g.BlockShift
		out[k] = FramePre{
			Addr:  prevAddr,
			PC:    prevPC,
			Tag:   b >> g.TagShift,
			Busy:  gap + 1,
			Set:   int32(b & g.IndexMask),
			Dom:   Domain(od >> domShift),
			Kind:  kind,
			Write: op == Store,
		}
	}
	c.addrPos, c.pcPos, c.gapPos = addrPos, pcPos, gapPos
	c.prevAddr, c.prevPC = prevAddr, prevPC
	c.i += n
	return n
}
