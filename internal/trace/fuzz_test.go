package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseTextLine checks the text parser never panics and that any
// line it accepts re-serializes to an equivalent record.
func FuzzParseTextLine(f *testing.F) {
	f.Add("user load 0x10 0x20 3")
	f.Add("kernel store 0xffff800000001040 0xffff800000400abc 12")
	f.Add("user ifetch 0x0 0x0 0")
	f.Add("")
	f.Add("user load 0x10")
	f.Add("daemon jump zz zz -1")
	f.Fuzz(func(t *testing.T, line string) {
		a, err := ParseTextLine(line)
		if err != nil {
			return
		}
		// Accepted records are valid and round-trip.
		if verr := a.Validate(); verr != nil {
			t.Fatalf("parsed invalid record from %q: %v", line, verr)
		}
		var buf bytes.Buffer
		if _, werr := WriteText(&buf, NewSliceSource([]Access{a})); werr != nil {
			t.Fatalf("re-serialize failed: %v", werr)
		}
		b, err2 := ParseTextLine(strings.TrimSpace(buf.String()))
		if err2 != nil {
			t.Fatalf("round trip failed for %q: %v", line, err2)
		}
		if a != b {
			t.Fatalf("round trip mismatch: %+v vs %+v", a, b)
		}
	})
}

// FuzzBinaryReader checks the binary decoder never panics on arbitrary
// input and never yields invalid records.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid trace, a truncated one, and garbage.
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.Write(Access{Addr: 0x40, PC: 0x80, Gap: 1, Op: Store, Domain: Kernel})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("MCTR\x01\x00\x00\x00garbage"))
	f.Add([]byte("NOPE"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		count := 0
		for {
			a, ok := r.Next()
			if !ok {
				break
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("decoder yielded invalid record: %v", err)
			}
			count++
			if count > 1<<20 {
				t.Fatal("decoder yielded implausibly many records")
			}
		}
	})
}
