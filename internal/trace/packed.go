package trace

import (
	"encoding/binary"
	"math/bits"
)

// This file implements the packed trace arena format: an immutable,
// struct-of-arrays in-memory representation of a materialized trace.
// Access records compress well because consecutive records are highly
// correlated — addresses and PCs move in small strides — so the arena
// stores per-field byte streams instead of []Access:
//
//	addr   zigzag varint deltas from the previous record's address
//	pc     zigzag varint deltas from the previous record's PC
//	opdom  one byte per record: op in the low bits, domain above it
//	gap    plain varints (gaps are small non-negative counts)
//
// A 40-byte Access typically packs into 4-7 bytes, so a 400k-access
// trace costs ~2MB instead of ~16MB, and the sweep engine can keep many
// (app, seed) traces resident (see internal/tracestore). Packed values
// are immutable after construction; any number of Cursors may replay
// one concurrently, and replay allocates nothing.

// domShift positions the domain bits above the op bits in the packed
// op+domain byte.
const domShift = 2

// Packed is an immutable packed trace. Build one with Pack or
// PackSlice; replay it with Cursor.
type Packed struct {
	n     int
	addr  []byte
	pc    []byte
	opdom []byte
	gap   []byte
}

// Len reports the number of records in the trace.
func (p *Packed) Len() int { return p.n }

// SizeBytes reports the in-memory footprint of the packed streams —
// the quantity the tracestore LRU budget accounts.
func (p *Packed) SizeBytes() int64 {
	return int64(cap(p.addr) + cap(p.pc) + cap(p.opdom) + cap(p.gap))
}

// zigzag maps a signed delta onto an unsigned varint-friendly value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(x uint64) int64 { return int64(x>>1) ^ -int64(x&1) }

// packer accumulates records into the packed streams.
type packer struct {
	p        Packed
	prevAddr uint64
	prevPC   uint64
}

func (pk *packer) append(a Access) {
	pk.p.addr = appendUvarint(pk.p.addr, zigzag(int64(a.Addr-pk.prevAddr)))
	pk.p.pc = appendUvarint(pk.p.pc, zigzag(int64(a.PC-pk.prevPC)))
	pk.p.opdom = append(pk.p.opdom, byte(a.Op)|byte(a.Domain)<<domShift)
	pk.p.gap = appendUvarint(pk.p.gap, uint64(a.Gap))
	pk.prevAddr, pk.prevPC = a.Addr, a.PC
	pk.p.n++
}

// appendUvarint is binary.AppendUvarint with the 1-3 byte cases — all
// but a sliver of every stream — emitted as single fixed-size appends
// instead of a byte-at-a-time loop.
func appendUvarint(b []byte, v uint64) []byte {
	switch {
	case v < 1<<7:
		return append(b, byte(v))
	case v < 1<<14:
		return append(b, byte(v)|0x80, byte(v>>7))
	case v < 1<<21:
		return append(b, byte(v)|0x80, byte(v>>7)|0x80, byte(v>>14))
	default:
		return binary.AppendUvarint(b, v)
	}
}

// streamPad is the zero padding appended to each varint stream so the
// word-at-a-time decoder in uvarintAt can always load 8 bytes from any
// valid position without running off the end.
const streamPad = 8

// finish trims the streams to their final length (plus decoder padding)
// so SizeBytes reflects what is actually retained.
func (pk *packer) finish() *Packed {
	p := pk.p
	p.addr = padded(p.addr)
	p.pc = padded(p.pc)
	p.opdom = append([]byte(nil), p.opdom...)
	p.gap = padded(p.gap)
	return &p
}

func padded(s []byte) []byte {
	out := make([]byte, len(s)+streamPad)
	copy(out, s)
	return out
}

// Pack drains src into a packed trace, stopping after max records
// (max <= 0 means until the source ends — do not pass an unbounded
// source then).
func Pack(src Source, max int) *Packed {
	var pk packer
	if max > 0 {
		// Typical stream densities (addresses stride by a few KB, PCs by
		// less, gaps are small): sized so the append loop almost never
		// regrows. finish trims whatever margin is left.
		pk.p.addr = make([]byte, 0, 3*max)
		pk.p.pc = make([]byte, 0, 3*max)
		pk.p.opdom = make([]byte, 0, max)
		pk.p.gap = make([]byte, 0, 2*max)
	}
	for max <= 0 || pk.p.n < max {
		a, ok := src.Next()
		if !ok {
			break
		}
		pk.append(a)
	}
	return pk.finish()
}

// PackSlice packs an already-materialized record slice. It is the bulk
// twin of Pack: the four stream slices and both delta predecessors live
// in locals across the loop instead of round-tripping through packer
// fields per record.
func PackSlice(recs []Access) *Packed {
	n := len(recs)
	addr := make([]byte, 0, 3*n)
	pc := make([]byte, 0, 3*n)
	opdom := make([]byte, 0, n)
	gap := make([]byte, 0, 2*n)
	var prevAddr, prevPC uint64
	for i := range recs {
		a := &recs[i]
		addr = appendUvarint(addr, zigzag(int64(a.Addr-prevAddr)))
		pc = appendUvarint(pc, zigzag(int64(a.PC-prevPC)))
		opdom = append(opdom, byte(a.Op)|byte(a.Domain)<<domShift)
		gap = appendUvarint(gap, uint64(a.Gap))
		prevAddr, prevPC = a.Addr, a.PC
	}
	return &Packed{
		n:     n,
		addr:  padded(addr),
		pc:    padded(pc),
		opdom: append([]byte(nil), opdom...),
		gap:   padded(gap),
	}
}

// Cursor is a zero-allocation replay position over a Packed trace. It
// implements Source; cpu.Run recognizes the concrete type and replays
// it without the per-access interface round-trip. The zero Cursor is
// an exhausted empty trace; obtain live ones from Packed.Cursor.
// Cursors are cheap values — take as many as needed; each replays the
// whole trace independently.
type Cursor struct {
	p        *Packed
	i        int
	addrPos  int
	pcPos    int
	gapPos   int
	prevAddr uint64
	prevPC   uint64

	// start/end bound the cursor to a segment of the trace: records
	// start.I .. end-1. Packed.Cursor spans the whole trace;
	// Packed.CursorAt (segment.go) builds narrower views. The zero
	// Cursor has end 0 and is exhausted, matching its documented
	// empty-trace behavior.
	start Pos
	end   int
}

// Cursor returns a fresh replay cursor positioned at the first record.
func (p *Packed) Cursor() Cursor { return Cursor{p: p, end: p.n} }

// Len reports the number of records in the cursor's view — the whole
// trace for Packed.Cursor, the segment length for Packed.CursorAt.
func (c *Cursor) Len() int { return c.end - c.start.I }

// Remaining reports how many records are left to replay.
func (c *Cursor) Remaining() int { return c.end - c.i }

// Reset rewinds the cursor to the beginning of its view (the start of
// the trace, or the segment start for a CursorAt view).
func (c *Cursor) Reset() {
	c.i, c.addrPos, c.pcPos, c.gapPos = c.start.I, c.start.AddrPos, c.start.PCPos, c.start.GapPos
	c.prevAddr, c.prevPC = c.start.PrevAddr, c.start.PrevPC
}

// uvarintAt decodes one unsigned varint of b starting at pos. It is the
// hot-path twin of binary.Uvarint: the packer zero-pads every stream by
// streamPad bytes (see finish), so a single 8-byte word load is always
// in bounds, and varints of 2-8 bytes decode branchlessly from that
// word in uvarintMulti — within a multi-byte varint, the exact length
// varies record to record, so a length branch there would mispredict
// constantly. The single-byte case is split out so it inlines at the
// call sites in Decode: the gap and PC-delta streams are almost
// entirely single-byte, so per stream the fast branch predicts
// near-perfectly (and the addr stream, which is mostly multi-byte,
// predicts the fall-through just as well) — the multi-byte call is only
// paid where multi-byte data is.
func uvarintAt(b []byte, pos int) (uint64, int) {
	x := binary.LittleEndian.Uint64(b[pos:])
	if x&0x80 == 0 {
		return x & 0x7f, pos + 1
	}
	return uvarintMulti(x, b, pos)
}

func uvarintMulti(x uint64, b []byte, pos int) (uint64, int) {
	// Bit position of the first clear continuation bit = 8*len-1.
	stop := bits.TrailingZeros64(^x & 0x8080808080808080)
	if stop == 64 {
		return uvarintSlow(b, pos)
	}
	// Keep the varint's bytes, drop the continuation bits, then fold the
	// 7-bit groups together (7+7 -> 14, 14+14 -> 28, 28+28 -> 56 bits).
	x = x & (uint64(1)<<stop<<1 - 1) & 0x7f7f7f7f7f7f7f7f
	x = x&0x007f007f007f007f | x>>1&0x3f803f803f803f80
	x = x&0x00003fff00003fff | x>>2&0x0fffc0000fffc000
	x = x&0x000000000fffffff | x>>4&0x00fffffff0000000
	return x, pos + (stop >> 3) + 1
}

// uvarintSlow handles the rare 5+ byte varints (large first-record
// deltas, mostly).
func uvarintSlow(b []byte, pos int) (uint64, int) {
	var x uint64
	var s uint
	for {
		c := b[pos]
		pos++
		if c < 0x80 {
			return x | uint64(c)<<s, pos
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
}

// Decode fills dst with up to len(dst) records, advancing the cursor,
// and reports how many it wrote (0 at end of trace). It is the bulk
// twin of Next: cursor state stays in registers across the batch, so
// per-record decode cost drops well below the one-at-a-time path.
// Decode performs no allocation.
func (c *Cursor) Decode(dst []Access) int {
	p := c.p
	if p == nil {
		return 0
	}
	n := c.end - c.i
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	// All three varint streams decode in one loop: each stream's decode
	// position forms a serial dependency chain (the next position is
	// known only after the current length is), so interleaving the
	// independent chains is what keeps the pipeline fed.
	out := dst[:n]
	addrS, pcS, gapS := p.addr, p.pc, p.gap
	odS := p.opdom[c.i : c.i+n]
	addrPos, pcPos, gapPos := c.addrPos, c.pcPos, c.gapPos
	prevAddr, prevPC := c.prevAddr, c.prevPC
	for k := range out {
		// The single-byte varint checks are uvarintAt's fast path written
		// out by hand: the combined function is just over the compiler's
		// inlining budget, and a call per stream per record costs more
		// than the decode itself on the mostly-single-byte streams.
		var da, dp, gap uint64
		if x := binary.LittleEndian.Uint64(addrS[addrPos:]); x&0x80 == 0 {
			da = x & 0x7f
			addrPos++
		} else {
			da, addrPos = uvarintMulti(x, addrS, addrPos)
		}
		if x := binary.LittleEndian.Uint64(pcS[pcPos:]); x&0x80 == 0 {
			dp = x & 0x7f
			pcPos++
		} else {
			dp, pcPos = uvarintMulti(x, pcS, pcPos)
		}
		if x := binary.LittleEndian.Uint64(gapS[gapPos:]); x&0x80 == 0 {
			gap = x & 0x7f
			gapPos++
		} else {
			gap, gapPos = uvarintMulti(x, gapS, gapPos)
		}
		od := odS[k]
		prevAddr += uint64(unzigzag(da))
		prevPC += uint64(unzigzag(dp))
		out[k] = Access{
			Addr:   prevAddr,
			PC:     prevPC,
			Gap:    uint32(gap),
			Op:     Op(od & (1<<domShift - 1)),
			Domain: Domain(od >> domShift),
		}
	}
	c.addrPos, c.pcPos, c.gapPos = addrPos, pcPos, gapPos
	c.prevAddr, c.prevPC = prevAddr, prevPC
	c.i += n
	return n
}

// Next decodes the next record. It performs no allocation.
func (c *Cursor) Next() (Access, bool) {
	if c.p == nil || c.i >= c.end {
		return Access{}, false
	}
	da, addrPos := uvarintAt(c.p.addr, c.addrPos)
	dp, pcPos := uvarintAt(c.p.pc, c.pcPos)
	gap, gapPos := uvarintAt(c.p.gap, c.gapPos)
	od := c.p.opdom[c.i]

	c.prevAddr += uint64(unzigzag(da))
	c.prevPC += uint64(unzigzag(dp))
	a := Access{
		Addr:   c.prevAddr,
		PC:     c.prevPC,
		Gap:    uint32(gap),
		Op:     Op(od & (1<<domShift - 1)),
		Domain: Domain(od >> domShift),
	}
	c.addrPos, c.pcPos, c.gapPos = addrPos, pcPos, gapPos
	c.i++
	return a, true
}
