package trace

import "encoding/binary"

// This file implements the packed trace arena format: an immutable,
// struct-of-arrays in-memory representation of a materialized trace.
// Access records compress well because consecutive records are highly
// correlated — addresses and PCs move in small strides — so the arena
// stores per-field byte streams instead of []Access:
//
//	ctrl   one byte per record carrying three 2-bit width codes (addr
//	       in bits 0-1, pc in 2-3, gap in 4-5); code c means the value
//	       occupies 1<<c bytes in its stream
//	addr   zigzag deltas from the previous record's address, stored
//	       little-endian in the coded width
//	pc     zigzag deltas from the previous record's PC, same encoding
//	opdom  one byte per record: op in the low bits, domain above it
//	gap    plain values (gaps are small non-negative counts)
//
// The coded fixed widths {1,2,4,8} replace the varints an earlier
// revision used: a varint decode is a serial chain (the next byte
// position is known only after the current length is found by
// inspecting continuation bits), whereas here every length comes from
// the ctrl byte, so each field decodes as one unconditional 8-byte
// load, a mask, and a shift-free position bump — no continuation-bit
// scan, no 7-bit fold chain, no length branches. The price is about a
// byte per record of width rounding plus the ctrl stream itself; the
// arena is an in-memory cache under a byte budget (internal/
// tracestore), so trading a few percent of residency for a decode
// that is pure straight-line ALU is the right side of the bargain.
//
// A 40-byte Access typically packs into 6-8 bytes, so a 400k-access
// trace costs ~3MB instead of ~16MB, and the sweep engine can keep many
// (app, seed) traces resident. Packed values are immutable after
// construction; any number of Cursors may replay one concurrently, and
// replay allocates nothing.

// domShift positions the domain bits above the op bits in the packed
// op+domain byte.
const domShift = 2

// widthMask selects the low 1<<c bytes of an 8-byte little-endian
// load, for width code c.
var widthMask = [4]uint64{0xff, 0xffff, 0xffff_ffff, ^uint64(0)}

// widthCode returns the smallest width code whose 1<<c bytes hold v.
func widthCode(v uint64) uint8 {
	switch {
	case v < 1<<8:
		return 0
	case v < 1<<16:
		return 1
	case v < 1<<32:
		return 2
	default:
		return 3
	}
}

// appendCoded appends v in the fixed width named by code.
func appendCoded(b []byte, v uint64, code uint8) []byte {
	switch code {
	case 0:
		return append(b, byte(v))
	case 1:
		return append(b, byte(v), byte(v>>8))
	case 2:
		return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	default:
		return binary.LittleEndian.AppendUint64(b, v)
	}
}

// Packed is an immutable packed trace. Build one with Pack or
// PackSlice; replay it with Cursor.
type Packed struct {
	n     int
	ctrl  []byte
	addr  []byte
	pc    []byte
	opdom []byte
	gap   []byte
}

// Len reports the number of records in the trace.
func (p *Packed) Len() int { return p.n }

// SizeBytes reports the in-memory footprint of the packed streams —
// the quantity the tracestore LRU budget accounts.
func (p *Packed) SizeBytes() int64 {
	return int64(cap(p.ctrl) + cap(p.addr) + cap(p.pc) + cap(p.opdom) + cap(p.gap))
}

// zigzag maps a signed delta onto a small unsigned value.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(x uint64) int64 { return int64(x>>1) ^ -int64(x&1) }

// packer accumulates records into the packed streams.
type packer struct {
	p        Packed
	prevAddr uint64
	prevPC   uint64
}

func (pk *packer) append(a Access) {
	da := zigzag(int64(a.Addr - pk.prevAddr))
	dp := zigzag(int64(a.PC - pk.prevPC))
	ac, pc, gc := widthCode(da), widthCode(dp), widthCode(uint64(a.Gap))
	pk.p.ctrl = append(pk.p.ctrl, ac|pc<<2|gc<<4)
	pk.p.addr = appendCoded(pk.p.addr, da, ac)
	pk.p.pc = appendCoded(pk.p.pc, dp, pc)
	pk.p.opdom = append(pk.p.opdom, byte(a.Op)|byte(a.Domain)<<domShift)
	pk.p.gap = appendCoded(pk.p.gap, uint64(a.Gap), gc)
	pk.prevAddr, pk.prevPC = a.Addr, a.PC
	pk.p.n++
}

// streamPad is the zero padding appended to each coded stream so the
// decoder's unconditional 8-byte load is always in bounds from any
// valid position, even when the trailing values are narrow.
const streamPad = 8

// finish trims the streams to their final length (plus decoder padding)
// so SizeBytes reflects what is actually retained.
func (pk *packer) finish() *Packed {
	p := pk.p
	p.ctrl = append([]byte(nil), p.ctrl...)
	p.addr = padded(p.addr)
	p.pc = padded(p.pc)
	p.opdom = append([]byte(nil), p.opdom...)
	p.gap = padded(p.gap)
	return &p
}

func padded(s []byte) []byte {
	out := make([]byte, len(s)+streamPad)
	copy(out, s)
	return out
}

// Pack drains src into a packed trace, stopping after max records
// (max <= 0 means until the source ends — do not pass an unbounded
// source then).
func Pack(src Source, max int) *Packed {
	var pk packer
	if max > 0 {
		// Typical stream densities (addresses stride by a few KB, PCs by
		// less, gaps are small byte-wide counts): sized so the append loop
		// almost never regrows. finish trims whatever margin is left.
		pk.p.ctrl = make([]byte, 0, max)
		pk.p.addr = make([]byte, 0, 3*max)
		pk.p.pc = make([]byte, 0, 3*max)
		pk.p.opdom = make([]byte, 0, max)
		pk.p.gap = make([]byte, 0, 2*max)
	}
	for max <= 0 || pk.p.n < max {
		a, ok := src.Next()
		if !ok {
			break
		}
		pk.append(a)
	}
	return pk.finish()
}

// PackSlice packs an already-materialized record slice. It is the bulk
// twin of Pack: the stream slices and both delta predecessors live in
// locals across the loop instead of round-tripping through packer
// fields per record.
func PackSlice(recs []Access) *Packed {
	n := len(recs)
	ctrl := make([]byte, 0, n)
	addr := make([]byte, 0, 3*n)
	pc := make([]byte, 0, 3*n)
	opdom := make([]byte, 0, n)
	gap := make([]byte, 0, 2*n)
	var prevAddr, prevPC uint64
	for i := range recs {
		a := &recs[i]
		da := zigzag(int64(a.Addr - prevAddr))
		dp := zigzag(int64(a.PC - prevPC))
		ac, pcc, gc := widthCode(da), widthCode(dp), widthCode(uint64(a.Gap))
		ctrl = append(ctrl, ac|pcc<<2|gc<<4)
		addr = appendCoded(addr, da, ac)
		pc = appendCoded(pc, dp, pcc)
		opdom = append(opdom, byte(a.Op)|byte(a.Domain)<<domShift)
		gap = appendCoded(gap, uint64(a.Gap), gc)
		prevAddr, prevPC = a.Addr, a.PC
	}
	return &Packed{
		n:     n,
		ctrl:  append([]byte(nil), ctrl...),
		addr:  padded(addr),
		pc:    padded(pc),
		opdom: append([]byte(nil), opdom...),
		gap:   padded(gap),
	}
}

// Cursor is a zero-allocation replay position over a Packed trace. It
// implements Source; cpu.Run recognizes the concrete type and replays
// it without the per-access interface round-trip. The zero Cursor is
// an exhausted empty trace; obtain live ones from Packed.Cursor.
// Cursors are cheap values — take as many as needed; each replays the
// whole trace independently.
type Cursor struct {
	p        *Packed
	i        int
	addrPos  int
	pcPos    int
	gapPos   int
	prevAddr uint64
	prevPC   uint64

	// start/end bound the cursor to a segment of the trace: records
	// start.I .. end-1. Packed.Cursor spans the whole trace;
	// Packed.CursorAt (segment.go) builds narrower views. The zero
	// Cursor has end 0 and is exhausted, matching its documented
	// empty-trace behavior.
	start Pos
	end   int
}

// Cursor returns a fresh replay cursor positioned at the first record.
func (p *Packed) Cursor() Cursor { return Cursor{p: p, end: p.n} }

// Len reports the number of records in the cursor's view — the whole
// trace for Packed.Cursor, the segment length for Packed.CursorAt.
func (c *Cursor) Len() int { return c.end - c.start.I }

// Remaining reports how many records are left to replay.
func (c *Cursor) Remaining() int { return c.end - c.i }

// Reset rewinds the cursor to the beginning of its view (the start of
// the trace, or the segment start for a CursorAt view).
func (c *Cursor) Reset() {
	c.i, c.addrPos, c.pcPos, c.gapPos = c.start.I, c.start.AddrPos, c.start.PCPos, c.start.GapPos
	c.prevAddr, c.prevPC = c.start.PrevAddr, c.start.PrevPC
}

// Decode fills dst with up to len(dst) records, advancing the cursor,
// and reports how many it wrote (0 at end of trace). It is the bulk
// twin of Next: cursor state stays in registers across the batch, so
// per-record decode cost drops well below the one-at-a-time path.
// Decode performs no allocation.
func (c *Cursor) Decode(dst []Access) int {
	p := c.p
	if p == nil {
		return 0
	}
	n := c.end - c.i
	if n <= 0 {
		return 0
	}
	if n > len(dst) {
		n = len(dst)
	}
	out := dst[:n]
	addrS, pcS, gapS := p.addr, p.pc, p.gap
	ctrlS := p.ctrl[c.i : c.i+n]
	odS := p.opdom[c.i : c.i+n]
	addrPos, pcPos, gapPos := c.addrPos, c.pcPos, c.gapPos
	prevAddr, prevPC := c.prevAddr, c.prevPC
	for k := range out {
		// Every field is one unconditional 8-byte load masked to the
		// width the ctrl byte names; the three position bumps are pure
		// shifts of the codes, so there is no length branch anywhere in
		// the loop and the three streams' loads pipeline freely.
		ct := ctrlS[k]
		da := binary.LittleEndian.Uint64(addrS[addrPos:]) & widthMask[ct&3]
		addrPos += 1 << (ct & 3)
		dp := binary.LittleEndian.Uint64(pcS[pcPos:]) & widthMask[ct>>2&3]
		pcPos += 1 << (ct >> 2 & 3)
		gap := binary.LittleEndian.Uint64(gapS[gapPos:]) & widthMask[ct>>4&3]
		gapPos += 1 << (ct >> 4 & 3)
		od := odS[k]
		prevAddr += uint64(unzigzag(da))
		prevPC += uint64(unzigzag(dp))
		out[k] = Access{
			Addr:   prevAddr,
			PC:     prevPC,
			Gap:    uint32(gap),
			Op:     Op(od & (1<<domShift - 1)),
			Domain: Domain(od >> domShift),
		}
	}
	c.addrPos, c.pcPos, c.gapPos = addrPos, pcPos, gapPos
	c.prevAddr, c.prevPC = prevAddr, prevPC
	c.i += n
	return n
}

// Next decodes the next record. It performs no allocation.
func (c *Cursor) Next() (Access, bool) {
	if c.p == nil || c.i >= c.end {
		return Access{}, false
	}
	p := c.p
	ct := p.ctrl[c.i]
	da := binary.LittleEndian.Uint64(p.addr[c.addrPos:]) & widthMask[ct&3]
	dp := binary.LittleEndian.Uint64(p.pc[c.pcPos:]) & widthMask[ct>>2&3]
	gap := binary.LittleEndian.Uint64(p.gap[c.gapPos:]) & widthMask[ct>>4&3]
	od := p.opdom[c.i]

	c.addrPos += 1 << (ct & 3)
	c.pcPos += 1 << (ct >> 2 & 3)
	c.gapPos += 1 << (ct >> 4 & 3)
	c.prevAddr += uint64(unzigzag(da))
	c.prevPC += uint64(unzigzag(dp))
	a := Access{
		Addr:   c.prevAddr,
		PC:     c.prevPC,
		Gap:    uint32(gap),
		Op:     Op(od & (1<<domShift - 1)),
		Domain: Domain(od >> domShift),
	}
	c.i++
	return a, true
}
