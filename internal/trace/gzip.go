package trace

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Trace files compress extremely well (addresses repeat block-aligned
// prefixes), so the tools transparently support gzip: any path ending
// in ".gz" is compressed on write and decompressed on read.

// OpenFile opens a trace file for reading, transparently decompressing
// ".gz" paths, and returns a Reader plus a closer for the underlying
// file chain.
func OpenFile(path string) (*Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return NewReader(f), f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trace: opening gzip %s: %w", path, err)
	}
	return NewReader(zr), &chainCloser{zr, f}, nil
}

// CreateFile creates a trace file for writing, transparently
// compressing ".gz" paths, and returns a Writer plus a closer that
// flushes the trace and the compression chain.
func CreateFile(path string) (*Writer, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		w := NewWriter(f)
		return w, &flushCloser{w, f}, nil
	}
	zw := gzip.NewWriter(f)
	w := NewWriter(zw)
	return w, &flushCloser{w, &chainCloser{zw, f}}, nil
}

// chainCloser closes a wrapper then its underlying resource.
type chainCloser struct {
	outer io.Closer
	inner io.Closer
}

func (c *chainCloser) Close() error {
	errOuter := c.outer.Close()
	errInner := c.inner.Close()
	if errOuter != nil {
		return errOuter
	}
	return errInner
}

// flushCloser flushes a trace writer before closing the chain beneath.
type flushCloser struct {
	w     *Writer
	chain io.Closer
}

func (c *flushCloser) Close() error {
	errFlush := c.w.Flush()
	errClose := c.chain.Close()
	if errFlush != nil {
		return errFlush
	}
	return errClose
}
