package trace

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeViaCreateFile(t *testing.T, path string, recs []Access) {
	t.Helper()
	w, closer, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range recs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
}

func readViaOpenFile(t *testing.T, path string) []Access {
	t.Helper()
	r, closer, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	recs := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("read error: %v", r.Err())
	}
	return recs
}

func TestPlainFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr")
	recs := sampleTrace()
	writeViaCreateFile(t, path, recs)
	got := readViaOpenFile(t, path)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("plain file round trip mismatch")
	}
}

func TestGzipFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr.gz")
	recs := sampleTrace()
	writeViaCreateFile(t, path, recs)
	got := readViaOpenFile(t, path)
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("gzip round trip mismatch")
	}
	// The file must actually be gzip (magic bytes 1f 8b).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatal("gz path did not produce a gzip file")
	}
}

func TestGzipCompresses(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "big.mctr")
	zipped := filepath.Join(dir, "big.mctr.gz")
	recs := make([]Access, 20000)
	for i := range recs {
		recs[i] = Access{Addr: uint64(i%512) * 64, PC: 0x400000 + uint64(i%64)*4, Op: Load, Domain: User}
	}
	writeViaCreateFile(t, plain, recs)
	writeViaCreateFile(t, zipped, recs)
	fp, _ := os.Stat(plain)
	fz, _ := os.Stat(zipped)
	if fz.Size() >= fp.Size()/4 {
		t.Fatalf("gzip trace %d bytes, plain %d: compression ineffective", fz.Size(), fp.Size())
	}
}

func TestOpenFileErrors(t *testing.T) {
	if _, _, err := OpenFile("/does/not/exist.mctr"); err == nil {
		t.Fatal("missing file accepted")
	}
	// A .gz path with non-gzip content must fail at open.
	path := filepath.Join(t.TempDir(), "fake.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path); err == nil {
		t.Fatal("non-gzip .gz accepted")
	}
}

func TestCreateFileErrors(t *testing.T) {
	if _, _, err := CreateFile("/no/such/dir/t.mctr"); err == nil {
		t.Fatal("uncreatable path accepted")
	}
}
