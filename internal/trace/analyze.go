package trace

// Reuse-distance analysis: for each access, the number of *distinct*
// blocks touched since the previous access to the same block (LRU
// stack distance, block granularity). The distribution explains every
// cache's miss curve — a cache of capacity C blocks captures exactly
// the accesses with distance < C under LRU — and is how the synthetic
// workloads are validated against the footprints they claim to model.

// ReuseStats summarizes one domain's reuse behaviour.
type ReuseStats struct {
	// Accesses is the number of block references analyzed.
	Accesses uint64
	// ColdMisses is the number of first-ever block touches.
	ColdMisses uint64
	// DistinctBlocks is the footprint in blocks.
	DistinctBlocks uint64
	// Hist[i] counts re-accesses whose stack distance d satisfies
	// d+1 in [2^i, 2^(i+1)) — i.e. bin 0 is an immediate re-access.
	Hist [33]uint64
}

// CDF returns the fraction of non-cold accesses with stack distance
// below 2^exp — the hit rate of an exp-sized (in log2 blocks) fully
// associative LRU cache, excluding compulsory misses.
func (r ReuseStats) CDF(exp int) float64 {
	reuses := r.Accesses - r.ColdMisses
	if reuses == 0 {
		return 0
	}
	var c uint64
	for i := 0; i < exp && i < len(r.Hist); i++ {
		c += r.Hist[i]
	}
	return float64(c) / float64(reuses)
}

// HitRateAt estimates the hit rate (including compulsory misses as
// misses) of a fully associative LRU cache holding capacityBlocks.
func (r ReuseStats) HitRateAt(capacityBlocks uint64) float64 {
	if r.Accesses == 0 {
		return 0
	}
	exp := 0
	for (uint64(1) << uint(exp)) < capacityBlocks {
		exp++
	}
	reuses := r.Accesses - r.ColdMisses
	return r.CDF(exp) * float64(reuses) / float64(r.Accesses)
}

// reuseTree is an order-statistics treap over last-access timestamps:
// it supports "how many distinct blocks were touched more recently
// than t" in O(log n).
type reuseTree struct {
	nodes []reuseNode
	root  int32
	rng   uint64
}

type reuseNode struct {
	key         uint64 // last-access timestamp
	prio        uint64
	left, right int32
	size        int32
}

func newReuseTree() *reuseTree {
	return &reuseTree{root: -1, rng: 0x9e3779b97f4a7c15}
}

func (t *reuseTree) nextPrio() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545f4914f6cdd1d
}

func (t *reuseTree) size(n int32) int32 {
	if n < 0 {
		return 0
	}
	return t.nodes[n].size
}

func (t *reuseTree) update(n int32) {
	t.nodes[n].size = 1 + t.size(t.nodes[n].left) + t.size(t.nodes[n].right)
}

// split partitions by key: left subtree keys < key, right >= key.
func (t *reuseTree) split(n int32, key uint64) (int32, int32) {
	if n < 0 {
		return -1, -1
	}
	if t.nodes[n].key < key {
		l, r := t.split(t.nodes[n].right, key)
		t.nodes[n].right = l
		t.update(n)
		return n, r
	}
	l, r := t.split(t.nodes[n].left, key)
	t.nodes[n].left = r
	t.update(n)
	return l, n
}

func (t *reuseTree) merge(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if t.nodes[a].prio > t.nodes[b].prio {
		t.nodes[a].right = t.merge(t.nodes[a].right, b)
		t.update(a)
		return a
	}
	t.nodes[b].left = t.merge(a, t.nodes[b].left)
	t.update(b)
	return b
}

// insert adds a timestamp (all timestamps are unique and increasing,
// so the new node always lands at the right edge).
func (t *reuseTree) insert(key uint64) {
	t.nodes = append(t.nodes, reuseNode{key: key, prio: t.nextPrio(), left: -1, right: -1, size: 1})
	n := int32(len(t.nodes) - 1)
	l, r := t.split(t.root, key)
	t.root = t.merge(t.merge(l, n), r)
}

// remove deletes the node with exactly this timestamp.
func (t *reuseTree) remove(key uint64) {
	l, r := t.split(t.root, key)
	_, r2 := t.split(r, key+1)
	t.root = t.merge(l, r2)
}

// countGreater reports how many stored timestamps exceed key.
func (t *reuseTree) countGreater(key uint64) uint64 {
	l, r := t.split(t.root, key+1)
	n := uint64(t.size(r))
	t.root = t.merge(l, r)
	return n
}

// ReuseAnalyzer computes per-domain block-granularity reuse-distance
// distributions in a single streaming pass (O(log n) per access).
type ReuseAnalyzer struct {
	blockBytes uint64
	last       [NumDomains]map[uint64]uint64
	tree       [NumDomains]*reuseTree
	stats      [NumDomains]ReuseStats
	clock      uint64
}

// NewReuseAnalyzer builds an analyzer at the given block granularity
// (must be a power of two).
func NewReuseAnalyzer(blockBytes int) *ReuseAnalyzer {
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic("trace: reuse analyzer needs power-of-two blocks")
	}
	ra := &ReuseAnalyzer{blockBytes: uint64(blockBytes)}
	for d := 0; d < NumDomains; d++ {
		ra.last[d] = make(map[uint64]uint64)
		ra.tree[d] = newReuseTree()
	}
	return ra
}

// Observe processes one access.
func (ra *ReuseAnalyzer) Observe(a Access) {
	d := a.Domain
	if !d.Valid() {
		return
	}
	ra.clock++
	block := a.Addr / ra.blockBytes
	st := &ra.stats[d]
	st.Accesses++
	if prev, seen := ra.last[d][block]; seen {
		dist := ra.tree[d].countGreater(prev)
		i := 0
		for (uint64(1)<<uint(i+1)) <= dist+1 && i < len(st.Hist)-1 {
			i++
		}
		st.Hist[i]++
		ra.tree[d].remove(prev)
	} else {
		st.ColdMisses++
		st.DistinctBlocks++
	}
	ra.last[d][block] = ra.clock
	ra.tree[d].insert(ra.clock)
}

// Stats returns the accumulated distribution for one domain.
func (ra *ReuseAnalyzer) Stats(d Domain) ReuseStats { return ra.stats[d] }

// Analyze drains a source through a fresh analyzer.
func Analyze(src Source, blockBytes int) *ReuseAnalyzer {
	ra := NewReuseAnalyzer(blockBytes)
	for {
		a, ok := src.Next()
		if !ok {
			return ra
		}
		ra.Observe(a)
	}
}
