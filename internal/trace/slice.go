package trace

// SliceCursor is a replay position over an already-materialized record
// slice — the "hot tier" counterpart of Cursor. Where Cursor decodes
// the packed streams record by record, SliceCursor replays records that
// already exist in memory, and its Batch method exposes them as
// zero-copy sub-slices: cpu.Run recognizes the concrete type and steps
// the machine directly over the shared records without staging them
// through a buffer, so a hot replay pays no decode and no copy at all.
//
// The underlying slice is shared and must be treated as immutable; any
// number of SliceCursors may replay it concurrently.
type SliceCursor struct {
	recs []Access
	i    int
}

// NewSliceCursor returns a cursor positioned at the first record.
func NewSliceCursor(recs []Access) SliceCursor { return SliceCursor{recs: recs} }

// Len reports the total number of records in the underlying trace.
func (c *SliceCursor) Len() int { return len(c.recs) }

// Remaining reports how many records are left to replay.
func (c *SliceCursor) Remaining() int { return len(c.recs) - c.i }

// Reset rewinds the cursor to the beginning of the trace.
func (c *SliceCursor) Reset() { c.i = 0 }

// Batch returns up to max records as a sub-slice of the underlying
// trace, advancing the cursor past them; nil at end of trace. Callers
// must not modify the returned records.
func (c *SliceCursor) Batch(max int) []Access {
	n := len(c.recs) - c.i
	if n <= 0 || max <= 0 {
		return nil
	}
	if n > max {
		n = max
	}
	b := c.recs[c.i : c.i+n : c.i+n]
	c.i += n
	return b
}

// Next returns the next record, implementing Source.
func (c *SliceCursor) Next() (Access, bool) {
	if c.i >= len(c.recs) {
		return Access{}, false
	}
	a := c.recs[c.i]
	c.i++
	return a, true
}
