// Package trace defines the memory-access trace format that drives the
// simulator. A trace is a sequence of Access records; each record
// describes one memory operation of the traced program together with
// the privilege domain (user or OS kernel) it executed in — the
// attribute the paper's partitioned cache designs key on — and the
// number of non-memory instructions executed since the previous record,
// which the timing model uses to reconstruct instruction counts.
package trace

import (
	"fmt"
)

// Domain identifies the privilege level an access executed in. The
// paper's central observation is that interactive mobile workloads
// issue >40% of their L2 accesses from kernel code, so every access is
// tagged at the source.
type Domain uint8

const (
	// User marks accesses issued by application (unprivileged) code.
	User Domain = iota
	// Kernel marks accesses issued by OS kernel (privileged) code.
	Kernel
	// NumDomains is the number of distinct domains.
	NumDomains = 2
)

// String returns "user" or "kernel".
func (d Domain) String() string {
	switch d {
	case User:
		return "user"
	case Kernel:
		return "kernel"
	default:
		return fmt.Sprintf("domain(%d)", uint8(d))
	}
}

// Other returns the opposite domain.
func (d Domain) Other() Domain {
	if d == User {
		return Kernel
	}
	return User
}

// Valid reports whether d is one of the defined domains.
func (d Domain) Valid() bool { return d == User || d == Kernel }

// Op is the kind of memory operation an Access performs.
type Op uint8

const (
	// Load is a data read.
	Load Op = iota
	// Store is a data write.
	Store
	// Ifetch is an instruction fetch.
	Ifetch
	// NumOps is the number of distinct operation kinds.
	NumOps = 3
)

// String returns a short lower-case name for the op.
func (o Op) String() string {
	switch o {
	case Load:
		return "load"
	case Store:
		return "store"
	case Ifetch:
		return "ifetch"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Valid reports whether o is one of the defined ops.
func (o Op) Valid() bool { return o <= Ifetch }

// IsWrite reports whether the op modifies memory.
func (o Op) IsWrite() bool { return o == Store }

// Access is one record of a trace: a single memory operation.
type Access struct {
	// Addr is the virtual byte address accessed.
	Addr uint64
	// PC is the program counter of the instruction issuing the access.
	PC uint64
	// Gap is the number of instructions executed since the previous
	// Access that did not themselves access memory. The timing model
	// charges Gap+1 instructions per record.
	Gap uint32
	// Op is the operation kind.
	Op Op
	// Domain is the privilege domain the access executed in.
	Domain Domain
}

// Validate reports an error when the record holds out-of-range enum
// values (for instance after decoding a corrupt trace).
func (a Access) Validate() error {
	if !a.Op.Valid() {
		return fmt.Errorf("trace: invalid op %d", a.Op)
	}
	if !a.Domain.Valid() {
		return fmt.Errorf("trace: invalid domain %d", a.Domain)
	}
	return nil
}

// Instructions is the number of instructions this record accounts for:
// the access itself plus the non-memory gap preceding it.
func (a Access) Instructions() uint64 { return uint64(a.Gap) + 1 }

// Source produces Access records one at a time. Next reports ok=false
// when the stream is exhausted. Implementations are not required to be
// restartable.
type Source interface {
	Next() (Access, bool)
}

// SliceSource adapts a materialized []Access to the Source interface.
type SliceSource struct {
	recs []Access
	pos  int
}

// NewSliceSource wraps recs; the slice is not copied.
func NewSliceSource(recs []Access) *SliceSource {
	return &SliceSource{recs: recs}
}

// Next returns the next record.
func (s *SliceSource) Next() (Access, bool) {
	if s.pos >= len(s.recs) {
		return Access{}, false
	}
	a := s.recs[s.pos]
	s.pos++
	return a, true
}

// Reset rewinds the source to the beginning.
func (s *SliceSource) Reset() { s.pos = 0 }

// Len reports the total number of records.
func (s *SliceSource) Len() int { return len(s.recs) }

// Collect drains a source into a slice, stopping after max records
// (max <= 0 means no limit).
func Collect(src Source, max int) []Access {
	var out []Access
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		a, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// FilterSource passes through only records matching a predicate.
type FilterSource struct {
	src  Source
	keep func(Access) bool
}

// NewFilterSource wraps src, yielding only records for which keep
// returns true.
func NewFilterSource(src Source, keep func(Access) bool) *FilterSource {
	return &FilterSource{src: src, keep: keep}
}

// Next returns the next matching record.
func (f *FilterSource) Next() (Access, bool) {
	for {
		a, ok := f.src.Next()
		if !ok {
			return Access{}, false
		}
		if f.keep(a) {
			return a, true
		}
	}
}

// DomainOnly returns a source containing only accesses from domain d.
func DomainOnly(src Source, d Domain) *FilterSource {
	return NewFilterSource(src, func(a Access) bool { return a.Domain == d })
}

// LimitSource truncates a source after n records.
type LimitSource struct {
	src  Source
	left int
}

// NewLimitSource wraps src, yielding at most n records.
func NewLimitSource(src Source, n int) *LimitSource {
	return &LimitSource{src: src, left: n}
}

// Next returns the next record while the limit has not been reached.
func (l *LimitSource) Next() (Access, bool) {
	if l.left <= 0 {
		return Access{}, false
	}
	a, ok := l.src.Next()
	if ok {
		l.left--
	}
	return a, ok
}

// Summary aggregates whole-trace statistics; Summarize fills one in a
// single pass.
type Summary struct {
	Records      uint64
	Instructions uint64
	ByDomain     [NumDomains]uint64
	ByOp         [NumOps]uint64
	Stores       uint64
	MinAddr      uint64
	MaxAddr      uint64
}

// KernelShare is the fraction of records issued from kernel code.
func (s Summary) KernelShare() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.ByDomain[Kernel]) / float64(s.Records)
}

// WriteShare is the fraction of records that are stores.
func (s Summary) WriteShare() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Stores) / float64(s.Records)
}

// Summarize drains src and aggregates its statistics.
func Summarize(src Source) Summary {
	var s Summary
	first := true
	for {
		a, ok := src.Next()
		if !ok {
			return s
		}
		s.Records++
		s.Instructions += a.Instructions()
		if a.Domain.Valid() {
			s.ByDomain[a.Domain]++
		}
		if a.Op.Valid() {
			s.ByOp[a.Op]++
		}
		if a.Op.IsWrite() {
			s.Stores++
		}
		if first || a.Addr < s.MinAddr {
			s.MinAddr = a.Addr
		}
		if first || a.Addr > s.MaxAddr {
			s.MaxAddr = a.Addr
		}
		first = false
	}
}
