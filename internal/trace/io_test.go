package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	recs := sampleTrace()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, a := range recs {
		if err := w.Write(a); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("writer count = %d, want %d", w.Count(), len(recs))
	}

	r := NewReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := make([]Access, int(n))
		for i := range recs {
			recs[i] = Access{
				Addr:   rng.Uint64(),
				PC:     rng.Uint64(),
				Gap:    rng.Uint32(),
				Op:     Op(rng.Intn(int(NumOps))),
				Domain: Domain(rng.Intn(int(NumDomains))),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, a := range recs {
			if err := w.Write(a); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		got := Collect(r, 0)
		if r.Err() != nil {
			return false
		}
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatalf("flush empty: %v", err)
	}
	r := NewReader(&buf)
	if got := Collect(r, 0); len(got) != 0 {
		t.Fatalf("empty trace yielded %d records", len(got))
	}
	if r.Err() != nil {
		t.Fatalf("empty trace error: %v", r.Err())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("NOPE0000rest-of-stream"))
	if _, ok := r.Next(); ok {
		t.Fatal("reader accepted bad magic")
	}
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", r.Err())
	}
}

func TestBinaryBadVersion(t *testing.T) {
	r := NewReader(strings.NewReader("MCTR\x7f\x00\x00\x00"))
	if _, ok := r.Next(); ok {
		t.Fatal("reader accepted bad version")
	}
	if !errors.Is(r.Err(), ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", r.Err())
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	recs := sampleTrace()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, a := range recs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	got := Collect(r, 0)
	if len(got) != len(recs)-1 {
		t.Fatalf("truncated trace yielded %d records, want %d", len(got), len(recs)-1)
	}
	if r.Err() == nil {
		t.Fatal("truncated record not reported as an error")
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Access{Op: Op(99)}); err == nil {
		t.Fatal("writer accepted invalid op")
	}
}

func TestTextRoundTrip(t *testing.T) {
	recs := sampleTrace()
	var buf bytes.Buffer
	n, err := WriteText(&buf, NewSliceSource(recs))
	if err != nil {
		t.Fatalf("write text: %v", err)
	}
	if n != uint64(len(recs)) {
		t.Fatalf("wrote %d records, want %d", n, len(recs))
	}
	r := NewTextReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("text reader error: %v", r.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("text round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestTextReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nuser load 0x10 0x20 3\n   \n# another\nkernel store 0x30 0x40 0\n"
	r := NewTextReader(strings.NewReader(in))
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatalf("error: %v", r.Err())
	}
	want := []Access{
		{Addr: 0x10, PC: 0x20, Gap: 3, Op: Load, Domain: User},
		{Addr: 0x30, PC: 0x40, Gap: 0, Op: Store, Domain: Kernel},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestParseTextLineErrors(t *testing.T) {
	bad := []string{
		"",
		"user load 0x10 0x20",             // too few fields
		"user load 0x10 0x20 3 extra",     // too many fields
		"daemon load 0x10 0x20 3",         // bad domain
		"user jump 0x10 0x20 3",           // bad op
		"user load zz 0x20 3",             // bad addr
		"user load 0x10 zz 3",             // bad pc
		"user load 0x10 0x20 -1",          // bad gap
		"user load 0x10 0x20 99999999999", // gap overflow
	}
	for _, line := range bad {
		if _, err := ParseTextLine(line); err == nil {
			t.Errorf("ParseTextLine(%q) succeeded, want error", line)
		}
	}
}

func TestTextReaderReportsLineNumber(t *testing.T) {
	in := "user load 0x10 0x20 3\nbogus line here oops x\n"
	r := NewTextReader(strings.NewReader(in))
	got := Collect(r, 0)
	if len(got) != 1 {
		t.Fatalf("records before error = %d, want 1", len(got))
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 mention", r.Err())
	}
}
