package jobs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
)

// testSpec is a small real sweep (cells simulate in milliseconds).
func testSpec(seeds ...uint64) Spec {
	if len(seeds) == 0 {
		seeds = []uint64{1, 2}
	}
	return Spec{
		Machines: []string{"baseline-sram", "sp-mr"},
		Apps:     []string{"browser"},
		Seeds:    seeds,
		Accesses: 2000,
	}
}

// referenceCSV renders the spec's uninterrupted output through a fresh
// engine — the bytes every daemon path must reproduce.
func referenceCSV(t *testing.T, spec Spec) []byte {
	t.Helper()
	p, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := engine.New(engine.Config{Workers: 2}).Execute(
		context.Background(), p, engine.ExecOptions{}, engine.NewCSV(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestManager(t *testing.T, opts Options) *Manager {
	t.Helper()
	if opts.Root == "" {
		opts.Root = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	opts.KeepGoing = true
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	select {
	case <-j.Finished():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID(), j.Status())
	}
	return j.Status()
}

// A submitted job runs to done and its final CSV is byte-identical to
// a direct engine execution of the same spec.
func TestSubmitRunsToDone(t *testing.T) {
	m := newTestManager(t, Options{})
	defer m.Shutdown(context.Background())
	spec := testSpec()
	want := referenceCSV(t, spec)

	j, err := m.Submit(spec, "client-1")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Completed != spec.Cells() || st.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", st.Completed, st.Failed, spec.Cells())
	}
	f, err := m.ResultCSV(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(want)+64)
	n, _ := f.Read(got)
	if !bytes.Equal(got[:n], want) {
		t.Fatalf("daemon CSV differs from direct execution:\n got: %q\nwant: %q", got[:n], want)
	}
}

// Streaming delivers one cell event per cell plus a terminal summary,
// to followers that subscribe before, during and after the run.
func TestStreamEvents(t *testing.T) {
	m := newTestManager(t, Options{})
	defer m.Shutdown(context.Background())
	spec := testSpec(1, 2, 3)
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}

	collect := func() []Event {
		var evs []Event
		if err := j.Stream(context.Background(), func(e Event) error {
			evs = append(evs, e)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	live := collect() // follows until terminal
	waitTerminal(t, j)
	replay := collect() // replays a finished job

	for name, evs := range map[string][]Event{"live": live, "replay": replay} {
		cells := 0
		for _, e := range evs {
			if e.Type == "cell" {
				cells++
			}
		}
		if cells != spec.Cells() {
			t.Fatalf("%s stream saw %d cell events, want %d", name, cells, spec.Cells())
		}
		last := evs[len(evs)-1]
		if last.Type != "done" || last.State != StateDone || last.Completed != spec.Cells() {
			t.Fatalf("%s stream terminal event = %+v", name, last)
		}
	}
}

// Admission bounds: queue overflow, per-client limits and the cell
// budget map to their sentinel errors.
func TestAdmissionBounds(t *testing.T) {
	m := newTestManager(t, Options{MaxJobs: 1, MaxClientJobs: 1, MaxCellsPerJob: 10})
	defer m.Shutdown(context.Background())

	if _, err := m.Submit(Spec{
		Machines: []string{"baseline-sram"}, Apps: []string{"browser"},
		Seeds: []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, Accesses: 2000,
	}, ""); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized spec: err = %v, want ErrTooLarge", err)
	}

	big, err := m.Submit(testSpec(1, 2, 3, 4, 5), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(testSpec(), "bob"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow: err = %v, want ErrOverloaded", err)
	}
	waitTerminal(t, big)

	// Per-client limit needs queue headroom: two slots, same client.
	m2 := newTestManager(t, Options{MaxJobs: 4, MaxClientJobs: 1})
	defer m2.Shutdown(context.Background())
	j1, err := m2.Submit(testSpec(1, 2, 3, 4, 5, 6), "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Submit(testSpec(), "alice"); !errors.Is(err, ErrClientLimit) {
		t.Fatalf("client limit: err = %v, want ErrClientLimit", err)
	}
	if _, err := m2.Submit(testSpec(9), "bob"); err != nil {
		t.Fatalf("other client rejected: %v", err)
	}
	waitTerminal(t, j1)
}

// Cancelling a running job lands it in cancelled with no result.csv,
// while its journal keeps the completed prefix.
func TestCancel(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	defer m.Shutdown(context.Background())
	seeds := make([]uint64, 40)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := testSpec(seeds...)
	spec.Accesses = 50_000
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one cell land, then cancel.
	if err := j.Stream(context.Background(), func(e Event) error {
		if e.Type == "cell" {
			return errors.New("stop")
		}
		return nil
	}); err == nil {
		t.Fatal("stream ended before any cell completed")
	}
	if err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	if _, err := m.ResultCSV(j.ID()); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("ResultCSV of a cancelled job: err = %v, want ErrNotFinished", err)
	}
	entries, info, err := checkpoint.Read(filepath.Join(m.opts.Root, j.ID(), journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || info.DiscardedBytes != 0 {
		t.Fatalf("cancelled job journal: %d entries, %d discarded bytes; want >0 entries, clean tail",
			len(entries), info.DiscardedBytes)
	}
}

// Graceful shutdown: admission closes, in-flight cells drain within
// the deadline, the journal has no torn tail, and the job is parked
// draining (resumable).
func TestGracefulShutdownDrains(t *testing.T) {
	root := t.TempDir()
	m := newTestManager(t, Options{Root: root, Workers: 2})
	seeds := make([]uint64, 30)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	spec := testSpec(seeds...)
	spec.Accesses = 50_000
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for some progress so the drain actually has in-flight cells.
	if err := j.Stream(context.Background(), func(e Event) error {
		if e.Type == "cell" {
			return errors.New("stop")
		}
		return nil
	}); err == nil {
		t.Fatal("no progress before shutdown")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	start := time.Now()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("drain missed its deadline: %v", err)
	}
	if time.Since(start) > 25*time.Second {
		t.Fatalf("drain took %v", time.Since(start))
	}
	if _, err := m.Submit(testSpec(), ""); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit during drain: err = %v, want ErrDraining", err)
	}

	st := j.Status()
	if st.State != StateDraining {
		t.Fatalf("job state after shutdown = %s, want draining", st.State)
	}
	// The journal must pass recovery with zero discarded bytes: a
	// graceful drain never tears the tail.
	entries, info, err := checkpoint.Read(filepath.Join(root, j.ID(), journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if info.DiscardedBytes != 0 {
		t.Fatalf("graceful shutdown left %d torn bytes", info.DiscardedBytes)
	}
	if len(entries) == 0 {
		t.Fatal("no cells journaled before shutdown")
	}
	// And the persisted state is resumable.
	var ps persistentState
	if err := readJSON(faultfs.OS, filepath.Join(root, j.ID(), stateFile), &ps); err != nil {
		t.Fatal(err)
	}
	if ps.State != StateDraining {
		t.Fatalf("persisted state = %s, want draining", ps.State)
	}
}

// Fairness: a small job submitted while a large one is chewing through
// the shared slots completes long before the large one — round-robin,
// not FIFO starvation.
func TestSmallJobNotStarvedByLargeJob(t *testing.T) {
	m := newTestManager(t, Options{Workers: 2})
	defer m.Shutdown(context.Background())

	seeds := make([]uint64, 60)
	for i := range seeds {
		seeds[i] = uint64(i + 100)
	}
	bigSpec := Spec{Machines: []string{"baseline-sram"}, Apps: []string{"browser"},
		Seeds: seeds, Accesses: 50_000}
	big, err := m.Submit(bigSpec, "")
	if err != nil {
		t.Fatal(err)
	}
	// Let the big job occupy the slots first.
	if err := big.Stream(context.Background(), func(e Event) error {
		if e.Type == "cell" {
			return errors.New("progress")
		}
		return nil
	}); err == nil {
		t.Fatal("big job made no progress")
	}

	small, err := m.Submit(Spec{Machines: []string{"sp-mr"}, Apps: []string{"music"},
		Seeds: []uint64{1, 2}, Accesses: 2000}, "")
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, small)
	if st.State != StateDone {
		t.Fatalf("small job state = %s (%s)", st.State, st.Error)
	}
	bigSt := big.Status()
	if bigSt.State.Terminal() {
		t.Fatalf("big job already %s when the small one finished — fairness unprovable, shrink the small job or grow the big one", bigSt.State)
	}
	if bigSt.Completed >= len(seeds) {
		t.Fatalf("big job completed all %d cells before the small job finished", bigSt.Completed)
	}
	if err := m.Cancel(big.ID()); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, big)
}

// Stats reflect completed cells and the gate's occupancy.
func TestStatsCounters(t *testing.T) {
	m := newTestManager(t, Options{})
	defer m.Shutdown(context.Background())
	spec := testSpec()
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	st := m.Stats()
	if st.CellsDone != uint64(spec.Cells()) {
		t.Fatalf("CellsDone = %d, want %d", st.CellsDone, spec.Cells())
	}
	if st.ByState[StateDone] != 1 {
		t.Fatalf("ByState = %v, want one done job", st.ByState)
	}
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d after completion", st.InFlight)
	}
	if st.Slots != 2 {
		t.Fatalf("Slots = %d, want 2", st.Slots)
	}
}

// A bad spec is rejected before a job exists; nothing lands on disk.
func TestSubmitRejectsBadSpecs(t *testing.T) {
	root := t.TempDir()
	m := newTestManager(t, Options{Root: root})
	defer m.Shutdown(context.Background())
	bad := []Spec{
		{},
		{Machines: []string{"no-such-scheme.json"}, Apps: []string{"browser"}, Seeds: []uint64{1}, Accesses: 100},
		{Machines: []string{"baseline-sram"}, Apps: []string{"no-such-app"}, Seeds: []uint64{1}, Accesses: 100},
		{Machines: []string{"baseline-sram"}, Apps: []string{"browser"}, Seeds: []uint64{1}, Accesses: 100, Sample: "1/3"},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec, ""); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("rejected submissions left %d entries in the store", len(entries))
	}
}
