// Package jobs turns the execution pipeline (internal/engine) into a
// long-running, crash-resumable sweep service: clients submit sweep
// specs, get job IDs, stream per-cell results as they complete, query
// progress and cancel — while the manager keeps every job durable
// through the engine's checkpoint journal, schedules runnable jobs
// fairly over one shared worker-slot set, sheds load with bounded
// admission, and drains gracefully on shutdown.
//
// Lifecycle (the job FSM):
//
//	pending ─→ running ─→ done        (all cells finished; result.csv final)
//	              │  ├──→ failed      (execution error; journal kept)
//	              │  ├──→ cancelled   (client cancel; terminal)
//	              └──→ draining ─→ (process exit; resumed as running on restart)
//
// Durability: every completed cell is appended to the job's CRC-framed
// journal before it counts as done. A daemon killed at any point —
// SIGKILL included — rescans the store on restart and resumes every
// non-terminal job from its journal's longest valid prefix, so the
// final CSV is byte-identical to an uninterrupted run.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/runner"
)

// State is a job's FSM state.
type State string

const (
	// StatePending: accepted and durable, not yet executing.
	StatePending State = "pending"
	// StateRunning: cells are being scheduled and executed.
	StateRunning State = "running"
	// StateDraining: shutdown in progress; in-flight cells finishing,
	// nothing new dispatched. Resumed as running on restart.
	StateDraining State = "draining"
	// StateDone: every cell accounted for; result.csv is final.
	StateDone State = "done"
	// StateFailed: the execution aborted with an error.
	StateFailed State = "failed"
	// StateCancelled: the client cancelled the job.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrOverloaded: the bounded admission queue is full (HTTP 429).
	ErrOverloaded = errors.New("jobs: admission queue full")
	// ErrClientLimit: the client is at its concurrent-job bound (429).
	ErrClientLimit = errors.New("jobs: per-client concurrent job limit reached")
	// ErrTooLarge: the spec's grid exceeds the per-job cell budget (413).
	ErrTooLarge = errors.New("jobs: spec exceeds the per-job cell budget")
	// ErrDraining: the daemon is shutting down (503).
	ErrDraining = errors.New("jobs: daemon is draining")
	// ErrDegraded: the store is shedding admissions after persistent
	// I/O errors (disk full, failed fsync); running jobs keep draining
	// and a background probe reopens admission when writes succeed
	// again (503 + Retry-After).
	ErrDegraded = errors.New("jobs: store degraded by I/O errors; admission paused")
	// ErrNotFound: no such job (404).
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotFinished: the final CSV is not available yet (409).
	ErrNotFinished = errors.New("jobs: job has not finished")
)

// Options shapes a Manager. The zero value of each field selects the
// documented default.
type Options struct {
	// Root is the job store directory (required).
	Root string
	// Workers is the machine-wide worker-slot count shared by every
	// job; <= 0 uses GOMAXPROCS.
	Workers int
	// MaxJobs bounds the admission queue: the number of non-terminal
	// jobs the daemon holds at once; <= 0 selects 64.
	MaxJobs int
	// MaxClientJobs bounds one client's concurrent non-terminal jobs;
	// <= 0 selects 8.
	MaxClientJobs int
	// MaxCellsPerJob is the per-job cell budget; <= 0 selects 1<<20.
	MaxCellsPerJob int
	// Timeout/Retries are the per-cell runner knobs (see engine.Config).
	Timeout time.Duration
	Retries int
	// KeepGoing lets sibling cells of a failed cell complete (the
	// service default; a daemon aborting a whole job on one bad cell
	// would punish every multi-hour sweep for one flaky machine entry).
	KeepGoing bool
	// TraceBudgetBytes bounds the shared trace arena (see engine.Config).
	TraceBudgetBytes int64
	// Log receives recovery and degradation notes; nil discards them.
	Log io.Writer
	// FS is the filesystem every durable artifact goes through; nil
	// selects the real one. Fault-injection tests (and the
	// MCSERVED_FAULT hook) swap in a faultfs.FaultFS.
	FS faultfs.FS
	// ProbeInterval is how often a degraded manager retries a probe
	// write to the store before reopening admission; <= 0 selects
	// DefaultProbeInterval.
	ProbeInterval time.Duration
}

// Defaults for Options.
const (
	DefaultMaxJobs        = 64
	DefaultMaxClientJobs  = 8
	DefaultMaxCellsPerJob = 1 << 20
	DefaultProbeInterval  = 500 * time.Millisecond
)

// Event is one streamed job happening, rendered to clients as a JSONL
// line or an SSE data record.
type Event struct {
	// Type is "cell" (a completed cell), "failure" (a cell that
	// exhausted its attempts) or "done" (the terminal summary).
	Type string `json:"type"`
	// Index is the cell's plan position (cell/failure events; -1 when
	// unknown).
	Index   int    `json:"index,omitempty"`
	Machine string `json:"machine,omitempty"`
	App     string `json:"app,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Resumed bool   `json:"resumed,omitempty"`
	// Headline metrics of a completed cell (the CSV carries the full
	// schema; the stream carries what a dashboard plots live).
	IPC          float64 `json:"ipc,omitempty"`
	L2MissRate   float64 `json:"l2_missrate,omitempty"`
	L2EnergyJ    float64 `json:"l2_total_j,omitempty"`
	TotalEnergyJ float64 `json:"total_j,omitempty"`
	// Failure details.
	Error    string `json:"error,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Terminal summary ("done" events).
	State     State `json:"state,omitempty"`
	Total     int   `json:"total,omitempty"`
	Completed int   `json:"completed,omitempty"`
	Failed    int   `json:"failed,omitempty"`
}

// Status is a job's progress snapshot.
type Status struct {
	ID        string    `json:"id"`
	Client    string    `json:"client,omitempty"`
	State     State     `json:"state"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Resumed   uint64    `json:"resumed"`
	Created   time.Time `json:"created"`
	Error     string    `json:"error,omitempty"`
}

// Job is one submitted sweep.
type Job struct {
	id      string
	client  string
	created time.Time
	dir     string
	spec    Spec
	plan    engine.Plan
	m       *Manager

	cancel    context.CancelFunc
	cancelled atomic.Bool

	mu      sync.Mutex
	state   State
	err     string
	events  []Event
	notify  chan struct{}
	total   int
	done    int // successful cells
	failed  int
	resumed uint64
	// finished is closed when the job reaches a terminal state.
	finished chan struct{}
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Status snapshots the job's progress.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.id, Client: j.client, State: j.state,
		Total: j.total, Completed: j.done, Failed: j.failed,
		Resumed: j.resumed, Created: j.created, Error: j.err,
	}
}

// Finished is closed when the job reaches a terminal state.
func (j *Job) Finished() <-chan struct{} { return j.finished }

// appendEvent records one event and wakes every stream follower.
func (j *Job) appendEvent(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// setState transitions the FSM, persists the new state durably, and
// wakes followers. Terminal transitions close Finished.
func (j *Job) setState(s State, errMsg string) {
	j.mu.Lock()
	j.state = s
	j.err = errMsg
	ps := persistentState{
		State: s, Error: errMsg, Total: j.total,
		Completed: j.done, Failed: j.failed, Updated: time.Now().UTC(),
	}
	terminal := s.Terminal()
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
	if err := faultfs.WriteJSONAtomic(j.m.fsys, filepath.Join(j.dir, stateFile), ps); err != nil {
		j.m.warn(fmt.Sprintf("jobs: persisting state of %s: %v", j.id, err))
		j.m.noteIOError(err)
	}
	if terminal {
		close(j.finished)
	}
}

// Stream replays the job's events from the beginning and follows new
// ones until the job is terminal (a final "done" summary event is
// emitted), ctx ends, or fn returns an error. Safe for any number of
// concurrent followers.
func (j *Job) Stream(ctx context.Context, fn func(Event) error) error {
	cursor := 0
	for {
		j.mu.Lock()
		events := j.events[cursor:]
		cursor = len(j.events)
		terminal := j.state.Terminal()
		wait := j.notify
		j.mu.Unlock()
		for _, ev := range events {
			if err := fn(ev); err != nil {
				return err
			}
		}
		if terminal {
			st := j.Status()
			return fn(Event{Type: "done", State: st.State,
				Total: st.Total, Completed: st.Completed, Failed: st.Failed, Error: st.Error})
		}
		select {
		case <-wait:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// onResult is the engine's progress callback: counts, metrics and one
// "cell" event per completed cell (concurrent-safe; completion order).
func (j *Job) onResult(r engine.Result) {
	j.mu.Lock()
	j.done++
	if r.Resumed {
		j.resumed++
	}
	j.mu.Unlock()
	j.m.cellsDone.Add(1)
	if r.Resumed {
		j.m.cellsResumed.Add(1)
	}
	j.appendEvent(cellEvent(r))
}

// onFailure records exhausted cells. Cancellation casualties — cells
// lost to a shutdown or a client cancel, not to their own behavior —
// are not failures: the resumed run will complete them.
func (j *Job) onFailure(e *runner.RunError) {
	if errors.Is(e.Err, context.Canceled) {
		return
	}
	j.mu.Lock()
	j.failed++
	j.mu.Unlock()
	j.m.cellsFailed.Add(1)
	j.appendEvent(Event{
		Type: "failure", Index: -1,
		Machine: e.Cell.Machine, App: e.Cell.App, Seed: e.Cell.Seed,
		Error: e.Err.Error(), Attempts: e.Attempts,
	})
}

// cellEvent renders one successful cell for the stream.
func cellEvent(r engine.Result) Event {
	return Event{
		Type: "cell", Index: r.Index,
		Machine: r.Cell.Machine, App: r.Cell.App, Seed: r.Cell.Seed,
		Resumed:      r.Resumed,
		IPC:          r.Report.IPC(),
		L2MissRate:   r.Report.L2.MissRate(),
		L2EnergyJ:    r.Report.Energy.L2.Total(),
		TotalEnergyJ: r.Report.Energy.TotalJ(),
	}
}

// Stats is the manager-wide counter snapshot behind /metrics.
type Stats struct {
	Uptime        time.Duration
	CellsDone     uint64
	CellsFailed   uint64
	CellsResumed  uint64
	JobsRecovered uint64
	// IOErrors counts persistence-path I/O faults (ENOSPC, EIO, crash)
	// the manager has absorbed; Degraded reports whether admission is
	// currently paused by them; ResumeAfterFault counts executions that
	// recovered from a torn journal tail.
	IOErrors         uint64
	ResumeAfterFault uint64
	Degraded         bool
	// ActiveJobs counts non-terminal jobs; ByState the full census.
	ActiveJobs int
	ByState    map[State]int
	// InFlight/Waiting are the gate's current cell occupancy and queue
	// depth.
	InFlight int
	Waiting  int
	Slots    int
	Memo     engine.MemoStats
	Store    StoreStats
}

// StoreStats mirrors the trace arena counters (tracestore.Stats) so
// metrics callers need no tracestore import.
type StoreStats struct {
	Hits, Misses, Generated, Evictions, Demotions uint64
	BytesInUse                                    int64
	// Entries and the shard occupancy spread expose how evenly the
	// lock-striped arena is loaded (MaxShardEntries/MinShardEntries is
	// the skew /metrics graphs).
	Entries, Shards, MaxShardEntries, MinShardEntries int
}

// Manager owns the job store, the shared engine and the fair gate.
type Manager struct {
	opts Options
	eng  *engine.Engine
	gate *rrGate
	fsys faultfs.FS

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order
	active  int      // non-terminal jobs
	drained bool     // admission closed

	wg      sync.WaitGroup
	started time.Time

	cellsDone     atomic.Uint64
	cellsFailed   atomic.Uint64
	cellsResumed  atomic.Uint64
	jobsRecovered atomic.Uint64

	// Degraded mode: persistent I/O errors (ENOSPC, failed fsync,
	// simulated crash in tests) flip degraded and pause admission;
	// running jobs keep draining, and a background probe write reopens
	// admission when the store accepts durable writes again.
	ioErrors         atomic.Uint64
	resumeAfterFault atomic.Uint64
	degraded         atomic.Bool
	probeWG          sync.WaitGroup
	stop             chan struct{}
	stopOnce         sync.Once
}

// New opens (creating if needed) the job store at opts.Root and
// recovers it: terminal jobs are indexed for listing and CSV download,
// and every job that was pending, running or draining when the
// previous process died is resumed from its journal's valid prefix.
func New(opts Options) (*Manager, error) {
	if opts.Root == "" {
		return nil, fmt.Errorf("jobs: Options.Root is required")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = DefaultMaxJobs
	}
	if opts.MaxClientJobs <= 0 {
		opts.MaxClientJobs = DefaultMaxClientJobs
	}
	if opts.MaxCellsPerJob <= 0 {
		opts.MaxCellsPerJob = DefaultMaxCellsPerJob
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}
	if err := opts.FS.MkdirAll(opts.Root, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store root: %w", err)
	}
	m := &Manager{
		opts: opts,
		fsys: opts.FS,
		stop: make(chan struct{}),
		eng: engine.New(engine.Config{
			Workers:          opts.Workers,
			Timeout:          opts.Timeout,
			Retries:          opts.Retries,
			KeepGoing:        opts.KeepGoing,
			TraceBudgetBytes: opts.TraceBudgetBytes,
		}),
		gate:    newRRGate(opts.Workers),
		jobs:    map[string]*Job{},
		started: time.Now(),
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Manager) warn(msg string) {
	if m.opts.Log != nil {
		fmt.Fprintln(m.opts.Log, msg)
	}
}

// Engine exposes the shared engine (metrics, tests).
func (m *Manager) Engine() *engine.Engine { return m.eng }

// recover scans the store and restarts every non-terminal job. It
// holds m.mu throughout: the first resumed job's goroutine is already
// calling back into the manager while later jobs are still loading.
func (m *Manager) recover() error {
	recs, err := scanStore(m.fsys, m.opts.Root, m.warn)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range recs {
		j := &Job{
			id: r.meta.ID, client: r.meta.Client, created: r.meta.Created,
			dir: r.dir, spec: r.meta.Spec, m: m,
			notify: make(chan struct{}), finished: make(chan struct{}),
			state: r.state.State, err: r.state.Error,
			total: r.state.Total, done: r.state.Completed, failed: r.state.Failed,
		}
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		if j.state.Terminal() {
			close(j.finished)
			continue
		}
		// Non-terminal: resolve and resume. A spec that no longer
		// resolves (deleted config file) fails the job rather than the
		// daemon.
		plan, perr := r.meta.Spec.Plan()
		if perr != nil {
			j.total = r.meta.Spec.Cells()
			j.setState(StateFailed, fmt.Sprintf("resuming: %v", perr))
			continue
		}
		j.plan = plan
		j.total = len(plan.Cells)
		j.done, j.failed, j.resumed = 0, 0, 0 // recounted by the resumed execution
		m.active++
		m.jobsRecovered.Add(1)
		m.warn(fmt.Sprintf("jobs: resuming %s (%d cells)", j.id, j.total))
		m.startLocked(j)
	}
	return nil
}

// Submit admits one job: validates and resolves the spec, enforces the
// admission bounds, makes the job durable, and starts executing it.
func (m *Manager) Submit(spec Spec, client string) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n := spec.Cells(); n > m.opts.MaxCellsPerJob {
		return nil, fmt.Errorf("%w: %d cells > budget %d", ErrTooLarge, n, m.opts.MaxCellsPerJob)
	}
	plan, err := spec.Plan()
	if err != nil {
		return nil, err
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if m.drained {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	if m.degraded.Load() {
		// A store that cannot make submissions durable must not accept
		// them: shedding here is what keeps "admitted" meaning
		// "crash-safe". Running jobs keep draining on whatever storage
		// still works; the probe reopens admission on recovery.
		m.mu.Unlock()
		return nil, ErrDegraded
	}
	if m.active >= m.opts.MaxJobs {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d jobs in flight)", ErrOverloaded, m.opts.MaxJobs)
	}
	if client != "" {
		n := 0
		for _, other := range m.jobs {
			if other.client == client && !other.Status().State.Terminal() {
				n++
			}
		}
		if n >= m.opts.MaxClientJobs {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w (%d)", ErrClientLimit, m.opts.MaxClientJobs)
		}
	}
	// Reserve the admission slot before the (unlocked) disk writes.
	m.active++
	m.mu.Unlock()

	j := &Job{
		id: id, client: client, created: time.Now().UTC(),
		dir: filepath.Join(m.opts.Root, id), spec: spec, plan: plan, m: m,
		state: StatePending, total: len(plan.Cells),
		notify: make(chan struct{}), finished: make(chan struct{}),
	}
	// Plain assignment, not `if err := ...`: a shadowed err here once
	// swallowed meta/state write failures and admitted jobs that were
	// never made durable.
	err = m.fsys.MkdirAll(j.dir, 0o755)
	if err == nil {
		err = faultfs.WriteJSONAtomic(m.fsys, filepath.Join(j.dir, metaFile), meta{
			ID: id, Client: client, Created: j.created, Spec: spec,
		})
		if err == nil {
			err = faultfs.WriteJSONAtomic(m.fsys, filepath.Join(j.dir, stateFile), persistentState{
				State: StatePending, Total: j.total, Updated: j.created,
			})
		}
	} else {
		err = fmt.Errorf("jobs: creating job dir: %w", err)
	}
	if err != nil {
		m.fsys.RemoveAll(j.dir)
		m.noteIOError(err)
		m.mu.Lock()
		m.active--
		m.mu.Unlock()
		return nil, err
	}

	m.mu.Lock()
	if m.drained {
		// Shutdown won the race: refuse rather than start a job the
		// drain will never schedule.
		m.active--
		m.mu.Unlock()
		m.fsys.RemoveAll(j.dir)
		return nil, ErrDraining
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.startLocked(j)
	m.mu.Unlock()
	return j, nil
}

// startLocked launches the job's execution goroutine. Caller holds
// m.mu (or is in single-threaded recovery).
func (m *Manager) startLocked(j *Job) {
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.runJob(ctx, j)
	}()
}

// runJob drives one job through the engine and lands it in a terminal
// state — or parks it as draining for the next process to resume. The
// result CSV accumulates in memory and lands atomically (write temp,
// fsync, rename, fsync dir) only when the execution completed: the
// result.csv path either holds a complete result or does not exist.
func (m *Manager) runJob(ctx context.Context, j *Job) {
	j.setState(StateRunning, "")

	var buf bytes.Buffer
	sum, execErr := m.eng.Execute(ctx, j.plan, engine.ExecOptions{
		CheckpointPath: filepath.Join(j.dir, journalFile),
		Resume:         true,
		FailuresPath:   filepath.Join(j.dir, failuresFile),
		OnResult:       j.onResult,
		OnFailure:      j.onFailure,
		Gate:           m.gate.forJob(j.id),
		Log:            m.opts.Log,
		FS:             m.fsys,
	}, engine.NewCSV(&buf))
	if sum.CheckpointDiscarded > 0 {
		// This execution recovered from a torn journal tail — the
		// signature of a crash or I/O fault in a previous run.
		m.resumeAfterFault.Add(1)
	}

	switch {
	case execErr == nil:
		resultPath := filepath.Join(j.dir, resultFile)
		if err := faultfs.WriteFileAtomic(m.fsys, resultPath, func(w io.Writer) error {
			_, werr := w.Write(buf.Bytes())
			return werr
		}); err != nil {
			// The write may have failed after the rename landed (the
			// parent-dir fsync): scrub the file so a failed job never
			// carries a result.csv of doubtful durability.
			m.fsys.Remove(resultPath)
			m.noteIOError(err)
			j.setState(StateFailed, fmt.Sprintf("finalizing result: %v", err))
			break
		}
		j.setState(StateDone, "")
	case errors.Is(execErr, context.Canceled):
		if j.cancelled.Load() {
			j.setState(StateCancelled, "cancelled by client")
		} else {
			// Shutdown drain: park resumable. The journal holds every
			// completed cell; the next process picks it up.
			j.setState(StateDraining, "")
		}
	default:
		m.noteIOError(execErr)
		j.setState(StateFailed, execErr.Error())
	}
	m.finish(j)
}

// noteIOError inspects an error from the persistence path and, when it
// is an I/O fault (ENOSPC, EIO, simulated crash), counts it and flips
// the manager into degraded mode: admission pauses with ErrDegraded
// while running jobs keep draining, and a probe goroutine reopens
// admission once the store accepts durable writes again.
func (m *Manager) noteIOError(err error) {
	if err == nil || !faultfs.IsIOFault(err) {
		return
	}
	m.ioErrors.Add(1)
	if m.degraded.CompareAndSwap(false, true) {
		m.warn(fmt.Sprintf("jobs: store degraded (%v); pausing admission, probing every %s",
			err, m.opts.ProbeInterval))
		m.probeWG.Add(1)
		go m.probeLoop()
	}
}

// probeLoop retries a durable probe write until the store recovers,
// then clears degraded mode. One loop runs per degraded episode.
func (m *Manager) probeLoop() {
	defer m.probeWG.Done()
	ticker := time.NewTicker(m.opts.ProbeInterval)
	defer ticker.Stop()
	probe := filepath.Join(m.opts.Root, ".probe")
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		err := faultfs.WriteFileAtomic(m.fsys, probe, func(w io.Writer) error {
			_, werr := io.WriteString(w, "mcserved store probe\n")
			return werr
		})
		if err != nil {
			continue
		}
		m.fsys.Remove(probe)
		m.degraded.Store(false)
		m.warn("jobs: store recovered; admission reopened")
		return
	}
}

// Degraded reports whether admission is paused by I/O faults.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// finish releases the job's admission slot.
func (m *Manager) finish(j *Job) {
	m.mu.Lock()
	m.active--
	m.mu.Unlock()
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// List snapshots every job's status in submission order.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel stops a job. In-flight cells are abandoned; completed cells
// stay journaled. Cancelling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	if j.Status().State.Terminal() {
		return nil
	}
	j.cancelled.Store(true)
	if j.cancel != nil {
		j.cancel()
	}
	return nil
}

// ResultCSV opens a finished job's final CSV.
func (m *Manager) ResultCSV(id string) (*os.File, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	if j.Status().State != StateDone {
		return nil, ErrNotFinished
	}
	return os.Open(filepath.Join(j.dir, resultFile))
}

// Draining reports whether admission is closed.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drained
}

// Shutdown drains the daemon: admission closes immediately, no new
// cells are dispatched, in-flight cells get until ctx's deadline to
// finish, then every remaining execution is cancelled and awaited.
// Journals and manifests are fsynced as the executions unwind, so
// whatever the deadline cut off is resumable on restart. The returned
// error is ctx's when the drain deadline expired (in-flight work was
// abandoned), nil for a clean drain.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.drained = true
	m.mu.Unlock()

	m.gate.drain()
	drainErr := m.gate.waitIdle(ctx)

	// Unblock every execution — workers parked in Acquire, feed loops —
	// whether or not the drain completed.
	m.mu.Lock()
	for _, j := range m.jobs {
		if j.cancel != nil {
			j.cancel()
		}
	}
	m.mu.Unlock()
	m.wg.Wait()
	m.stopOnce.Do(func() { close(m.stop) })
	m.probeWG.Wait()
	return drainErr
}

// Stats snapshots the manager counters for /metrics.
func (m *Manager) Stats() Stats {
	inflight, waiting := m.gate.depth()
	st := Stats{
		Uptime:        time.Since(m.started),
		CellsDone:     m.cellsDone.Load(),
		CellsFailed:   m.cellsFailed.Load(),
		CellsResumed:  m.cellsResumed.Load(),
		JobsRecovered: m.jobsRecovered.Load(),

		IOErrors:         m.ioErrors.Load(),
		ResumeAfterFault: m.resumeAfterFault.Load(),
		Degraded:         m.degraded.Load(),

		InFlight: inflight,
		Waiting:  waiting,
		Slots:    m.gate.total,
		Memo:     m.eng.MemoStats(),
		ByState:  map[State]int{},
	}
	ts := m.eng.Store().Stats()
	st.Store = StoreStats{
		Hits: ts.Hits, Misses: ts.Misses, Generated: ts.Generated,
		Evictions: ts.Evictions, Demotions: ts.Demotions, BytesInUse: ts.BytesInUse,
		Entries: ts.Entries, Shards: ts.Shards,
		MaxShardEntries: ts.MaxShardEntries, MinShardEntries: ts.MinShardEntries,
	}
	for _, s := range m.List() {
		st.ByState[s.State]++
		if !s.State.Terminal() {
			st.ActiveJobs++
		}
	}
	return st
}

// FailureTail returns the last n failure events of a job, newest last
// — the quick triage view /jobs/{id} serves.
func (j *Job) FailureTail(n int) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	var tail []Event
	for i := len(j.events) - 1; i >= 0 && len(tail) < n; i-- {
		if j.events[i].Type == "failure" {
			tail = append(tail, j.events[i])
		}
	}
	// Reverse to oldest-first.
	for l, r := 0, len(tail)-1; l < r; l, r = l+1, r-1 {
		tail[l], tail[r] = tail[r], tail[l]
	}
	return tail
}
