package jobs

import (
	"encoding/json"
	"fmt"
	"io"

	"mobilecache/internal/engine"
	"mobilecache/internal/sample"
	"mobilecache/internal/workload"
)

// Spec is the sweep a client submits: the same grid format
// cmd/mcsweep parses (machines x apps x seeds at a run length), plus
// the optional set-sampling spec. Machine entries name standard
// schemes or point at config JSON files readable by the daemon.
type Spec struct {
	Machines []string `json:"machines"`
	Apps     []string `json:"apps"`
	Seeds    []uint64 `json:"seeds"`
	Accesses int      `json:"accesses"`
	Warmup   int      `json:"warmup,omitempty"`
	// Sample, when non-empty, runs every cell set-sampled; the format
	// is internal/sample's ("1/8", "hash:1/8").
	Sample string `json:"sample,omitempty"`
}

// Validate reports structural spec errors without resolving names.
func (s Spec) Validate() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("jobs: spec needs machines")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("jobs: spec needs apps")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("jobs: spec needs seeds")
	}
	if s.Accesses <= 0 {
		return fmt.Errorf("jobs: accesses must be positive")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("jobs: negative warmup")
	}
	if s.Sample != "" {
		if _, err := sample.Parse(s.Sample); err != nil {
			return fmt.Errorf("jobs: sample: %w", err)
		}
	}
	return nil
}

// Cells is the grid size the spec expands to — the number the per-job
// cell budget is enforced against, computable before any resolution.
func (s Spec) Cells() int {
	return len(s.Machines) * len(s.Apps) * len(s.Seeds)
}

// Plan resolves the spec into an engine plan. Resolution failures
// (unknown scheme, unreadable config file, unknown app) are submission
// errors: the job is rejected before it exists.
func (s Spec) Plan() (engine.Plan, error) {
	if err := s.Validate(); err != nil {
		return engine.Plan{}, err
	}
	machines := make([]engine.MachineSpec, 0, len(s.Machines))
	for _, entry := range s.Machines {
		cfg, err := engine.ResolveMachine(entry)
		if err != nil {
			return engine.Plan{}, err
		}
		machines = append(machines, engine.MachineSpec{Label: entry, Config: cfg})
	}
	apps := make([]workload.Profile, 0, len(s.Apps))
	for _, name := range s.Apps {
		prof, err := workload.ProfileByName(name)
		if err != nil {
			return engine.Plan{}, err
		}
		apps = append(apps, prof)
	}
	p := engine.Grid(machines, apps, s.Seeds, s.Accesses, s.Warmup)
	if s.Sample != "" {
		spec, err := sample.Parse(s.Sample)
		if err != nil {
			return engine.Plan{}, err
		}
		p.Sample = spec
	}
	return p, nil
}

// DecodeSpec strictly decodes one spec from r: unknown fields and
// trailing data are submission errors, exactly as mcsweep treats its
// spec files — a daemon must not run a different sweep than the client
// thinks it posted.
func DecodeSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jobs: decoding spec: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("jobs: trailing data after the spec object (next token %v, err %v)", tok, err)
	}
	return s, s.Validate()
}
