package jobs

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"mobilecache/internal/faultfs"
)

// Job directory layout, one directory per job under the store root:
//
//	<root>/<id>/job.json      — immutable submission record (spec, client)
//	<root>/<id>/state.json    — current FSM state, atomically rewritten
//	<root>/<id>/cells.ckpt    — crash-safe checkpoint journal of cells
//	<root>/<id>/failures.json — failure manifest (incremental, finalized)
//	<root>/<id>/result.csv    — final CSV, atomic rename on completion
//
// The journal and manifest are the existing internal/checkpoint and
// internal/runner formats: resume after a crash is exactly the engine's
// resume path, per job. Every atomic rewrite goes through
// faultfs.WriteJSONAtomic, which also fsyncs the parent directory so
// the rename itself survives a power loss.
const (
	metaFile     = "job.json"
	stateFile    = "state.json"
	journalFile  = "cells.ckpt"
	failuresFile = "failures.json"
	resultFile   = "result.csv"
)

// meta is the immutable half of a job's on-disk record.
type meta struct {
	ID      string    `json:"id"`
	Client  string    `json:"client,omitempty"`
	Created time.Time `json:"created"`
	Spec    Spec      `json:"spec"`
}

// persistentState is the mutable half, rewritten atomically on every
// FSM transition. Counts are a convenience snapshot for listings after
// a restart; the journal is the source of truth for resume.
type persistentState struct {
	State     State     `json:"state"`
	Error     string    `json:"error,omitempty"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Updated   time.Time `json:"updated"`
}

// newJobID returns a fresh 96-bit random ID.
func newJobID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func readJSON(fsys faultfs.FS, path string, v any) error {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// recovered is one job found on disk by scanStore.
type recovered struct {
	dir   string
	meta  meta
	state persistentState
}

// scanStore reads every job directory under root, oldest submission
// first. Directories missing a readable meta or state record are
// skipped with a note through warn — a half-created job from a crash
// during submission is not worth failing the whole daemon for.
func scanStore(fsys faultfs.FS, root string, warn func(string)) ([]recovered, error) {
	entries, err := fsys.ReadDir(root)
	if err != nil {
		return nil, err
	}
	var out []recovered
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		var r recovered
		r.dir = dir
		if err := readJSON(fsys, filepath.Join(dir, metaFile), &r.meta); err != nil {
			warn(fmt.Sprintf("jobs: skipping %s: unreadable %s: %v", e.Name(), metaFile, err))
			continue
		}
		if err := readJSON(fsys, filepath.Join(dir, stateFile), &r.state); err != nil {
			warn(fmt.Sprintf("jobs: skipping %s: unreadable %s: %v", e.Name(), stateFile, err))
			continue
		}
		if r.meta.ID != e.Name() {
			warn(fmt.Sprintf("jobs: skipping %s: directory/id mismatch (%s)", e.Name(), r.meta.ID))
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].meta.Created.Equal(out[j].meta.Created) {
			return out[i].meta.Created.Before(out[j].meta.Created)
		}
		return out[i].meta.ID < out[j].meta.ID
	})
	return out, nil
}
