package jobs

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mobilecache/internal/faultfs"
)

// switchableFault is an injector with an on/off switch: while on,
// every durable write under the store fails with ENOSPC — a disk that
// filled up and later recovered.
type switchableFault struct{ on atomic.Bool }

func (s *switchableFault) Fault(op faultfs.Op) *faultfs.Fault {
	if !s.on.Load() {
		return nil
	}
	switch op.Kind {
	case faultfs.OpWrite, faultfs.OpSync, faultfs.OpCreate, faultfs.OpDirSync:
		return &faultfs.Fault{Err: syscall.ENOSPC}
	}
	return nil
}

// TestDegradedModeShedsAndRecovers drives the manager through a full
// degraded episode: a healthy job, then a full disk that fails a
// submission and flips degraded (later submissions shed immediately
// with ErrDegraded), then recovery — the probe write reopens admission
// and the next job runs to done.
func TestDegradedModeShedsAndRecovers(t *testing.T) {
	fault := &switchableFault{}
	m := newTestManager(t, Options{
		FS:            faultfs.New(fault),
		ProbeInterval: 10 * time.Millisecond,
	})
	defer m.Shutdown(context.Background())

	// Healthy: a job completes.
	j, err := m.Submit(testSpec(1), "c")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("healthy job ended %s (%s)", st.State, st.Error)
	}

	// Disk fills: the submission's durable write fails and the manager
	// degrades.
	fault.on.Store(true)
	if _, err := m.Submit(testSpec(2), "c"); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("submit on full disk: %v, want ENOSPC", err)
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after ENOSPC on the persistence path")
	}
	if _, err := m.Submit(testSpec(3), "c"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("submit while degraded: %v, want ErrDegraded", err)
	}
	st := m.Stats()
	if st.IOErrors == 0 || !st.Degraded {
		t.Fatalf("stats do not reflect the episode: %+v", st)
	}

	// Disk recovers: the probe reopens admission.
	fault.on.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("manager never recovered after the fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	j2, err := m.Submit(testSpec(4), "c")
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if st := waitTerminal(t, j2); st.State != StateDone {
		t.Fatalf("post-recovery job ended %s (%s)", st.State, st.Error)
	}
	if _, err := os.Stat(filepath.Join(m.opts.Root, j2.ID(), resultFile)); err != nil {
		t.Fatalf("post-recovery result.csv missing: %v", err)
	}
}

// TestResultCSVNeverPartial: a job whose execution is interrupted must
// not leave any bytes at result.csv — the path holds a complete result
// or nothing (resume produces the complete file later).
func TestResultCSVNeverPartial(t *testing.T) {
	m := newTestManager(t, Options{Workers: 1})
	spec := testSpec(1, 2, 3, 4)
	j, err := m.Submit(spec, "c")
	if err != nil {
		t.Fatal(err)
	}
	// Drain mid-flight: the job parks as draining.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	m.Shutdown(ctx)
	if st := j.Status(); st.State == StateDone {
		t.Skip("job finished before the drain; nothing to assert")
	}
	if _, err := os.Stat(filepath.Join(m.opts.Root, j.ID(), resultFile)); !os.IsNotExist(err) {
		t.Fatalf("interrupted job left bytes at result.csv (stat err %v)", err)
	}
	// No stray temp either: WriteFileAtomic only runs on success.
	if _, err := os.Stat(filepath.Join(m.opts.Root, j.ID(), resultFile+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("interrupted job left result.csv.tmp (stat err %v)", err)
	}

	// Restart on the same store: the resumed run completes and the CSV
	// matches an uninterrupted execution byte for byte.
	m2 := newTestManager(t, Options{Root: m.opts.Root, Workers: 1})
	defer m2.Shutdown(context.Background())
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j2); st.State != StateDone {
		t.Fatalf("resumed job ended %s (%s)", st.State, st.Error)
	}
	got, err := os.ReadFile(filepath.Join(m.opts.Root, j.ID(), resultFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := referenceCSV(t, spec); !bytes.Equal(got, want) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
