package jobs

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mobilecache/internal/faultfs"
	"mobilecache/internal/sim"
)

// dumpMachineConfig writes a standard machine scheme to path as a
// loadable config file, so specs can reference machines by path.
func dumpMachineConfig(t *testing.T, path string) {
	t.Helper()
	m, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// crash hard-stops a manager the way kill -9 would leave it: the job's
// context dies with no drain, the process "exits" (all goroutines
// awaited), the persisted state is forced back to running (a real kill
// never writes draining), and — reusing internal/checkpoint's
// torn-tail scenario — the journal may lose a few trailing bytes to a
// write that never completed.
func crash(t *testing.T, m *Manager, j *Job, rng *rand.Rand) {
	t.Helper()
	j.cancel()
	m.wg.Wait()

	dir := filepath.Join(m.opts.Root, j.ID())
	if err := faultfs.WriteJSONAtomic(faultfs.OS, filepath.Join(dir, stateFile), persistentState{
		State: StateRunning, Total: j.total, Updated: time.Now().UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, journalFile)
	if fi, err := os.Stat(jpath); err == nil && rng.Intn(2) == 0 {
		// Tear the tail: drop 1..40 trailing bytes (bounded by size).
		cut := int64(1 + rng.Intn(40))
		if cut < fi.Size() {
			if err := os.Truncate(jpath, fi.Size()-cut); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestKillResumeByteIdentical is the crash-resume contract, property
// style: a job killed at randomized points (including torn journal
// tails), restarted — possibly several times — must finish with a
// final CSV byte-identical to an uninterrupted run.
func TestKillResumeByteIdentical(t *testing.T) {
	spec := Spec{
		Machines: []string{"baseline-sram", "sp-mr", "dp-sr"},
		Apps:     []string{"browser"},
		Seeds:    []uint64{1, 2, 3, 4},
		Accesses: 3000,
	}
	want := referenceCSV(t, spec)
	rng := rand.New(rand.NewSource(20260808))

	for iter := 0; iter < 5; iter++ {
		root := t.TempDir()
		m := newTestManager(t, Options{Root: root, Workers: 2})
		j, err := m.Submit(spec, "")
		if err != nil {
			t.Fatal(err)
		}
		id := j.ID()

		// Crash the daemon 1..3 times at random progress points, then
		// let the final incarnation finish.
		crashes := 1 + rng.Intn(3)
		for c := 0; c < crashes; c++ {
			stopAfter := rng.Intn(spec.Cells() + 1)
			streamCtx, cancelStream := context.WithTimeout(context.Background(), 60*time.Second)
			seen := 0
			err := j.Stream(streamCtx, func(e Event) error {
				if e.Type == "cell" {
					seen++
					if seen >= stopAfter {
						return errors.New("crash point")
					}
				}
				return nil
			})
			cancelStream()
			if err == nil {
				// The job finished before the crash point — nothing left
				// to kill; verify and stop crashing.
				break
			}
			crash(t, m, j, rng)

			m = newTestManager(t, Options{Root: root, Workers: 2})
			var gerr error
			j, gerr = m.Get(id)
			if gerr != nil {
				t.Fatalf("iter %d crash %d: job lost after restart: %v", iter, c, gerr)
			}
		}

		st := waitTerminal(t, j)
		if st.State != StateDone {
			t.Fatalf("iter %d: resumed job state = %s (%s)", iter, st.State, st.Error)
		}
		got, err := os.ReadFile(filepath.Join(root, id, resultFile))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: resumed CSV differs from uninterrupted run:\n got: %q\nwant: %q", iter, got, want)
		}
		if err := m.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// A restart after completion re-indexes terminal jobs without
// restarting them, and their results stay downloadable.
func TestRestartKeepsTerminalJobs(t *testing.T) {
	root := t.TempDir()
	spec := testSpec()
	m := newTestManager(t, Options{Root: root})
	j, err := m.Submit(spec, "carol")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{Root: root})
	defer m2.Shutdown(context.Background())
	statuses := m2.List()
	if len(statuses) != 1 || statuses[0].State != StateDone || statuses[0].Client != "carol" {
		t.Fatalf("restarted listing = %+v", statuses)
	}
	if st := m2.Stats(); st.JobsRecovered != 0 {
		t.Fatalf("terminal job counted as recovered: %+v", st)
	}
	f, err := m2.ResultCSV(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// A resumed spec that no longer resolves (its machine config file was
// deleted) fails that job on restart instead of the whole daemon.
func TestRestartWithUnresolvableSpecFailsJobOnly(t *testing.T) {
	root := t.TempDir()
	cfgPath := filepath.Join(t.TempDir(), "machine.json")
	// Borrow a real machine config via mcsim's dump equivalent: copy a
	// standard scheme to a file the spec references by path.
	m := newTestManager(t, Options{Root: root, Workers: 1})
	dumpMachineConfig(t, cfgPath)
	spec := Spec{Machines: []string{cfgPath}, Apps: []string{"browser"}, Seeds: []uint64{1}, Accesses: 2000}
	j, err := m.Submit(spec, "")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Make it look interrupted, then delete the config file.
	if err := faultfs.WriteJSONAtomic(faultfs.OS, filepath.Join(root, j.ID(), stateFile), persistentState{
		State: StateRunning, Total: 1, Updated: time.Now().UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(cfgPath); err != nil {
		t.Fatal(err)
	}

	m2 := newTestManager(t, Options{Root: root})
	defer m2.Shutdown(context.Background())
	j2, err := m2.Get(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j2)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("unresolvable resumed job = %+v, want failed with an error", st)
	}
	// The daemon itself still serves new work.
	ok, err := m2.Submit(testSpec(), "")
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ok)
}
