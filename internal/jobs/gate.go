package jobs

import (
	"context"
	"sync"
)

// rrGate is the fair scheduler at the heart of the daemon: one
// machine-wide set of worker slots, granted to jobs round-robin. Every
// running job's engine execution acquires one slot per cell through a
// per-job handle (runner.Gate); when a slot frees up it goes to the
// next job in the ring that has a waiter, not to whichever job has the
// most workers queued — so a million-cell sweep and a ten-cell sweep
// alternate cells and the small one finishes early instead of waiting
// out the large one.
//
// Draining flips the gate into shutdown mode: no new grants, so
// in-flight cells finish and everything else parks until the jobs'
// contexts are cancelled.
type rrGate struct {
	mu    sync.Mutex
	free  int // slots not held and not promised to a waiter
	total int

	// ring holds the IDs of jobs with at least one waiter, in arrival
	// order; next indexes the job to serve first on the next release.
	ring   []string
	queues map[string][]*slotWaiter
	next   int

	inflight int
	draining bool
	// idle is closed when draining and inflight reaches zero.
	idle     chan struct{}
	idleOnce sync.Once
}

// slotWaiter is one parked Acquire. granted flips under the gate lock
// when a release hands the waiter its slot (then ch is closed).
type slotWaiter struct {
	ch      chan struct{}
	granted bool
}

func newRRGate(slots int) *rrGate {
	if slots < 1 {
		slots = 1
	}
	return &rrGate{free: slots, total: slots, queues: map[string][]*slotWaiter{}, idle: make(chan struct{})}
}

// jobGate is the per-job runner.Gate handle.
type jobGate struct {
	g  *rrGate
	id string
}

func (g *rrGate) forJob(id string) *jobGate { return &jobGate{g: g, id: id} }

func (jg *jobGate) Acquire(ctx context.Context) error { return jg.g.acquire(ctx, jg.id) }
func (jg *jobGate) Release()                          { jg.g.release() }

func (g *rrGate) acquire(ctx context.Context, id string) error {
	g.mu.Lock()
	if g.free > 0 && !g.draining {
		// No waiter can exist while free > 0 (releases grant waiters
		// directly), so taking the fast path never jumps a queue.
		g.free--
		g.inflight++
		g.mu.Unlock()
		return nil
	}
	w := &slotWaiter{ch: make(chan struct{})}
	if len(g.queues[id]) == 0 {
		g.ring = append(g.ring, id)
	}
	g.queues[id] = append(g.queues[id], w)
	g.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.granted {
			// The grant raced our cancellation: we own a slot we will
			// never use — hand it on.
			g.releaseLocked()
			g.mu.Unlock()
			return ctx.Err()
		}
		g.removeWaiterLocked(id, w)
		g.mu.Unlock()
		return ctx.Err()
	}
}

func (g *rrGate) release() {
	g.mu.Lock()
	g.releaseLocked()
	g.mu.Unlock()
}

// releaseLocked returns one slot: to the next job in the ring with a
// waiter, or to the free pool. During drain nothing is granted, and
// the last in-flight release signals idleness.
func (g *rrGate) releaseLocked() {
	g.inflight--
	if g.draining {
		g.free++
		if g.inflight == 0 {
			g.idleOnce.Do(func() { close(g.idle) })
		}
		return
	}
	if len(g.ring) == 0 {
		g.free++
		return
	}
	if g.next >= len(g.ring) {
		g.next = 0
	}
	id := g.ring[g.next]
	q := g.queues[id]
	w := q[0]
	if len(q) == 1 {
		delete(g.queues, id)
		g.ring = append(g.ring[:g.next], g.ring[g.next+1:]...)
		// next now indexes the job after the removed one; wrap on use.
	} else {
		g.queues[id] = q[1:]
		g.next++
	}
	g.inflight++
	w.granted = true
	close(w.ch)
}

// removeWaiterLocked unparks a cancelled waiter from its queue.
func (g *rrGate) removeWaiterLocked(id string, w *slotWaiter) {
	q := g.queues[id]
	for i, cand := range q {
		if cand == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(g.queues, id)
		for i, rid := range g.ring {
			if rid == id {
				g.ring = append(g.ring[:i], g.ring[i+1:]...)
				if g.next > i {
					g.next--
				}
				break
			}
		}
	} else {
		g.queues[id] = q
	}
}

// drain stops all future grants. In-flight cells keep their slots
// until released.
func (g *rrGate) drain() {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		g.idleOnce.Do(func() { close(g.idle) })
	}
	g.mu.Unlock()
}

// waitIdle blocks until every in-flight cell of a draining gate has
// finished, or ctx expires.
func (g *rrGate) waitIdle(ctx context.Context) error {
	select {
	case <-g.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// depth reports (in-flight cells, parked waiters) for metrics.
func (g *rrGate) depth() (inflight, waiting int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, q := range g.queues {
		waiting += len(q)
	}
	return g.inflight, waiting
}
