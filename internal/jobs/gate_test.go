package jobs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// acquireAsync parks an Acquire in a goroutine and waits until the
// waiter is actually enqueued (n waiters for id), so tests can assert
// on deterministic grant order.
func acquireAsync(g *rrGate, id string, n int) chan error {
	ch := make(chan error, 1)
	go func() { ch <- g.acquire(context.Background(), id) }()
	waitQueued(g, id, n)
	return ch
}

// waitQueued spins until id has at least n parked waiters.
func waitQueued(g *rrGate, id string, n int) {
	for i := 0; i < 20000; i++ {
		g.mu.Lock()
		q := len(g.queues[id])
		g.mu.Unlock()
		if q >= n {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Round-robin: with one slot held, a job that queued four waiters and
// a job that queued one alternate grants — the small job is served
// second, not fifth.
func TestGateRoundRobinAcrossJobs(t *testing.T) {
	g := newRRGate(1)
	if err := g.acquire(context.Background(), "big"); err != nil {
		t.Fatal(err)
	}
	bigA := acquireAsync(g, "big", 1)
	bigB := acquireAsync(g, "big", 2)
	bigC := acquireAsync(g, "big", 3)
	small := acquireAsync(g, "small", 1)

	grantOrder := []chan error{}
	drainOne := func() {
		g.release()
		// Exactly one waiter was granted; find it.
		for _, ch := range []chan error{bigA, bigB, bigC, small} {
			select {
			case err := <-ch:
				if err != nil {
					t.Fatal(err)
				}
				grantOrder = append(grantOrder, ch)
				return
			default:
			}
		}
		// Grant is synchronous under the lock but delivery is a channel
		// read; poll briefly.
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			for _, ch := range []chan error{bigA, bigB, bigC, small} {
				select {
				case err := <-ch:
					if err != nil {
						t.Fatal(err)
					}
					grantOrder = append(grantOrder, ch)
					return
				default:
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
		t.Fatal("release granted no waiter")
	}
	for i := 0; i < 4; i++ {
		drainOne()
	}
	g.release() // last grant returns the slot to the pool

	// Arrival ring order is [big, small]; with the slot releasing four
	// times the grants must go big, small, big, big.
	want := []chan error{bigA, small, bigB, bigC}
	for i := range want {
		if grantOrder[i] != want[i] {
			t.Fatalf("grant %d went to the wrong waiter (round-robin violated)", i)
		}
	}
	if inflight, waiting := g.depth(); inflight != 0 || waiting != 0 {
		t.Fatalf("gate not idle after drain: inflight=%d waiting=%d", inflight, waiting)
	}
}

// A waiter whose context dies leaves the queue; a grant that races the
// cancellation is passed on, never leaked.
func TestGateCancelledWaiter(t *testing.T) {
	g := newRRGate(1)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- g.acquire(ctx, "b") }()
	waitQueued(g, "b", 1)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	// The slot still works: release, re-acquire.
	g.release()
	if err := g.acquire(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	g.release()
	if inflight, waiting := g.depth(); inflight != 0 || waiting != 0 {
		t.Fatalf("leaked state: inflight=%d waiting=%d", inflight, waiting)
	}
}

// Draining stops grants and waitIdle fires exactly when in-flight work
// ends.
func TestGateDrain(t *testing.T) {
	g := newRRGate(2)
	if err := g.acquire(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	g.drain()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := g.acquire(ctx, "b"); err == nil {
		t.Fatal("drained gate granted a slot")
	}
	idleCtx, idleCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer idleCancel()
	done := make(chan error, 1)
	go func() { done <- g.waitIdle(idleCtx) }()
	select {
	case <-done:
		t.Fatal("waitIdle returned while a cell was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	g.release()
	if err := <-done; err != nil {
		t.Fatalf("waitIdle after last release: %v", err)
	}
}

// Hammering the gate from many goroutines across several jobs keeps
// the slot count honest (race-detector food).
func TestGateConcurrentStress(t *testing.T) {
	g := newRRGate(3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	held, peak := 0, 0
	for w := 0; w < 12; w++ {
		wg.Add(1)
		id := string(rune('a' + w%4))
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := g.acquire(context.Background(), id); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				held++
				if held > peak {
					peak = held
				}
				mu.Unlock()
				mu.Lock()
				held--
				mu.Unlock()
				g.release()
			}
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("gate admitted %d concurrent holders, want <= 3", peak)
	}
	if inflight, waiting := g.depth(); inflight != 0 || waiting != 0 {
		t.Fatalf("gate not idle: inflight=%d waiting=%d", inflight, waiting)
	}
}
