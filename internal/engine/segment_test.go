package engine

import (
	"context"
	"reflect"
	"testing"

	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
)

// An enabled segment plan must change the content key (a stitched
// estimate must never be served for a serial run or vice versa, and
// different segmentations are different content), while worker count
// and a disabled plan must not.
func TestSegmentKeyAliasing(t *testing.T) {
	c := testCell(t, "baseline-sram", 0, 1)
	legacy, err := keyOf(c, 10_000, 0, sample.Spec{}, sim.SegmentPlan{})
	if err != nil {
		t.Fatal(err)
	}
	disabled, err := keyOf(c, 10_000, 0, sample.Spec{}, sim.SegmentPlan{Segments: 1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if disabled != legacy {
		t.Error("disabled segment plan changed the content key")
	}
	seen := map[interface{}]sim.SegmentPlan{legacy: {}}
	for _, p := range []sim.SegmentPlan{
		{Segments: 2},
		{Segments: 4},
		{Segments: 4, Warmup: -1},
		{Segments: 4, Warmup: 4096},
	} {
		k, err := keyOf(c, 10_000, 0, sample.Spec{}, p)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("plan %+v key collides with %+v", p, prev)
		}
		seen[k] = p
	}
	// Workers never change the stitched content, so they must not
	// change the key.
	a, _ := keyOf(c, 10_000, 0, sample.Spec{}, sim.SegmentPlan{Segments: 4, Workers: 1})
	b, _ := keyOf(c, 10_000, 0, sample.Spec{}, sim.SegmentPlan{Segments: 4, Workers: 8})
	if a != b {
		t.Error("worker count changed the content key")
	}
}

// TestSegmentedSmoke is the CI structural gate: a small plan executed
// with SegmentWorkers produces stitched reports that cover every
// record, carry the segment mark, and exactly match the serial arm's
// integer counters in oracle (full-prefix) mode.
func TestSegmentedSmoke(t *testing.T) {
	eng := New(Config{Workers: 1})
	cells := []Cell{
		testCell(t, "baseline-sram", 0, 2),
		testCell(t, "dp-sr", 0, 2),
	}
	plan := Plan{Cells: cells, Accesses: 24_000}

	serialCol := NewCollector()
	if _, err := eng.Execute(context.Background(), plan, ExecOptions{}, serialCol); err != nil {
		t.Fatal(err)
	}
	segCol := NewCollector()
	if _, err := eng.Execute(context.Background(), plan, ExecOptions{SegmentWorkers: 3, SegmentWarmup: -1}, segCol); err != nil {
		t.Fatal(err)
	}
	if len(segCol.Results) != len(serialCol.Results) {
		t.Fatalf("segmented arm returned %d results, serial %d", len(segCol.Results), len(serialCol.Results))
	}
	for i, sr := range segCol.Results {
		ser := serialCol.Results[i].Report
		seg := sr.Report
		if seg.Segments != 3 {
			t.Fatalf("%s: report marks %d segments", sr.Cell.Machine, seg.Segments)
		}
		if !reflect.DeepEqual(ser.CPU, seg.CPU) {
			t.Fatalf("%s: oracle-mode segmented CPU diverges from serial", sr.Cell.Machine)
		}
		if !reflect.DeepEqual(ser.L2, seg.L2) {
			t.Fatalf("%s: oracle-mode segmented L2 stats diverge from serial", sr.Cell.Machine)
		}
		if ser.DRAMReads != seg.DRAMReads || ser.DRAMWrites != seg.DRAMWrites {
			t.Fatalf("%s: oracle-mode segmented DRAM traffic diverges", sr.Cell.Machine)
		}
	}
}

// Segmented replay composes with neither plan-level warmup nor set
// sampling; Execute must reject both before any cell runs.
func TestSegmentedCompositionRejected(t *testing.T) {
	eng := New(Config{Workers: 1})
	cells := []Cell{testCell(t, "baseline-sram", 0, 2)}
	warm := Plan{Cells: cells, Accesses: 10_000, Warmup: 1000}
	if _, err := eng.Execute(context.Background(), warm, ExecOptions{SegmentWorkers: 2}); err == nil {
		t.Fatal("segmented + warmup accepted")
	}
	sampled := Plan{Cells: cells, Accesses: 10_000, Sample: sample.Spec{Factor: 4}}
	if _, err := eng.Execute(context.Background(), sampled, ExecOptions{SegmentWorkers: 2}); err == nil {
		t.Fatal("segmented + sampling accepted")
	}
}

// TestValidateSegmentedOracle runs the audit harness in exact mode: the
// stitched integer counters match serially, so the miss-rate error is
// identically zero and the energy error is float-association noise.
func TestValidateSegmentedOracle(t *testing.T) {
	eng := New(Config{Workers: 1})
	cells := []Cell{
		testCell(t, "baseline-sram", 0, 3),
		testCell(t, "sp-mr", 0, 3),
	}
	plan := Plan{Cells: cells, Accesses: 24_000}
	v, err := eng.ValidateSegmented(context.Background(), plan, sim.SegmentPlan{Segments: 3, Warmup: -1}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Machines) != 2 {
		t.Fatalf("validation covered %d machines", len(v.Machines))
	}
	for _, m := range v.Machines {
		if m.MissRateRelErr != 0 {
			t.Fatalf("%s: oracle-mode miss-rate error %.3g (stitching bug)", m.Machine, m.MissRateRelErr)
		}
	}
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
	if v.SerialWall <= 0 || v.SegmentedWall <= 0 {
		t.Fatal("validation did not time both arms")
	}
}

// RunOneSegmented with a disabled plan is exactly RunOne — same report,
// same memo entry.
func TestRunOneSegmentedDisabled(t *testing.T) {
	eng := New(Config{})
	c := testCell(t, "sp-mr", 0, 5)
	serial, err := eng.RunOne(context.Background(), c, 12_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	viaSeg, err := eng.RunOneSegmented(context.Background(), c, 12_000, sim.SegmentPlan{Segments: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, viaSeg) {
		t.Fatal("disabled segment plan diverges from RunOne")
	}
}
