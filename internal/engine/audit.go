package engine

import (
	"mobilecache/internal/invariant"
	"mobilecache/internal/sim"
)

// CheckAudit validates an audit-mode name ("off", "warn" or "strict")
// without applying it — the fail-fast half of the -audit flag.
func CheckAudit(name string) error {
	_, err := invariant.ParseMode(name)
	return err
}

// ApplyAudit parses an audit-mode name and installs it as the
// process-wide invariant-audit mode for every simulation (the audit
// runs inside the sim entry points, so it covers direct runs as well
// as engine-driven ones). The returned restore function reinstates the
// previous mode.
func ApplyAudit(name string) (restore func(), err error) {
	m, err := invariant.ParseMode(name)
	if err != nil {
		return nil, err
	}
	return sim.SetAuditMode(m), nil
}
