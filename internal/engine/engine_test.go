package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// testPlan builds a small machines x apps x seeds grid.
func testPlan(t *testing.T, machines []string, nApps int, seeds []uint64, accesses int) Plan {
	t.Helper()
	specs := make([]MachineSpec, 0, len(machines))
	for _, name := range machines {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, MachineSpec{Label: name, Config: cfg})
	}
	return Grid(specs, workload.Profiles()[:nApps], seeds, accesses, 0)
}

func TestGridOrder(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 1000)
	if len(p.Cells) != 8 {
		t.Fatalf("grid has %d cells, want 8", len(p.Cells))
	}
	// Spec order: machines outermost, seeds innermost.
	want := [][2]string{
		{"baseline-sram", workload.Profiles()[0].Name},
		{"baseline-sram", workload.Profiles()[0].Name},
		{"baseline-sram", workload.Profiles()[1].Name},
		{"baseline-sram", workload.Profiles()[1].Name},
		{"sp-mr", workload.Profiles()[0].Name},
	}
	for i, w := range want {
		if p.Cells[i].Machine != w[0] || p.Cells[i].App != w[1] {
			t.Fatalf("cell %d = %s/%s, want %s/%s", i, p.Cells[i].Machine, p.Cells[i].App, w[0], w[1])
		}
	}
	if p.Cells[0].Seed != 1 || p.Cells[1].Seed != 2 {
		t.Fatalf("seeds not innermost: %d, %d", p.Cells[0].Seed, p.Cells[1].Seed)
	}
}

func TestPlanValidate(t *testing.T) {
	if err := (Plan{Accesses: 0}).Validate(); err == nil {
		t.Error("zero accesses accepted")
	}
	if err := (Plan{Accesses: 10, Warmup: -1}).Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	if err := (Plan{Accesses: 10}).Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestExecuteWorkerCountInvariance: the CSV sink's bytes must not
// depend on parallelism — the ordered-emission contract front ends
// rely on for byte-identical sweeps.
func TestExecuteWorkerCountInvariance(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 3000)
	var serial, parallel bytes.Buffer
	for _, tc := range []struct {
		workers int
		buf     *bytes.Buffer
	}{{1, &serial}, {8, &parallel}} {
		eng := New(Config{Workers: tc.workers})
		if _, err := eng.Execute(context.Background(), p, ExecOptions{}, NewCSV(tc.buf)); err != nil {
			t.Fatal(err)
		}
	}
	if serial.String() != parallel.String() {
		t.Fatal("worker count changed the CSV bytes")
	}
}

// TestExecuteMatchesDirectSimulation: the engine is a pipeline, not a
// model — every report it emits must be deeply equal to a direct
// sim.RunWorkload of the same cell.
func TestExecuteMatchesDirectSimulation(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "dp-sr"}, 2, []uint64{7}, 5000)
	col := NewCollector()
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{}, col); err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		want, err := sim.RunWorkload(c.Config, c.Profile, c.Seed, p.Accesses)
		if err != nil {
			t.Fatal(err)
		}
		got := col.ByMachine[c.Machine][c.App]
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("engine report for %s/%s diverges from direct simulation", c.Machine, c.App)
		}
	}
}

// TestExecuteWarmupMatchesDirect: warmup plans route through
// RunWarmWorkload and must match it exactly.
func TestExecuteWarmupMatchesDirect(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 1, []uint64{3}, 4000)
	p.Warmup = 4000
	col := NewCollector()
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{}, col); err != nil {
		t.Fatal(err)
	}
	c := p.Cells[0]
	want, err := sim.RunWarmWorkload(c.Config, c.Profile, c.Seed, p.Warmup, p.Accesses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(col.ByMachine[c.Machine][c.App], want) {
		t.Fatal("warm engine report diverges from direct warm simulation")
	}
}

// TestRunOneMemoizes: a repeated cell is served from the memo (one
// trace generation, one simulation) and returns the identical report.
func TestRunOneMemoizes(t *testing.T) {
	eng := New(Config{})
	cfg, err := sim.MachineByName("sp-mr")
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Machine: cfg.Name, Config: cfg, App: workload.Profiles()[0].Name, Profile: workload.Profiles()[0], Seed: 5}
	first, err := eng.RunOne(context.Background(), cell, 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if eng.memo.len() != 1 {
		t.Fatalf("memo holds %d entries after one run, want 1", eng.memo.len())
	}
	second, err := eng.RunOne(context.Background(), cell, 4000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("memoized report differs from the original")
	}
	if st := eng.Store().Stats(); st.Generated != 1 {
		t.Fatalf("repeat run regenerated the trace: %d generated", st.Generated)
	}
}

// TestExecuteReportsMemoHits: a second Execute of the same plan is
// satisfied entirely from the memo and says so in the summary.
func TestExecuteReportsMemoHits(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 2, []uint64{1}, 3000)
	eng := New(Config{})
	if _, err := eng.Execute(context.Background(), p, ExecOptions{}, NewCollector()); err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Execute(context.Background(), p, ExecOptions{}, NewCollector())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Memoized != uint64(len(p.Cells)) {
		t.Fatalf("second execute memoized %d of %d cells", sum.Memoized, len(p.Cells))
	}
}

// TestExecuteKeepGoingChaos: with keep-going, injected failures land
// in the manifest (in plan order) while every healthy cell reaches the
// sinks, and the run error stays nil.
func TestExecuteKeepGoingChaos(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{PanicRate: 0.15, ErrorRate: 0.15, Seed: 4})
	defer restore()

	p := testPlan(t, []string{"baseline-sram", "sp-mr", "dp-sr"}, 2, []uint64{1, 2}, 2000)
	col := NewCollector()
	sum, err := New(Config{Workers: 4, KeepGoing: true}).Execute(context.Background(), p, ExecOptions{}, col)
	if err != nil {
		t.Fatalf("keep-going execute errored: %v", err)
	}
	if sum.Manifest.TotalCells != len(p.Cells) {
		t.Fatalf("manifest covers %d cells, want %d", sum.Manifest.TotalCells, len(p.Cells))
	}
	nFailed := len(sum.Manifest.Failed)
	if nFailed == 0 || nFailed == len(p.Cells) {
		t.Fatalf("chaos should fail some but not all cells: %d/%d", nFailed, len(p.Cells))
	}
	if got := len(col.Results); got != sum.Manifest.Succeeded {
		t.Fatalf("collector saw %d results, manifest says %d succeeded", got, sum.Manifest.Succeeded)
	}
}

// TestExecuteAbortsWithoutKeepGoing: the first failure comes back as a
// *runner.RunError.
func TestExecuteAbortsWithoutKeepGoing(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.5, Seed: 4})
	defer restore()

	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 2000)
	_, err := New(Config{Workers: 2}).Execute(context.Background(), p, ExecOptions{}, NewCollector())
	var re *runner.RunError
	if !errors.As(err, &re) {
		t.Fatalf("abort error = %v, want *runner.RunError", err)
	}
}

// TestExecuteCheckpointResume: a chaos-degraded checkpointed run plus
// a resumed run converge to the same journal and collector contents as
// an uninterrupted run, and the summary counts the resumes.
func TestExecuteCheckpointResume(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 1, []uint64{1, 2, 3, 4}, 8000)
	dir := t.TempDir()
	refCk, ck := filepath.Join(dir, "ref.ckpt"), filepath.Join(dir, "sweep.ckpt")

	refCol := NewCollector()
	if _, err := New(Config{Workers: 2}).Execute(context.Background(), p,
		ExecOptions{CheckpointPath: refCk}, refCol); err != nil {
		t.Fatal(err)
	}

	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.4, Seed: 4})
	sum, err := New(Config{Workers: 2, KeepGoing: true}).Execute(context.Background(), p,
		ExecOptions{CheckpointPath: ck}, NewCollector())
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Manifest.Failed) == 0 || len(sum.Manifest.Failed) == len(p.Cells) {
		t.Fatalf("chaos failed %d/%d cells; need a strict subset", len(sum.Manifest.Failed), len(p.Cells))
	}

	resCol := NewCollector()
	resSum, err := New(Config{Workers: 2}).Execute(context.Background(), p,
		ExecOptions{CheckpointPath: ck, Resume: true}, resCol)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if want := uint64(len(p.Cells) - len(sum.Manifest.Failed)); resSum.Resumed != want {
		t.Fatalf("resumed %d cells, want %d", resSum.Resumed, want)
	}
	if !reflect.DeepEqual(resCol.ByMachine, refCol.ByMachine) {
		t.Fatal("resumed collector diverges from uninterrupted run")
	}
	if !reflect.DeepEqual(journalReports(t, ck), journalReports(t, refCk)) {
		t.Fatal("combined journal diverges from uninterrupted journal")
	}
}

// journalReports decodes a checkpoint journal into key -> report.
func journalReports(t *testing.T, path string) map[checkpoint.Key]sim.RunReport {
	t.Helper()
	entries, _, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[checkpoint.Key]sim.RunReport, len(entries))
	for _, e := range entries {
		var rep sim.RunReport
		if err := json.Unmarshal(e.Data, &rep); err != nil {
			t.Fatal(err)
		}
		out[e.Key] = rep
	}
	return out
}

// TestExecuteResumeDiscardsTornTail: a torn journal tail is reported
// to the log writer and counted in the summary.
func TestExecuteResumeDiscardsTornTail(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 1, []uint64{1, 2, 3}, 5000)
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{CheckpointPath: ck}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ck, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	sum, err := New(Config{}).Execute(context.Background(), p,
		ExecOptions{CheckpointPath: ck, Resume: true, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if sum.CheckpointDiscarded == 0 {
		t.Fatal("summary does not count the discarded tail")
	}
	if !strings.Contains(log.String(), "discarded") {
		t.Fatalf("log does not mention the discard:\n%s", log.String())
	}
	if sum.Resumed != 2 {
		t.Fatalf("resumed %d cells, want 2 (third was torn)", sum.Resumed)
	}
}

// TestExecuteFailureManifestStreams: failures reach the manifest file
// with their structured identity.
func TestExecuteFailureManifestStreams(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.5, Seed: 4})
	defer restore()

	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 2000)
	mPath := filepath.Join(t.TempDir(), "failed.json")
	sum, err := New(Config{Workers: 2, KeepGoing: true}).Execute(context.Background(), p,
		ExecOptions{FailuresPath: mPath})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	var m runner.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, sum.Manifest) {
		t.Fatalf("finalized manifest diverges from summary manifest:\n%+v\n%+v", m, sum.Manifest)
	}
	if len(m.Failed) == 0 {
		t.Fatal("no failures recorded under 50% chaos")
	}
}

// TestExecuteResumeWithoutCheckpoint is the engine-level fail-fast.
func TestExecuteResumeWithoutCheckpoint(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 1, []uint64{1}, 1000)
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{Resume: true}); err == nil {
		t.Fatal("resume without checkpoint accepted")
	}
}

// TestConcurrentExecutes: one engine driven from several goroutines
// must be race-free (this test is load-bearing under `go test -race`)
// and every caller must see correct, complete results.
func TestConcurrentExecutes(t *testing.T) {
	eng := New(Config{Workers: 2})
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 2000)
	ref := NewCollector()
	if _, err := eng.Execute(context.Background(), p, ExecOptions{}, ref); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	cols := make([]*Collector, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cols[i] = NewCollector()
			_, errs[i] = eng.Execute(context.Background(), p, ExecOptions{}, cols[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatalf("concurrent execute %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(cols[i].ByMachine, ref.ByMachine) {
			t.Fatalf("concurrent execute %d produced different reports", i)
		}
	}
}

// TestAuditHelpers: CheckAudit validates names; ApplyAudit installs
// the mode (strict turns a tampered report into a failure).
func TestAuditHelpers(t *testing.T) {
	if err := CheckAudit("loud"); err == nil {
		t.Error("bad audit mode accepted")
	}
	if err := CheckAudit("strict"); err != nil {
		t.Errorf("strict rejected: %v", err)
	}
	if _, err := ApplyAudit("loud"); err == nil {
		t.Error("ApplyAudit accepted a bad mode")
	}

	restore, err := ApplyAudit("strict")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	restoreTamper := sim.SetAuditTamper(func(r *sim.RunReport) { r.L2.Hits[0]++ })
	defer restoreTamper()

	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[0]
	_, err = New(Config{}).RunOne(context.Background(), Cell{
		Machine: cfg.Name, Config: cfg, App: prof.Name, Profile: prof, Seed: 99,
	}, 2000, 0)
	if err == nil {
		t.Fatal("strict audit let a tampered report pass")
	}
}

// TestExecuteOnResult: the progress-callback sink fires once per
// successful cell with the cell's plan identity, concurrently with the
// run, and the ordered sinks still see everything afterwards.
func TestExecuteOnResult(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 2000)
	var mu sync.Mutex
	seen := map[int]bool{}
	col := NewCollector()
	sum, err := New(Config{Workers: 4}).Execute(context.Background(), p, ExecOptions{
		OnResult: func(r Result) {
			mu.Lock()
			defer mu.Unlock()
			if seen[r.Index] {
				t.Errorf("OnResult fired twice for cell %d", r.Index)
			}
			seen[r.Index] = true
			if r.Cell.Machine != p.Cells[r.Index].Machine || r.Cell.Seed != p.Cells[r.Index].Seed {
				t.Errorf("OnResult cell %d carries wrong identity: %+v", r.Index, r.Cell)
			}
		},
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(p.Cells) {
		t.Fatalf("OnResult fired for %d cells, want %d", len(seen), len(p.Cells))
	}
	if len(col.Results) != len(p.Cells) {
		t.Fatalf("collector saw %d results, want %d", len(col.Results), len(p.Cells))
	}
	if sum.Manifest.Succeeded != len(p.Cells) {
		t.Fatalf("succeeded %d, want %d", sum.Manifest.Succeeded, len(p.Cells))
	}
}

// testGate is a channel semaphore that records its concurrency peak.
type testGate struct {
	slots chan struct{}
	held  int64
	peak  int64
	mu    sync.Mutex
}

func newTestGate(n int) *testGate { return &testGate{slots: make(chan struct{}, n)} }

func (g *testGate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		g.mu.Lock()
		g.held++
		if g.held > g.peak {
			g.peak = g.held
		}
		g.mu.Unlock()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *testGate) Release() {
	g.mu.Lock()
	g.held--
	g.mu.Unlock()
	<-g.slots
}

// TestExecuteGate: an execution given a one-slot gate never runs two
// cells at once, whatever its worker count, and leaks no slots.
func TestExecuteGate(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1, 2}, 2000)
	g := newTestGate(1)
	if _, err := New(Config{Workers: 6}).Execute(context.Background(), p, ExecOptions{Gate: g}); err != nil {
		t.Fatal(err)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.peak > 1 {
		t.Fatalf("gate admitted %d concurrent cells, want 1", g.peak)
	}
	if g.held != 0 {
		t.Fatalf("%d gate slots leaked", g.held)
	}
}

// TestExecuteCancelledKeepsIncrementalManifest: a cancelled execution
// must not replace the fsynced incremental failure log with a manifest
// full of cancellation casualties.
func TestExecuteCancelledKeepsIncrementalManifest(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 1, []uint64{1, 2, 3, 4}, 2000)
	fpath := filepath.Join(t.TempDir(), "failures.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(Config{Workers: 2, KeepGoing: true}).Execute(ctx, p, ExecOptions{FailuresPath: fpath})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, rerr := os.ReadFile(fpath)
	if rerr != nil {
		t.Fatal(rerr)
	}
	var m runner.Manifest
	if json.Unmarshal(data, &m) == nil && m.TotalCells > 0 {
		t.Fatalf("cancelled run finalized a manifest of %d cells: %s", m.TotalCells, data)
	}
}
