package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/sim"
)

// DefaultMemoCapacity is the run-memo entry bound when Config leaves
// MemoCapacity at zero. Reports are small (a few KB with dynamic
// partition history), so a thousand entries comfortably covers a full
// mcbench run's repeated (machine, app, seed) cells.
const DefaultMemoCapacity = 1024

// memo is the bounded per-engine run memo. It replaces the old
// process-global sync.Map in internal/experiments, fixing that cache's
// two defects: it keyed on names — so a modified profile or machine
// config under an unchanged name was served a stale report — and it
// grew without bound. Keys here are the same content hashes the
// checkpoint journal uses (checkpoint.KeyOf over the machine config,
// profile, seed and run lengths), and an LRU bound evicts the coldest
// entry once capacity is reached.
type memo struct {
	mu  sync.Mutex
	cap int
	// order is an LRU list of *memoEntry, most recent first; byKey
	// indexes it.
	order *list.List
	byKey map[checkpoint.Key]*list.Element
	// hits/misses/evictions feed MemoStats (the daemon's /metrics).
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// MemoStats counts how the run memo performed; reads are safe at any
// time, including while an execution is in flight.
type MemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

type memoEntry struct {
	key checkpoint.Key
	rep sim.RunReport
}

// newMemo builds a memo with the Config.MemoCapacity semantics:
// capacity > 0 as given, 0 the default, < 0 disabled.
func newMemo(capacity int) *memo {
	if capacity == 0 {
		capacity = DefaultMemoCapacity
	}
	if capacity < 0 {
		return &memo{} // disabled: get always misses, add is a no-op
	}
	return &memo{cap: capacity, order: list.New(), byKey: make(map[checkpoint.Key]*list.Element)}
}

// get returns the memoized report for key, refreshing its recency.
func (m *memo) get(key checkpoint.Key) (sim.RunReport, bool) {
	if m.cap == 0 {
		return sim.RunReport{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.byKey[key]
	if !ok {
		m.misses.Add(1)
		return sim.RunReport{}, false
	}
	m.hits.Add(1)
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry).rep, true
}

// add memoizes one successful run, evicting the least recently used
// entry when over capacity. Duplicate adds (two workers racing the
// same cell) collapse to one entry; the reports are identical because
// runs are deterministic.
func (m *memo) add(key checkpoint.Key, rep sim.RunReport) {
	if m.cap == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.byKey[key]; ok {
		m.order.MoveToFront(el)
		return
	}
	m.byKey[key] = m.order.PushFront(&memoEntry{key: key, rep: rep})
	for m.order.Len() > m.cap {
		el := m.order.Back()
		m.order.Remove(el)
		delete(m.byKey, el.Value.(*memoEntry).key)
		m.evictions.Add(1)
	}
}

// stats snapshots the memo counters.
func (m *memo) stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		Entries:   m.len(),
	}
}

// len reports the live entry count (for tests).
func (m *memo) len() int {
	if m.cap == 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}
