package engine

import (
	"encoding/binary"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/shardlru"
	"mobilecache/internal/sim"
)

// DefaultMemoCapacity is the run-memo entry bound when Config leaves
// MemoCapacity at zero. Reports are small (a few KB with dynamic
// partition history), so a thousand entries comfortably covers a full
// mcbench run's repeated (machine, app, seed) cells.
const DefaultMemoCapacity = 1024

// memo is the bounded per-engine run memo. It replaces the old
// process-global sync.Map in internal/experiments, fixing that cache's
// two defects: it keyed on names — so a modified profile or machine
// config under an unchanged name was served a stale report — and it
// grew without bound. Keys here are the same content hashes the
// checkpoint journal uses (checkpoint.KeyOf over the machine config,
// profile, seed and run lengths).
//
// The memo is a lock-striped sharded LRU (internal/shardlru): the
// content hash picks a shard, the capacity splits across shards, and
// concurrent workers hitting a warm memo never serialize on a global
// mutex. Eviction is therefore per-shard LRU, not global LRU — a
// synchronization change only; the reports a hit returns are
// byte-identical either way.
type memo struct {
	cap   int
	cache *shardlru.Cache[checkpoint.Key, sim.RunReport] // nil when disabled
}

// MemoStats counts how the run memo performed; reads are safe at any
// time, including while an execution is in flight.
type MemoStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Duplicates counts adds that found the key already present — two
	// workers racing the same cell both simulate and both add; the
	// loser's add collapses onto the incumbent and is counted here, so
	// hit/miss/entry arithmetic reconciles with lookup counts
	// (misses = entries added + duplicates, for successful runs).
	Duplicates uint64
	Entries    int
	// Shards is the stripe count; MaxShardEntries/MinShardEntries the
	// most and least populated stripes (the /metrics skew gauge).
	Shards          int
	MaxShardEntries int
	MinShardEntries int
}

// memoHash shards a checkpoint key by its leading bytes — the key is a
// SHA-256 content hash, already uniformly distributed.
func memoHash(k checkpoint.Key) uint64 {
	return binary.LittleEndian.Uint64(k[:8])
}

// newMemo builds a memo with the Config.MemoCapacity semantics:
// capacity > 0 as given, 0 the default, < 0 disabled. The stripe count
// follows GOMAXPROCS (clamped by the capacity so no stripe's budget
// slice is empty).
func newMemo(capacity int) *memo {
	return newMemoSharded(capacity, 0)
}

// newMemoSharded is newMemo with an explicit stripe count (tests pin
// exact single-stripe LRU order with shards = 1).
func newMemoSharded(capacity, shards int) *memo {
	if capacity == 0 {
		capacity = DefaultMemoCapacity
	}
	if capacity < 0 {
		return &memo{} // disabled: get always misses, add is a no-op
	}
	return &memo{
		cap: capacity,
		cache: shardlru.New(shardlru.Config[checkpoint.Key, sim.RunReport]{
			Shards: shards,
			Budget: int64(capacity),
			Hash:   memoHash,
		}),
	}
}

// get returns the memoized report for key, refreshing its recency.
// A disabled memo counts nothing.
func (m *memo) get(key checkpoint.Key) (sim.RunReport, bool) {
	if m.cache == nil {
		return sim.RunReport{}, false
	}
	return m.cache.Get(key)
}

// add memoizes one successful run (unit cost; the budget is an entry
// count), evicting the least recently used entry in the key's shard
// when over its capacity slice. Duplicate adds — two workers racing
// the same cell — collapse to one entry and are counted; the reports
// are identical because runs are deterministic.
func (m *memo) add(key checkpoint.Key, rep sim.RunReport) {
	if m.cache == nil {
		return
	}
	m.cache.Add(key, rep, 1)
}

// stats snapshots the memo counters, aggregated across shards.
func (m *memo) stats() MemoStats {
	if m.cache == nil {
		return MemoStats{}
	}
	st := m.cache.Stats()
	return MemoStats{
		Hits:            st.Hits,
		Misses:          st.Misses,
		Evictions:       st.Evictions,
		Duplicates:      st.Duplicates,
		Entries:         st.Entries,
		Shards:          st.Shards,
		MaxShardEntries: st.MaxShardEntries,
		MinShardEntries: st.MinShardEntries,
	}
}

// len reports the live entry count (for tests).
func (m *memo) len() int {
	if m.cache == nil {
		return 0
	}
	return m.cache.Len()
}
