package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestCSVHeaderAlwaysWritten: an empty sweep still yields a valid CSV
// with the header row — downstream tooling depends on it.
func TestCSVHeaderAlwaysWritten(t *testing.T) {
	var buf bytes.Buffer
	c := NewCSV(&buf)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(buf.String())
	if got != strings.Join(csvHeader, ",") {
		t.Fatalf("empty-sweep CSV = %q, want the bare header", got)
	}
}

// TestCSVRowShape: every emitted row has exactly the header's column
// count and carries the machine and app identity.
func TestCSVRowShape(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 2, []uint64{1}, 2000)
	var buf bytes.Buffer
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{}, NewCSV(&buf)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(p.Cells) {
		t.Fatalf("CSV has %d lines, want header + %d rows", len(lines), len(p.Cells))
	}
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != len(csvHeader) {
			t.Fatalf("line %d has %d columns, want %d", i, got, len(csvHeader))
		}
	}
	for i, c := range p.Cells {
		row := lines[i+1]
		if !strings.HasPrefix(row, c.Machine+","+c.App+",") {
			t.Fatalf("row %d = %q, want prefix %q", i, row, c.Machine+","+c.App)
		}
	}
}

// TestCollector: reports are indexed both by [machine][app] and as an
// ordered slice carrying provenance flags.
func TestCollector(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1}, 2000)
	eng := New(Config{})
	col := NewCollector()
	if _, err := eng.Execute(context.Background(), p, ExecOptions{}, col); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != len(p.Cells) {
		t.Fatalf("collector holds %d results, want %d", len(col.Results), len(p.Cells))
	}
	for i, r := range col.Results {
		if r.Index != i {
			t.Fatalf("result %d carries index %d — emission is not plan-ordered", i, r.Index)
		}
		if r.Memoized {
			t.Fatalf("first run of cell %d claims a memo hit", i)
		}
	}
	for _, c := range p.Cells {
		rep, ok := col.ByMachine[c.Machine][c.App]
		if !ok {
			t.Fatalf("no report for %s/%s", c.Machine, c.App)
		}
		if rep.Machine != c.Config.Name {
			t.Fatalf("report machine %q under key %q", rep.Machine, c.Machine)
		}
	}

	// A second execute marks every result memoized.
	col2 := NewCollector()
	if _, err := eng.Execute(context.Background(), p, ExecOptions{}, col2); err != nil {
		t.Fatal(err)
	}
	for i, r := range col2.Results {
		if !r.Memoized {
			t.Fatalf("repeat run of cell %d not marked memoized", i)
		}
	}
}

// TestTableSink: the table renders one data row per cell under the
// given title.
func TestTableSink(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 2, []uint64{1}, 2000)
	tb := NewTable("sweep results")
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{}, tb); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Table().Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep results") {
		t.Fatal("table output missing the title")
	}
	for _, c := range p.Cells {
		if !strings.Contains(out, c.App) {
			t.Fatalf("table output missing app %s:\n%s", c.App, out)
		}
	}
}

// TestMultipleSinks: one execute can feed several sinks; they see the
// same results.
func TestMultipleSinks(t *testing.T) {
	p := testPlan(t, []string{"baseline-sram"}, 1, []uint64{1, 2}, 2000)
	var buf bytes.Buffer
	col := NewCollector()
	if _, err := New(Config{}).Execute(context.Background(), p, ExecOptions{}, NewCSV(&buf), col); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != 2 {
		t.Fatalf("collector saw %d results, want 2", len(col.Results))
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("CSV has %d lines, want 3 (header + 2 rows)", got)
	}
}
