package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mobilecache/internal/sample"
)

// SampleMachineError is one machine's sampled-vs-full comparison,
// aggregated over every (app, seed) cell of the validation plan.
type SampleMachineError struct {
	Machine string
	// Full / Sampled L2 miss rates (aggregate misses over aggregate
	// accesses) and total energies (joules, summed over cells).
	FullMissRate    float64
	SampledMissRate float64
	FullEnergyJ     float64
	SampledEnergyJ  float64
	// MissRateRelErr and EnergyRelErr are |sampled-full|/full (0 when
	// the full-run denominator is 0).
	MissRateRelErr float64
	EnergyRelErr   float64
}

// SampleValidation is the outcome of one sampled-vs-full validation:
// per-machine relative errors plus the wall-clock of both arms.
// Wall-clock is informative, not a controlled benchmark — memo hits
// (e.g. validating twice on one engine) make an arm nearly free.
type SampleValidation struct {
	Spec      sample.Spec
	Tolerance float64
	Machines  []SampleMachineError
	// FullWall and SampledWall time the two Execute arms.
	FullWall    time.Duration
	SampledWall time.Duration
}

// Speedup is the full arm's wall-clock over the sampled arm's.
func (v SampleValidation) Speedup() float64 {
	if v.SampledWall <= 0 {
		return 0
	}
	return float64(v.FullWall) / float64(v.SampledWall)
}

// Err reports the machines breaching the tolerance, nil when all are
// within it.
func (v SampleValidation) Err() error {
	var bad []string
	for _, m := range v.Machines {
		if m.MissRateRelErr > v.Tolerance || m.EnergyRelErr > v.Tolerance {
			bad = append(bad, fmt.Sprintf("%s (miss rate %.2f%%, energy %.2f%%)",
				m.Machine, 100*m.MissRateRelErr, 100*m.EnergyRelErr))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("engine: sampling %s exceeds %.1f%% relative error on: %s",
		v.Spec, 100*v.Tolerance, strings.Join(bad, ", "))
}

// relErr is |got-want|/|want|, 0 for a zero reference.
func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := (got - want) / want
	if d < 0 {
		d = -d
	}
	return d
}

// ValidateSample runs the plan twice — full and sampled under spec —
// and aggregates per-machine relative errors of the two headline
// metrics (L2 miss rate, total energy). The returned error covers
// execution failures only; tolerance breaches are reported by the
// validation's Err so callers decide whether they are fatal. Both arms
// share the engine's trace arena, and their content keys differ by
// construction, so the arms can never serve each other's memo entries.
func (e *Engine) ValidateSample(ctx context.Context, plan Plan, spec sample.Spec, tol float64) (SampleValidation, error) {
	v := SampleValidation{Spec: spec.Norm(), Tolerance: tol}
	if !v.Spec.Enabled() {
		return v, fmt.Errorf("engine: validation needs an enabled sampling spec, got %s", v.Spec)
	}

	type agg struct {
		accesses, misses uint64
		energyJ          float64
	}
	runArm := func(s sample.Spec) (map[string]*agg, []string, time.Duration, error) {
		p := plan
		p.Sample = s
		col := NewCollector()
		start := time.Now()
		sum, err := e.Execute(ctx, p, ExecOptions{}, col)
		wall := time.Since(start)
		if err != nil {
			return nil, nil, wall, err
		}
		if n := len(sum.Manifest.Failed); n > 0 {
			return nil, nil, wall, fmt.Errorf("engine: %d cells failed during sample validation", n)
		}
		aggs := make(map[string]*agg)
		var order []string
		for _, r := range col.Results {
			a := aggs[r.Cell.Machine]
			if a == nil {
				a = &agg{}
				aggs[r.Cell.Machine] = a
				order = append(order, r.Cell.Machine)
			}
			a.accesses += r.Report.L2.TotalAccesses()
			a.misses += r.Report.L2.TotalMisses()
			a.energyJ += r.Report.Energy.TotalJ()
		}
		return aggs, order, wall, nil
	}

	full, order, fullWall, err := runArm(sample.Spec{})
	if err != nil {
		return v, err
	}
	v.FullWall = fullWall
	sampled, _, sampledWall, err := runArm(v.Spec)
	if err != nil {
		return v, err
	}
	v.SampledWall = sampledWall

	missRate := func(a *agg) float64 {
		if a.accesses == 0 {
			return 0
		}
		return float64(a.misses) / float64(a.accesses)
	}
	for _, machine := range order {
		f, s := full[machine], sampled[machine]
		if s == nil {
			return v, fmt.Errorf("engine: machine %s missing from sampled arm", machine)
		}
		m := SampleMachineError{
			Machine:         machine,
			FullMissRate:    missRate(f),
			SampledMissRate: missRate(s),
			FullEnergyJ:     f.energyJ,
			SampledEnergyJ:  s.energyJ,
		}
		m.MissRateRelErr = relErr(m.SampledMissRate, m.FullMissRate)
		m.EnergyRelErr = relErr(m.SampledEnergyJ, m.FullEnergyJ)
		v.Machines = append(v.Machines, m)
	}
	return v, nil
}
