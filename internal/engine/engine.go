// Package engine is the single execution pipeline behind every grid
// of (machine, app, seed) simulations in this repository. The four
// front ends — cmd/mcsweep, cmd/mcbench, cmd/mcsim and
// internal/experiments — used to hand-wire the same layers three
// different ways; they now all build a Plan and hand it to an Engine,
// which composes, in one place:
//
//   - internal/tracestore: one shared trace arena per engine, so cells
//     that repeat an (app, seed, accesses) triple replay the cached
//     packed trace instead of regenerating it;
//   - internal/runner: bounded workers, per-cell deadlines, panic
//     isolation, transient-error retries and keep-going degradation;
//   - internal/checkpoint: an optional crash-safe journal of completed
//     cells keyed by a content hash of each cell's full inputs, with
//     resume-by-key so a killed sweep continues where it stopped;
//   - internal/invariant: the off/warn/strict conservation audit
//     (applied inside the sim entry points; ApplyAudit selects the
//     mode);
//   - incremental failure manifests (runner.ManifestLogger), streamed
//     as cells fail and finalized at the end;
//   - a bounded per-engine run memo keyed by the same content hash the
//     checkpoint journal uses, so identical cells across plans (or
//     experiments) simulate once — and a caller that modifies a
//     machine or profile under an unchanged name can never be served
//     a stale report.
//
// Results flow to pluggable Sinks (Collector, CSV, Table; the
// checkpoint journal is an engine-internal tee) in plan order, so a
// future front end — an HTTP API, a sharded backend — is a new Sink
// plus wiring, not a fourth copy of the pipeline.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/config"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/runner"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Cell is one unit of grid work: a resolved machine configuration and
// workload profile plus the labels the cell is reported under. Labels
// are what failure manifests and sinks show (for mcsweep, the spec
// entry — possibly a config-file path); Config/Profile are what runs.
type Cell struct {
	Machine string
	Config  config.Machine
	App     string
	Profile workload.Profile
	Seed    uint64
}

// Plan is a typed grid execution request: cells plus the run lengths
// shared by all of them. A positive Warmup measures only the accesses
// after the warmup prefix.
type Plan struct {
	Cells    []Cell
	Accesses int
	Warmup   int
	// Sample, when enabled (factor > 1), runs every cell set-sampled:
	// 1/Factor of the cache sets are simulated and the reports are
	// scaled back to full-run estimates. The spec is part of each
	// cell's content key, so sampled and full results can never alias
	// in the memo or a checkpoint journal.
	Sample sample.Spec
}

// Validate reports plan errors before any cell runs.
func (p Plan) Validate() error {
	if p.Accesses <= 0 {
		return fmt.Errorf("engine: accesses must be positive")
	}
	if p.Warmup < 0 {
		return fmt.Errorf("engine: negative warmup")
	}
	if err := p.Sample.Validate(); err != nil {
		return err
	}
	return nil
}

// MachineSpec pairs a grid label with its resolved configuration.
type MachineSpec struct {
	Label  string
	Config config.Machine
}

// ResolveMachine resolves a sweep-spec machine entry: standard scheme
// names win, and only non-schemes fall back to config-file loading.
// (Resolving by name first means a scheme alias containing a '.' can
// never be silently mistaken for a file path.)
func ResolveMachine(entry string) (config.Machine, error) {
	if m, err := sim.MachineByName(entry); err == nil {
		return m, nil
	}
	m, err := config.LoadFile(entry)
	if err != nil {
		return config.Machine{}, fmt.Errorf("machine %q is not a standard scheme (have %v) and not a loadable config file: %w",
			entry, sim.StandardMachineNames(), err)
	}
	return m, nil
}

// Grid crosses machines x apps x seeds in the given order — the spec
// order every sweep front end documents — into a Plan.
func Grid(machines []MachineSpec, apps []workload.Profile, seeds []uint64, accesses, warmup int) Plan {
	cells := make([]Cell, 0, len(machines)*len(apps)*len(seeds))
	for _, m := range machines {
		for _, app := range apps {
			for _, seed := range seeds {
				cells = append(cells, Cell{
					Machine: m.Label,
					Config:  m.Config,
					App:     app.Name,
					Profile: app,
					Seed:    seed,
				})
			}
		}
	}
	return Plan{Cells: cells, Accesses: accesses, Warmup: warmup}
}

// Config shapes an Engine. The zero value is usable: GOMAXPROCS
// workers, no deadlines or retries, a default-budget trace arena and a
// default-capacity memo.
type Config struct {
	// Workers bounds the parallel cells; <= 0 uses GOMAXPROCS.
	Workers int
	// Timeout is the per-cell (per-attempt) deadline; 0 disables it.
	Timeout time.Duration
	// Retries is how many extra attempts a transient failure gets.
	Retries int
	// Backoff is the sleep before the first retry; <= 0 uses the
	// runner default.
	Backoff time.Duration
	// KeepGoing records failures and lets sibling cells complete;
	// otherwise the first failure cancels the rest of the plan.
	KeepGoing bool
	// Store is the trace arena shared by every cell this engine runs;
	// nil builds one from TraceBudgetBytes.
	Store *tracestore.Store
	// TraceBudgetBytes bounds the engine-built arena when Store is nil:
	// > 0 is a byte budget, 0 selects tracestore.DefaultBudgetBytes,
	// < 0 is unlimited.
	TraceBudgetBytes int64
	// MemoCapacity bounds the run memo in entries: > 0 is a capacity,
	// 0 selects DefaultMemoCapacity, < 0 disables memoization.
	MemoCapacity int
}

// TraceBudgetMB converts a front end's -trace-cache-mb flag value to a
// TraceBudgetBytes setting (0 MB means unlimited, matching the flags'
// documented semantics).
func TraceBudgetMB(mb int) int64 {
	if mb == 0 {
		return -1
	}
	return int64(mb) << 20
}

// Engine executes Plans. One engine holds one trace arena and one run
// memo; front ends build a single engine per process (or per sweep)
// and drive every grid through it.
type Engine struct {
	cfg   Config
	store *tracestore.Store
	memo  *memo
}

// New builds an engine from cfg.
func New(cfg Config) *Engine {
	store := cfg.Store
	if store == nil {
		budget := cfg.TraceBudgetBytes
		switch {
		case budget == 0:
			budget = tracestore.DefaultBudgetBytes
		case budget < 0:
			budget = 0 // tracestore treats 0 as unlimited
		}
		store = tracestore.New(budget)
	}
	return &Engine{cfg: cfg, store: store, memo: newMemo(cfg.MemoCapacity)}
}

// Store exposes the engine's trace arena (for stats reporting and for
// callers that need to share it with non-engine code paths).
func (e *Engine) Store() *tracestore.Store { return e.store }

// MemoStats snapshots the run memo's hit/miss/eviction counters (the
// daemon's /metrics reads them live).
func (e *Engine) MemoStats() MemoStats { return e.memo.stats() }

// keyOf hashes one cell's full inputs exactly the way the checkpoint
// journal always has — machine config, profile, seed, accesses,
// warmup, in that order — so pre-existing journals stay resumable and
// the memo can never serve a report for different content. An enabled
// sampling spec appends itself to the key: a sampled estimate and a
// full result are different content and must never alias; a disabled
// spec appends nothing, so factor-1 keys equal the historical keys and
// old journals resume cleanly.
func keyOf(c Cell, accesses, warmup int, spec sample.Spec, seg sim.SegmentPlan) (checkpoint.Key, error) {
	if seg.Enabled() {
		// A stitched segmented estimate is different content from the
		// serial run (and from any other segmentation), so the
		// normalized plan joins the key. Workers stay out: concurrency
		// never changes the stitched result.
		seg = seg.Norm()
		return checkpoint.KeyOf(c.Config, c.Profile, c.Seed, accesses, warmup, "segmented", seg.Segments, seg.Warmup)
	}
	if spec.Norm().Enabled() {
		return checkpoint.KeyOf(c.Config, c.Profile, c.Seed, accesses, warmup, "sample", spec.Factor, spec.Hash)
	}
	return checkpoint.KeyOf(c.Config, c.Profile, c.Seed, accesses, warmup)
}

// RunOne executes a single cell through the full pipeline — memo,
// shared trace arena, audit — without the worker pool. It is the
// single-cell entry the experiments package and cmd/mcsim use.
func (e *Engine) RunOne(ctx context.Context, c Cell, accesses, warmup int) (sim.RunReport, error) {
	return e.RunOneSampled(ctx, c, accesses, warmup, sample.Spec{})
}

// RunOneSampled is RunOne under a sampling spec; a disabled spec is
// exactly RunOne.
func (e *Engine) RunOneSampled(ctx context.Context, c Cell, accesses, warmup int, spec sample.Spec) (sim.RunReport, error) {
	if err := (Plan{Accesses: accesses, Warmup: warmup, Sample: spec}).Validate(); err != nil {
		return sim.RunReport{}, err
	}
	if err := ctx.Err(); err != nil {
		return sim.RunReport{}, err
	}
	key, err := keyOf(c, accesses, warmup, spec, sim.SegmentPlan{})
	if err != nil {
		return sim.RunReport{}, err
	}
	if rep, ok := e.memo.get(key); ok {
		return rep, nil
	}
	rep, err := e.simulate(c, accesses, warmup, spec, sim.SegmentPlan{})
	if err != nil {
		return rep, err
	}
	e.memo.add(key, rep)
	return rep, nil
}

// RunOneSegmented executes a single cell as a segmented intra-cell
// replay (sim.RunSegmented) through the same memo and trace arena as
// RunOne. Segmented replay composes with neither plan-level warm
// measurement nor set sampling, so the cell runs cold and unsampled.
func (e *Engine) RunOneSegmented(ctx context.Context, c Cell, accesses int, seg sim.SegmentPlan) (sim.RunReport, error) {
	if err := (Plan{Accesses: accesses}).Validate(); err != nil {
		return sim.RunReport{}, err
	}
	if err := seg.Validate(); err != nil {
		return sim.RunReport{}, err
	}
	if !seg.Enabled() || seg.Norm().FallsBackToSerial(accesses, runtime.GOMAXPROCS(0)) {
		// Serial auto-fallback decided here, as in Execute, so the cell
		// is keyed and memoized as the serial content it produces.
		return e.RunOne(ctx, c, accesses, 0)
	}
	if err := ctx.Err(); err != nil {
		return sim.RunReport{}, err
	}
	key, err := keyOf(c, accesses, 0, sample.Spec{}, seg)
	if err != nil {
		return sim.RunReport{}, err
	}
	if rep, ok := e.memo.get(key); ok {
		return rep, nil
	}
	rep, err := e.simulate(c, accesses, 0, sample.Spec{}, seg)
	if err != nil {
		return rep, err
	}
	e.memo.add(key, rep)
	return rep, nil
}

// simulate is the one place a cell becomes a sim call.
func (e *Engine) simulate(c Cell, accesses, warmup int, spec sample.Spec, seg sim.SegmentPlan) (sim.RunReport, error) {
	if seg.Enabled() {
		return sim.RunSegmentedWorkloadFrom(e.store, c.Config, c.Profile, c.Seed, accesses, seg)
	}
	if spec.Norm().Enabled() {
		if warmup > 0 {
			return sim.RunWarmWorkloadFromSampled(e.store, c.Config, c.Profile, c.Seed, warmup, accesses, spec)
		}
		return sim.RunWorkloadFromSampled(e.store, c.Config, c.Profile, c.Seed, accesses, spec)
	}
	if warmup > 0 {
		return sim.RunWarmWorkloadFrom(e.store, c.Config, c.Profile, c.Seed, warmup, accesses)
	}
	return sim.RunWorkloadFrom(e.store, c.Config, c.Profile, c.Seed, accesses)
}

// ExecOptions are the per-execution knobs (the per-engine ones live in
// Config).
type ExecOptions struct {
	// CheckpointPath journals every completed cell to this crash-safe
	// file; empty disables journaling.
	CheckpointPath string
	// Resume replays the journal's valid prefix and skips every cell
	// whose content key matches a journaled entry.
	Resume bool
	// FailuresPath streams failures incrementally to this manifest file
	// and finalizes it with the canonical manifest at the end.
	FailuresPath string
	// Log receives diagnostics (discarded checkpoint tails, undecodable
	// entries); nil discards them.
	Log io.Writer
	// OnResult, when non-nil, is the progress-callback sink: it fires
	// the moment a cell completes successfully — from the worker
	// goroutine, in completion order, not plan order — so a long
	// execution can stream results and progress while the ordered Sinks
	// still see everything in plan order at the end. It may be called
	// concurrently and must be safe for that.
	OnResult func(Result)
	// OnFailure, when non-nil, fires as cells exhaust their attempts
	// (see runner.Config.OnFailure); it runs in addition to the
	// FailuresPath manifest logger, not instead of it.
	OnFailure func(*runner.RunError)
	// Gate, when non-nil, is acquired once per cell before it runs —
	// the hook a multi-plan scheduler (the sweep daemon) uses to bound
	// and fair-share one machine-wide slot set across concurrent
	// executions. See runner.Gate.
	Gate runner.Gate
	// SegmentWorkers, when >= 2, runs every cell as a segmented
	// intra-cell replay (sim.RunSegmented): the record stream splits
	// into that many segments replayed concurrently from warm states,
	// and the measured deltas are stitched into one report. This is the
	// parallelism axis for plans with fewer cells than cores; the
	// segment workers multiply with the engine's cell workers, so
	// sweeps should lower one when raising the other. Incompatible
	// with plan-level Warmup and Sample (Execute rejects the
	// combination). 0 or 1 replays serially as always.
	SegmentWorkers int
	// SegmentWarmup tunes the per-segment warmup prefix when
	// SegmentWorkers is active: 0 selects sim.DefaultSegmentWarmup,
	// >= 1 is a record count, and < 0 selects exact full-prefix warmup
	// — bit-identical stitched integer counters, no speedup, the
	// oracle the equivalence gate runs.
	SegmentWarmup int
	// SegmentForce disables the serial auto-fallback
	// (sim.SegmentPlan.FallsBackToSerial) so the segmented machinery is
	// exercised regardless of host shape and cell size — the validation
	// harness and benchmark emitters set it; sweeps leave it off and
	// let small cells and single-core hosts replay serially.
	SegmentForce bool
	// FS is the filesystem every durable artifact of this execution
	// (checkpoint journal, failure manifest) goes through; nil selects
	// the real one. Fault-injection tests swap in a faultfs.FaultFS to
	// torture the persistence path deterministically.
	FS faultfs.FS
}

// Summary is what a plan execution leaves behind besides the sink
// outputs: the failure manifest, the resume/memo counters and the
// trace arena's statistics.
type Summary struct {
	Manifest runner.Manifest
	// Resumed counts cells satisfied from the resumed checkpoint
	// journal; Memoized counts cells satisfied from the engine memo.
	Resumed  uint64
	Memoized uint64
	// CheckpointAppended is how many cells were journaled this
	// execution; CheckpointDiscarded is how many corrupt trailing bytes
	// resume discarded.
	CheckpointAppended  int
	CheckpointDiscarded int64
	Store               tracestore.Stats
	// Memo is the run memo's counter snapshot at the end of the
	// execution (cumulative for the engine, like Store).
	Memo MemoStats
}

// CacheSummary renders the engine's two cache snapshots as the one-line
// form every front end's run summary uses, so mcsweep, mcbench and
// mcsim report the memo and arena identically.
func CacheSummary(memo MemoStats, st tracestore.Stats) string {
	return fmt.Sprintf(
		"run memo: %d hits, %d misses, %d dup adds, %d evicted, %d entries (%d shards); trace arena: %d generated, %d hits, %d misses, %.1f MB resident, %d evicted, %d demoted (%d shards)",
		memo.Hits, memo.Misses, memo.Duplicates, memo.Evictions, memo.Entries, memo.Shards,
		st.Generated, st.Hits, st.Misses, float64(st.BytesInUse)/(1<<20), st.Evictions, st.Demotions, st.Shards)
}

// Execute runs the plan on the engine's worker pool and feeds every
// successful cell's result, in plan order, to each sink. The returned
// error mirrors the runner's semantics: with KeepGoing it is nil even
// when cells failed (inspect Summary.Manifest); without it, the first
// failure aborts the plan and comes back as a *runner.RunError.
// Whatever happens, the Summary is valid and the sinks have seen every
// healthy result collected before the failure.
func (e *Engine) Execute(ctx context.Context, plan Plan, opt ExecOptions, sinks ...Sink) (Summary, error) {
	var sum Summary
	logw := opt.Log
	if logw == nil {
		logw = io.Discard
	}
	if err := plan.Validate(); err != nil {
		return sum, err
	}
	if opt.Resume && opt.CheckpointPath == "" {
		return sum, fmt.Errorf("engine: resume needs a checkpoint path")
	}
	var seg sim.SegmentPlan
	if opt.SegmentWorkers > 1 {
		seg = sim.SegmentPlan{Segments: opt.SegmentWorkers, Warmup: opt.SegmentWarmup, Workers: opt.SegmentWorkers, Force: opt.SegmentForce}
		if plan.Warmup > 0 {
			return sum, fmt.Errorf("engine: segmented replay does not compose with plan-level warmup (segments measure cold)")
		}
		if plan.Sample.Norm().Enabled() {
			return sum, fmt.Errorf("engine: segmented replay does not compose with set sampling")
		}
		// If every cell of this plan would take the serial auto-fallback
		// anyway, decide it here instead of inside sim.RunSegmented: the
		// cells are then keyed, memoized and journaled as the ordinary
		// serial content they actually are, so a memo entry written on
		// this host can never alias a genuinely stitched estimate.
		if seg.Norm().FallsBackToSerial(plan.Accesses, runtime.GOMAXPROCS(0)) {
			fmt.Fprintf(logw, "segmented replay: falling back to serial (%d accesses, GOMAXPROCS=%d)\n",
				plan.Accesses, runtime.GOMAXPROCS(0))
			seg = sim.SegmentPlan{}
		}
	}
	fsys := opt.FS
	if fsys == nil {
		fsys = faultfs.OS
	}

	// Key every cell up front: a cell that cannot be keyed is a
	// configuration error and must fail the plan before any cell runs.
	rcells := make([]runner.Cell, len(plan.Cells))
	keys := make([]checkpoint.Key, len(plan.Cells))
	index := make(map[runner.Cell]int, len(plan.Cells))
	for i, c := range plan.Cells {
		rc := runner.Cell{Machine: c.Machine, App: c.App, Seed: c.Seed}
		key, err := keyOf(c, plan.Accesses, plan.Warmup, plan.Sample, seg)
		if err != nil {
			return sum, fmt.Errorf("keying cell %s: %w", rc, err)
		}
		rcells[i], keys[i] = rc, key
		index[rc] = i
	}

	journal, resumed, discarded, err := e.openJournal(fsys, opt, logw)
	if err != nil {
		return sum, err
	}
	sum.CheckpointDiscarded = discarded

	var mlog *runner.ManifestLogger
	rcfg := runner.Config{
		Workers:   e.cfg.Workers,
		Timeout:   e.cfg.Timeout,
		Retries:   e.cfg.Retries,
		Backoff:   e.cfg.Backoff,
		KeepGoing: e.cfg.KeepGoing,
		OnFailure: opt.OnFailure,
		Gate:      opt.Gate,
	}
	if opt.FailuresPath != "" {
		mlog, err = runner.NewManifestLoggerFS(fsys, opt.FailuresPath)
		if err != nil {
			if journal != nil {
				journal.Close()
			}
			return sum, fmt.Errorf("opening failure manifest %s: %w", opt.FailuresPath, err)
		}
		if next := opt.OnFailure; next != nil {
			rcfg.OnFailure = func(e *runner.RunError) { mlog.Record(e); next(e) }
		} else {
			rcfg.OnFailure = mlog.Record
		}
	}

	var nResumed, nMemoized atomic.Uint64
	fromResume := make([]bool, len(plan.Cells))
	fromMemo := make([]bool, len(plan.Cells))
	outcomes, runErr := runner.Run(ctx, rcfg, rcells,
		func(_ context.Context, rc runner.Cell) (sim.RunReport, error) {
			i := index[rc]
			key := keys[i]
			rep, ok := resumed[key]
			if ok {
				// Already completed (and audited) in a previous run; it is
				// in the journal by definition, so no re-append.
				nResumed.Add(1)
				fromResume[i] = true
			} else {
				var memoized bool
				var err error
				rep, memoized, err = e.runKeyed(plan.Cells[i], key, plan.Accesses, plan.Warmup, plan.Sample, seg)
				if err != nil {
					return rep, err
				}
				if memoized {
					nMemoized.Add(1)
					fromMemo[i] = true
				}
				if journal != nil {
					// A cell whose result can't be made durable is a failed
					// cell: the caller asked for crash safety.
					if jerr := journal.AppendJSON(key, rep); jerr != nil {
						return rep, fmt.Errorf("checkpoint append: %w", jerr)
					}
				}
			}
			if opt.OnResult != nil {
				opt.OnResult(Result{
					Index: i, Cell: plan.Cells[i], Key: key, Report: rep,
					Resumed: fromResume[i], Memoized: fromMemo[i],
				})
			}
			return rep, nil
		})

	if journal != nil {
		sum.CheckpointAppended = journal.Appended()
		if cerr := journal.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("closing checkpoint %s: %w", opt.CheckpointPath, cerr)
		}
	}
	sum.Resumed, sum.Memoized = nResumed.Load(), nMemoized.Load()
	sum.Manifest = runner.BuildManifest(outcomes)
	sum.Store = e.store.Stats()
	sum.Memo = e.memo.stats()

	// Sinks see successful results in plan order, so identical plans
	// produce identical sink output regardless of worker count.
	for i, o := range outcomes {
		if o.Err != nil {
			continue
		}
		res := Result{
			Index:    i,
			Cell:     plan.Cells[i],
			Key:      keys[i],
			Report:   o.Value,
			Resumed:  fromResume[i],
			Memoized: fromMemo[i],
		}
		for _, s := range sinks {
			if err := s.Emit(res); err != nil {
				return sum, err
			}
		}
	}
	for _, s := range sinks {
		if err := s.Flush(); err != nil {
			return sum, err
		}
	}

	if mlog != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			// An interrupted execution is not a final verdict: finalizing
			// would replace the fsynced incremental failure log with a
			// manifest dominated by cancellation casualties (every
			// undispatched cell of an aborted million-cell plan). Keep the
			// line log; a resumed execution rebuilds the real manifest.
			if cerr := mlog.Close(); cerr != nil {
				fmt.Fprintf(logw, "failure manifest %s: %v\n", opt.FailuresPath, cerr)
			}
		} else if err := mlog.Finalize(sum.Manifest); err != nil {
			return sum, fmt.Errorf("writing failure manifest %s: %w", opt.FailuresPath, err)
		}
	}
	return sum, runErr
}

// runKeyed satisfies one keyed cell from the memo or the simulator.
func (e *Engine) runKeyed(c Cell, key checkpoint.Key, accesses, warmup int, spec sample.Spec, seg sim.SegmentPlan) (rep sim.RunReport, memoized bool, err error) {
	if rep, ok := e.memo.get(key); ok {
		return rep, true, nil
	}
	rep, err = e.simulate(c, accesses, warmup, spec, seg)
	if err != nil {
		return rep, false, err
	}
	e.memo.add(key, rep)
	return rep, false, nil
}

// openJournal opens (or resumes) the execution's checkpoint journal.
// Resume replays the valid prefix — later entries win, so a cell
// re-run after a crash supersedes its earlier record — and truncates
// any torn tail.
func (e *Engine) openJournal(fsys faultfs.FS, opt ExecOptions, logw io.Writer) (*checkpoint.Journal, map[checkpoint.Key]sim.RunReport, int64, error) {
	if opt.CheckpointPath == "" {
		return nil, nil, 0, nil
	}
	if !opt.Resume {
		j, err := checkpoint.CreateFS(fsys, opt.CheckpointPath, 0)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("creating checkpoint %s: %w", opt.CheckpointPath, err)
		}
		return j, nil, 0, nil
	}
	j, entries, info, err := checkpoint.ResumeFS(fsys, opt.CheckpointPath, 0)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("resuming checkpoint %s: %w", opt.CheckpointPath, err)
	}
	resumed := make(map[checkpoint.Key]sim.RunReport, len(entries))
	for _, e := range entries {
		var rep sim.RunReport
		if err := json.Unmarshal(e.Data, &rep); err != nil {
			// CRC-valid but undecodable means a format-version skew;
			// re-running the cell is always safe.
			fmt.Fprintf(logw, "checkpoint: skipping undecodable entry: %v\n", err)
			continue
		}
		resumed[e.Key] = rep
	}
	if info.DiscardedBytes > 0 {
		fmt.Fprintf(logw, "checkpoint: discarded %d corrupt trailing bytes (crash remnant); %d entries survive\n",
			info.DiscardedBytes, len(entries))
	}
	return j, resumed, info.DiscardedBytes, nil
}
