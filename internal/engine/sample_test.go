package engine

import (
	"context"
	"reflect"
	"testing"

	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// testCell builds one standard-machine cell.
func testCell(t *testing.T, machine string, app int, seed uint64) Cell {
	t.Helper()
	cfg, err := sim.MachineByName(machine)
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[app]
	return Cell{Machine: machine, Config: cfg, App: prof.Name, Profile: prof, Seed: seed}
}

// An enabled sampling spec must change the content key (a sampled
// estimate must never be served for a full run or vice versa), while a
// disabled spec must keep the historical key so legacy journals stay
// resumable.
func TestSampleKeyAliasing(t *testing.T) {
	c := testCell(t, "baseline-sram", 0, 1)
	legacy, err := keyOf(c, 10_000, 0, sample.Spec{}, sim.SegmentPlan{})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []sample.Spec{{Factor: 1}, {Factor: 1, Hash: true}} {
		k, err := keyOf(c, 10_000, 0, spec, sim.SegmentPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if k != legacy {
			t.Errorf("disabled spec %+v changed the content key", spec)
		}
	}
	seen := map[interface{}]string{legacy: "full"}
	for _, spec := range []sample.Spec{{Factor: 2}, {Factor: 8}, {Factor: 8, Hash: true}, {Factor: 128}} {
		k, err := keyOf(c, 10_000, 0, spec, sim.SegmentPlan{})
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("spec %s key collides with %s", spec, prev)
		}
		seen[k] = spec.String()
	}
}

// A factor-1 sampled run through the engine is the unsampled run:
// identical report, same memo entry.
func TestRunOneSampledFactorOne(t *testing.T) {
	c := testCell(t, "sp-mr", 0, 3)
	full := New(Config{})
	want, err := full.RunOne(context.Background(), c, 20_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	got, err := fresh.RunOneSampled(context.Background(), c, 20_000, 0, sample.Spec{Factor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("factor-1 sampled engine run differs from unsampled run")
	}
}

// Execute with a sampled plan stamps the factor on every report and
// returns the same reports RunOneSampled produces for the same cells.
func TestExecuteSampledMatchesRunOne(t *testing.T) {
	plan := testPlan(t, []string{"baseline-stt", "dp"}, 2, []uint64{5}, 20_000)
	plan.Sample = sample.Spec{Factor: 8}
	e := New(Config{})
	col := NewCollector()
	if _, err := e.Execute(context.Background(), plan, ExecOptions{}, col); err != nil {
		t.Fatal(err)
	}
	if len(col.Results) != len(plan.Cells) {
		t.Fatalf("%d results, want %d", len(col.Results), len(plan.Cells))
	}
	fresh := New(Config{})
	for _, r := range col.Results {
		if r.Report.SampleFactor != 8 {
			t.Errorf("%s/%s: SampleFactor = %d, want 8", r.Cell.Machine, r.Cell.App, r.Report.SampleFactor)
		}
		want, err := fresh.RunOneSampled(context.Background(), r.Cell, plan.Accesses, 0, plan.Sample)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Report, want) {
			t.Errorf("%s/%s: Execute report differs from RunOneSampled", r.Cell.Machine, r.Cell.App)
		}
	}
}

// ValidateSample smoke: a small grid validates without execution
// errors, reports both arms' wall-clock, and covers every machine.
func TestValidateSampleSmoke(t *testing.T) {
	plan := testPlan(t, []string{"baseline-sram", "sp-mr"}, 2, []uint64{1}, 20_000)
	e := New(Config{})
	v, err := e.ValidateSample(context.Background(), plan, sample.Spec{Factor: 8}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Machines) != 2 {
		t.Fatalf("%d machines validated, want 2", len(v.Machines))
	}
	for _, m := range v.Machines {
		if m.FullMissRate <= 0 || m.SampledMissRate <= 0 {
			t.Errorf("%s: degenerate miss rates %g/%g", m.Machine, m.FullMissRate, m.SampledMissRate)
		}
		if m.FullEnergyJ <= 0 || m.SampledEnergyJ <= 0 {
			t.Errorf("%s: degenerate energies %g/%g", m.Machine, m.FullEnergyJ, m.SampledEnergyJ)
		}
	}
	if v.FullWall <= 0 || v.SampledWall <= 0 {
		t.Errorf("wall clocks not recorded: full %v sampled %v", v.FullWall, v.SampledWall)
	}
	if err := v.Err(); err != nil {
		t.Errorf("loose tolerance breached: %v", err)
	}
	// A disabled spec is a caller bug.
	if _, err := e.ValidateSample(context.Background(), plan, sample.Spec{}, 0.02); err == nil {
		t.Error("disabled spec accepted")
	}
}
