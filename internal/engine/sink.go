package engine

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
)

// Result is one successful cell as delivered to sinks.
type Result struct {
	// Index is the cell's position in plan order.
	Index int
	Cell  Cell
	// Key is the cell's content-hash identity (the checkpoint/memo key).
	Key checkpoint.Key
	// Report is the simulation outcome.
	Report sim.RunReport
	// Resumed marks a result replayed from a checkpoint journal;
	// Memoized one served from the engine's run memo.
	Resumed  bool
	Memoized bool
}

// Sink consumes an execution's successful results. Emit is called once
// per result, in plan order; Flush once after the last Emit, even when
// the plan aborted early (sinks then hold the healthy prefix).
// Emissions happen on the Execute goroutine, so sinks need no locking.
type Sink interface {
	Emit(Result) error
	Flush() error
}

// Collector is the in-memory sink the experiments package uses: it
// indexes reports by machine label and app, and keeps the ordered
// result list for callers that need plan order.
type Collector struct {
	// ByMachine maps machine label -> app label -> report.
	ByMachine map[string]map[string]sim.RunReport
	// Results holds every emitted result in plan order.
	Results []Result
}

// NewCollector builds an empty collector.
func NewCollector() *Collector {
	return &Collector{ByMachine: map[string]map[string]sim.RunReport{}}
}

// Emit implements Sink.
func (c *Collector) Emit(r Result) error {
	byApp := c.ByMachine[r.Cell.Machine]
	if byApp == nil {
		byApp = map[string]sim.RunReport{}
		c.ByMachine[r.Cell.Machine] = byApp
	}
	byApp[r.Cell.App] = r.Report
	c.Results = append(c.Results, r)
	return nil
}

// Flush implements Sink.
func (c *Collector) Flush() error { return nil }

// csvHeader is the sweep CSV schema (one row per successful cell).
var csvHeader = []string{
	"machine", "app", "seed", "accesses",
	"ipc", "l2_missrate", "l2_kernel_share",
	"l2_read_j", "l2_write_j", "l2_leakage_j", "l2_refresh_j", "l2_total_j",
	"dram_reads", "dram_writes", "hierarchy_total_j",
	"l2_powered_bytes",
}

// CSV is the sweep-results sink behind cmd/mcsweep: a header plus one
// row per successful cell, in plan order, so identical plans produce
// byte-identical files regardless of worker count. The machine column
// carries the resolved config's name (not the plan label), matching
// what every sweep CSV has always shown.
type CSV struct {
	w      *csv.Writer
	header bool
}

// NewCSV builds a CSV sink writing to w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: csv.NewWriter(w)} }

// writeHeader emits the header once.
func (s *CSV) writeHeader() error {
	if s.header {
		return nil
	}
	s.header = true
	return s.w.Write(csvHeader)
}

// Emit implements Sink.
func (s *CSV) Emit(r Result) error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	return s.w.Write(csvRow(r.Cell.Config.Name, r.Cell.App, r.Cell.Seed, r.Report))
}

// Flush implements Sink: the header is written even for a plan with no
// successful cells, so an empty sweep still leaves a parseable file.
func (s *CSV) Flush() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	s.w.Flush()
	return s.w.Error()
}

// csvRow renders one successful cell's CSV record.
func csvRow(machine, app string, seed uint64, rep sim.RunReport) []string {
	bd := rep.Energy.L2
	return []string{
		machine, app, strconv.FormatUint(seed, 10),
		strconv.FormatUint(rep.CPU.Accesses, 10),
		fmt.Sprintf("%.6f", rep.IPC()),
		fmt.Sprintf("%.6f", rep.L2.MissRate()),
		fmt.Sprintf("%.6f", rep.L2.KernelShare()),
		fmt.Sprintf("%.6g", bd.ReadJ),
		fmt.Sprintf("%.6g", bd.WriteJ),
		fmt.Sprintf("%.6g", bd.LeakageJ),
		fmt.Sprintf("%.6g", bd.RefreshJ),
		fmt.Sprintf("%.6g", bd.Total()),
		strconv.FormatUint(rep.DRAMReads, 10),
		strconv.FormatUint(rep.DRAMWrites, 10),
		fmt.Sprintf("%.6g", rep.Energy.TotalJ()),
		strconv.FormatUint(rep.L2PoweredBytes, 10),
	}
}

// CSVFile is the durable variant of CSV: rows accumulate in memory and
// Flush lands the complete file atomically (write temp, fsync, rename,
// fsync parent dir) via faultfs.WriteFileAtomic. The output path
// therefore never holds a half-written CSV — a reader sees either the
// previous file or the complete new one, even across a crash — and a
// disk-full or I/O error surfaces from Flush instead of leaving a
// truncated file behind. Front ends that write result CSVs (mcsweep -o,
// the daemon's result.csv) use this instead of an os.Create stream.
type CSVFile struct {
	fsys faultfs.FS
	path string
	buf  bytes.Buffer
	csv  *CSV
}

// NewCSVFile builds an atomic CSV sink targeting path.
func NewCSVFile(path string) *CSVFile { return NewCSVFileFS(faultfs.OS, path) }

// NewCSVFileFS is NewCSVFile over an injectable filesystem.
func NewCSVFileFS(fsys faultfs.FS, path string) *CSVFile {
	c := &CSVFile{fsys: fsys, path: path}
	c.csv = NewCSV(&c.buf)
	return c
}

// Emit implements Sink.
func (c *CSVFile) Emit(r Result) error { return c.csv.Emit(r) }

// Flush implements Sink: the buffered rows (header included, even for
// an empty plan) become the file in one atomic, durable swap.
func (c *CSVFile) Flush() error {
	if err := c.csv.Flush(); err != nil {
		return err
	}
	return faultfs.WriteFileAtomic(c.fsys, c.path, func(w io.Writer) error {
		_, err := w.Write(c.buf.Bytes())
		return err
	})
}

// Table renders an execution into a report.Table — the quick-look sink
// for interactive front ends: one row per successful cell with the
// headline metrics.
type Table struct {
	tb *report.Table
}

// NewTable builds a table sink with the given title.
func NewTable(title string) *Table {
	return &Table{tb: report.NewTable(title,
		"machine", "app", "seed", "IPC", "L2 miss rate", "L2 energy (J)", "total energy (J)")}
}

// Emit implements Sink.
func (t *Table) Emit(r Result) error {
	t.tb.AddRow(
		r.Cell.Config.Name, r.Cell.App, strconv.FormatUint(r.Cell.Seed, 10),
		fmt.Sprintf("%.4f", r.Report.IPC()),
		report.Pct(r.Report.L2.MissRate()),
		report.Joules(r.Report.Energy.L2.Total()),
		report.Joules(r.Report.Energy.TotalJ()),
	)
	return nil
}

// Flush implements Sink.
func (t *Table) Flush() error { return nil }

// Table returns the rendered table.
func (t *Table) Table() *report.Table { return t.tb }
