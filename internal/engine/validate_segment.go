package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mobilecache/internal/sim"
)

// SegmentMachineError is one machine's segmented-vs-serial comparison,
// aggregated over every (app, seed) cell of the validation plan.
type SegmentMachineError struct {
	Machine string
	// Serial / Segmented L2 miss rates (aggregate misses over
	// aggregate accesses) and total energies (joules, summed over
	// cells).
	SerialMissRate    float64
	SegmentedMissRate float64
	SerialEnergyJ     float64
	SegmentedEnergyJ  float64
	// MissRateRelErr and EnergyRelErr are |segmented-serial|/serial
	// (0 when the serial denominator is 0).
	MissRateRelErr float64
	EnergyRelErr   float64
}

// SegmentValidation is the outcome of one segmented-vs-serial stitch
// audit: per-machine relative errors of the headline metrics plus the
// wall-clock of both arms. Wall-clock is informative, not a controlled
// benchmark — memo hits make an arm nearly free, and on a machine with
// few cores the segment workers have nowhere to spread.
type SegmentValidation struct {
	Plan      sim.SegmentPlan
	Tolerance float64
	Machines  []SegmentMachineError
	// SerialWall and SegmentedWall time the two Execute arms.
	SerialWall    time.Duration
	SegmentedWall time.Duration
}

// Speedup is the serial arm's wall-clock over the segmented arm's.
func (v SegmentValidation) Speedup() float64 {
	if v.SegmentedWall <= 0 {
		return 0
	}
	return float64(v.SerialWall) / float64(v.SegmentedWall)
}

// Err reports the machines breaching the tolerance, nil when all are
// within it.
func (v SegmentValidation) Err() error {
	var bad []string
	for _, m := range v.Machines {
		if m.MissRateRelErr > v.Tolerance || m.EnergyRelErr > v.Tolerance {
			bad = append(bad, fmt.Sprintf("%s (miss rate %.2f%%, energy %.2f%%)",
				m.Machine, 100*m.MissRateRelErr, 100*m.EnergyRelErr))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("engine: segmented replay (%d segments, warmup %d) exceeds %.1f%% relative error on: %s",
		v.Plan.Segments, v.Plan.Warmup, 100*v.Tolerance, strings.Join(bad, ", "))
}

// ValidateSegmented runs the plan twice — serial and segmented under
// seg — and aggregates per-machine relative errors of the two headline
// metrics (L2 miss rate, total energy). The returned error covers
// execution failures only; tolerance breaches are reported by the
// validation's Err so callers decide whether they are fatal. Both arms
// share the engine's trace arena, and their content keys differ by
// construction, so the arms can never serve each other's memo entries.
// With seg.Warmup < 0 (exact full-prefix mode) the audit doubles as the
// equivalence gate: any nonzero miss-rate error is a stitching bug.
func (e *Engine) ValidateSegmented(ctx context.Context, plan Plan, seg sim.SegmentPlan, tol float64) (SegmentValidation, error) {
	v := SegmentValidation{Plan: seg.Norm(), Tolerance: tol}
	if err := seg.Validate(); err != nil {
		return v, err
	}
	if !seg.Enabled() {
		return v, fmt.Errorf("engine: segment validation needs >= 2 segments, got %d", seg.Segments)
	}
	if plan.Warmup > 0 || plan.Sample.Norm().Enabled() {
		return v, fmt.Errorf("engine: segment validation plans must be cold and unsampled")
	}

	type agg struct {
		accesses, misses uint64
		energyJ          float64
	}
	runArm := func(opt ExecOptions) (map[string]*agg, []string, time.Duration, error) {
		col := NewCollector()
		start := time.Now()
		sum, err := e.Execute(ctx, plan, opt, col)
		wall := time.Since(start)
		if err != nil {
			return nil, nil, wall, err
		}
		if n := len(sum.Manifest.Failed); n > 0 {
			return nil, nil, wall, fmt.Errorf("engine: %d cells failed during segment validation", n)
		}
		aggs := make(map[string]*agg)
		var order []string
		for _, r := range col.Results {
			a := aggs[r.Cell.Machine]
			if a == nil {
				a = &agg{}
				aggs[r.Cell.Machine] = a
				order = append(order, r.Cell.Machine)
			}
			a.accesses += r.Report.L2.TotalAccesses()
			a.misses += r.Report.L2.TotalMisses()
			a.energyJ += r.Report.Energy.TotalJ()
		}
		return aggs, order, wall, nil
	}

	serial, order, serialWall, err := runArm(ExecOptions{})
	if err != nil {
		return v, err
	}
	v.SerialWall = serialWall
	// SegmentForce: the audit must measure the stitching machinery
	// itself — letting the serial auto-fallback replace the segmented
	// arm would validate nothing (both arms identical, zero error).
	segmented, _, segmentedWall, err := runArm(ExecOptions{SegmentWorkers: v.Plan.Segments, SegmentWarmup: v.Plan.Warmup, SegmentForce: true})
	if err != nil {
		return v, err
	}
	v.SegmentedWall = segmentedWall

	missRate := func(a *agg) float64 {
		if a.accesses == 0 {
			return 0
		}
		return float64(a.misses) / float64(a.accesses)
	}
	for _, machine := range order {
		s, g := serial[machine], segmented[machine]
		if g == nil {
			return v, fmt.Errorf("engine: machine %s missing from segmented arm", machine)
		}
		m := SegmentMachineError{
			Machine:           machine,
			SerialMissRate:    missRate(s),
			SegmentedMissRate: missRate(g),
			SerialEnergyJ:     s.energyJ,
			SegmentedEnergyJ:  g.energyJ,
		}
		m.MissRateRelErr = relErr(m.SegmentedMissRate, m.SerialMissRate)
		m.EnergyRelErr = relErr(m.SegmentedEnergyJ, m.SerialEnergyJ)
		v.Machines = append(v.Machines, m)
	}
	return v, nil
}
