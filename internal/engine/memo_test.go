package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// TestMemoContentHashNoStaleness is the regression test for the bug
// the engine memo fixes: the old experiments run-cache keyed on names,
// so a machine config or app profile modified under an unchanged name
// was served a stale report. The memo keys on the content hash, so
// the perturbed inputs must produce a genuinely different report.
func TestMemoContentHashNoStaleness(t *testing.T) {
	eng := New(Config{})
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[0]
	cell := Cell{Machine: cfg.Name, Config: cfg, App: prof.Name, Profile: prof, Seed: 1}
	base, err := eng.RunOne(context.Background(), cell, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Same names, different config content: halve the L2 ways (deep
	// copy — Machine holds its segments by pointer).
	smaller := cfg
	seg := *cfg.Unified
	seg.Ways /= 2
	smaller.Unified = &seg
	got, err := eng.RunOne(context.Background(), Cell{
		Machine: cfg.Name, Config: smaller, App: prof.Name, Profile: prof, Seed: 1,
	}, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(got, base) {
		t.Fatal("modified config under the same name was served the stale cached report")
	}
	want, err := sim.RunWorkload(smaller, prof, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("modified-config report diverges from direct simulation")
	}

	// Same names, different profile content: shift the kernel share.
	hotKernel := prof
	hotKernel.KernelShare = prof.KernelShare + 0.2
	got2, err := eng.RunOne(context.Background(), Cell{
		Machine: cfg.Name, Config: cfg, App: prof.Name, Profile: hotKernel, Seed: 1,
	}, 5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(got2, base) {
		t.Fatal("modified profile under the same name was served the stale cached report")
	}
	if eng.memo.len() != 3 {
		t.Fatalf("memo holds %d entries, want 3 distinct content hashes", eng.memo.len())
	}
}

// TestMemoBounded: the memo is an LRU with a hard capacity; filling it
// past capacity evicts the least recently used key rather than growing.
// A single stripe pins the exact global-LRU order the pre-shard memo
// had; TestMemoShardedBound covers the striped capacity split.
func TestMemoBounded(t *testing.T) {
	m := newMemoSharded(3, 1)
	key := func(i int) [32]byte {
		var k [32]byte
		k[0] = byte(i)
		return k
	}
	rep := func(i int) sim.RunReport {
		return sim.RunReport{Machine: fmt.Sprintf("m%d", i)}
	}
	for i := 0; i < 5; i++ {
		m.add(key(i), rep(i))
	}
	if m.len() != 3 {
		t.Fatalf("memo grew to %d entries past capacity 3", m.len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := m.get(key(i)); ok {
			t.Errorf("key %d should have been evicted", i)
		}
	}
	for i := 2; i < 5; i++ {
		if r, ok := m.get(key(i)); !ok || r.Machine != fmt.Sprintf("m%d", i) {
			t.Errorf("key %d missing or wrong after fill", i)
		}
	}
}

// TestMemoLRUTouchOnGet: a get refreshes recency, changing which key
// the next insertion evicts.
func TestMemoLRUTouchOnGet(t *testing.T) {
	m := newMemoSharded(2, 1)
	var a, b, c [32]byte
	a[0], b[0], c[0] = 1, 2, 3
	m.add(a, sim.RunReport{Machine: "a"})
	m.add(b, sim.RunReport{Machine: "b"})
	if _, ok := m.get(a); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	m.add(c, sim.RunReport{Machine: "c"}) // evicts b
	if _, ok := m.get(b); ok {
		t.Error("b should have been evicted after a was touched")
	}
	if _, ok := m.get(a); !ok {
		t.Error("a should have survived")
	}
}

// TestMemoDisabled: negative capacity turns memoization off entirely.
func TestMemoDisabled(t *testing.T) {
	m := newMemo(-1)
	var k [32]byte
	m.add(k, sim.RunReport{Machine: "x"})
	if _, ok := m.get(k); ok {
		t.Fatal("disabled memo returned a hit")
	}
	if m.len() != 0 {
		t.Fatalf("disabled memo holds %d entries", m.len())
	}

	eng := New(Config{MemoCapacity: -1})
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	prof := workload.Profiles()[0]
	cell := Cell{Machine: cfg.Name, Config: cfg, App: prof.Name, Profile: prof, Seed: 1}
	if _, err := eng.RunOne(context.Background(), cell, 2000, 0); err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Execute(context.Background(),
		Plan{Cells: []Cell{cell}, Accesses: 2000}, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Memoized != 0 {
		t.Fatal("memo-disabled engine reported a memo hit")
	}
}

// TestMemoDefaultCapacity: zero means the default, not unbounded and
// not disabled.
func TestMemoDefaultCapacity(t *testing.T) {
	if m := newMemo(0); m.cap != DefaultMemoCapacity {
		t.Fatalf("newMemo(0).cap = %d, want %d", m.cap, DefaultMemoCapacity)
	}
}

// TestMemoDuplicates: two workers racing one cell both simulate and
// both add; the second add must collapse onto the incumbent and be
// counted, so lookup/entry arithmetic reconciles in /metrics.
func TestMemoDuplicates(t *testing.T) {
	m := newMemo(8)
	var k [32]byte
	k[0] = 1
	m.add(k, sim.RunReport{Machine: "first"})
	m.add(k, sim.RunReport{Machine: "second"})
	st := m.stats()
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d after duplicate add, want 1", st.Entries)
	}
	if r, ok := m.get(k); !ok || r.Machine != "first" {
		t.Fatalf("duplicate add replaced the incumbent: %+v ok=%v", r, ok)
	}
}

// TestMemoShardedBound: with the default stripe count the capacity is
// split across shards; total entries never exceed the capacity and the
// stats aggregate stays coherent with the per-shard occupancy.
func TestMemoShardedBound(t *testing.T) {
	const capacity = 64
	m := newMemo(capacity)
	key := func(i int) [32]byte {
		var k [32]byte
		k[0], k[1], k[2] = byte(i), byte(i>>8), byte(i>>16)
		return k
	}
	for i := 0; i < 10*capacity; i++ {
		m.add(key(i), sim.RunReport{})
	}
	st := m.stats()
	if st.Entries > capacity {
		t.Fatalf("memo holds %d entries past capacity %d", st.Entries, capacity)
	}
	if st.Shards < 1 || st.MaxShardEntries < st.MinShardEntries {
		t.Fatalf("shard occupancy incoherent: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("%d adds into capacity %d evicted nothing", 10*capacity, capacity)
	}
}

// TestMemoStatsConcurrent is the -race snapshot check for the sharded
// memo: lookups and adds from many goroutines with Stats() scraped
// throughout; every snapshot keeps the capacity bound and monotone
// counters, and the quiescent totals reconcile exactly.
func TestMemoStatsConcurrent(t *testing.T) {
	const (
		workers  = 8
		rounds   = 1500
		distinct = 48
		capacity = 32
	)
	m := newMemo(capacity)
	key := func(i int) [32]byte {
		var k [32]byte
		k[0], k[1] = byte(i), byte(i>>8)
		return k
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		var last MemoStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := m.stats()
			if st.Entries > capacity {
				t.Errorf("snapshot holds %d entries past capacity %d", st.Entries, capacity)
			}
			if st.Hits < last.Hits || st.Misses < last.Misses || st.Evictions < last.Evictions {
				t.Errorf("counter went backwards: %+v then %+v", last, st)
			}
			last = st
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := key((w*rounds + r) % distinct)
				if _, ok := m.get(k); !ok {
					m.add(k, sim.RunReport{})
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	st := m.stats()
	if got := st.Hits + st.Misses; got != workers*rounds {
		t.Fatalf("hits %d + misses %d = %d, want %d lookups", st.Hits, st.Misses, got, workers*rounds)
	}
	if adds := st.Misses - st.Duplicates; adds != st.Evictions+uint64(st.Entries) {
		t.Fatalf("adds %d != evictions %d + entries %d", adds, st.Evictions, st.Entries)
	}
}
