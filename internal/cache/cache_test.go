package cache

import (
	"testing"
	"testing/quick"

	"mobilecache/internal/trace"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return c
}

func smallCfg() Config {
	return Config{Name: "t", SizeBytes: 4 * 1024, Ways: 4, BlockBytes: 64, Policy: LRU}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Name: "w0", SizeBytes: 4096, Ways: 0, BlockBytes: 64},
		{Name: "w65", SizeBytes: 65 * 64 * 2, Ways: 65, BlockBytes: 64},
		{Name: "b0", SizeBytes: 4096, Ways: 4, BlockBytes: 0},
		{Name: "b63", SizeBytes: 4096, Ways: 4, BlockBytes: 63},
		{Name: "s0", SizeBytes: 0, Ways: 4, BlockBytes: 64},
		{Name: "odd", SizeBytes: 4096 + 64, Ways: 4, BlockBytes: 64},
		{Name: "np2", SizeBytes: 3 * 4 * 64, Ways: 4, BlockBytes: 64}, // 3 sets
		{Name: "pol", SizeBytes: 4096, Ways: 4, BlockBytes: 64, Policy: PolicyKind(99)},
	}
	for _, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %s accepted, want error", cfg.Name)
		}
	}
}

func TestConfigSets(t *testing.T) {
	cfg := smallCfg() // 4KB / (4*64) = 16 sets
	if got := cfg.Sets(); got != 16 {
		t.Fatalf("sets = %d, want 16", got)
	}
}

func TestBasicHitMiss(t *testing.T) {
	c := mustNew(t, smallCfg())
	r := c.Access(0x1000, false, trace.User, 1)
	if r.Hit {
		t.Fatal("cold access hit")
	}
	r = c.Access(0x1000, false, trace.User, 2)
	if !r.Hit {
		t.Fatal("second access missed")
	}
	// Same block, different offset -> hit.
	r = c.Access(0x1038, false, trace.User, 3)
	if !r.Hit {
		t.Fatal("same-block access missed")
	}
	st := c.Stats()
	if st.Accesses[trace.User] != 3 || st.Hits[trace.User] != 2 || st.Misses[trace.User] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, smallCfg())  // 16 sets, 4 ways
	setStride := uint64(16 * 64) // same set every stride
	// Fill 4 ways of set 0.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false, trace.User, i)
	}
	// Touch block 0 to make block 1 the LRU.
	c.Access(0, false, trace.User, 10)
	// Fill a 5th block; it must evict block 1.
	r := c.Access(4*setStride, false, trace.User, 11)
	if !r.Evicted {
		t.Fatal("full set fill did not evict")
	}
	if r.EvictedAddr != setStride {
		t.Fatalf("evicted %#x, want %#x (the LRU)", r.EvictedAddr, setStride)
	}
	// Block 0 must still be present.
	if _, _, ok := c.Probe(0); !ok {
		t.Fatal("recently used block was evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, smallCfg())
	setStride := uint64(16 * 64)
	c.Access(0, true, trace.User, 1) // dirty fill
	for i := uint64(1); i < 5; i++ { // evict it
		c.Access(i*setStride, false, trace.User, i+1)
	}
	st := c.Stats()
	if st.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", st.Writebacks)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestStoreHitMarksDirty(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false, trace.User, 1)
	c.Access(0x40, true, trace.User, 2)
	set, way, ok := c.Probe(0x40)
	if !ok {
		t.Fatal("block missing")
	}
	if !c.Meta(set, way).Dirty {
		t.Fatal("store hit did not mark line dirty")
	}
}

func TestInterferenceAccounting(t *testing.T) {
	c := mustNew(t, smallCfg())
	setStride := uint64(16 * 64)
	// User fills all 4 ways of set 0.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false, trace.User, i)
	}
	// Kernel allocates into the same set -> evicts a user block.
	r := c.Access(100*setStride, false, trace.Kernel, 10)
	if !r.Evicted || !r.Interference {
		t.Fatalf("cross-domain eviction not flagged: %+v", r)
	}
	if c.Stats().InterferenceEvictions != 1 {
		t.Fatalf("interference evictions = %d, want 1", c.Stats().InterferenceEvictions)
	}
	// Kernel evicting kernel is not interference.
	for i := uint64(101); i < 105; i++ {
		c.Access(i*setStride, false, trace.Kernel, i)
	}
	st := c.Stats()
	if st.InterferenceEvictions >= st.Evictions {
		t.Fatalf("all evictions flagged as interference: %+v", st)
	}
}

func TestDomainMaskPartitioning(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.SetDomainMask(trace.User, 0b0011)
	c.SetDomainMask(trace.Kernel, 0b1100)
	setStride := uint64(16 * 64)
	for i := uint64(0); i < 8; i++ {
		c.Access(i*setStride, false, trace.User, i)
		c.Access((100+i)*setStride, false, trace.Kernel, i)
	}
	// With disjoint masks there can be no interference evictions.
	if n := c.Stats().InterferenceEvictions; n != 0 {
		t.Fatalf("partitioned cache had %d interference evictions", n)
	}
	// Each domain's blocks only in its ways.
	c.VisitValid(func(_, way int, meta *BlockMeta) {
		if meta.Domain == trace.User && way > 1 {
			t.Fatalf("user block in way %d outside mask", way)
		}
		if meta.Domain == trace.Kernel && way < 2 {
			t.Fatalf("kernel block in way %d outside mask", way)
		}
	})
}

func TestSetEnabledMaskGatesWays(t *testing.T) {
	c := mustNew(t, smallCfg())
	setStride := uint64(16 * 64)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false, trace.User, i)
	}
	// Gate ways 2,3: their contents must be flushed first by callers;
	// Probe must not hit in gated ways regardless.
	c.FlushWays(0b1100, 10, nil)
	c.SetEnabledMask(0b0011)
	if c.EnabledWays() != 2 {
		t.Fatalf("enabled ways = %d, want 2", c.EnabledWays())
	}
	hits := 0
	for i := uint64(0); i < 4; i++ {
		if _, _, ok := c.Probe(i * setStride); ok {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("probes hit %d blocks after gating, want 2", hits)
	}
	// Domain masks clipped to enabled ways.
	if c.DomainMask(trace.User)&^c.EnabledMask() != 0 {
		t.Fatal("domain mask extends into gated ways")
	}
}

func TestSetEnabledMaskPanics(t *testing.T) {
	c := mustNew(t, smallCfg())
	for _, mask := range []uint64{0, 1 << 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetEnabledMask(%#x) did not panic", mask)
				}
			}()
			c.SetEnabledMask(mask)
		}()
	}
}

func TestSetDomainMaskPanicsWhenEmpty(t *testing.T) {
	c := mustNew(t, smallCfg())
	defer func() {
		if recover() == nil {
			t.Error("empty domain mask accepted")
		}
	}()
	c.SetDomainMask(trace.User, 0)
}

func TestFlushWaysWritesBackDirty(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, true, trace.User, 1)
	c.Access(0x80, false, trace.User, 2)
	var wb []uint64
	n := c.FlushWays(allWays(4), 3, func(addr uint64) { wb = append(wb, addr) })
	if n != 2 {
		t.Fatalf("flushed %d lines, want 2", n)
	}
	if len(wb) != 1 || wb[0] != 0x40 {
		t.Fatalf("writebacks = %#v, want [0x40]", wb)
	}
	if c.ValidLines() != 0 {
		t.Fatal("lines remain after flush")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, true, trace.User, 1)
	set, way, ok := c.Probe(0x40)
	if !ok {
		t.Fatal("fill missing")
	}
	dirty, addr, ok := c.Invalidate(set, way, 2, false)
	if !ok || !dirty || addr != 0x40 {
		t.Fatalf("invalidate = (%v,%#x,%v)", dirty, addr, ok)
	}
	if _, _, ok := c.Probe(0x40); ok {
		t.Fatal("block survives invalidation")
	}
	// Second invalidate reports not-ok.
	if _, _, ok := c.Invalidate(set, way, 3, false); ok {
		t.Fatal("double invalidate reported ok")
	}
}

func TestMarkExpiredCountsExpiry(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false, trace.User, 1)
	set, way, _ := c.Probe(0x40)
	if _, _, ok := c.MarkExpired(set, way, 5); !ok {
		t.Fatal("expire failed")
	}
	if c.Stats().ExpiryInvalidations != 1 {
		t.Fatalf("expiry invalidations = %d, want 1", c.Stats().ExpiryInvalidations)
	}
}

func TestRewriteUpdatesWrittenAt(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false, trace.User, 1)
	set, way, _ := c.Probe(0x40)
	if !c.Rewrite(set, way, 99) {
		t.Fatal("rewrite failed on valid line")
	}
	if got := c.Meta(set, way).WrittenAt; got != 99 {
		t.Fatalf("WrittenAt = %d, want 99", got)
	}
	c.Invalidate(set, way, 100, false)
	if c.Rewrite(set, way, 101) {
		t.Fatal("rewrite succeeded on invalid line")
	}
}

func TestLifetimeAndWriteIntervalStats(t *testing.T) {
	c := mustNew(t, smallCfg())
	setStride := uint64(16 * 64)
	c.Access(0, true, trace.User, 0)
	c.Access(0, true, trace.User, 100) // write interval 100
	for i := uint64(1); i < 5; i++ {   // evict block 0 at t=200+
		c.Access(i*setStride, false, trace.User, 200+i)
	}
	lt := c.Stats().Lifetimes[trace.User]
	if lt.Total != 1 {
		t.Fatalf("lifetime samples = %d, want 1", lt.Total)
	}
	wi := c.Stats().WriteIntervals[trace.User]
	if wi.Total != 1 {
		t.Fatalf("write interval samples = %d, want 1", wi.Total)
	}
	if wi.CDFBelow(6) != 0 || wi.CDFBelow(7) != 1 { // 100 is in [64,128)
		t.Fatalf("write interval CDF wrong: below64=%g below128=%g", wi.CDFBelow(6), wi.CDFBelow(7))
	}
}

func TestMissRateHelpers(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false, trace.User, 1)
	c.Access(0x40, false, trace.User, 2)
	c.Access(0x1040, false, trace.Kernel, 3)
	st := c.Stats()
	if st.TotalAccesses() != 3 || st.TotalMisses() != 2 {
		t.Fatalf("totals = %d/%d", st.TotalAccesses(), st.TotalMisses())
	}
	if mr := st.MissRate(); mr < 0.66 || mr > 0.67 {
		t.Fatalf("miss rate = %g, want 2/3", mr)
	}
	if st.DomainMissRate(trace.User) != 0.5 {
		t.Fatalf("user miss rate = %g, want 0.5", st.DomainMissRate(trace.User))
	}
	if st.DomainMissRate(trace.Kernel) != 1 {
		t.Fatalf("kernel miss rate = %g, want 1", st.DomainMissRate(trace.Kernel))
	}
}

func TestOccupancyByDomain(t *testing.T) {
	c := mustNew(t, smallCfg())
	c.Access(0x40, false, trace.User, 1)
	c.Access(0x80, false, trace.User, 2)
	c.Access(0xffff0000, false, trace.Kernel, 3)
	occ := c.OccupancyByDomain()
	if occ[trace.User] != 2 || occ[trace.Kernel] != 1 {
		t.Fatalf("occupancy = %v", occ)
	}
	if c.ValidLines() != 3 {
		t.Fatalf("valid lines = %d, want 3", c.ValidLines())
	}
}

func TestBlockAddr(t *testing.T) {
	c := mustNew(t, smallCfg())
	if got := c.BlockAddr(0x1234); got != 0x1200 {
		t.Fatalf("BlockAddr(0x1234) = %#x, want 0x1200", got)
	}
}

// Property: a cache never reports more hits than accesses, and
// hits+misses == accesses, under arbitrary access streams.
func TestAccountingInvariant(t *testing.T) {
	f := func(addrs []uint32, writes []bool, domBits []bool) bool {
		c, err := New(smallCfg())
		if err != nil {
			return false
		}
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			d := trace.User
			if i < len(domBits) && domBits[i] {
				d = trace.Kernel
			}
			c.Access(uint64(a), w, d, uint64(i))
		}
		st := c.Stats()
		for _, d := range []trace.Domain{trace.User, trace.Kernel} {
			if st.Hits[d]+st.Misses[d] != st.Accesses[d] {
				return false
			}
		}
		return st.TotalAccesses() == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: valid lines never exceed enabled capacity, and every
// block's domain respects its allocation mask.
func TestCapacityAndMaskInvariant(t *testing.T) {
	f := func(addrs []uint32, domBits []bool) bool {
		c, err := New(smallCfg())
		if err != nil {
			return false
		}
		c.SetDomainMask(trace.User, 0b0111)
		c.SetDomainMask(trace.Kernel, 0b1000)
		for i, a := range addrs {
			d := trace.User
			if i < len(domBits) && domBits[i] {
				d = trace.Kernel
			}
			c.Access(uint64(a), false, d, uint64(i))
		}
		if c.ValidLines() > c.Sets()*c.EnabledWays() {
			return false
		}
		ok := true
		c.VisitValid(func(_, way int, meta *BlockMeta) {
			if c.DomainMask(meta.Domain)&(1<<uint(way)) == 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: repeating the same trace twice on a big-enough cache makes
// the second pass all hits (LRU cache with capacity >= footprint).
func TestSecondPassHits(t *testing.T) {
	c := mustNew(t, Config{Name: "big", SizeBytes: 64 * 1024, Ways: 8, BlockBytes: 64, Policy: LRU})
	addrs := make([]uint64, 0, 256)
	for i := uint64(0); i < 256; i++ {
		addrs = append(addrs, i*64)
	}
	now := uint64(0)
	for _, a := range addrs {
		now++
		c.Access(a, false, trace.User, now)
	}
	before := c.Stats().Hits[trace.User]
	for _, a := range addrs {
		now++
		r := c.Access(a, false, trace.User, now)
		if !r.Hit {
			t.Fatalf("second pass missed %#x", a)
		}
	}
	if c.Stats().Hits[trace.User] != before+uint64(len(addrs)) {
		t.Fatal("hit accounting wrong on second pass")
	}
}

func TestAllPoliciesRunAndStayConsistent(t *testing.T) {
	for pol := PolicyKind(0); pol < numPolicies; pol++ {
		cfg := smallCfg()
		cfg.Policy = pol
		c := mustNew(t, cfg)
		for i := uint64(0); i < 5000; i++ {
			addr := (i * 2654435761) % (64 * 1024)
			d := trace.User
			if i%3 == 0 {
				d = trace.Kernel
			}
			c.Access(addr, i%5 == 0, d, i)
		}
		st := c.Stats()
		if st.TotalAccesses() != 5000 {
			t.Fatalf("%v: accesses = %d", pol, st.TotalAccesses())
		}
		if st.Hits[trace.User]+st.Misses[trace.User] != st.Accesses[trace.User] {
			t.Fatalf("%v: inconsistent user accounting", pol)
		}
		if c.ValidLines() > c.Sets()*c.Config().Ways {
			t.Fatalf("%v: overfull cache", pol)
		}
	}
}

func TestPolicyNamesRoundTrip(t *testing.T) {
	for pol := PolicyKind(0); pol < numPolicies; pol++ {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	if PolicyKind(99).Valid() {
		t.Fatal("policy 99 claims valid")
	}
	if PolicyKind(99).String() != "policy(99)" {
		t.Fatal("invalid policy string wrong")
	}
}

func TestLRUBeatsRandomOnLoopingWorkload(t *testing.T) {
	// Sanity: on a working set slightly exceeding capacity accessed
	// cyclically plus a hot subset, LRU and Random should both work but
	// neither should crash; on a hot-set heavy stream LRU must be at
	// least as good as FIFO. This guards against policies being wired
	// to the wrong update hooks.
	run := func(pol PolicyKind) float64 {
		cfg := Config{Name: "p", SizeBytes: 8 * 1024, Ways: 4, BlockBytes: 64, Policy: pol}
		c := mustNew(t, cfg)
		now := uint64(0)
		for rep := 0; rep < 200; rep++ {
			for i := uint64(0); i < 16; i++ { // hot set fits easily
				now++
				c.Access(i*64, false, trace.User, now)
			}
			now++
			c.Access(uint64(0x10000+rep*64), false, trace.User, now) // cold stream
		}
		return c.Stats().MissRate()
	}
	lru, fifo := run(LRU), run(FIFO)
	if lru > fifo+1e-9 {
		t.Fatalf("LRU miss rate %g worse than FIFO %g on LRU-friendly stream", lru, fifo)
	}
}
