package cache

import (
	"math/bits"

	"mobilecache/internal/sample"
	"mobilecache/internal/trace"
)

// ShadowTags is an auxiliary tag directory used by the dynamic
// partition controller to estimate each domain's miss curve online.
// It mirrors the tag array of a cache at full associativity for a
// sampled subset of sets (1 in 2^SampleShift), tracking for each hit
// the LRU stack position it hit at. Utility-based partitioning then
// reads off how many extra hits each additional way would buy.
//
// Shadow tags hold no data and are cheap: the paper-style controller
// needs only hit counters per stack position plus a miss counter.
type ShadowTags struct {
	ways        int
	sets        int
	sampleShift uint
	blockShift  uint
	indexMask   uint64

	// sel, when non-nil, is the set-sampling selector of the cache this
	// directory shadows. Only the selector's live sets receive traffic,
	// so the monitor's 1-in-2^sampleShift subsampling must be taken
	// from the live sets, not the nominal geometry — otherwise most
	// monitored sets would be permanently silent and the miss curves
	// the partition controller steers by would be starved of signal.
	sel  *sample.Selector
	nsel uint64

	// entries[sampledSet] is an LRU-ordered tag list, most recent
	// first. Length <= ways.
	entries [][]uint64

	hitsAtPos []uint64
	misses    uint64
	accesses  uint64
}

// NewShadowTags mirrors a cache of the given geometry. sampleShift
// selects 1-in-2^shift set sampling (0 = every set). The mirrored
// associativity may exceed the real cache's so the controller can see
// the utility of growing beyond the current allocation.
func NewShadowTags(sets, ways, blockBytes int, sampleShift uint) *ShadowTags {
	return NewShadowTagsSampled(sets, ways, blockBytes, sampleShift, nil)
}

// NewShadowTagsSampled mirrors a set-sampled cache: sel names the live
// sets (nil = all), and the monitor's 1-in-2^sampleShift subsampling
// is applied to the live sets in their dense rank order. With a
// factor-1 selector (or nil) this reduces exactly to NewShadowTags.
func NewShadowTagsSampled(sets, ways, blockBytes int, sampleShift uint, sel *sample.Selector) *ShadowTags {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: shadow tags need a power-of-two set count")
	}
	if ways <= 0 {
		panic("cache: shadow tags need positive ways")
	}
	if blockBytes <= 0 || blockBytes&(blockBytes-1) != 0 {
		panic("cache: shadow tags need power-of-two block size")
	}
	liveSets := sets
	if sel != nil {
		if sets < sample.NumGroups {
			panic("cache: sampled shadow tags need at least one set per selection group")
		}
		// Power of two: sets>>GroupBits and the selected-group count
		// both are, so live-set subsampling composes with the shift.
		liveSets = sel.LiveSets(sets)
	}
	sampled := liveSets >> sampleShift
	if sampled == 0 {
		sampled = 1
		sampleShift = uint(bits.Len(uint(liveSets)) - 1)
	}
	st := &ShadowTags{
		ways:        ways,
		sets:        sets,
		sampleShift: sampleShift,
		blockShift:  uint(bits.TrailingZeros(uint(blockBytes))),
		indexMask:   uint64(sets - 1),
		entries:     make([][]uint64, sampled),
		hitsAtPos:   make([]uint64, ways),
	}
	if sel != nil {
		st.sel = sel
		st.nsel = uint64(sel.Groups())
	}
	for i := range st.entries {
		st.entries[i] = make([]uint64, 0, ways)
	}
	return st
}

// liveIndex maps a set onto its dense position among the selector's
// live sets, or -1 when the set receives no traffic. Without a
// selector the live sets are all sets and the mapping is the identity.
func (st *ShadowTags) liveIndex(set uint64) int64 {
	if st.sel == nil {
		return int64(set)
	}
	r := st.sel.GroupRank(int(set) & (sample.NumGroups - 1))
	if r < 0 {
		return -1
	}
	return int64(set>>sample.GroupBits)*int64(st.nsel) + int64(r)
}

// Sampled reports whether addr maps to a sampled set.
func (st *ShadowTags) Sampled(addr uint64) bool {
	set := (addr >> st.blockShift) & st.indexMask
	live := st.liveIndex(set)
	return live >= 0 && uint64(live)&((1<<st.sampleShift)-1) == 0
}

// Access records one access. Non-sampled sets are ignored.
func (st *ShadowTags) Access(addr uint64) {
	b := addr >> st.blockShift
	set := b & st.indexMask
	live := st.liveIndex(set)
	if live < 0 || uint64(live)&((1<<st.sampleShift)-1) != 0 {
		return
	}
	st.accesses++
	idx := int(uint64(live) >> st.sampleShift)
	tags := st.entries[idx]
	tag := b >> uint(bits.Len64(st.indexMask))
	for pos, t := range tags {
		if t == tag {
			st.hitsAtPos[pos]++
			// Move to front.
			copy(tags[1:pos+1], tags[:pos])
			tags[0] = tag
			return
		}
	}
	st.misses++
	// Insert at MRU, evicting beyond the mirrored associativity.
	if len(tags) < st.ways {
		tags = append(tags, 0)
	}
	copy(tags[1:], tags)
	tags[0] = tag
	st.entries[idx] = tags
}

// Accesses reports sampled accesses since the last Reset.
func (st *ShadowTags) Accesses() uint64 { return st.accesses }

// HitsAtOrBefore returns the sampled hits that a cache with the given
// number of ways would have captured.
func (st *ShadowTags) HitsAtOrBefore(ways int) uint64 {
	if ways > st.ways {
		ways = st.ways
	}
	var h uint64
	for i := 0; i < ways; i++ {
		h += st.hitsAtPos[i]
	}
	return h
}

// MissesWith estimates the sampled misses a cache with the given
// number of ways would incur: compulsory misses plus hits beyond the
// allocation.
func (st *ShadowTags) MissesWith(ways int) uint64 {
	return st.accesses - st.HitsAtOrBefore(ways)
}

// MissCurve returns MissesWith(w) for w = 0..ways.
func (st *ShadowTags) MissCurve() []uint64 {
	curve := make([]uint64, st.ways+1)
	for w := 0; w <= st.ways; w++ {
		curve[w] = st.MissesWith(w)
	}
	return curve
}

// Halve decays all counters by half, keeping history while letting the
// controller track phase changes. Tag contents are preserved.
func (st *ShadowTags) Halve() {
	st.accesses /= 2
	st.misses /= 2
	for i := range st.hitsAtPos {
		st.hitsAtPos[i] /= 2
	}
}

// Reset clears counters and tag contents.
func (st *ShadowTags) Reset() {
	st.accesses = 0
	st.misses = 0
	for i := range st.hitsAtPos {
		st.hitsAtPos[i] = 0
	}
	for i := range st.entries {
		st.entries[i] = st.entries[i][:0]
	}
}

// DomainMonitors pairs one shadow directory per domain, the unit the
// dynamic controller consumes.
type DomainMonitors struct {
	Mon [trace.NumDomains]*ShadowTags
}

// NewDomainMonitors builds per-domain shadow directories with identical
// geometry.
func NewDomainMonitors(sets, ways, blockBytes int, sampleShift uint) *DomainMonitors {
	return NewDomainMonitorsSampled(sets, ways, blockBytes, sampleShift, nil)
}

// NewDomainMonitorsSampled builds per-domain shadow directories that
// follow a set-sampled cache's live sets (nil sel = all sets).
func NewDomainMonitorsSampled(sets, ways, blockBytes int, sampleShift uint, sel *sample.Selector) *DomainMonitors {
	return &DomainMonitors{
		Mon: [trace.NumDomains]*ShadowTags{
			trace.User:   NewShadowTagsSampled(sets, ways, blockBytes, sampleShift, sel),
			trace.Kernel: NewShadowTagsSampled(sets, ways, blockBytes, sampleShift, sel),
		},
	}
}

// Access routes an access to its domain's monitor.
func (dm *DomainMonitors) Access(addr uint64, d trace.Domain) {
	dm.Mon[d].Access(addr)
}

// Halve decays both monitors.
func (dm *DomainMonitors) Halve() {
	dm.Mon[trace.User].Halve()
	dm.Mon[trace.Kernel].Halve()
}
