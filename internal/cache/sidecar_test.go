package cache

import (
	"testing"

	"mobilecache/internal/trace"
)

// The tags and seqs sidecars are redundant dense copies of per-line
// state kept purely for the replay hot paths: Lookup scans tags
// instead of the 64-byte line structs, and the LRU/FIFO victim scan
// reads seqs the same way. Redundant state invites divergence, so this
// property test drives a cache through randomized mixes of every
// mutation the sidecars must track — accesses (read and write, both
// domains), way gating with flushes, targeted invalidations, expiry
// marks and Snapshot/Restore round-trips — and re-checks the mirror
// invariant throughout, on every replacement policy:
//
//	lines[i].valid  ⇒  tags[i] == lines[i].tag && seqs[i] == lines[i].lruSeq
//	!lines[i].valid ⇒  tags[i] == invalidTag  && seqs[i] == 0
//
// plus: the frameTagsPad sentinel entries past the last set are
// invalidTag forever (the frame kernel's fixed-width scan reads them).

// checkSidecars asserts the mirror invariant over the whole array.
func checkSidecars(t *testing.T, c *Cache, when string) {
	t.Helper()
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid {
			if c.tags[i] != ln.tag {
				t.Fatalf("%s: tags[%d] = %#x, line holds %#x", when, i, c.tags[i], ln.tag)
			}
			if c.seqs[i] != ln.lruSeq {
				t.Fatalf("%s: seqs[%d] = %d, line holds %d", when, i, c.seqs[i], ln.lruSeq)
			}
		} else {
			if c.tags[i] != invalidTag {
				t.Fatalf("%s: tags[%d] = %#x for invalid line, want invalidTag", when, i, c.tags[i])
			}
			if c.seqs[i] != 0 {
				t.Fatalf("%s: seqs[%d] = %d for invalid line, want 0", when, i, c.seqs[i])
			}
		}
	}
	for i := len(c.lines); i < len(c.tags); i++ {
		if c.tags[i] != invalidTag {
			t.Fatalf("%s: sentinel tags[%d] = %#x, want invalidTag", when, i, c.tags[i])
		}
	}
}

func TestSidecarsMirrorLines(t *testing.T) {
	for pol := PolicyKind(0); pol < numPolicies; pol++ {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			cfg := Config{Name: "prop-" + pol.String(), SizeBytes: 8 * 1024, Ways: 4, BlockBytes: 64, Policy: pol}
			c := mustNew(t, cfg)
			ways := uint64(1)<<uint(cfg.Ways) - 1

			state := uint64(0x6a09e667f3bcc908) ^ uint64(pol)<<32
			next := func() uint64 {
				state ^= state >> 12
				state ^= state << 25
				state ^= state >> 27
				return state * 0x2545f4914f6cdd1d
			}

			var snap State
			var haveSnap bool
			now := uint64(0)
			for step := 0; step < 30_000; step++ {
				now++
				r := next()
				switch r % 100 {
				case 0, 1, 2: // re-gate ways (flush what is about to power off)
					mask := (r >> 8) & ways
					if mask == 0 {
						mask = 1
					}
					c.FlushWays(^mask&ways, now, nil)
					c.SetEnabledMask(mask)
					// SetEnabledMask clips domain masks and can zero them;
					// re-assert both, as the partition controllers do.
					c.SetDomainMask(0, mask)
					c.SetDomainMask(1, mask)
					checkSidecars(t, c, "after gating")
				case 3, 4: // restore full power
					c.SetEnabledMask(ways)
					c.SetDomainMask(0, ways)
					c.SetDomainMask(1, ways)
				case 5, 6: // targeted invalidation
					set := int(r>>8) % c.Sets()
					way := int(r>>32) % cfg.Ways
					c.Invalidate(set, way, now, true)
					checkSidecars(t, c, "after invalidate")
				case 7: // retention expiry
					set := int(r>>8) % c.Sets()
					way := int(r>>32) % cfg.Ways
					c.MarkExpired(set, way, now)
				case 8: // snapshot
					snap = c.Snapshot()
					haveSnap = true
				case 9: // rewind
					if haveSnap {
						c.Restore(snap)
						checkSidecars(t, c, "after restore")
					}
				default: // access: bounded tag space so hits, misses and evictions all occur
					addr := (r >> 8) % (1 << 16) * 64
					dom := trace.Domain(r >> 40 & 1)
					c.Access(addr, r>>48&1 == 0, dom, now)
				}
				if step%997 == 0 {
					checkSidecars(t, c, "periodic")
				}
			}
			checkSidecars(t, c, "final")
			if c.ValidLines() == 0 {
				t.Fatal("walk never populated the cache")
			}
		})
	}
}
