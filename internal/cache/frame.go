package cache

import "mobilecache/internal/trace"

// This file is the cache-side surface of the frame-batched replay
// kernel (mem.AccessFrame). The kernel scans the tags sidecar directly
// and performs the hit bookkeeping through the specialized entry
// points below, so the per-hit cost is the tag row scan plus a handful
// of stores — no Lookup call, no Result struct, no per-access stats
// writes (the kernel batches access/hit counts and flushes them once
// per frame via AddFrameCounts). Everything here is LRU-specific and
// gated by FrameKernelOK: a cache with gated ways or a non-LRU policy
// is served by the general Lookup path instead.

// Geometry exports the cache's (set, tag) address decomposition for
// the trace-side frame precompute.
func (c *Cache) Geometry() trace.SetTagGeom {
	return trace.SetTagGeom{BlockShift: c.blockShift, IndexMask: c.indexMask, TagShift: c.tagShift}
}

// frameTagsPad is the number of permanent invalidTag sentinels kept
// past the last set in the tags sidecar: the kernel's hit scan loads a
// fixed FrameScanWays-wide window starting at any row base, so the
// last row needs FrameScanWays-1 readable entries beyond it (one more
// keeps the arithmetic obviously safe). Sentinels are invalidTag and
// are never written — Fill and Invalidate only touch indexes below
// sets*ways — and a window entry past the row's real ways is masked
// out of the match bits before it can alias the next set.
const frameTagsPad = FrameScanWays

// FrameScanWays is the fixed width of the kernel's tag-row scan.
const FrameScanWays = 4

// FrameKernelOK reports whether the frame kernel's specialized hit
// path is valid for this cache: every way powered, LRU replacement,
// and associativity within the fixed scan width. All three are the
// permanent state of every L1 the simulator builds; the check guards
// against future organizations silently taking a path whose semantics
// would no longer match Lookup.
func (c *Cache) FrameKernelOK() bool {
	return c.allOn && c.policy == LRU && c.ways <= FrameScanWays
}

// FrameTags exposes the tags sidecar for the kernel's hit scan. A
// sidecar match is a hint, not a hit: the caller must confirm it with
// VerifyHit before touching anything (see the invalidTag comment).
func (c *Cache) FrameTags() []uint64 { return c.tags }

// Ways reports the associativity (the sidecar row stride).
func (c *Cache) Ways() int { return c.ways }

// VerifyHit confirms a sidecar tag match against the authoritative
// line: lines[i] is valid and holds tag.
func (c *Cache) VerifyHit(i int, tag uint64) bool {
	ln := &c.lines[i]
	return ln.valid && ln.tag == tag
}

// TouchReadHitLRU is the read-hit bookkeeping of Lookup's LRU fast
// path for a verified hit on lines[i]: bump the replacement clock and
// refresh the line's recency metadata.
func (c *Cache) TouchReadHitLRU(i int, now uint64) {
	c.seq++
	ln := &c.lines[i]
	ln.lruSeq = c.seq
	c.seqs[i] = c.seq
	ln.meta.LastTouch = now
	ln.meta.RefreshCount = 0
}

// TouchWriteHitLRU is touchLine's LRU write-hit path for a verified
// hit on lines[i]: recency update plus write-interval stats, dirty
// marking and the per-domain write counter, in touchLine's exact
// order.
func (c *Cache) TouchWriteHitLRU(i int, dom trace.Domain, now uint64) {
	c.seq++
	ln := &c.lines[i]
	ln.lruSeq = c.seq
	c.seqs[i] = c.seq
	ln.meta.LastTouch = now
	ln.meta.RefreshCount = 0
	if ln.meta.WrittenAt <= now {
		c.stats.WriteIntervals[ln.meta.Domain].Observe(now - ln.meta.WrittenAt)
	}
	ln.meta.Dirty = true
	ln.meta.WrittenAt = now
	c.stats.Writes[dom]++
}

// AddFrameCounts flushes a frame's batched access/hit tallies into the
// stats counters (misses are the difference). Nothing reads the
// counters mid-frame — the miss path goes through Fill, which keeps
// its own counters — so deferring the adds to the frame boundary is
// observation-equivalent to Lookup's per-access increments.
func (c *Cache) AddFrameCounts(acc, hits *[trace.NumDomains]uint64) {
	for d := range acc {
		c.stats.Accesses[d] += acc[d]
		c.stats.Hits[d] += hits[d]
		c.stats.Misses[d] += acc[d] - hits[d]
	}
}
