package cache

import (
	"fmt"
	"math/bits"

	"mobilecache/internal/trace"
)

// This file implements value-semantics snapshot/restore of a cache
// array: State captures everything Lookup/Fill/victim/Stats read or
// write — lines (tags, validity, replacement state, block metadata),
// the tags sidecar, the replacement sequence counter, the power and
// domain way masks, and the statistics including the embedded
// histograms. A State is an independent deep copy: it can be restored
// any number of times, into the cache it came from or any cache of
// identical geometry, and restoring replays from that exact point
// bit-identically (determinism is pinned by the sim-level
// snapshot/resume equivalence tests).

// State is a copyable snapshot of a Cache's mutable state. Obtain one
// from Snapshot; apply it with Restore. The zero State is invalid.
type State struct {
	lines       []line
	tags        []uint64
	seq         uint64
	allOn       bool
	enabledMask uint64
	domainMask  [trace.NumDomains]uint64
	stats       Stats
}

// cloneStats deep-copies Stats, including the four histogram pointers
// (the only indirection in the struct).
func cloneStats(s *Stats) Stats {
	out := *s
	for d := range out.Lifetimes {
		if s.Lifetimes[d] != nil {
			h := *s.Lifetimes[d]
			out.Lifetimes[d] = &h
		}
		if s.WriteIntervals[d] != nil {
			h := *s.WriteIntervals[d]
			out.WriteIntervals[d] = &h
		}
	}
	return out
}

// Snapshot captures the cache's complete mutable state.
func (c *Cache) Snapshot() State {
	return State{
		lines:       append([]line(nil), c.lines...),
		tags:        append([]uint64(nil), c.tags...),
		seq:         c.seq,
		allOn:       c.allOn,
		enabledMask: c.enabledMask,
		domainMask:  c.domainMask,
		stats:       cloneStats(&c.stats),
	}
}

// Restore rewinds the cache to a snapshot taken from a cache of the
// same geometry. The state is copied in, not aliased, so the same
// State may be restored repeatedly. It panics on a geometry mismatch
// (snapshots are not portable across configurations).
func (c *Cache) Restore(s State) {
	if len(s.lines) != len(c.lines) || len(s.tags) != len(c.tags) {
		panic(fmt.Sprintf("cache %s: restoring snapshot of different geometry (%d lines, have %d)",
			c.cfg.Name, len(s.lines), len(c.lines)))
	}
	copy(c.lines, s.lines)
	copy(c.tags, s.tags)
	// The sequence sidecar is derived state — rebuild it from the
	// restored lines rather than widening the snapshot schema.
	for i := range c.lines {
		if c.lines[i].valid {
			c.seqs[i] = c.lines[i].lruSeq
		} else {
			c.seqs[i] = 0
		}
	}
	c.seq = s.seq
	c.allOn = s.allOn
	c.enabledMask = s.enabledMask
	c.domainMask = s.domainMask
	c.stats = cloneStats(&s.stats)
}

// ShadowState is a copyable snapshot of a ShadowTags directory's
// mutable state: the LRU tag stacks of the sampled sets plus the
// stack-position hit counters. Geometry and the sampling selector are
// construction-time constants and are not captured.
type ShadowState struct {
	entries   [][]uint64
	hitsAtPos []uint64
	misses    uint64
	accesses  uint64
}

// Snapshot captures the directory's complete mutable state.
func (st *ShadowTags) Snapshot() ShadowState {
	entries := make([][]uint64, len(st.entries))
	for i, e := range st.entries {
		entries[i] = append([]uint64(nil), e...)
	}
	return ShadowState{
		entries:   entries,
		hitsAtPos: append([]uint64(nil), st.hitsAtPos...),
		misses:    st.misses,
		accesses:  st.accesses,
	}
}

// Restore rewinds the directory to a snapshot from an identical
// geometry. The state is copied in, so it may be restored repeatedly.
func (st *ShadowTags) Restore(s ShadowState) {
	if len(s.entries) != len(st.entries) || len(s.hitsAtPos) != len(st.hitsAtPos) {
		panic("cache: restoring shadow-tags snapshot of different geometry")
	}
	for i, e := range s.entries {
		st.entries[i] = append(st.entries[i][:0], e...)
	}
	copy(st.hitsAtPos, s.hitsAtPos)
	st.misses = s.misses
	st.accesses = s.accesses
}

// MonitorsState snapshots a DomainMonitors pair.
type MonitorsState struct {
	Mon [trace.NumDomains]ShadowState
}

// Snapshot captures both domains' directories.
func (dm *DomainMonitors) Snapshot() MonitorsState {
	return MonitorsState{Mon: [trace.NumDomains]ShadowState{
		trace.User:   dm.Mon[trace.User].Snapshot(),
		trace.Kernel: dm.Mon[trace.Kernel].Snapshot(),
	}}
}

// Restore rewinds both domains' directories.
func (dm *DomainMonitors) Restore(s MonitorsState) {
	dm.Mon[trace.User].Restore(s.Mon[trace.User])
	dm.Mon[trace.Kernel].Restore(s.Mon[trace.Kernel])
}

// Index exposes the set/tag decomposition of an address — the pure
// function of (addr, geometry) the frame-precompute stage evaluates
// ahead of the lookup loop.
func (c *Cache) Index(addr uint64) (set int, tag uint64) { return c.index(addr) }

// LookupAt is Lookup with the set/tag decomposition already done (by
// Index over a precomputed frame). It is otherwise identical: counts
// the access, touches on hit, and leaves fills to the caller.
func (c *Cache) LookupAt(set int, tag uint64, write bool, dom trace.Domain, now uint64) (way int, hit bool) {
	base := set * c.ways
	c.stats.Accesses[dom]++
	if c.allOn {
		tags := c.tags[base : base+c.ways]
		for w := range tags {
			if tags[w] == tag {
				if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
					c.stats.Hits[dom]++
					if c.policy == LRU && !write {
						c.seq++
						ln.lruSeq = c.seq
						c.seqs[base+w] = c.seq
						ln.meta.LastTouch = now
						ln.meta.RefreshCount = 0
					} else {
						c.touchLine(ln, set, w, write, dom, now)
					}
					return w, true
				}
			}
		}
		c.stats.Misses[dom]++
		return -1, false
	}
	for m := c.enabledMask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
				c.stats.Hits[dom]++
				if c.policy == LRU && !write {
					c.seq++
					ln.lruSeq = c.seq
					c.seqs[base+w] = c.seq
					ln.meta.LastTouch = now
					ln.meta.RefreshCount = 0
				} else {
					c.touchLine(ln, set, w, write, dom, now)
				}
				return w, true
			}
		}
	}
	c.stats.Misses[dom]++
	return -1, false
}
