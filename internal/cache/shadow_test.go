package cache

import (
	"testing"
	"testing/quick"

	"mobilecache/internal/sample"
	"mobilecache/internal/trace"
)

func TestShadowTagsBasics(t *testing.T) {
	st := NewShadowTags(16, 4, 64, 0)
	// Two accesses to the same block in the same set: first misses,
	// second hits at stack position 0.
	st.Access(0x0)
	st.Access(0x0)
	if st.Accesses() != 2 {
		t.Fatalf("accesses = %d, want 2", st.Accesses())
	}
	if st.MissesWith(4) != 1 {
		t.Fatalf("misses(4) = %d, want 1", st.MissesWith(4))
	}
	if st.HitsAtOrBefore(1) != 1 {
		t.Fatalf("hits@<=1 = %d, want 1", st.HitsAtOrBefore(1))
	}
}

func TestShadowTagsStackPositions(t *testing.T) {
	st := NewShadowTags(16, 4, 64, 0)
	stride := uint64(16 * 64) // same set
	// Access A, B, C then A again: A hits at stack position 2.
	st.Access(0 * stride)
	st.Access(1 * stride)
	st.Access(2 * stride)
	st.Access(0 * stride)
	if st.HitsAtOrBefore(2) != 0 {
		t.Fatalf("hits with 2 ways = %d, want 0", st.HitsAtOrBefore(2))
	}
	if st.HitsAtOrBefore(3) != 1 {
		t.Fatalf("hits with 3 ways = %d, want 1", st.HitsAtOrBefore(3))
	}
	// Miss curve must be monotone non-increasing.
	curve := st.MissCurve()
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Fatalf("miss curve not monotone: %v", curve)
		}
	}
	if curve[0] != st.Accesses() {
		t.Fatalf("misses with 0 ways = %d, want all %d", curve[0], st.Accesses())
	}
}

func TestShadowTagsEvictBeyondWays(t *testing.T) {
	st := NewShadowTags(16, 2, 64, 0)
	stride := uint64(16 * 64)
	st.Access(0 * stride)
	st.Access(1 * stride)
	st.Access(2 * stride) // evicts tag 0
	st.Access(0 * stride) // miss again
	if st.MissesWith(2) != 4 {
		t.Fatalf("misses = %d, want 4 (capacity eviction)", st.MissesWith(2))
	}
}

func TestShadowTagsSampling(t *testing.T) {
	st := NewShadowTags(16, 4, 64, 2) // sample 1 in 4 sets
	for set := uint64(0); set < 16; set++ {
		st.Access(set * 64)
	}
	if st.Accesses() != 4 {
		t.Fatalf("sampled accesses = %d, want 4", st.Accesses())
	}
	if !st.Sampled(0) {
		t.Fatal("set 0 must be sampled")
	}
	if st.Sampled(64) {
		t.Fatal("set 1 must not be sampled at shift 2")
	}
}

func TestShadowTagsHalveAndReset(t *testing.T) {
	st := NewShadowTags(16, 4, 64, 0)
	for i := 0; i < 10; i++ {
		st.Access(0)
	}
	st.Halve()
	if st.Accesses() != 5 {
		t.Fatalf("halved accesses = %d, want 5", st.Accesses())
	}
	st.Reset()
	if st.Accesses() != 0 || st.MissesWith(4) != 0 {
		t.Fatal("reset did not clear counters")
	}
	// After reset the tags are gone: next access misses.
	st.Access(0)
	if st.MissesWith(4) != 1 {
		t.Fatal("reset did not clear tags")
	}
}

func TestShadowTagsPanicsOnBadGeometry(t *testing.T) {
	cases := []struct{ sets, ways, block int }{
		{0, 4, 64}, {3, 4, 64}, {16, 0, 64}, {16, 4, 0}, {16, 4, 48},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewShadowTags(%d,%d,%d) did not panic", tc.sets, tc.ways, tc.block)
				}
			}()
			NewShadowTags(tc.sets, tc.ways, tc.block, 0)
		}()
	}
}

// Property: the shadow directory's miss estimate at full associativity
// matches a real LRU cache of the same geometry (no sampling).
func TestShadowTagsMatchRealLRUCache(t *testing.T) {
	f := func(addrs []uint16) bool {
		const sets, ways, block = 8, 4, 64
		st := NewShadowTags(sets, ways, block, 0)
		c, err := New(Config{Name: "ref", SizeBytes: sets * ways * block, Ways: ways, BlockBytes: block, Policy: LRU})
		if err != nil {
			return false
		}
		realMisses := uint64(0)
		for i, a := range addrs {
			addr := uint64(a)
			st.Access(addr)
			r := c.Access(addr, false, trace.User, uint64(i))
			if !r.Hit {
				realMisses++
			}
		}
		return st.MissesWith(ways) == realMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the miss curve is monotone non-increasing in ways for any
// access pattern (more capacity never hurts under LRU stack inclusion).
func TestMissCurveMonotone(t *testing.T) {
	f := func(addrs []uint32) bool {
		st := NewShadowTags(16, 8, 64, 0)
		for _, a := range addrs {
			st.Access(uint64(a))
		}
		curve := st.MissCurve()
		for i := 1; i < len(curve); i++ {
			if curve[i] > curve[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainMonitors(t *testing.T) {
	dm := NewDomainMonitors(16, 4, 64, 0)
	dm.Access(0x0, trace.User)
	dm.Access(0x0, trace.User)
	dm.Access(0x40, trace.Kernel)
	if dm.Mon[trace.User].Accesses() != 2 {
		t.Fatalf("user monitor accesses = %d, want 2", dm.Mon[trace.User].Accesses())
	}
	if dm.Mon[trace.Kernel].Accesses() != 1 {
		t.Fatalf("kernel monitor accesses = %d, want 1", dm.Mon[trace.Kernel].Accesses())
	}
	dm.Halve()
	if dm.Mon[trace.User].Accesses() != 1 {
		t.Fatal("halve did not propagate")
	}
}

func TestLog2Hist(t *testing.T) {
	var h Log2Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(100)
	if h.Total != 3 {
		t.Fatalf("total = %d, want 3", h.Total)
	}
	if h.Mean() <= 0 {
		t.Fatal("mean should be positive")
	}
	if h.CDFBelow(39) != 1 {
		t.Fatalf("full CDF = %g, want 1", h.CDFBelow(39))
	}
	var empty Log2Hist
	if empty.Mean() != 0 || empty.CDFBelow(5) != 0 {
		t.Fatal("empty hist should report zeros")
	}
}

// Regression: in sampled mode the monitor subsampling must follow the
// live (selected) sets, not the nominal geometry. Under hash selection
// the old predicate set&(2^shift-1)==0 leaves most monitored sets in
// never-selected groups — permanently silent — starving the dynamic
// controller's miss curves. The sampled constructor instead monitors
// 1-in-2^shift of the live sets exactly.
func TestShadowTagsSampledFollowsLiveSets(t *testing.T) {
	const sets, ways, block = 1024, 8, 64
	const shift = 3
	for _, hash := range []bool{false, true} {
		sel, err := sample.NewSelector(sample.Spec{Factor: 8, Hash: hash}, block)
		if err != nil {
			t.Fatal(err)
		}
		st := NewShadowTagsSampled(sets, ways, block, shift, sel)
		liveSets := sel.LiveSets(sets)
		if got, want := len(st.entries), liveSets>>shift; got != want {
			t.Fatalf("hash %v: %d monitored sets allocated, want %d (liveSets %d >> %d)", hash, got, want, liveSets, shift)
		}
		// One access to every live set: exactly liveSets>>shift land in
		// monitored sets, and every monitored set sees its access (no
		// silent monitors).
		for set := uint64(0); set < sets; set++ {
			if sel.SelectsGroup(int(set) & (sample.NumGroups - 1)) {
				st.Access(set * block)
			}
		}
		if got, want := st.Accesses(), uint64(liveSets>>shift); got != want {
			t.Fatalf("hash %v: monitors observed %d accesses, want %d", hash, got, want)
		}
		for i, tags := range st.entries {
			if len(tags) != 1 {
				t.Fatalf("hash %v: monitored set %d holds %d tags, want 1 (silent monitor)", hash, i, len(tags))
			}
		}
		// Traffic to non-live sets is ignored even if it arrives.
		before := st.Accesses()
		for set := uint64(0); set < sets; set++ {
			if !sel.SelectsGroup(int(set) & (sample.NumGroups - 1)) {
				st.Access(set * block)
			}
		}
		if st.Accesses() != before {
			t.Fatalf("hash %v: non-live traffic was counted", hash)
		}
	}
}

// A factor-1 selector must reduce the sampled constructor to the plain
// one: identical counters and miss curves over an arbitrary stream.
func TestShadowTagsSampledFactorOneEquivalence(t *testing.T) {
	sel, err := sample.NewSelector(sample.Spec{Factor: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrs []uint32) bool {
		plain := NewShadowTags(128, 4, 64, 2)
		sampled := NewShadowTagsSampled(128, 4, 64, 2, sel)
		for _, a := range addrs {
			plain.Access(uint64(a))
			sampled.Access(uint64(a))
		}
		if plain.Accesses() != sampled.Accesses() {
			return false
		}
		pc, sc := plain.MissCurve(), sampled.MissCurve()
		for i := range pc {
			if pc[i] != sc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDomainMonitorsSampled(t *testing.T) {
	sel, err := sample.NewSelector(sample.Spec{Factor: 8, Hash: true}, 64)
	if err != nil {
		t.Fatal(err)
	}
	dm := NewDomainMonitorsSampled(1024, 8, 64, 3, sel)
	for _, d := range []trace.Domain{trace.User, trace.Kernel} {
		if dm.Mon[d].sel != sel {
			t.Fatalf("domain %v monitor not wired to selector", d)
		}
	}
	// Sampled shadow tags panic on geometries finer than the group count.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 64-set sampled shadow tags")
		}
	}()
	NewShadowTagsSampled(64, 4, 64, 0, sel)
}
