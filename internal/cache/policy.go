package cache

import "fmt"

// PolicyKind selects a replacement policy.
type PolicyKind uint8

const (
	// LRU is exact least-recently-used via sequence numbers.
	LRU PolicyKind = iota
	// TreePLRU approximates LRU with per-line hot bits (the common
	// hardware implementation for high associativity).
	TreePLRU
	// Random picks a deterministic pseudo-random victim.
	Random
	// FIFO evicts the oldest fill.
	FIFO
	// SRRIP is static re-reference interval prediction (2-bit RRPV).
	SRRIP
	numPolicies
)

// Valid reports whether k names a policy.
func (k PolicyKind) Valid() bool { return k < numPolicies }

// String returns the canonical lower-case policy name.
func (k PolicyKind) String() string {
	switch k {
	case LRU:
		return "lru"
	case TreePLRU:
		return "plru"
	case Random:
		return "random"
	case FIFO:
		return "fifo"
	case SRRIP:
		return "srrip"
	default:
		return fmt.Sprintf("policy(%d)", uint8(k))
	}
}

// ParsePolicy maps a name (as produced by String) to its PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) {
	for k := PolicyKind(0); k < numPolicies; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", name)
}
