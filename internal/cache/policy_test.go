package cache

import (
	"testing"

	"mobilecache/internal/trace"
)

// stride returns an address in set 0 of the small test cache with the
// given tag.
func set0Addr(tag uint64) uint64 { return tag * 16 * 64 }

func TestFIFOEvictsOldestFillNotLRU(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = FIFO
	c := mustNew(t, cfg)
	// Fill ways with tags 0..3, then touch tag 0 repeatedly: FIFO must
	// still evict tag 0 (oldest fill) on the next conflict, where LRU
	// would have evicted tag 1.
	for i := uint64(0); i < 4; i++ {
		c.Access(set0Addr(i), false, trace.User, i)
	}
	for i := uint64(0); i < 10; i++ {
		c.Access(set0Addr(0), false, trace.User, 10+i)
	}
	r := c.Access(set0Addr(4), false, trace.User, 100)
	if !r.Evicted || r.EvictedAddr != set0Addr(0) {
		t.Fatalf("FIFO evicted %#x, want the oldest fill %#x", r.EvictedAddr, set0Addr(0))
	}
}

func TestSRRIPPrefersLongRRPVVictim(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = SRRIP
	c := mustNew(t, cfg)
	// Fill 4 ways (all insert at RRPV=2); promote tags 0..2 via hits
	// (RRPV=0). Tag 3 stays at 2, so it must be the victim.
	for i := uint64(0); i < 4; i++ {
		c.Access(set0Addr(i), false, trace.User, i)
	}
	for i := uint64(0); i < 3; i++ {
		c.Access(set0Addr(i), false, trace.User, 10+i)
	}
	r := c.Access(set0Addr(4), false, trace.User, 100)
	if !r.Evicted || r.EvictedAddr != set0Addr(3) {
		t.Fatalf("SRRIP evicted %#x, want the never-reused %#x", r.EvictedAddr, set0Addr(3))
	}
}

func TestTreePLRUEvictsColdWay(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = TreePLRU
	c := mustNew(t, cfg)
	for i := uint64(0); i < 4; i++ {
		c.Access(set0Addr(i), false, trace.User, i)
	}
	// All ways are hot after fills -> hot bits cleared; touch 0..2.
	for i := uint64(0); i < 3; i++ {
		c.Access(set0Addr(i), false, trace.User, 10+i)
	}
	r := c.Access(set0Addr(4), false, trace.User, 100)
	if !r.Evicted || r.EvictedAddr != set0Addr(3) {
		t.Fatalf("PLRU evicted %#x, want the cold %#x", r.EvictedAddr, set0Addr(3))
	}
}

func TestRandomVictimStaysInMask(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = Random
	c := mustNew(t, cfg)
	c.SetDomainMask(trace.User, 0b0011)
	c.SetDomainMask(trace.Kernel, 0b1100)
	for i := uint64(0); i < 200; i++ {
		c.Access(set0Addr(i), false, trace.User, i)
	}
	// Only ways 0-1 may hold user blocks after all those evictions.
	c.VisitValid(func(_, way int, meta *BlockMeta) {
		if meta.Domain == trace.User && way > 1 {
			t.Fatalf("random policy placed a user block in way %d", way)
		}
	})
}

func TestPoliciesDifferOnAntagonisticPattern(t *testing.T) {
	// A scanning pattern slightly over capacity: LRU gets zero hits,
	// Random gets some. This pins down that the policies are actually
	// wired differently.
	run := func(pol PolicyKind) float64 {
		cfg := Config{Name: "p", SizeBytes: 4 * 1024, Ways: 4, BlockBytes: 64, Policy: pol}
		c := mustNew(t, cfg)
		now := uint64(0)
		// 5 blocks cycling in a 4-way set.
		for rep := 0; rep < 200; rep++ {
			for i := uint64(0); i < 5; i++ {
				now++
				c.Access(set0Addr(i), false, trace.User, now)
			}
		}
		return c.Stats().MissRate()
	}
	lru := run(LRU)
	random := run(Random)
	if lru < 0.99 {
		t.Fatalf("LRU on a cyclic over-capacity scan should thrash, got miss rate %g", lru)
	}
	if random >= lru {
		t.Fatalf("random (%g) should beat LRU (%g) on the antagonistic scan", random, lru)
	}
}
