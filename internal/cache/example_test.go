package cache_test

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/trace"
)

// Example demonstrates the basic access flow and the partitioning
// masks the paper's designs are built on.
func Example() {
	c, err := cache.New(cache.Config{
		Name: "L2", SizeBytes: 64 * 1024, Ways: 8, BlockBytes: 64, Policy: cache.LRU,
	})
	if err != nil {
		panic(err)
	}

	// Way-partition: user gets ways 0-5, kernel ways 6-7.
	c.SetDomainMask(trace.User, 0b00111111)
	c.SetDomainMask(trace.Kernel, 0b11000000)

	r := c.Access(0x1000, false, trace.User, 1)
	fmt.Println("first access hit:", r.Hit)
	r = c.Access(0x1000, true, trace.User, 2)
	fmt.Println("second access hit:", r.Hit)

	st := c.Stats()
	fmt.Printf("user accesses=%d hits=%d\n", st.Accesses[trace.User], st.Hits[trace.User])
	// Output:
	// first access hit: false
	// second access hit: true
	// user accesses=2 hits=1
}

// ExampleShadowTags shows the utility monitor behind the dynamic
// partition controller.
func ExampleShadowTags() {
	st := cache.NewShadowTags(64, 8, 64, 0)
	// Touch two same-set blocks, then re-touch the first: it hits at
	// stack position 1 (one distinct block accessed in between).
	st.Access(0x0000)
	st.Access(0x4000) // 0x4000/64 = block 256 -> set 0 as well
	st.Access(0x0000)
	fmt.Println("misses with 8 ways:", st.MissesWith(8))
	fmt.Println("hits captured by 2 ways:", st.HitsAtOrBefore(2))
	// Output:
	// misses with 8 ways: 2
	// hits captured by 2 ways: 1
}
