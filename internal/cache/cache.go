// Package cache implements the set-associative cache model underlying
// every L1 and L2 organization in the simulator. It supports the
// features the paper's designs need on top of a textbook cache:
//
//   - per-domain way masks, so a single array can be way-partitioned
//     between user and kernel blocks (dynamic partitioning);
//   - a global enabled-way mask, so unused ways can be power-gated and
//     their capacity excluded (dynamic downsizing);
//   - split probe/touch/fill entry points, so STT-RAM wrappers can
//     interpose retention-expiry checks between the tag match and the
//     data access;
//   - per-block metadata (fill time, last write time) feeding the
//     block-lifetime statistics that motivate multi-retention STT-RAM;
//   - interference accounting: evictions where the victim belongs to
//     the other domain, the effect static partitioning eliminates.
//
// Time is an opaque uint64 supplied by the caller (the simulator passes
// cycles); the cache never advances time itself.
package cache

import (
	"fmt"
	"math/bits"

	"mobilecache/internal/trace"
)

// Config describes one cache array.
type Config struct {
	// Name labels the cache in stats output (e.g. "L2-user").
	Name string
	// SizeBytes is the data capacity. Must be Ways*BlockBytes*2^k.
	SizeBytes uint64
	// Ways is the associativity (1..64).
	Ways int
	// BlockBytes is the line size; must be a power of two.
	BlockBytes int
	// Policy selects the replacement policy (default LRU).
	Policy PolicyKind
}

// Validate checks the geometry and reports a descriptive error.
func (c Config) Validate() error {
	if c.Ways < 1 || c.Ways > 64 {
		return fmt.Errorf("cache %s: ways %d outside 1..64", c.Name, c.Ways)
	}
	if c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	lineCap := uint64(c.Ways) * uint64(c.BlockBytes)
	if c.SizeBytes == 0 || c.SizeBytes%lineCap != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of ways*block (%d)", c.Name, c.SizeBytes, lineCap)
	}
	sets := c.SizeBytes / lineCap
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	if !c.Policy.Valid() {
		return fmt.Errorf("cache %s: unknown policy %d", c.Name, c.Policy)
	}
	return nil
}

// Sets computes the number of sets implied by the geometry.
func (c Config) Sets() int {
	return int(c.SizeBytes / (uint64(c.Ways) * uint64(c.BlockBytes)))
}

// BlockMeta is the externally visible per-line metadata. Controllers
// (refresh, repartitioning) read it; WrittenAt is also updated by
// refresh operations through Rewrite.
// BlockMeta fields are ordered widest-first so the struct packs tight;
// with the line wrapper below that keeps one way at exactly 64 bytes.
type BlockMeta struct {
	// Addr is the block-aligned address the line holds.
	Addr uint64
	// FilledAt is the time the line was brought in.
	FilledAt uint64
	// WrittenAt is the last time the physical cells were written:
	// fill, store, or refresh. STT-RAM retention counts from here.
	WrittenAt uint64
	// LastTouch is the last access (hit) time.
	LastTouch uint64
	// RefreshCount is the number of consecutive refreshes since the
	// line was last accessed; refresh controllers use it to stop
	// refreshing idle lines (the "dynamic refresh" scheme).
	RefreshCount uint32
	// Domain is the owner domain of the line.
	Domain trace.Domain
	// Dirty reports whether the line has unwritten-back stores.
	Dirty bool
}

// line packs to exactly 64 bytes — one host cache line per way — with
// the tag-match and replacement fields every probe and touch uses at
// the head of the struct.
type line struct {
	tag    uint64
	lruSeq uint64 // LRU: last-use sequence number; FIFO: fill sequence
	meta   BlockMeta
	valid  bool
	// replacement state
	rrpv    uint8 // SRRIP re-reference prediction value
	plruHot bool  // tree-PLRU approximation bit
}

// Stats aggregates cache event counters, split by domain where the
// paper's analysis needs it.
type Stats struct {
	Accesses   [trace.NumDomains]uint64
	Hits       [trace.NumDomains]uint64
	Misses     [trace.NumDomains]uint64
	Writes     [trace.NumDomains]uint64
	Evictions  uint64
	Writebacks uint64
	// InterferenceEvictions counts victims whose domain differed from
	// the domain of the block that replaced them — the cross-domain
	// thrashing static partitioning removes.
	InterferenceEvictions uint64
	// ExpiryInvalidations counts lines dropped because their STT-RAM
	// retention lapsed (driven by the sttram wrapper).
	ExpiryInvalidations uint64
	// Lifetimes records fill→evict distances of evicted lines.
	Lifetimes [trace.NumDomains]*Log2Hist
	// WriteIntervals records write→write distances on lines.
	WriteIntervals [trace.NumDomains]*Log2Hist
}

// Log2Hist is a tiny embedded log2 histogram; cache keeps its own to
// avoid an import cycle with stats consumers (and because these are on
// the hot path).
type Log2Hist struct {
	Bins  [40]uint64
	Total uint64
}

// Observe records a non-negative sample.
func (h *Log2Hist) Observe(x uint64) {
	h.Total++
	i := 0
	if x > 0 {
		i = bits.Len64(x) // 1 + floor(log2(x))
		if i >= len(h.Bins) {
			i = len(h.Bins) - 1
		}
	}
	h.Bins[i]++
}

// Mean returns the approximate mean using bucket midpoints.
func (h *Log2Hist) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	sum := 0.0
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		mid := 0.0
		if i > 0 {
			mid = float64(uint64(1)<<uint(i-1)) * 1.5
		}
		sum += mid * float64(c)
	}
	return sum / float64(h.Total)
}

// CDFBelow returns the fraction of samples below 2^exp.
func (h *Log2Hist) CDFBelow(exp int) float64 {
	if h.Total == 0 {
		return 0
	}
	var c uint64
	for i := 0; i <= exp && i < len(h.Bins); i++ {
		c += h.Bins[i]
	}
	return float64(c) / float64(h.Total)
}

// TotalAccesses sums accesses over both domains.
func (s *Stats) TotalAccesses() uint64 {
	return s.Accesses[trace.User] + s.Accesses[trace.Kernel]
}

// TotalMisses sums misses over both domains.
func (s *Stats) TotalMisses() uint64 {
	return s.Misses[trace.User] + s.Misses[trace.Kernel]
}

// MissRate is total misses over total accesses.
func (s *Stats) MissRate() float64 {
	a := s.TotalAccesses()
	if a == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(a)
}

// DomainMissRate is the miss rate of one domain's accesses.
func (s *Stats) DomainMissRate(d trace.Domain) float64 {
	if s.Accesses[d] == 0 {
		return 0
	}
	return float64(s.Misses[d]) / float64(s.Accesses[d])
}

// Cache is a single set-associative array.
type Cache struct {
	cfg        Config
	sets       int
	ways       int // == cfg.Ways, hoisted for the lookup path
	blockShift uint
	tagShift   uint
	indexMask  uint64
	lines      []line
	// tags mirrors lines[i].tag for valid lines (invalidTag otherwise)
	// in a dense array of its own: a whole set's tags share one host
	// cache line, so the per-way scan in Lookup/Probe stops striding
	// across the much larger line structs. Lines stay authoritative —
	// a tag match is verified against the line before it counts. The
	// array carries frameTagsPad permanent invalidTag entries past the
	// last set so the frame kernel can load a fixed-width window from
	// any row without a bounds branch (see frame.go).
	tags []uint64
	// seqs mirrors lines[i].lruSeq for valid lines (0 otherwise — a
	// valid line's sequence is always positive because the counter
	// pre-increments). The LRU/FIFO victim scan reads this dense array
	// instead of striding across the 64-byte line structs: a 16-way
	// row is two host cache lines here versus sixteen there, and the
	// 0-for-invalid sentinel folds the prefer-an-invalid-way rule into
	// the same min scan (an invalid way is the global minimum, and the
	// strict < keeps the lowest index on ties).
	seqs []uint64
	seq  uint64 // replacement sequence counter

	// allOn is true while every way is powered — the permanent state of
	// every cache except a power-gated dynamic partition. Lookup and
	// Probe then scan the set sequentially instead of walking the
	// enabled-way bitmask.
	allOn bool

	// enabledMask marks powered ways; domainMask[d] restricts where
	// domain d may allocate. A domain mask is always interpreted
	// through the enabled mask.
	enabledMask uint64
	domainMask  [trace.NumDomains]uint64

	stats  Stats
	policy PolicyKind
}

// Result describes what one access did.
type Result struct {
	Hit bool
	Set int
	Way int
	// Evicted is true when a valid victim was displaced by the fill.
	Evicted       bool
	EvictedDirty  bool
	EvictedAddr   uint64
	EvictedDomain trace.Domain
	// Interference is true when the victim belonged to the other domain.
	Interference bool
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		ways:       cfg.Ways,
		blockShift: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		tagShift:   uint(bits.Len64(uint64(sets - 1))),
		indexMask:  uint64(sets - 1),
		lines:      make([]line, sets*cfg.Ways),
		tags:       make([]uint64, sets*cfg.Ways+frameTagsPad),
		seqs:       make([]uint64, sets*cfg.Ways),
		policy:     cfg.Policy,
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.enabledMask = allWays(cfg.Ways)
	c.allOn = true
	c.domainMask[trace.User] = c.enabledMask
	c.domainMask[trace.Kernel] = c.enabledMask
	c.stats.Lifetimes[trace.User] = &Log2Hist{}
	c.stats.Lifetimes[trace.Kernel] = &Log2Hist{}
	c.stats.WriteIntervals[trace.User] = &Log2Hist{}
	c.stats.WriteIntervals[trace.Kernel] = &Log2Hist{}
	return c, nil
}

// invalidTag marks empty slots in the tags sidecar. A genuine tag may
// collide with it (an all-ones address), which is why a sidecar match
// is always re-verified against the line struct before it counts.
const invalidTag = ^uint64(0)

func allWays(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Config returns the construction config.
func (c *Cache) Config() Config { return c.cfg }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Stats exposes the counters; callers must treat it as read-only.
func (c *Cache) Stats() *Stats { return &c.stats }

// BlockAddr returns addr rounded down to its block base.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.BlockBytes) - 1)
}

func (c *Cache) index(addr uint64) (set int, tag uint64) {
	b := addr >> c.blockShift
	return int(b & c.indexMask), b >> c.tagShift
}

func (c *Cache) line(set, way int) *line {
	return &c.lines[set*c.cfg.Ways+way]
}

// SetEnabledMask powers exactly the ways in mask. Lines in disabled
// ways must be flushed by the caller first (see FlushWays); allocating
// domain masks are clipped to the new enabled set. It panics if mask
// selects ways beyond the associativity or disables every way.
func (c *Cache) SetEnabledMask(mask uint64) {
	if mask&^allWays(c.cfg.Ways) != 0 {
		panic(fmt.Sprintf("cache %s: enabled mask %#x exceeds %d ways", c.cfg.Name, mask, c.cfg.Ways))
	}
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: cannot disable every way", c.cfg.Name))
	}
	c.enabledMask = mask
	c.allOn = mask == allWays(c.cfg.Ways)
	for d := range c.domainMask {
		c.domainMask[d] &= mask
	}
}

// EnabledMask reports the powered ways.
func (c *Cache) EnabledMask() uint64 { return c.enabledMask }

// EnabledWays reports the number of powered ways.
func (c *Cache) EnabledWays() int { return bits.OnesCount64(c.enabledMask) }

// SetDomainMask restricts where domain d may allocate. The mask is
// clipped to enabled ways; a zero (post-clip) mask panics because the
// domain could never allocate.
func (c *Cache) SetDomainMask(d trace.Domain, mask uint64) {
	mask &= c.enabledMask
	if mask == 0 {
		panic(fmt.Sprintf("cache %s: domain %v allocation mask empty", c.cfg.Name, d))
	}
	c.domainMask[d] = mask
}

// DomainMask reports where domain d may allocate.
func (c *Cache) DomainMask(d trace.Domain) uint64 { return c.domainMask[d] }

// Probe looks up addr without side effects. Hits in disabled ways are
// not reported (the data is gone once a way is gated).
func (c *Cache) Probe(addr uint64) (set, way int, ok bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	if c.allOn {
		tags := c.tags[base : base+c.ways]
		for w := range tags {
			if tags[w] == tag {
				if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
					return set, w, true
				}
			}
		}
		return set, -1, false
	}
	for m := c.enabledMask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
				return set, w, true
			}
		}
	}
	return set, -1, false
}

// Meta returns the metadata of a valid line, or nil.
func (c *Cache) Meta(set, way int) *BlockMeta {
	ln := c.line(set, way)
	if !ln.valid {
		return nil
	}
	return &ln.meta
}

// Lookup is the fused hot-path entry point: Probe + CountAccess +
// Touch in one pass over the set, with a single index computation and
// line dereference. It allocates nothing (the cache benchmarks assert
// 0 allocs/op) — this is the call the hierarchy makes for every L1
// access. On a miss only the access/miss counters are updated; the
// caller decides whether to Fill.
func (c *Cache) Lookup(addr uint64, write bool, dom trace.Domain, now uint64) (set, way int, hit bool) {
	set, tag := c.index(addr)
	base := set * c.ways
	c.stats.Accesses[dom]++
	if c.allOn {
		tags := c.tags[base : base+c.ways]
		for w := range tags {
			if tags[w] == tag {
				if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
					c.stats.Hits[dom]++
					// The dominant case — a read hit under LRU — is
					// touchLine's fast path written out by hand; the
					// combined function is over the inlining budget and
					// this is the call made for every L1 hit.
					if c.policy == LRU && !write {
						c.seq++
						ln.lruSeq = c.seq
						c.seqs[base+w] = c.seq
						ln.meta.LastTouch = now
						ln.meta.RefreshCount = 0
					} else {
						c.touchLine(ln, set, w, write, dom, now)
					}
					return set, w, true
				}
			}
		}
		c.stats.Misses[dom]++
		return set, -1, false
	}
	for m := c.enabledMask; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == tag {
			if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
				c.stats.Hits[dom]++
				if c.policy == LRU && !write {
					c.seq++
					ln.lruSeq = c.seq
					c.seqs[base+w] = c.seq
					ln.meta.LastTouch = now
					ln.meta.RefreshCount = 0
				} else {
					c.touchLine(ln, set, w, write, dom, now)
				}
				return set, w, true
			}
		}
	}
	c.stats.Misses[dom]++
	return set, -1, false
}

// Touch performs the hit-path bookkeeping for a line found by Probe:
// replacement-state update, dirty marking and write-interval stats.
// The caller is responsible for counting the access via CountAccess.
func (c *Cache) Touch(set, way int, write bool, dom trace.Domain, now uint64) {
	c.touchLine(c.line(set, way), set, way, write, dom, now)
}

func (c *Cache) touchLine(ln *line, set, way int, write bool, dom trace.Domain, now uint64) {
	c.seq++
	switch c.policy {
	case LRU, FIFO: // FIFO does not update on hit
		if c.policy == LRU {
			ln.lruSeq = c.seq
			c.seqs[set*c.ways+way] = c.seq
		}
	case Random:
		// no state
	case SRRIP:
		ln.rrpv = 0
	case TreePLRU:
		ln.plruHot = true
		c.maybeClearHotBits(set, way)
	}
	ln.meta.LastTouch = now
	ln.meta.RefreshCount = 0
	if write {
		if ln.meta.WrittenAt <= now {
			c.stats.WriteIntervals[ln.meta.Domain].Observe(now - ln.meta.WrittenAt)
		}
		ln.meta.Dirty = true
		ln.meta.WrittenAt = now
		c.stats.Writes[dom]++
	}
}

// maybeClearHotBits implements bit-PLRU aging: when every enabled
// valid way is hot, all hot bits are cleared except the way that was
// just touched, which stays most-recently-used.
func (c *Cache) maybeClearHotBits(set, keepWay int) {
	for w := 0; w < c.cfg.Ways; w++ {
		if c.enabledMask&(1<<uint(w)) == 0 {
			continue
		}
		ln := c.line(set, w)
		if ln.valid && !ln.plruHot {
			return
		}
	}
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.line(set, w)
		if ln.valid && w != keepWay {
			ln.plruHot = false
		}
	}
}

// CountAccess records an access by domain d, and whether it hit.
func (c *Cache) CountAccess(d trace.Domain, hit bool) {
	c.stats.Accesses[d]++
	if hit {
		c.stats.Hits[d]++
	} else {
		c.stats.Misses[d]++
	}
}

// Fill allocates addr for domain dom, evicting a victim from dom's
// allowed ways if needed, and returns the eviction details.
func (c *Cache) Fill(addr uint64, write bool, dom trace.Domain, now uint64) Result {
	set, tag := c.index(addr)
	allowed := c.domainMask[dom]
	way := c.victim(set, allowed)
	res := Result{Set: set, Way: way}

	ln := c.line(set, way)
	if ln.valid {
		res.Evicted = true
		res.EvictedDirty = ln.meta.Dirty
		res.EvictedAddr = ln.meta.Addr
		res.EvictedDomain = ln.meta.Domain
		res.Interference = ln.meta.Domain != dom
		c.recordEviction(ln, now, res.Interference)
	}

	c.seq++
	c.tags[set*c.ways+way] = tag
	c.seqs[set*c.ways+way] = c.seq
	*ln = line{
		valid:  true,
		tag:    tag,
		lruSeq: c.seq,
		rrpv:   2, // SRRIP long re-reference on insert
		meta: BlockMeta{
			Addr:      c.BlockAddr(addr),
			Domain:    dom,
			Dirty:     write,
			FilledAt:  now,
			WrittenAt: now,
			LastTouch: now,
		},
	}
	if c.policy == TreePLRU {
		ln.plruHot = true
		c.maybeClearHotBits(set, way)
	}
	if write {
		c.stats.Writes[dom]++
	}
	return res
}

func (c *Cache) recordEviction(ln *line, now uint64, interference bool) {
	c.stats.Evictions++
	if ln.meta.Dirty {
		c.stats.Writebacks++
	}
	if interference {
		c.stats.InterferenceEvictions++
	}
	if now >= ln.meta.FilledAt {
		c.stats.Lifetimes[ln.meta.Domain].Observe(now - ln.meta.FilledAt)
	}
}

// victim picks a way among allowed ways: first an invalid one, else by
// policy. It panics if allowed is empty (a masking bug).
func (c *Cache) victim(set int, allowed uint64) int {
	if allowed == 0 {
		panic(fmt.Sprintf("cache %s: victim search with empty way mask", c.cfg.Name))
	}
	base := set * c.ways
	switch c.policy {
	case LRU, FIFO:
		// One min scan over the dense sequence sidecar: invalid ways
		// hold 0, so the prefer-an-invalid-way rule is the same scan
		// (see the seqs field comment), and the row costs two host
		// cache lines instead of a load from every 64-byte line struct.
		seqs := c.seqs[base : base+c.ways : base+c.ways]
		best, bestSeq := -1, ^uint64(0)
		for w := range seqs {
			if allowed&(1<<uint(w)) == 0 {
				continue
			}
			if s := seqs[w]; s < bestSeq {
				best, bestSeq = w, s
			}
		}
		return best
	}
	// Prefer an invalid allowed way; the tags sidecar holds invalidTag
	// exactly for invalid lines, so this scan stays off the line structs.
	for m := allowed; m != 0; m &= m - 1 {
		w := bits.TrailingZeros64(m)
		if c.tags[base+w] == invalidTag && !c.lines[base+w].valid {
			return w
		}
	}
	switch c.policy {
	case Random:
		// Deterministic pseudo-random pick: hash the sequence counter.
		n := bits.OnesCount64(allowed)
		c.seq++
		k := int((c.seq * 0x9e3779b97f4a7c15 >> 32) % uint64(n))
		for w := 0; w < c.cfg.Ways; w++ {
			if allowed&(1<<uint(w)) == 0 {
				continue
			}
			if k == 0 {
				return w
			}
			k--
		}
	case SRRIP:
		// Age RRPVs until one allowed way reaches the max value.
		for {
			for w := 0; w < c.cfg.Ways; w++ {
				if allowed&(1<<uint(w)) == 0 {
					continue
				}
				if c.line(set, w).rrpv >= 3 {
					return w
				}
			}
			for w := 0; w < c.cfg.Ways; w++ {
				if allowed&(1<<uint(w)) != 0 {
					c.line(set, w).rrpv++
				}
			}
		}
	case TreePLRU:
		// Evict a cold (not recently used) allowed way; fall back to
		// the lowest allowed way when all are hot.
		for w := 0; w < c.cfg.Ways; w++ {
			if allowed&(1<<uint(w)) == 0 {
				continue
			}
			if !c.line(set, w).plruHot {
				return w
			}
		}
		for w := 0; w < c.cfg.Ways; w++ {
			if allowed&(1<<uint(w)) != 0 {
				return w
			}
		}
	}
	panic("cache: victim selection failed") // unreachable for valid policies
}

// Access is the convenience combination Lookup / Fill used by SRAM
// caches (no retention checks).
func (c *Cache) Access(addr uint64, write bool, dom trace.Domain, now uint64) Result {
	set, way, hit := c.Lookup(addr, write, dom, now)
	if hit {
		return Result{Hit: true, Set: set, Way: way}
	}
	return c.Fill(addr, write, dom, now)
}

// Invalidate drops a line, returning whether it was dirty and the block
// address (for writeback). Dropping counts as an eviction for lifetime
// stats only when evict is true.
func (c *Cache) Invalidate(set, way int, now uint64, evict bool) (dirty bool, addr uint64, ok bool) {
	ln := c.line(set, way)
	if !ln.valid {
		return false, 0, false
	}
	dirty, addr = ln.meta.Dirty, ln.meta.Addr
	if evict {
		c.recordEviction(ln, now, false)
	}
	ln.valid = false
	c.tags[set*c.ways+way] = invalidTag
	c.seqs[set*c.ways+way] = 0
	return dirty, addr, true
}

// MarkExpired drops a line whose retention lapsed, counting it in
// ExpiryInvalidations. The (possibly stale) dirty status and address
// are returned so the caller can decide how to account the loss.
func (c *Cache) MarkExpired(set, way int, now uint64) (dirty bool, addr uint64, ok bool) {
	dirty, addr, ok = c.Invalidate(set, way, now, true)
	if ok {
		c.stats.ExpiryInvalidations++
	}
	return dirty, addr, ok
}

// Rewrite refreshes the physical cells of a line (retention restart)
// without changing replacement state, incrementing its idle-refresh
// counter. It returns false for invalid lines.
func (c *Cache) Rewrite(set, way int, now uint64) bool {
	ln := c.line(set, way)
	if !ln.valid {
		return false
	}
	ln.meta.WrittenAt = now
	ln.meta.RefreshCount++
	return true
}

// VisitValid calls fn for every valid line in enabled ways.
func (c *Cache) VisitValid(fn func(set, way int, meta *BlockMeta)) {
	for set := 0; set < c.sets; set++ {
		for w := 0; w < c.cfg.Ways; w++ {
			if c.enabledMask&(1<<uint(w)) == 0 {
				continue
			}
			ln := c.line(set, w)
			if ln.valid {
				fn(set, w, &ln.meta)
			}
		}
	}
}

// FlushWays invalidates every line in the given way mask, invoking wb
// for each dirty line (for writeback accounting). Used before power
// gating ways or handing them to the other domain.
func (c *Cache) FlushWays(mask uint64, now uint64, wb func(addr uint64)) int {
	flushed := 0
	for set := 0; set < c.sets; set++ {
		for w := 0; w < c.cfg.Ways; w++ {
			if mask&(1<<uint(w)) == 0 {
				continue
			}
			ln := c.line(set, w)
			if !ln.valid {
				continue
			}
			if ln.meta.Dirty && wb != nil {
				wb(ln.meta.Addr)
				c.stats.Writebacks++
			}
			ln.valid = false
			c.tags[set*c.ways+w] = invalidTag
			c.seqs[set*c.ways+w] = 0
			flushed++
		}
	}
	return flushed
}

// OccupancyByDomain counts valid lines per domain (enabled ways only).
func (c *Cache) OccupancyByDomain() [trace.NumDomains]int {
	var occ [trace.NumDomains]int
	c.VisitValid(func(_, _ int, meta *BlockMeta) {
		occ[meta.Domain]++
	})
	return occ
}

// ValidLines counts all valid lines in enabled ways.
func (c *Cache) ValidLines() int {
	occ := c.OccupancyByDomain()
	return occ[trace.User] + occ[trace.Kernel]
}
