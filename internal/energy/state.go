package energy

// MeterState is a copyable snapshot of a Meter's mutable state: the
// event counters the dynamic buckets derive from, the integrated
// leakage, the integration clock and the powered fraction. Params and
// capacity are construction-time constants and are not captured.
type MeterState struct {
	reads     uint64
	writes    uint64
	refreshes uint64
	bd        Breakdown
	lastCycle uint64
	powered   float64
}

// Snapshot captures the meter's complete mutable state.
func (m *Meter) Snapshot() MeterState {
	return MeterState{
		reads: m.reads, writes: m.writes, refreshes: m.refreshes,
		bd: m.bd, lastCycle: m.lastCycle, powered: m.powered,
	}
}

// Restore rewinds the meter to a snapshot. MeterState is a pure value,
// so the same state may be restored repeatedly.
func (m *Meter) Restore(s MeterState) {
	m.reads, m.writes, m.refreshes = s.reads, s.writes, s.refreshes
	m.bd, m.lastCycle, m.powered = s.bd, s.lastCycle, s.powered
}
