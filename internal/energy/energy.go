// Package energy models the power and energy of the cache arrays the
// paper compares: CMOS SRAM and STT-RAM at three retention classes.
// The parameter values follow the published multi-retention STT-RAM
// characterizations the paper builds on (NVSim-style numbers for a
// 1MB bank in a 32nm-class process): SRAM is leakage-dominated, while
// STT-RAM has near-zero array leakage but pays more energy and latency
// per write — less so at shorter retention, which in turn requires
// refresh. Absolute joules are not the point of the reproduction; the
// first-order relations (leakage ∝ powered capacity and time; write
// cost ∝ retention class; refresh cost ∝ valid lines / retention) are.
package energy

import (
	"fmt"
	"math"
)

// Tech enumerates the memory technologies a cache segment can use.
type Tech uint8

const (
	// SRAM is the 6T CMOS baseline: fast writes, high leakage.
	SRAM Tech = iota
	// STTShort is short-retention STT-RAM (~26.5us): cheapest writes,
	// needs refresh or expiry handling.
	STTShort
	// STTMedium is medium-retention STT-RAM (~3.2s): mid writes, rare
	// refresh at mobile timescales.
	STTMedium
	// STTLong is long-retention STT-RAM (~10y): most expensive writes,
	// no refresh.
	STTLong
	numTechs
)

// Valid reports whether t names a technology.
func (t Tech) Valid() bool { return t < numTechs }

// String returns the canonical name.
func (t Tech) String() string {
	switch t {
	case SRAM:
		return "sram"
	case STTShort:
		return "stt-short"
	case STTMedium:
		return "stt-medium"
	case STTLong:
		return "stt-long"
	default:
		return fmt.Sprintf("tech(%d)", uint8(t))
	}
}

// ParseTech maps a canonical name back to its Tech.
func ParseTech(name string) (Tech, error) {
	for t := Tech(0); t < numTechs; t++ {
		if t.String() == name {
			return t, nil
		}
	}
	return 0, fmt.Errorf("energy: unknown technology %q", name)
}

// IsSTT reports whether t is an STT-RAM class.
func (t Tech) IsSTT() bool { return t == STTShort || t == STTMedium || t == STTLong }

// ClockHz is the simulated core clock; latencies and retention times
// are expressed in these cycles throughout the simulator.
const ClockHz = 2e9

// CycleSeconds is the duration of one simulated cycle.
const CycleSeconds = 1.0 / ClockHz

// Seconds converts a cycle count to seconds.
func Seconds(cycles uint64) float64 { return float64(cycles) * CycleSeconds }

// Cycles converts seconds to a cycle count (rounded).
func Cycles(seconds float64) uint64 { return uint64(math.Round(seconds * ClockHz)) }

// Params is the per-technology parameter record for a 64-byte-line
// bank, normalized to 1MB of capacity where size-dependent.
type Params struct {
	// Tech identifies the technology class.
	Tech Tech
	// ReadPJ and WritePJ are per-block-access dynamic energies in
	// picojoules for a 1MB bank.
	ReadPJ  float64
	WritePJ float64
	// ReadCycles and WriteCycles are access latencies for a 1MB bank.
	ReadCycles  uint64
	WriteCycles uint64
	// LeakageMWPerMB is static power per megabyte of powered capacity
	// (array + peripherals) in milliwatts.
	LeakageMWPerMB float64
	// RetentionCycles is the cell retention time; zero means
	// effectively unbounded (SRAM, long-retention STT-RAM).
	RetentionCycles uint64
	// RetentionSeconds documents the nominal retention for tables.
	RetentionSeconds float64
}

// DefaultParams returns the technology table used by all experiments.
// Values follow the multi-retention STT-RAM design points in the
// literature the paper cites (retention 26.5us / 3.24s / ~10y) and a
// 32nm-class SRAM corner.
func DefaultParams(t Tech) Params {
	switch t {
	case SRAM:
		return Params{
			Tech: SRAM, ReadPJ: 168, WritePJ: 168,
			ReadCycles: 12, WriteCycles: 12,
			LeakageMWPerMB: 412, RetentionCycles: 0,
		}
	case STTShort:
		return Params{
			Tech: STTShort, ReadPJ: 188, WritePJ: 190,
			ReadCycles: 13, WriteCycles: 17,
			LeakageMWPerMB:   95,
			RetentionSeconds: 26.5e-6, RetentionCycles: Cycles(26.5e-6),
		}
	case STTMedium:
		return Params{
			Tech: STTMedium, ReadPJ: 188, WritePJ: 466,
			ReadCycles: 13, WriteCycles: 24,
			LeakageMWPerMB:   95,
			RetentionSeconds: 3.24, RetentionCycles: Cycles(3.24),
		}
	case STTLong:
		return Params{
			Tech: STTLong, ReadPJ: 188, WritePJ: 765,
			ReadCycles: 13, WriteCycles: 33,
			LeakageMWPerMB: 95, RetentionCycles: 0,
		}
	default:
		panic(fmt.Sprintf("energy: DefaultParams for invalid tech %d", t))
	}
}

// AllDefaultParams lists the table for every technology, for report
// generation (experiment E5).
func AllDefaultParams() []Params {
	out := make([]Params, 0, int(numTechs))
	for t := Tech(0); t < numTechs; t++ {
		out = append(out, DefaultParams(t))
	}
	return out
}

// Breakdown is an energy account in joules, one bucket per cause.
// Every joule the simulator spends lands in exactly one field.
type Breakdown struct {
	ReadJ    float64
	WriteJ   float64
	LeakageJ float64
	RefreshJ float64
}

// Total sums the buckets.
func (b Breakdown) Total() float64 {
	return b.ReadJ + b.WriteJ + b.LeakageJ + b.RefreshJ
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ReadJ += o.ReadJ
	b.WriteJ += o.WriteJ
	b.LeakageJ += o.LeakageJ
	b.RefreshJ += o.RefreshJ
}

// Meter accounts the energy of one cache array (one technology, one
// capacity). Leakage integrates over simulated time against the
// *powered* capacity, so way gating directly reduces it.
type Meter struct {
	params    Params
	sizeBytes uint64

	// Dynamic energy is derived from event counts on demand (one
	// integer add per access instead of a float multiply-accumulate on
	// the hot path); only leakage, whose rate varies with the powered
	// fraction, integrates into bd as time advances.
	reads     uint64
	writes    uint64
	refreshes uint64

	bd        Breakdown
	lastCycle uint64
	powered   float64 // powered fraction of capacity in [0,1]
}

// NewMeter builds a meter for an array of sizeBytes built from params.
func NewMeter(params Params, sizeBytes uint64) *Meter {
	return &Meter{params: params, sizeBytes: sizeBytes, powered: 1}
}

// Params returns the technology parameters.
func (m *Meter) Params() Params { return m.params }

// SizeBytes returns the array capacity.
func (m *Meter) SizeBytes() uint64 { return m.sizeBytes }

const pj = 1e-12

// Read charges n block reads.
func (m *Meter) Read(n uint64) { m.reads += n }

// Write charges n block writes.
func (m *Meter) Write(n uint64) { m.writes += n }

// Refresh charges n line refreshes; a refresh is a read plus a write
// of the line, accounted in the refresh bucket.
func (m *Meter) Refresh(n uint64) { m.refreshes += n }

// Advance integrates leakage up to cycle now at the current powered
// fraction. Calls must use non-decreasing now values.
func (m *Meter) Advance(now uint64) {
	if now < m.lastCycle {
		panic(fmt.Sprintf("energy: meter time went backwards (%d -> %d)", m.lastCycle, now))
	}
	dt := Seconds(now - m.lastCycle)
	mb := float64(m.sizeBytes) / (1024 * 1024)
	m.bd.LeakageJ += m.params.LeakageMWPerMB * 1e-3 * mb * m.powered * dt
	m.lastCycle = now
}

// SetPoweredFraction updates the powered share of the array (0..1) —
// call Advance first so the change applies from now on. Out-of-range
// values are clamped.
func (m *Meter) SetPoweredFraction(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	m.powered = f
}

// PoweredFraction reports the current powered share.
func (m *Meter) PoweredFraction() float64 { return m.powered }

// Breakdown returns the energy account so far (leakage up to the last
// Advance).
func (m *Meter) Breakdown() Breakdown {
	bd := m.bd
	bd.ReadJ = float64(m.reads) * m.params.ReadPJ * pj
	bd.WriteJ = float64(m.writes) * m.params.WritePJ * pj
	bd.RefreshJ = float64(m.refreshes) * (m.params.ReadPJ + m.params.WritePJ) * pj
	return bd
}
