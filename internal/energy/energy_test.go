package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTechNamesRoundTrip(t *testing.T) {
	for tech := Tech(0); tech < numTechs; tech++ {
		got, err := ParseTech(tech.String())
		if err != nil || got != tech {
			t.Fatalf("ParseTech(%q) = %v, %v", tech.String(), got, err)
		}
	}
	if _, err := ParseTech("edram"); err == nil {
		t.Fatal("unknown tech accepted")
	}
	if Tech(99).Valid() {
		t.Fatal("tech 99 claims valid")
	}
}

func TestIsSTT(t *testing.T) {
	if SRAM.IsSTT() {
		t.Fatal("SRAM is not STT")
	}
	for _, tech := range []Tech{STTShort, STTMedium, STTLong} {
		if !tech.IsSTT() {
			t.Fatalf("%v should be STT", tech)
		}
	}
}

func TestCyclesSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		s := float64(ms) * 1e-3
		back := Seconds(Cycles(s))
		return math.Abs(back-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultParamsShape(t *testing.T) {
	sram := DefaultParams(SRAM)
	short := DefaultParams(STTShort)
	med := DefaultParams(STTMedium)
	long := DefaultParams(STTLong)

	// The relations the paper's design space depends on:
	// 1. SRAM leaks far more than any STT-RAM class.
	for _, p := range []Params{short, med, long} {
		if p.LeakageMWPerMB*3 > sram.LeakageMWPerMB {
			t.Fatalf("%v leakage %g too close to SRAM %g", p.Tech, p.LeakageMWPerMB, sram.LeakageMWPerMB)
		}
	}
	// 2. Write energy and latency grow with retention.
	if !(short.WritePJ < med.WritePJ && med.WritePJ < long.WritePJ) {
		t.Fatalf("write energy not increasing with retention: %g %g %g", short.WritePJ, med.WritePJ, long.WritePJ)
	}
	if !(short.WriteCycles < med.WriteCycles && med.WriteCycles < long.WriteCycles) {
		t.Fatal("write latency not increasing with retention")
	}
	// 3. Retention ordering: short < medium; long and SRAM unbounded.
	if short.RetentionCycles == 0 || med.RetentionCycles == 0 {
		t.Fatal("short/medium retention must be bounded")
	}
	if short.RetentionCycles >= med.RetentionCycles {
		t.Fatal("short retention must be shorter than medium")
	}
	if long.RetentionCycles != 0 || sram.RetentionCycles != 0 {
		t.Fatal("long STT and SRAM retention must be unbounded")
	}
	// 4. STT writes cost more than reads.
	for _, p := range []Params{short, med, long} {
		if p.WritePJ <= p.ReadPJ {
			t.Fatalf("%v write energy %g not above read %g", p.Tech, p.WritePJ, p.ReadPJ)
		}
	}
}

func TestAllDefaultParams(t *testing.T) {
	ps := AllDefaultParams()
	if len(ps) != int(numTechs) {
		t.Fatalf("param table has %d rows, want %d", len(ps), numTechs)
	}
	for i, p := range ps {
		if p.Tech != Tech(i) {
			t.Fatalf("row %d is %v", i, p.Tech)
		}
	}
}

func TestDefaultParamsPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DefaultParams(99) did not panic")
		}
	}()
	DefaultParams(Tech(99))
}

func TestBreakdownTotalAndAdd(t *testing.T) {
	a := Breakdown{ReadJ: 1, WriteJ: 2, LeakageJ: 3, RefreshJ: 4}
	if a.Total() != 10 {
		t.Fatalf("total = %g, want 10", a.Total())
	}
	b := Breakdown{ReadJ: 0.5}
	b.Add(a)
	if b.ReadJ != 1.5 || b.Total() != 10.5 {
		t.Fatalf("add result = %+v", b)
	}
}

func TestMeterDynamicEnergy(t *testing.T) {
	p := DefaultParams(SRAM)
	m := NewMeter(p, 1024*1024)
	m.Read(10)
	m.Write(5)
	bd := m.Breakdown()
	wantRead := 10 * p.ReadPJ * 1e-12
	wantWrite := 5 * p.WritePJ * 1e-12
	if math.Abs(bd.ReadJ-wantRead) > 1e-18 {
		t.Fatalf("read energy = %g, want %g", bd.ReadJ, wantRead)
	}
	if math.Abs(bd.WriteJ-wantWrite) > 1e-18 {
		t.Fatalf("write energy = %g, want %g", bd.WriteJ, wantWrite)
	}
}

func TestMeterLeakageIntegration(t *testing.T) {
	p := DefaultParams(SRAM)
	m := NewMeter(p, 1024*1024) // 1 MB
	m.Advance(Cycles(1.0))      // 1 second
	bd := m.Breakdown()
	want := p.LeakageMWPerMB * 1e-3 // 1 MB for 1 s
	if math.Abs(bd.LeakageJ-want)/want > 1e-6 {
		t.Fatalf("leakage = %g J, want %g J", bd.LeakageJ, want)
	}
}

func TestMeterLeakageScalesWithSize(t *testing.T) {
	p := DefaultParams(SRAM)
	m1 := NewMeter(p, 1024*1024)
	m2 := NewMeter(p, 2*1024*1024)
	m1.Advance(1000000)
	m2.Advance(1000000)
	if math.Abs(m2.Breakdown().LeakageJ-2*m1.Breakdown().LeakageJ) > 1e-15 {
		t.Fatal("leakage not linear in capacity")
	}
}

func TestMeterPoweredFraction(t *testing.T) {
	p := DefaultParams(SRAM)
	m := NewMeter(p, 1024*1024)
	m.Advance(Cycles(0.5)) // half a second fully powered
	m.SetPoweredFraction(0.25)
	m.Advance(Cycles(1.0)) // half a second at quarter power
	bd := m.Breakdown()
	full := p.LeakageMWPerMB * 1e-3
	want := 0.5*full + 0.5*full*0.25
	if math.Abs(bd.LeakageJ-want)/want > 1e-6 {
		t.Fatalf("gated leakage = %g, want %g", bd.LeakageJ, want)
	}
	if m.PoweredFraction() != 0.25 {
		t.Fatalf("powered fraction = %g", m.PoweredFraction())
	}
}

func TestMeterPoweredFractionClamped(t *testing.T) {
	m := NewMeter(DefaultParams(SRAM), 1024)
	m.SetPoweredFraction(-1)
	if m.PoweredFraction() != 0 {
		t.Fatal("negative fraction not clamped")
	}
	m.SetPoweredFraction(2)
	if m.PoweredFraction() != 1 {
		t.Fatal("fraction above 1 not clamped")
	}
}

func TestMeterRefreshBucket(t *testing.T) {
	p := DefaultParams(STTShort)
	m := NewMeter(p, 1024*1024)
	m.Refresh(3)
	bd := m.Breakdown()
	want := 3 * (p.ReadPJ + p.WritePJ) * 1e-12
	if math.Abs(bd.RefreshJ-want) > 1e-18 {
		t.Fatalf("refresh energy = %g, want %g", bd.RefreshJ, want)
	}
	if bd.ReadJ != 0 || bd.WriteJ != 0 {
		t.Fatal("refresh leaked into read/write buckets")
	}
}

func TestMeterTimeMonotonic(t *testing.T) {
	m := NewMeter(DefaultParams(SRAM), 1024)
	m.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	m.Advance(50)
}

// Property: every joule lands in exactly one bucket — the total equals
// the sum of independent recomputations.
func TestMeterConservation(t *testing.T) {
	f := func(reads, writes, refreshes uint16, cycles uint32) bool {
		p := DefaultParams(STTMedium)
		m := NewMeter(p, 512*1024)
		m.Read(uint64(reads))
		m.Write(uint64(writes))
		m.Refresh(uint64(refreshes))
		m.Advance(uint64(cycles))
		bd := m.Breakdown()
		wantDyn := (float64(reads)*p.ReadPJ + float64(writes)*p.WritePJ +
			float64(refreshes)*(p.ReadPJ+p.WritePJ)) * 1e-12
		wantLeak := p.LeakageMWPerMB * 1e-3 * 0.5 * Seconds(uint64(cycles))
		total := bd.Total()
		want := wantDyn + wantLeak
		return math.Abs(total-want) <= 1e-12*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSTTBeatsSRAMAtLowActivity(t *testing.T) {
	// The paper's energy argument: at mobile (idle-heavy) access rates
	// leakage dominates, so STT-RAM wins despite costlier writes.
	const size = 1024 * 1024
	sram := NewMeter(DefaultParams(SRAM), size)
	stt := NewMeter(DefaultParams(STTLong), size)
	const accesses = 100000
	sram.Read(accesses)
	sram.Write(accesses / 3)
	stt.Read(accesses)
	stt.Write(accesses / 3)
	end := Cycles(0.1) // 100 ms of wall time
	sram.Advance(end)
	stt.Advance(end)
	if stt.Breakdown().Total() >= sram.Breakdown().Total()/2 {
		t.Fatalf("STT total %g not well below SRAM %g at low activity",
			stt.Breakdown().Total(), sram.Breakdown().Total())
	}
}
