package energy

import "math"

// ParamsForRetention builds an STT-RAM parameter set for an arbitrary
// retention target by interpolating the write cost between the three
// published design points (26.5us, 3.24s, ~4.27y). Relaxing retention
// means lowering the thermal stability factor, which reduces the
// switching current and time roughly log-linearly over this range —
// the relation the retention-sweep experiment (E10) explores.
// Retentions outside the anchor range are clamped to the nearest
// anchor's write cost.
func ParamsForRetention(seconds float64) Params {
	type anchor struct {
		logSec  float64
		writePJ float64
		writeCy float64
	}
	short := DefaultParams(STTShort)
	med := DefaultParams(STTMedium)
	long := DefaultParams(STTLong)
	const longSeconds = 4.27 * 365 * 24 * 3600
	anchors := []anchor{
		{math.Log10(short.RetentionSeconds), short.WritePJ, float64(short.WriteCycles)},
		{math.Log10(med.RetentionSeconds), med.WritePJ, float64(med.WriteCycles)},
		{math.Log10(longSeconds), long.WritePJ, float64(long.WriteCycles)},
	}

	if seconds <= 0 {
		seconds = short.RetentionSeconds
	}
	x := math.Log10(seconds)
	var writePJ, writeCy float64
	switch {
	case x <= anchors[0].logSec:
		writePJ, writeCy = anchors[0].writePJ, anchors[0].writeCy
	case x >= anchors[2].logSec:
		writePJ, writeCy = anchors[2].writePJ, anchors[2].writeCy
	default:
		lo, hi := anchors[0], anchors[1]
		if x > anchors[1].logSec {
			lo, hi = anchors[1], anchors[2]
		}
		f := (x - lo.logSec) / (hi.logSec - lo.logSec)
		writePJ = lo.writePJ + f*(hi.writePJ-lo.writePJ)
		writeCy = lo.writeCy + f*(hi.writeCy-lo.writeCy)
	}

	p := Params{
		Tech:             STTShort, // class label: bounded-retention STT
		ReadPJ:           short.ReadPJ,
		WritePJ:          writePJ,
		ReadCycles:       short.ReadCycles,
		WriteCycles:      uint64(math.Round(writeCy)),
		LeakageMWPerMB:   short.LeakageMWPerMB,
		RetentionSeconds: seconds,
		RetentionCycles:  Cycles(seconds),
	}
	if seconds >= longSeconds {
		// Effectively non-volatile at system timescales.
		p.Tech = STTLong
		p.RetentionCycles = 0
	}
	return p
}
