package energy

import (
	"testing"
	"testing/quick"
)

func TestParamsForRetentionAnchors(t *testing.T) {
	short := DefaultParams(STTShort)
	p := ParamsForRetention(short.RetentionSeconds)
	if p.WritePJ != short.WritePJ || p.WriteCycles != short.WriteCycles {
		t.Fatalf("short anchor mismatch: %+v", p)
	}
	med := DefaultParams(STTMedium)
	p = ParamsForRetention(med.RetentionSeconds)
	if p.WritePJ != med.WritePJ {
		t.Fatalf("medium anchor write = %g, want %g", p.WritePJ, med.WritePJ)
	}
}

func TestParamsForRetentionMonotone(t *testing.T) {
	// Write cost must be non-decreasing in retention target.
	prevPJ := 0.0
	for _, sec := range []float64{1e-6, 26.5e-6, 1e-3, 0.1, 3.24, 100, 1e6, 1e9} {
		p := ParamsForRetention(sec)
		if p.WritePJ < prevPJ {
			t.Fatalf("write energy decreased at %gs: %g < %g", sec, p.WritePJ, prevPJ)
		}
		prevPJ = p.WritePJ
	}
}

func TestParamsForRetentionClamps(t *testing.T) {
	low := ParamsForRetention(1e-9)
	if low.WritePJ != DefaultParams(STTShort).WritePJ {
		t.Fatal("below-range retention not clamped to short anchor")
	}
	high := ParamsForRetention(1e12)
	if high.WritePJ != DefaultParams(STTLong).WritePJ {
		t.Fatal("above-range retention not clamped to long anchor")
	}
	if high.RetentionCycles != 0 || high.Tech != STTLong {
		t.Fatal("effectively non-volatile retention should clear RetentionCycles")
	}
	zero := ParamsForRetention(0)
	if zero.RetentionSeconds <= 0 {
		t.Fatal("zero retention not defaulted")
	}
}

func TestParamsForRetentionBounded(t *testing.T) {
	short, long := DefaultParams(STTShort), DefaultParams(STTLong)
	f := func(exp uint8) bool {
		sec := 1e-7 * pow10(float64(exp%18)) // 1e-7 .. 1e10
		p := ParamsForRetention(sec)
		return p.WritePJ >= short.WritePJ && p.WritePJ <= long.WritePJ &&
			p.WriteCycles >= short.WriteCycles && p.WriteCycles <= long.WriteCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func pow10(e float64) float64 {
	r := 1.0
	for i := 0; i < int(e); i++ {
		r *= 10
	}
	return r
}
