package sttram_test

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
)

// Example wires a refresh controller onto a short-retention array and
// shows a clean line expiring while a refreshed line survives.
func Example() {
	c, _ := cache.New(cache.Config{
		Name: "stt", SizeBytes: 4096, Ways: 4, BlockBytes: 64, Policy: cache.LRU,
	})
	meter := energy.NewMeter(energy.DefaultParams(energy.STTShort), 4096)
	const retention = 1000 // cycles
	ctrl, _ := sttram.NewController(c, meter, retention, sttram.DirtyOnly, nil)

	c.Access(0x40, true, trace.User, 0)  // dirty: DirtyOnly refreshes it
	c.Access(0x80, false, trace.User, 0) // clean: allowed to expire

	for now := uint64(0); now <= 5*retention; now += 100 {
		ctrl.Tick(now)
	}
	_, _, dirtyAlive := c.Probe(0x40)
	_, _, cleanAlive := c.Probe(0x80)
	fmt.Println("dirty line alive:", dirtyAlive)
	fmt.Println("clean line alive:", cleanAlive)
	fmt.Println("dirty data lost:", ctrl.Stats().DirtyExpiries > 0)
	// Output:
	// dirty line alive: true
	// clean line alive: false
	// dirty data lost: false
}

// ExampleRetentionFromStability shows the thermal-stability relation
// behind the multi-retention design space.
func ExampleRetentionFromStability() {
	for _, delta := range []float64{30, 40} {
		sec := sttram.RetentionFromStability(delta)
		back := sttram.StabilityForRetention(sec)
		fmt.Printf("delta=%.0f retention~1e%d s roundtrip=%.0f\n",
			delta, int(log10(sec)), back)
	}
	// Output:
	// delta=30 retention~1e4 s roundtrip=30
	// delta=40 retention~1e8 s roundtrip=40
}

func log10(x float64) float64 {
	n := 0.0
	for x >= 10 {
		x /= 10
		n++
	}
	for x < 1 {
		x *= 10
		n--
	}
	return n
}
