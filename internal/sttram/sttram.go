// Package sttram models the volatility of relaxed-retention STT-RAM
// cache arrays and the refresh machinery that keeps them correct.
//
// Lowering an STT-RAM cell's thermal stability shortens its retention
// time in exchange for cheaper, faster writes — the knob the paper
// turns per cache segment. A line whose cells have not been rewritten
// within the retention time loses its data, so a short-retention array
// needs a policy:
//
//   - PeriodicAll rewrites every valid line each scan (DRAM-style
//     refresh): no expiry ever, maximal refresh energy.
//   - DirtyOnly refreshes only dirty lines; clean lines are allowed to
//     expire (they can be re-fetched from DRAM), trading refresh energy
//     for occasional extra misses.
//   - EagerWriteback refreshes nothing: dirty lines nearing expiry are
//     written back to DRAM and marked clean, and expired lines are
//     invalidated. Cheapest in refresh energy, most extra misses.
//
// The controller scans at half the retention period, which guarantees a
// dirty line is always visited before its cells decay (a line written
// at time t is visited no later than t + retention/2). The access path
// must still consult Expired for clean lines that lapsed between scans.
//
// That guarantee assumes ideal cells. Real relaxed-retention arrays
// additionally suffer stochastic retention faults — thermal-noise /
// process-variation tail events that flip a cell long before its
// nominal retention. SetRetentionFaults injects such faults (seeded,
// per-fill, with a configurable rate), deliberately breaking the scan
// guarantee so the data-loss accounting (DirtyExpiries, FaultExpiries)
// measures what a fault-afflicted array would actually lose.
package sttram

import (
	"fmt"
	"math"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// RefreshPolicy selects how a short-retention array stays correct.
type RefreshPolicy uint8

const (
	// PeriodicAll refreshes every valid line each scan.
	PeriodicAll RefreshPolicy = iota
	// DirtyOnly refreshes dirty lines; clean lines may expire.
	DirtyOnly
	// EagerWriteback writes dirty lines back instead of refreshing;
	// everything may expire.
	EagerWriteback
	numPolicies
)

// Valid reports whether p names a policy.
func (p RefreshPolicy) Valid() bool { return p < numPolicies }

// String returns the canonical name.
func (p RefreshPolicy) String() string {
	switch p {
	case PeriodicAll:
		return "periodic-all"
	case DirtyOnly:
		return "dirty-only"
	case EagerWriteback:
		return "eager-writeback"
	default:
		return fmt.Sprintf("refresh(%d)", uint8(p))
	}
}

// ParseRefreshPolicy maps a canonical name to its policy.
func ParseRefreshPolicy(name string) (RefreshPolicy, error) {
	for p := RefreshPolicy(0); p < numPolicies; p++ {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("sttram: unknown refresh policy %q", name)
}

// RetentionFromStability computes retention seconds from the thermal
// stability factor delta, t = t0 * exp(delta) with attempt period t0 =
// 1ns. This is the standard magnetics relation behind the
// retention/write-energy trade-off.
func RetentionFromStability(delta float64) float64 {
	return 1e-9 * math.Exp(delta)
}

// StabilityForRetention inverts RetentionFromStability.
func StabilityForRetention(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return math.Log(seconds / 1e-9)
}

// Stats counts controller activity.
type Stats struct {
	// Scans is the number of completed refresh scans.
	Scans uint64
	// Refreshes is the number of line rewrites performed.
	Refreshes uint64
	// EagerWritebacks is the number of dirty lines written back (and
	// marked clean) to avoid refreshing them.
	EagerWritebacks uint64
	// CleanExpiries is the number of clean lines invalidated because
	// their retention lapsed (scan or access path).
	CleanExpiries uint64
	// DirtyExpiries counts dirty lines that lapsed — with a correctly
	// configured controller and no injected faults this must stay zero;
	// it is surfaced so tests and experiments can verify no silent data
	// loss occurred. Under stochastic retention faults (SetRetentionFaults)
	// a dirty line can genuinely die before the scan reaches it, and
	// this counter measures that loss.
	DirtyExpiries uint64
	// FaultExpiries counts lines invalidated before their nominal
	// (jittered) retention because an injected stochastic fault cut
	// their effective retention short. Always zero when fault injection
	// is off. Fault expiries are also counted as clean/dirty expiries.
	FaultExpiries uint64
}

// Controller manages retention for one cache array.
type Controller struct {
	c         *cache.Cache
	meter     *energy.Meter
	retention uint64
	policy    RefreshPolicy
	writeback func(addr uint64)
	nextScan  uint64
	stats     Stats
	// refreshLimit caps consecutive refreshes of an idle line (the
	// dynamic refresh scheme): once a line has been refreshed this
	// many times without being accessed, a dirty line is written back
	// and the line is left to expire. Zero means unlimited.
	refreshLimit uint32
	// jitter widens per-cell retention into a deterministic
	// pseudo-random band [retention*(1-jitter), retention]: real
	// arrays have process variation, and the weakest cell bounds a
	// line's life. Zero keeps the nominal retention for every line.
	jitter float64
	// faultBER, when positive, injects stochastic retention failures:
	// each line fill draws (deterministically from faultSeed, the
	// line's position and its write time) whether this residency
	// suffers a thermal-tail early flip, and if so when. Unlike jitter,
	// faults are per-fill and can strike long before the scan schedule
	// protects the line — the regime where the refresh controller's
	// data-loss accounting is actually exercised.
	faultBER  float64
	faultSeed uint64
}

// NewController wires retention management onto a cache. retention is
// in cycles; zero builds an inert controller (for SRAM or long-
// retention arrays). meter receives refresh energy; writeback is
// invoked for each eager writeback (may be nil).
func NewController(c *cache.Cache, meter *energy.Meter, retention uint64, policy RefreshPolicy, writeback func(addr uint64)) (*Controller, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("sttram: invalid refresh policy %d", policy)
	}
	ct := &Controller{c: c, meter: meter, retention: retention, policy: policy, writeback: writeback}
	if retention > 0 {
		ct.nextScan = ct.scanPeriod()
	}
	return ct, nil
}

// scanPeriod is half the worst-case line retention (>=1 cycle), so
// every line is visited before its cells can decay.
func (ct *Controller) scanPeriod() uint64 {
	worst := uint64(float64(ct.retention) * (1 - ct.jitter))
	p := worst / 2
	if p == 0 {
		p = 1
	}
	return p
}

// SetRefreshLimit caps consecutive idle refreshes per line (0 =
// unlimited). Lines past the cap are written back (if dirty) and
// allowed to expire instead of being refreshed forever — the paper's
// dynamic refresh scheme for short-retention arrays.
func (ct *Controller) SetRefreshLimit(n uint32) { ct.refreshLimit = n }

// SetRetentionJitter models process variation: each line's retention
// is derated deterministically (by a hash of its set/way) into
// [retention*(1-j), retention]. j is clamped to [0, 0.9]. The scan
// period conservatively follows the worst-case line.
// Call it before the first Tick: the scan schedule follows the
// worst-case line.
func (ct *Controller) SetRetentionJitter(j float64) {
	if j < 0 {
		j = 0
	}
	if j > 0.9 {
		j = 0.9
	}
	ct.jitter = j
	if ct.retention > 0 {
		ct.nextScan = ct.scanPeriod()
	}
}

// lineRetention is the effective retention of the line at (set, way).
func (ct *Controller) lineRetention(set, way int) uint64 {
	if ct.jitter == 0 {
		return ct.retention
	}
	h := uint64(set)*0x9e3779b97f4a7c15 + uint64(way)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	frac := float64(h%1024) / 1024 // uniform in [0,1)
	derate := 1 - ct.jitter*frac
	r := uint64(float64(ct.retention) * derate)
	if r == 0 {
		r = 1
	}
	return r
}

// faultTailLambda shapes the exponential thermal-tail failure time:
// a faulted residency flips at retention * Exp(1)/faultTailLambda
// (clamped into [1 cycle, nominal)), i.e. the mean early flip lands at
// 1/8 of the nominal retention — well inside the scan period, so
// faults genuinely escape the refresh schedule.
const faultTailLambda = 8.0

// SetRetentionFaults injects stochastic retention failures: with
// probability ber, a line fill's retention is cut to an exponentially
// distributed early flip time (thermal noise / process-variation tail,
// after Kuan & Adegbija's STTRAM fault analysis). Draws are a pure
// function of (seed, set, way, write time), so identical runs fault
// identically regardless of scheduling. ber is clamped to [0, 1];
// zero disables injection.
func (ct *Controller) SetRetentionFaults(ber float64, seed uint64) {
	if ber < 0 || math.IsNaN(ber) {
		ber = 0
	}
	if ber > 1 {
		ber = 1
	}
	ct.faultBER = ber
	ct.faultSeed = seed
}

// FaultBER reports the injected per-fill fault probability.
func (ct *Controller) FaultBER() float64 { return ct.faultBER }

// mix64 is a splitmix64 finalizer — the diffuser behind fault draws.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// effectiveRetention is the residency's actual retention: the jittered
// per-line value, further cut short when this (set, way, writtenAt)
// residency drew an injected fault.
func (ct *Controller) effectiveRetention(set, way int, writtenAt uint64) uint64 {
	r := ct.lineRetention(set, way)
	if ct.faultBER == 0 {
		return r
	}
	h := mix64(ct.faultSeed ^ (uint64(set)*0x9e3779b97f4a7c15 + uint64(way)*0xbf58476d1ce4e5b9 + writtenAt*0x2545f4914f6cdd1d))
	if unit(h) >= ct.faultBER {
		return r
	}
	// Faulted: exponential early flip, clamped below the nominal value
	// so a fault is always an *early* expiry.
	frac := -math.Log(1-unit(mix64(h))) / faultTailLambda
	fr := uint64(float64(r) * frac)
	if fr >= r {
		fr = r - 1
	}
	if fr == 0 {
		fr = 1
	}
	return fr
}

// RefreshLimit reports the idle-refresh cap.
func (ct *Controller) RefreshLimit() uint32 { return ct.refreshLimit }

// Retention reports the configured retention in cycles (0 = unbounded).
func (ct *Controller) Retention() uint64 { return ct.retention }

// Policy reports the configured refresh policy.
func (ct *Controller) Policy() RefreshPolicy { return ct.policy }

// Stats exposes the counters; treat as read-only.
func (ct *Controller) Stats() *Stats { return &ct.stats }

// Active reports whether the controller does anything (bounded
// retention).
func (ct *Controller) Active() bool { return ct.retention > 0 }

// Expired reports whether the line at (set, way) has outlived its
// retention at time now. Inert controllers never report expiry.
// CanExpire reports whether lines in this array can ever lose data —
// false for unbounded-retention technologies (SRAM), where Tick and
// Expired are no-ops. The access hot path uses this to skip the
// per-access expiry bookkeeping entirely.
func (ct *Controller) CanExpire() bool { return ct.retention != 0 }

func (ct *Controller) Expired(set, way int, now uint64) bool {
	if ct.retention == 0 {
		return false
	}
	meta := ct.c.Meta(set, way)
	if meta == nil {
		return false
	}
	return now-meta.WrittenAt >= ct.effectiveRetention(set, way, meta.WrittenAt)
}

// HandleExpired invalidates an expired line found on the access path,
// accounting it as clean or dirty expiry. It returns whether the line
// was dirty (indicating data loss the configuration failed to prevent).
// An expiry arriving before the line's nominal (jittered) retention can
// only come from an injected fault and is additionally counted as one.
func (ct *Controller) HandleExpired(set, way int, now uint64) bool {
	faulted := false
	if ct.faultBER > 0 {
		if meta := ct.c.Meta(set, way); meta != nil {
			faulted = now-meta.WrittenAt < ct.lineRetention(set, way)
		}
	}
	dirty, _, ok := ct.c.MarkExpired(set, way, now)
	if !ok {
		return false
	}
	if faulted {
		ct.stats.FaultExpiries++
	}
	if dirty {
		ct.stats.DirtyExpiries++
	} else {
		ct.stats.CleanExpiries++
	}
	return dirty
}

// Tick runs any refresh scans due at time now. The caller invokes it
// before using the array at a new timestamp; several overdue scans
// collapse into the sequence they would have formed.
func (ct *Controller) Tick(now uint64) {
	if ct.retention == 0 {
		return
	}
	for ct.nextScan <= now {
		ct.scan(ct.nextScan)
		ct.nextScan += ct.scanPeriod()
	}
}

// scan visits every valid line and applies the policy at scan time t.
func (ct *Controller) scan(t uint64) {
	ct.stats.Scans++
	type action struct {
		set, way int
		kind     uint8 // 0 refresh, 1 eager-writeback, 2 expire
	}
	var acts []action
	ct.c.VisitValid(func(set, way int, meta *cache.BlockMeta) {
		age := t - meta.WrittenAt
		if age >= ct.effectiveRetention(set, way, meta.WrittenAt) {
			// Already lapsed; the data is gone whatever the policy.
			acts = append(acts, action{set, way, 2})
			return
		}
		// Lines younger than a scan period will be visited again
		// before they can expire; leave them alone. (An injected fault
		// can still strike inside this window — the next scan or the
		// access path will find the corpse.)
		if age < ct.scanPeriod() {
			return
		}
		// Dynamic refresh scheme: an idle line past the refresh cap is
		// written back (if dirty) instead of being refreshed again.
		capped := ct.refreshLimit > 0 && meta.RefreshCount >= ct.refreshLimit
		switch ct.policy {
		case PeriodicAll:
			if capped {
				if meta.Dirty {
					acts = append(acts, action{set, way, 1})
				}
			} else {
				acts = append(acts, action{set, way, 0})
			}
		case DirtyOnly:
			if meta.Dirty {
				if capped {
					acts = append(acts, action{set, way, 1})
				} else {
					acts = append(acts, action{set, way, 0})
				}
			}
			// Clean lines ride toward expiry; the access path or the
			// next scan will drop them.
		case EagerWriteback:
			if meta.Dirty {
				acts = append(acts, action{set, way, 1})
			}
		}
	})
	for _, a := range acts {
		switch a.kind {
		case 0:
			if ct.c.Rewrite(a.set, a.way, t) {
				ct.stats.Refreshes++
				if ct.meter != nil {
					ct.meter.Refresh(1)
				}
			}
		case 1:
			meta := ct.c.Meta(a.set, a.way)
			if meta == nil || !meta.Dirty {
				continue
			}
			addr := meta.Addr
			meta.Dirty = false
			// The array cells are not rewritten: the line keeps aging
			// and will expire as a clean line. Reading it out for the
			// writeback costs one array read.
			ct.stats.EagerWritebacks++
			if ct.meter != nil {
				ct.meter.Read(1)
			}
			if ct.writeback != nil {
				ct.writeback(addr)
			}
		case 2:
			ct.HandleExpired(a.set, a.way, t)
		}
	}
}

// RefreshPowerEstimate returns the steady-state refresh power (watts)
// of an array with the given valid-line count under PeriodicAll: each
// line costs one read+write per scan period. Used by sizing heuristics
// and the retention-sweep experiment for context.
func RefreshPowerEstimate(p energy.Params, validLines int) float64 {
	if p.RetentionCycles == 0 || validLines == 0 {
		return 0
	}
	period := energy.Seconds(p.RetentionCycles / 2)
	if period <= 0 {
		return 0
	}
	perScan := float64(validLines) * (p.ReadPJ + p.WritePJ) * 1e-12
	return perScan / period
}

// DomainFor suggests the retention class for a segment given its
// measured write-interval behaviour: arrays whose lines are rewritten
// (or die) well inside a candidate retention need no stronger class.
// It returns the cheapest-write technology whose retention, with the
// controller's half-period scanning, keeps expected expiries below
// maxExpiryFrac of fills. lifetimes is the segment's block-lifetime
// histogram in cycles.
func DomainFor(lifetimes *cache.Log2Hist, maxExpiryFrac float64) energy.Tech {
	for _, t := range []energy.Tech{energy.STTShort, energy.STTMedium} {
		p := energy.DefaultParams(t)
		// Fraction of blocks living beyond the retention window.
		exp := bitsLenU64(p.RetentionCycles)
		surviving := 1 - lifetimes.CDFBelow(exp)
		if surviving <= maxExpiryFrac {
			return t
		}
	}
	return energy.STTLong
}

func bitsLenU64(x uint64) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Domain is re-exported for callers configuring per-domain segments.
type Domain = trace.Domain
