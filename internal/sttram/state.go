package sttram

// ControllerState is a copyable snapshot of a Controller's mutable
// state: the refresh-scan clock and the activity counters. Everything
// else the controller consults — retention, policy, jitter, the
// refresh-limit cap and the fault-injection configuration — is fixed at
// construction/configuration time, and the stochastic draws themselves
// (jitter derating, fault flips) are pure functions of that
// configuration plus each line's (set, way, WrittenAt), so no RNG
// stream exists to capture: restoring the cache array restores the
// fault behavior exactly.
type ControllerState struct {
	nextScan uint64
	stats    Stats
}

// Snapshot captures the controller's complete mutable state.
func (ct *Controller) Snapshot() ControllerState {
	return ControllerState{nextScan: ct.nextScan, stats: ct.stats}
}

// Restore rewinds the controller to a snapshot. ControllerState is a
// pure value, so the same state may be restored repeatedly.
func (ct *Controller) Restore(s ControllerState) {
	ct.nextScan = s.nextScan
	ct.stats = s.stats
}
