package sttram

import (
	"math"
	"testing"
	"testing/quick"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

func newArray(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(cache.Config{Name: "stt", SizeBytes: 4 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRefreshPolicyNames(t *testing.T) {
	for p := RefreshPolicy(0); p < numPolicies; p++ {
		got, err := ParseRefreshPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseRefreshPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseRefreshPolicy("never"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if RefreshPolicy(9).Valid() {
		t.Fatal("policy 9 claims valid")
	}
}

func TestRetentionStabilityRoundTrip(t *testing.T) {
	f := func(raw uint8) bool {
		delta := 20 + float64(raw%40) // 20..59, physical range
		sec := RetentionFromStability(delta)
		back := StabilityForRetention(sec)
		return math.Abs(back-delta) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if StabilityForRetention(0) != 0 || StabilityForRetention(-1) != 0 {
		t.Fatal("non-positive retention should map to stability 0")
	}
}

func TestRetentionMonotoneInStability(t *testing.T) {
	prev := 0.0
	for d := 10.0; d <= 60; d += 5 {
		r := RetentionFromStability(d)
		if r <= prev {
			t.Fatalf("retention not increasing at delta=%g", d)
		}
		prev = r
	}
}

func TestInertController(t *testing.T) {
	c := newArray(t)
	ct, err := NewController(c, nil, 0, PeriodicAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Active() {
		t.Fatal("zero-retention controller claims active")
	}
	c.Access(0x40, true, trace.User, 1)
	ct.Tick(1 << 40)
	set, way, _ := c.Probe(0x40)
	if ct.Expired(set, way, 1<<40) {
		t.Fatal("inert controller reported expiry")
	}
	if ct.Stats().Scans != 0 {
		t.Fatal("inert controller scanned")
	}
}

func TestInvalidPolicyRejected(t *testing.T) {
	if _, err := NewController(newArray(t), nil, 100, RefreshPolicy(99), nil); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestExpiredDetection(t *testing.T) {
	c := newArray(t)
	ct, err := NewController(c, nil, 1000, PeriodicAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x40, false, trace.User, 100)
	set, way, _ := c.Probe(0x40)
	if ct.Expired(set, way, 500) {
		t.Fatal("fresh line reported expired")
	}
	if !ct.Expired(set, way, 1100) {
		t.Fatal("lapsed line not reported expired")
	}
	// Invalid way never expires.
	if ct.Expired(set, (way+1)%4, 1<<40) {
		t.Fatal("invalid line reported expired")
	}
}

func TestPeriodicAllPreventsExpiry(t *testing.T) {
	c := newArray(t)
	meter := energy.NewMeter(energy.DefaultParams(energy.STTShort), 4*1024)
	ct, err := NewController(c, meter, 1000, PeriodicAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x40, true, trace.User, 0)
	// Tick far into the future; scans every 500 cycles must keep the
	// line alive the whole way.
	for now := uint64(0); now <= 20000; now += 100 {
		ct.Tick(now)
		set, way, ok := c.Probe(0x40)
		if !ok {
			t.Fatalf("line lost at %d under PeriodicAll", now)
		}
		if ct.Expired(set, way, now) {
			t.Fatalf("line expired at %d under PeriodicAll", now)
		}
	}
	st := ct.Stats()
	if st.Refreshes == 0 || st.Scans == 0 {
		t.Fatalf("no refresh activity recorded: %+v", st)
	}
	if st.DirtyExpiries != 0 || st.CleanExpiries != 0 {
		t.Fatalf("expiries under PeriodicAll: %+v", st)
	}
	if meter.Breakdown().RefreshJ <= 0 {
		t.Fatal("refresh energy not charged")
	}
}

func TestDirtyOnlyRefreshesDirtyDropsClean(t *testing.T) {
	c := newArray(t)
	ct, err := NewController(c, nil, 1000, DirtyOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x40, true, trace.User, 0)  // dirty
	c.Access(0x80, false, trace.User, 0) // clean
	for now := uint64(0); now <= 5000; now += 100 {
		ct.Tick(now)
	}
	if _, _, ok := c.Probe(0x40); !ok {
		t.Fatal("dirty line lost under DirtyOnly")
	}
	if _, _, ok := c.Probe(0x80); ok {
		t.Fatal("clean line survived without refresh past retention")
	}
	st := ct.Stats()
	if st.Refreshes == 0 {
		t.Fatal("dirty line never refreshed")
	}
	if st.CleanExpiries == 0 {
		t.Fatal("clean expiry not recorded")
	}
	if st.DirtyExpiries != 0 {
		t.Fatalf("dirty expiries = %d, want 0 (no data loss)", st.DirtyExpiries)
	}
}

func TestEagerWritebackCleansAndExpires(t *testing.T) {
	c := newArray(t)
	var wb []uint64
	meter := energy.NewMeter(energy.DefaultParams(energy.STTShort), 4*1024)
	ct, err := NewController(c, meter, 1000, EagerWriteback, func(addr uint64) { wb = append(wb, addr) })
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x40, true, trace.User, 0) // dirty
	for now := uint64(0); now <= 5000; now += 100 {
		ct.Tick(now)
	}
	if len(wb) != 1 || wb[0] != 0x40 {
		t.Fatalf("eager writebacks = %#v, want [0x40]", wb)
	}
	// After writeback the line ages out as clean.
	if _, _, ok := c.Probe(0x40); ok {
		t.Fatal("line survived past retention under EagerWriteback")
	}
	st := ct.Stats()
	if st.EagerWritebacks != 1 {
		t.Fatalf("eager writebacks = %d, want 1", st.EagerWritebacks)
	}
	if st.DirtyExpiries != 0 {
		t.Fatalf("dirty expiries = %d, want 0", st.DirtyExpiries)
	}
	if st.Refreshes != 0 {
		t.Fatalf("refreshes = %d, want 0 under EagerWriteback", st.Refreshes)
	}
}

// Property: under any policy with scans ticked at least every half
// retention, a dirty line is never silently lost (DirtyExpiries == 0).
func TestNoSilentDirtyLossProperty(t *testing.T) {
	f := func(seed uint64, polRaw uint8) bool {
		pol := RefreshPolicy(polRaw % uint8(numPolicies))
		c, err := cache.New(cache.Config{Name: "p", SizeBytes: 2048, Ways: 2, BlockBytes: 64, Policy: cache.LRU})
		if err != nil {
			return false
		}
		ct, err := NewController(c, nil, 2000, pol, nil)
		if err != nil {
			return false
		}
		s := seed
		now := uint64(0)
		for i := 0; i < 400; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			now += s % 400 // steps < half retention
			ct.Tick(now)
			addr := (s >> 32) % 8192
			write := s%3 == 0
			set, way, hit := c.Probe(addr)
			if hit && ct.Expired(set, way, now) {
				ct.HandleExpired(set, way, now)
				hit = false
			}
			c.CountAccess(trace.User, hit)
			if hit {
				c.Touch(set, way, write, trace.User, now)
			} else {
				c.Fill(addr, write, trace.User, now)
			}
		}
		return ct.Stats().DirtyExpiries == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestHandleExpiredAccounting(t *testing.T) {
	c := newArray(t)
	ct, _ := NewController(c, nil, 1000, DirtyOnly, nil)
	c.Access(0x40, false, trace.User, 0)
	set, way, _ := c.Probe(0x40)
	if dirty := ct.HandleExpired(set, way, 2000); dirty {
		t.Fatal("clean line reported dirty")
	}
	if ct.Stats().CleanExpiries != 1 {
		t.Fatalf("clean expiries = %d, want 1", ct.Stats().CleanExpiries)
	}
	// Handling an already-invalid line is a no-op.
	if ct.HandleExpired(set, way, 2001) {
		t.Fatal("double handle reported dirty")
	}
	if ct.Stats().CleanExpiries != 1 {
		t.Fatal("double handle double-counted")
	}
}

func TestRefreshPowerEstimate(t *testing.T) {
	p := energy.DefaultParams(energy.STTShort)
	if RefreshPowerEstimate(p, 0) != 0 {
		t.Fatal("empty array should need no refresh power")
	}
	w := RefreshPowerEstimate(p, 1000)
	if w <= 0 {
		t.Fatal("refresh power should be positive")
	}
	// Twice the lines, twice the power.
	if math.Abs(RefreshPowerEstimate(p, 2000)-2*w) > 1e-12 {
		t.Fatal("refresh power not linear in lines")
	}
	// Unbounded retention needs none.
	if RefreshPowerEstimate(energy.DefaultParams(energy.STTLong), 1000) != 0 {
		t.Fatal("long retention should need no refresh")
	}
	// Longer retention -> less refresh power.
	med := RefreshPowerEstimate(energy.DefaultParams(energy.STTMedium), 1000)
	if med >= w {
		t.Fatalf("medium retention refresh power %g not below short %g", med, w)
	}
}

func TestDomainForPicksShortForShortLived(t *testing.T) {
	// Lifetimes clustered at ~1k cycles: far below short retention
	// (26.5us = 53k cycles), so short class suffices.
	var shortLived cache.Log2Hist
	for i := 0; i < 1000; i++ {
		shortLived.Observe(1000)
	}
	if got := DomainFor(&shortLived, 0.05); got != energy.STTShort {
		t.Fatalf("short-lived blocks mapped to %v, want stt-short", got)
	}
	// Lifetimes at ~1e10 cycles (5 s): beyond medium retention.
	var longLived cache.Log2Hist
	for i := 0; i < 1000; i++ {
		longLived.Observe(1 << 34)
	}
	if got := DomainFor(&longLived, 0.05); got != energy.STTLong {
		t.Fatalf("long-lived blocks mapped to %v, want stt-long", got)
	}
}

func TestRetentionJitterDeratesDeterministically(t *testing.T) {
	c := newArray(t)
	ct, err := NewController(c, nil, 100_000, DirtyOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetRetentionJitter(0.5)
	c.Access(0x40, false, trace.User, 0)
	set, way, _ := c.Probe(0x40)
	// With jitter 0.5 the effective retention sits in [50k, 100k]. At
	// t just past the nominal value every line is expired; at t below
	// the worst case none is.
	if ct.Expired(set, way, 49_999) {
		t.Fatal("line expired before the worst-case bound")
	}
	if !ct.Expired(set, way, 100_001) {
		t.Fatal("line alive past nominal retention")
	}
	// The derate is a pure function of (set, way): repeated queries at
	// a boundary time must agree.
	mid := uint64(75_000)
	first := ct.Expired(set, way, mid)
	for i := 0; i < 10; i++ {
		if ct.Expired(set, way, mid) != first {
			t.Fatal("jittered expiry not deterministic")
		}
	}
}

func TestRetentionJitterSpreadsExpiry(t *testing.T) {
	// Across many lines, some must derate more than others: fill many
	// sets and count expirations at an intermediate age.
	c, err := cache.New(cache.Config{Name: "j", SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewController(c, nil, 100_000, DirtyOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetRetentionJitter(0.5)
	for i := uint64(0); i < 256; i++ {
		c.Access(i*64, false, trace.User, 0)
	}
	expired := 0
	c.VisitValid(func(set, way int, _ *cache.BlockMeta) {
		if ct.Expired(set, way, 75_000) {
			expired++
		}
	})
	if expired == 0 || expired == 256 {
		t.Fatalf("jitter did not spread expiries: %d/256 at the midpoint", expired)
	}
}

func TestRetentionJitterNoDirtyLoss(t *testing.T) {
	// The scan schedule must follow the worst-case line: with maximal
	// jitter and regular ticking, dirty lines still never lapse.
	c := newArray(t)
	ct, err := NewController(c, nil, 10_000, DirtyOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetRetentionJitter(0.5)
	now := uint64(0)
	for i := 0; i < 300; i++ {
		now += 1000 // well inside the derated scan period
		ct.Tick(now)
		c.Access(uint64(i%16)*64, i%2 == 0, trace.User, now)
	}
	if ct.Stats().DirtyExpiries != 0 {
		t.Fatalf("dirty expiries = %d under jittered retention", ct.Stats().DirtyExpiries)
	}
}

func TestRetentionJitterClamped(t *testing.T) {
	c := newArray(t)
	ct, _ := NewController(c, nil, 1000, DirtyOnly, nil)
	ct.SetRetentionJitter(-1)
	if ct.lineRetention(0, 0) != 1000 {
		t.Fatal("negative jitter not clamped to zero")
	}
	ct.SetRetentionJitter(5)
	if ct.lineRetention(0, 0) < 100 {
		t.Fatal("jitter clamp above 0.9 failed")
	}
}

func TestTickCatchesUpMultipleScans(t *testing.T) {
	c := newArray(t)
	ct, _ := NewController(c, nil, 1000, PeriodicAll, nil)
	ct.Tick(5000) // 10 scan periods at once
	if ct.Stats().Scans < 9 {
		t.Fatalf("scans = %d, want >= 9 after jumping 10 periods", ct.Stats().Scans)
	}
}
