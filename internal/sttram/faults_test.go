package sttram

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/trace"
)

// driveFaulted fills many lines, ticks past the retention window and
// returns the accumulated stats.
func driveFaulted(t *testing.T, ber float64, seed uint64, pol RefreshPolicy) Stats {
	t.Helper()
	c, err := cache.New(cache.Config{Name: "f", SizeBytes: 64 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewController(c, nil, 10_000, pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetRetentionFaults(ber, seed)
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now += 100
		ct.Tick(now)
		addr := uint64(i%1024) * 64
		write := i%2 == 0
		set, way, hit := c.Probe(addr)
		if hit && ct.Expired(set, way, now) {
			ct.HandleExpired(set, way, now)
			hit = false
		}
		c.CountAccess(trace.User, hit)
		if hit {
			c.Touch(set, way, write, trace.User, now)
		} else {
			c.Fill(addr, write, trace.User, now)
		}
	}
	return *ct.Stats()
}

func TestZeroBERChangesNothing(t *testing.T) {
	clean := driveFaulted(t, 0, 1, PeriodicAll)
	faultedOff := driveFaulted(t, 0, 99, PeriodicAll)
	if clean != faultedOff {
		t.Fatalf("BER=0 behaviour depends on fault seed:\n%+v\n%+v", clean, faultedOff)
	}
	if clean.FaultExpiries != 0 {
		t.Fatalf("fault expiries without injection: %d", clean.FaultExpiries)
	}
}

func TestFaultsStrikeAndAreCounted(t *testing.T) {
	st := driveFaulted(t, 0.2, 7, PeriodicAll)
	if st.FaultExpiries == 0 {
		t.Fatalf("no fault expiries at BER=0.2: %+v", st)
	}
	// Faults are double-booked as clean or dirty expiries too.
	if st.CleanExpiries+st.DirtyExpiries < st.FaultExpiries {
		t.Fatalf("fault expiries not reflected in clean/dirty buckets: %+v", st)
	}
	// PeriodicAll never loses data on ideal cells; under faults, dirty
	// losses become possible and must be visible, not silent.
	if st.DirtyExpiries == 0 {
		t.Fatalf("expected dirty data loss under heavy faults: %+v", st)
	}
}

func TestFaultRateMonotone(t *testing.T) {
	low := driveFaulted(t, 1e-3, 7, DirtyOnly)
	high := driveFaulted(t, 0.3, 7, DirtyOnly)
	if low.FaultExpiries >= high.FaultExpiries {
		t.Fatalf("fault expiries not increasing in BER: %d @1e-3 vs %d @0.3",
			low.FaultExpiries, high.FaultExpiries)
	}
}

func TestFaultsDeterministicPerSeed(t *testing.T) {
	a := driveFaulted(t, 0.05, 42, DirtyOnly)
	b := driveFaulted(t, 0.05, 42, DirtyOnly)
	if a != b {
		t.Fatalf("same fault seed diverged:\n%+v\n%+v", a, b)
	}
	c := driveFaulted(t, 0.05, 43, DirtyOnly)
	if a == c {
		t.Fatal("different fault seeds produced identical stats (draws not seeded?)")
	}
}

func TestFaultExpiryIsEarly(t *testing.T) {
	// With BER=1 every fill faults, so every line must expire before
	// its nominal retention.
	c, err := cache.New(cache.Config{Name: "e", SizeBytes: 16 * 1024, Ways: 4, BlockBytes: 64, Policy: cache.LRU})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := NewController(c, nil, 100_000, DirtyOnly, nil)
	if err != nil {
		t.Fatal(err)
	}
	ct.SetRetentionFaults(1, 3)
	for i := uint64(0); i < 64; i++ {
		c.Access(i*64, false, trace.User, 0)
	}
	expired := 0
	c.VisitValid(func(set, way int, _ *cache.BlockMeta) {
		if ct.Expired(set, way, 99_999) { // one cycle before nominal
			expired++
		}
	})
	if expired != 64 {
		t.Fatalf("only %d/64 lines expired early at BER=1", expired)
	}
}

func TestSetRetentionFaultsClamps(t *testing.T) {
	c, _ := cache.New(cache.Config{Name: "c", SizeBytes: 2048, Ways: 2, BlockBytes: 64, Policy: cache.LRU})
	ct, _ := NewController(c, nil, 1000, DirtyOnly, nil)
	ct.SetRetentionFaults(-0.5, 1)
	if ct.FaultBER() != 0 {
		t.Fatalf("negative BER not clamped: %g", ct.FaultBER())
	}
	ct.SetRetentionFaults(7, 1)
	if ct.FaultBER() != 1 {
		t.Fatalf("BER > 1 not clamped: %g", ct.FaultBER())
	}
}
