// Package profiling wires the optional pprof outputs shared by the
// command-line front ends (mcsweep, mcbench): a CPU profile covering
// the run and a heap snapshot taken after a GC at the end.
package profiling

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles (empty paths are skipped) and
// returns the function that finalizes them: it stops the CPU profile
// and snapshots the steady-state heap. Callers must run stop even on
// error paths, and must surface its error — a truncated profile file
// should fail the run.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var ferr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			ferr = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return ferr
	}, nil
}
