package faultfs

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Plan is a deterministic fault schedule: an ordered rule list where
// the first matching rule decides the op's fate. Identical op
// sequences therefore produce identical fault sequences — the property
// the torture harness's enumerate-every-fault-point loop rests on.
type Plan struct {
	mu    sync.Mutex
	rules []rule
}

type rule struct {
	match func(Op) bool
	fault Fault
	// remaining bounds how many times the rule fires; < 0 is forever.
	remaining int
}

// NewPlan builds an empty plan (no faults).
func NewPlan() *Plan { return &Plan{} }

// Fault implements Injector.
func (p *Plan) Fault(op Op) *Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.remaining == 0 || !r.match(op) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		f := r.fault
		return &f
	}
	return nil
}

// add appends a rule and returns the plan for chaining.
func (p *Plan) add(match func(Op) bool, fault Fault, times int) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, rule{match: match, fault: fault, remaining: times})
	return p
}

// pathMatch matches an op's path (or rename destination) against a
// shell glob over the base name, or a plain substring when the pattern
// has no glob metacharacters. An empty pattern matches everything.
func pathMatch(pattern string, op Op) bool {
	if pattern == "" {
		return true
	}
	for _, path := range []string{op.Path, op.Path2} {
		if path == "" {
			continue
		}
		if ok, err := filepath.Match(pattern, filepath.Base(path)); err == nil && ok {
			return true
		}
		if !strings.ContainsAny(pattern, `*?[\`) && strings.Contains(path, pattern) {
			return true
		}
	}
	return false
}

// FailNth fails the op with global sequence number n (zero-based).
func (p *Plan) FailNth(n int, err error) *Plan {
	return p.add(func(op Op) bool { return op.N == n }, Fault{Err: err}, 1)
}

// CrashAtNth simulates power loss at op n: the op and everything after
// it fail with ErrCrashed and unsynced bytes are dropped.
func (p *Plan) CrashAtNth(n int) *Plan {
	return p.add(func(op Op) bool { return op.N >= n }, Fault{Crash: true}, 1)
}

// FailKind fails every op of the given kind whose path matches pattern
// (see pathMatch; "" matches all paths).
func (p *Plan) FailKind(kind OpKind, pattern string, err error) *Plan {
	return p.add(func(op Op) bool { return op.Kind == kind && pathMatch(pattern, op) }, Fault{Err: err}, -1)
}

// FailNthKind fails the nth op of the given kind (zero-based among
// that kind's ops, any path).
func (p *Plan) FailNthKind(n int, kind OpKind, err error) *Plan {
	seen := 0
	return p.add(func(op Op) bool {
		if op.Kind != kind {
			return false
		}
		seen++
		return seen-1 == n
	}, Fault{Err: err}, 1)
}

// ShortWriteNth performs only keep bytes of the nth write op (zero-
// based among writes) and fails it with ENOSPC — the torn-record
// generator for journal recovery tests.
func (p *Plan) ShortWriteNth(n, keep int) *Plan {
	seen := 0
	return p.add(func(op Op) bool {
		if op.Kind != OpWrite {
			return false
		}
		seen++
		return seen-1 == n
	}, Fault{Err: syscall.ENOSPC, Keep: keep}, 1)
}

// ENOSPCStreak fails every write and sync op in the global sequence
// window [start, start+length) with ENOSPC; length <= 0 runs forever
// (a disk that stays full).
func (p *Plan) ENOSPCStreak(start, length int) *Plan {
	return p.add(func(op Op) bool {
		if op.Kind != OpWrite && op.Kind != OpSync {
			return false
		}
		if op.N < start {
			return false
		}
		return length <= 0 || op.N < start+length
	}, Fault{Err: syscall.ENOSPC}, -1)
}

// FsyncErrNth fails the nth sync op (zero-based among syncs, any
// path) with EIO — the fsyncgate scenario: the kernel reported the
// data lost, and nothing written since may be acknowledged.
func (p *Plan) FsyncErrNth(n int) *Plan {
	return p.FailNthKind(n, OpSync, syscall.EIO)
}

// CrashBeforeRename crashes at the first rename whose path matches
// pattern: the temp file's bytes are on disk, the destination never
// appears — the classic torn atomic-replace window.
func (p *Plan) CrashBeforeRename(pattern string) *Plan {
	return p.add(func(op Op) bool { return op.Kind == OpRename && pathMatch(pattern, op) }, Fault{Crash: true}, 1)
}

// IsIOFault reports whether err is a storage-layer fault — injected or
// real ENOSPC/EIO, or a simulated crash — as opposed to a logic error.
// The daemon's degraded mode and mcsweep's exit-code mapping key off
// this: an I/O fault means the journaled work is fine and a resume
// will complete it once the storage recovers.
func IsIOFault(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrCrashed) ||
		errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EIO)
}

// ParsePlan builds a plan from a compact spec string — the test hook
// cmd/mcserved exposes through MCSERVED_FAULT so the serve-smoke
// script can inject a deterministic ENOSPC streak into a live daemon.
// Specs are semicolon-separated directives:
//
//	enospc:after=N:streak=K   ENOSPCStreak(N, K)
//	fsync-err:nth=N           FsyncErrNth(N)
//	crash:nth=N               CrashAtNth(N)
//	fail:nth=N                FailNth(N, EIO)
func ParsePlan(spec string) (*Plan, error) {
	p := NewPlan()
	for _, directive := range strings.Split(spec, ";") {
		directive = strings.TrimSpace(directive)
		if directive == "" {
			continue
		}
		parts := strings.Split(directive, ":")
		args := map[string]int{}
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultfs: directive %q: bad argument %q (want key=int)", directive, kv)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("faultfs: directive %q: %s=%q is not an integer", directive, k, v)
			}
			args[k] = n
		}
		switch parts[0] {
		case "enospc":
			p.ENOSPCStreak(args["after"], args["streak"])
		case "fsync-err":
			p.FsyncErrNth(args["nth"])
		case "crash":
			p.CrashAtNth(args["nth"])
		case "fail":
			p.FailNth(args["nth"], syscall.EIO)
		default:
			return nil, fmt.Errorf("faultfs: unknown fault directive %q (want enospc, fsync-err, crash or fail)", parts[0])
		}
	}
	return p, nil
}
