// Package torture is the crash-consistency torture harness for the
// persistence layer. Its tests first run each durable workflow — a
// checkpointed sweep-and-resume, and the daemon's full job lifecycle —
// over a recording faultfs to learn the exact filesystem-op sequence,
// then re-run the workflow once per (op index, fault flavor) pair,
// injecting ENOSPC, fsync EIO, short writes or a simulated power loss
// at that op. After every faulted run a "reboot" (fresh process state
// over the same directory, healthy storage) resumes the workflow, and
// the harness asserts the contract the rest of the repository relies
// on: the final CSV is byte-identical to an uninterrupted run, or the
// failure was reported as a structured error — never a silently
// partial result.
//
// The harness requires single-worker execution: the op sequence must
// be deterministic for "fault at op N" to mean the same thing on every
// run.
package torture
