package torture

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/jobs"
)

// sweepPlan is the torture workload: small enough that one run takes
// milliseconds, rich enough to exercise several journal appends.
func sweepPlan(t *testing.T) engine.Plan {
	t.Helper()
	spec := jobs.Spec{
		Machines: []string{"baseline-sram"}, Apps: []string{"browser"},
		Seeds: []uint64{1, 2, 3, 4}, Accesses: 2000,
	}
	p, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// goldenCSV renders the plan's uninterrupted output — the bytes every
// faulted-then-resumed run must reproduce exactly.
func goldenCSV(t *testing.T, p engine.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := engine.New(engine.Config{Workers: 1}).Execute(
		context.Background(), p, engine.ExecOptions{}, engine.NewCSV(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// executeOnce runs the plan with checkpoint+manifest persistence over
// fsys (nil = real filesystem) in dir, single-worker for a
// deterministic op sequence.
func executeOnce(t *testing.T, p engine.Plan, dir string, fsys faultfs.FS) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	_, err := engine.New(engine.Config{Workers: 1}).Execute(
		context.Background(), p, engine.ExecOptions{
			CheckpointPath: filepath.Join(dir, "cells.ckpt"),
			Resume:         true,
			FailuresPath:   filepath.Join(dir, "failures.json"),
			FS:             fsys,
		}, engine.NewCSV(&buf))
	return buf.Bytes(), err
}

// flavor is one way storage can betray a writer.
type flavor struct {
	name string
	plan func(op int) *faultfs.Plan
}

var flavors = []flavor{
	{"enospc", func(op int) *faultfs.Plan {
		return faultfs.NewPlan().ENOSPCStreak(op, 2)
	}},
	{"fsync-eio", func(op int) *faultfs.Plan {
		return faultfs.NewPlan().FailNth(op, syscall.EIO)
	}},
	{"crash", func(op int) *faultfs.Plan {
		return faultfs.NewPlan().CrashAtNth(op)
	}},
}

// TestSweepCheckpointResumeTorture enumerates every filesystem op of a
// checkpointed sweep and injects each fault flavor at each op. The
// contract: a faulted run either produced the golden CSV anyway (the
// fault hit nothing load-bearing) or returned an error; a resume on
// healthy storage then always completes with the golden CSV — byte
// identical, never silently partial.
func TestSweepCheckpointResumeTorture(t *testing.T) {
	p := sweepPlan(t)
	golden := goldenCSV(t, p)

	// Pass 1: count the clean run's ops.
	cleanDir := t.TempDir()
	counter := faultfs.New(nil)
	if csv, err := executeOnce(t, p, cleanDir, counter); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(csv, golden) {
		t.Fatal("clean checkpointed run does not match golden CSV")
	}
	ops := counter.Ops()
	if ops < 6 {
		t.Fatalf("implausible op count %d; the recorder is not seeing the persistence path", ops)
	}

	step := 1
	if testing.Short() {
		step = 5
	}
	for _, fl := range flavors {
		for op := 0; op < ops; op += step {
			t.Run(fmt.Sprintf("%s-at-op-%d", fl.name, op), func(t *testing.T) {
				dir := t.TempDir()
				csv1, err1 := executeOnce(t, p, dir, faultfs.New(fl.plan(op)))
				if err1 == nil && !bytes.Equal(csv1, golden) {
					t.Fatalf("faulted run reported success with non-golden CSV (silent partial):\n%s", csv1)
				}
				// Reboot: healthy storage, fresh engine, resume.
				csv2, err2 := executeOnce(t, p, dir, nil)
				if err2 != nil {
					t.Fatalf("resume after %s at op %d failed: %v", fl.name, op, err2)
				}
				if !bytes.Equal(csv2, golden) {
					t.Fatalf("resume after %s at op %d is not byte-identical:\n got %q\nwant %q",
						fl.name, op, csv2, golden)
				}
			})
		}
	}

	// Short writes: enumerate every write op (the flavor is a no-op on
	// non-write ops, so iterate write indices directly).
	for w := 0; w < ops; w += step {
		t.Run(fmt.Sprintf("short-write-%d", w), func(t *testing.T) {
			dir := t.TempDir()
			csv1, err1 := executeOnce(t, p, dir, faultfs.New(faultfs.NewPlan().ShortWriteNth(w, 3)))
			if err1 == nil && !bytes.Equal(csv1, golden) {
				t.Fatalf("short write %d reported success with non-golden CSV", w)
			}
			csv2, err2 := executeOnce(t, p, dir, nil)
			if err2 != nil {
				t.Fatalf("resume after short write %d failed: %v", w, err2)
			}
			if !bytes.Equal(csv2, golden) {
				t.Fatalf("resume after short write %d not byte-identical", w)
			}
		})
	}
}

// jobsGolden computes the daemon-job golden CSV for spec.
func jobsGolden(t *testing.T, spec jobs.Spec) []byte {
	t.Helper()
	p, err := spec.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return goldenCSV(t, p)
}

// runJobOnce submits spec to a fresh manager over root/fsys, waits for
// every job to go terminal (bounded), shuts the manager down, and
// returns the submitted job's ID ("" if submission failed).
func runJobOnce(t *testing.T, root string, fsys faultfs.FS, spec jobs.Spec) string {
	t.Helper()
	m, err := jobs.New(jobs.Options{
		Root: root, Workers: 1, FS: fsys,
		ProbeInterval: time.Hour, // no recovery mid-run: one episode per run
		Log:           io.Discard,
	})
	if err != nil {
		// The fault hit the store root creation or the recovery scan —
		// a structured, reported failure.
		return ""
	}
	id := ""
	if j, serr := m.Submit(spec, "torture"); serr == nil {
		id = j.ID()
		select {
		case <-j.Finished():
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s never went terminal", id)
		}
	}
	waitAllTerminal(t, m)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	m.Shutdown(ctx)
	return id
}

func waitAllTerminal(t *testing.T, m *jobs.Manager) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		all := true
		for _, st := range m.List() {
			if !st.State.Terminal() {
				all = false
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs never all terminal: %+v", m.List())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDaemonJobLifecycleTorture injects each fault flavor at every
// filesystem op of the daemon's full job lifecycle — submit, execute,
// checkpoint, finalize — then restarts the daemon on the same store
// with healthy storage and asserts the recovery contract: every
// resumed job completes, result.csv exists exactly for done jobs and
// is byte-identical to the golden CSV, failed jobs carry a structured
// error, and no state is silently partial.
func TestDaemonJobLifecycleTorture(t *testing.T) {
	spec := jobs.Spec{
		Machines: []string{"baseline-sram"}, Apps: []string{"browser"},
		Seeds: []uint64{1, 2}, Accesses: 2000,
	}
	golden := jobsGolden(t, spec)

	// Pass 1: clean lifecycle, count ops.
	counter := faultfs.New(nil)
	cleanRoot := t.TempDir()
	if id := runJobOnce(t, cleanRoot, counter, spec); id == "" {
		t.Fatal("clean job submission failed")
	}
	ops := counter.Ops()
	if ops < 10 {
		t.Fatalf("implausible op count %d for a full job lifecycle", ops)
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	for _, fl := range flavors {
		for op := 0; op < ops; op += step {
			t.Run(fmt.Sprintf("%s-at-op-%d", fl.name, op), func(t *testing.T) {
				root := t.TempDir()
				id := runJobOnce(t, root, faultfs.New(fl.plan(op)), spec)

				// Reboot on healthy storage: recovery resumes whatever the
				// fault interrupted.
				m2, err := jobs.New(jobs.Options{
					Root: root, Workers: 1, Log: io.Discard,
				})
				if err != nil {
					t.Fatalf("restart over tortured store failed: %v", err)
				}
				waitAllTerminal(t, m2)
				defer func() {
					ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel()
					m2.Shutdown(ctx)
				}()

				for _, st := range m2.List() {
					resultPath := filepath.Join(root, st.ID, "result.csv")
					data, rerr := os.ReadFile(resultPath)
					switch st.State {
					case jobs.StateDone:
						if rerr != nil {
							t.Fatalf("done job %s has no result.csv: %v", st.ID, rerr)
						}
						if st.Failed == 0 && !bytes.Equal(data, golden) {
							t.Fatalf("done job %s result.csv not byte-identical to golden:\n got %q\nwant %q",
								st.ID, data, golden)
						}
					case jobs.StateFailed:
						if st.Error == "" {
							t.Fatalf("failed job %s carries no structured error", st.ID)
						}
						if rerr == nil {
							t.Fatalf("failed job %s left a result.csv (silent partial):\n%s", st.ID, data)
						}
					default:
						t.Fatalf("job %s not terminal after restart: %s", st.ID, st.State)
					}
				}
				_ = id
			})
		}
	}
}
