// Package faultfs is the injectable filesystem seam under every
// durable writer in this repository: the checkpoint journal and
// AppendFile, the jobs store's atomic JSON rewrites, the incremental
// failure manifests and the engine's CSV sinks all perform their I/O
// through the FS interface instead of calling the os package directly.
//
// Two implementations exist. OS is the pass-through production
// filesystem — thin enough that threading it through the hot paths
// costs nothing measurable (BENCH_PR7's contention smoke pins this).
// New wraps it with a deterministic fault injector for tests: fail the
// Nth operation, fail every operation matching a path pattern, cut a
// write short, run an ENOSPC streak, fail an fsync, or simulate a
// whole-process crash that drops every byte written since the last
// successful fsync. The torture harness (internal/faultfs/torture)
// uses the injector to enumerate every fault point in a sweep and a
// daemon job lifecycle and prove the recovery invariants DESIGN.md
// documents.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the writable-file surface the persistence layer uses. It is
// exactly the subset of *os.File the durable writers touch, so the
// pass-through implementation returns *os.File unchanged.
type File interface {
	io.Writer
	io.Reader
	io.Seeker
	// Truncate cuts the file to size bytes (journal resume truncates
	// torn tails before appending).
	Truncate(size int64) error
	// Sync flushes the file's data to stable storage.
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem operation set behind every durable writer.
// Implementations must be safe for concurrent use.
type FS interface {
	// OpenFile generalizes open; flag and perm follow os.OpenFile.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// Create truncates-or-creates path for writing (os.Create).
	Create(path string) (File, error)
	// Open opens path read-only (os.Open).
	Open(path string) (File, error)
	// ReadFile returns the whole content of path (os.ReadFile).
	ReadFile(path string) ([]byte, error)
	// ReadDir lists path's entries sorted by name (os.ReadDir).
	ReadDir(path string) ([]fs.DirEntry, error)
	// Rename atomically replaces newpath with oldpath (os.Rename).
	// Durability of the rename itself needs a DirSync of the parent.
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm fs.FileMode) error
	// DirSync fsyncs the directory at path, making previously renamed
	// or created entries durable against power loss. Every atomic
	// rename in this repository is followed by a DirSync of the parent
	// (see WriteFileAtomic).
	DirSync(path string) error
}

// OS is the production pass-through filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) Open(path string) (File, error) { return os.Open(path) }

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) DirSync(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
