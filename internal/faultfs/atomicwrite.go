package faultfs

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// WriteFileAtomic lands content at path so that the path never holds a
// half-written file, even across power loss: the content is written to
// path.tmp, fsynced, closed, renamed over path, and the parent
// directory is fsynced so the rename itself survives a crash. Any
// failure — the directory sync included — is returned, and the
// temporary is removed (best effort) so retries start clean.
//
// Every os.Rename-based atomic write in this repository (state.json,
// job.json, result.csv, manifest finalize) goes through this helper;
// writing one by hand skips the parent-directory fsync and reopens the
// dir-entry durability hole this helper closes.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.DirSync(filepath.Dir(path)); err != nil {
		// The rename happened but is not yet durable: report it — a
		// caller acking durability on a swallowed dirsync error would
		// ack data a power loss can still take back.
		return fmt.Errorf("faultfs: fsync parent of %s after rename: %w", path, err)
	}
	return nil
}

// WriteJSONAtomic atomically lands v at path as indented JSON (the
// format the jobs store has always used for job.json/state.json).
func WriteJSONAtomic(fsys FS, path string, v any) error {
	return WriteFileAtomic(fsys, path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}
