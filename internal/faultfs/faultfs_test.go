package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// record is an Injector that faults nothing and records every op — the
// torture harness's counting pass uses the same mechanism.
type record struct {
	ops []Op
}

func (r *record) Fault(op Op) *Fault {
	r.ops = append(r.ops, op)
	return nil
}

func TestPassThroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	for _, fsys := range []FS{OS, New(nil)} {
		f, err := fsys.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("hello")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := fsys.ReadFile(path)
		if err != nil || string(data) != "hello" {
			t.Fatalf("read back %q, %v", data, err)
		}
		if err := fsys.Rename(path, path+".2"); err != nil {
			t.Fatal(err)
		}
		if err := fsys.DirSync(dir); err != nil {
			t.Fatal(err)
		}
		entries, err := fsys.ReadDir(dir)
		if err != nil || len(entries) != 1 {
			t.Fatalf("readdir: %d entries, %v", len(entries), err)
		}
		if err := fsys.Remove(path + ".2"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpSequenceIsDeterministic(t *testing.T) {
	run := func() []Op {
		rec := &record{}
		fsys := New(rec)
		dir := t.TempDir()
		f, _ := fsys.Create(filepath.Join(dir, "x"))
		f.Write([]byte("ab"))
		f.Sync()
		f.Close()
		fsys.Rename(filepath.Join(dir, "x"), filepath.Join(dir, "y"))
		fsys.DirSync(dir)
		return rec.ops
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("op counts differ: %d vs %d (want 6)", len(a), len(b))
	}
	wantKinds := []OpKind{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpDirSync}
	for i := range a {
		if a[i].N != i || a[i].Kind != wantKinds[i] || b[i].Kind != wantKinds[i] {
			t.Fatalf("op %d: %v / %v, want kind %v", i, a[i], b[i], wantKinds[i])
		}
	}
}

func TestFailNthAndKindRules(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan().FailNth(1, syscall.EIO)
	fsys := New(plan)
	f, err := fsys.Create(filepath.Join(dir, "x")) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("a")); !errors.Is(err, syscall.EIO) { // op 1
		t.Fatalf("want injected EIO, got %v", err)
	}
	if _, err := f.Write([]byte("a")); err != nil { // op 2: clean again
		t.Fatal(err)
	}
	f.Close()

	plan2 := NewPlan().FailKind(OpSync, "*.ckpt", syscall.EIO)
	fsys2 := New(plan2)
	j, _ := fsys2.Create(filepath.Join(dir, "cells.ckpt"))
	o, _ := fsys2.Create(filepath.Join(dir, "other.txt"))
	if err := j.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ckpt sync should fault, got %v", err)
	}
	if err := o.Sync(); err != nil {
		t.Fatalf("other sync should pass, got %v", err)
	}
	j.Close()
	o.Close()
}

func TestShortWriteLandsPrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short")
	fsys := New(NewPlan().ShortWriteNth(0, 3))
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: n=%d err=%v, want 3 bytes and ENOSPC", n, err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "abc" {
		t.Fatalf("file holds %q, want the 3-byte prefix", data)
	}
}

func TestENOSPCStreakEndsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	fsys := New(NewPlan().ENOSPCStreak(1, 2))      // ops 1 and 2 fail if write/sync
	f, err := fsys.Create(filepath.Join(dir, "f")) // op 0
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) { // op 1
		t.Fatalf("op 1: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) { // op 2
		t.Fatalf("op 2: %v", err)
	}
	if _, err := f.Write([]byte("x")); err != nil { // op 3: disk freed
		t.Fatalf("op 3 should succeed: %v", err)
	}
	f.Close()
}

func TestCrashDropsUnsyncedBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	fsys := New(NewPlan().CrashAtNth(4))
	f, err := fsys.Create(path) // op 0
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("durable"))                        // op 1
	f.Sync()                                          // op 2
	f.Write([]byte("+lost"))                          // op 3 — never synced
	if err := f.Sync(); !errors.Is(err, ErrCrashed) { // op 4: crash
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// Everything after the crash fails too.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v", err)
	}
	if _, err := fsys.Create(filepath.Join(dir, "new")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	// The "rebooted" view: only the fsynced prefix survived.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("after crash file holds %q, want %q", data, "durable")
	}
}

func TestCrashBeforeRenameLeavesTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	fsys := New(NewPlan().CrashBeforeRename("state.json*"))
	err := WriteJSONAtomic(fsys, path, map[string]int{"v": 1})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash at rename, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("destination exists after crash-before-rename")
	}
	if _, err := os.Stat(path + ".tmp"); err != nil {
		t.Fatalf("synced temp should survive the crash: %v", err)
	}
}

// TestWriteFileAtomicOpSequence pins the durability protocol: create
// temp, write, fsync, close, rename, parent-dir fsync — in that order,
// every time. Skipping the trailing dirsync is the bug class satellite
// 1 of the PR removes.
func TestWriteFileAtomicOpSequence(t *testing.T) {
	rec := &record{}
	fsys := New(rec)
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := WriteJSONAtomic(fsys, path, map[string]string{"id": "x"}); err != nil {
		t.Fatal(err)
	}
	want := []OpKind{OpCreate, OpWrite, OpSync, OpClose, OpRename, OpDirSync}
	if len(rec.ops) != len(want) {
		t.Fatalf("op trace %v, want kinds %v", rec.ops, want)
	}
	for i, op := range rec.ops {
		if op.Kind != want[i] {
			t.Fatalf("op %d is %v, want %v (trace %v)", i, op.Kind, want[i], rec.ops)
		}
	}
	if rec.ops[4].Path2 != path {
		t.Fatalf("rename destination %q, want %q", rec.ops[4].Path2, path)
	}
	if rec.ops[5].Path != dir {
		t.Fatalf("dirsync on %q, want parent %q", rec.ops[5].Path, dir)
	}
}

// TestWriteFileAtomicDirSyncErrorSurfaces: a failed parent-directory
// fsync must be reported, not swallowed — the rename is not durable
// until the directory is.
func TestWriteFileAtomicDirSyncErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	fsys := New(NewPlan().FailKind(OpDirSync, "", syscall.EIO))
	err := WriteJSONAtomic(fsys, filepath.Join(dir, "s.json"), map[string]int{"v": 2})
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("dirsync error swallowed: %v", err)
	}
	// The content itself did land (the rename succeeded) — only its
	// durability is unacknowledged.
	if _, serr := os.Stat(filepath.Join(dir, "s.json")); serr != nil {
		t.Fatalf("renamed file missing: %v", serr)
	}
}

func TestWriteFileAtomicCleansTempOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	fsys := New(NewPlan().FailNthKind(0, OpSync, syscall.ENOSPC))
	err := WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, werr := w.Write([]byte("{}"))
		return werr
	})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	if _, serr := os.Stat(path + ".tmp"); !os.IsNotExist(serr) {
		t.Fatal("temp file left behind after failed atomic write")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatal("destination appeared despite failed write")
	}
}

func TestIsIOFault(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{io.EOF, false},
		{errors.New("spec needs machines"), false},
		{syscall.ENOSPC, true},
		{syscall.EIO, true},
		{ErrCrashed, true},
		{fmt.Errorf("checkpoint append: %w", syscall.ENOSPC), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("faultfs: injected sync fault on x: %w", syscall.EIO)), true},
	}
	for _, c := range cases {
		if got := IsIOFault(c.err); got != c.want {
			t.Errorf("IsIOFault(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("enospc:after=2:streak=2")
	if err != nil {
		t.Fatal(err)
	}
	// Ops 0,1 clean; write/sync ops 2,3 ENOSPC; 4+ clean.
	if f := p.Fault(Op{N: 1, Kind: OpWrite}); f != nil {
		t.Fatal("op 1 should pass")
	}
	if f := p.Fault(Op{N: 2, Kind: OpWrite}); f == nil || !errors.Is(f.Err, syscall.ENOSPC) {
		t.Fatal("op 2 should hit the streak")
	}
	if f := p.Fault(Op{N: 3, Kind: OpReadDir}); f != nil {
		t.Fatal("streak must only hit writes and syncs")
	}
	if f := p.Fault(Op{N: 4, Kind: OpSync}); f != nil {
		t.Fatal("op 4 is past the streak")
	}

	if _, err := ParsePlan("meteor-strike:nth=1"); err == nil {
		t.Fatal("unknown directive accepted")
	}
	if _, err := ParsePlan("enospc:after=x"); err == nil {
		t.Fatal("non-integer argument accepted")
	}
	p2, err := ParsePlan("fsync-err:nth=0;crash:nth=9")
	if err != nil {
		t.Fatal(err)
	}
	if f := p2.Fault(Op{N: 3, Kind: OpSync}); f == nil || !errors.Is(f.Err, syscall.EIO) {
		t.Fatal("first sync should fault")
	}
	if f := p2.Fault(Op{N: 9, Kind: OpWrite}); f == nil || !f.Crash {
		t.Fatal("op 9 should crash")
	}
}
