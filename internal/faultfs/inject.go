package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
)

// OpKind names one faultable filesystem operation.
type OpKind int

const (
	OpOpen OpKind = iota
	OpCreate
	OpOpenFile
	OpWrite
	OpSync
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpReadFile
	OpMkdirAll
	OpTruncate
	OpDirSync
)

// String renders the kind for error messages and op traces.
func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpOpenFile:
		return "openfile"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpReadDir:
		return "readdir"
	case OpReadFile:
		return "readfile"
	case OpMkdirAll:
		return "mkdirall"
	case OpTruncate:
		return "truncate"
	case OpDirSync:
		return "dirsync"
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Op is one operation presented to the injector before it executes.
type Op struct {
	// N is the operation's zero-based global sequence number.
	N int
	// Kind is what the operation does.
	Kind OpKind
	// Path is the operation's target (the source for renames).
	Path string
	// Path2 is the rename destination, empty otherwise.
	Path2 string
}

func (o Op) String() string {
	if o.Path2 != "" {
		return fmt.Sprintf("#%d %s %s -> %s", o.N, o.Kind, o.Path, o.Path2)
	}
	return fmt.Sprintf("#%d %s %s", o.N, o.Kind, o.Path)
}

// Fault is an injector's verdict for one op.
type Fault struct {
	// Err fails the op with this error (wrapped with op context).
	Err error
	// Keep, for OpWrite with a non-nil Err, performs a short write of
	// Keep bytes before failing — the torn-record generator.
	Keep int
	// Crash simulates power loss at this op: the op fails with
	// ErrCrashed, every byte written since each file's last successful
	// fsync is dropped from disk, and all later ops fail with
	// ErrCrashed until the filesystem is reopened by a new process
	// (a fresh FS in tests).
	Crash bool
}

// Injector decides, deterministically, which ops fault. A nil return
// lets the op through; implementations must be safe for concurrent
// calls (the FaultFS serializes op numbering, not injection logic).
type Injector interface {
	Fault(Op) *Fault
}

// ErrCrashed marks operations refused because the injector simulated a
// crash: the "process" is gone and only a reopen (a new FS over the
// same directory) can continue.
var ErrCrashed = errors.New("faultfs: simulated crash")

// FaultFS wraps the real filesystem with a deterministic fault
// injector. Every operation consults the injector, in one global
// numbered sequence, before touching the real filesystem.
type FaultFS struct {
	inj Injector

	mu      sync.Mutex
	n       int
	faults  int
	crashed bool
	// synced/size track each written path's durable and current byte
	// length so a simulated crash can drop unsynced data exactly the
	// way power loss does for the sequential writers this repo uses.
	synced map[string]int64
	size   map[string]int64
}

// New wraps the real filesystem with inj. A nil injector passes every
// operation through (useful for op counting via Ops).
func New(inj Injector) *FaultFS {
	return &FaultFS{inj: inj, synced: map[string]int64{}, size: map[string]int64{}}
}

// Ops reports how many operations the FS has sequenced so far.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Faults reports how many operations the injector failed.
func (f *FaultFS) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// Crashed reports whether a crash fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// check numbers the op, consults the injector, and applies crash
// semantics. It returns the fault to apply (nil for a clean op).
func (f *FaultFS) check(kind OpKind, path, path2 string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	op := Op{N: f.n, Kind: kind, Path: path, Path2: path2}
	f.n++
	if f.crashed {
		return &Fault{Err: ErrCrashed}
	}
	var ft *Fault
	if f.inj != nil {
		ft = f.inj.Fault(op)
	}
	if ft == nil {
		return nil
	}
	f.faults++
	if ft.Crash {
		f.crashed = true
		f.dropUnsyncedLocked()
		return &Fault{Err: ErrCrashed, Keep: ft.Keep, Crash: true}
	}
	if ft.Err == nil {
		ft = &Fault{Err: fmt.Errorf("faultfs: injected fault"), Keep: ft.Keep}
	}
	return ft
}

// dropUnsyncedLocked truncates every tracked file back to its last
// fsynced length — the on-disk state a power loss leaves behind for
// the append-only and write-then-rename patterns this repo uses.
func (f *FaultFS) dropUnsyncedLocked() {
	for path, size := range f.size {
		durable := f.synced[path]
		if durable < size {
			os.Truncate(path, durable)
		}
	}
}

// opErr wraps an injected error with the op's context so failures in
// logs read as what they are.
func opErr(op OpKind, path string, err error) error {
	if errors.Is(err, ErrCrashed) {
		return fmt.Errorf("faultfs: %s %s: %w", op, path, ErrCrashed)
	}
	return fmt.Errorf("faultfs: injected %s fault on %s: %w", op, path, err)
}

func (f *FaultFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	if ft := f.check(OpOpenFile, path, ""); ft != nil {
		return nil, opErr(OpOpenFile, path, ft.Err)
	}
	file, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f.track(file, flag&os.O_TRUNC != 0), nil
}

func (f *FaultFS) Create(path string) (File, error) {
	if ft := f.check(OpCreate, path, ""); ft != nil {
		return nil, opErr(OpCreate, path, ft.Err)
	}
	file, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return f.track(file, true), nil
}

func (f *FaultFS) Open(path string) (File, error) {
	if ft := f.check(OpOpen, path, ""); ft != nil {
		return nil, opErr(OpOpen, path, ft.Err)
	}
	return os.Open(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if ft := f.check(OpReadFile, path, ""); ft != nil {
		return nil, opErr(OpReadFile, path, ft.Err)
	}
	return os.ReadFile(path)
}

func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) {
	if ft := f.check(OpReadDir, path, ""); ft != nil {
		return nil, opErr(OpReadDir, path, ft.Err)
	}
	return os.ReadDir(path)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if ft := f.check(OpRename, oldpath, newpath); ft != nil {
		return opErr(OpRename, oldpath+" -> "+newpath, ft.Err)
	}
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if sz, ok := f.size[oldpath]; ok {
		f.size[newpath] = sz
		f.synced[newpath] = f.synced[oldpath]
		delete(f.size, oldpath)
		delete(f.synced, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(path string) error {
	if ft := f.check(OpRemove, path, ""); ft != nil {
		return opErr(OpRemove, path, ft.Err)
	}
	f.forget(path)
	return os.Remove(path)
}

func (f *FaultFS) RemoveAll(path string) error {
	if ft := f.check(OpRemove, path, ""); ft != nil {
		return opErr(OpRemove, path, ft.Err)
	}
	f.mu.Lock()
	for p := range f.size {
		if p == path || (len(p) > len(path) && p[:len(path)] == path && p[len(path)] == filepath.Separator) {
			delete(f.size, p)
			delete(f.synced, p)
		}
	}
	f.mu.Unlock()
	return os.RemoveAll(path)
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if ft := f.check(OpMkdirAll, path, ""); ft != nil {
		return opErr(OpMkdirAll, path, ft.Err)
	}
	return os.MkdirAll(path, perm)
}

func (f *FaultFS) DirSync(path string) error {
	if ft := f.check(OpDirSync, path, ""); ft != nil {
		return opErr(OpDirSync, path, ft.Err)
	}
	return OS.DirSync(path)
}

// forget drops crash tracking for a removed path.
func (f *FaultFS) forget(path string) {
	f.mu.Lock()
	delete(f.size, path)
	delete(f.synced, path)
	f.mu.Unlock()
}

// track registers a writable file for crash accounting. A truncating
// open starts from zero durable bytes; an appending open inherits the
// on-disk size as durable (it survived the previous "process").
func (f *FaultFS) track(file *os.File, truncated bool) File {
	var size int64
	if !truncated {
		if st, err := file.Stat(); err == nil {
			size = st.Size()
		}
	}
	f.mu.Lock()
	f.size[file.Name()] = size
	f.synced[file.Name()] = size
	f.mu.Unlock()
	return &faultFile{fs: f, f: file}
}

// faultFile threads the injector through per-file ops and maintains
// the crash-accounting sizes. The tracking assumes the sequential
// write patterns the persistence layer uses (append-only files and
// write-whole-then-rename temporaries), which is exactly where the
// torture harness points it.
type faultFile struct {
	fs *FaultFS
	f  *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ft := ff.fs.check(OpWrite, ff.f.Name(), "")
	if ft != nil && ft.Keep <= 0 {
		return 0, opErr(OpWrite, ff.f.Name(), ft.Err)
	}
	q := p
	if ft != nil && ft.Keep < len(q) {
		q = q[:ft.Keep]
	}
	n, err := ff.f.Write(q)
	ff.fs.mu.Lock()
	ff.fs.size[ff.f.Name()] += int64(n)
	ff.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if ft != nil {
		return n, opErr(OpWrite, ff.f.Name(), ft.Err)
	}
	return n, nil
}

func (ff *faultFile) Read(p []byte) (int, error) { return ff.f.Read(p) }

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := ff.f.Seek(offset, whence)
	if err == nil {
		ff.fs.mu.Lock()
		if pos > ff.fs.size[ff.f.Name()] {
			ff.fs.size[ff.f.Name()] = pos
		}
		ff.fs.mu.Unlock()
	}
	return pos, err
}

func (ff *faultFile) Truncate(size int64) error {
	if ft := ff.fs.check(OpTruncate, ff.f.Name(), ""); ft != nil {
		return opErr(OpTruncate, ff.f.Name(), ft.Err)
	}
	if err := ff.f.Truncate(size); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	ff.fs.size[ff.f.Name()] = size
	if ff.fs.synced[ff.f.Name()] > size {
		ff.fs.synced[ff.f.Name()] = size
	}
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Sync() error {
	if ft := ff.fs.check(OpSync, ff.f.Name(), ""); ft != nil {
		return opErr(OpSync, ff.f.Name(), ft.Err)
	}
	if err := ff.f.Sync(); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	ff.fs.synced[ff.f.Name()] = ff.fs.size[ff.f.Name()]
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Close() error {
	if ft := ff.fs.check(OpClose, ff.f.Name(), ""); ft != nil {
		ff.f.Close()
		return opErr(OpClose, ff.f.Name(), ft.Err)
	}
	return ff.f.Close()
}

func (ff *faultFile) Name() string { return ff.f.Name() }
