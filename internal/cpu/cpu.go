// Package cpu is the trace-driven in-order timing model. It replays an
// access trace against a memory hierarchy, charging one base cycle per
// instruction plus the stall cycles the hierarchy reports for each
// memory access, and reports IPC — the metric behind the paper's
// "performance loss" comparisons.
package cpu

import (
	"fmt"

	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	// BaseCPI is the cycles charged per instruction absent memory
	// stalls. Mobile in-order cores run near 1.
	BaseCPI float64
	// AdvanceEvery sets how often (in accesses) the hierarchy's
	// leakage clocks are synchronized; smaller is more precise but
	// slower. Zero selects the default.
	AdvanceEvery uint64
	// IdleEvery and IdleCycles model the idle stretches of interactive
	// mobile use (waiting for input, screen dimmed): every IdleEvery
	// accesses the core idles for IdleCycles cycles — no instructions
	// retire, but the caches keep leaking (and STT-RAM retention keeps
	// running). Zero IdleEvery disables idling. Idle time is excluded
	// from IPC, which measures active execution only.
	IdleEvery  uint64
	IdleCycles uint64
}

// DefaultConfig returns the settings used by all experiments.
func DefaultConfig() Config {
	return Config{BaseCPI: 1.0, AdvanceEvery: 4096}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("cpu: base CPI %g must be positive", c.BaseCPI)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Instructions and Cycles are the totals the run covered; Cycles
	// counts active execution only.
	Instructions uint64
	Cycles       uint64
	// Accesses is the number of trace records replayed.
	Accesses uint64
	// StallCycles is the memory-stall portion of Cycles.
	StallCycles uint64
	// IdleCycles is the time spent in modeled idle stretches; it is
	// not part of Cycles (IPC measures active execution) but it does
	// elapse on the hierarchy's leakage clocks.
	IdleCycles uint64
	// CyclesByDomain attributes active cycles to the domain of the
	// instruction that spent them.
	CyclesByDomain [trace.NumDomains]uint64
}

// Add accumulates another result into r — the stitching operation for
// composing per-segment results. Every field is a plain sum.
func (r *Result) Add(o Result) {
	r.Instructions += o.Instructions
	r.Cycles += o.Cycles
	r.Accesses += o.Accesses
	r.StallCycles += o.StallCycles
	r.IdleCycles += o.IdleCycles
	for d := range r.CyclesByDomain {
		r.CyclesByDomain[d] += o.CyclesByDomain[d]
	}
}

// IPC is instructions per active cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// WallCycles is the total elapsed time including idle stretches.
func (r Result) WallCycles() uint64 { return r.Cycles + r.IdleCycles }

// StallFraction is the share of cycles spent stalled on memory.
func (r Result) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Cycles)
}

// stepBatchLen is the frame size: how many records Run stages per
// AccessFrame call. Big enough to amortize frame setup (the kernel
// hoists hierarchy state once per frame), small enough that the frame
// buffer stays L1-resident on the host.
const stepBatchLen = 256

// CPU binds a config to a hierarchy.
type CPU struct {
	cfg  Config
	hier *mem.Hierarchy
	now  uint64
	buf  []trace.Access
	pre  []mem.FramePre
	geom trace.FrameGeom
}

// New builds a CPU over the hierarchy.
func New(cfg Config, hier *mem.Hierarchy) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil hierarchy")
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = DefaultConfig().AdvanceEvery
	}
	return &CPU{
		cfg: cfg, hier: hier,
		buf:  make([]trace.Access, stepBatchLen),
		pre:  make([]mem.FramePre, stepBatchLen),
		geom: hier.FrameGeom(),
	}, nil
}

// Now reports the current simulated cycle.
func (c *CPU) Now() uint64 { return c.now }

// State is a copyable snapshot of the CPU's own mutable state — the
// simulated clock. Replay-loop state lives in RunState; the staging
// buffers are scratch.
type State struct {
	Now uint64
}

// Snapshot captures the CPU state.
func (c *CPU) Snapshot() State { return State{Now: c.now} }

// Restore rewinds the CPU to a snapshot.
func (c *CPU) Restore(s State) { c.now = s.Now }

// RunState is the resumable replay state a sequence of RunFrom calls
// threads: the accumulated result plus the idle/advance countdowns that
// must survive a segment boundary for the serial composition to be
// bit-identical to one uninterrupted Run. Obtain one from NewRunState.
type RunState struct {
	res Result
	st  stepState
}

// Result returns the result accumulated so far.
func (rs *RunState) Result() Result { return rs.res }

// NewRunState starts a fresh replay: zero counters, idle/advance
// countdowns reset from the config — exactly the state Run begins with.
func (c *CPU) NewRunState() *RunState {
	return &RunState{st: stepState{
		// Countdown counters replace per-access modulo checks against
		// IdleEvery/AdvanceEvery; a zero idleLeft start disables idling
		// (the counter never moves). AdvanceEvery is always positive
		// after New.
		idleLeft: c.cfg.IdleEvery,
		advLeft:  c.cfg.AdvanceEvery,
		// uint64(float64(instr) * 1.0) is exact for any Gap-sized count,
		// so a unit CPI — every standard config — can skip the float
		// round-trip without changing a single cycle.
		unitCPI: c.cfg.BaseCPI == 1.0,
	}}
}

// Run replays up to maxAccesses records from src (0 = until the source
// ends) and returns the timing result. Run may be called repeatedly;
// time continues from where the previous call stopped.
//
// Run is exactly NewRunState + RunFrom + Finish, so a replay split into
// segments — consecutive RunFrom calls on one RunState, one Finish at
// the end — is bit-identical to a single Run by construction (and
// pinned by the sim-level golden equivalence tests).
func (c *CPU) Run(src trace.Source, maxAccesses uint64) Result {
	rs := c.NewRunState()
	c.RunFrom(rs, src, maxAccesses)
	c.Finish()
	return rs.res
}

// RunFrom replays up to maxAccesses records from src (0 = until the
// source ends), continuing the replay rs describes, and returns this
// call's contribution (also accumulated into rs). Unlike Run it does
// not synchronize the hierarchy's leakage clocks at the end — call
// Finish after the last segment. maxAccesses bounds this call alone.
//
// Replay runs in frames: each iteration stages up to one frame of
// records (stepBatchLen, clipped so no frame spans an idle or
// leakage-sync boundary — see frameCap) and hands it to the
// hierarchy's frame kernel in a single AccessFrame call. Cursors take
// devirtualized fast paths: a trace.SliceCursor (hot-tier decoded
// replay) stages zero-copy batches of its records through the frame
// precompute, and a trace.Cursor (packed replay) decodes straight
// into the frame buffer with the precompute fused into the varint
// loop (DecodeFrame) — no intermediate Access staging at all. All
// paths execute the identical frame step, so results never depend on
// the source's type.
func (c *CPU) RunFrom(rs *RunState, src trace.Source, maxAccesses uint64) Result {
	var res Result
	st := &rs.st
	switch cur := src.(type) {
	case *trace.SliceCursor:
		// Hot-tier replay: the records already exist in memory, so frames
		// stage as shared sub-slices of them — no decode, no copy.
		for {
			want := c.frameCap(st, &res, maxAccesses)
			b := cur.Batch(want)
			if len(b) == 0 {
				break
			}
			c.hier.PrecomputeFrame(b, c.pre)
			c.stepFrame(c.pre[:len(b)], &res, st)
			c.frameEnd(len(b), &res, st)
		}
	case *trace.Cursor:
		for {
			want := c.frameCap(st, &res, maxAccesses)
			n := cur.DecodeFrame(c.pre[:want], &c.geom)
			if n == 0 {
				break
			}
			c.stepFrame(c.pre[:n], &res, st)
			c.frameEnd(n, &res, st)
		}
	default:
		if bd, ok := src.(batchDecoder); ok {
			// Any other bulk-decoding source (e.g. the set-sampling filter
			// wrapping a cursor) fills the staging buffer the same way. The
			// loop is duplicated rather than shared through a method value:
			// binding bd.Decode to a func variable would allocate per Run.
			for {
				want := c.frameCap(st, &res, maxAccesses)
				n := bd.Decode(c.buf[:want])
				if n == 0 {
					break
				}
				c.hier.PrecomputeFrame(c.buf[:n], c.pre)
				c.stepFrame(c.pre[:n], &res, st)
				c.frameEnd(n, &res, st)
			}
		} else {
			for {
				want := c.frameCap(st, &res, maxAccesses)
				n := 0
				for n < want {
					a, ok := src.Next()
					if !ok {
						break
					}
					c.buf[n] = a
					n++
				}
				if n == 0 {
					break
				}
				c.hier.PrecomputeFrame(c.buf[:n], c.pre)
				c.stepFrame(c.pre[:n], &res, st)
				c.frameEnd(n, &res, st)
			}
		}
	}
	rs.res.Add(res)
	return res
}

// Finish synchronizes the hierarchy's leakage clocks with the CPU
// clock — the step Run performs after its replay loop. Call it once
// after the last RunFrom of a composed replay; calling it between
// segments would change how the leakage integral associates (floats)
// even though every integer counter would be identical.
func (c *CPU) Finish() {
	c.hier.Advance(c.now)
}

// batchDecoder is the bulk-fill contract sources can implement to
// skip the per-access Source.Next round-trip without being one of the
// two concrete cursor types.
type batchDecoder interface {
	Decode(dst []trace.Access) int
}

// stepState is the per-Run hot-loop state.
type stepState struct {
	idleLeft, advLeft uint64
	unitCPI           bool
}

// frameCap sizes the next frame: at most stepBatchLen records, never
// crossing the idle or leakage-sync countdown (so those events fire
// exactly at frame boundaries, at the same access positions the
// per-record loop fired them), and never past this call's maxAccesses
// budget. Countdowns are always positive here — frameEnd resets them
// the moment they reach zero.
func (c *CPU) frameCap(st *stepState, res *Result, maxAccesses uint64) int {
	want := stepBatchLen
	if st.advLeft < uint64(want) {
		want = int(st.advLeft)
	}
	if st.idleLeft > 0 && st.idleLeft < uint64(want) {
		want = int(st.idleLeft)
	}
	if maxAccesses != 0 {
		if left := maxAccesses - res.Accesses; left < uint64(want) {
			want = int(left)
		}
	}
	return want
}

// stepFrame charges one staged frame: base cycles for each record's
// instructions (rescaled in place for non-unit CPI) and the
// hierarchy's frame kernel for the accesses. The kernel returns the
// frame's clock totals; everything folds into res in one pass.
func (c *CPU) stepFrame(pre []mem.FramePre, res *Result, st *stepState) {
	var instrs uint64
	if !st.unitCPI {
		// DecodeFrame/PrecomputeFrame fill Busy with the instruction
		// count; rescale to base cycles here, preserving the old loop's
		// at-least-one-cycle clamp.
		for i := range pre {
			instr := pre[i].Busy
			instrs += instr
			busy := uint64(float64(instr) * c.cfg.BaseCPI)
			if busy == 0 {
				busy = 1
			}
			pre[i].Busy = busy
		}
	}
	fs := c.hier.AccessFrame(pre, c.now)
	if st.unitCPI {
		// Unit CPI: busy cycles are the instruction counts (each >= 1 by
		// construction, so the clamp never binds).
		instrs = fs.Busy
	}
	c.now += fs.Busy + fs.Stall
	res.Accesses += uint64(len(pre))
	res.Instructions += instrs
	res.Cycles += fs.Busy + fs.Stall
	res.StallCycles += fs.Stall
	for d, v := range fs.ByDomain {
		res.CyclesByDomain[d] += v
	}
}

// frameEnd retires a frame of n accesses against the idle and
// leakage-sync countdowns. frameCap guarantees n never overshoots
// either countdown, so each fires exactly at its per-access position;
// when both fire at the same access, idle runs first and the leakage
// sync observes the post-idle clock — the per-record loop's order.
func (c *CPU) frameEnd(n int, res *Result, st *stepState) {
	st.advLeft -= uint64(n)
	if st.idleLeft > 0 {
		st.idleLeft -= uint64(n)
		if st.idleLeft == 0 {
			st.idleLeft = c.cfg.IdleEvery
			c.now += c.cfg.IdleCycles
			res.IdleCycles += c.cfg.IdleCycles
			// Let retention controllers and leakage meters observe the
			// idle stretch immediately.
			c.hier.Advance(c.now)
		}
	}
	if st.advLeft == 0 {
		st.advLeft = c.cfg.AdvanceEvery
		c.hier.Advance(c.now)
	}
}
