// Package cpu is the trace-driven in-order timing model. It replays an
// access trace against a memory hierarchy, charging one base cycle per
// instruction plus the stall cycles the hierarchy reports for each
// memory access, and reports IPC — the metric behind the paper's
// "performance loss" comparisons.
package cpu

import (
	"fmt"

	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	// BaseCPI is the cycles charged per instruction absent memory
	// stalls. Mobile in-order cores run near 1.
	BaseCPI float64
	// AdvanceEvery sets how often (in accesses) the hierarchy's
	// leakage clocks are synchronized; smaller is more precise but
	// slower. Zero selects the default.
	AdvanceEvery uint64
	// IdleEvery and IdleCycles model the idle stretches of interactive
	// mobile use (waiting for input, screen dimmed): every IdleEvery
	// accesses the core idles for IdleCycles cycles — no instructions
	// retire, but the caches keep leaking (and STT-RAM retention keeps
	// running). Zero IdleEvery disables idling. Idle time is excluded
	// from IPC, which measures active execution only.
	IdleEvery  uint64
	IdleCycles uint64
}

// DefaultConfig returns the settings used by all experiments.
func DefaultConfig() Config {
	return Config{BaseCPI: 1.0, AdvanceEvery: 4096}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("cpu: base CPI %g must be positive", c.BaseCPI)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Instructions and Cycles are the totals the run covered; Cycles
	// counts active execution only.
	Instructions uint64
	Cycles       uint64
	// Accesses is the number of trace records replayed.
	Accesses uint64
	// StallCycles is the memory-stall portion of Cycles.
	StallCycles uint64
	// IdleCycles is the time spent in modeled idle stretches; it is
	// not part of Cycles (IPC measures active execution) but it does
	// elapse on the hierarchy's leakage clocks.
	IdleCycles uint64
	// CyclesByDomain attributes active cycles to the domain of the
	// instruction that spent them.
	CyclesByDomain [trace.NumDomains]uint64
}

// Add accumulates another result into r — the stitching operation for
// composing per-segment results. Every field is a plain sum.
func (r *Result) Add(o Result) {
	r.Instructions += o.Instructions
	r.Cycles += o.Cycles
	r.Accesses += o.Accesses
	r.StallCycles += o.StallCycles
	r.IdleCycles += o.IdleCycles
	for d := range r.CyclesByDomain {
		r.CyclesByDomain[d] += o.CyclesByDomain[d]
	}
}

// IPC is instructions per active cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// WallCycles is the total elapsed time including idle stretches.
func (r Result) WallCycles() uint64 { return r.Cycles + r.IdleCycles }

// StallFraction is the share of cycles spent stalled on memory.
func (r Result) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Cycles)
}

// stepBatchLen is how many records Run stages per stepBatch call; big
// enough to amortize batch setup, small enough to stay L1-resident.
const stepBatchLen = 256

// CPU binds a config to a hierarchy.
type CPU struct {
	cfg  Config
	hier *mem.Hierarchy
	now  uint64
	buf  []trace.Access
	pre  []mem.FramePre
}

// New builds a CPU over the hierarchy.
func New(cfg Config, hier *mem.Hierarchy) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil hierarchy")
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = DefaultConfig().AdvanceEvery
	}
	return &CPU{
		cfg: cfg, hier: hier,
		buf: make([]trace.Access, stepBatchLen),
		pre: make([]mem.FramePre, stepBatchLen),
	}, nil
}

// Now reports the current simulated cycle.
func (c *CPU) Now() uint64 { return c.now }

// State is a copyable snapshot of the CPU's own mutable state — the
// simulated clock. Replay-loop state lives in RunState; the staging
// buffers are scratch.
type State struct {
	Now uint64
}

// Snapshot captures the CPU state.
func (c *CPU) Snapshot() State { return State{Now: c.now} }

// Restore rewinds the CPU to a snapshot.
func (c *CPU) Restore(s State) { c.now = s.Now }

// RunState is the resumable replay state a sequence of RunFrom calls
// threads: the accumulated result plus the idle/advance countdowns that
// must survive a segment boundary for the serial composition to be
// bit-identical to one uninterrupted Run. Obtain one from NewRunState.
type RunState struct {
	res Result
	st  stepState
}

// Result returns the result accumulated so far.
func (rs *RunState) Result() Result { return rs.res }

// NewRunState starts a fresh replay: zero counters, idle/advance
// countdowns reset from the config — exactly the state Run begins with.
func (c *CPU) NewRunState() *RunState {
	return &RunState{st: stepState{
		// Countdown counters replace per-access modulo checks against
		// IdleEvery/AdvanceEvery; a zero idleLeft start disables idling
		// (the counter never moves). AdvanceEvery is always positive
		// after New.
		idleLeft: c.cfg.IdleEvery,
		advLeft:  c.cfg.AdvanceEvery,
		// uint64(float64(instr) * 1.0) is exact for any Gap-sized count,
		// so a unit CPI — every standard config — can skip the float
		// round-trip without changing a single cycle.
		unitCPI: c.cfg.BaseCPI == 1.0,
	}}
}

// Run replays up to maxAccesses records from src (0 = until the source
// ends) and returns the timing result. Run may be called repeatedly;
// time continues from where the previous call stopped.
//
// Run is exactly NewRunState + RunFrom + Finish, so a replay split into
// segments — consecutive RunFrom calls on one RunState, one Finish at
// the end — is bit-identical to a single Run by construction (and
// pinned by the sim-level golden equivalence tests).
func (c *CPU) Run(src trace.Source, maxAccesses uint64) Result {
	rs := c.NewRunState()
	c.RunFrom(rs, src, maxAccesses)
	c.Finish()
	return rs.res
}

// RunFrom replays up to maxAccesses records from src (0 = until the
// source ends), continuing the replay rs describes, and returns this
// call's contribution (also accumulated into rs). Unlike Run it does
// not synchronize the hierarchy's leakage clocks at the end — call
// Finish after the last segment. maxAccesses bounds this call alone.
//
// Replay cursors take devirtualized fast paths: a trace.SliceCursor
// (hot-tier decoded replay) is stepped over zero-copy batches of its
// records, and a trace.Cursor (packed replay) is bulk-decoded into the
// staging buffer — in both cases the per-access interface round-trip
// through Source.Next disappears, which is what keeps steady-state
// replay at zero allocations and full speed. All paths execute the
// identical per-access step, so results never depend on the source's
// type.
func (c *CPU) RunFrom(rs *RunState, src trace.Source, maxAccesses uint64) Result {
	var res Result
	st := &rs.st
	if cur, ok := src.(*trace.SliceCursor); ok {
		// Hot-tier replay: the records already exist in memory, so the
		// machine steps directly over shared sub-slices of them — no
		// decode, no staging copy.
		for {
			want := cur.Remaining()
			if maxAccesses != 0 {
				if left := maxAccesses - res.Accesses; left < uint64(want) {
					want = int(left)
				}
			}
			b := cur.Batch(want)
			if len(b) == 0 {
				break
			}
			c.stepBatch(b, &res, st)
		}
		rs.res.Add(res)
		return res
	}
	if cur, ok := src.(*trace.Cursor); ok {
		for maxAccesses == 0 || res.Accesses < maxAccesses {
			want := len(c.buf)
			if maxAccesses != 0 {
				if left := maxAccesses - res.Accesses; left < uint64(want) {
					want = int(left)
				}
			}
			n := cur.Decode(c.buf[:want])
			if n == 0 {
				break
			}
			c.stepBatch(c.buf[:n], &res, st)
		}
	} else if bd, ok := src.(batchDecoder); ok {
		// Any other bulk-decoding source (e.g. the set-sampling filter
		// wrapping a cursor) fills the staging buffer the same way. The
		// loop is duplicated rather than shared through a method value:
		// binding cur.Decode to a func variable would allocate per Run.
		for maxAccesses == 0 || res.Accesses < maxAccesses {
			want := len(c.buf)
			if maxAccesses != 0 {
				if left := maxAccesses - res.Accesses; left < uint64(want) {
					want = int(left)
				}
			}
			n := bd.Decode(c.buf[:want])
			if n == 0 {
				break
			}
			c.stepBatch(c.buf[:n], &res, st)
		}
	} else {
		for maxAccesses == 0 || res.Accesses < maxAccesses {
			want := len(c.buf)
			if maxAccesses != 0 {
				if left := maxAccesses - res.Accesses; left < uint64(want) {
					want = int(left)
				}
			}
			n := 0
			for n < want {
				a, ok := src.Next()
				if !ok {
					break
				}
				c.buf[n] = a
				n++
			}
			if n == 0 {
				break
			}
			c.stepBatch(c.buf[:n], &res, st)
		}
	}
	rs.res.Add(res)
	return res
}

// Finish synchronizes the hierarchy's leakage clocks with the CPU
// clock — the step Run performs after its replay loop. Call it once
// after the last RunFrom of a composed replay; calling it between
// segments would change how the leakage integral associates (floats)
// even though every integer counter would be identical.
func (c *CPU) Finish() {
	c.hier.Advance(c.now)
}

// batchDecoder is the bulk-fill contract sources can implement to
// skip the per-access Source.Next round-trip without being one of the
// two concrete cursor types.
type batchDecoder interface {
	Decode(dst []trace.Access) int
}

// stepState is the per-Run hot-loop state.
type stepState struct {
	idleLeft, advLeft uint64
	unitCPI           bool
}

// stepBatch charges a staged batch of trace records: base cycles for
// each record's instructions, hierarchy stalls, and the periodic
// idle/leakage clock synchronization. Working totals stay in locals
// across the batch — the per-access cost is the hierarchy access plus
// pure register arithmetic — and fold into res at the end. Both Run
// loops charge every record through here, so results can never depend
// on the source's type.
func (c *CPU) stepBatch(batch []trace.Access, res *Result, st *stepState) {
	now := c.now
	hier := c.hier
	pre := c.pre
	idleLeft, advLeft := st.idleLeft, st.advLeft
	var instrs, cycles, stalls uint64
	var byDomain [trace.NumDomains]uint64

	res.Accesses += uint64(len(batch))
	for len(batch) > 0 {
		chunk := batch
		if len(chunk) > stepBatchLen {
			chunk = batch[:stepBatchLen]
		}
		batch = batch[len(chunk):]
		// Frame precompute: the L1 routing and set/tag decomposition are
		// pure functions of each record, so they run as one tight pass
		// over the chunk with no cache-state dependencies; the step loop
		// below then starts every access directly at the tag scan
		// (AccessPre), branch-minimized. Identical effects to calling
		// hier.Access per record — see mem/frame.go.
		hier.PrecomputeFrame(chunk, pre)
		for i, a := range chunk {
			instr := a.Instructions()
			var busy uint64
			if st.unitCPI {
				busy = instr
			} else {
				busy = uint64(float64(instr) * c.cfg.BaseCPI)
			}
			if busy == 0 {
				busy = 1
			}
			now += busy
			stall := hier.AccessPre(a, pre[i], now)
			now += stall

			instrs += instr
			cycles += busy + stall
			stalls += stall
			byDomain[a.Domain] += busy + stall

			if idleLeft > 0 {
				if idleLeft--; idleLeft == 0 {
					idleLeft = c.cfg.IdleEvery
					now += c.cfg.IdleCycles
					res.IdleCycles += c.cfg.IdleCycles
					// Let retention controllers and leakage meters observe
					// the idle stretch immediately.
					hier.Advance(now)
				}
			}
			if advLeft--; advLeft == 0 {
				advLeft = c.cfg.AdvanceEvery
				hier.Advance(now)
			}
		}
	}

	c.now = now
	st.idleLeft, st.advLeft = idleLeft, advLeft
	res.Instructions += instrs
	res.Cycles += cycles
	res.StallCycles += stalls
	for d, v := range byDomain {
		res.CyclesByDomain[d] += v
	}
}
