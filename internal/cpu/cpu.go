// Package cpu is the trace-driven in-order timing model. It replays an
// access trace against a memory hierarchy, charging one base cycle per
// instruction plus the stall cycles the hierarchy reports for each
// memory access, and reports IPC — the metric behind the paper's
// "performance loss" comparisons.
package cpu

import (
	"fmt"

	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	// BaseCPI is the cycles charged per instruction absent memory
	// stalls. Mobile in-order cores run near 1.
	BaseCPI float64
	// AdvanceEvery sets how often (in accesses) the hierarchy's
	// leakage clocks are synchronized; smaller is more precise but
	// slower. Zero selects the default.
	AdvanceEvery uint64
	// IdleEvery and IdleCycles model the idle stretches of interactive
	// mobile use (waiting for input, screen dimmed): every IdleEvery
	// accesses the core idles for IdleCycles cycles — no instructions
	// retire, but the caches keep leaking (and STT-RAM retention keeps
	// running). Zero IdleEvery disables idling. Idle time is excluded
	// from IPC, which measures active execution only.
	IdleEvery  uint64
	IdleCycles uint64
}

// DefaultConfig returns the settings used by all experiments.
func DefaultConfig() Config {
	return Config{BaseCPI: 1.0, AdvanceEvery: 4096}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.BaseCPI <= 0 {
		return fmt.Errorf("cpu: base CPI %g must be positive", c.BaseCPI)
	}
	return nil
}

// Result summarizes one run.
type Result struct {
	// Instructions and Cycles are the totals the run covered; Cycles
	// counts active execution only.
	Instructions uint64
	Cycles       uint64
	// Accesses is the number of trace records replayed.
	Accesses uint64
	// StallCycles is the memory-stall portion of Cycles.
	StallCycles uint64
	// IdleCycles is the time spent in modeled idle stretches; it is
	// not part of Cycles (IPC measures active execution) but it does
	// elapse on the hierarchy's leakage clocks.
	IdleCycles uint64
	// CyclesByDomain attributes active cycles to the domain of the
	// instruction that spent them.
	CyclesByDomain [trace.NumDomains]uint64
}

// IPC is instructions per active cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// WallCycles is the total elapsed time including idle stretches.
func (r Result) WallCycles() uint64 { return r.Cycles + r.IdleCycles }

// StallFraction is the share of cycles spent stalled on memory.
func (r Result) StallFraction() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Cycles)
}

// CPU binds a config to a hierarchy.
type CPU struct {
	cfg  Config
	hier *mem.Hierarchy
	now  uint64
}

// New builds a CPU over the hierarchy.
func New(cfg Config, hier *mem.Hierarchy) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if hier == nil {
		return nil, fmt.Errorf("cpu: nil hierarchy")
	}
	if cfg.AdvanceEvery == 0 {
		cfg.AdvanceEvery = DefaultConfig().AdvanceEvery
	}
	return &CPU{cfg: cfg, hier: hier}, nil
}

// Now reports the current simulated cycle.
func (c *CPU) Now() uint64 { return c.now }

// Run replays up to maxAccesses records from src (0 = until the source
// ends) and returns the timing result. Run may be called repeatedly;
// time continues from where the previous call stopped.
func (c *CPU) Run(src trace.Source, maxAccesses uint64) Result {
	var res Result
	for {
		if maxAccesses > 0 && res.Accesses >= maxAccesses {
			break
		}
		a, ok := src.Next()
		if !ok {
			break
		}
		res.Accesses++

		instr := a.Instructions()
		busy := uint64(float64(instr) * c.cfg.BaseCPI)
		if busy == 0 {
			busy = 1
		}
		c.now += busy
		stall := c.hier.Access(a, c.now)
		c.now += stall

		res.Instructions += instr
		res.Cycles += busy + stall
		res.StallCycles += stall
		res.CyclesByDomain[a.Domain] += busy + stall

		if c.cfg.IdleEvery > 0 && res.Accesses%c.cfg.IdleEvery == 0 {
			c.now += c.cfg.IdleCycles
			res.IdleCycles += c.cfg.IdleCycles
			// Let retention controllers and leakage meters observe the
			// idle stretch immediately.
			c.hier.Advance(c.now)
		}

		if res.Accesses%c.cfg.AdvanceEvery == 0 {
			c.hier.Advance(c.now)
		}
	}
	c.hier.Advance(c.now)
	return res
}
