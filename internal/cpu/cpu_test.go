package cpu

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func testHier(t *testing.T) *mem.Hierarchy {
	t.Helper()
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	l2, err := core.NewUnified(core.SegmentConfig{
		Name: "L2", SizeBytes: 256 * 1024, Ways: 8, BlockBytes: 64,
		Policy: cache.LRU, Tech: energy.SRAM, Refresh: sttram.DirtyOnly,
	}, func(addr uint64) { dram.Write(addr) })
	if err != nil {
		t.Fatal(err)
	}
	h, err := mem.NewHierarchy(mem.DefaultL1I(), mem.DefaultL1D(), l2, dram)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{BaseCPI: 0}).Validate(); err == nil {
		t.Fatal("zero CPI accepted")
	}
	if _, err := New(Config{BaseCPI: -1}, testHier(t)); err == nil {
		t.Fatal("negative CPI accepted")
	}
	if _, err := New(DefaultConfig(), nil); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
}

func TestRunCountsInstructionsAndCycles(t *testing.T) {
	c, err := New(DefaultConfig(), testHier(t))
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Access{
		{Addr: 0x1000, Gap: 4, Op: trace.Load, Domain: trace.User},    // 5 instructions
		{Addr: 0x1000, Gap: 0, Op: trace.Load, Domain: trace.User},    // 1 instruction, L1 hit
		{Addr: 0x2000, Gap: 9, Op: trace.Store, Domain: trace.Kernel}, // 10 instructions
	}
	res := c.Run(trace.NewSliceSource(recs), 0)
	if res.Accesses != 3 {
		t.Fatalf("accesses = %d, want 3", res.Accesses)
	}
	if res.Instructions != 16 {
		t.Fatalf("instructions = %d, want 16", res.Instructions)
	}
	if res.Cycles <= res.Instructions {
		t.Fatal("cycles must exceed instructions (cold misses stall)")
	}
	if res.StallCycles == 0 {
		t.Fatal("no stalls recorded despite cold misses")
	}
	if res.Cycles != res.Instructions+res.StallCycles {
		t.Fatalf("cycles %d != busy %d + stalls %d at CPI 1", res.Cycles, res.Instructions, res.StallCycles)
	}
	if res.CyclesByDomain[trace.User]+res.CyclesByDomain[trace.Kernel] != res.Cycles {
		t.Fatal("per-domain cycles do not sum to total")
	}
}

func TestRunLimit(t *testing.T) {
	c, err := New(DefaultConfig(), testHier(t))
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Access, 100)
	for i := range recs {
		recs[i] = trace.Access{Addr: uint64(i) * 64, Op: trace.Load, Domain: trace.User}
	}
	res := c.Run(trace.NewSliceSource(recs), 10)
	if res.Accesses != 10 {
		t.Fatalf("limited run replayed %d, want 10", res.Accesses)
	}
}

func TestIPCBoundedByBaseCPI(t *testing.T) {
	c, err := New(DefaultConfig(), testHier(t))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := workload.Generate(workload.Profile{
		Name: "t", KernelShare: 0.4,
		UserWorkingSet: 64 * workload.KB, KernelWorkingSet: 32 * workload.KB,
		UserZipf: 1, KernelZipf: 0.5, UserWriteRatio: 0.2, KernelWriteRatio: 0.5,
		IfetchFrac: 0.25, UserCodeSet: 16 * workload.KB, KernelCodeSet: 8 * workload.KB,
		UserBurstMean: 100, GapMean: 2,
	}, 7, 50000)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(trace.NewSliceSource(recs), 0)
	ipc := res.IPC()
	if ipc <= 0 || ipc > 1.0 {
		t.Fatalf("IPC = %g, want in (0,1] at base CPI 1", ipc)
	}
	if res.StallFraction() < 0 || res.StallFraction() >= 1 {
		t.Fatalf("stall fraction = %g", res.StallFraction())
	}
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	c, err := New(DefaultConfig(), testHier(t))
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Access{{Addr: 0x40, Op: trace.Load, Domain: trace.User}}
	c.Run(trace.NewSliceSource(recs), 0)
	t1 := c.Now()
	c.Run(trace.NewSliceSource(recs), 0)
	if c.Now() <= t1 {
		t.Fatal("time did not advance across runs")
	}
}

func TestIdleStretches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdleEvery = 10
	cfg.IdleCycles = 5000
	c, err := New(cfg, testHier(t))
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]trace.Access, 100)
	for i := range recs {
		recs[i] = trace.Access{Addr: uint64(i%4) * 64, Op: trace.Load, Domain: trace.User}
	}
	res := c.Run(trace.NewSliceSource(recs), 0)
	// 100 accesses / idle every 10 => 10 idle stretches.
	if res.IdleCycles != 10*5000 {
		t.Fatalf("idle cycles = %d, want 50000", res.IdleCycles)
	}
	// Idle time elapses on the wall clock but not in IPC.
	if res.WallCycles() != res.Cycles+res.IdleCycles {
		t.Fatal("wall cycles inconsistent")
	}
	if res.Cycles >= res.WallCycles() {
		t.Fatal("idle did not extend wall time")
	}
	// The simulated clock advanced past the idle time.
	if c.Now() < res.IdleCycles {
		t.Fatalf("clock %d did not include idle time", c.Now())
	}
}

func TestIdleAccumulatesLeakage(t *testing.T) {
	run := func(idle uint64) float64 {
		h := testHier(t)
		cfg := DefaultConfig()
		cfg.IdleEvery = 100
		cfg.IdleCycles = idle
		c, err := New(cfg, h)
		if err != nil {
			t.Fatal(err)
		}
		recs := make([]trace.Access, 2000)
		for i := range recs {
			recs[i] = trace.Access{Addr: uint64(i%16) * 64, Op: trace.Load, Domain: trace.User}
		}
		c.Run(trace.NewSliceSource(recs), 0)
		return h.Energy().L2.LeakageJ
	}
	if run(100_000) <= run(0)*2 {
		t.Fatal("idle stretches did not accumulate leakage")
	}
}

func TestEmptyResult(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.StallFraction() != 0 {
		t.Fatal("empty result should report zeros")
	}
}

func TestBiggerCacheNoWorseIPC(t *testing.T) {
	// Performance sanity: a machine with a larger L2 must not lose IPC
	// on a cache-pressured workload.
	run := func(size uint64) float64 {
		dram := mem.NewDRAM(mem.DefaultDRAMConfig())
		l2, err := core.NewUnified(core.SegmentConfig{
			Name: "L2", SizeBytes: size, Ways: 8, BlockBytes: 64,
			Policy: cache.LRU, Tech: energy.SRAM, Refresh: sttram.DirtyOnly,
		}, func(addr uint64) { dram.Write(addr) })
		if err != nil {
			t.Fatal(err)
		}
		h, err := mem.NewHierarchy(mem.DefaultL1I(), mem.DefaultL1D(), l2, dram)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(DefaultConfig(), h)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := workload.Generate(workload.Profile{
			Name: "pressure", KernelShare: 0.4,
			UserWorkingSet: 512 * workload.KB, KernelWorkingSet: 128 * workload.KB,
			UserZipf: 0.7, KernelZipf: 0.5, UserWriteRatio: 0.3, KernelWriteRatio: 0.5,
			IfetchFrac: 0.2, UserCodeSet: 64 * workload.KB, KernelCodeSet: 32 * workload.KB,
			UserBurstMean: 150, GapMean: 2,
		}, 11, 80000)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(trace.NewSliceSource(recs), 0).IPC()
	}
	small, big := run(64*1024), run(1024*1024)
	if big+1e-9 < small {
		t.Fatalf("bigger L2 lost IPC: %g vs %g", big, small)
	}
}
