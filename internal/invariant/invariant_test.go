package invariant

import (
	"errors"
	"math"
	"strings"
	"testing"

	"mobilecache/internal/cpu"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
)

// cleanReport builds a report satisfying every invariant; each test
// mutates one counter off it.
func cleanReport() Report {
	var r Report
	r.Machine = "stt-base"
	r.Workload = "browser"

	r.L2.Accesses[trace.User], r.L2.Hits[trace.User], r.L2.Misses[trace.User] = 100, 70, 30
	r.L2.Accesses[trace.Kernel], r.L2.Hits[trace.Kernel], r.L2.Misses[trace.Kernel] = 50, 40, 10
	r.L2.ExpiryInvalidations = 4
	r.L2.CleanExpiries = 3
	r.L2.DirtyExpiries = 1
	r.L2.FaultExpiries = 2
	r.L2.Evictions = 20
	r.L2.InterferenceEvictions = 5
	r.L2.Writebacks = 10
	r.L2.EagerWritebacks = 3
	r.L2.Refreshes = 5
	r.FlushWritebacks = 2

	r.DRAMReads = 35                                    // <= 40 misses
	r.DRAMWrites = r.L2.Writebacks - 1 + 3              // writebacks - dirty expiries + eager
	r.L2InstalledBytes, r.L2PoweredBytes = 1<<20, 1<<19 // half powered

	r.CPU = cpu.Result{
		Instructions: 150,
		Cycles:       400,
		Accesses:     150,
		StallCycles:  100,
	}
	r.CPU.CyclesByDomain[trace.User] = 300
	r.CPU.CyclesByDomain[trace.Kernel] = 100

	r.Energy = mem.EnergyReport{
		L1I:   energy.Breakdown{ReadJ: 1e-6, WriteJ: 1e-7, LeakageJ: 1e-8},
		L1D:   energy.Breakdown{ReadJ: 2e-6, WriteJ: 2e-7, LeakageJ: 2e-8},
		L2:    energy.Breakdown{ReadJ: 3e-6, WriteJ: 3e-7, LeakageJ: 3e-8, RefreshJ: 1e-9},
		DRAMJ: 5e-6,
	}
	return r
}

func TestCleanReportPasses(t *testing.T) {
	var a Auditor
	if vs := a.Check(cleanReport()); len(vs) != 0 {
		t.Fatalf("clean report flagged: %v", vs)
	}
	if err := a.Err(cleanReport()); err != nil {
		t.Fatalf("clean report errored: %v", err)
	}
}

// TestEachMiscountCaught injects one counter error at a time and
// asserts the auditor flags exactly the invariant that should break
// (some injections legitimately cascade into dependent checks, so we
// require the named check to be present, not alone).
func TestEachMiscountCaught(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"lost-user-hit", func(r *Report) { r.L2.Hits[trace.User]-- }, "l2.conservation.user"},
		{"extra-kernel-miss", func(r *Report) { r.L2.Misses[trace.Kernel]++ }, "l2.conservation.kernel"},
		{"unsplit-expiry", func(r *Report) { r.L2.CleanExpiries-- }, "l2.expiry.split"},
		{"phantom-fault-expiry", func(r *Report) { r.L2.FaultExpiries = 9 }, "l2.expiry.faults"},
		{"eviction-overflow", func(r *Report) { r.L2.Evictions = 100 }, "l2.evictions.bound"},
		{"writeback-overflow", func(r *Report) { r.L2.Writebacks = 30; r.DRAMWrites = 32 }, "l2.writebacks.bound"},
		{"flush-overflow", func(r *Report) { r.FlushWritebacks = 11; r.DRAMWrites = 12 }, "l2.flush.bound"},
		{"interference-overflow", func(r *Report) { r.L2.InterferenceEvictions = 21 }, "l2.interference.bound"},
		{"dram-read-overflow", func(r *Report) { r.DRAMReads = 41 }, "dram.reads.bound"},
		{"dram-write-leak", func(r *Report) { r.DRAMWrites++ }, "dram.writes.conservation"},
		{"dirty-expiry-underflow", func(r *Report) {
			r.L2.DirtyExpiries = 20
			r.L2.CleanExpiries = 0
			r.L2.ExpiryInvalidations = 20
		}, "l2.expiry.dirty.bound"},
		{"unattributed-cycles", func(r *Report) { r.CPU.CyclesByDomain[trace.User]-- }, "cpu.cycles.attribution"},
		{"stall-overflow", func(r *Report) {
			r.CPU.StallCycles = 500
		}, "cpu.stalls.bound"},
		{"impossible-speed", func(r *Report) {
			r.CPU.Cycles = 100
			r.CPU.CyclesByDomain[trace.User] = 50
			r.CPU.CyclesByDomain[trace.Kernel] = 50
			r.CPU.StallCycles = 10
		}, "cpu.cycles.bound"},
		{"nan-energy", func(r *Report) { r.Energy.L2.ReadJ = math.NaN() }, "energy.l2.read"},
		{"negative-energy", func(r *Report) { r.Energy.L1D.LeakageJ = -1e-9 }, "energy.l1d.leakage"},
		{"inf-dram-energy", func(r *Report) { r.Energy.DRAMJ = math.Inf(1) }, "energy.dram"},
		{"phantom-refresh", func(r *Report) { r.L2.Refreshes = 0 }, "energy.refresh.phantom"},
		{"missing-refresh", func(r *Report) { r.Energy.L2.RefreshJ = 0 }, "energy.refresh.missing"},
		{"overpowered", func(r *Report) { r.L2PoweredBytes = r.L2InstalledBytes + 1 }, "l2.capacity.powered"},
	}
	var a Auditor
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := cleanReport()
			tc.mutate(&r)
			vs := a.Check(r)
			found := false
			for _, v := range vs {
				if v.Check == tc.want {
					found = true
				}
			}
			if !found {
				t.Fatalf("miscount not caught: want %q among %v", tc.want, vs)
			}
		})
	}
}

func TestErrorShape(t *testing.T) {
	r := cleanReport()
	r.L2.Hits[trace.User]-- // one violation
	var a Auditor
	err := a.Err(r)
	if err == nil {
		t.Fatal("violating report produced no error")
	}
	var ie *Error
	if !errors.As(err, &ie) {
		t.Fatalf("error type %T, want *invariant.Error", err)
	}
	if ie.Machine != "stt-base" || ie.Workload != "browser" {
		t.Fatalf("error identity %q/%q", ie.Machine, ie.Workload)
	}
	// The duck-typed hook internal/runner uses to extract violations.
	var hook interface{ InvariantViolations() []string }
	if !errors.As(err, &hook) {
		t.Fatal("error does not expose InvariantViolations")
	}
	got := hook.InvariantViolations()
	if len(got) != 1 || !strings.Contains(got[0], "l2.conservation.user") {
		t.Fatalf("violations = %v", got)
	}
	if !strings.Contains(err.Error(), "stt-base/browser") {
		t.Fatalf("error text lacks run identity: %q", err.Error())
	}
}

func TestCheckAllOrders(t *testing.T) {
	good := cleanReport()
	bad := cleanReport()
	bad.Workload = "gallery"
	bad.DRAMWrites++
	var a Auditor
	errs := a.CheckAll([]Report{good, bad, good})
	if len(errs) != 1 || errs[0].Workload != "gallery" {
		t.Fatalf("CheckAll = %v", errs)
	}
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"off", ModeOff}, {"warn", ModeWarn}, {"strict", ModeStrict}} {
		m, err := ParseMode(tc.in)
		if err != nil || m != tc.want {
			t.Fatalf("ParseMode(%q) = %v, %v", tc.in, m, err)
		}
		if m.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, m.String())
		}
	}
	if _, err := ParseMode("loud"); err == nil {
		t.Fatal("ParseMode accepted junk")
	}
}

func TestSampleFactorCheck(t *testing.T) {
	r := cleanReport()
	for _, ok := range []int{0, 1, 2, 8, 128} {
		r.SampleFactor = ok
		if vs := (Auditor{}).Check(r); len(vs) != 0 {
			t.Errorf("factor %d: unexpected violations %v", ok, vs)
		}
	}
	for _, bad := range []int{-1, 3, 6, 100} {
		r.SampleFactor = bad
		vs := (Auditor{}).Check(r)
		found := false
		for _, v := range vs {
			if v.Check == "sample.factor" {
				found = true
			}
		}
		if !found {
			t.Errorf("factor %d: sample.factor violation not reported (got %v)", bad, vs)
		}
	}
}
