// Package invariant is the simulator's runtime self-check: an auditor
// that walks finished run reports and verifies the conservation laws
// the paper's energy and performance claims rest on — every access is
// a hit or a miss, every expiry is accounted exactly once, DRAM
// traffic is bounded by the cache events that cause it, and every
// energy bucket is finite and non-negative. The checks encode the
// *actual* counter semantics of internal/cache, internal/sttram and
// internal/mem (several are strict equalities), so a violating report
// means the simulator miscounted, not that the workload was unusual.
//
// The auditor sees only the uniform counters in a report, so it works
// identically for cold and warm (counter-diff) measurements and for
// every L2 organization, including fault-injected STT-RAM runs.
package invariant

import (
	"fmt"
	"math"
	"strings"

	"mobilecache/internal/core"
	"mobilecache/internal/cpu"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/trace"
)

// Mode selects how run paths react to a violating report.
type Mode uint8

const (
	// ModeOff disables auditing entirely.
	ModeOff Mode = iota
	// ModeWarn audits and logs violations without failing the run.
	ModeWarn
	// ModeStrict audits and turns violations into a structured *Error,
	// which parallel sweeps surface through the failure manifest.
	ModeStrict
	numModes
)

// String returns the canonical flag spelling.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeWarn:
		return "warn"
	case ModeStrict:
		return "strict"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMode maps a flag value to its Mode.
func ParseMode(s string) (Mode, error) {
	for m := Mode(0); m < numModes; m++ {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("invariant: unknown audit mode %q (want off, warn or strict)", s)
}

// Report is the auditable view of one finished simulation — a flat
// mirror of sim.RunReport's counters. It lives here rather than using
// sim.RunReport directly so internal/sim can import the auditor
// without a cycle.
type Report struct {
	Machine  string
	Workload string

	CPU    cpu.Result
	L2     core.L2Stats
	Energy mem.EnergyReport

	L2InstalledBytes uint64
	L2PoweredBytes   uint64
	DRAMReads        uint64
	DRAMWrites       uint64
	FlushWritebacks  uint64

	// SampleFactor marks a set-sampled run's report (the sampling
	// denominator; 0 or 1 = exact full simulation). Sampled raw
	// counters obey every conservation law an exact run does — the
	// simulated subset is a complete machine — and uniform scaling
	// preserves the identities, so the only sampled-specific check is
	// that the factor itself is well-formed.
	SampleFactor int
}

// Violation names one broken invariant in one report.
type Violation struct {
	// Check is the stable identifier of the invariant (for tests and
	// tooling), e.g. "l2.conservation.user".
	Check string
	// Detail states the violated relation with its observed numbers.
	Detail string
}

func (v Violation) String() string { return v.Check + ": " + v.Detail }

// Error is the structured failure a strict audit attaches to a run; it
// flows through internal/runner's RunError into the failure manifest.
type Error struct {
	Machine   string
	Workload  string
	Violation []Violation
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("invariant audit: %s/%s violates %d invariant(s): %s",
		e.Machine, e.Workload, len(e.Violation), e.summary())
}

func (e *Error) summary() string {
	var b strings.Builder
	for i, v := range e.Violation {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// InvariantViolations exposes the violations without importing this
// package — internal/runner detects audit failures through this
// interface method when building manifests.
func (e *Error) InvariantViolations() []string {
	out := make([]string, len(e.Violation))
	for i, v := range e.Violation {
		out[i] = v.String()
	}
	return out
}

// Auditor checks reports against the simulator's conservation laws.
// The zero value is ready to use.
type Auditor struct {
	// RelTol is the relative tolerance for floating-point identities;
	// zero selects 1e-9. Counter identities are exact and never use it.
	RelTol float64
}

func (a Auditor) tol() float64 {
	if a.RelTol > 0 {
		return a.RelTol
	}
	return 1e-9
}

// Check audits one report and returns every violated invariant (empty
// for a clean report). It never panics, whatever the report holds —
// fuzzed, corrupt and adversarial reports only yield violations.
func (a Auditor) Check(r Report) []Violation {
	var vs []Violation
	add := func(check, format string, args ...any) {
		vs = append(vs, Violation{Check: check, Detail: fmt.Sprintf(format, args...)})
	}

	// --- sampled-mode well-formedness ---
	if f := r.SampleFactor; f < 0 || (f > 0 && f&(f-1) != 0) {
		add("sample.factor", "sampling factor %d is not a positive power of two", f)
	}

	// --- cache conservation: accesses = hits + misses, per domain ---
	domains := [...]struct {
		name string
		d    trace.Domain
	}{{"user", trace.User}, {"kernel", trace.Kernel}}
	for _, dom := range domains {
		acc, hit, miss := r.L2.Accesses[dom.d], r.L2.Hits[dom.d], r.L2.Misses[dom.d]
		if hit+miss != acc {
			add("l2.conservation."+dom.name,
				"hits %d + misses %d != accesses %d", hit, miss, acc)
		}
	}

	// --- expiry accounting (exact: each expired line is counted once
	// in the cache and once, as clean or dirty, in the controller) ---
	if r.L2.CleanExpiries+r.L2.DirtyExpiries != r.L2.ExpiryInvalidations {
		add("l2.expiry.split",
			"clean %d + dirty %d expiries != expiry invalidations %d",
			r.L2.CleanExpiries, r.L2.DirtyExpiries, r.L2.ExpiryInvalidations)
	}
	// Fault expiries are a cause-attribution subset of all expiries.
	if r.L2.FaultExpiries > r.L2.CleanExpiries+r.L2.DirtyExpiries {
		add("l2.expiry.faults",
			"fault expiries %d exceed total expiries %d (a fault must surface as a clean or dirty expiry)",
			r.L2.FaultExpiries, r.L2.CleanExpiries+r.L2.DirtyExpiries)
	}

	// --- eviction bounds: every eviction is caused by a fill (which
	// was a counted miss in the same window) or a retention expiry ---
	if r.L2.Evictions > r.L2.TotalMisses()+r.L2.ExpiryInvalidations {
		add("l2.evictions.bound",
			"evictions %d exceed misses %d + expiries %d",
			r.L2.Evictions, r.L2.TotalMisses(), r.L2.ExpiryInvalidations)
	}
	// Writebacks come from dirty evictions or repartition flushes.
	if r.L2.Writebacks > r.L2.Evictions+r.FlushWritebacks {
		add("l2.writebacks.bound",
			"writebacks %d exceed evictions %d + flush writebacks %d",
			r.L2.Writebacks, r.L2.Evictions, r.FlushWritebacks)
	}
	if r.FlushWritebacks > r.L2.Writebacks {
		add("l2.flush.bound",
			"flush writebacks %d exceed total writebacks %d", r.FlushWritebacks, r.L2.Writebacks)
	}
	if r.L2.InterferenceEvictions > r.L2.Evictions {
		add("l2.interference.bound",
			"interference evictions %d exceed evictions %d", r.L2.InterferenceEvictions, r.L2.Evictions)
	}

	// --- DRAM traffic conservation ---
	// Demand and prefetch fills are the only DRAM readers, and each is
	// first counted as an L2 miss (L1-victim write misses allocate
	// without fetching, so <= rather than ==).
	if r.DRAMReads > r.L2.TotalMisses() {
		add("dram.reads.bound",
			"DRAM reads %d exceed L2 misses %d", r.DRAMReads, r.L2.TotalMisses())
	}
	// Exact: DRAM absorbs dirty evictions and flushes (both inside
	// Writebacks), minus dirty expiries (data lost, never written
	// back), plus eager writebacks (counted separately).
	wantWrites, underflow := dramWritesExpected(r.L2.Writebacks, r.L2.EagerWritebacks, r.L2.DirtyExpiries)
	if underflow {
		add("l2.expiry.dirty.bound",
			"dirty expiries %d exceed writebacks %d + eager writebacks %d",
			r.L2.DirtyExpiries, r.L2.Writebacks, r.L2.EagerWritebacks)
	} else if r.DRAMWrites != wantWrites {
		add("dram.writes.conservation",
			"DRAM writes %d != writebacks %d - dirty expiries %d + eager writebacks %d = %d",
			r.DRAMWrites, r.L2.Writebacks, r.L2.DirtyExpiries, r.L2.EagerWritebacks, wantWrites)
	}

	// --- CPU timing conservation ---
	var domSum uint64
	for d := 0; d < trace.NumDomains; d++ {
		domSum += r.CPU.CyclesByDomain[d]
	}
	if domSum != r.CPU.Cycles {
		add("cpu.cycles.attribution",
			"per-domain cycles sum %d != total cycles %d", domSum, r.CPU.Cycles)
	}
	if r.CPU.StallCycles > r.CPU.Cycles {
		add("cpu.stalls.bound",
			"stall cycles %d exceed total cycles %d", r.CPU.StallCycles, r.CPU.Cycles)
	}
	if r.CPU.Cycles < r.CPU.Accesses {
		add("cpu.cycles.bound",
			"cycles %d below accesses %d (every record costs at least one cycle)",
			r.CPU.Cycles, r.CPU.Accesses)
	}

	// --- energy sanity: every bucket finite and non-negative, refresh
	// energy present exactly when refreshes happened ---
	a.checkBreakdown(&vs, "energy.l1i", r.Energy.L1I)
	a.checkBreakdown(&vs, "energy.l1d", r.Energy.L1D)
	a.checkBreakdown(&vs, "energy.l2", r.Energy.L2)
	if !finiteNonNeg(r.Energy.DRAMJ) {
		add("energy.dram", "DRAM energy %g is negative or non-finite", r.Energy.DRAMJ)
	}
	total := r.Energy.TotalJ()
	sum := r.Energy.L1I.Total() + r.Energy.L1D.Total() + r.Energy.L2.Total() + r.Energy.DRAMJ
	if !approxEqual(total, sum, a.tol()) {
		add("energy.total", "hierarchy total %g != component sum %g", total, sum)
	}
	if r.L2.Refreshes == 0 && r.Energy.L2.RefreshJ > 0 {
		add("energy.refresh.phantom",
			"refresh energy %g J with zero refreshes", r.Energy.L2.RefreshJ)
	}
	if r.L2.Refreshes > 0 && r.Energy.L2.RefreshJ <= 0 {
		add("energy.refresh.missing",
			"%d refreshes but refresh energy %g J", r.L2.Refreshes, r.Energy.L2.RefreshJ)
	}

	// --- capacity ---
	if r.L2PoweredBytes > r.L2InstalledBytes {
		add("l2.capacity.powered",
			"powered bytes %d exceed installed bytes %d", r.L2PoweredBytes, r.L2InstalledBytes)
	}
	return vs
}

// dramWritesExpected computes writebacks - dirtyExpiries +
// eagerWritebacks without unsigned underflow; underflow itself is a
// (reported) violation.
func dramWritesExpected(writebacks, eager, dirtyExpiries uint64) (want uint64, underflow bool) {
	if writebacks+eager < dirtyExpiries {
		return 0, true
	}
	return writebacks + eager - dirtyExpiries, false
}

// checkBreakdown flags any negative or non-finite energy bucket.
func (a Auditor) checkBreakdown(vs *[]Violation, check string, b energy.Breakdown) {
	buckets := [...]struct {
		name string
		val  float64
	}{{"read", b.ReadJ}, {"write", b.WriteJ}, {"leakage", b.LeakageJ}, {"refresh", b.RefreshJ}}
	for _, bk := range buckets {
		if !finiteNonNeg(bk.val) {
			*vs = append(*vs, Violation{
				Check:  check + "." + bk.name,
				Detail: fmt.Sprintf("%s energy %g J is negative or non-finite", bk.name, bk.val),
			})
		}
	}
}

// Err wraps a non-empty violation list into the structured error
// (nil for a clean report).
func (a Auditor) Err(r Report) error {
	vs := a.Check(r)
	if len(vs) == 0 {
		return nil
	}
	return &Error{Machine: r.Machine, Workload: r.Workload, Violation: vs}
}

// CheckAll walks a batch of reports and returns one *Error per
// violating report, in input order.
func (a Auditor) CheckAll(rs []Report) []*Error {
	var errs []*Error
	for _, r := range rs {
		if vs := a.Check(r); len(vs) != 0 {
			errs = append(errs, &Error{Machine: r.Machine, Workload: r.Workload, Violation: vs})
		}
	}
	return errs
}

func finiteNonNeg(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0
}

// approxEqual compares within relative tolerance (absolute near zero).
func approxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}
