package invariant

import (
	"encoding/binary"
	"math"
	"testing"

	"mobilecache/internal/trace"
)

// FuzzAuditReport feeds the auditor arbitrary counter combinations —
// including the NaN/Inf and max-uint64 corners a real miscounting bug
// could produce — and asserts it always classifies, never panics, and
// stays consistent with its error constructor.
func FuzzAuditReport(f *testing.F) {
	// Seeds: all-zero, a handful of interesting bit patterns, and a
	// buffer long enough to populate every field.
	f.Add([]byte{})
	f.Add(make([]byte, 256))
	pat := make([]byte, 256)
	for i := range pat {
		pat[i] = byte(i * 37)
	}
	f.Add(pat)
	nan := make([]byte, 256)
	binary.LittleEndian.PutUint64(nan[200:], math.Float64bits(math.NaN()))
	binary.LittleEndian.PutUint64(nan[208:], math.Float64bits(math.Inf(-1)))
	f.Add(nan)

	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		nextU64 := func() uint64 {
			if pos+8 > len(data) {
				pos = 0 // wrap: short inputs still exercise all fields
			}
			if len(data) < 8 {
				return 0
			}
			v := binary.LittleEndian.Uint64(data[pos:])
			pos += 8
			return v
		}
		nextF64 := func() float64 { return math.Float64frombits(nextU64()) }

		var r Report
		r.Machine, r.Workload = "fuzz", "fuzz"
		for d := 0; d < trace.NumDomains; d++ {
			r.L2.Accesses[d] = nextU64()
			r.L2.Hits[d] = nextU64()
			r.L2.Misses[d] = nextU64()
			r.CPU.CyclesByDomain[d] = nextU64()
		}
		r.L2.Evictions = nextU64()
		r.L2.InterferenceEvictions = nextU64()
		r.L2.Writebacks = nextU64()
		r.L2.ExpiryInvalidations = nextU64()
		r.L2.Refreshes = nextU64()
		r.L2.EagerWritebacks = nextU64()
		r.L2.CleanExpiries = nextU64()
		r.L2.DirtyExpiries = nextU64()
		r.L2.FaultExpiries = nextU64()
		r.CPU.Instructions = nextU64()
		r.CPU.Cycles = nextU64()
		r.CPU.Accesses = nextU64()
		r.CPU.StallCycles = nextU64()
		r.CPU.IdleCycles = nextU64()
		r.L2InstalledBytes = nextU64()
		r.L2PoweredBytes = nextU64()
		r.DRAMReads = nextU64()
		r.DRAMWrites = nextU64()
		for _, bd := range []*float64{
			&r.Energy.L1I.ReadJ, &r.Energy.L1I.WriteJ, &r.Energy.L1I.LeakageJ, &r.Energy.L1I.RefreshJ,
			&r.Energy.L1D.ReadJ, &r.Energy.L1D.WriteJ, &r.Energy.L1D.LeakageJ, &r.Energy.L1D.RefreshJ,
			&r.Energy.L2.ReadJ, &r.Energy.L2.WriteJ, &r.Energy.L2.LeakageJ, &r.Energy.L2.RefreshJ,
			&r.Energy.DRAMJ,
		} {
			*bd = nextF64()
		}

		var a Auditor
		vs := a.Check(r) // must not panic on any input
		err := a.Err(r)
		if (err == nil) != (len(vs) == 0) {
			t.Fatalf("Err/Check disagree: err=%v, %d violations", err, len(vs))
		}
		for _, v := range vs {
			if v.Check == "" || v.Detail == "" {
				t.Fatalf("empty violation fields: %+v", v)
			}
		}
	})
}
