// Package tracestore is the shared trace arena behind the sweep
// engine: a memoizing store of packed, immutable workload traces keyed
// by (profile, seed, phase length, accesses). Every experiment cell
// (machine x app x seed) replays the byte-identical access stream, so
// generating it once and handing out zero-allocation replay cursors
// removes the dominant redundant work of a sweep — the seven standard
// machines alone regenerate each trace seven times without it.
//
// The store deduplicates concurrent generation (N goroutines asking for
// the same key trigger exactly one generator run; the rest wait) and
// bounds its memory with an LRU byte budget, so sweeps over many
// (app, seed) pairs degrade to regeneration instead of growing without
// limit.
//
// Traces are held in two tiers. The hot tier is the materialized record
// slice the generator produced, replayed zero-copy (trace.SliceCursor)
// with no per-record decoding; the packed tier is the struct-of-arrays
// compressed form, an order of magnitude smaller, replayed through a
// zero-allocation decoding cursor. Under budget pressure the store
// first demotes least-recently-used traces from hot to packed-only,
// then evicts them entirely.
//
// Synchronization is lock-striped (internal/shardlru): the trace key
// hashes to one of a small number of shards, each with its own mutex,
// LRU list and slice of the byte budget, so concurrent workers warming
// different traces — or hitting different warm ones — never serialize
// on a global mutex. Eviction and demotion decisions are therefore
// shard-local (an LRU-locality change only; the streams a hit returns
// are byte-identical either way), and derived variants (DeriveTrace)
// hash like any other key, so a base trace and its variants spread
// across shards independently.
package tracestore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"unsafe"

	"mobilecache/internal/shardlru"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

// DefaultBudgetBytes is the default LRU capacity (256 MB across both
// tiers — roughly a dozen full-scale app traces in hot decoded form,
// or a hundred demoted to their packed streams).
const DefaultBudgetBytes = 256 << 20

// DefaultShards is the arena's default stripe count. Traces are few
// and large (tens of MB hot), so the count stays small: each shard's
// slice of the byte budget must still hold whole hot traces, or
// striping the budget would force demotions a global budget wouldn't.
const DefaultShards = 8

// Key identifies one generated trace. Two cells with equal keys replay
// byte-identical streams regardless of the machine under test.
type Key struct {
	// Profile is the workload profile name.
	Profile string
	// Digest is a content hash of the whole profile. The name alone is
	// not a safe identity: a profile modified under an unchanged name
	// (an experiment perturbing burst lengths, say) would otherwise
	// replay the stale trace generated for the original.
	Digest [sha256.Size]byte
	// Seed drives the generator.
	Seed uint64
	// PhaseLen is the per-phase access count (see workload.PhaseLen).
	PhaseLen uint64
	// Accesses is the trace length.
	Accesses int
	// Variant is empty for generator traces. Derived forms (see
	// DeriveTrace) set it to the transform's identity tag, so a base
	// trace and its derived streams coexist in the arena without
	// aliasing.
	Variant string
}

// shardHash spreads a key across shards: the profile digest is already
// uniform, and the remaining fields (seed, lengths, variant) are mixed
// in so sibling traces of one profile land on different stripes.
func shardHash(k Key) uint64 {
	h := binary.LittleEndian.Uint64(k.Digest[:8])
	h = shardlru.Mix64(h ^ k.Seed)
	h = shardlru.Mix64(h ^ k.PhaseLen)
	h = shardlru.Mix64(h ^ uint64(k.Accesses))
	if k.Variant != "" {
		f := fnv.New64a()
		f.Write([]byte(k.Variant))
		h = shardlru.Mix64(h ^ f.Sum64())
	}
	return h
}

// KeyFor derives the store key a full-trace run of prof uses, applying
// the same phase-length rule as sim.RunWorkload.
func KeyFor(prof workload.Profile, seed uint64, accesses int) Key {
	// Profiles are plain data; marshal only fails for non-finite
	// floats, which the generator rejects anyway — such a key can never
	// reach a usable trace, so a zero digest is harmless.
	b, _ := json.Marshal(prof)
	return Key{
		Profile:  prof.Name,
		Digest:   sha256.Sum256(b),
		Seed:     seed,
		PhaseLen: workload.PhaseLen(prof, accesses),
		Accesses: accesses,
	}
}

// Stats is a snapshot of the store's counters. A sweep surfaces these
// in its run summary so cache effectiveness is visible.
type Stats struct {
	// Hits counts Gets served from memory, including callers that
	// joined an in-flight generation instead of starting their own.
	Hits uint64
	// Misses counts Gets that had to start a generation.
	Misses uint64
	// Generated counts completed generations (misses minus failures).
	Generated uint64
	// Derived counts completed derived-trace builds (DeriveTrace
	// misses that ran their transform; included in Misses/Generated
	// alongside base generations).
	Derived uint64
	// Evictions counts traces dropped by the LRU budget.
	Evictions uint64
	// Demotions counts hot decoded forms dropped to fit the budget
	// while their packed form stayed resident.
	Demotions uint64
	// BytesInUse and Entries describe the current resident set.
	BytesInUse int64
	Entries    int
	// Shards is the stripe count; MaxShardEntries/MinShardEntries the
	// most and least populated stripes (the /metrics skew gauge).
	Shards          int
	MaxShardEntries int
	MinShardEntries int
}

// entry is one cached trace plus its singleflight state: ready is
// closed once packed/err are final, and waiters block on it outside
// the shard lock.
type entry struct {
	key   Key
	ready chan struct{}

	// packed, err and meta are written by the generating goroutine
	// before ready closes and immutable afterwards; waiters read them
	// only after <-ready (the close is the happens-before edge).
	packed *trace.Packed
	err    error
	// meta is the opaque metadata a DeriveTrace build returned (nil
	// for base traces).
	meta any

	// decoded is the hot-tier form: the materialized record slice the
	// generator produced, kept alongside the packed streams so replays
	// can skip per-record decoding entirely. Under budget pressure the
	// shard demotes entries to packed-only (the cache's Demote hook) by
	// dropping this slice; demoted traces replay through a packed
	// cursor instead. Both fields are guarded by the entry's shard lock
	// once the entry is committed. Readers treat the slice as
	// immutable.
	decoded      []trace.Access
	decodedBytes int64
}

// sizeBytes is the entry's total charge against the LRU budget.
func (e *entry) sizeBytes() int64 {
	if e.packed == nil {
		return 0
	}
	return e.packed.SizeBytes() + e.decodedBytes
}

// Store memoizes packed traces with singleflight generation and a
// lock-striped LRU byte budget. The zero value is not usable; call New.
type Store struct {
	cache *shardlru.Cache[Key, *entry]

	// generated/derived count completed builds; they live here (not in
	// the sharded cache) because the cache only sees lookups and
	// insertions, not which insertions came from a derive transform.
	generated atomic.Uint64
	derived   atomic.Uint64

	// onGenerate, when set, observes every generation start (test hook
	// for counting deduplicated work).
	hookMu     sync.Mutex
	onGenerate func(Key)
}

// New builds a store with the given LRU byte budget and the default
// stripe count; budgetBytes <= 0 means unlimited.
func New(budgetBytes int64) *Store {
	return NewSharded(budgetBytes, DefaultShards)
}

// NewSharded is New with an explicit stripe count (rounded to a power
// of two; see shardlru.Config). Tests pin exact global-LRU eviction
// order with shards = 1; the contention benchmark uses the same
// configuration as its global-lock baseline.
func NewSharded(budgetBytes int64, shards int) *Store {
	s := &Store{}
	s.cache = shardlru.New(shardlru.Config[Key, *entry]{
		Shards: shards,
		Budget: budgetBytes, // <= 0 is unlimited in both layers
		Hash:   shardHash,
		Demote: func(_ Key, e *entry) int64 {
			r := e.decodedBytes
			e.decoded, e.decodedBytes = nil, 0
			return r
		},
	})
	return s
}

// SetGenerateHook installs fn to be called at the start of every trace
// generation (nil removes it). Tests use it to prove deduplication.
func (s *Store) SetGenerateHook(fn func(Key)) {
	s.hookMu.Lock()
	s.onGenerate = fn
	s.hookMu.Unlock()
}

func (s *Store) generateHook() func(Key) {
	s.hookMu.Lock()
	defer s.hookMu.Unlock()
	return s.onGenerate
}

// Stats returns a snapshot of the counters, aggregated across shards
// without a global lock.
func (s *Store) Stats() Stats {
	cs := s.cache.Stats()
	return Stats{
		Hits:            cs.Hits,
		Misses:          cs.Misses,
		Generated:       s.generated.Load(),
		Derived:         s.derived.Load(),
		Evictions:       cs.Evictions,
		Demotions:       cs.Demotions,
		BytesInUse:      cs.CostInUse,
		Entries:         cs.Entries,
		Shards:          cs.Shards,
		MaxShardEntries: cs.MaxShardEntries,
		MinShardEntries: cs.MinShardEntries,
	}
}

// Trace is one store result: the packed form is always present, and
// Records additionally holds the hot-tier decoded form when the budget
// let the store keep it — replay that directly (via trace.SliceCursor)
// to skip per-record decoding. Both forms are immutable and describe
// the byte-identical stream.
type Trace struct {
	Packed  *trace.Packed
	Records []trace.Access
}

// Cursor returns the fastest available replay source for the trace: a
// zero-copy slice cursor over the hot decoded form when resident, else
// a zero-allocation packed cursor.
func (t Trace) Cursor() trace.Source {
	if t.Records != nil {
		cur := trace.NewSliceCursor(t.Records)
		return &cur
	}
	cur := t.Packed.Cursor()
	return &cur
}

// Get returns the packed trace for (prof, seed, accesses), generating
// it on first request. Concurrent Gets for one key share a single
// generation. The returned Packed is immutable — callers replay it
// through their own cursors and must not retain it longer than needed
// (the LRU may drop it from the store at any time; dropped traces stay
// valid for existing holders).
func (s *Store) Get(prof workload.Profile, seed uint64, accesses int) (*trace.Packed, error) {
	tr, err := s.GetTrace(prof, seed, accesses)
	return tr.Packed, err
}

// GetTrace is Get plus the hot-tier decoded form when resident (see
// Trace). The same retention rules apply to both forms.
func (s *Store) GetTrace(prof workload.Profile, seed uint64, accesses int) (Trace, error) {
	if accesses <= 0 {
		return Trace{}, fmt.Errorf("tracestore: accesses %d must be positive", accesses)
	}
	key := KeyFor(prof, seed, accesses)
	return s.getOrBuild(key, func() (*trace.Packed, []trace.Access, any, error) {
		if hook := s.generateHook(); hook != nil {
			hook(key)
		}
		p, recs, err := generate(prof, seed, key)
		return p, recs, nil, err
	})
}

// DeriveTrace returns a derived form of the (prof, seed, accesses)
// trace — a deterministic per-record transform like set-sample
// filtering — built at most once per variant tag and cached in the
// same lock-striped LRU as base traces (hot decoded forms demote
// first, whole entries evict last; an evicted derived trace is rebuilt
// from its base on the next request). build receives the base trace
// and returns the derived packed and decoded forms plus opaque
// metadata the store hands back on every hit (e.g. the filter's
// measured statistics — anything a replay of the derived stream alone
// could not recover). The variant tag must capture the transform's
// full identity: two different transforms under one tag would alias.
//
// Like Get, concurrent calls for one (key, variant) share a single
// build, and failures are not cached.
func (s *Store) DeriveTrace(prof workload.Profile, seed uint64, accesses int, variant string,
	build func(Trace) (*trace.Packed, []trace.Access, any, error)) (Trace, any, error) {
	if variant == "" {
		return Trace{}, nil, fmt.Errorf("tracestore: DeriveTrace needs a variant tag")
	}
	base, err := s.GetTrace(prof, seed, accesses)
	if err != nil {
		return Trace{}, nil, err
	}
	key := KeyFor(prof, seed, accesses)
	key.Variant = variant
	tr, meta, err := s.getOrBuildMeta(key, func() (*trace.Packed, []trace.Access, any, error) {
		return build(base)
	}, &s.derived)
	return tr, meta, err
}

// getOrBuild is getOrBuildMeta discarding the metadata (base traces
// carry none).
func (s *Store) getOrBuild(key Key, build func() (*trace.Packed, []trace.Access, any, error)) (Trace, error) {
	tr, _, err := s.getOrBuildMeta(key, build, nil)
	return tr, err
}

// getOrBuildMeta is the store's single lookup/build path: join (or
// start) the singleflight entry for key, run build outside any lock on
// a miss, commit the result into the key's shard and return the
// coherent hot/packed forms. derived, when non-nil, is bumped alongside
// the generated counter on successful builds.
func (s *Store) getOrBuildMeta(key Key, build func() (*trace.Packed, []trace.Access, any, error),
	derived *atomic.Uint64) (Trace, any, error) {
	e := &entry{key: key, ready: make(chan struct{})}
	got, reserved := s.cache.GetOrReserve(key, e)
	if !reserved {
		e = got
		<-e.ready
		if e.err != nil {
			return Trace{}, nil, e.err
		}
		// packed, err and meta are immutable once ready closes, but
		// decoded can be demoted at any time — re-read it under the
		// shard lock. The entry may have been evicted (or even replaced)
		// since the lookup; its packed form stays valid regardless, and
		// a demoted or evicted entry simply replays packed.
		var recs []trace.Access
		s.cache.WithShardLock(key, func() { recs = e.decoded })
		return Trace{Packed: e.packed, Records: recs}, e.meta, nil
	}

	packed, recs, meta, err := build()

	e.packed, e.err, e.meta = packed, err, meta
	if err != nil {
		// Failures are not cached: a later Get retries.
		s.cache.Delete(key)
		close(e.ready)
		return Trace{}, nil, err
	}
	e.decoded = recs
	e.decodedBytes = int64(len(recs)) * int64(unsafe.Sizeof(trace.Access{}))
	s.generated.Add(1)
	if derived != nil {
		derived.Add(1)
	}
	// Commit charges the entry and may demote it on the spot (its shard
	// budget can be smaller than the hot form); re-read decoded under
	// the shard lock for a coherent return.
	s.cache.Commit(key, e.sizeBytes())
	s.cache.WithShardLock(key, func() { recs = e.decoded })
	close(e.ready)
	return Trace{Packed: packed, Records: recs}, meta, nil
}

// generate runs the workload generator for exactly the stream
// sim.RunWorkload would replay, materializing the records and packing
// them. Both forms come from the same generator pass, so they are
// identical by construction.
func generate(prof workload.Profile, seed uint64, key Key) (*trace.Packed, []trace.Access, error) {
	gen, err := workload.NewGenerator(prof, seed, key.PhaseLen)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]trace.Access, 0, key.Accesses)
	for len(recs) < key.Accesses {
		a, ok := gen.Next()
		if !ok {
			break
		}
		recs = append(recs, a)
	}
	return trace.PackSlice(recs), recs, nil
}
