// Package tracestore is the shared trace arena behind the sweep
// engine: a memoizing store of packed, immutable workload traces keyed
// by (profile, seed, phase length, accesses). Every experiment cell
// (machine x app x seed) replays the byte-identical access stream, so
// generating it once and handing out zero-allocation replay cursors
// removes the dominant redundant work of a sweep — the seven standard
// machines alone regenerate each trace seven times without it.
//
// The store deduplicates concurrent generation (N goroutines asking for
// the same key trigger exactly one generator run; the rest wait) and
// bounds its memory with an LRU byte budget, so sweeps over many
// (app, seed) pairs degrade to regeneration instead of growing without
// limit.
//
// Traces are held in two tiers. The hot tier is the materialized record
// slice the generator produced, replayed zero-copy (trace.SliceCursor)
// with no per-record decoding; the packed tier is the struct-of-arrays
// compressed form, an order of magnitude smaller, replayed through a
// zero-allocation decoding cursor. Under budget pressure the store
// first demotes least-recently-used traces from hot to packed-only,
// then evicts them entirely.
package tracestore

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"unsafe"

	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

// DefaultBudgetBytes is the default LRU capacity (256 MB across both
// tiers — roughly a dozen full-scale app traces in hot decoded form,
// or a hundred demoted to their packed streams).
const DefaultBudgetBytes = 256 << 20

// Key identifies one generated trace. Two cells with equal keys replay
// byte-identical streams regardless of the machine under test.
type Key struct {
	// Profile is the workload profile name.
	Profile string
	// Digest is a content hash of the whole profile. The name alone is
	// not a safe identity: a profile modified under an unchanged name
	// (an experiment perturbing burst lengths, say) would otherwise
	// replay the stale trace generated for the original.
	Digest [sha256.Size]byte
	// Seed drives the generator.
	Seed uint64
	// PhaseLen is the per-phase access count (see workload.PhaseLen).
	PhaseLen uint64
	// Accesses is the trace length.
	Accesses int
	// Variant is empty for generator traces. Derived forms (see
	// DeriveTrace) set it to the transform's identity tag, so a base
	// trace and its derived streams coexist in the arena without
	// aliasing.
	Variant string
}

// KeyFor derives the store key a full-trace run of prof uses, applying
// the same phase-length rule as sim.RunWorkload.
func KeyFor(prof workload.Profile, seed uint64, accesses int) Key {
	// Profiles are plain data; marshal only fails for non-finite
	// floats, which the generator rejects anyway — such a key can never
	// reach a usable trace, so a zero digest is harmless.
	b, _ := json.Marshal(prof)
	return Key{
		Profile:  prof.Name,
		Digest:   sha256.Sum256(b),
		Seed:     seed,
		PhaseLen: workload.PhaseLen(prof, accesses),
		Accesses: accesses,
	}
}

// Stats is a snapshot of the store's counters. A sweep surfaces these
// in its run summary so cache effectiveness is visible.
type Stats struct {
	// Hits counts Gets served from memory, including callers that
	// joined an in-flight generation instead of starting their own.
	Hits uint64
	// Misses counts Gets that had to start a generation.
	Misses uint64
	// Generated counts completed generations (misses minus failures).
	Generated uint64
	// Derived counts completed derived-trace builds (DeriveTrace
	// misses that ran their transform; included in Misses/Generated
	// alongside base generations).
	Derived uint64
	// Evictions counts traces dropped by the LRU budget.
	Evictions uint64
	// Demotions counts hot decoded forms dropped to fit the budget
	// while their packed form stayed resident.
	Demotions uint64
	// BytesInUse and Entries describe the current resident set.
	BytesInUse int64
	Entries    int
}

// entry is one cached trace plus its singleflight state: ready is
// closed once packed/err are final, and waiters block on it outside
// the store lock.
type entry struct {
	key    Key
	ready  chan struct{}
	packed *trace.Packed
	err    error
	// meta is the opaque metadata a DeriveTrace build returned (nil
	// for base traces); immutable once ready closes.
	meta any

	// decoded is the hot-tier form: the materialized record slice the
	// generator produced, kept alongside the packed streams so replays
	// can skip per-record decoding entirely. Under budget pressure the
	// store demotes entries to packed-only (see evictOverBudget) by
	// dropping this slice; demoted traces replay through a packed
	// cursor instead. Readers treat the slice as immutable.
	decoded      []trace.Access
	decodedBytes int64

	prev, next *entry // LRU list links; nil until generation completes
	inList     bool
}

// sizeBytes is the entry's total charge against the LRU budget.
func (e *entry) sizeBytes() int64 {
	if e.packed == nil {
		return 0
	}
	return e.packed.SizeBytes() + e.decodedBytes
}

// Store memoizes packed traces with singleflight generation and an LRU
// byte budget. The zero value is not usable; call New.
type Store struct {
	mu      sync.Mutex
	budget  int64
	entries map[Key]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	stats   Stats

	// onGenerate, when set, observes every generation start (test hook
	// for counting deduplicated work).
	onGenerate func(Key)
}

// New builds a store with the given LRU byte budget; budgetBytes <= 0
// means unlimited.
func New(budgetBytes int64) *Store {
	return &Store{budget: budgetBytes, entries: map[Key]*entry{}}
}

// SetGenerateHook installs fn to be called at the start of every trace
// generation (nil removes it). Tests use it to prove deduplication.
func (s *Store) SetGenerateHook(fn func(Key)) {
	s.mu.Lock()
	s.onGenerate = fn
	s.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	return st
}

// Trace is one store result: the packed form is always present, and
// Records additionally holds the hot-tier decoded form when the budget
// let the store keep it — replay that directly (via trace.SliceCursor)
// to skip per-record decoding. Both forms are immutable and describe
// the byte-identical stream.
type Trace struct {
	Packed  *trace.Packed
	Records []trace.Access
}

// Cursor returns the fastest available replay source for the trace: a
// zero-copy slice cursor over the hot decoded form when resident, else
// a zero-allocation packed cursor.
func (t Trace) Cursor() trace.Source {
	if t.Records != nil {
		cur := trace.NewSliceCursor(t.Records)
		return &cur
	}
	cur := t.Packed.Cursor()
	return &cur
}

// Get returns the packed trace for (prof, seed, accesses), generating
// it on first request. Concurrent Gets for one key share a single
// generation. The returned Packed is immutable — callers replay it
// through their own cursors and must not retain it longer than needed
// (the LRU may drop it from the store at any time; dropped traces stay
// valid for existing holders).
func (s *Store) Get(prof workload.Profile, seed uint64, accesses int) (*trace.Packed, error) {
	tr, err := s.GetTrace(prof, seed, accesses)
	return tr.Packed, err
}

// GetTrace is Get plus the hot-tier decoded form when resident (see
// Trace). The same retention rules apply to both forms.
func (s *Store) GetTrace(prof workload.Profile, seed uint64, accesses int) (Trace, error) {
	if accesses <= 0 {
		return Trace{}, fmt.Errorf("tracestore: accesses %d must be positive", accesses)
	}
	key := KeyFor(prof, seed, accesses)

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.Hits++
		s.moveToFront(e)
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return Trace{}, e.err
		}
		// packed and err are immutable once ready closes, but decoded
		// can be demoted at any time — re-read it under the lock.
		s.mu.Lock()
		recs := e.decoded
		s.mu.Unlock()
		return Trace{Packed: e.packed, Records: recs}, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	s.entries[key] = e
	s.stats.Misses++
	hook := s.onGenerate
	s.mu.Unlock()

	if hook != nil {
		hook(key)
	}
	packed, recs, err := generate(prof, seed, key)

	s.mu.Lock()
	e.packed, e.err = packed, err
	if err != nil {
		// Failures are not cached: a later Get retries.
		delete(s.entries, key)
	} else {
		e.decoded = recs
		e.decodedBytes = int64(len(recs)) * int64(unsafe.Sizeof(trace.Access{}))
		s.stats.Generated++
		s.stats.BytesInUse += e.sizeBytes()
		s.pushFront(e)
		s.evictOverBudget(e)
		recs = e.decoded // may be nil if the budget demoted even e
	}
	s.mu.Unlock()
	close(e.ready)
	return Trace{Packed: packed, Records: recs}, err
}

// DeriveTrace returns a derived form of the (prof, seed, accesses)
// trace — a deterministic per-record transform like set-sample
// filtering — built at most once per variant tag and cached in the
// same LRU as base traces (hot decoded forms demote first, whole
// entries evict last; an evicted derived trace is rebuilt from its
// base on the next request). build receives the base trace and returns
// the derived packed and decoded forms plus opaque metadata the store
// hands back on every hit (e.g. the filter's measured statistics —
// anything a replay of the derived stream alone could not recover).
// The variant tag must capture the transform's full identity: two
// different transforms under one tag would alias.
//
// Like Get, concurrent calls for one (key, variant) share a single
// build, and failures are not cached.
func (s *Store) DeriveTrace(prof workload.Profile, seed uint64, accesses int, variant string,
	build func(Trace) (*trace.Packed, []trace.Access, any, error)) (Trace, any, error) {
	if variant == "" {
		return Trace{}, nil, fmt.Errorf("tracestore: DeriveTrace needs a variant tag")
	}
	base, err := s.GetTrace(prof, seed, accesses)
	if err != nil {
		return Trace{}, nil, err
	}
	key := KeyFor(prof, seed, accesses)
	key.Variant = variant

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.Hits++
		s.moveToFront(e)
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return Trace{}, nil, e.err
		}
		s.mu.Lock()
		recs := e.decoded
		s.mu.Unlock()
		return Trace{Packed: e.packed, Records: recs}, e.meta, nil
	}
	e := &entry{key: key, ready: make(chan struct{})}
	s.entries[key] = e
	s.stats.Misses++
	s.mu.Unlock()

	packed, recs, meta, err := build(base)

	s.mu.Lock()
	e.packed, e.err, e.meta = packed, err, meta
	if err != nil {
		delete(s.entries, key)
	} else {
		e.decoded = recs
		e.decodedBytes = int64(len(recs)) * int64(unsafe.Sizeof(trace.Access{}))
		s.stats.Generated++
		s.stats.Derived++
		s.stats.BytesInUse += e.sizeBytes()
		s.pushFront(e)
		s.evictOverBudget(e)
		recs = e.decoded
	}
	s.mu.Unlock()
	close(e.ready)
	return Trace{Packed: packed, Records: recs}, meta, err
}

// generate runs the workload generator for exactly the stream
// sim.RunWorkload would replay, materializing the records and packing
// them. Both forms come from the same generator pass, so they are
// identical by construction.
func generate(prof workload.Profile, seed uint64, key Key) (*trace.Packed, []trace.Access, error) {
	gen, err := workload.NewGenerator(prof, seed, key.PhaseLen)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]trace.Access, 0, key.Accesses)
	for len(recs) < key.Accesses {
		a, ok := gen.Next()
		if !ok {
			break
		}
		recs = append(recs, a)
	}
	return trace.PackSlice(recs), recs, nil
}

// moveToFront marks e most recently used (no-op while it is still
// generating and not yet in the list).
func (s *Store) moveToFront(e *entry) {
	if !e.inList || s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *Store) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
	e.inList = true
}

func (s *Store) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.inList = false
}

// evictOverBudget brings the resident bytes back under the budget in
// two stages, least recently used first: demote entries to packed-only
// by dropping their hot decoded form (an order of magnitude smaller,
// still replayable), then evict whole entries. The just-inserted entry
// (keep) survives both stages even when it alone exceeds the budget —
// its caller is about to replay it. Evicted traces remain valid for
// goroutines already holding them; the store merely forgets them.
func (s *Store) evictOverBudget(keep *entry) {
	if s.budget <= 0 {
		return
	}
	for e := s.tail; s.stats.BytesInUse > s.budget && e != nil; e = e.prev {
		if e == keep || e.decoded == nil {
			continue
		}
		s.stats.BytesInUse -= e.decodedBytes
		e.decoded, e.decodedBytes = nil, 0
		s.stats.Demotions++
	}
	for s.stats.BytesInUse > s.budget && s.tail != nil && s.tail != keep {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.stats.BytesInUse -= victim.sizeBytes()
		s.stats.Evictions++
	}
	// keep is exempt from eviction, not from demotion: if it alone
	// still busts the budget, its packed form is what stays resident.
	if s.stats.BytesInUse > s.budget && keep != nil && keep.decoded != nil {
		s.stats.BytesInUse -= keep.decodedBytes
		keep.decoded, keep.decodedBytes = nil, 0
		s.stats.Demotions++
	}
}
