package tracestore

import (
	"sync"
	"sync/atomic"
	"testing"

	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func testProfile(name string) workload.Profile {
	return workload.Profile{
		Name:             name,
		KernelShare:      0.4,
		UserWorkingSet:   64 * 1024,
		KernelWorkingSet: 32 * 1024,
		UserZipf:         0.9,
		KernelZipf:       0.7,
		UserWriteRatio:   0.2,
		KernelWriteRatio: 0.5,
		IfetchFrac:       0.2,
		UserCodeSet:      16 * 1024,
		KernelCodeSet:    16 * 1024,
		UserBurstMean:    20,
		GapMean:          3,
		Phases:           3,
	}
}

// TestGetMatchesGenerator proves the cached stream is byte-identical
// to what sim.RunWorkload's generator produces for the same inputs.
func TestGetMatchesGenerator(t *testing.T) {
	prof := testProfile("app")
	const n = 20_000
	s := New(0)
	p, err := s.Get(prof, 7, n)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != n {
		t.Fatalf("packed trace has %d records, want %d", p.Len(), n)
	}
	gen, err := workload.NewGenerator(prof, 7, workload.PhaseLen(prof, n))
	if err != nil {
		t.Fatal(err)
	}
	want := trace.Collect(trace.NewLimitSource(gen, n), n)
	cur := p.Cursor()
	for i, w := range want {
		g, ok := cur.Next()
		if !ok || g != w {
			t.Fatalf("record %d = %+v (ok=%v), want %+v", i, g, ok, w)
		}
	}
}

func TestHitMissStats(t *testing.T) {
	prof := testProfile("app")
	s := New(0)
	if _, err := s.Get(prof, 1, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(prof, 1, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(prof, 2, 5000); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Misses != 2 || st.Hits != 1 || st.Generated != 2 {
		t.Fatalf("stats = %+v, want 2 misses, 1 hit, 2 generated", st)
	}
	if st.Entries != 2 || st.BytesInUse <= 0 {
		t.Fatalf("resident set wrong: %+v", st)
	}
}

// TestSingleFlight is the concurrency guarantee: N goroutines asking
// for one key trigger exactly one generation. Run under -race.
func TestSingleFlight(t *testing.T) {
	prof := testProfile("app")
	s := New(0)
	var generations atomic.Int64
	s.SetGenerateHook(func(Key) { generations.Add(1) })

	const goroutines = 16
	var wg sync.WaitGroup
	packs := make([]*trace.Packed, goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			p, err := s.Get(prof, 3, 30_000)
			if err != nil {
				t.Error(err)
				return
			}
			packs[i] = p
		}(i)
	}
	close(start)
	wg.Wait()

	if n := generations.Load(); n != 1 {
		t.Fatalf("%d generations for one key, want exactly 1", n)
	}
	for i, p := range packs {
		if p != packs[0] {
			t.Fatalf("goroutine %d got a different Packed instance", i)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

// TestConcurrentDistinctKeys exercises parallel generation of many
// keys under -race.
func TestConcurrentDistinctKeys(t *testing.T) {
	prof := testProfile("app")
	s := New(0)
	var wg sync.WaitGroup
	for seed := uint64(1); seed <= 8; seed++ {
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				if _, err := s.Get(prof, seed, 5000); err != nil {
					t.Error(err)
				}
			}(seed)
		}
	}
	wg.Wait()
	st := s.Stats()
	if st.Generated != 8 {
		t.Fatalf("generated %d traces for 8 distinct keys", st.Generated)
	}
}

// TestGetTraceTiers: an unlimited budget keeps the hot decoded form
// alongside the packed streams; a starved budget demotes entries to
// packed-only while they stay resident and replayable.
func TestGetTraceTiers(t *testing.T) {
	prof := testProfile("app")
	const n = 5000

	s := New(0)
	tr, err := s.GetTrace(prof, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Packed == nil || tr.Packed.Len() != n {
		t.Fatalf("packed form missing or truncated: %+v", tr.Packed)
	}
	if len(tr.Records) != n {
		t.Fatalf("hot decoded form has %d records, want %d", len(tr.Records), n)
	}
	// The two forms describe the identical stream.
	cur := tr.Packed.Cursor()
	for i, w := range tr.Records {
		if g, ok := cur.Next(); !ok || g != w {
			t.Fatalf("record %d: packed %+v (ok=%v) != decoded %+v", i, g, ok, w)
		}
	}

	s = New(1)
	tr, err = s.GetTrace(prof, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Records != nil {
		t.Fatal("1-byte budget retained a hot decoded form")
	}
	if tr.Packed == nil || tr.Packed.Len() != n {
		t.Fatal("demoted entry lost its packed form")
	}
	st := s.Stats()
	if st.Demotions == 0 || st.Entries != 1 {
		t.Fatalf("stats after demotion = %+v", st)
	}
	// A later hit replays the packed form; Trace.Cursor falls back.
	tr2, err := s.GetTrace(prof, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Records != nil || tr2.Packed != tr.Packed {
		t.Fatalf("hit after demotion returned %+v", tr2)
	}
	if src := tr2.Cursor(); src == nil {
		t.Fatal("no cursor for demoted trace")
	} else if _, ok := src.(*trace.Cursor); !ok {
		t.Fatalf("demoted trace cursor is %T, want *trace.Cursor", src)
	}
	if src := (Trace{Packed: tr.Packed, Records: make([]trace.Access, 1)}).Cursor(); src == nil {
		t.Fatal("no cursor for hot trace")
	} else if _, ok := src.(*trace.SliceCursor); !ok {
		t.Fatalf("hot trace cursor is %T, want *trace.SliceCursor", src)
	}
}

// TestLRUEviction pins the eviction order within one stripe (a
// single-shard store is exactly the global-lock LRU the striped store
// replaces); TestShardedStatsConsistency covers the striped budget.
func TestLRUEviction(t *testing.T) {
	prof := testProfile("app")
	s := New(0)
	one, err := s.Get(prof, 1, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	per := one.SizeBytes()

	// Budget fits two traces but not three.
	s = NewSharded(2*per+per/2, 1)
	for seed := uint64(1); seed <= 3; seed++ {
		if _, err := s.Get(prof, seed, 10_000); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with budget %d and 3 traces of %d bytes", 2*per+per/2, per)
	}
	if st.BytesInUse > 2*per+per/2 {
		t.Fatalf("resident %d bytes exceeds budget", st.BytesInUse)
	}
	// Seed 1 was least recently used; asking again must regenerate.
	misses := st.Misses
	if _, err := s.Get(prof, 1, 10_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Misses; got != misses+1 {
		t.Fatalf("evicted trace served from cache (misses %d -> %d)", misses, got)
	}
}

// TestOversizedTraceSurvives: a single trace larger than the budget is
// still returned and retained (the caller is about to replay it).
func TestOversizedTraceSurvives(t *testing.T) {
	prof := testProfile("app")
	s := New(1) // 1 byte budget
	p, err := s.Get(prof, 1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 5000 {
		t.Fatalf("oversized trace truncated: %d records", p.Len())
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("oversized trace not retained: %+v", st)
	}
}

func TestGenerationErrorNotCached(t *testing.T) {
	bad := testProfile("bad")
	bad.UserBurstMean = 0 // fails profile validation
	s := New(0)
	if _, err := s.Get(bad, 1, 1000); err == nil {
		t.Fatal("invalid profile did not error")
	}
	if _, err := s.Get(bad, 1, 1000); err == nil {
		t.Fatal("second Get did not re-report the error")
	}
	if st := s.Stats(); st.Entries != 0 || st.Generated != 0 {
		t.Fatalf("failed generation left state: %+v", st)
	}
	if _, err := s.Get(bad, 1, 0); err == nil {
		t.Fatal("non-positive accesses did not error")
	}
}

// TestContentDigestKeysDistinctProfiles is the staleness regression:
// two profiles sharing a name but differing in content must generate
// two distinct traces — the key's content digest, not the name, is the
// profile's identity.
func TestContentDigestKeysDistinctProfiles(t *testing.T) {
	prof := testProfile("app")
	hot := prof
	hot.KernelShare = 0.7 // same name, different content

	if KeyFor(prof, 7, 5000) == KeyFor(hot, 7, 5000) {
		t.Fatal("content-modified profile produced an equal store key")
	}

	s := New(0)
	a, err := s.Get(prof, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(hot, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Generated != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want two generations and no hits", st)
	}
	ca, cb := a.Cursor(), b.Cursor()
	same := true
	for {
		ra, oka := ca.Next()
		rb, okb := cb.Next()
		if oka != okb {
			same = false
			break
		}
		if !oka {
			break
		}
		if ra != rb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("modified profile replayed the stale trace")
	}
}

// DeriveTrace builds a variant once, caches it under the base key plus
// tag (no aliasing with the base trace or other variants), returns the
// build's metadata on hits and misses alike, and deduplicates
// concurrent builds.
func TestDeriveTrace(t *testing.T) {
	prof := testProfile("app")
	const n = 5_000
	s := New(0)

	var builds atomic.Int64
	evens := func(base Trace) (*trace.Packed, []trace.Access, any, error) {
		builds.Add(1)
		var out []trace.Access
		for i, a := range base.Records {
			if i%2 == 0 {
				out = append(out, a)
			}
		}
		return trace.PackSlice(out), out, "meta-evens", nil
	}

	if _, _, err := s.DeriveTrace(prof, 1, n, "", evens); err == nil {
		t.Fatal("empty variant accepted")
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, meta, err := s.DeriveTrace(prof, 1, n, "evens", evens)
			if err != nil {
				t.Error(err)
				return
			}
			if meta != "meta-evens" {
				t.Errorf("meta = %v", meta)
			}
			if len(tr.Records) != n/2 {
				t.Errorf("derived records = %d, want %d", len(tr.Records), n/2)
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.Derived != 1 {
		t.Fatalf("Derived = %d, want 1", st.Derived)
	}

	// The base trace is untouched and distinct.
	base, err := s.GetTrace(prof, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Records) != n {
		t.Fatalf("base records = %d after derive, want %d", len(base.Records), n)
	}

	// A different variant tag builds separately.
	odds := func(base Trace) (*trace.Packed, []trace.Access, any, error) {
		var out []trace.Access
		for i, a := range base.Records {
			if i%2 == 1 {
				out = append(out, a)
			}
		}
		return trace.PackSlice(out), out, "meta-odds", nil
	}
	_, meta, err := s.DeriveTrace(prof, 1, n, "odds", odds)
	if err != nil {
		t.Fatal(err)
	}
	if meta != "meta-odds" {
		t.Fatalf("odds meta = %v", meta)
	}
	if got := s.Stats().Derived; got != 2 {
		t.Fatalf("Derived = %d, want 2", got)
	}
}

// TestShardedStatsConsistency is the -race snapshot check for the
// striped arena: concurrent warm hits, cold generations and derive
// builds across many keys, with Stats() scraped throughout. Every
// snapshot keeps its invariants (bytes within budget, counters
// monotone, skew coherent) and the quiescent totals reconcile:
// hits + misses == lookups issued.
func TestShardedStatsConsistency(t *testing.T) {
	prof := testProfile("app")
	const (
		workers  = 8
		rounds   = 40
		seeds    = 12
		accesses = 2000
	)
	// Budget sized so demotions and evictions both happen: a few packed
	// traces fit, the hot decoded forms mostly do not.
	probe := New(0)
	p, err := probe.Get(prof, 1, accesses)
	if err != nil {
		t.Fatal(err)
	}
	budget := 6 * p.SizeBytes()
	s := NewSharded(budget, 4)

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		var last Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Stats()
			if st.Hits < last.Hits || st.Misses < last.Misses ||
				st.Evictions < last.Evictions || st.Demotions < last.Demotions ||
				st.Generated < last.Generated {
				t.Errorf("counter went backwards: %+v then %+v", last, st)
			}
			if st.MaxShardEntries < st.MinShardEntries {
				t.Errorf("snapshot skew inverted: %+v", st)
			}
			if st.BytesInUse < 0 {
				t.Errorf("negative BytesInUse: %+v", st)
			}
			last = st
		}
	}()

	var wg sync.WaitGroup
	var lookups atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				seed := uint64((w*rounds+r)%seeds + 1)
				if r%4 == 3 {
					// DeriveTrace's base GetTrace is one lookup, the
					// variant entry another. The build must tolerate a
					// demoted base (nil Records) by decoding packed.
					_, _, err := s.DeriveTrace(prof, seed, accesses, "evens",
						func(base Trace) (*trace.Packed, []trace.Access, any, error) {
							var out []trace.Access
							if base.Records != nil {
								for i, a := range base.Records {
									if i%2 == 0 {
										out = append(out, a)
									}
								}
							} else {
								cur := base.Packed.Cursor()
								for i := 0; ; i++ {
									a, ok := cur.Next()
									if !ok {
										break
									}
									if i%2 == 0 {
										out = append(out, a)
									}
								}
							}
							return trace.PackSlice(out), out, nil, nil
						})
					if err != nil {
						t.Error(err)
						return
					}
					lookups.Add(2)
				} else {
					if _, err := s.GetTrace(prof, seed, accesses); err != nil {
						t.Error(err)
						return
					}
					lookups.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	st := s.Stats()
	if got := st.Hits + st.Misses; got != lookups.Load() {
		t.Fatalf("hits %d + misses %d = %d, want %d lookups", st.Hits, st.Misses, got, lookups.Load())
	}
	if st.BytesInUse > budget {
		t.Fatalf("BytesInUse %d exceeds budget %d", st.BytesInUse, budget)
	}
	if st.Generated == 0 || st.Derived == 0 {
		t.Fatalf("expected both base and derived builds: %+v", st)
	}
}
