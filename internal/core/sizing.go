package core

import (
	"fmt"
	"sort"

	"mobilecache/internal/cache"
	"mobilecache/internal/trace"
)

// This file implements the paper's static partition sizing procedure:
// replay the (L2-level) access stream of each domain through isolated
// caches of candidate sizes, then pick the smallest segment sizes whose
// combined miss rate stays within a tolerance of the unified baseline.
// Because partitioning removes cross-domain interference, the chosen
// total is typically well below the baseline capacity — that shrink is
// where the static design's energy saving comes from.

// SizingPoint is one (size, miss rate) sample of a domain's curve.
type SizingPoint struct {
	SizeBytes uint64
	MissRate  float64
	Misses    uint64
	Accesses  uint64
}

// MissRateForSize replays only dom's accesses from recs through an
// isolated cache of the given geometry and returns its miss statistics.
// recs must be an L2-level stream (e.g. captured via mem.Hierarchy's
// L2 tap) for the numbers to mean what the paper's do.
func MissRateForSize(recs []trace.Access, dom trace.Domain, sizeBytes uint64, ways, blockBytes int, policy cache.PolicyKind) (SizingPoint, error) {
	c, err := cache.New(cache.Config{
		Name:      fmt.Sprintf("sizing-%s-%d", dom, sizeBytes),
		SizeBytes: sizeBytes, Ways: ways, BlockBytes: blockBytes, Policy: policy,
	})
	if err != nil {
		return SizingPoint{}, err
	}
	now := uint64(0)
	for _, a := range recs {
		if a.Domain != dom {
			continue
		}
		now++
		c.Access(a.Addr, a.Op.IsWrite(), dom, now)
	}
	st := c.Stats()
	return SizingPoint{
		SizeBytes: sizeBytes,
		MissRate:  st.DomainMissRate(dom),
		Misses:    st.Misses[dom],
		Accesses:  st.Accesses[dom],
	}, nil
}

// SweepSegmentSizes evaluates a domain's miss curve across candidate
// sizes (the data behind experiment E3). Candidates are evaluated in
// ascending order; invalid geometries return an error.
func SweepSegmentSizes(recs []trace.Access, dom trace.Domain, sizes []uint64, ways, blockBytes int, policy cache.PolicyKind) ([]SizingPoint, error) {
	sorted := append([]uint64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]SizingPoint, 0, len(sorted))
	for _, size := range sorted {
		pt, err := MissRateForSize(recs, dom, size, ways, blockBytes, policy)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// StaticSizing is the outcome of the static partition sizing search.
type StaticSizing struct {
	// UserSize and KernelSize are the chosen segment capacities.
	UserSize   uint64
	KernelSize uint64
	// UserPoint and KernelPoint are the measured miss statistics at
	// the chosen sizes.
	UserPoint   SizingPoint
	KernelPoint SizingPoint
	// BaselineMissRate is the unified cache's overall miss rate the
	// search had to stay close to.
	BaselineMissRate float64
	// CombinedMissRate is the partition's overall miss rate estimate
	// (weighted by each domain's access count).
	CombinedMissRate float64
	// UserCurve and KernelCurve are the full sweeps, for reporting.
	UserCurve   []SizingPoint
	KernelCurve []SizingPoint
}

// TotalSize is the summed segment capacity.
func (s StaticSizing) TotalSize() uint64 { return s.UserSize + s.KernelSize }

// ChooseStaticSizes runs the paper's sizing procedure: measure the
// unified baseline's miss rate on recs, sweep per-domain segment
// sizes, and pick the smallest (user, kernel) sizes whose combined
// miss rate is at most baseline + tolerance. If no combination
// qualifies, the largest candidates are returned.
func ChooseStaticSizes(recs []trace.Access, baseline SegmentConfig, candidates []uint64, tolerance float64) (StaticSizing, error) {
	if len(candidates) == 0 {
		return StaticSizing{}, fmt.Errorf("core: no candidate sizes")
	}
	if tolerance < 0 {
		return StaticSizing{}, fmt.Errorf("core: negative tolerance %g", tolerance)
	}

	// Baseline: unified cache, both domains, same stream.
	base, err := cache.New(cache.Config{
		Name: "sizing-baseline", SizeBytes: baseline.SizeBytes, Ways: baseline.Ways,
		BlockBytes: baseline.BlockBytes, Policy: baseline.Policy,
	})
	if err != nil {
		return StaticSizing{}, err
	}
	now := uint64(0)
	for _, a := range recs {
		now++
		base.Access(a.Addr, a.Op.IsWrite(), a.Domain, now)
	}
	bst := base.Stats()
	baseMiss := bst.MissRate()

	userCurve, err := SweepSegmentSizes(recs, trace.User, candidates, baseline.Ways, baseline.BlockBytes, baseline.Policy)
	if err != nil {
		return StaticSizing{}, err
	}
	kernelCurve, err := SweepSegmentSizes(recs, trace.Kernel, candidates, baseline.Ways, baseline.BlockBytes, baseline.Policy)
	if err != nil {
		return StaticSizing{}, err
	}

	total := float64(bst.TotalAccesses())
	best := StaticSizing{
		UserSize: userCurve[len(userCurve)-1].SizeBytes, KernelSize: kernelCurve[len(kernelCurve)-1].SizeBytes,
		UserPoint: userCurve[len(userCurve)-1], KernelPoint: kernelCurve[len(kernelCurve)-1],
		BaselineMissRate: baseMiss,
		UserCurve:        userCurve, KernelCurve: kernelCurve,
	}
	best.CombinedMissRate = combinedMiss(best.UserPoint, best.KernelPoint, total)
	found := false
	for _, up := range userCurve {
		for _, kp := range kernelCurve {
			cm := combinedMiss(up, kp, total)
			if cm > baseMiss+tolerance {
				continue
			}
			cand := up.SizeBytes + kp.SizeBytes
			if !found || cand < best.TotalSize() ||
				(cand == best.TotalSize() && cm < best.CombinedMissRate) {
				best.UserSize, best.KernelSize = up.SizeBytes, kp.SizeBytes
				best.UserPoint, best.KernelPoint = up, kp
				best.CombinedMissRate = cm
				found = true
			}
		}
	}
	return best, nil
}

func combinedMiss(up, kp SizingPoint, totalAccesses float64) float64 {
	if totalAccesses == 0 {
		return 0
	}
	return (float64(up.Misses) + float64(kp.Misses)) / totalAccesses
}
