package core

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func sizingTrace(t *testing.T) []trace.Access {
	t.Helper()
	prof := workload.Profile{
		Name:           "sizing",
		KernelShare:    0.45,
		UserWorkingSet: 96 * workload.KB, KernelWorkingSet: 24 * workload.KB,
		UserZipf: 0.9, KernelZipf: 0.6,
		UserWriteRatio: 0.25, KernelWriteRatio: 0.5,
		UserStreamFrac: 0.05, KernelStreamFrac: 0.1,
		IfetchFrac: 0.2, UserCodeSet: 16 * workload.KB, KernelCodeSet: 8 * workload.KB,
		UserBurstMean: 100, GapMean: 1,
	}
	recs, err := workload.Generate(prof, 42, 120000)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestMissRateForSizeDecreasesWithSize(t *testing.T) {
	recs := sizingTrace(t)
	var prev float64 = 1.1
	for _, size := range []uint64{8 * 1024, 32 * 1024, 128 * 1024} {
		pt, err := MissRateForSize(recs, trace.User, size, 8, 64, cache.LRU)
		if err != nil {
			t.Fatal(err)
		}
		if pt.MissRate > prev+0.02 {
			t.Fatalf("miss rate grew with size: %g at %d after %g", pt.MissRate, size, prev)
		}
		prev = pt.MissRate
		if pt.Accesses == 0 {
			t.Fatal("no accesses counted")
		}
	}
}

func TestSweepSegmentSizesSorted(t *testing.T) {
	recs := sizingTrace(t)
	pts, err := SweepSegmentSizes(recs, trace.Kernel, []uint64{64 * 1024, 8 * 1024, 16 * 1024}, 8, 64, cache.LRU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].SizeBytes <= pts[i-1].SizeBytes {
			t.Fatal("sweep not sorted by size")
		}
	}
}

func TestSweepRejectsBadGeometry(t *testing.T) {
	recs := sizingTrace(t)
	if _, err := SweepSegmentSizes(recs, trace.User, []uint64{1000}, 8, 64, cache.LRU); err == nil {
		t.Fatal("invalid size accepted")
	}
}

func TestChooseStaticSizesShrinks(t *testing.T) {
	recs := sizingTrace(t)
	baseline := segCfg("base", 256*1024, 8, 0)
	candidates := []uint64{16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024}
	res, err := ChooseStaticSizes(recs, baseline, candidates, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The partition must not need more than the baseline capacity, and
	// with working sets (96K user + 24K kernel) well under 256K it
	// should shrink meaningfully.
	if res.TotalSize() > baseline.SizeBytes {
		t.Fatalf("chosen total %d exceeds baseline %d", res.TotalSize(), baseline.SizeBytes)
	}
	if res.TotalSize() >= baseline.SizeBytes {
		t.Fatalf("no shrink achieved: total %d", res.TotalSize())
	}
	// Miss-rate promise held.
	if res.CombinedMissRate > res.BaselineMissRate+0.01+1e-9 {
		t.Fatalf("combined miss %g above budget %g", res.CombinedMissRate, res.BaselineMissRate+0.01)
	}
	// Curves exposed for reporting.
	if len(res.UserCurve) != len(candidates) || len(res.KernelCurve) != len(candidates) {
		t.Fatal("curves missing from result")
	}
	// Kernel working set is smaller; its chosen segment should be <=
	// the user segment.
	if res.KernelSize > res.UserSize {
		t.Fatalf("kernel segment %d larger than user segment %d", res.KernelSize, res.UserSize)
	}
}

func TestChooseStaticSizesErrors(t *testing.T) {
	recs := sizingTrace(t)
	baseline := segCfg("base", 256*1024, 8, 0)
	if _, err := ChooseStaticSizes(recs, baseline, nil, 0.01); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := ChooseStaticSizes(recs, baseline, []uint64{32 * 1024}, -0.5); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestChooseStaticSizesFallbackWhenImpossible(t *testing.T) {
	recs := sizingTrace(t)
	baseline := segCfg("base", 1024*1024, 8, 0)
	// Only absurdly small candidates: nothing will meet the budget, so
	// the largest candidates must come back.
	candidates := []uint64{4 * 1024, 8 * 1024}
	res, err := ChooseStaticSizes(recs, baseline, candidates, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.UserSize != 8*1024 || res.KernelSize != 8*1024 {
		t.Fatalf("fallback picked %d/%d, want the largest candidates", res.UserSize, res.KernelSize)
	}
}
