package core

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
)

// This file implements snapshot/restore for every L2 organization.
// L2State is deliberately opaque: each organization returns its own
// concrete state and only accepts that same concrete type back, so a
// snapshot can never be restored into a different design (or a
// different geometry — the underlying cache.Restore enforces that).
// States are independent deep copies and may be restored repeatedly.

// L2State is an opaque snapshot of one L2 organization's mutable state.
// Obtain one from L2.Snapshot; apply it with L2.Restore on an L2 of the
// identical construction.
type L2State interface {
	l2State()
}

// segmentState captures one physical bank: the cache array, the energy
// meter, the retention controller's scan clock/counters and the bank
// busy horizon.
type segmentState struct {
	cache     cache.State
	meter     energy.MeterState
	ctrl      sttram.ControllerState
	busyUntil []uint64
}

func (s *segment) snapshot() segmentState {
	return segmentState{
		cache:     s.c.Snapshot(),
		meter:     s.meter.Snapshot(),
		ctrl:      s.ctrl.Snapshot(),
		busyUntil: append([]uint64(nil), s.busyUntil...),
	}
}

func (s *segment) restore(st segmentState) {
	s.c.Restore(st.cache)
	s.meter.Restore(st.meter)
	s.ctrl.Restore(st.ctrl)
	if len(st.busyUntil) != len(s.busyUntil) {
		panic(fmt.Sprintf("core: segment %s: restoring snapshot with %d banks, have %d",
			s.cfg.Name, len(st.busyUntil), len(s.busyUntil)))
	}
	copy(s.busyUntil, st.busyUntil)
}

// unifiedState snapshots a Unified (and DrowsyUnified / SetPartition,
// whose extra state is all construction-time configuration).
type unifiedState struct {
	seg segmentState
}

func (unifiedState) l2State() {}

// Snapshot implements L2.
func (u *Unified) Snapshot() L2State { return unifiedState{seg: u.seg.snapshot()} }

// Restore implements L2.
func (u *Unified) Restore(s L2State) {
	st, ok := s.(unifiedState)
	if !ok {
		panic(fmt.Sprintf("core: %s: restoring foreign L2 state %T", u.name, s))
	}
	u.seg.restore(st.seg)
}

// staticState snapshots a StaticPartition's two banks.
type staticState struct {
	segs [trace.NumDomains]segmentState
}

func (staticState) l2State() {}

// Snapshot implements L2.
func (sp *StaticPartition) Snapshot() L2State {
	return staticState{segs: [trace.NumDomains]segmentState{
		trace.User:   sp.segs[trace.User].snapshot(),
		trace.Kernel: sp.segs[trace.Kernel].snapshot(),
	}}
}

// Restore implements L2.
func (sp *StaticPartition) Restore(s L2State) {
	st, ok := s.(staticState)
	if !ok {
		panic(fmt.Sprintf("core: %s: restoring foreign L2 state %T", sp.name, s))
	}
	sp.segs[trace.User].restore(st.segs[trace.User])
	sp.segs[trace.Kernel].restore(st.segs[trace.Kernel])
}

// dynamicState snapshots a DynamicPartition: the bank plus the
// controller's epoch machinery, utility monitors, allocation and
// decision history.
type dynamicState struct {
	seg segmentState
	mon cache.MonitorsState

	epochAccesses uint64
	epochLen      uint64
	totalAccesses uint64
	epoch         int

	userWays, kernelWays int
	history              []PartitionDecision
	flushWritebacks      uint64
}

func (dynamicState) l2State() {}

// Snapshot implements L2.
func (dp *DynamicPartition) Snapshot() L2State {
	return dynamicState{
		seg:             dp.seg.snapshot(),
		mon:             dp.mon.Snapshot(),
		epochAccesses:   dp.epochAccesses,
		epochLen:        dp.epochLen,
		totalAccesses:   dp.totalAccesses,
		epoch:           dp.epoch,
		userWays:        dp.userWays,
		kernelWays:      dp.kernelWays,
		history:         append([]PartitionDecision(nil), dp.history...),
		flushWritebacks: dp.flushWritebacks,
	}
}

// Restore implements L2. The way masks and powered fraction live inside
// the cache and meter states, so restoring them restores the allocation
// without a flush.
func (dp *DynamicPartition) Restore(s L2State) {
	st, ok := s.(dynamicState)
	if !ok {
		panic(fmt.Sprintf("core: %s: restoring foreign L2 state %T", dp.name, s))
	}
	dp.seg.restore(st.seg)
	dp.mon.Restore(st.mon)
	dp.epochAccesses = st.epochAccesses
	dp.epochLen = st.epochLen
	dp.totalAccesses = st.totalAccesses
	dp.epoch = st.epoch
	dp.userWays, dp.kernelWays = st.userWays, st.kernelWays
	dp.history = append(dp.history[:0], st.history...)
	dp.flushWritebacks = st.flushWritebacks
}

// Snapshot implements L2. A drowsy array's window/wake parameters are
// configuration; the awake fraction is recomputed from line metadata at
// each Advance, so the segment state is complete.
func (d *DrowsyUnified) Snapshot() L2State { return unifiedState{seg: d.seg.snapshot()} }

// Restore implements L2.
func (d *DrowsyUnified) Restore(s L2State) {
	st, ok := s.(unifiedState)
	if !ok {
		panic(fmt.Sprintf("core: %s: restoring foreign L2 state %T", d.Name(), s))
	}
	d.seg.restore(st.seg)
}

// Snapshot implements L2. The set split is construction-time.
func (sp *SetPartition) Snapshot() L2State { return unifiedState{seg: sp.seg.snapshot()} }

// Restore implements L2.
func (sp *SetPartition) Restore(s L2State) {
	st, ok := s.(unifiedState)
	if !ok {
		panic(fmt.Sprintf("core: %s: restoring foreign L2 state %T", sp.name, s))
	}
	sp.seg.restore(st.seg)
}
