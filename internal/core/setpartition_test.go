package core

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

func TestSetPartitionValidation(t *testing.T) {
	cfg := segCfg("sp-sets", 64*1024, 8, energy.SRAM) // 128 sets
	if _, err := NewSetPartition(cfg, 0, nil); err == nil {
		t.Fatal("zero user sets accepted")
	}
	if _, err := NewSetPartition(cfg, 128, nil); err == nil {
		t.Fatal("all-user split accepted")
	}
	sp, err := NewSetPartition(cfg, 96, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, k := sp.Split()
	if u != 96 || k != 32 {
		t.Fatalf("split = %d/%d", u, k)
	}
	if sp.SizeBytes() != 64*1024 || sp.PoweredBytes() != 64*1024 {
		t.Fatal("capacity accessors wrong")
	}
}

func TestSetPartitionIsolation(t *testing.T) {
	cfg := segCfg("sp-sets", 64*1024, 8, energy.SRAM)
	sp, err := NewSetPartition(cfg, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer overlapping addresses from both domains: with set
	// partitioning they land in disjoint regions, so no interference.
	for i := uint64(0); i < 40000; i++ {
		addr := (i % 4096) * 64
		sp.Access(addr, false, trace.User, i*10)
		sp.Access(addr, false, trace.Kernel, i*10+5)
	}
	st := sp.Stats()
	if st.InterferenceEvictions != 0 {
		t.Fatalf("set partition interfered: %d", st.InterferenceEvictions)
	}
	// Blocks live only in their region's sets.
	userSets, _ := sp.Split()
	c := sp.Cache()
	c.VisitValid(func(set, _ int, meta *cache.BlockMeta) {
		inUserRegion := set < userSets
		if (meta.Domain == trace.User) != inUserRegion {
			t.Fatalf("%v block in set %d outside its region (user region < %d)", meta.Domain, set, userSets)
		}
	})
	st = sp.Stats()
	if st.Hits[trace.User]+st.Misses[trace.User] != st.Accesses[trace.User] {
		t.Fatal("accounting broken")
	}
}

func TestSetPartitionRemapInjective(t *testing.T) {
	// Distinct blocks of the same domain must stay distinct after the
	// fold: replaying a working set larger than a region must still
	// hit on re-access when the region can hold it.
	cfg := segCfg("sp-sets", 64*1024, 8, energy.SRAM) // 128 sets x 8 ways = 1024 blocks
	sp, err := NewSetPartition(cfg, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	// User region: 64 sets x 8 ways = 512 blocks. A 256-block
	// sequential footprint fills 4 ways of every region set; distinct
	// blocks must stay distinct (no false merging by the fold), so
	// every pass after the first hits. Offset the base address so the
	// tag bits are non-trivial.
	now := uint64(0)
	const base = 0x12340000
	for rep := 0; rep < 3; rep++ {
		for i := uint64(0); i < 256; i++ {
			now++
			sp.Access(base+i*64, false, trace.User, now)
		}
	}
	st := sp.Stats()
	// First pass cold, later passes must all hit (footprint fits).
	if st.Misses[trace.User] != 256 {
		t.Fatalf("user misses = %d, want 256 cold only (remap collides?)", st.Misses[trace.User])
	}
	// And two blocks that differ only above the fold must not alias:
	// same region index, different tags.
	a1 := base + uint64(0)
	a2 := base + uint64(64*64) // same idx (64 sets), next tag
	sp.Access(a1, true, trace.User, now+1)
	sp.Access(a2, false, trace.User, now+2)
	set1, _, ok1 := sp.Cache().Probe(sp.remap(a1, trace.User))
	set2, _, ok2 := sp.Cache().Probe(sp.remap(a2, trace.User))
	if !ok1 || !ok2 {
		t.Fatal("aliasing: one of two distinct blocks displaced the other")
	}
	if set1 != set2 {
		t.Fatalf("same-index blocks landed in different sets: %d vs %d", set1, set2)
	}
}

func TestSetPartitionRegionCapacity(t *testing.T) {
	// The kernel region is a quarter of the array; a kernel footprint
	// of half the array must thrash it while the same footprint in the
	// user region (3/4 of the array) fits.
	cfg := segCfg("sp-sets", 64*1024, 8, energy.SRAM)
	sp, err := NewSetPartition(cfg, 96, nil) // user 96 sets, kernel 32 sets
	if err != nil {
		t.Fatal(err)
	}
	// Footprint: 512 blocks = 32KB.
	now := uint64(0)
	for rep := 0; rep < 4; rep++ {
		for i := uint64(0); i < 512; i++ {
			now++
			sp.Access(i*64, false, trace.User, now)
			now++
			sp.Access(i*64, false, trace.Kernel, now)
		}
	}
	st := sp.Stats()
	userMR := st.DomainMissRate(trace.User)
	kernelMR := st.DomainMissRate(trace.Kernel)
	if kernelMR <= userMR {
		t.Fatalf("kernel (32-set region) miss rate %.3f not above user (96-set) %.3f", kernelMR, userMR)
	}
}
