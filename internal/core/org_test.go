package core

import (
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
)

func segCfg(name string, size uint64, ways int, tech energy.Tech) SegmentConfig {
	return SegmentConfig{
		Name: name, SizeBytes: size, Ways: ways, BlockBytes: 64,
		Policy: cache.LRU, Tech: tech, Refresh: sttram.DirtyOnly,
	}
}

func TestSegmentConfigValidate(t *testing.T) {
	good := segCfg("ok", 64*1024, 8, energy.SRAM)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	bad := good
	bad.Tech = energy.Tech(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid tech accepted")
	}
	bad = good
	bad.Refresh = sttram.RefreshPolicy(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid refresh accepted")
	}
	bad = good
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestUnifiedBasics(t *testing.T) {
	var wbs []uint64
	u, err := NewUnified(segCfg("L2", 64*1024, 8, energy.SRAM), func(a uint64) { wbs = append(wbs, a) })
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "L2" || u.SizeBytes() != 64*1024 || u.PoweredBytes() != 64*1024 {
		t.Fatalf("identity accessors wrong: %s %d %d", u.Name(), u.SizeBytes(), u.PoweredBytes())
	}
	hit, lat := u.Access(0x1000, false, trace.User, 100)
	if hit {
		t.Fatal("cold access hit")
	}
	if lat == 0 {
		t.Fatal("miss latency zero")
	}
	hit, lat2 := u.Access(0x1000, false, trace.User, 200)
	if !hit {
		t.Fatal("second access missed")
	}
	if lat2 == 0 {
		t.Fatal("hit latency zero")
	}
	st := u.Stats()
	if st.TotalAccesses() != 2 || st.Hits[trace.User] != 1 {
		t.Fatalf("stats wrong: %+v", st)
	}
	u.Advance(1000000)
	if u.Energy().Total() <= 0 {
		t.Fatal("no energy accumulated")
	}
}

func TestUnifiedDirtyEvictionWritesBack(t *testing.T) {
	var wbs []uint64
	// Tiny direct-mapped-ish cache to force evictions: 2 ways, 2 sets.
	u, err := NewUnified(segCfg("L2", 4*64, 2, energy.SRAM), func(a uint64) { wbs = append(wbs, a) })
	if err != nil {
		t.Fatal(err)
	}
	u.Access(0, true, trace.User, 1) // dirty fill set 0
	// Two more fills into set 0 evict it.
	u.Access(2*64, false, trace.User, 2)
	u.Access(4*64, false, trace.User, 3)
	if len(wbs) != 1 || wbs[0] != 0 {
		t.Fatalf("writebacks = %v, want [0]", wbs)
	}
}

func TestUnifiedBankBusySerializesAccesses(t *testing.T) {
	u, err := NewUnified(segCfg("L2", 64*1024, 8, energy.STTLong), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Warm a block, then hammer hits at the same timestamp: each
	// successive hit should see increasing latency (bank occupancy).
	u.Access(0x40, false, trace.User, 0)
	_, lat1 := u.Access(0x40, false, trace.User, 1000)
	_, lat2 := u.Access(0x40, false, trace.User, 1000)
	if lat2 <= lat1 {
		t.Fatalf("bank busy not modeled: lat1=%d lat2=%d", lat1, lat2)
	}
}

func TestBankingReducesSerialization(t *testing.T) {
	// Two back-to-back accesses at the same timestamp to adjacent
	// blocks: with one bank the second waits, with many banks it
	// proceeds in parallel.
	single := segCfg("L2-1bank", 64*1024, 8, energy.STTLong)
	banked := segCfg("L2-8bank", 64*1024, 8, energy.STTLong)
	banked.Banks = 8

	u1, err := NewUnified(single, nil)
	if err != nil {
		t.Fatal(err)
	}
	u8, err := NewUnified(banked, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []*Unified{u1, u8} {
		u.Access(0x0, false, trace.User, 0)
		u.Access(0x40, false, trace.User, 0)
	}
	_, lat1a := u1.Access(0x0, false, trace.User, 1000)
	_, lat1b := u1.Access(0x40, false, trace.User, 1000)
	_, lat8a := u8.Access(0x0, false, trace.User, 2000)
	_, lat8b := u8.Access(0x40, false, trace.User, 2000)
	if lat1b <= lat1a {
		t.Fatalf("single bank did not serialize: %d then %d", lat1a, lat1b)
	}
	if lat8b != lat8a {
		t.Fatalf("adjacent blocks in an 8-bank array collided: %d then %d", lat8a, lat8b)
	}
}

func TestSegmentConfigRejectsBadBanks(t *testing.T) {
	cfg := segCfg("b", 64*1024, 8, energy.SRAM)
	cfg.Banks = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative banks accepted")
	}
	cfg.Banks = 65
	if err := cfg.Validate(); err == nil {
		t.Fatal("banks > 64 accepted")
	}
}

func TestUnifiedSTTShortExpiresCleanLines(t *testing.T) {
	cfg := segCfg("L2", 64*1024, 8, energy.STTShort)
	cfg.Refresh = sttram.EagerWriteback
	u, err := NewUnified(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.Access(0x40, false, trace.User, 0)
	ret := energy.DefaultParams(energy.STTShort).RetentionCycles
	// Long after retention: the access path must treat it as a miss.
	hit, _ := u.Access(0x40, false, trace.User, ret*3)
	if hit {
		t.Fatal("expired line served as hit")
	}
	st := u.Stats()
	if st.CleanExpiries+st.ExpiryInvalidations == 0 {
		t.Fatalf("no expiry recorded: %+v", st)
	}
	if st.DirtyExpiries != 0 {
		t.Fatalf("dirty expiries = %d, want 0", st.DirtyExpiries)
	}
}

func TestUnifiedSTTShortPeriodicRefreshKeepsHits(t *testing.T) {
	cfg := segCfg("L2", 64*1024, 8, energy.STTShort)
	cfg.Refresh = sttram.PeriodicAll
	u, err := NewUnified(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	u.Access(0x40, false, trace.User, 0)
	ret := energy.DefaultParams(energy.STTShort).RetentionCycles
	hit, _ := u.Access(0x40, false, trace.User, ret*3)
	if !hit {
		t.Fatal("refreshed line missed")
	}
	if u.Stats().Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
	if u.Energy().RefreshJ <= 0 {
		t.Fatal("no refresh energy charged")
	}
}

func TestStaticPartitionIsolation(t *testing.T) {
	sp, err := NewStaticPartition("SP",
		segCfg("L2-user", 32*1024, 8, energy.SRAM),
		segCfg("L2-kernel", 16*1024, 8, energy.SRAM), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sp.SizeBytes() != 48*1024 {
		t.Fatalf("total size = %d, want 48K", sp.SizeBytes())
	}
	// Hammer conflicting addresses from both domains; isolation means
	// zero interference evictions.
	for i := uint64(0); i < 20000; i++ {
		addr := (i % 1024) * 64
		sp.Access(addr, false, trace.User, i*10)
		sp.Access(addr, false, trace.Kernel, i*10+5)
	}
	st := sp.Stats()
	if st.InterferenceEvictions != 0 {
		t.Fatalf("interference in static partition: %d", st.InterferenceEvictions)
	}
	if st.Accesses[trace.User] != 20000 || st.Accesses[trace.Kernel] != 20000 {
		t.Fatalf("access routing wrong: %+v", st.Accesses)
	}
	// Per-segment accessors agree with the aggregate.
	us, ks := sp.SegmentStats(trace.User), sp.SegmentStats(trace.Kernel)
	if us.Accesses[trace.User]+ks.Accesses[trace.Kernel] != st.TotalAccesses() {
		t.Fatal("segment stats do not sum to aggregate")
	}
	if us.Accesses[trace.Kernel] != 0 || ks.Accesses[trace.User] != 0 {
		t.Fatal("segment received other domain's accesses")
	}
}

func TestStaticPartitionRejectsMismatchedBlocks(t *testing.T) {
	u := segCfg("u", 32*1024, 8, energy.SRAM)
	k := segCfg("k", 16*1024, 8, energy.SRAM)
	k.BlockBytes = 128
	if _, err := NewStaticPartition("SP", u, k, nil); err == nil {
		t.Fatal("mismatched block sizes accepted")
	}
}

func TestStaticPartitionMultiRetentionEnergySplit(t *testing.T) {
	sp, err := NewStaticPartition("SP-MR",
		segCfg("L2-user", 32*1024, 8, energy.STTMedium),
		segCfg("L2-kernel", 16*1024, 8, energy.STTShort), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1000; i++ {
		sp.Access(i*64, i%2 == 0, trace.User, i*100)
		sp.Access(0xffff000000000000+i*64, i%2 == 0, trace.Kernel, i*100+50)
	}
	sp.Advance(1_000_000)
	ub, kb := sp.SegmentEnergy(trace.User), sp.SegmentEnergy(trace.Kernel)
	if ub.Total() <= 0 || kb.Total() <= 0 {
		t.Fatal("segment energies not accumulated")
	}
	sum := ub
	sum.Add(kb)
	if total := sp.Energy().Total(); total != sum.Total() {
		t.Fatalf("aggregate energy %g != segment sum %g", total, sum.Total())
	}
	// Same write count per segment, but medium-retention writes cost
	// more than short-retention writes.
	if ub.WriteJ <= kb.WriteJ {
		t.Fatalf("user (medium) write energy %g not above kernel (short) %g", ub.WriteJ, kb.WriteJ)
	}
}

func TestL2StatsHelpers(t *testing.T) {
	var s L2Stats
	if s.MissRate() != 0 || s.KernelShare() != 0 || s.DomainMissRate(trace.User) != 0 {
		t.Fatal("empty stats should report zeros")
	}
	s.Accesses[trace.User] = 6
	s.Accesses[trace.Kernel] = 4
	s.Misses[trace.User] = 3
	s.Misses[trace.Kernel] = 1
	if s.TotalAccesses() != 10 || s.TotalMisses() != 4 {
		t.Fatal("totals wrong")
	}
	if s.MissRate() != 0.4 {
		t.Fatalf("miss rate = %g", s.MissRate())
	}
	if s.KernelShare() != 0.4 {
		t.Fatalf("kernel share = %g", s.KernelShare())
	}
	if s.DomainMissRate(trace.User) != 0.5 {
		t.Fatalf("user miss rate = %g", s.DomainMissRate(trace.User))
	}
}
