package core

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// DrowsyConfig parameterizes the drowsy-SRAM baseline: the classic
// circuit-level leakage reduction (Flautner et al.) that the paper's
// STT-RAM designs implicitly compete against. Lines not accessed
// within a window drop into a low-voltage, state-preserving drowsy
// mode that leaks a fraction of full power; touching a drowsy line
// costs a wake-up penalty.
type DrowsyConfig struct {
	// Segment is the SRAM array geometry.
	Segment SegmentConfig
	// WindowCycles is how long a line stays awake after its last
	// access before dropping into drowsy mode.
	WindowCycles uint64
	// WakeCycles is the extra latency of touching a drowsy line.
	WakeCycles uint64
	// DrowsyLeakRatio is a drowsy cell's leakage relative to an awake
	// cell's.
	DrowsyLeakRatio float64
	// PeripheralFraction is the share of the array's leakage spent in
	// peripheral circuits (decoders, sense amplifiers, wordline
	// drivers) that drowsy mode cannot reduce — the floor under any
	// cell-level technique, and the reason technology replacement
	// (STT-RAM) plus capacity shrink/gating saves more.
	PeripheralFraction float64
}

// DefaultDrowsyConfig returns the published-style drowsy parameters:
// a 4000-cycle window, 1-cycle wake-up, drowsy lines leaking ~8% of
// full power.
func DefaultDrowsyConfig(seg SegmentConfig) DrowsyConfig {
	return DrowsyConfig{
		Segment:            seg,
		WindowCycles:       4000,
		WakeCycles:         1,
		DrowsyLeakRatio:    0.08,
		PeripheralFraction: 0.30,
	}
}

// Validate checks the drowsy parameters.
func (dc DrowsyConfig) Validate() error {
	if err := dc.Segment.Validate(); err != nil {
		return err
	}
	if dc.Segment.Tech != energy.SRAM {
		return fmt.Errorf("core: drowsy mode is an SRAM technique, got %s", dc.Segment.Tech)
	}
	if dc.WindowCycles == 0 {
		return fmt.Errorf("core: drowsy window must be positive")
	}
	if dc.DrowsyLeakRatio < 0 || dc.DrowsyLeakRatio > 1 {
		return fmt.Errorf("core: drowsy leak ratio %g outside [0,1]", dc.DrowsyLeakRatio)
	}
	if dc.PeripheralFraction < 0 || dc.PeripheralFraction > 1 {
		return fmt.Errorf("core: peripheral fraction %g outside [0,1]", dc.PeripheralFraction)
	}
	return nil
}

// DrowsyUnified is a unified SRAM L2 with drowsy leakage management.
// Unlike power gating it preserves line contents, so it trades no
// misses — only wake-up latency — for a bounded leakage reduction.
type DrowsyUnified struct {
	cfg DrowsyConfig
	seg *segment
}

// NewDrowsyUnified builds the drowsy baseline.
func NewDrowsyUnified(cfg DrowsyConfig, wb func(addr uint64)) (*DrowsyUnified, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seg, err := newSegment(cfg.Segment, wb)
	if err != nil {
		return nil, err
	}
	return &DrowsyUnified{cfg: cfg, seg: seg}, nil
}

// Name implements L2.
func (d *DrowsyUnified) Name() string { return d.cfg.Segment.Name }

// Access implements L2, adding the wake-up penalty for drowsy hits.
func (d *DrowsyUnified) Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (bool, uint64) {
	// Peek at the line's age before the segment updates LastTouch.
	wake := uint64(0)
	if set, way, hit := d.seg.c.Probe(blockAddr); hit {
		if meta := d.seg.c.Meta(set, way); meta != nil && now-meta.LastTouch > d.cfg.WindowCycles {
			wake = d.cfg.WakeCycles
		}
	}
	hit, lat := d.seg.access(blockAddr, write, dom, now)
	return hit, lat + wake
}

// Advance implements L2; before integrating leakage it samples the
// awake fraction and scales the meter's powered fraction so drowsy
// lines leak at the reduced rate. (The approximation integrates each
// interval at its end-of-interval awake fraction — accurate when
// Advance is called every few thousand accesses, as the CPU does.)
func (d *DrowsyUnified) Advance(now uint64) {
	awake := 0
	d.seg.c.VisitValid(func(_, _ int, meta *cache.BlockMeta) {
		if now-meta.LastTouch <= d.cfg.WindowCycles {
			awake++
		}
	})
	total := d.cfg.Segment.Sets() * d.cfg.Segment.Ways
	awakeFrac := float64(awake) / float64(total)
	cells := awakeFrac + (1-awakeFrac)*d.cfg.DrowsyLeakRatio
	eff := d.cfg.PeripheralFraction + (1-d.cfg.PeripheralFraction)*cells
	d.seg.meter.SetPoweredFraction(eff)
	d.seg.advance(now)
}

var _ L2 = (*DrowsyUnified)(nil)

// Energy implements L2.
func (d *DrowsyUnified) Energy() energy.Breakdown { return d.seg.meter.Breakdown() }

// Stats implements L2.
func (d *DrowsyUnified) Stats() L2Stats { return d.seg.stats() }

// SizeBytes implements L2.
func (d *DrowsyUnified) SizeBytes() uint64 { return d.cfg.Segment.SizeBytes }

// PoweredBytes implements L2; all capacity stays powered (drowsy lines
// are still retained).
func (d *DrowsyUnified) PoweredBytes() uint64 { return d.cfg.Segment.SizeBytes }
