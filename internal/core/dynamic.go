package core

import (
	"fmt"
	"math/bits"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/sample"
	"mobilecache/internal/trace"
)

// DynamicConfig parameterizes the dynamic partition design.
type DynamicConfig struct {
	// Segment is the geometry and technology of the single L2 array.
	Segment SegmentConfig
	// EpochAccesses is the repartition interval in L2 accesses.
	EpochAccesses uint64
	// Slack is the per-way miss premium: the controller picks the
	// allocation minimizing estimated misses plus Slack*accesses for
	// every powered way, so it gates a way whenever that way's
	// marginal hit rate falls below Slack. Setting it to the
	// energy break-even (leakage saved per way-epoch divided by the
	// DRAM cost of one extra miss) makes the controller minimize
	// energy; the paper's "minimize overall cache size" behaviour.
	Slack float64
	// MinWaysPerDomain keeps every domain allocatable (>= 1).
	MinWaysPerDomain int
	// SampleShift sets monitor set-sampling to 1 in 2^shift sets.
	SampleShift uint
	// MaxStepPerEpoch clamps how many ways a domain's allocation may
	// *shrink* per repartition, damping cold-start over-gating and
	// bounding flush costs. Growth is never clamped: powering a way on
	// costs nothing but leakage, while powering one off discards its
	// contents. Zero selects the default (2).
	MaxStepPerEpoch int
	// Sample, when non-nil, is the set-sampling selector of a sampled
	// run: the utility monitors then subsample the live sets rather
	// than the nominal geometry (see cache.NewDomainMonitorsSampled).
	Sample *sample.Selector
}

// DefaultDynamicConfig returns the controller settings used by the
// paper-reproduction experiments for the given array config.
func DefaultDynamicConfig(seg SegmentConfig) DynamicConfig {
	return DynamicConfig{
		Segment:          seg,
		EpochAccesses:    25_000,
		Slack:            0.005,
		MinWaysPerDomain: 1,
		SampleShift:      3,
		MaxStepPerEpoch:  2,
	}
}

// Validate checks the controller parameters.
func (dc DynamicConfig) Validate() error {
	if err := dc.Segment.Validate(); err != nil {
		return err
	}
	if dc.EpochAccesses == 0 {
		return fmt.Errorf("core: dynamic epoch must be positive")
	}
	if dc.Slack < 0 || dc.Slack > 1 {
		return fmt.Errorf("core: dynamic slack %g outside [0,1]", dc.Slack)
	}
	if dc.MinWaysPerDomain < 1 {
		return fmt.Errorf("core: dynamic min ways %d below 1", dc.MinWaysPerDomain)
	}
	if 2*dc.MinWaysPerDomain > dc.Segment.Ways {
		return fmt.Errorf("core: dynamic min ways %d infeasible for %d-way array", dc.MinWaysPerDomain, dc.Segment.Ways)
	}
	if dc.MaxStepPerEpoch < 0 {
		return fmt.Errorf("core: negative max step %d", dc.MaxStepPerEpoch)
	}
	return nil
}

// PartitionDecision records one epoch's allocation, the data behind the
// adaptation-over-time figure (E9).
type PartitionDecision struct {
	// Epoch is the decision index (0 = initial allocation).
	Epoch int
	// AtAccess is the cumulative L2 access count when decided.
	AtAccess uint64
	// AtCycle is the simulated cycle when decided.
	AtCycle uint64
	// UserWays and KernelWays are the new allocation; GatedWays is the
	// powered-off remainder.
	UserWays   int
	KernelWays int
	GatedWays  int
	// EstimatedMissRate is the controller's predicted miss rate for
	// the chosen allocation (from monitor curves).
	EstimatedMissRate float64
}

// DynamicPartition is the paper's third design: a single array whose
// ways are dynamically divided between user and kernel domains by an
// epoch-based controller driven by per-domain shadow-tag utility
// monitors, with surplus ways power-gated to minimize powered capacity.
// Combined with a short-retention STT-RAM segment configuration this is
// the paper's maximal-savings design (DP-SR).
type DynamicPartition struct {
	cfg  DynamicConfig
	seg  *segment
	mon  *cache.DomainMonitors
	name string

	epochAccesses uint64
	epochLen      uint64 // current epoch length; ramps up to cfg.EpochAccesses
	totalAccesses uint64
	epoch         int

	userWays, kernelWays int
	history              []PartitionDecision
	flushWritebacks      uint64
}

// NewDynamicPartition builds the design. wb receives dirty victim and
// flush writeback addresses.
func NewDynamicPartition(cfg DynamicConfig, wb func(addr uint64)) (*DynamicPartition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seg, err := newSegment(cfg.Segment, wb)
	if err != nil {
		return nil, err
	}
	dp := &DynamicPartition{
		cfg:  cfg,
		seg:  seg,
		name: cfg.Segment.Name,
		mon:  cache.NewDomainMonitorsSampled(cfg.Segment.Sets(), cfg.Segment.Ways, cfg.Segment.BlockBytes, cfg.SampleShift, cfg.Sample),
	}
	// Initial allocation: start small and grow on demand — a cold
	// cache cannot exploit full capacity anyway, and powering it up
	// front only leaks.
	start := cfg.Segment.Ways / 8
	if start < cfg.MinWaysPerDomain {
		start = cfg.MinWaysPerDomain
	}
	dp.userWays = start
	dp.kernelWays = start
	// Early epochs are short so the cold-start allocation is corrected
	// quickly; the length doubles until it reaches the configured
	// steady-state epoch.
	dp.epochLen = cfg.EpochAccesses / 8
	if dp.epochLen == 0 {
		dp.epochLen = 1
	}
	dp.applyAllocation(0)
	dp.record(0, 0) // epoch 0: the initial minimal split
	return dp, nil
}

// Sets re-exported from the segment config for monitor geometry.
func (sc SegmentConfig) Sets() int {
	return int(sc.SizeBytes / (uint64(sc.Ways) * uint64(sc.BlockBytes)))
}

// Name implements L2.
func (dp *DynamicPartition) Name() string { return dp.name }

// Access implements L2.
func (dp *DynamicPartition) Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (bool, uint64) {
	dp.mon.Access(blockAddr, dom)
	hit, lat := dp.seg.access(blockAddr, write, dom, now)
	dp.totalAccesses++
	dp.epochAccesses++
	if dp.epochAccesses >= dp.epochLen {
		dp.repartition(now)
		dp.epochAccesses = 0
		if dp.epochLen < dp.cfg.EpochAccesses {
			dp.epochLen *= 2
			if dp.epochLen > dp.cfg.EpochAccesses {
				dp.epochLen = dp.cfg.EpochAccesses
			}
		}
	}
	return hit, lat
}

// Advance implements L2.
func (dp *DynamicPartition) Advance(now uint64) { dp.seg.advance(now) }

// Energy implements L2.
func (dp *DynamicPartition) Energy() energy.Breakdown { return dp.seg.meter.Breakdown() }

// Stats implements L2.
func (dp *DynamicPartition) Stats() L2Stats { return dp.seg.stats() }

// SizeBytes implements L2.
func (dp *DynamicPartition) SizeBytes() uint64 { return dp.cfg.Segment.SizeBytes }

// PoweredBytes implements L2: installed capacity scaled by powered ways.
func (dp *DynamicPartition) PoweredBytes() uint64 {
	return dp.cfg.Segment.SizeBytes * uint64(dp.userWays+dp.kernelWays) / uint64(dp.cfg.Segment.Ways)
}

// Allocation reports the current (userWays, kernelWays).
func (dp *DynamicPartition) Allocation() (int, int) { return dp.userWays, dp.kernelWays }

// ForceAllocation installs a fixed (userWays, kernelWays) split
// immediately — used to study static way partitioning with the same
// machinery (the controller will still repartition at its next epoch
// unless the epoch length exceeds the run). It panics on an infeasible
// split.
func (dp *DynamicPartition) ForceAllocation(userWays, kernelWays int) {
	ways := dp.cfg.Segment.Ways
	if userWays < 1 || kernelWays < 1 || userWays+kernelWays > ways {
		panic(fmt.Sprintf("core: infeasible forced allocation %d+%d of %d", userWays, kernelWays, ways))
	}
	dp.userWays, dp.kernelWays = userWays, kernelWays
	dp.applyAllocation(0)
	dp.record(0, 0)
}

// History returns every partition decision taken so far.
func (dp *DynamicPartition) History() []PartitionDecision { return dp.history }

// FlushWritebacks reports dirty lines written back due to repartition
// flushes (an overhead unique to the dynamic design).
func (dp *DynamicPartition) FlushWritebacks() uint64 { return dp.flushWritebacks }

// Cache exposes the underlying array for instrumentation.
func (dp *DynamicPartition) Cache() *cache.Cache { return dp.seg.c }

// repartition recomputes the allocation from the monitors' miss curves.
func (dp *DynamicPartition) repartition(now uint64) {
	dp.epoch++
	ways := dp.cfg.Segment.Ways
	minW := dp.cfg.MinWaysPerDomain
	um, km := dp.mon.Mon[trace.User], dp.mon.Mon[trace.Kernel]
	sampled := um.Accesses() + km.Accesses()
	if sampled == 0 {
		// No signal this epoch (idle); keep the allocation.
		dp.record(now, dp.estMissRate(um, km))
		return
	}

	// Pick the allocation minimizing estimated misses plus a per-way
	// premium — gating every way whose marginal utility is below the
	// premium. Ties prefer fewer powered ways.
	perWay := dp.cfg.Slack * float64(sampled)
	chosenU, chosenK := minW, minW
	chosenMisses := ^uint64(0)
	bestCost := 0.0
	first := true
	for u := minW; u <= ways-minW; u++ {
		for k := minW; u+k <= ways; k++ {
			m := um.MissesWith(u) + km.MissesWith(k)
			cost := float64(m) + perWay*float64(u+k)
			better := cost < bestCost ||
				(cost == bestCost && u+k < chosenU+chosenK)
			if first || better {
				chosenU, chosenK, chosenMisses, bestCost = u, k, m, cost
				first = false
			}
		}
	}

	// Clamp shrinking so one noisy epoch (cold monitors, phase
	// boundary) cannot gate away live capacity violently; growth
	// follows demand immediately.
	step := dp.cfg.MaxStepPerEpoch
	if step == 0 {
		step = 2
	}
	if chosenU < dp.userWays-step {
		chosenU = dp.userWays - step
	}
	if chosenK < dp.kernelWays-step {
		chosenK = dp.kernelWays - step
	}
	// Clamping can overfill the array when one domain shrinks slowly
	// while the other wants to grow; trim the grown domain back.
	if over := chosenU + chosenK - ways; over > 0 {
		if chosenU > dp.userWays { // user was the grower
			chosenU -= min(over, chosenU-dp.cfg.MinWaysPerDomain)
		} else {
			chosenK -= min(over, chosenK-dp.cfg.MinWaysPerDomain)
		}
		// Degenerate curves could still overfill; hard-trim.
		for chosenU+chosenK > ways {
			if chosenU >= chosenK && chosenU > dp.cfg.MinWaysPerDomain {
				chosenU--
			} else if chosenK > dp.cfg.MinWaysPerDomain {
				chosenK--
			} else {
				chosenU--
			}
		}
	}
	chosenMisses = um.MissesWith(chosenU) + km.MissesWith(chosenK)

	if chosenU != dp.userWays || chosenK != dp.kernelWays {
		dp.userWays, dp.kernelWays = chosenU, chosenK
		dp.applyAllocation(now)
	}
	est := 0.0
	if sampled > 0 {
		est = float64(chosenMisses) / float64(sampled)
	}
	dp.record(now, est)
	dp.mon.Halve()
}

func (dp *DynamicPartition) estMissRate(um, km *cache.ShadowTags) float64 {
	sampled := um.Accesses() + km.Accesses()
	if sampled == 0 {
		return 0
	}
	m := um.MissesWith(dp.userWays) + km.MissesWith(dp.kernelWays)
	return float64(m) / float64(sampled)
}

func (dp *DynamicPartition) record(now uint64, est float64) {
	dp.history = append(dp.history, PartitionDecision{
		Epoch:             dp.epoch,
		AtAccess:          dp.totalAccesses,
		AtCycle:           now,
		UserWays:          dp.userWays,
		KernelWays:        dp.kernelWays,
		GatedWays:         dp.cfg.Segment.Ways - dp.userWays - dp.kernelWays,
		EstimatedMissRate: est,
	})
}

// applyAllocation installs the current (userWays, kernelWays) as way
// masks: user gets the low ways, kernel the next ones, the rest are
// gated. Only ways being powered off are flushed (dirty lines written
// back); ways that merely change owner keep their contents — the new
// owner's fills evict the old owner's blocks lazily, and until then
// those blocks still hit, exactly as in hardware way-partitioning.
func (dp *DynamicPartition) applyAllocation(now uint64) {
	ways := dp.cfg.Segment.Ways
	userMask := maskRange(0, dp.userWays)
	kernelMask := maskRange(dp.userWays, dp.userWays+dp.kernelWays)
	enabled := userMask | kernelMask

	c := dp.seg.c
	// Flush only ways that lose power.
	needFlush := c.EnabledMask() &^ enabled
	if needFlush != 0 {
		c.FlushWays(needFlush, now, func(addr uint64) {
			dp.flushWritebacks++
			// Reading the victim out for writeback costs one array read;
			// the DRAM write is charged by the wb callback's owner.
			dp.seg.meter.Read(1)
			if dp.seg.wb != nil {
				dp.seg.wb(addr)
			}
		})
	}

	// Integrate leakage at the old powered fraction before switching.
	dp.seg.meter.Advance(now)
	dp.seg.meter.SetPoweredFraction(float64(bits.OnesCount64(enabled)) / float64(ways))

	c.SetEnabledMask(enabled)
	c.SetDomainMask(trace.User, userMask)
	c.SetDomainMask(trace.Kernel, kernelMask)
}

// maskRange builds a bitmask covering ways [lo, hi).
func maskRange(lo, hi int) uint64 {
	var m uint64
	for w := lo; w < hi; w++ {
		m |= 1 << uint(w)
	}
	return m
}

var _ L2 = (*DynamicPartition)(nil)
