package core

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// SetPartition is the page-coloring alternative to the paper's
// mechanisms: one physical array whose *sets* (rather than ways or
// separate segments) are divided between the domains by remapping the
// index. An OS can realize this with no hardware change by coloring
// physical pages, which is why an open-source release ships it as a
// comparison point (experiment E20). Each domain sees a private,
// smaller cache with the full associativity; the trade-off against
// way partitioning is index-bit granularity instead of way
// granularity, and against separate segments a shared bank.
type SetPartition struct {
	name string
	seg  *segment
	// userSets is the number of sets assigned to the user domain; the
	// remaining sets belong to the kernel. Both are powers of two.
	userSets   int
	kernelSets int
}

// NewSetPartition builds the design, giving userSetsWanted sets to the
// user domain and the remainder to the kernel. The index remapping is
// a modulo fold, so any split is admissible; real page coloring would
// round to page-granular powers of two, which callers can do by
// choosing the split accordingly.
func NewSetPartition(cfg SegmentConfig, userSetsWanted int, wb func(addr uint64)) (*SetPartition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	total := cfg.Sets()
	if userSetsWanted <= 0 || userSetsWanted >= total {
		return nil, fmt.Errorf("core: set partition needs 0 < userSets < %d, got %d", total, userSetsWanted)
	}
	seg, err := newSegment(cfg, wb)
	if err != nil {
		return nil, err
	}
	return &SetPartition{name: cfg.Name, seg: seg, userSets: userSetsWanted, kernelSets: total - userSetsWanted}, nil
}

// remap folds a block address into the domain's set region while
// keeping the tag unambiguous: the domain's region index is the block
// address modulo its set count, offset into its region; the rest of
// the address becomes the tag. Distinct blocks keep distinct
// (set, tag) pairs because the division is by the region size.
func (sp *SetPartition) remap(blockAddr uint64, dom trace.Domain) uint64 {
	block := blockAddr / uint64(sp.seg.cfg.BlockBytes)
	regionSets := uint64(sp.userSets)
	base := uint64(0)
	if dom == trace.Kernel {
		regionSets = uint64(sp.kernelSets)
		base = uint64(sp.userSets)
	}
	idx := block % regionSets
	tag := block / regionSets
	totalSets := uint64(sp.seg.cfg.Sets())
	// Reassembled block index: tag bits above the full index field,
	// region-local index plus the region base below.
	newBlock := tag*totalSets + base + idx
	return newBlock * uint64(sp.seg.cfg.BlockBytes)
}

// Name implements L2.
func (sp *SetPartition) Name() string { return sp.name }

// Access implements L2, remapping the index into the caller's region.
func (sp *SetPartition) Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (bool, uint64) {
	return sp.seg.access(sp.remap(blockAddr, dom), write, dom, now)
}

// Advance implements L2.
func (sp *SetPartition) Advance(now uint64) { sp.seg.advance(now) }

// Energy implements L2.
func (sp *SetPartition) Energy() energy.Breakdown { return sp.seg.meter.Breakdown() }

// Stats implements L2.
func (sp *SetPartition) Stats() L2Stats { return sp.seg.stats() }

// SizeBytes implements L2.
func (sp *SetPartition) SizeBytes() uint64 { return sp.seg.cfg.SizeBytes }

// PoweredBytes implements L2.
func (sp *SetPartition) PoweredBytes() uint64 { return sp.seg.cfg.SizeBytes }

// Split reports the (userSets, kernelSets) division.
func (sp *SetPartition) Split() (int, int) { return sp.userSets, sp.kernelSets }

// Cache exposes the array for instrumentation.
func (sp *SetPartition) Cache() *cache.Cache { return sp.seg.c }

var _ L2 = (*SetPartition)(nil)
