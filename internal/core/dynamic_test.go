package core

import (
	"testing"
	"testing/quick"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

func dynCfg() DynamicConfig {
	cfg := DefaultDynamicConfig(segCfg("L2-dyn", 64*1024, 16, energy.SRAM))
	cfg.EpochAccesses = 2000
	cfg.SampleShift = 0 // small cache: monitor every set
	return cfg
}

func TestDynamicConfigValidate(t *testing.T) {
	good := dynCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.EpochAccesses = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero epoch accepted")
	}
	bad = good
	bad.Slack = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative slack accepted")
	}
	bad = good
	bad.MinWaysPerDomain = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero min ways accepted")
	}
	bad = good
	bad.MinWaysPerDomain = 9 // 2*9 > 16 ways
	if err := bad.Validate(); err == nil {
		t.Fatal("infeasible min ways accepted")
	}
}

func TestDynamicInitialAllocation(t *testing.T) {
	dp, err := NewDynamicPartition(dynCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	u, k := dp.Allocation()
	if u < 1 || k < 1 || u+k > 16 {
		t.Fatalf("initial allocation %d+%d infeasible", u, k)
	}
	// The controller starts small and grows on demand, so the initial
	// powered capacity must be a strict subset of the array.
	if dp.PoweredBytes() >= dp.SizeBytes() {
		t.Fatal("initial allocation should not power the whole array")
	}
	if len(dp.History()) != 1 {
		t.Fatalf("history has %d entries, want 1 (initial)", len(dp.History()))
	}
}

func TestDynamicPartitionIsolatesDomains(t *testing.T) {
	dp, err := NewDynamicPartition(dynCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30000; i++ {
		addr := (i % 2048) * 64
		dp.Access(addr, false, trace.User, i*20)
		dp.Access(0xffff000000000000+addr, false, trace.Kernel, i*20+10)
	}
	// Way ownership changes hand over contents lazily, so a few
	// cross-domain evictions occur right after a repartition — but in
	// steady state the masks isolate the domains, so interference must
	// stay a tiny fraction of all evictions.
	cs := dp.Cache().Stats()
	if cs.Evictions > 0 {
		frac := float64(cs.InterferenceEvictions) / float64(cs.Evictions)
		if frac > 0.05 {
			t.Fatalf("interference evictions = %.1f%% of evictions, want transition-only (<5%%)", frac*100)
		}
	}
	// New allocations always respect the masks: every block filled
	// after the last repartition sits in its domain's ways.
	c := dp.Cache()
	lastRepartition := dp.History()[len(dp.History())-1].AtCycle
	c.VisitValid(func(_, way int, meta *cache.BlockMeta) {
		if meta.FilledAt > lastRepartition && c.DomainMask(meta.Domain)&(1<<uint(way)) == 0 {
			t.Fatalf("block of %v filled at %d in way %d outside its mask", meta.Domain, meta.FilledAt, way)
		}
	})
}

func TestDynamicShrinksSmallFootprint(t *testing.T) {
	// Both domains touch tiny working sets: the controller must gate
	// most ways.
	cfg := dynCfg()
	dp, err := NewDynamicPartition(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 50000; i++ {
		now += 20
		dp.Access((i%8)*64, false, trace.User, now)
		now += 20
		dp.Access(0xffff000000000000+(i%8)*64, false, trace.Kernel, now)
	}
	u, k := dp.Allocation()
	if u+k > 8 {
		t.Fatalf("tiny footprints kept %d+%d ways powered", u, k)
	}
	if dp.PoweredBytes() >= dp.SizeBytes() {
		t.Fatal("powered capacity did not shrink")
	}
	// History must show at least one gating decision.
	last := dp.History()[len(dp.History())-1]
	if last.GatedWays == 0 {
		t.Fatalf("no gated ways in final decision: %+v", last)
	}
}

func TestDynamicGrowsForLargeFootprint(t *testing.T) {
	// User streams a large hot set while kernel stays tiny: the user
	// allocation must end up far above the kernel's.
	dp, err := NewDynamicPartition(dynCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	// User working set: 512 blocks over 64 sets (64KB cache, 16 ways,
	// 64B blocks = 64 sets); that's 8 ways' worth.
	for i := uint64(0); i < 120000; i++ {
		now += 20
		dp.Access((i%768)*64, false, trace.User, now)
		if i%5 == 0 {
			now += 20
			dp.Access(0xffff000000000000+(i%4)*64, false, trace.Kernel, now)
		}
	}
	u, k := dp.Allocation()
	if u <= k {
		t.Fatalf("user ways %d not above kernel ways %d for user-heavy load", u, k)
	}
	if u < 6 {
		t.Fatalf("user allocation %d too small for 12-way footprint", u)
	}
}

func TestDynamicAdaptsAcrossPhases(t *testing.T) {
	// Phase 1 favours user, phase 2 favours kernel; allocations must
	// follow.
	dp, err := NewDynamicPartition(dynCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 60000; i++ {
		now += 20
		dp.Access((i%640)*64, false, trace.User, now)
		if i%8 == 0 {
			now += 20
			dp.Access(0xffff000000000000+(i%4)*64, false, trace.Kernel, now)
		}
	}
	u1, k1 := dp.Allocation()
	for i := uint64(0); i < 60000; i++ {
		now += 20
		dp.Access(0xffff000000000000+(i%640)*64, false, trace.Kernel, now)
		if i%8 == 0 {
			now += 20
			dp.Access((i%4)*64, false, trace.User, now)
		}
	}
	u2, k2 := dp.Allocation()
	if u1 <= k1 {
		t.Fatalf("phase 1 allocation user=%d kernel=%d, want user-heavy", u1, k1)
	}
	if k2 <= u2 {
		t.Fatalf("phase 2 allocation user=%d kernel=%d, want kernel-heavy", u2, k2)
	}
}

func TestDynamicFlushWritesBackDirtyOnRepartition(t *testing.T) {
	var wbs int
	cfg := dynCfg()
	dp, err := NewDynamicPartition(cfg, func(uint64) { wbs++ })
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	// Phase 1: dirty wide footprints in both domains so the controller
	// grows and the ways fill with dirty lines.
	for i := uint64(0); i < 30000; i++ {
		now += 20
		dp.Access((i%1024)*64, true, trace.User, now)
		now += 20
		dp.Access(0xffff000000000000+(i%512)*64, true, trace.Kernel, now)
	}
	u1, k1 := dp.Allocation()
	if u1+k1 < 8 {
		t.Fatalf("precondition: controller did not grow (u=%d k=%d)", u1, k1)
	}
	// Phase 2: tiny footprints; the controller must gate ways, and
	// gating powers off dirty lines, which must be written back.
	for i := uint64(0); i < 60000; i++ {
		now += 20
		dp.Access((i%4)*64, false, trace.User, now)
		now += 20
		dp.Access(0xffff000000000000+(i%4)*64, false, trace.Kernel, now)
	}
	u2, k2 := dp.Allocation()
	if u2+k2 >= u1+k1 {
		t.Fatalf("controller did not shrink (%d+%d -> %d+%d)", u1, k1, u2, k2)
	}
	if dp.FlushWritebacks() == 0 {
		t.Fatal("no flush writebacks despite gating away dirty ways")
	}
	if wbs == 0 {
		t.Fatal("writeback callback never invoked")
	}
}

func TestDynamicLeakageScalesWithGating(t *testing.T) {
	// Run a tiny-footprint load long enough to gate most ways, then
	// compare leakage growth against a fully powered twin over the
	// same additional interval.
	cfg := dynCfg()
	dp, err := NewDynamicPartition(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 30000; i++ {
		now += 30
		dp.Access((i%8)*64, false, trace.User, now)
		dp.Access(0xffff000000000000+(i%8)*64, false, trace.Kernel, now)
	}
	dp.Advance(now)
	leakBefore := dp.Energy().LeakageJ
	poweredFrac := float64(dp.PoweredBytes()) / float64(dp.SizeBytes())
	if poweredFrac >= 0.999 {
		t.Fatal("precondition failed: array did not gate")
	}
	// One second of idle leakage at the gated fraction.
	dp.Advance(now + energy.Cycles(1.0))
	leakDelta := dp.Energy().LeakageJ - leakBefore
	fullLeak := energy.DefaultParams(energy.SRAM).LeakageMWPerMB * 1e-3 * (64.0 / 1024.0)
	wantLeak := fullLeak * poweredFrac
	if leakDelta <= 0 {
		t.Fatal("no leakage accumulated")
	}
	ratio := leakDelta / wantLeak
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("gated leakage %g J, want ~%g J (ratio %g)", leakDelta, wantLeak, ratio)
	}
}

func TestDynamicHistoryConsistent(t *testing.T) {
	dp, err := NewDynamicPartition(dynCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 20000; i++ {
		now += 20
		dp.Access((i%256)*64, false, trace.User, now)
		dp.Access(0xffff000000000000+(i%64)*64, false, trace.Kernel, now)
	}
	hist := dp.History()
	if len(hist) < 2 {
		t.Fatalf("history has %d entries, want several", len(hist))
	}
	ways := dp.Cache().Config().Ways
	for i, d := range hist {
		if d.UserWays+d.KernelWays+d.GatedWays != ways {
			t.Fatalf("decision %d does not partition the array: %+v", i, d)
		}
		if d.UserWays < 1 || d.KernelWays < 1 {
			t.Fatalf("decision %d starves a domain: %+v", i, d)
		}
		if i > 0 && d.AtAccess < hist[i-1].AtAccess {
			t.Fatalf("history not ordered at %d", i)
		}
	}
}

// Property: under arbitrary access streams the controller never
// violates its structural invariants — allocations partition the
// array, stats stay consistent, powered never exceeds installed, and
// no dirty data is lost.
func TestDynamicInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := dynCfg()
		cfg.EpochAccesses = 500
		dp, err := NewDynamicPartition(cfg, nil)
		if err != nil {
			return false
		}
		s := seed
		now := uint64(0)
		for i := 0; i < 5000; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			now += 1 + s%200
			addr := (s >> 16) % (256 * 1024)
			dom := trace.User
			if s%16 < 7 {
				dom = trace.Kernel
				addr += 0xffff000000000000
			}
			dp.Access(addr, s%5 == 0, dom, now)
		}
		u, k := dp.Allocation()
		ways := dp.Cache().Config().Ways
		if u < 1 || k < 1 || u+k > ways {
			return false
		}
		if dp.PoweredBytes() > dp.SizeBytes() {
			return false
		}
		st := dp.Stats()
		for d := 0; d < trace.NumDomains; d++ {
			if st.Hits[d]+st.Misses[d] != st.Accesses[d] {
				return false
			}
		}
		if st.DirtyExpiries != 0 {
			return false
		}
		for i, dec := range dp.History() {
			if dec.UserWays+dec.KernelWays+dec.GatedWays != ways {
				return false
			}
			if i > 0 && dec.AtAccess < dp.History()[i-1].AtAccess {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicWithShortRetentionSTT(t *testing.T) {
	// DP-SR: the paper's maximal design. Verify it runs, expires clean
	// lines, never loses dirty data, and gates ways.
	seg := segCfg("L2-dpsr", 64*1024, 16, energy.STTShort)
	cfg := DefaultDynamicConfig(seg)
	cfg.EpochAccesses = 2000
	cfg.SampleShift = 0
	dp, err := NewDynamicPartition(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 60000; i++ {
		now += 1500 // slow accesses so retention matters (26.5us = 53k cycles)
		dp.Access((i%64)*64, i%4 == 0, trace.User, now)
		now += 1500
		dp.Access(0xffff000000000000+(i%32)*64, i%3 == 0, trace.Kernel, now)
	}
	st := dp.Stats()
	if st.DirtyExpiries != 0 {
		t.Fatalf("dirty expiries = %d, want 0", st.DirtyExpiries)
	}
	if st.Refreshes == 0 {
		t.Fatal("short-retention array never refreshed")
	}
	if dp.Energy().RefreshJ <= 0 {
		t.Fatal("no refresh energy")
	}
}
