package core

import (
	"testing"

	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

func drowsyCfg() DrowsyConfig {
	return DefaultDrowsyConfig(segCfg("L2-drowsy", 64*1024, 8, energy.SRAM))
}

func TestDrowsyConfigValidate(t *testing.T) {
	if err := drowsyCfg().Validate(); err != nil {
		t.Fatalf("default drowsy config invalid: %v", err)
	}
	bad := drowsyCfg()
	bad.Segment.Tech = energy.STTShort
	if err := bad.Validate(); err == nil {
		t.Fatal("drowsy accepted on STT-RAM")
	}
	bad = drowsyCfg()
	bad.WindowCycles = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero window accepted")
	}
	bad = drowsyCfg()
	bad.DrowsyLeakRatio = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("leak ratio > 1 accepted")
	}
	bad = drowsyCfg()
	bad.PeripheralFraction = -0.1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative peripheral fraction accepted")
	}
}

func TestDrowsyWakePenalty(t *testing.T) {
	d, err := NewDrowsyUnified(drowsyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Access(0x40, false, trace.User, 0)
	// Fresh hit: no wake penalty.
	_, freshLat := d.Access(0x40, false, trace.User, 100)
	// Stale hit (past the window): +WakeCycles.
	_, staleLat := d.Access(0x40, false, trace.User, 100+drowsyCfg().WindowCycles*3)
	if staleLat != freshLat+drowsyCfg().WakeCycles {
		t.Fatalf("stale hit latency %d, want fresh %d + wake %d", staleLat, freshLat, drowsyCfg().WakeCycles)
	}
	// Contents preserved: the stale access was still a hit.
	if st := d.Stats(); st.Misses[trace.User] != 1 {
		t.Fatalf("misses = %d, want only the cold fill", st.Misses[trace.User])
	}
}

func TestDrowsyLeakageBelowPlainSRAM(t *testing.T) {
	plain, err := NewUnified(segCfg("L2-plain", 64*1024, 8, energy.SRAM), nil)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := NewDrowsyUnified(drowsyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Touch a few lines, then let a long idle stretch elapse.
	for i := uint64(0); i < 64; i++ {
		plain.Access(i*64, false, trace.User, i)
		dw.Access(i*64, false, trace.User, i)
	}
	end := energy.Cycles(0.01) // 10 ms idle
	plain.Advance(end)
	dw.Advance(end)
	pl, dl := plain.Energy().LeakageJ, dw.Energy().LeakageJ
	if dl >= pl/2 {
		t.Fatalf("drowsy leakage %g not well below plain %g", dl, pl)
	}
	// But the peripheral floor holds: cannot go below that share.
	floor := pl * drowsyCfg().PeripheralFraction * 0.9
	if dl < floor {
		t.Fatalf("drowsy leakage %g below the peripheral floor %g", dl, floor)
	}
}

func TestDrowsyKeepsCapacityPowered(t *testing.T) {
	dw, err := NewDrowsyUnified(drowsyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if dw.PoweredBytes() != dw.SizeBytes() {
		t.Fatal("drowsy mode must retain all lines (state-preserving)")
	}
	if dw.Name() != "L2-drowsy" {
		t.Fatalf("name = %q", dw.Name())
	}
}

func TestDrowsyNoExtraMisses(t *testing.T) {
	// Drowsy is state-preserving: replaying the same stream on plain
	// and drowsy unified L2s must produce identical hit/miss counts.
	plain, err := NewUnified(segCfg("p", 64*1024, 8, energy.SRAM), nil)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := NewDrowsyUnified(drowsyCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for i := uint64(0); i < 20000; i++ {
		now += 700 // long gaps: most hits are drowsy
		addr := (i * 2654435761) % (128 * 1024)
		dom := trace.User
		if i%3 == 0 {
			dom = trace.Kernel
		}
		plain.Access(addr, i%5 == 0, dom, now)
		dw.Access(addr, i%5 == 0, dom, now)
	}
	ps, ds := plain.Stats(), dw.Stats()
	if ps.TotalMisses() != ds.TotalMisses() || ps.TotalAccesses() != ds.TotalAccesses() {
		t.Fatalf("drowsy changed miss behaviour: %d/%d vs %d/%d",
			ds.TotalMisses(), ds.TotalAccesses(), ps.TotalMisses(), ps.TotalAccesses())
	}
}
