package core

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/trace"
)

// StaticPartition is the paper's first design: the L2 is split into two
// physically separate segments, one reachable only by user accesses and
// one only by kernel accesses. Interference between the domains
// disappears by construction, which lets the segments be sized smaller
// than the unified baseline at a similar miss rate. Each segment is an
// independent bank with its own technology, so the multi-retention
// design (user segment in a long-retention STT-RAM, kernel segment in a
// short-retention one) is just a configuration of this type.
type StaticPartition struct {
	name string
	segs [trace.NumDomains]*segment
}

// NewStaticPartition builds the two-segment L2. The segment configs are
// independent; the paper's SP design uses SRAM for both, its SP-MR
// design uses STT-RAM classes matched to each domain's behaviour.
func NewStaticPartition(name string, user, kernel SegmentConfig, wb func(addr uint64)) (*StaticPartition, error) {
	if user.BlockBytes != kernel.BlockBytes {
		return nil, fmt.Errorf("core: %s: segment block sizes differ (%d vs %d)", name, user.BlockBytes, kernel.BlockBytes)
	}
	us, err := newSegment(user, wb)
	if err != nil {
		return nil, fmt.Errorf("core: %s user segment: %w", name, err)
	}
	ks, err := newSegment(kernel, wb)
	if err != nil {
		return nil, fmt.Errorf("core: %s kernel segment: %w", name, err)
	}
	sp := &StaticPartition{name: name}
	sp.segs[trace.User] = us
	sp.segs[trace.Kernel] = ks
	return sp, nil
}

// Name implements L2.
func (sp *StaticPartition) Name() string { return sp.name }

// Access implements L2, routing by domain; the two banks are
// independent, so user and kernel accesses never contend.
func (sp *StaticPartition) Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (bool, uint64) {
	return sp.segs[dom].access(blockAddr, write, dom, now)
}

// Advance implements L2.
func (sp *StaticPartition) Advance(now uint64) {
	sp.segs[trace.User].advance(now)
	sp.segs[trace.Kernel].advance(now)
}

// Energy implements L2, summing both segments.
func (sp *StaticPartition) Energy() energy.Breakdown {
	bd := sp.segs[trace.User].meter.Breakdown()
	bd.Add(sp.segs[trace.Kernel].meter.Breakdown())
	return bd
}

// SegmentEnergy reports one segment's breakdown (for E6's per-segment
// split).
func (sp *StaticPartition) SegmentEnergy(d trace.Domain) energy.Breakdown {
	return sp.segs[d].meter.Breakdown()
}

// Stats implements L2, summing both segments.
func (sp *StaticPartition) Stats() L2Stats {
	s := sp.segs[trace.User].stats()
	s.add(sp.segs[trace.Kernel].stats())
	return s
}

// SegmentStats reports one segment's counters.
func (sp *StaticPartition) SegmentStats(d trace.Domain) L2Stats {
	return sp.segs[d].stats()
}

// SegmentCache exposes a segment's array for instrumentation.
func (sp *StaticPartition) SegmentCache(d trace.Domain) *cache.Cache {
	return sp.segs[d].c
}

// SegmentConfigOf reports a segment's configuration.
func (sp *StaticPartition) SegmentConfigOf(d trace.Domain) SegmentConfig {
	return sp.segs[d].cfg
}

// SizeBytes implements L2.
func (sp *StaticPartition) SizeBytes() uint64 {
	return sp.segs[trace.User].cfg.SizeBytes + sp.segs[trace.Kernel].cfg.SizeBytes
}

// PoweredBytes implements L2; static segments are always fully powered.
func (sp *StaticPartition) PoweredBytes() uint64 { return sp.SizeBytes() }

var _ L2 = (*StaticPartition)(nil)
