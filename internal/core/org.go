// Package core implements the paper's contribution: the three L2 cache
// organizations it proposes and compares for mobile SoCs.
//
//   - Unified: the conventional shared L2 (baseline), in SRAM or any
//     STT-RAM class.
//   - StaticPartition: two physically separate segments reachable only
//     by user and kernel accesses respectively; segment sizes may sum
//     to less than the baseline (the shrink that saves energy), and
//     each segment picks its own technology (multi-retention STT-RAM).
//   - DynamicPartition: a single way-partitioned array whose
//     user/kernel way allocation is recomputed every epoch from shadow
//     tag monitors; ways not needed to hold the miss rate are power
//     gated, minimizing powered capacity online.
//
// All organizations share the same access contract so the memory
// hierarchy can swap them freely: Access(blockAddr, write, domain,
// now) -> (hit, latency), plus Advance(now) for leakage integration.
package core

import (
	"fmt"
	"math/bits"

	"mobilecache/internal/cache"
	"mobilecache/internal/energy"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
)

// L2Stats aggregates the counters every organization reports; the
// experiment harness consumes this uniform view.
type L2Stats struct {
	Accesses [trace.NumDomains]uint64
	Hits     [trace.NumDomains]uint64
	Misses   [trace.NumDomains]uint64

	Evictions             uint64
	InterferenceEvictions uint64
	Writebacks            uint64
	ExpiryInvalidations   uint64

	Refreshes       uint64
	EagerWritebacks uint64
	CleanExpiries   uint64
	DirtyExpiries   uint64
	FaultExpiries   uint64
}

// TotalAccesses sums both domains.
func (s L2Stats) TotalAccesses() uint64 {
	return s.Accesses[trace.User] + s.Accesses[trace.Kernel]
}

// TotalMisses sums both domains.
func (s L2Stats) TotalMisses() uint64 {
	return s.Misses[trace.User] + s.Misses[trace.Kernel]
}

// MissRate is overall misses/accesses.
func (s L2Stats) MissRate() float64 {
	if s.TotalAccesses() == 0 {
		return 0
	}
	return float64(s.TotalMisses()) / float64(s.TotalAccesses())
}

// DomainMissRate is one domain's miss rate.
func (s L2Stats) DomainMissRate(d trace.Domain) float64 {
	if s.Accesses[d] == 0 {
		return 0
	}
	return float64(s.Misses[d]) / float64(s.Accesses[d])
}

// KernelShare is the kernel fraction of L2 accesses (experiment E1).
func (s L2Stats) KernelShare() float64 {
	if s.TotalAccesses() == 0 {
		return 0
	}
	return float64(s.Accesses[trace.Kernel]) / float64(s.TotalAccesses())
}

// add merges o into s.
func (s *L2Stats) add(o L2Stats) {
	for d := 0; d < trace.NumDomains; d++ {
		s.Accesses[d] += o.Accesses[d]
		s.Hits[d] += o.Hits[d]
		s.Misses[d] += o.Misses[d]
	}
	s.Evictions += o.Evictions
	s.InterferenceEvictions += o.InterferenceEvictions
	s.Writebacks += o.Writebacks
	s.ExpiryInvalidations += o.ExpiryInvalidations
	s.Refreshes += o.Refreshes
	s.EagerWritebacks += o.EagerWritebacks
	s.CleanExpiries += o.CleanExpiries
	s.DirtyExpiries += o.DirtyExpiries
	s.FaultExpiries += o.FaultExpiries
}

// L2 is the contract every organization satisfies. The hierarchy in
// internal/mem drives it; the experiment harness reads its stats.
type L2 interface {
	// Name labels the organization for reports.
	Name() string
	// Access performs one block access at time now and returns whether
	// it hit and the cycles the L2 itself contributed (bank wait +
	// array latency). DRAM time on a miss is the caller's to add.
	Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (hit bool, latency uint64)
	// Advance integrates leakage (and runs due refresh scans) up to now.
	Advance(now uint64)
	// Energy reports the accumulated energy breakdown.
	Energy() energy.Breakdown
	// Stats reports the aggregated event counters.
	Stats() L2Stats
	// SizeBytes is the organization's total installed capacity.
	SizeBytes() uint64
	// PoweredBytes is the currently powered capacity (gating-aware).
	PoweredBytes() uint64
	// Snapshot captures the organization's complete mutable state as an
	// opaque value; Restore rewinds to it. A state only restores into an
	// L2 of the identical construction (see state.go).
	Snapshot() L2State
	Restore(L2State)
}

// SegmentConfig describes one physical array (a whole unified L2, or
// one side of a static partition).
type SegmentConfig struct {
	// Name labels the segment.
	Name string
	// SizeBytes, Ways, BlockBytes set the geometry.
	SizeBytes  uint64
	Ways       int
	BlockBytes int
	// Policy is the replacement policy (default LRU).
	Policy cache.PolicyKind
	// Tech selects the memory technology.
	Tech energy.Tech
	// Refresh selects the refresh policy for bounded-retention techs.
	Refresh sttram.RefreshPolicy
	// ParamsOverride, when non-nil, replaces the default technology
	// parameters — used by sensitivity sweeps (e.g. a parametric
	// retention target from energy.ParamsForRetention).
	ParamsOverride *energy.Params
	// RefreshLimit caps consecutive idle refreshes per line before the
	// controller writes the line back and lets it expire (the dynamic
	// refresh scheme). Zero means unlimited.
	RefreshLimit uint32
	// Banks is the number of independently schedulable banks the array
	// is interleaved across (by block address). More banks reduce
	// bank-busy serialization. Zero or one means a single bank.
	Banks int
	// RetentionJitter derates per-line retention into
	// [retention*(1-j), retention] to model process variation (0 =
	// nominal retention everywhere).
	RetentionJitter float64
	// FaultBER injects stochastic retention faults: each fill suffers
	// a seeded thermal-tail early expiry with this probability (0 =
	// ideal cells). Only meaningful for STT-RAM technologies.
	FaultBER float64
	// FaultSeed seeds the deterministic fault draws.
	FaultSeed uint64
	// TimeCompress divides the retention budget by this factor (0 or 1
	// = off). Set-sampled runs compress simulated time by the sampling
	// factor — a 1/8 replay covers 1/8 of the instructions, hence 1/8
	// of the cycles — so retention (and the refresh cadence derived
	// from it) must compress identically or refresh dynamics would run
	// 8x slow relative to the per-line access intervals. Compression
	// happens here, at the cycle level, rather than by rewriting the
	// config's retention seconds: ParamsForRetention couples retention
	// to write energy, which must not change under sampling.
	TimeCompress uint64
}

// Validate checks the segment configuration.
func (sc SegmentConfig) Validate() error {
	cc := cache.Config{Name: sc.Name, SizeBytes: sc.SizeBytes, Ways: sc.Ways, BlockBytes: sc.BlockBytes, Policy: sc.Policy}
	if err := cc.Validate(); err != nil {
		return err
	}
	if !sc.Tech.Valid() {
		return fmt.Errorf("core: segment %s: invalid tech %d", sc.Name, sc.Tech)
	}
	if !sc.Refresh.Valid() {
		return fmt.Errorf("core: segment %s: invalid refresh policy %d", sc.Name, sc.Refresh)
	}
	if sc.Banks < 0 || sc.Banks > 64 {
		return fmt.Errorf("core: segment %s: bank count %d outside 0..64", sc.Name, sc.Banks)
	}
	if sc.FaultBER < 0 || sc.FaultBER > 1 {
		return fmt.Errorf("core: segment %s: fault BER %g outside [0, 1]", sc.Name, sc.FaultBER)
	}
	if sc.FaultBER > 0 && !sc.Tech.IsSTT() {
		return fmt.Errorf("core: segment %s: retention faults need an STT-RAM tech, got %s", sc.Name, sc.Tech)
	}
	return nil
}

// segment is one physical bank: cache array + energy meter + retention
// controller + bank-busy tracking.
type segment struct {
	cfg   SegmentConfig
	c     *cache.Cache
	meter *energy.Meter
	ctrl  *sttram.Controller
	// wb receives dirty victim addresses (DRAM writeback path).
	wb func(addr uint64)
	// busyUntil models bank occupancy: a new access waits for the
	// previous one to release its bank, which is how costlier STT-RAM
	// writes translate into real stall cycles. One entry per bank,
	// indexed by block address.
	busyUntil []uint64

	// Access-path constants hoisted out of the hot loop: meter params
	// are immutable after construction, block size is a power of two,
	// and an unbounded-retention (SRAM) controller never expires lines.
	readCycles  uint64
	writeCycles uint64
	blockShift  uint
	bankMask    uint64 // len(busyUntil)-1 when a power of two
	bankPow2    bool
	volatile    bool // ctrl.CanExpire()
}

func newSegment(cfg SegmentConfig, wb func(addr uint64)) (*segment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c, err := cache.New(cache.Config{
		Name: cfg.Name, SizeBytes: cfg.SizeBytes, Ways: cfg.Ways,
		BlockBytes: cfg.BlockBytes, Policy: cfg.Policy,
	})
	if err != nil {
		return nil, err
	}
	params := energy.DefaultParams(cfg.Tech)
	if cfg.ParamsOverride != nil {
		params = *cfg.ParamsOverride
	}
	meter := energy.NewMeter(params, cfg.SizeBytes)
	retention := params.RetentionCycles
	if cfg.TimeCompress > 1 && retention > 0 {
		retention /= cfg.TimeCompress
		if retention == 0 {
			retention = 1
		}
	}
	ctrl, err := sttram.NewController(c, meter, retention, cfg.Refresh, wb)
	if err != nil {
		return nil, err
	}
	ctrl.SetRefreshLimit(cfg.RefreshLimit)
	ctrl.SetRetentionJitter(cfg.RetentionJitter)
	ctrl.SetRetentionFaults(cfg.FaultBER, cfg.FaultSeed)
	banks := cfg.Banks
	if banks <= 0 {
		banks = 1
	}
	s := &segment{cfg: cfg, c: c, meter: meter, ctrl: ctrl, wb: wb, busyUntil: make([]uint64, banks)}
	p := meter.Params()
	s.readCycles, s.writeCycles = p.ReadCycles, p.WriteCycles
	s.blockShift = uint(bits.TrailingZeros(uint(cfg.BlockBytes)))
	s.bankPow2 = banks&(banks-1) == 0
	s.bankMask = uint64(banks - 1)
	s.volatile = ctrl.CanExpire()
	return s, nil
}

// bankOf maps a block address to its bank.
func (s *segment) bankOf(blockAddr uint64) int {
	if s.bankPow2 {
		return int((blockAddr >> s.blockShift) & s.bankMask)
	}
	return int((blockAddr / uint64(s.cfg.BlockBytes)) % uint64(len(s.busyUntil)))
}

// access runs the full probe/expiry/touch/fill sequence on the bank.
func (s *segment) access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (hit bool, latency uint64) {
	var set, way int
	if s.volatile {
		s.ctrl.Tick(now)
		set, way, hit = s.c.Probe(blockAddr)
		if hit && s.ctrl.Expired(set, way, now) {
			s.ctrl.HandleExpired(set, way, now)
			hit = false
		}
		s.c.CountAccess(dom, hit)
		if hit {
			s.c.Touch(set, way, write, dom, now)
		}
	} else {
		// Non-volatile arrays (SRAM) can never expire a line between the
		// probe and the touch, so the fused lookup — identical counter
		// and replacement-state effects — replaces the split sequence.
		set, way, hit = s.c.Lookup(blockAddr, write, dom, now)
	}

	bank := s.bankOf(blockAddr)
	start := now
	if s.busyUntil[bank] > start {
		start = s.busyUntil[bank]
	}

	if hit {
		lat := s.readCycles
		if write {
			lat = s.writeCycles
			s.meter.Write(1)
		} else {
			s.meter.Read(1)
		}
		s.busyUntil[bank] = start + lat
		return true, s.busyUntil[bank] - now
	}

	// Miss: the probe consumed a tag read; the fill writes the array.
	s.meter.Read(1)
	res := s.c.Fill(blockAddr, write, dom, now)
	s.meter.Write(1)
	if res.Evicted && res.EvictedDirty {
		// Victim must be read out of the array and written to DRAM.
		s.meter.Read(1)
		if s.wb != nil {
			s.wb(res.EvictedAddr)
		}
	}
	// The demand path pays the probe; the fill write occupies the bank
	// afterwards but is off the critical path.
	s.busyUntil[bank] = start + s.readCycles + s.writeCycles
	return false, (start + s.readCycles) - now
}

func (s *segment) advance(now uint64) {
	s.ctrl.Tick(now)
	s.meter.Advance(now)
}

func (s *segment) stats() L2Stats {
	cs := s.c.Stats()
	rs := s.ctrl.Stats()
	var out L2Stats
	for d := 0; d < trace.NumDomains; d++ {
		out.Accesses[d] = cs.Accesses[d]
		out.Hits[d] = cs.Hits[d]
		out.Misses[d] = cs.Misses[d]
	}
	out.Evictions = cs.Evictions
	out.InterferenceEvictions = cs.InterferenceEvictions
	out.Writebacks = cs.Writebacks
	out.ExpiryInvalidations = cs.ExpiryInvalidations
	out.Refreshes = rs.Refreshes
	out.EagerWritebacks = rs.EagerWritebacks
	out.CleanExpiries = rs.CleanExpiries
	out.DirtyExpiries = rs.DirtyExpiries
	out.FaultExpiries = rs.FaultExpiries
	return out
}

// Unified is the conventional shared L2: one array, both domains.
type Unified struct {
	name string
	seg  *segment
}

// NewUnified builds a unified L2 from cfg. wb receives dirty victim
// addresses.
func NewUnified(cfg SegmentConfig, wb func(addr uint64)) (*Unified, error) {
	seg, err := newSegment(cfg, wb)
	if err != nil {
		return nil, err
	}
	return &Unified{name: cfg.Name, seg: seg}, nil
}

// Name implements L2.
func (u *Unified) Name() string { return u.name }

// Access implements L2.
func (u *Unified) Access(blockAddr uint64, write bool, dom trace.Domain, now uint64) (bool, uint64) {
	return u.seg.access(blockAddr, write, dom, now)
}

// Advance implements L2.
func (u *Unified) Advance(now uint64) { u.seg.advance(now) }

// Energy implements L2.
func (u *Unified) Energy() energy.Breakdown { return u.seg.meter.Breakdown() }

// Stats implements L2.
func (u *Unified) Stats() L2Stats { return u.seg.stats() }

// SizeBytes implements L2.
func (u *Unified) SizeBytes() uint64 { return u.seg.cfg.SizeBytes }

// PoweredBytes implements L2; a unified array is always fully powered.
func (u *Unified) PoweredBytes() uint64 { return u.seg.cfg.SizeBytes }

// Cache exposes the underlying array for experiment instrumentation
// (lifetime histograms, occupancy).
func (u *Unified) Cache() *cache.Cache { return u.seg.c }

// interface conformance checks
var (
	_ L2 = (*Unified)(nil)
)
