package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("reset counter = %d, want 0", c.Value())
	}
}

func TestCounterRatio(t *testing.T) {
	var a, b Counter
	if r := a.Ratio(&b); r != 0 {
		t.Fatalf("0/0 ratio = %g, want 0", r)
	}
	a.Add(3)
	b.Add(4)
	if r := a.Ratio(&b); r != 0.75 {
		t.Fatalf("3/4 ratio = %g, want 0.75", r)
	}
}

func TestMeanKnownValues(t *testing.T) {
	var m Mean
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Observe(x)
	}
	if m.Count() != 8 {
		t.Fatalf("count = %d, want 8", m.Count())
	}
	if m.Value() != 5 {
		t.Fatalf("mean = %g, want 5", m.Value())
	}
	if m.StdDev() != 2 {
		t.Fatalf("stddev = %g, want 2", m.StdDev())
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("min/max = %g/%g, want 2/9", m.Min(), m.Max())
	}
}

func TestMeanEmptyAndReset(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.Variance() != 0 {
		t.Fatal("empty mean should be zero")
	}
	m.Observe(10)
	m.Reset()
	if m.Count() != 0 || m.Value() != 0 {
		t.Fatal("reset mean should be zero")
	}
}

func TestMeanMatchesNaive(t *testing.T) {
	// Property: Welford mean equals the naive sum/n within float tolerance.
	f := func(xs []float64) bool {
		var m Mean
		sum := 0.0
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			m.Observe(x)
			sum += x
			n++
		}
		if n == 0 {
			return m.Count() == 0
		}
		naive := sum / float64(n)
		return math.Abs(m.Value()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Observe(float64(i) + 0.5)
	}
	for i := 0; i < 10; i++ {
		if h.Bin(i) != 1 {
			t.Fatalf("bin %d = %d, want 1", i, h.Bin(i))
		}
	}
	h.Observe(-1)
	h.Observe(10)
	h.Observe(100)
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	if h.Count() != 13 {
		t.Fatalf("count = %d, want 13", h.Count())
	}
}

func TestHistogramConservation(t *testing.T) {
	// Property: every observed sample lands in exactly one bucket.
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 37)
		n := uint64(0)
		for _, x := range raw {
			if math.IsNaN(x) {
				continue
			}
			h.Observe(x)
			n++
		}
		inRange := uint64(0)
		for i := 0; i < h.NumBins(); i++ {
			inRange += h.Bin(i)
		}
		return h.Count() == n && inRange+h.Underflow()+h.Overflow() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %g, want ~50", med)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %g, want 0", q)
	}
	if q := h.Quantile(1); q < 99 {
		t.Fatalf("q1 = %g, want >=99", q)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		lo, hi float64
		n      int
	}{
		{0, 10, 0},
		{0, 10, -1},
		{10, 10, 4},
		{11, 10, 4},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%g,%g,%d) did not panic", tc.lo, tc.hi, tc.n)
				}
			}()
			NewHistogram(tc.lo, tc.hi, tc.n)
		}()
	}
}

func TestLog2HistogramBuckets(t *testing.T) {
	h := NewLog2Histogram(8)
	h.Observe(0)
	h.Observe(0.5)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1024) // saturates into last bin (2^7..)
	if h.Zero() != 2 {
		t.Fatalf("zero bucket = %d, want 2", h.Zero())
	}
	if h.Bin(0) != 1 {
		t.Fatalf("bin0 = %d, want 1", h.Bin(0))
	}
	if h.Bin(1) != 2 {
		t.Fatalf("bin1 = %d, want 2", h.Bin(1))
	}
	if h.Bin(7) != 1 {
		t.Fatalf("bin7 = %d, want 1 (saturated)", h.Bin(7))
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
}

func TestLog2HistogramCDFMonotone(t *testing.T) {
	h := NewLog2Histogram(20)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		h.Observe(rng.Float64() * 1e5)
	}
	prev := 0.0
	for e := 0; e <= 20; e++ {
		c := h.CDF(e)
		if c < prev {
			t.Fatalf("CDF not monotone at exp %d: %g < %g", e, c, prev)
		}
		prev = c
	}
	if h.CDF(20) != 1 {
		t.Fatalf("CDF(max) = %g, want 1", h.CDF(20))
	}
}

func TestLog2HistogramConservation(t *testing.T) {
	f := func(raw []uint32) bool {
		h := NewLog2Histogram(32)
		for _, x := range raw {
			h.ObserveInt(uint64(x))
		}
		sum := h.Zero()
		for i := 0; i < h.NumBins(); i++ {
			sum += h.Bin(i)
		}
		return sum == uint64(len(raw)) && h.Count() == uint64(len(raw))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
	h.Observe(2)
	h.Observe(4)
	h.Observe(6)
	if h.Mean() != 4 {
		t.Fatalf("mean = %g, want 4", h.Mean())
	}
	// Out-of-range samples still contribute to the exact mean.
	h.Observe(100)
	if h.Mean() != 28 {
		t.Fatalf("mean with overflow = %g, want 28", h.Mean())
	}
}

func TestLog2HistogramMeanAndString(t *testing.T) {
	h := NewLog2Histogram(8)
	if h.Mean() != 0 {
		t.Fatal("empty log2 histogram mean should be 0")
	}
	h.Observe(4)
	h.Observe(8)
	if h.Mean() != 6 {
		t.Fatalf("mean = %g, want 6", h.Mean())
	}
	s := h.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "zero=0") {
		t.Fatalf("string rendering wrong: %q", s)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Len() != 0 || s.MaxY() != 0 {
		t.Fatal("empty series should be zero")
	}
	s.Append(0, 1)
	s.Append(1, 5)
	s.Append(2, 3)
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	if s.MaxY() != 5 {
		t.Fatalf("maxY = %g, want 5", s.MaxY())
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %g, want 1", p)
	}
	if p := Percentile(xs, 100); p != 5 {
		t.Fatalf("p100 = %g, want 5", p)
	}
	if p := Percentile(xs, 50); p != 3 {
		t.Fatalf("p50 = %g, want 3", p)
	}
	if p := Percentile(xs, 25); p != 2 {
		t.Fatalf("p25 = %g, want 2", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty percentile = %g, want 0", p)
	}
	// Input must remain unsorted.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %g, want 4", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Fatalf("geomean(1,1,1) = %g, want 1", g)
	}
	if g := GeoMean([]float64{0, -3}); g != 0 {
		t.Fatalf("geomean of non-positive = %g, want 0", g)
	}
	// Skips non-positive entries.
	if g := GeoMean([]float64{0, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(0,4) = %g, want 4", g)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	// Property: GeoMean(k*xs) == k*GeoMean(xs) for positive k and xs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		xs := make([]float64, n)
		scaled := make([]float64, n)
		k := 0.5 + rng.Float64()*10
		for i := range xs {
			xs[i] = 0.01 + rng.Float64()*100
			scaled[i] = xs[i] * k
		}
		a, b := GeoMean(xs)*k, GeoMean(scaled)
		return math.Abs(a-b) <= 1e-9*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
