// Package stats provides the small statistics toolkit used throughout
// the simulator: counters, running means, linear and logarithmic
// histograms, and rate trackers. All types are deterministic and safe
// to copy only before first use; they are not synchronized — each
// simulated component owns its own instances.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
type Counter struct {
	n uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n++ }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset sets the counter back to zero.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns c/other as a float64, or 0 when other is zero.
func (c *Counter) Ratio(other *Counter) float64 {
	if other.n == 0 {
		return 0
	}
	return float64(c.n) / float64(other.n)
}

// Mean accumulates a running arithmetic mean and variance using
// Welford's algorithm, which is numerically stable for long runs.
type Mean struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe incorporates one sample.
func (m *Mean) Observe(x float64) {
	if m.n == 0 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// Count reports the number of samples observed.
func (m *Mean) Count() uint64 { return m.n }

// Value reports the running mean, or 0 with no samples.
func (m *Mean) Value() float64 { return m.mean }

// Variance reports the population variance of the samples.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// StdDev reports the population standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// Min reports the smallest observed sample, or 0 with no samples.
func (m *Mean) Min() float64 { return m.min }

// Max reports the largest observed sample, or 0 with no samples.
func (m *Mean) Max() float64 { return m.max }

// Reset discards all samples.
func (m *Mean) Reset() { *m = Mean{} }

// Histogram is a fixed-width linear histogram over [lo, hi). Samples
// outside the range land in dedicated underflow/overflow bins so no
// observation is ever silently dropped.
type Histogram struct {
	lo, hi    float64
	width     float64
	bins      []uint64
	underflow uint64
	overflow  uint64
	total     uint64
	sum       float64
}

// NewHistogram builds a histogram of n equal bins spanning [lo, hi).
// It panics if n <= 0 or hi <= lo, which indicate programmer error.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: histogram bin count %d must be positive", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g,%g) is empty", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), bins: make([]uint64, n)}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	h.total++
	h.sum += x
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.bins) { // guard against float rounding at the top edge
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// Count reports the total number of samples, including out-of-range ones.
func (h *Histogram) Count() uint64 { return h.total }

// Mean reports the arithmetic mean of all samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Bin reports the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// NumBins reports the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Underflow reports the number of samples below the range.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Overflow reports the number of samples at or above the range.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Quantile returns an estimate of quantile q in [0,1] assuming samples
// are uniform within each bin. Out-of-range mass is clamped to the
// range boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo
	}
	for i, b := range h.bins {
		if cum+float64(b) >= target && b > 0 {
			frac := (target - cum) / float64(b)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum += float64(b)
	}
	return h.hi
}

// Log2Histogram buckets non-negative samples by floor(log2(x)), with a
// dedicated zero bucket. It suits block-lifetime and reuse-distance
// distributions that span many orders of magnitude.
type Log2Histogram struct {
	zero  uint64
	bins  []uint64 // bins[i] counts samples in [2^i, 2^(i+1))
	total uint64
	sum   float64
}

// NewLog2Histogram builds a log2 histogram with buckets up to 2^maxExp.
// Samples at or above 2^maxExp saturate into the last bucket.
func NewLog2Histogram(maxExp int) *Log2Histogram {
	if maxExp <= 0 {
		panic(fmt.Sprintf("stats: log2 histogram maxExp %d must be positive", maxExp))
	}
	return &Log2Histogram{bins: make([]uint64, maxExp)}
}

// Observe records one non-negative sample; negative samples count as zero.
func (h *Log2Histogram) Observe(x float64) {
	h.total++
	if x > 0 {
		h.sum += x
	}
	if x < 1 {
		h.zero++
		return
	}
	i := int(math.Floor(math.Log2(x)))
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.bins[i]++
}

// ObserveInt records an integer sample.
func (h *Log2Histogram) ObserveInt(x uint64) { h.Observe(float64(x)) }

// Count reports the total samples.
func (h *Log2Histogram) Count() uint64 { return h.total }

// Zero reports the count of samples < 1.
func (h *Log2Histogram) Zero() uint64 { return h.zero }

// Bin reports the count of samples in [2^i, 2^(i+1)).
func (h *Log2Histogram) Bin(i int) uint64 { return h.bins[i] }

// NumBins reports the number of power-of-two buckets.
func (h *Log2Histogram) NumBins() int { return len(h.bins) }

// Mean reports the mean of the positive part of all samples.
func (h *Log2Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// CDF returns the fraction of samples strictly below 2^exp.
func (h *Log2Histogram) CDF(exp int) float64 {
	if h.total == 0 {
		return 0
	}
	c := h.zero
	for i := 0; i < exp && i < len(h.bins); i++ {
		c += h.bins[i]
	}
	return float64(c) / float64(h.total)
}

// String renders a compact sparkline-style summary for logs.
func (h *Log2Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d zero=%d [", h.total, h.zero)
	for i, v := range h.bins {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(']')
	return b.String()
}

// Series is an append-only sequence of (x, y) points used by the
// experiment harness to capture time-series such as partition sizes
// per epoch.
type Series struct {
	X []float64
	Y []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// MaxY reports the largest y value, or 0 for an empty series.
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, y := range s.Y {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// Percentile computes the p-th percentile (0..100) of a sample slice
// using linear interpolation. It copies the input, leaving it unsorted.
func Percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// GeoMean computes the geometric mean of positive values; zero or
// negative entries are skipped (returning 0 if none remain). Geometric
// means are the standard aggregation for normalized benchmark results.
func GeoMean(values []float64) float64 {
	sum := 0.0
	n := 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
