package runner

import (
	"encoding/json"
	"io"
)

// Failure is one manifest entry naming a lost cell.
type Failure struct {
	Machine  string `json:"machine"`
	App      string `json:"app"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Panicked bool   `json:"panicked,omitempty"`
	Error    string `json:"error"`
}

// Manifest summarizes a degraded sweep: how many cells ran, which
// failed and why. It is what -keep-going leaves behind so a failed
// subset can be diagnosed and re-run without repeating the healthy
// cells.
type Manifest struct {
	TotalCells int       `json:"total_cells"`
	Succeeded  int       `json:"succeeded"`
	Failed     []Failure `json:"failed"`
}

// BuildManifest collapses a run's outcomes into a manifest. Failures
// appear in cell (input) order, so identical inputs yield identical
// manifests regardless of scheduling.
func BuildManifest[T any](outcomes []Outcome[T]) Manifest {
	m := Manifest{TotalCells: len(outcomes), Failed: []Failure{}}
	for _, o := range outcomes {
		if o.Err == nil {
			m.Succeeded++
			continue
		}
		m.Failed = append(m.Failed, Failure{
			Machine:  o.Cell.Machine,
			App:      o.Cell.App,
			Seed:     o.Cell.Seed,
			Attempts: o.Err.Attempts,
			Panicked: o.Err.Panicked,
			Error:    o.Err.Err.Error(),
		})
	}
	return m
}

// WriteJSON emits the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
