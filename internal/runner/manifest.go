package runner

import (
	"encoding/json"
	"errors"
	"io"
)

// Failure is one manifest entry naming a lost cell.
type Failure struct {
	Machine  string `json:"machine"`
	App      string `json:"app"`
	Seed     uint64 `json:"seed"`
	Attempts int    `json:"attempts"`
	Panicked bool   `json:"panicked,omitempty"`
	Error    string `json:"error"`
	// Violations carries the structured invariant-audit findings when
	// the failure is a strict-audit error (see internal/invariant);
	// empty for ordinary failures.
	Violations []string `json:"violations,omitempty"`
}

// violationCarrier is the duck-typed hook invariant-audit errors
// implement; matching on the method keeps runner free of an
// internal/invariant import.
type violationCarrier interface{ InvariantViolations() []string }

// failureOf flattens one RunError into its manifest entry.
func failureOf(e *RunError) Failure {
	f := Failure{
		Machine:  e.Cell.Machine,
		App:      e.Cell.App,
		Seed:     e.Cell.Seed,
		Attempts: e.Attempts,
		Panicked: e.Panicked,
		Error:    e.Err.Error(),
	}
	var vc violationCarrier
	if errors.As(e.Err, &vc) {
		f.Violations = vc.InvariantViolations()
	}
	return f
}

// Manifest summarizes a degraded sweep: how many cells ran, which
// failed and why. It is what -keep-going leaves behind so a failed
// subset can be diagnosed and re-run without repeating the healthy
// cells.
type Manifest struct {
	TotalCells int       `json:"total_cells"`
	Succeeded  int       `json:"succeeded"`
	Failed     []Failure `json:"failed"`
}

// BuildManifest collapses a run's outcomes into a manifest. Failures
// appear in cell (input) order, so identical inputs yield identical
// manifests regardless of scheduling.
func BuildManifest[T any](outcomes []Outcome[T]) Manifest {
	m := Manifest{TotalCells: len(outcomes), Failed: []Failure{}}
	for _, o := range outcomes {
		if o.Err == nil {
			m.Succeeded++
			continue
		}
		m.Failed = append(m.Failed, failureOf(o.Err))
	}
	return m
}

// WriteJSON emits the manifest as indented JSON.
func (m Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
