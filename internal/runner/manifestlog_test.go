package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// auditErr simulates internal/invariant's structured error through the
// duck-typed hook, without importing it.
type auditErr struct{ vs []string }

func (e *auditErr) Error() string                 { return "invariant audit: " + strings.Join(e.vs, "; ") }
func (e *auditErr) InvariantViolations() []string { return e.vs }

func TestOnFailureFiresIncrementally(t *testing.T) {
	cells := []Cell{
		{Machine: "m", App: "a", Seed: 1},
		{Machine: "m", App: "a", Seed: 2},
		{Machine: "m", App: "a", Seed: 3},
	}
	var mu sync.Mutex
	var seen []uint64
	cfg := Config{Workers: 1, KeepGoing: true, OnFailure: func(e *RunError) {
		mu.Lock()
		seen = append(seen, e.Cell.Seed)
		mu.Unlock()
	}}
	outcomes, err := Run(context.Background(), cfg, cells, func(ctx context.Context, c Cell) (int, error) {
		if c.Seed%2 == 1 {
			return 0, fmt.Errorf("boom %d", c.Seed)
		}
		return int(c.Seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("OnFailure saw %v, want [1 3]", seen)
	}
	if outcomes[1].Err != nil {
		t.Fatal("healthy cell failed")
	}
}

func TestManifestLoggerIncrementalThenFinal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failures.json")
	lg, err := NewManifestLogger(path)
	if err != nil {
		t.Fatal(err)
	}

	cells := []Cell{
		{Machine: "dp-sr", App: "browser", Seed: 1},
		{Machine: "dp-sr", App: "browser", Seed: 2},
	}
	cfg := Config{Workers: 1, KeepGoing: true, OnFailure: lg.Record}
	outcomes, err := Run(context.Background(), cfg, cells, func(ctx context.Context, c Cell) (int, error) {
		if c.Seed == 2 {
			return 0, &auditErr{vs: []string{"l2.conservation.user: hits 3 + misses 1 != accesses 5"}}
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Mid-sweep view: one JSON line per failure, already on disk.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	var lines []Failure
	for sc.Scan() {
		var f Failure
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, f)
	}
	if len(lines) != 1 || lines[0].Seed != 2 {
		t.Fatalf("incremental log = %+v", lines)
	}
	if len(lines[0].Violations) != 1 || !strings.Contains(lines[0].Violations[0], "l2.conservation.user") {
		t.Fatalf("violations not extracted into incremental log: %+v", lines[0])
	}

	// Finalize atomically replaces the line log with the manifest.
	if err := lg.Finalize(BuildManifest(outcomes)); err != nil {
		t.Fatal(err)
	}
	final, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(final, &m); err != nil {
		t.Fatalf("final manifest is not a Manifest: %v", err)
	}
	if m.TotalCells != 2 || m.Succeeded != 1 || len(m.Failed) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	if len(m.Failed[0].Violations) != 1 {
		t.Fatalf("violations lost in final manifest: %+v", m.Failed[0])
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
}

func TestBuildManifestExtractsViolations(t *testing.T) {
	out := []Outcome[int]{{
		Cell: Cell{Machine: "m", App: "a", Seed: 5},
		Err: &RunError{
			Cell:     Cell{Machine: "m", App: "a", Seed: 5},
			Attempts: 1,
			Err:      &auditErr{vs: []string{"v1", "v2"}},
		},
	}}
	m := BuildManifest(out)
	if len(m.Failed) != 1 || len(m.Failed[0].Violations) != 2 {
		t.Fatalf("manifest = %+v", m)
	}
}
