// Package runner is the fault-containing parallel executor behind
// bulk sweeps: it runs (machine, app, seed) cells on a bounded worker
// pool with per-cell deadlines, panic isolation, bounded retry for
// transient failures, and graceful degradation — a failed cell becomes
// a structured RunError in a failure manifest while its siblings
// complete, so a multi-hour sweep survives one bad cell.
//
// Determinism: outcomes are collected into a slice indexed by the
// input cell order, so a caller that emits results in that order
// produces byte-identical output regardless of worker count or
// scheduling.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Cell identifies one unit of sweep work.
type Cell struct {
	Machine string
	App     string
	Seed    uint64
}

// String renders the cell identity for error messages.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/seed=%d", c.Machine, c.App, c.Seed)
}

// RunError records one cell's failure with its identity, so a sweep's
// failure manifest can name exactly what was lost.
type RunError struct {
	Cell Cell
	// Attempts is how many times the cell was tried before giving up.
	Attempts int
	// Panicked reports whether the final attempt ended in a panic;
	// Stack then holds the recovered goroutine stack.
	Panicked bool
	Stack    string
	// Err is the underlying failure (the recovered panic value wrapped
	// as an error, the cell's returned error, or a context error).
	Err error
}

// Error implements error.
func (e *RunError) Error() string {
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	return fmt.Sprintf("cell %s %s after %d attempt(s): %v", e.Cell, kind, e.Attempts, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (t *transientError) Error() string { return "transient: " + t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so the pool retries it (up to Config.Retries).
// Errors not wrapped this way are treated as permanent.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is marked retryable.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// Gate admits cells to execution slots shared beyond one pool. A pool
// given a Gate acquires one slot per cell (not per attempt) before the
// cell runs and releases it when the cell finishes, so several
// concurrently running pools — the sweep daemon runs one per job over
// one machine-wide slot set — are bounded and scheduled together.
// Acquire must honor ctx: when the context is cancelled while waiting
// for a slot, it returns the context's error and the cell is recorded
// as a cancellation casualty, never silently skipped.
type Gate interface {
	Acquire(ctx context.Context) error
	Release()
}

// Config bounds and shapes a pool run.
type Config struct {
	// Workers is the pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Timeout is the per-cell (per-attempt) deadline; 0 disables it. A
	// cell function that ignores its context is abandoned when the
	// deadline passes — the worker moves on and the attempt's result is
	// discarded.
	Timeout time.Duration
	// Retries is how many additional attempts a transient failure gets.
	Retries int
	// Backoff is the sleep before the first retry, doubling per
	// subsequent retry; <= 0 uses 50ms.
	Backoff time.Duration
	// KeepGoing records failures and lets sibling cells complete;
	// otherwise the first failure cancels the rest of the run.
	KeepGoing bool
	// OnFailure, when non-nil, is called from the worker goroutine the
	// moment a cell's attempts are exhausted — before sibling cells
	// finish — so failures can be persisted incrementally instead of
	// only in the end-of-sweep manifest. It may be called concurrently
	// from multiple workers and must be safe for that. Cells cancelled
	// before dispatch do not fire it.
	OnFailure func(*RunError)
	// Gate, when non-nil, is acquired once per cell before it runs and
	// released when it finishes. It is how multiple pools share one
	// bounded slot set (see Gate); a nil Gate admits every dispatched
	// cell immediately.
	Gate Gate
}

// Func computes one cell. It must respect ctx for prompt cancellation;
// panics are recovered and contained by the pool.
type Func[T any] func(ctx context.Context, c Cell) (T, error)

// Outcome is one cell's result: either Value, or a non-nil Err.
type Outcome[T any] struct {
	Cell  Cell
	Value T
	Err   *RunError
}

// Run executes cells on a bounded worker pool and returns one outcome
// per cell, in input order.
//
//   - KeepGoing: every cell runs; failures land in their outcomes and
//     the returned error is nil (inspect outcomes / BuildManifest).
//   - Not KeepGoing: the first failure cancels the pool and is
//     returned; cells that never ran carry a context.Canceled outcome.
//   - If ctx is cancelled, Run drains its workers and returns ctx.Err().
func Run[T any](ctx context.Context, cfg Config, cells []Cell, fn Func[T]) ([]Outcome[T], error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	outcomes := make([]Outcome[T], len(cells))
	for i, c := range cells {
		outcomes[i] = Outcome[T]{Cell: c}
	}
	if len(cells) == 0 {
		return outcomes, ctx.Err()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	idxCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				outcomes[i] = runGated(runCtx, cfg, cells[i], fn)
				if outcomes[i].Err != nil {
					if cfg.OnFailure != nil {
						cfg.OnFailure(outcomes[i].Err)
					}
					if !cfg.KeepGoing {
						cancel()
					}
				}
			}
		}()
	}
	next := len(cells)
feed:
	for i := range cells {
		select {
		case idxCh <- i:
		case <-runCtx.Done():
			next = i
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	// Cells never dispatched are cancellation casualties, not successes.
	for i := next; i < len(cells); i++ {
		outcomes[i].Err = &RunError{Cell: cells[i], Err: context.Canceled}
	}

	if err := ctx.Err(); err != nil {
		return outcomes, err
	}
	if !cfg.KeepGoing {
		// Deterministically report the lowest-index failure that is not
		// itself a cancellation casualty.
		for i := range outcomes {
			if e := outcomes[i].Err; e != nil && !errors.Is(e.Err, context.Canceled) {
				return outcomes, e
			}
		}
		// All failures (if any) were cancellation casualties of a
		// failure we somehow can't see; fall through to success.
		for i := range outcomes {
			if outcomes[i].Err != nil {
				return outcomes, outcomes[i].Err
			}
		}
	}
	return outcomes, nil
}

// runGated wraps runCell in the (optional) shared admission gate: one
// slot per cell, held across every attempt, released whatever the
// outcome. A cancellation while waiting for a slot becomes an ordinary
// cancellation outcome, so callers see the cell as lost to the
// shutdown rather than mysteriously absent.
func runGated[T any](ctx context.Context, cfg Config, c Cell, fn Func[T]) Outcome[T] {
	if cfg.Gate != nil {
		if err := cfg.Gate.Acquire(ctx); err != nil {
			return Outcome[T]{Cell: c, Err: &RunError{Cell: c, Err: err}}
		}
		defer cfg.Gate.Release()
	}
	return runCell(ctx, cfg, c, fn)
}

// runCell drives one cell through its attempts.
func runCell[T any](ctx context.Context, cfg Config, c Cell, fn Func[T]) Outcome[T] {
	out := Outcome[T]{Cell: c}
	backoff := cfg.Backoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			out.Err = &RunError{Cell: c, Attempts: attempt - 1, Err: err}
			return out
		}
		v, err, panicked, stack := runAttempt(ctx, cfg.Timeout, c, fn)
		if err == nil {
			out.Value = v
			return out
		}
		// Panics, deadline blows and permanent errors are final; only
		// explicitly transient errors earn a retry.
		if panicked || !IsTransient(err) || attempt > cfg.Retries || ctx.Err() != nil {
			out.Err = &RunError{Cell: c, Attempts: attempt, Panicked: panicked, Stack: stack, Err: err}
			return out
		}
		select {
		case <-time.After(backoff << (attempt - 1)):
		case <-ctx.Done():
			out.Err = &RunError{Cell: c, Attempts: attempt, Err: ctx.Err()}
			return out
		}
	}
}

// runAttempt executes fn once under the per-cell deadline, containing
// panics. The attempt runs in its own goroutine so a deadline or
// cancellation can abandon a function that ignores its context; the
// abandoned goroutine finishes whenever fn returns and its result is
// discarded (the result channel is buffered, so it never blocks).
func runAttempt[T any](ctx context.Context, timeout time.Duration, c Cell, fn Func[T]) (v T, err error, panicked bool, stack string) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type attemptResult struct {
		v        T
		err      error
		panicked bool
		stack    string
	}
	ch := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- attemptResult{
					err:      fmt.Errorf("panic: %v", r),
					panicked: true,
					stack:    string(debug.Stack()),
				}
			}
		}()
		v, err := fn(actx, c)
		ch <- attemptResult{v: v, err: err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err, r.panicked, r.stack
	case <-actx.Done():
		return v, actx.Err(), false, ""
	}
}
