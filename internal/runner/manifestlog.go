package runner

import (
	"encoding/json"
	"os"
	"path/filepath"

	"mobilecache/internal/checkpoint"
)

// ManifestLogger persists failures the moment they happen instead of
// only at sweep end: hook its Record method into Config.OnFailure and
// each failure lands on disk as one fsynced JSON line before sibling
// cells finish. A sweep killed mid-flight therefore leaves a readable
// failure log; a sweep that reaches the end calls Finalize, which
// atomically replaces the line log with the canonical indented
// Manifest built from the full outcome set.
type ManifestLogger struct {
	af *checkpoint.AppendFile
}

// NewManifestLogger truncates path and opens it for incremental
// failure lines. Every Record is fsynced (failures are rare and each
// one must survive the very crash it may be the first symptom of).
func NewManifestLogger(path string) (*ManifestLogger, error) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	af, err := checkpoint.NewAppendFile(path, 1)
	if err != nil {
		return nil, err
	}
	return &ManifestLogger{af: af}, nil
}

// Record appends one failure as a JSON line. Safe for concurrent use
// (it is designed to be Config.OnFailure); errors are sticky in the
// underlying append file and surface from Finalize.
func (l *ManifestLogger) Record(e *RunError) {
	line, err := json.Marshal(failureOf(e))
	if err != nil {
		return // a failure we cannot serialize still shows up in Finalize
	}
	_ = l.af.Append(append(line, '\n'))
}

// Finalize closes the incremental log and atomically replaces it with
// the canonical manifest for the whole run (write-temp-then-rename, so
// the path never holds a half-written manifest).
func (l *ManifestLogger) Finalize(m Manifest) error {
	path := l.af.Name()
	closeErr := l.af.Close()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Make the rename durable.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return closeErr
}

// Close abandons the logger without finalizing (the incremental line
// log stays on disk as-is).
func (l *ManifestLogger) Close() error { return l.af.Close() }
