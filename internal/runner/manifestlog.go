package runner

import (
	"encoding/json"
	"io"
	"os"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/faultfs"
)

// ManifestLogger persists failures the moment they happen instead of
// only at sweep end: hook its Record method into Config.OnFailure and
// each failure lands on disk as one fsynced JSON line before sibling
// cells finish. A sweep killed mid-flight therefore leaves a readable
// failure log; a sweep that reaches the end calls Finalize, which
// atomically replaces the line log with the canonical indented
// Manifest built from the full outcome set.
type ManifestLogger struct {
	fsys faultfs.FS
	af   *checkpoint.AppendFile
}

// NewManifestLogger truncates path and opens it for incremental
// failure lines. Every Record is fsynced (failures are rare and each
// one must survive the very crash it may be the first symptom of).
func NewManifestLogger(path string) (*ManifestLogger, error) {
	return NewManifestLoggerFS(faultfs.OS, path)
}

// NewManifestLoggerFS is NewManifestLogger over an injectable
// filesystem.
func NewManifestLoggerFS(fsys faultfs.FS, path string) (*ManifestLogger, error) {
	if err := fsys.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	af, err := checkpoint.NewAppendFileFS(fsys, path, 1)
	if err != nil {
		return nil, err
	}
	return &ManifestLogger{fsys: fsys, af: af}, nil
}

// Record appends one failure as a JSON line. Safe for concurrent use
// (it is designed to be Config.OnFailure); errors are sticky in the
// underlying append file and surface from Finalize.
func (l *ManifestLogger) Record(e *RunError) {
	line, err := json.Marshal(failureOf(e))
	if err != nil {
		return // a failure we cannot serialize still shows up in Finalize
	}
	_ = l.af.Append(append(line, '\n'))
}

// Finalize closes the incremental log and atomically replaces it with
// the canonical manifest for the whole run. The swap goes through
// faultfs.WriteFileAtomic, so the path never holds a half-written
// manifest and the rename is fsynced into the parent directory; a
// dirsync failure surfaces here rather than being dropped.
func (l *ManifestLogger) Finalize(m Manifest) error {
	path := l.af.Name()
	closeErr := l.af.Close()
	if err := faultfs.WriteFileAtomic(l.fsys, path, func(w io.Writer) error {
		return m.WriteJSON(w)
	}); err != nil {
		return err
	}
	return closeErr
}

// Close abandons the logger without finalizing (the incremental line
// log stays on disk as-is).
func (l *ManifestLogger) Close() error { return l.af.Close() }
