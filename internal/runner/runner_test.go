package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func cellsN(n int) []Cell {
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{Machine: fmt.Sprintf("m%d", i%3), App: fmt.Sprintf("a%d", i%4), Seed: uint64(i)}
	}
	return cells
}

func TestRunOrderedResults(t *testing.T) {
	cells := cellsN(20)
	outcomes, err := Run(context.Background(), Config{Workers: 7}, cells,
		func(_ context.Context, c Cell) (uint64, error) { return c.Seed * 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(cells) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(cells))
	}
	for i, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("cell %d failed: %v", i, o.Err)
		}
		if o.Cell != cells[i] || o.Value != uint64(i)*10 {
			t.Fatalf("outcome %d out of order: %+v", i, o)
		}
	}
}

// Failure containment: a panicking cell yields a RunError with its
// identity and stack, and does not abort sibling cells.
func TestPanicContainment(t *testing.T) {
	cases := []struct {
		name     string
		fail     func(c Cell) // panics or not, per cell
		panicked bool
	}{
		{"panic", func(c Cell) {
			if c.Seed == 5 {
				panic("chaos monkey")
			}
		}, true},
		{"error", func(c Cell) {}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cells := cellsN(12)
			outcomes, err := Run(context.Background(), Config{Workers: 4, KeepGoing: true}, cells,
				func(_ context.Context, c Cell) (int, error) {
					tc.fail(c)
					if !tc.panicked && c.Seed == 5 {
						return 0, errors.New("boom")
					}
					return 1, nil
				})
			if err != nil {
				t.Fatalf("keep-going run returned error: %v", err)
			}
			for i, o := range outcomes {
				if i == 5 {
					if o.Err == nil {
						t.Fatal("failing cell reported success")
					}
					if o.Err.Cell != cells[5] {
						t.Fatalf("RunError cell = %+v, want %+v", o.Err.Cell, cells[5])
					}
					if o.Err.Panicked != tc.panicked {
						t.Fatalf("Panicked = %v, want %v", o.Err.Panicked, tc.panicked)
					}
					if tc.panicked && !strings.Contains(o.Err.Stack, "runner") {
						t.Fatalf("panic stack not captured: %q", o.Err.Stack)
					}
					if tc.panicked && !strings.Contains(o.Err.Error(), "chaos monkey") {
						t.Fatalf("panic value lost: %v", o.Err)
					}
					continue
				}
				if o.Err != nil {
					t.Fatalf("sibling cell %d aborted: %v", i, o.Err)
				}
			}
		})
	}
}

func TestFirstFailureCancelsWithoutKeepGoing(t *testing.T) {
	cells := cellsN(40)
	var ran atomic.Int64
	outcomes, err := Run(context.Background(), Config{Workers: 2}, cells,
		func(ctx context.Context, c Cell) (int, error) {
			ran.Add(1)
			if c.Seed == 1 {
				return 0, errors.New("hard failure")
			}
			// Give the canceller a chance to win the race.
			select {
			case <-ctx.Done():
			case <-time.After(2 * time.Millisecond):
			}
			return 1, nil
		})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Cell.Seed != 1 {
		t.Fatalf("reported failure is %s, want seed 1", re.Cell)
	}
	// At least one trailing cell must have been skipped.
	skipped := 0
	for _, o := range outcomes {
		if o.Err != nil && errors.Is(o.Err.Err, context.Canceled) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatalf("no cells cancelled after failure (ran %d of %d)", ran.Load(), len(cells))
	}
}

// Context cancellation stops the pool promptly with no goroutine leak.
func TestCancellationDrainsPool(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := Run(ctx, Config{Workers: 4}, cellsN(64),
			func(ctx context.Context, c Cell) (int, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				<-ctx.Done() // fully context-aware cell
				return 0, ctx.Err()
			})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not stop after cancellation")
	}
	// The workers and attempt goroutines must all drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after drain", before, g)
	}
}

func TestPerCellTimeout(t *testing.T) {
	cells := cellsN(3)
	outcomes, err := Run(context.Background(), Config{Workers: 3, Timeout: 20 * time.Millisecond, KeepGoing: true}, cells,
		func(ctx context.Context, c Cell) (int, error) {
			if c.Seed == 2 {
				select {
				case <-ctx.Done():
					return 0, ctx.Err()
				case <-time.After(10 * time.Second):
				}
			}
			return 1, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[2].Err == nil || !errors.Is(outcomes[2].Err.Err, context.DeadlineExceeded) {
		t.Fatalf("slow cell outcome = %+v, want deadline exceeded", outcomes[2].Err)
	}
	if outcomes[0].Err != nil || outcomes[1].Err != nil {
		t.Fatal("fast siblings affected by slow cell")
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	var calls atomic.Int64
	outcomes, err := Run(context.Background(), Config{Workers: 1, Retries: 3, Backoff: time.Millisecond}, cellsN(1),
		func(_ context.Context, c Cell) (string, error) {
			if calls.Add(1) < 3 {
				return "", Transient(errors.New("flaky"))
			}
			return "ok", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if outcomes[0].Value != "ok" || calls.Load() != 3 {
		t.Fatalf("value %q after %d calls, want ok after 3", outcomes[0].Value, calls.Load())
	}
}

func TestRetryExhaustionAndPermanentErrors(t *testing.T) {
	var transientCalls, permanentCalls atomic.Int64
	cells := []Cell{{Machine: "transient"}, {Machine: "permanent"}}
	outcomes, err := Run(context.Background(), Config{Workers: 2, Retries: 2, Backoff: time.Millisecond, KeepGoing: true}, cells,
		func(_ context.Context, c Cell) (int, error) {
			if c.Machine == "transient" {
				transientCalls.Add(1)
				return 0, Transient(errors.New("always flaky"))
			}
			permanentCalls.Add(1)
			return 0, errors.New("hard")
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := transientCalls.Load(); got != 3 {
		t.Fatalf("transient cell tried %d times, want 3 (1 + 2 retries)", got)
	}
	if got := permanentCalls.Load(); got != 1 {
		t.Fatalf("permanent error retried: %d calls", got)
	}
	if outcomes[0].Err == nil || outcomes[0].Err.Attempts != 3 {
		t.Fatalf("transient outcome = %+v, want 3 attempts recorded", outcomes[0].Err)
	}
	if !IsTransient(outcomes[0].Err.Err) || IsTransient(outcomes[1].Err.Err) {
		t.Fatal("transient marking lost in outcomes")
	}
}

// Determinism: identical cells and seeds produce identical outcomes
// (and manifests) regardless of worker count — ordered collection makes
// parallelism invisible.
func TestDeterministicOutcomesAcrossWorkerCounts(t *testing.T) {
	fn := func(_ context.Context, c Cell) (string, error) {
		if c.Seed%4 == 3 {
			return "", fmt.Errorf("injected failure for %s", c)
		}
		return fmt.Sprintf("v-%s-%d", c.Machine, c.Seed), nil
	}
	type flat struct {
		Cell  Cell
		Value string
		Err   string
	}
	render := func(workers int) ([]flat, string) {
		outcomes, _ := Run(context.Background(), Config{Workers: workers, KeepGoing: true}, cellsN(24), fn)
		var fs []flat
		for _, o := range outcomes {
			f := flat{Cell: o.Cell, Value: o.Value}
			if o.Err != nil {
				f.Err = o.Err.Error()
			}
			fs = append(fs, f)
		}
		var buf bytes.Buffer
		if err := BuildManifest(outcomes).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return fs, buf.String()
	}
	f1, m1 := render(1)
	f8, m8 := render(8)
	if !reflect.DeepEqual(f1, f8) {
		t.Fatalf("outcomes differ across worker counts:\n1: %+v\n8: %+v", f1, f8)
	}
	if m1 != m8 {
		t.Fatalf("manifests differ:\n%s\n%s", m1, m8)
	}
}

func TestManifestContents(t *testing.T) {
	outcomes := []Outcome[int]{
		{Cell: Cell{Machine: "sp-mr", App: "browser", Seed: 1}, Value: 1},
		{Cell: Cell{Machine: "dp-sr", App: "music", Seed: 2},
			Err: &RunError{Cell: Cell{Machine: "dp-sr", App: "music", Seed: 2}, Attempts: 2, Panicked: true, Err: errors.New("panic: chaos")}},
	}
	m := BuildManifest(outcomes)
	if m.TotalCells != 2 || m.Succeeded != 1 || len(m.Failed) != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	f := m.Failed[0]
	if f.Machine != "dp-sr" || f.App != "music" || f.Seed != 2 || !f.Panicked || f.Attempts != 2 {
		t.Fatalf("failure entry = %+v", f)
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Fatalf("manifest JSON round-trip changed it:\n%+v\n%+v", m, back)
	}
}

func TestEmptyCellsAndWorkerClamp(t *testing.T) {
	outcomes, err := Run(context.Background(), Config{Workers: 99}, nil,
		func(_ context.Context, c Cell) (int, error) { return 0, nil })
	if err != nil || len(outcomes) != 0 {
		t.Fatalf("empty run: %v, %d outcomes", err, len(outcomes))
	}
}

// chanGate is a test Gate over a buffered channel: capacity = slots.
type chanGate struct {
	slots chan struct{}
	held  atomic.Int64
	max   atomic.Int64
}

func newChanGate(n int) *chanGate { return &chanGate{slots: make(chan struct{}, n)} }

func (g *chanGate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		h := g.held.Add(1)
		for {
			m := g.max.Load()
			if h <= m || g.max.CompareAndSwap(m, h) {
				break
			}
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *chanGate) Release() {
	g.held.Add(-1)
	<-g.slots
}

// A gate bounds concurrency below the pool's worker count, and every
// slot is released afterwards (panicking cells included).
func TestGateBoundsConcurrency(t *testing.T) {
	gate := newChanGate(2)
	cells := cellsN(24)
	outcomes, err := Run(context.Background(), Config{Workers: 8, KeepGoing: true, Gate: gate}, cells,
		func(_ context.Context, c Cell) (int, error) {
			time.Sleep(time.Millisecond)
			if c.Seed == 7 {
				panic("gated chaos")
			}
			return int(c.Seed), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := gate.max.Load(); got > 2 {
		t.Fatalf("gate admitted %d concurrent cells, want <= 2", got)
	}
	if got := gate.held.Load(); got != 0 {
		t.Fatalf("%d slots still held after the run (leak)", got)
	}
	failed := 0
	for _, o := range outcomes {
		if o.Err != nil {
			failed++
		}
	}
	if failed != 1 {
		t.Fatalf("%d failures, want exactly the panicking cell", failed)
	}
}

// Cancellation while blocked in Acquire unwinds promptly: the waiting
// cells come back as cancellation casualties, not a hang.
func TestGateAcquireHonorsCancellation(t *testing.T) {
	gate := newChanGate(1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	done := make(chan struct{})
	var outcomes []Outcome[int]
	go func() {
		defer close(done)
		outcomes, _ = Run(ctx, Config{Workers: 4, KeepGoing: true, Gate: gate}, cellsN(8),
			func(ctx context.Context, c Cell) (int, error) {
				started.Add(1)
				<-release
				return 0, nil
			})
	}()
	// Wait for the single slot to be occupied, then cancel while the
	// other workers block in Acquire.
	for started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("pool did not unwind from a cancelled gate acquire")
	}
	cancelled := 0
	for _, o := range outcomes {
		if o.Err != nil && errors.Is(o.Err.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no cell recorded as a cancellation casualty")
	}
	if got := gate.held.Load(); got != 0 {
		t.Fatalf("%d slots still held after cancellation", got)
	}
}
