// Package shardlru is a generic lock-striped sharded LRU cache: keys
// hash to one of P power-of-two shards, and each shard owns its own
// mutex, LRU list, slice of the cost budget and counters. Concurrent
// callers touching different shards never contend, so a warm cache
// scales with cores instead of serializing on one global lock — the
// property the engine run memo and the trace arena need at high -jobs
// and under the sweep daemon, where every worker's lookups used to
// funnel through a single mutex.
//
// The cache is cost-based, not entry-based: every committed entry
// carries a caller-chosen cost (1 for entry-count budgets, bytes for
// byte budgets) and each shard evicts least-recently-used entries once
// its slice of the total budget is exceeded. A Demote hook lets a
// caller shrink an entry in place (the trace arena drops a trace's hot
// decoded form and keeps the packed form) before the shard falls back
// to whole-entry eviction.
//
// Two-phase insertion (GetOrReserve then Commit or Delete) gives
// callers singleflight semantics: a reservation is visible to later
// lookups — they join it instead of duplicating work — but is not
// charged against the budget and cannot be evicted or demoted until
// committed. Single-phase callers use Add.
//
// Stats aggregates the per-shard counters by visiting shards one at a
// time; there is no global lock anywhere in the package, so a stats
// scrape never stalls the hot path behind a whole-cache mutex.
package shardlru

import (
	"runtime"
	"sync"
)

// MaxShards bounds the stripe count; past a few hundred stripes the
// marginal contention win is zero and the per-shard budget slices get
// uselessly thin.
const MaxShards = 256

// Config shapes a Cache.
type Config[K comparable, V any] struct {
	// Shards is the stripe count, rounded up to a power of two and
	// clamped to [1, MaxShards]; <= 0 selects a default derived from
	// GOMAXPROCS. When Budget > 0 the count is further clamped so every
	// shard's budget slice is at least 1 cost unit.
	Shards int
	// Budget is the total cost budget across all shards, in whatever
	// unit the caller charges costs in (entries, bytes); <= 0 is
	// unlimited. Each shard enforces Budget/Shards (remainder spread
	// one unit at a time), so the shard budgets sum to Budget exactly.
	Budget int64
	// Hash maps a key to a well-distributed 64-bit value; its low bits
	// select the shard. Required.
	Hash func(K) uint64
	// Demote, when set, is offered an over-budget shard's entries
	// (least recently used first) before whole-entry eviction. It runs
	// under the shard lock and returns the cost it reclaimed by
	// shrinking the value in place (0 = not demotable). Reserved
	// entries are never offered.
	Demote func(K, V) int64
}

// Stats is an aggregated snapshot of the per-shard counters.
type Stats struct {
	// Hits and Misses count lookups (Get and GetOrReserve); a
	// reservation counts as the miss that created it.
	Hits   uint64
	Misses uint64
	// Evictions counts whole entries dropped over budget; Demotions
	// counts successful Demote calls (cost reclaimed in place).
	Evictions uint64
	Demotions uint64
	// Duplicates counts Adds that found the key already present (two
	// callers racing the same computation) and kept the incumbent.
	Duplicates uint64
	// CostInUse is the committed cost currently charged; Entries the
	// resident entry count, reservations included.
	CostInUse int64
	Entries   int
	// Shards is the stripe count; MaxShardEntries/MinShardEntries are
	// the most and least populated stripes' entry counts — a skew gauge
	// for the key-hash distribution.
	Shards          int
	MaxShardEntries int
	MinShardEntries int
}

type node[K comparable, V any] struct {
	key        K
	val        V
	cost       int64
	prev, next *node[K, V]
	inList     bool
}

type shard[K comparable, V any] struct {
	mu      sync.Mutex
	budget  int64
	inUse   int64
	entries map[K]*node[K, V]
	head    *node[K, V] // most recently used
	tail    *node[K, V] // least recently used

	hits, misses, evictions, demotions, duplicates uint64

	// pad spaces shards apart so neighbouring stripes' mutexes do not
	// share a cache line (false sharing would re-serialize them).
	_ [40]byte
}

// Cache is a lock-striped sharded LRU. The zero value is not usable;
// call New.
type Cache[K comparable, V any] struct {
	mask   uint64
	hash   func(K) uint64
	demote func(K, V) int64
	shards []shard[K, V]
}

// defaultShards picks a stripe count for Config.Shards <= 0: the next
// power of two at or above GOMAXPROCS, so every P has a stripe to
// itself under a uniform key mix.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	p := 1
	for p < n && p < MaxShards {
		p <<= 1
	}
	return p
}

// New builds a cache from cfg. It panics if cfg.Hash is nil — a
// misconfigured cache would silently serialize every key onto shard 0.
func New[K comparable, V any](cfg Config[K, V]) *Cache[K, V] {
	if cfg.Hash == nil {
		panic("shardlru: Config.Hash is required")
	}
	n := cfg.Shards
	if n <= 0 {
		n = defaultShards()
	}
	// Round up to a power of two so the shard index is a mask, then
	// clamp: [1, MaxShards], and no more stripes than budget units —
	// a shard with a zero budget slice could retain nothing.
	p := 1
	for p < n && p < MaxShards {
		p <<= 1
	}
	if cfg.Budget > 0 {
		for int64(p) > cfg.Budget && p > 1 {
			p >>= 1
		}
	}
	c := &Cache[K, V]{
		mask:   uint64(p - 1),
		hash:   cfg.Hash,
		demote: cfg.Demote,
		shards: make([]shard[K, V], p),
	}
	if cfg.Budget > 0 {
		base, rem := cfg.Budget/int64(p), cfg.Budget%int64(p)
		for i := range c.shards {
			c.shards[i].budget = base
			if int64(i) < rem {
				c.shards[i].budget++
			}
		}
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[K]*node[K, V])
	}
	return c
}

// Shards reports the stripe count.
func (c *Cache[K, V]) Shards() int { return len(c.shards) }

func (c *Cache[K, V]) shardFor(key K) *shard[K, V] {
	return &c.shards[c.hash(key)&c.mask]
}

// Get returns the value for key, counting a hit or miss and refreshing
// the entry's recency. Reserved (uncommitted) entries are returned
// like any other — the caller's value type carries whatever
// synchronization a joiner needs (the trace arena's ready channel).
func (c *Cache[K, V]) Get(key K) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		s.misses++
		var zero V
		return zero, false
	}
	s.hits++
	s.moveToFront(n)
	return n.val, true
}

// Add inserts a committed entry with the given cost, evicting over
// budget. If the key is already present the incumbent wins: the call
// counts a duplicate, refreshes the incumbent's recency and reports
// false — two callers racing the same deterministic computation must
// collapse to one entry, and the loser's count is what reconciles
// lookup arithmetic (misses = adds + duplicates + failures).
func (c *Cache[K, V]) Add(key K, v V, cost int64) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.entries[key]; ok {
		s.duplicates++
		s.moveToFront(n)
		return false
	}
	n := &node[K, V]{key: key, val: v, cost: cost}
	s.entries[key] = n
	s.pushFront(n)
	s.inUse += cost
	s.evictOverBudget(c, n)
	return true
}

// GetOrReserve returns the existing entry (a hit, recency refreshed)
// or inserts v as an uncharged reservation (a miss) and reports
// reserved = true. A reservation is visible to later lookups but sits
// outside the LRU list: it cannot be evicted or demoted until Commit,
// and must be resolved with Commit (success) or Delete (failure).
func (c *Cache[K, V]) GetOrReserve(key K, v V) (V, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.entries[key]; ok {
		s.hits++
		s.moveToFront(n)
		return n.val, false
	}
	s.misses++
	s.entries[key] = &node[K, V]{key: key, val: v}
	return v, true
}

// Commit charges a reservation with its final cost and links it into
// the LRU list, evicting the shard over budget. The committed entry
// itself is exempt from eviction (its caller is about to use it) but
// not from demotion: if it alone busts the shard budget, Demote is
// offered its value last. Committing an absent or already-committed
// key is a no-op (false) — the reservation may have been Deleted.
func (c *Cache[K, V]) Commit(key K, cost int64) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok || n.inList {
		return false
	}
	n.cost = cost
	s.pushFront(n)
	s.inUse += cost
	s.evictOverBudget(c, n)
	return true
}

// Delete removes the entry (committed or reserved), refunding its
// charged cost. It reports whether the key was present.
func (c *Cache[K, V]) Delete(key K) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		return false
	}
	if n.inList {
		s.unlink(n)
		s.inUse -= n.cost
	}
	delete(s.entries, key)
	return true
}

// WithShardLock runs fn while holding key's shard lock. Values whose
// interior a Demote hook mutates (the trace arena's hot decoded slice)
// are protected by that shard's lock; this is how a caller reads such
// state coherently after the entry may have been demoted, evicted or
// replaced.
func (c *Cache[K, V]) WithShardLock(key K, fn func()) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// Len reports the resident entry count, reservations included.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-shard counters, locking one shard at a
// time. The snapshot is internally consistent per shard; across shards
// it is a moving-window aggregate, which is exactly as strong a claim
// as a global-lock cache could make about operations that completed
// while the scrape ran.
func (c *Cache[K, V]) Stats() Stats {
	st := Stats{Shards: len(c.shards)}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Demotions += s.demotions
		st.Duplicates += s.duplicates
		st.CostInUse += s.inUse
		n := len(s.entries)
		st.Entries += n
		if i == 0 || n > st.MaxShardEntries {
			st.MaxShardEntries = n
		}
		if i == 0 || n < st.MinShardEntries {
			st.MinShardEntries = n
		}
		s.mu.Unlock()
	}
	return st
}

// --- shard internals (all called under s.mu) ---

func (s *shard[K, V]) moveToFront(n *node[K, V]) {
	if !n.inList || s.head == n {
		return // reservations are not in the list; nothing to refresh
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *shard[K, V]) pushFront(n *node[K, V]) {
	n.prev, n.next = nil, s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
	n.inList = true
}

func (s *shard[K, V]) unlink(n *node[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
	n.inList = false
}

// evictOverBudget brings the shard back under its budget slice, least
// recently used first: demote entries in place where the hook can
// reclaim cost, then evict whole entries. keep (the entry just added
// or committed) survives eviction even when it alone exceeds the
// budget — its caller is about to use it — but is offered for
// demotion last.
func (s *shard[K, V]) evictOverBudget(c *Cache[K, V], keep *node[K, V]) {
	if s.budget <= 0 {
		return
	}
	if c.demote != nil {
		for n := s.tail; s.inUse > s.budget && n != nil; n = n.prev {
			if n == keep {
				continue
			}
			if r := c.demote(n.key, n.val); r > 0 {
				s.inUse -= r
				n.cost -= r
				s.demotions++
			}
		}
	}
	for s.inUse > s.budget && s.tail != nil && s.tail != keep {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
		s.inUse -= victim.cost
		s.evictions++
	}
	if s.inUse > s.budget && keep != nil && c.demote != nil {
		if r := c.demote(keep.key, keep.val); r > 0 {
			s.inUse -= r
			keep.cost -= r
			s.demotions++
		}
	}
}

// Mix64 finalizes a 64-bit value into a well-distributed hash
// (splitmix64's finalizer). Callers whose keys are already uniform
// content hashes can slice bytes directly; callers combining plain
// fields (seeds, lengths) run each through Mix64.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
