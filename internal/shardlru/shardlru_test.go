package shardlru

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// key32 builds a [32]byte key whose hash is its first 8 bytes — the
// same shape (and hash rule) the engine memo uses for checkpoint keys.
func key32(i uint64) [32]byte {
	var k [32]byte
	binary.LittleEndian.PutUint64(k[:8], Mix64(i))
	return k
}

func hash32(k [32]byte) uint64 { return binary.LittleEndian.Uint64(k[:8]) }

func newTest(shards int, budget int64) *Cache[[32]byte, string] {
	return New(Config[[32]byte, string]{Shards: shards, Budget: budget, Hash: hash32})
}

// TestSingleShardExactLRU pins the per-shard replacement policy: with
// one stripe the cache is exactly the global-lock LRU it replaces.
func TestSingleShardExactLRU(t *testing.T) {
	c := newTest(1, 3)
	for i := uint64(0); i < 5; i++ {
		c.Add(key32(i), fmt.Sprint(i), 1)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d past budget 3", c.Len())
	}
	for i := uint64(0); i < 2; i++ {
		if _, ok := c.Get(key32(i)); ok {
			t.Errorf("key %d should have been evicted", i)
		}
	}
	for i := uint64(2); i < 5; i++ {
		if v, ok := c.Get(key32(i)); !ok || v != fmt.Sprint(i) {
			t.Errorf("key %d missing or wrong after fill", i)
		}
	}
	// A Get refreshes recency: touch the LRU survivor, then overflow —
	// the untouched one must go first.
	c = newTest(1, 2)
	a, b, d := key32(1), key32(2), key32(3)
	c.Add(a, "a", 1)
	c.Add(b, "b", 1)
	if _, ok := c.Get(a); !ok {
		t.Fatal("a missing")
	}
	c.Add(d, "d", 1)
	if _, ok := c.Get(b); ok {
		t.Error("b should have been evicted after a was touched")
	}
	if _, ok := c.Get(a); !ok {
		t.Error("a should have survived")
	}
}

// TestShardedBudgetSplit: the shard budgets sum to the configured
// total, and the resident cost never exceeds it no matter how keys
// skew across stripes.
func TestShardedBudgetSplit(t *testing.T) {
	const budget = 10
	c := newTest(4, budget)
	if got := c.Shards(); got != 4 {
		t.Fatalf("Shards = %d, want 4", got)
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].budget
	}
	if sum != budget {
		t.Fatalf("shard budgets sum to %d, want %d", sum, budget)
	}
	for i := uint64(0); i < 100; i++ {
		c.Add(key32(i), "v", 1)
	}
	st := c.Stats()
	if st.CostInUse > budget {
		t.Fatalf("CostInUse %d exceeds budget %d", st.CostInUse, budget)
	}
	if st.Evictions == 0 {
		t.Fatal("100 unit-cost adds into budget 10 evicted nothing")
	}
	if st.Entries != c.Len() {
		t.Fatalf("Stats.Entries %d != Len %d", st.Entries, c.Len())
	}
	if st.MaxShardEntries < st.MinShardEntries {
		t.Fatalf("shard skew inverted: max %d < min %d", st.MaxShardEntries, st.MinShardEntries)
	}
}

// TestShardClamping: shard counts round up to powers of two, clamp to
// MaxShards, and never exceed the budget (a zero-budget stripe could
// retain nothing).
func TestShardClamping(t *testing.T) {
	for _, tc := range []struct {
		shards int
		budget int64
		want   int
	}{
		{3, 0, 4},            // round up, unlimited budget
		{16, 16, 16},         // exact
		{16, 3, 2},           // clamped by budget: largest pow2 <= 3
		{1024, 0, MaxShards}, // clamped to MaxShards
		{8, 1, 1},            // one-unit budget degenerates to one stripe
	} {
		c := newTest(tc.shards, tc.budget)
		if got := c.Shards(); got != tc.want {
			t.Errorf("Shards(%d, budget %d) = %d, want %d", tc.shards, tc.budget, got, tc.want)
		}
	}
	if defaultShards() < 1 {
		t.Fatal("defaultShards < 1")
	}
}

// TestDuplicateAdds: racing adds collapse to one entry, the incumbent
// value wins, and the loser is counted so lookup arithmetic
// reconciles.
func TestDuplicateAdds(t *testing.T) {
	c := newTest(4, 0)
	k := key32(7)
	if !c.Add(k, "first", 1) {
		t.Fatal("first Add rejected")
	}
	if c.Add(k, "second", 1) {
		t.Fatal("duplicate Add claimed insertion")
	}
	if v, _ := c.Get(k); v != "first" {
		t.Fatalf("duplicate add replaced the incumbent: %q", v)
	}
	if st := c.Stats(); st.Duplicates != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate, 1 entry", st)
	}
}

// TestReserveCommitDelete covers the two-phase insertion protocol:
// reservations are visible and joinable but uncharged and
// undemotable; Commit charges and links; Delete refunds.
func TestReserveCommitDelete(t *testing.T) {
	c := newTest(1, 10)
	k := key32(1)
	v, reserved := c.GetOrReserve(k, "building")
	if !reserved || v != "building" {
		t.Fatalf("GetOrReserve = (%q, %v), want reservation", v, reserved)
	}
	// A second caller joins the reservation as a hit.
	v2, reserved2 := c.GetOrReserve(k, "other")
	if reserved2 || v2 != "building" {
		t.Fatalf("joiner got (%q, %v), want the in-flight value", v2, reserved2)
	}
	if st := c.Stats(); st.CostInUse != 0 || st.Entries != 1 {
		t.Fatalf("reservation charged or invisible: %+v", st)
	}
	if !c.Commit(k, 4) {
		t.Fatal("Commit rejected")
	}
	if c.Commit(k, 4) {
		t.Fatal("double Commit accepted")
	}
	if st := c.Stats(); st.CostInUse != 4 {
		t.Fatalf("CostInUse = %d after commit, want 4", st.CostInUse)
	}
	if !c.Delete(k) {
		t.Fatal("Delete rejected")
	}
	if st := c.Stats(); st.CostInUse != 0 || st.Entries != 0 {
		t.Fatalf("Delete left state: %+v", st)
	}
	// Failed build: reservation deleted uncommitted, nothing charged.
	c.GetOrReserve(k, "doomed")
	if !c.Delete(k) {
		t.Fatal("reservation Delete rejected")
	}
	if c.Commit(k, 1) {
		t.Fatal("Commit of a deleted reservation accepted")
	}
	if st := c.Stats(); st.CostInUse != 0 || st.Entries != 0 {
		t.Fatalf("aborted reservation left state: %+v", st)
	}
}

// TestDemoteBeforeEvict: the Demote hook reclaims cost in place before
// any whole entry is dropped, and a just-committed oversized entry is
// demoted rather than evicted.
func TestDemoteBeforeEvict(t *testing.T) {
	type val struct{ hot int64 }
	demoted := map[uint64]bool{}
	c := New(Config[uint64, *val]{
		Shards: 1,
		Budget: 10,
		Hash:   Mix64,
		Demote: func(k uint64, v *val) int64 {
			r := v.hot
			v.hot = 0
			if r > 0 {
				demoted[k] = true
			}
			return r
		},
	})
	// Two entries of cost 5 (4 hot + 1 base) fill the budget; a third
	// must demote the LRU one before anything is evicted.
	for k := uint64(1); k <= 2; k++ {
		c.GetOrReserve(k, &val{hot: 4})
		c.Commit(k, 5)
	}
	c.GetOrReserve(3, &val{hot: 4})
	c.Commit(3, 5)
	st := c.Stats()
	if st.Demotions == 0 {
		t.Fatalf("no demotions: %+v", st)
	}
	if st.Evictions != 0 {
		t.Fatalf("evicted before exhausting demotion: %+v", st)
	}
	if st.CostInUse > 10 {
		t.Fatalf("CostInUse %d over budget", st.CostInUse)
	}
	// An entry alone larger than the whole budget survives commit,
	// demoted to its base cost.
	c2 := New(Config[uint64, *val]{
		Shards: 1, Budget: 3, Hash: Mix64,
		Demote: func(_ uint64, v *val) int64 { r := v.hot; v.hot = 0; return r },
	})
	c2.GetOrReserve(9, &val{hot: 90})
	c2.Commit(9, 100)
	if _, ok := c2.Get(9); !ok {
		t.Fatal("oversized committed entry was evicted")
	}
	if st := c2.Stats(); st.Demotions != 1 || st.CostInUse != 10 {
		t.Fatalf("oversized entry not demoted to base cost: %+v", st)
	}
}

// TestConcurrentStatsConsistency is the -race snapshot check the
// sharded rebase is pinned by: under concurrent lookups, adds and
// scrapes, every mid-flight snapshot keeps its invariants (counters
// monotone, budget respected, skew sane), and the final quiescent
// snapshot reconciles exactly: hits + misses == lookups issued, and
// misses == adds + duplicates for the add-after-miss protocol.
func TestConcurrentStatsConsistency(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		keys    = 64
		budget  = 48
	)
	c := newTest(8, budget)
	var wg sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})

	// Scrapers run throughout, checking invariants on every snapshot.
	var scrapeWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var last Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				if st.CostInUse > budget {
					t.Errorf("snapshot CostInUse %d exceeds budget %d", st.CostInUse, budget)
				}
				if st.Hits < last.Hits || st.Misses < last.Misses ||
					st.Evictions < last.Evictions || st.Duplicates < last.Duplicates {
					t.Errorf("counter went backwards: %+v then %+v", last, st)
				}
				if st.MaxShardEntries < st.MinShardEntries {
					t.Errorf("snapshot skew inverted: %+v", st)
				}
				last = st
			}
		}()
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for r := 0; r < rounds; r++ {
				k := key32(uint64((w*rounds + r) % keys))
				if _, ok := c.Get(k); !ok {
					c.Add(k, "v", 1)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	st := c.Stats()
	lookups := uint64(workers * rounds)
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, lookups)
	}
	// Every miss triggered exactly one Add attempt; each attempt either
	// inserted or counted a duplicate. Inserts still resident plus
	// evictions plus... inserts = misses - duplicates.
	inserts := st.Misses - st.Duplicates
	if inserts != st.Evictions+uint64(st.Entries) {
		t.Fatalf("inserts %d != evictions %d + entries %d", inserts, st.Evictions, st.Entries)
	}
	if st.CostInUse > budget {
		t.Fatalf("final CostInUse %d exceeds budget %d", st.CostInUse, budget)
	}
}

// TestMix64 sanity: distinct inputs spread, zero is not a fixed point.
func TestMix64(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if seen[h] {
			t.Fatalf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
	if Mix64(0) == 0 {
		t.Fatal("Mix64(0) == 0 would stripe zero-keys onto shard 0 forever")
	}
}

// TestNilHashPanics: a cache without a hash would silently serialize
// on shard 0; construction must refuse it loudly.
func TestNilHashPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil Hash did not panic")
		}
	}()
	New(Config[int, int]{Shards: 4})
}
