package workload

import "fmt"

// KB and MB are byte-size helpers for profile literals.
const (
	KB uint64 = 1024
	MB uint64 = 1024 * KB
)

// Profiles returns the ten interactive-app profiles used throughout the
// experiments. They stand in for the Android applications the paper
// traced (web browsing, email, maps, casual games, social feeds, video,
// document reading, music, office editing, and the home screen).
// Parameters were chosen so the motivation statistics land where the
// paper reports them: kernel L2-access shares averaging above 40%,
// write-heavy short-lived kernel blocks, longer-lived user blocks, and
// hot footprints that pressure a 1MB shared L2 but fit the shrunk
// 512KB+256KB partition at a similar miss rate (the premise of the
// paper's static sizing).
func Profiles() []Profile {
	return []Profile{
		{
			Name:        "browser",
			Description: "web page loading: network+render churn, heavy kernel I/O",
			KernelShare: 0.42, UserWorkingSet: 320 * KB, KernelWorkingSet: 96 * KB,
			UserZipf: 1.5, KernelZipf: 1.25,
			UserWriteRatio: 0.28, KernelWriteRatio: 0.47,
			UserStreamFrac: 0.01, KernelStreamFrac: 0.05,
			IfetchFrac: 0.28, UserCodeSet: 128 * KB, KernelCodeSet: 72 * KB,
			UserBurstMean: 220, GapMean: 12.2, Phases: 4,
		},
		{
			Name:        "email",
			Description: "mail client sync+read: bursty syscalls, small user set",
			KernelShare: 0.48, UserWorkingSet: 224 * KB, KernelWorkingSet: 88 * KB,
			UserZipf: 1.55, KernelZipf: 1.25,
			UserWriteRatio: 0.22, KernelWriteRatio: 0.52,
			UserStreamFrac: 0.005, KernelStreamFrac: 0.06,
			IfetchFrac: 0.30, UserCodeSet: 112 * KB, KernelCodeSet: 64 * KB,
			UserBurstMean: 150, GapMean: 13.6, Phases: 3,
		},
		{
			Name:        "maps",
			Description: "map pan/zoom: tile streaming through the kernel",
			KernelShare: 0.45, UserWorkingSet: 352 * KB, KernelWorkingSet: 112 * KB,
			UserZipf: 1.45, KernelZipf: 1.2,
			UserWriteRatio: 0.31, KernelWriteRatio: 0.49,
			UserStreamFrac: 0.02, KernelStreamFrac: 0.07,
			IfetchFrac: 0.24, UserCodeSet: 128 * KB, KernelCodeSet: 72 * KB,
			UserBurstMean: 190, GapMean: 11.6, Phases: 5,
		},
		{
			Name:        "game",
			Description: "casual game: frame loop in user code, input+audio syscalls",
			KernelShare: 0.33, UserWorkingSet: 320 * KB, KernelWorkingSet: 72 * KB,
			UserZipf: 1.6, KernelZipf: 1.3,
			UserWriteRatio: 0.35, KernelWriteRatio: 0.44,
			UserStreamFrac: 0.005, KernelStreamFrac: 0.03,
			IfetchFrac: 0.22, UserCodeSet: 112 * KB, KernelCodeSet: 56 * KB,
			UserBurstMean: 320, GapMean: 10.2, Phases: 2,
		},
		{
			Name:        "social",
			Description: "social feed scroll: image decode + network receive",
			KernelShare: 0.47, UserWorkingSet: 320 * KB, KernelWorkingSet: 104 * KB,
			UserZipf: 1.5, KernelZipf: 1.2,
			UserWriteRatio: 0.30, KernelWriteRatio: 0.50,
			UserStreamFrac: 0.015, KernelStreamFrac: 0.06,
			IfetchFrac: 0.26, UserCodeSet: 128 * KB, KernelCodeSet: 72 * KB,
			UserBurstMean: 170, GapMean: 11.9, Phases: 4,
		},
		{
			Name:        "video",
			Description: "video playback: dominant kernel DMA/copy path",
			KernelShare: 0.55, UserWorkingSet: 192 * KB, KernelWorkingSet: 96 * KB,
			UserZipf: 1.55, KernelZipf: 1.2,
			UserWriteRatio: 0.18, KernelWriteRatio: 0.55,
			UserStreamFrac: 0.01, KernelStreamFrac: 0.05,
			IfetchFrac: 0.18, UserCodeSet: 96 * KB, KernelCodeSet: 64 * KB,
			UserBurstMean: 120, GapMean: 15.3, Phases: 2,
		},
		{
			Name:        "reader",
			Description: "document reader: page render bursts, idle between pages",
			KernelShare: 0.38, UserWorkingSet: 256 * KB, KernelWorkingSet: 80 * KB,
			UserZipf: 1.6, KernelZipf: 1.25,
			UserWriteRatio: 0.20, KernelWriteRatio: 0.45,
			UserStreamFrac: 0.005, KernelStreamFrac: 0.04,
			IfetchFrac: 0.27, UserCodeSet: 112 * KB, KernelCodeSet: 64 * KB,
			UserBurstMean: 260, GapMean: 12.8, Phases: 3,
		},
		{
			Name:        "music",
			Description: "music player: tiny user set, periodic audio syscalls",
			KernelShare: 0.52, UserWorkingSet: 160 * KB, KernelWorkingSet: 80 * KB,
			UserZipf: 1.65, KernelZipf: 1.25,
			UserWriteRatio: 0.15, KernelWriteRatio: 0.53,
			UserStreamFrac: 0.005, KernelStreamFrac: 0.06,
			IfetchFrac: 0.20, UserCodeSet: 80 * KB, KernelCodeSet: 56 * KB,
			UserBurstMean: 110, GapMean: 16.1, Phases: 2,
		},
		{
			Name:        "office",
			Description: "document editing: medium user set, autosave kernel bursts",
			KernelShare: 0.36, UserWorkingSet: 352 * KB, KernelWorkingSet: 80 * KB,
			UserZipf: 1.5, KernelZipf: 1.25,
			UserWriteRatio: 0.33, KernelWriteRatio: 0.48,
			UserStreamFrac: 0.005, KernelStreamFrac: 0.03,
			IfetchFrac: 0.29, UserCodeSet: 144 * KB, KernelCodeSet: 64 * KB,
			UserBurstMean: 280, GapMean: 12.2, Phases: 3,
		},
		{
			Name:        "launcher",
			Description: "home screen and app switching: kernel-heavy context churn",
			KernelShare: 0.50, UserWorkingSet: 256 * KB, KernelWorkingSet: 120 * KB,
			UserZipf: 1.4, KernelZipf: 1.2,
			UserWriteRatio: 0.26, KernelWriteRatio: 0.51,
			UserStreamFrac: 0.01, KernelStreamFrac: 0.05,
			IfetchFrac: 0.31, UserCodeSet: 144 * KB, KernelCodeSet: 88 * KB,
			UserBurstMean: 140, GapMean: 13.3, Phases: 5,
		},
	}
}

// ProfileByName finds a profile from Profiles by name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// ProfileNames lists the available profile names in order.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}
