package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seed RNG produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestRNGFloat64Uniformish(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform draws = %g, want ~0.5", mean)
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(13)
	const target = 20.0
	sum := 0
	const n = 200000
	for i := 0; i < n; i++ {
		k := r.Geometric(target)
		if k < 1 {
			t.Fatalf("geometric sample %d < 1", k)
		}
		sum += k
	}
	mean := float64(sum) / n
	if math.Abs(mean-target)/target > 0.05 {
		t.Fatalf("geometric mean = %g, want ~%g", mean, target)
	}
}

func TestRNGGeometricDegenerate(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 100; i++ {
		if k := r.Geometric(0.5); k != 1 {
			t.Fatalf("Geometric(0.5) = %d, want 1", k)
		}
		if k := r.Geometric(1); k != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", k)
		}
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream matched parent %d/1000 times", same)
	}
}

func TestZipfRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%5000) + 1
		s := float64(sRaw%30) / 10 // 0.0 .. 2.9
		z := NewZipf(n, s)
		r := NewRNG(seed)
		for i := 0; i < 30; i++ {
			v := z.Sample(r)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	const n = 1024
	r := NewRNG(31)
	z := NewZipf(n, 1.0)
	top := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if z.Sample(r) < n/16 {
			top++
		}
	}
	frac := float64(top) / draws
	// With s=1, the top 1/16 of ranks should hold far more than 1/16
	// of the mass.
	if frac < 0.3 {
		t.Fatalf("top-1/16 mass = %g, want >= 0.3 for skew 1.0", frac)
	}
}

func TestZipfUniformWhenSkewZero(t *testing.T) {
	const n = 64
	r := NewRNG(37)
	z := NewZipf(n, 0)
	counts := make([]int, n)
	const draws = 64000
	for i := 0; i < draws; i++ {
		counts[z.Sample(r)]++
	}
	for i, c := range counts {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("rank %d drawn %d times, want ~%d", i, c, draws/n)
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-5, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%g) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(tc.n, tc.s)
		}()
	}
}
