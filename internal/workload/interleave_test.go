package workload

import (
	"testing"

	"mobilecache/internal/trace"
)

func TestASIDSourceNamespacesUserOnly(t *testing.T) {
	recs := []trace.Access{
		{Addr: 0x1000, PC: 0x400, Op: trace.Load, Domain: trace.User},
		{Addr: 0xffff800000000000, PC: 0xffff800000100000, Op: trace.Store, Domain: trace.Kernel},
	}
	s := NewASIDSource(trace.NewSliceSource(recs), 3)
	a, ok := s.Next()
	if !ok || a.Addr != 0x1000+(uint64(3)<<40) || a.PC != 0x400+(uint64(3)<<40) {
		t.Fatalf("user record not namespaced: %+v", a)
	}
	k, ok := s.Next()
	if !ok || k.Addr != 0xffff800000000000 || k.PC != 0xffff800000100000 {
		t.Fatalf("kernel record changed: %+v", k)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source yielded a record")
	}
}

func TestASIDZeroIsIdentity(t *testing.T) {
	recs := []trace.Access{{Addr: 0x1000, Op: trace.Load, Domain: trace.User}}
	s := NewASIDSource(trace.NewSliceSource(recs), 0)
	a, _ := s.Next()
	if a.Addr != 0x1000 {
		t.Fatalf("asid 0 changed the address: %#x", a.Addr)
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := trace.NewSliceSource([]trace.Access{
		{Addr: 1, Op: trace.Load, Domain: trace.User},
		{Addr: 2, Op: trace.Load, Domain: trace.User},
		{Addr: 3, Op: trace.Load, Domain: trace.User},
		{Addr: 4, Op: trace.Load, Domain: trace.User},
	})
	b := trace.NewSliceSource([]trace.Access{
		{Addr: 101, Op: trace.Load, Domain: trace.User},
		{Addr: 102, Op: trace.Load, Domain: trace.User},
	})
	il := NewInterleaveSource(2, a, b)
	var got []uint64
	for {
		rec, ok := il.Next()
		if !ok {
			break
		}
		got = append(got, rec.Addr)
	}
	want := []uint64{1, 2, 101, 102, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestInterleaveSkipsExhausted(t *testing.T) {
	a := trace.NewSliceSource([]trace.Access{{Addr: 1, Op: trace.Load, Domain: trace.User}})
	b := trace.NewSliceSource([]trace.Access{
		{Addr: 101, Op: trace.Load, Domain: trace.User},
		{Addr: 102, Op: trace.Load, Domain: trace.User},
		{Addr: 103, Op: trace.Load, Domain: trace.User},
	})
	il := NewInterleaveSource(1, a, b)
	count := 0
	for {
		if _, ok := il.Next(); !ok {
			break
		}
		count++
	}
	if count != 4 {
		t.Fatalf("interleave yielded %d records, want 4", count)
	}
}

func TestInterleaveQuantumDefault(t *testing.T) {
	a := trace.NewSliceSource([]trace.Access{{Addr: 1, Op: trace.Load, Domain: trace.User}})
	il := NewInterleaveSource(0, a)
	if _, ok := il.Next(); !ok {
		t.Fatal("quantum 0 broke the source")
	}
}

func TestMultiAppSession(t *testing.T) {
	src, err := MultiAppSession([]string{"browser", "music"}, 1, 500, 20000)
	if err != nil {
		t.Fatal(err)
	}
	recs := trace.Collect(src, 0)
	if len(recs) != 20000 {
		t.Fatalf("session length %d, want 20000", len(recs))
	}
	// User addresses from the two apps must live in disjoint spaces;
	// kernel addresses are shared.
	spaces := map[uint64]bool{}
	kernelSeen := false
	for _, a := range recs {
		if a.Domain == trace.User {
			spaces[a.Addr>>40] = true
		} else {
			kernelSeen = true
		}
	}
	if len(spaces) != 2 {
		t.Fatalf("user address spaces = %d, want 2", len(spaces))
	}
	if !kernelSeen {
		t.Fatal("no kernel accesses in session")
	}
	if _, err := MultiAppSession([]string{"nope"}, 1, 500, 100); err == nil {
		t.Fatal("unknown app accepted")
	}
}
