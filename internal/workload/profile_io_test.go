package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		var buf bytes.Buffer
		if err := SaveProfile(&buf, p); err != nil {
			t.Fatalf("save %s: %v", p.Name, err)
		}
		got, err := LoadProfile(&buf)
		if err != nil {
			t.Fatalf("load %s: %v", p.Name, err)
		}
		if got != p {
			t.Fatalf("round trip mismatch for %s:\n got %+v\nwant %+v", p.Name, got, p)
		}
	}
}

func TestSaveProfileRejectsInvalid(t *testing.T) {
	bad := Profiles()[0]
	bad.KernelShare = 2
	if err := SaveProfile(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid profile saved")
	}
}

func TestLoadProfileRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"name":""}`,
		`{"name":"x","unknown_field":1}`,
		`{"name":"x","kernel_share":1.5,"user_working_set_kb":64,"kernel_working_set_kb":64,"user_burst_mean":10}`,
	}
	for _, in := range cases {
		if _, err := LoadProfile(strings.NewReader(in)); err == nil {
			t.Errorf("LoadProfile(%q) succeeded, want error", in)
		}
	}
}

func TestLoadProfileFile(t *testing.T) {
	p := Profiles()[2]
	path := filepath.Join(t.TempDir(), "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveProfile(f, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || got.UserWorkingSet != p.UserWorkingSet {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
	if _, err := LoadProfileFile("/does/not/exist.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadedProfileGenerates(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveProfile(&buf, Profiles()[0]); err != nil {
		t.Fatal(err)
	}
	p, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Generate(p, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1000 {
		t.Fatalf("generated %d records", len(recs))
	}
}
