package workload

import (
	"fmt"

	"mobilecache/internal/trace"
)

// Address-space layout of generated traces, mirroring a 64-bit mobile
// SoC: user allocations live in the low canonical half, kernel text and
// data in the high half. Keeping the halves disjoint means domain can
// always be re-derived from an address, which several tests exploit.
const (
	// UserBase is the base of generated user data addresses.
	UserBase uint64 = 0x0000_0000_1000_0000
	// UserCodeBase is the base of generated user instruction addresses.
	UserCodeBase uint64 = 0x0000_0000_0040_0000
	// KernelBase is the base of generated kernel data addresses.
	KernelBase uint64 = 0xffff_8000_0100_0000
	// KernelCodeBase is the base of generated kernel instruction addresses.
	KernelCodeBase uint64 = 0xffff_8000_0010_0000
	// BlockBytes is the cache-block granularity of generated locality.
	BlockBytes = 64
)

// DomainOf classifies a generated address back into its domain.
func DomainOf(addr uint64) trace.Domain {
	if addr >= 0xffff_0000_0000_0000 {
		return trace.Kernel
	}
	return trace.User
}

// Profile parameterizes one synthetic application. The fields fix
// exactly the stream statistics the paper's cache designs are
// sensitive to.
type Profile struct {
	// Name identifies the app (used in reports and experiment tables).
	Name string
	// Description is a one-line human summary.
	Description string

	// KernelShare is the target fraction of accesses issued from
	// kernel code. Interactive mobile apps average above 0.4.
	KernelShare float64

	// UserWorkingSet and KernelWorkingSet are the per-domain hot data
	// footprints in bytes.
	UserWorkingSet   uint64
	KernelWorkingSet uint64

	// UserZipf and KernelZipf are the zipfian skew of block popularity
	// within each working set (0 = uniform).
	UserZipf   float64
	KernelZipf float64

	// UserWriteRatio and KernelWriteRatio are the store fractions of
	// each domain's data accesses. Kernel streams are write-heavy
	// (buffer management, copy_to/from_user), which is what makes the
	// short-retention STT-RAM segment attractive.
	UserWriteRatio   float64
	KernelWriteRatio float64

	// UserStreamFrac and KernelStreamFrac are the fractions of data
	// accesses that walk sequentially through a streaming region
	// (media buffers, network payloads) rather than hitting the hot
	// set.
	UserStreamFrac   float64
	KernelStreamFrac float64

	// IfetchFrac is the fraction of accesses that are instruction
	// fetches (sampled from a small per-domain code footprint).
	IfetchFrac float64
	// UserCodeSet and KernelCodeSet are the code footprints in bytes.
	UserCodeSet   uint64
	KernelCodeSet uint64

	// UserBurstMean is the mean number of consecutive user accesses
	// between kernel entries (syscalls, interrupts). The kernel burst
	// length is derived from KernelShare so the share target is met in
	// expectation.
	UserBurstMean float64

	// GapMean is the mean count of non-memory instructions between
	// consecutive memory accesses; it sets the instruction/access
	// ratio seen by the timing model.
	GapMean float64

	// Phases is the number of macro phases; at each phase boundary the
	// user working set shifts to fresh addresses (new activity,
	// GC churn, page-ins) and scales its size (apps alternate between
	// demanding bursts and lighter stretches — the variability the
	// dynamic partition exploits), while the kernel set stays put.
	// Zero or one means a single stationary phase.
	Phases int
}

// phaseScales is the deterministic per-phase multiplier applied to the
// user working set: interactive apps alternate heavy and light phases.
var phaseScales = [...]float64{1.0, 0.45, 0.85, 0.5, 0.7}

// Validate reports a descriptive error for out-of-range parameters.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile needs a name")
	case p.KernelShare < 0 || p.KernelShare >= 1:
		return fmt.Errorf("workload %s: kernel share %g outside [0,1)", p.Name, p.KernelShare)
	case p.UserWorkingSet < BlockBytes:
		return fmt.Errorf("workload %s: user working set %d below one block", p.Name, p.UserWorkingSet)
	case p.KernelWorkingSet < BlockBytes:
		return fmt.Errorf("workload %s: kernel working set %d below one block", p.Name, p.KernelWorkingSet)
	case p.UserWriteRatio < 0 || p.UserWriteRatio > 1:
		return fmt.Errorf("workload %s: user write ratio %g outside [0,1]", p.Name, p.UserWriteRatio)
	case p.KernelWriteRatio < 0 || p.KernelWriteRatio > 1:
		return fmt.Errorf("workload %s: kernel write ratio %g outside [0,1]", p.Name, p.KernelWriteRatio)
	case p.UserStreamFrac < 0 || p.UserStreamFrac > 1:
		return fmt.Errorf("workload %s: user stream fraction %g outside [0,1]", p.Name, p.UserStreamFrac)
	case p.KernelStreamFrac < 0 || p.KernelStreamFrac > 1:
		return fmt.Errorf("workload %s: kernel stream fraction %g outside [0,1]", p.Name, p.KernelStreamFrac)
	case p.IfetchFrac < 0 || p.IfetchFrac > 1:
		return fmt.Errorf("workload %s: ifetch fraction %g outside [0,1]", p.Name, p.IfetchFrac)
	case p.UserBurstMean < 1:
		return fmt.Errorf("workload %s: user burst mean %g below 1", p.Name, p.UserBurstMean)
	case p.GapMean < 0:
		return fmt.Errorf("workload %s: negative gap mean %g", p.Name, p.GapMean)
	}
	return nil
}

// kernelBurstMean derives the kernel burst length that achieves the
// target kernel share given the user burst length.
func (p *Profile) kernelBurstMean() float64 {
	if p.KernelShare <= 0 {
		return 0
	}
	return p.UserBurstMean * p.KernelShare / (1 - p.KernelShare)
}

// Generator produces a deterministic access stream for one profile.
// It implements trace.Source and never ends; wrap it in a
// trace.LimitSource (or use Generate) for a finite trace.
type Generator struct {
	prof    Profile
	rng     *RNG
	total   uint64 // accesses generated so far
	length  uint64 // accesses per phase (0 = stationary)
	phase   int
	inBurst trace.Domain
	left    int // accesses left in current burst

	user   domainState
	kernel domainState
}

// domainState holds the per-domain address machinery.
type domainState struct {
	zipf       *Zipf
	dataBase   uint64
	codeBase   uint64
	codeBlocks int
	streamPos  uint64
	streamBase uint64
	pc         uint64
}

// NewGenerator builds a generator for prof seeded by seed. phaseLen is
// the number of accesses per macro phase when prof.Phases > 1; pass 0
// to let Generate derive it from the requested trace length.
func NewGenerator(prof Profile, seed uint64, phaseLen uint64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	g := &Generator{prof: prof, rng: NewRNG(seed), length: phaseLen, inBurst: trace.User}
	g.left = g.rng.Geometric(prof.UserBurstMean)

	userBlocks := int(prof.UserWorkingSet / BlockBytes)
	kernelBlocks := int(prof.KernelWorkingSet / BlockBytes)
	g.user = domainState{
		zipf:       NewZipf(userBlocks, prof.UserZipf),
		dataBase:   UserBase,
		codeBase:   UserCodeBase,
		codeBlocks: maxInt(1, int(prof.UserCodeSet/BlockBytes)),
		streamBase: UserBase + prof.UserWorkingSet*4,
		pc:         UserCodeBase,
	}
	g.kernel = domainState{
		zipf:       NewZipf(kernelBlocks, prof.KernelZipf),
		dataBase:   KernelBase,
		codeBase:   KernelCodeBase,
		codeBlocks: maxInt(1, int(prof.KernelCodeSet/BlockBytes)),
		streamBase: KernelBase + prof.KernelWorkingSet*4,
		pc:         KernelCodeBase,
	}
	return g, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Profile returns the profile this generator was built from.
func (g *Generator) Profile() Profile { return g.prof }

// Next produces the next access. The stream is infinite; ok is always
// true.
func (g *Generator) Next() (trace.Access, bool) {
	// Burst machine: alternate user and kernel bursts.
	if g.left <= 0 {
		if g.inBurst == trace.User && g.prof.KernelShare > 0 {
			g.inBurst = trace.Kernel
			g.left = g.rng.Geometric(g.prof.kernelBurstMean())
		} else {
			g.inBurst = trace.User
			g.left = g.rng.Geometric(g.prof.UserBurstMean)
		}
	}
	g.left--

	// Macro phase shift: move the user working set to fresh addresses
	// and rescale it to the phase's demand level.
	if g.length > 0 && g.prof.Phases > 1 {
		phase := int(g.total/g.length) % g.prof.Phases
		if phase != g.phase {
			g.phase = phase
			g.user.dataBase = UserBase + uint64(phase)*g.prof.UserWorkingSet*16
			g.user.streamBase = g.user.dataBase + g.prof.UserWorkingSet*4
			scale := phaseScales[phase%len(phaseScales)]
			blocks := int(float64(g.prof.UserWorkingSet/BlockBytes) * scale)
			if blocks < 1 {
				blocks = 1
			}
			g.user.zipf = NewZipf(blocks, g.prof.UserZipf)
		}
	}
	g.total++

	dom := g.inBurst
	ds := &g.user
	streamFrac, writeRatio := g.prof.UserStreamFrac, g.prof.UserWriteRatio
	if dom == trace.Kernel {
		ds = &g.kernel
		streamFrac, writeRatio = g.prof.KernelStreamFrac, g.prof.KernelWriteRatio
	}

	a := trace.Access{Domain: dom, Gap: g.gap()}

	// Advance a simple per-domain PC walk through the code footprint.
	ds.pc += 4
	if ds.pc >= ds.codeBase+uint64(ds.codeBlocks)*BlockBytes {
		ds.pc = ds.codeBase
	}
	if g.rng.Bool(0.05) { // occasional branch to a random code block
		ds.pc = ds.codeBase + uint64(g.rng.Intn(ds.codeBlocks))*BlockBytes
	}
	a.PC = ds.pc

	switch {
	case g.rng.Bool(g.prof.IfetchFrac):
		a.Op = trace.Ifetch
		a.Addr = ds.pc
	case g.rng.Bool(streamFrac):
		// Streaming: sequential walk through a large region, wrapping
		// far beyond any cache capacity.
		a.Addr = ds.streamBase + (ds.streamPos%(1<<24))*BlockBytes
		ds.streamPos++
		a.Op = trace.Load
		if g.rng.Bool(writeRatio) {
			a.Op = trace.Store
		}
	default:
		// Hot-set access with zipfian popularity, random offset within
		// the block.
		block := ds.zipf.Sample(g.rng)
		a.Addr = ds.dataBase + uint64(block)*BlockBytes + uint64(g.rng.Intn(BlockBytes/8)*8)
		a.Op = trace.Load
		if g.rng.Bool(writeRatio) {
			a.Op = trace.Store
		}
	}
	return a, true
}

func (g *Generator) gap() uint32 {
	if g.prof.GapMean <= 0 {
		return 0
	}
	return uint32(g.rng.Geometric(g.prof.GapMean) - 1)
}

// PhaseLen derives the per-phase access count a full-trace run of n
// accesses uses: n split evenly over the profile's macro phases, zero
// (stationary) for single-phase profiles. sim.RunWorkload and the trace
// store must agree on this value so cached traces replay identically to
// generator-driven runs.
func PhaseLen(p Profile, n int) uint64 {
	if p.Phases > 1 && n > 0 {
		return uint64(n / p.Phases)
	}
	return 0
}

// Generate materializes n accesses of prof, splitting the trace into
// prof.Phases equal macro phases.
func Generate(prof Profile, seed uint64, n int) ([]trace.Access, error) {
	phaseLen := uint64(0)
	if prof.Phases > 1 && n > 0 {
		phaseLen = uint64(n / prof.Phases)
		if phaseLen == 0 {
			phaseLen = 1
		}
	}
	g, err := NewGenerator(prof, seed, phaseLen)
	if err != nil {
		return nil, err
	}
	return trace.Collect(trace.NewLimitSource(g, n), n), nil
}

// PhasedSource plays several sources back to back, n accesses each.
// It models a usage session that moves between apps — the stimulus for
// the dynamic-partition adaptation experiment.
type PhasedSource struct {
	srcs    []trace.Source
	perSrc  int
	current int
	used    int
}

// NewPhasedSource plays each source for perSrc accesses in order.
func NewPhasedSource(perSrc int, srcs ...trace.Source) *PhasedSource {
	return &PhasedSource{srcs: srcs, perSrc: perSrc}
}

// Next yields from the current source, advancing when its quota or
// stream is exhausted.
func (p *PhasedSource) Next() (trace.Access, bool) {
	for p.current < len(p.srcs) {
		if p.used < p.perSrc {
			a, ok := p.srcs[p.current].Next()
			if ok {
				p.used++
				return a, true
			}
		}
		p.current++
		p.used = 0
	}
	return trace.Access{}, false
}
