package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// profileJSON is the serialized form of a Profile; field names are
// snake_case and sizes are in KB for hand-editing comfort.
type profileJSON struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	KernelShare float64 `json:"kernel_share"`

	UserWorkingSetKB   int `json:"user_working_set_kb"`
	KernelWorkingSetKB int `json:"kernel_working_set_kb"`

	UserZipf   float64 `json:"user_zipf"`
	KernelZipf float64 `json:"kernel_zipf"`

	UserWriteRatio   float64 `json:"user_write_ratio"`
	KernelWriteRatio float64 `json:"kernel_write_ratio"`

	UserStreamFrac   float64 `json:"user_stream_frac"`
	KernelStreamFrac float64 `json:"kernel_stream_frac"`

	IfetchFrac    float64 `json:"ifetch_frac"`
	UserCodeKB    int     `json:"user_code_kb"`
	KernelCodeKB  int     `json:"kernel_code_kb"`
	UserBurstMean float64 `json:"user_burst_mean"`
	GapMean       float64 `json:"gap_mean"`
	Phases        int     `json:"phases"`
}

func toJSON(p Profile) profileJSON {
	return profileJSON{
		Name: p.Name, Description: p.Description,
		KernelShare:        p.KernelShare,
		UserWorkingSetKB:   int(p.UserWorkingSet / KB),
		KernelWorkingSetKB: int(p.KernelWorkingSet / KB),
		UserZipf:           p.UserZipf, KernelZipf: p.KernelZipf,
		UserWriteRatio: p.UserWriteRatio, KernelWriteRatio: p.KernelWriteRatio,
		UserStreamFrac: p.UserStreamFrac, KernelStreamFrac: p.KernelStreamFrac,
		IfetchFrac: p.IfetchFrac,
		UserCodeKB: int(p.UserCodeSet / KB), KernelCodeKB: int(p.KernelCodeSet / KB),
		UserBurstMean: p.UserBurstMean, GapMean: p.GapMean, Phases: p.Phases,
	}
}

func fromJSON(j profileJSON) Profile {
	return Profile{
		Name: j.Name, Description: j.Description,
		KernelShare:      j.KernelShare,
		UserWorkingSet:   uint64(j.UserWorkingSetKB) * KB,
		KernelWorkingSet: uint64(j.KernelWorkingSetKB) * KB,
		UserZipf:         j.UserZipf, KernelZipf: j.KernelZipf,
		UserWriteRatio: j.UserWriteRatio, KernelWriteRatio: j.KernelWriteRatio,
		UserStreamFrac: j.UserStreamFrac, KernelStreamFrac: j.KernelStreamFrac,
		IfetchFrac:  j.IfetchFrac,
		UserCodeSet: uint64(j.UserCodeKB) * KB, KernelCodeSet: uint64(j.KernelCodeKB) * KB,
		UserBurstMean: j.UserBurstMean, GapMean: j.GapMean, Phases: j.Phases,
	}
}

// SaveProfile writes p as indented JSON.
func SaveProfile(w io.Writer, p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSON(p))
}

// LoadProfile reads and validates a profile from JSON.
func LoadProfile(r io.Reader) (Profile, error) {
	var j profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return Profile{}, fmt.Errorf("workload: decoding profile: %w", err)
	}
	p := fromJSON(j)
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// LoadProfileFile reads a profile from a JSON file.
func LoadProfileFile(path string) (Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return Profile{}, err
	}
	defer f.Close()
	return LoadProfile(f)
}
