package workload

import "mobilecache/internal/trace"

// ASIDSource namespaces the *user* half of an app's address space by an
// address-space ID, leaving kernel addresses untouched. This mirrors
// the real platform: every process has its own user mappings, while
// kernel text and data are shared across all of them — which is why
// kernel blocks stay warm across app switches and user blocks do not.
type ASIDSource struct {
	src  trace.Source
	base uint64
}

// NewASIDSource wraps src, offsetting user addresses into the address
// space identified by asid (0 leaves the stream unchanged).
func NewASIDSource(src trace.Source, asid uint64) *ASIDSource {
	return &ASIDSource{src: src, base: asid << 40}
}

// Next returns the next namespaced record.
func (s *ASIDSource) Next() (trace.Access, bool) {
	a, ok := s.src.Next()
	if !ok {
		return trace.Access{}, false
	}
	if a.Domain == trace.User {
		a.Addr += s.base
		a.PC += s.base
	}
	return a, true
}

// InterleaveSource round-robins between several sources with a fixed
// scheduling quantum, modeling preemptive multitasking between apps.
// Exhausted sources are skipped; the stream ends when every source is
// exhausted.
type InterleaveSource struct {
	srcs    []trace.Source
	quantum int
	cur     int
	used    int
	done    []bool
	left    int
}

// NewInterleaveSource builds a scheduler over srcs switching every
// quantum accesses. A non-positive quantum defaults to 1.
func NewInterleaveSource(quantum int, srcs ...trace.Source) *InterleaveSource {
	if quantum <= 0 {
		quantum = 1
	}
	return &InterleaveSource{
		srcs: srcs, quantum: quantum,
		done: make([]bool, len(srcs)),
		left: len(srcs),
	}
}

// Next returns the next scheduled record.
func (s *InterleaveSource) Next() (trace.Access, bool) {
	for s.left > 0 {
		if s.done[s.cur] || s.used >= s.quantum {
			s.advance()
			continue
		}
		a, ok := s.srcs[s.cur].Next()
		if !ok {
			s.done[s.cur] = true
			s.left--
			s.advance()
			continue
		}
		s.used++
		return a, true
	}
	return trace.Access{}, false
}

func (s *InterleaveSource) advance() {
	s.used = 0
	for i := 0; i < len(s.srcs); i++ {
		s.cur = (s.cur + 1) % len(s.srcs)
		if !s.done[s.cur] {
			return
		}
	}
}

// MultiAppSession builds the standard multitasking stimulus: the named
// apps run concurrently under round-robin scheduling with distinct
// user address spaces and a shared kernel, n accesses in total.
func MultiAppSession(names []string, seed uint64, quantum, n int) (trace.Source, error) {
	var srcs []trace.Source
	for i, name := range names {
		prof, err := ProfileByName(name)
		if err != nil {
			return nil, err
		}
		phaseLen := uint64(0)
		if prof.Phases > 1 && n > 0 {
			phaseLen = uint64(n / len(names) / maxI(prof.Phases, 1))
		}
		gen, err := NewGenerator(prof, seed+uint64(i)*131, phaseLen)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, NewASIDSource(gen, uint64(i)+1))
	}
	return trace.NewLimitSource(NewInterleaveSource(quantum, srcs...), n), nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
