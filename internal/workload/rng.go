// Package workload synthesizes memory-access traces that statistically
// resemble the interactive smartphone applications the paper evaluates
// (browser, email, maps, games, ...). The real study traced Android
// apps under gem5 full-system simulation; those traces are not
// available, so this package is the documented substitution: each app
// profile fixes the stream statistics the paper's mechanisms depend on
// — the kernel share of accesses, per-domain working-set sizes and
// reuse behaviour, write intensity, and the user/kernel phase structure
// created by system calls and interrupt handling.
package workload

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Determinism matters here: every experiment in the
// repository must regenerate the identical trace from a seed so that
// results are reproducible across runs and machines.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed; a zero seed is remapped
// to a fixed non-zero constant because the xorshift state must never
// be zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean
// approximately mean (support {1, 2, ...}).
func (r *RNG) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	u := r.Float64()
	// Inverse CDF of the geometric distribution.
	k := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if k < 1 {
		k = 1
	}
	return k
}

// Fork derives an independent generator whose stream does not overlap
// with the parent's in practice (distinct multiplier-mixed state).
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

// Zipf samples ranks in [0, n) following a zipfian distribution with
// exponent s, using Chlebus's approximate inverse-CDF method. Zipfian
// reuse is the standard model for cache-resident working sets.
type Zipf struct {
	n    int
	s    float64
	hInt float64 // generalized harmonic normalizer H(n, s)
}

// NewZipf builds a zipfian sampler over n items with skew s (s=0 is
// uniform; s around 0.8-1.2 matches measured cache streams). It panics
// if n <= 0 or s < 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("workload: Zipf with non-positive population")
	}
	if s < 0 {
		panic("workload: Zipf with negative skew")
	}
	z := &Zipf{n: n, s: s}
	z.hInt = harmonic(n, s)
	return z
}

func harmonic(n int, s float64) float64 {
	// For large n use the integral approximation to keep construction
	// O(1); for small n compute exactly.
	if n <= 4096 {
		h := 0.0
		for k := 1; k <= n; k++ {
			h += math.Pow(float64(k), -s)
		}
		return h
	}
	if s == 1 {
		return math.Log(float64(n)) + 0.5772156649 + 1/(2*float64(n))
	}
	return (math.Pow(float64(n), 1-s) - 1) / (1 - s) * 1.0
}

// N reports the population size.
func (z *Zipf) N() int { return z.n }

// Sample draws a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Sample(r *RNG) int {
	if z.s == 0 {
		return r.Intn(z.n)
	}
	u := r.Float64() * z.hInt
	// Invert the integral approximation of the CDF.
	var k float64
	if z.s == 1 {
		k = math.Exp(u) - 1
	} else {
		k = math.Pow(u*(1-z.s)+1, 1/(1-z.s)) - 1
	}
	i := int(k)
	if i < 0 {
		i = 0
	}
	if i >= z.n {
		i = z.n - 1
	}
	return i
}
