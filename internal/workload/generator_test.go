package workload

import (
	"math"
	"testing"

	"mobilecache/internal/trace"
)

func testProfile() Profile {
	return Profile{
		Name:           "test",
		KernelShare:    0.4,
		UserWorkingSet: 256 * KB, KernelWorkingSet: 128 * KB,
		UserZipf: 1.0, KernelZipf: 0.6,
		UserWriteRatio: 0.25, KernelWriteRatio: 0.5,
		UserStreamFrac: 0.1, KernelStreamFrac: 0.2,
		IfetchFrac: 0.25, UserCodeSet: 64 * KB, KernelCodeSet: 32 * KB,
		UserBurstMean: 100, GapMean: 2.0, Phases: 2,
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := Generate(testProfile(), 99, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testProfile(), 99, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGeneratorSeedsDiffer(t *testing.T) {
	a, _ := Generate(testProfile(), 1, 2000)
	b, _ := Generate(testProfile(), 2, 2000)
	same := 0
	for i := range a {
		if a[i].Addr == b[i].Addr {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("different seeds produced %d/%d identical addresses", same, len(a))
	}
}

func TestGeneratorKernelShare(t *testing.T) {
	recs, err := Generate(testProfile(), 5, 200000)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(trace.NewSliceSource(recs))
	if math.Abs(s.KernelShare()-0.4) > 0.03 {
		t.Fatalf("kernel share = %g, want ~0.40", s.KernelShare())
	}
}

func TestGeneratorDomainAddressesConsistent(t *testing.T) {
	recs, err := Generate(testProfile(), 7, 50000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range recs {
		if DomainOf(a.Addr) != a.Domain {
			t.Fatalf("address %#x tagged %v but lives in %v space", a.Addr, a.Domain, DomainOf(a.Addr))
		}
		if DomainOf(a.PC) != a.Domain {
			t.Fatalf("pc %#x tagged %v but lives in %v space", a.PC, a.Domain, DomainOf(a.PC))
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
	}
}

func TestGeneratorWriteRatios(t *testing.T) {
	recs, err := Generate(testProfile(), 11, 300000)
	if err != nil {
		t.Fatal(err)
	}
	var stores, data [trace.NumDomains]float64
	for _, a := range recs {
		if a.Op == trace.Ifetch {
			continue
		}
		data[a.Domain]++
		if a.Op == trace.Store {
			stores[a.Domain]++
		}
	}
	userRatio := stores[trace.User] / data[trace.User]
	kernelRatio := stores[trace.Kernel] / data[trace.Kernel]
	if math.Abs(userRatio-0.25) > 0.05 {
		t.Fatalf("user write ratio = %g, want ~0.25", userRatio)
	}
	if math.Abs(kernelRatio-0.5) > 0.05 {
		t.Fatalf("kernel write ratio = %g, want ~0.50", kernelRatio)
	}
	if kernelRatio <= userRatio {
		t.Fatalf("kernel writes (%g) should exceed user writes (%g)", kernelRatio, userRatio)
	}
}

func TestGeneratorIfetchFraction(t *testing.T) {
	recs, err := Generate(testProfile(), 13, 200000)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.Summarize(trace.NewSliceSource(recs))
	frac := float64(s.ByOp[trace.Ifetch]) / float64(s.Records)
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("ifetch fraction = %g, want ~0.25", frac)
	}
}

func TestGeneratorPhasesShiftUserSet(t *testing.T) {
	prof := testProfile()
	prof.Phases = 2
	recs, err := Generate(prof, 17, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Collect user data addresses from first and second half.
	half := len(recs) / 2
	seen1, seen2 := map[uint64]bool{}, map[uint64]bool{}
	for i, a := range recs {
		if a.Domain != trace.User || a.Op == trace.Ifetch {
			continue
		}
		blk := a.Addr / BlockBytes
		if i < half {
			seen1[blk] = true
		} else {
			seen2[blk] = true
		}
	}
	overlap := 0
	for b := range seen2 {
		if seen1[b] {
			overlap++
		}
	}
	// Phase 2 should use a mostly fresh footprint.
	if len(seen2) == 0 || float64(overlap)/float64(len(seen2)) > 0.5 {
		t.Fatalf("phase overlap %d/%d too high; working set did not shift", overlap, len(seen2))
	}
}

func TestGeneratorPhaseScaling(t *testing.T) {
	// Phases alternate heavy and light user demand: the distinct-block
	// footprint of an odd (scaled-down) phase must be well below the
	// even (full-size) phase's.
	prof := testProfile()
	prof.Phases = 2
	prof.UserStreamFrac = 0 // keep the footprint purely hot-set
	recs, err := Generate(prof, 23, 120000)
	if err != nil {
		t.Fatal(err)
	}
	half := len(recs) / 2
	footprint := func(rs []trace.Access) int {
		seen := map[uint64]bool{}
		for _, a := range rs {
			if a.Domain == trace.User && a.Op != trace.Ifetch {
				seen[a.Addr/BlockBytes] = true
			}
		}
		return len(seen)
	}
	f1, f2 := footprint(recs[:half]), footprint(recs[half:])
	// Phase 1 scale is 1.0, phase 2 scale is 0.45.
	if float64(f2) > float64(f1)*0.7 {
		t.Fatalf("phase 2 footprint %d not clearly below phase 1 %d", f2, f1)
	}
	if f2 == 0 {
		t.Fatal("phase 2 generated no user data accesses")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := testProfile()
	bad.KernelShare = 1.5
	if _, err := NewGenerator(bad, 1, 0); err == nil {
		t.Fatal("generator accepted kernel share > 1")
	}
	bad = testProfile()
	bad.Name = ""
	if _, err := NewGenerator(bad, 1, 0); err == nil {
		t.Fatal("generator accepted empty name")
	}
	bad = testProfile()
	bad.UserBurstMean = 0
	if _, err := NewGenerator(bad, 1, 0); err == nil {
		t.Fatal("generator accepted zero burst mean")
	}
	bad = testProfile()
	bad.UserWorkingSet = 1
	if _, err := NewGenerator(bad, 1, 0); err == nil {
		t.Fatal("generator accepted sub-block working set")
	}
}

func TestAllProfilesValidAndDistinct(t *testing.T) {
	ps := Profiles()
	if len(ps) < 10 {
		t.Fatalf("want at least 10 app profiles, got %d", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		if p.KernelWriteRatio <= p.UserWriteRatio {
			t.Errorf("profile %s: kernel writes should be heavier than user writes", p.Name)
		}
	}
}

func TestProfilesAverageKernelShareAbove40(t *testing.T) {
	// The paper's motivating observation: interactive apps average
	// >40% kernel accesses. Check the profile parameters deliver at
	// least ~0.4 on average at generation level.
	sum := 0.0
	for _, p := range Profiles() {
		sum += p.KernelShare
	}
	avg := sum / float64(len(Profiles()))
	if avg < 0.40 {
		t.Fatalf("average configured kernel share = %g, want >= 0.40", avg)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("browser")
	if err != nil || p.Name != "browser" {
		t.Fatalf("ProfileByName(browser) = %v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if len(ProfileNames()) != len(Profiles()) {
		t.Fatal("ProfileNames length mismatch")
	}
}

func TestPhasedSource(t *testing.T) {
	a := trace.NewSliceSource([]trace.Access{{Addr: 1, Op: trace.Load, Domain: trace.User}, {Addr: 2, Op: trace.Load, Domain: trace.User}})
	b := trace.NewSliceSource([]trace.Access{{Addr: 3, Op: trace.Load, Domain: trace.Kernel}})
	ps := NewPhasedSource(2, a, b)
	got := trace.Collect(ps, 0)
	if len(got) != 3 {
		t.Fatalf("phased source yielded %d records, want 3", len(got))
	}
	if got[0].Addr != 1 || got[1].Addr != 2 || got[2].Addr != 3 {
		t.Fatalf("phased order wrong: %+v", got)
	}
}

func TestPhasedSourceQuota(t *testing.T) {
	g1, err := NewGenerator(testProfile(), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testProfile(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps := NewPhasedSource(100, g1, g2)
	got := trace.Collect(ps, 0)
	if len(got) != 200 {
		t.Fatalf("phased infinite sources yielded %d, want 200", len(got))
	}
}

func TestGenerateZeroLength(t *testing.T) {
	recs, err := Generate(testProfile(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("zero-length generate returned %d records", len(recs))
	}
}
