package experiments

import (
	"fmt"

	"mobilecache/internal/report"
	"mobilecache/internal/sim"
)

func init() {
	register("T1", "System configuration",
		"the simulated platform: core, L1s, L2 organizations, DRAM",
		runT1)
}

// runT1 renders the machine-configuration table for every standard
// scheme, the analogue of the paper's platform table.
func runT1(Options) (Result, error) {
	var res Result

	plat := report.NewTable("T1a: platform", "component", "configuration")
	plat.AddRow("core", "in-order, base CPI 1.0, 2GHz")
	plat.AddRow("L1I", "32KB, 2-way, 64B lines, SRAM, 1-cycle hit (pipelined)")
	plat.AddRow("L1D", "32KB, 4-way, 64B lines, SRAM, 2-cycle hit (pipelined), write-back")
	plat.AddRow("DRAM", "200-cycle latency, 20nJ read / 22nJ write per 64B")
	res.Tables = append(res.Tables, plat)

	tb := report.NewTable("T1b: L2 schemes under study", "scheme", "organization", "capacity", "technology")
	for _, cfg := range sim.StandardMachines() {
		switch cfg.Scheme {
		case "unified":
			tb.AddRow(cfg.Name, "unified shared L2",
				fmt.Sprintf("%dKB %d-way", cfg.Unified.SizeKB, cfg.Unified.Ways), cfg.Unified.Tech)
		case "static":
			tb.AddRow(cfg.Name, "static user/kernel partition",
				fmt.Sprintf("%dKB user + %dKB kernel", cfg.User.SizeKB, cfg.Kernel.SizeKB),
				fmt.Sprintf("%s / %s", cfg.User.Tech, cfg.Kernel.Tech))
		case "dynamic":
			tb.AddRow(cfg.Name, "dynamic way partition + gating",
				fmt.Sprintf("%dKB %d-way (powered subset)", cfg.Unified.SizeKB, cfg.Unified.Ways), cfg.Unified.Tech)
		case "drowsy":
			tb.AddRow(cfg.Name, "unified L2 with drowsy lines",
				fmt.Sprintf("%dKB %d-way", cfg.Unified.SizeKB, cfg.Unified.Ways), cfg.Unified.Tech+" (drowsy)")
		}
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("schemes", float64(len(sim.StandardMachines())))
	return res, nil
}
