package experiments

import (
	"fmt"

	"mobilecache/internal/config"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
	"mobilecache/internal/stats"
)

func init() {
	register("E13", "Replacement policy sensitivity",
		"design-choice ablation — the partitioned designs do not depend on exact LRU; approximations behave similarly",
		runE13)
	register("E14", "Baseline L2 size sweep",
		"L2 energy grows with installed capacity while the miss rate saturates — the headroom the shrink exploits",
		runE14)
	register("E15", "Idle-time sensitivity of the energy savings",
		"mobile platforms idle between interactions; the more idle time, the more leakage dominates and the larger the STT-RAM designs' savings",
		runE15)
	register("E16", "DRAM model sensitivity",
		"the headline comparison must not depend on the main-memory abstraction: flat latency vs open-page row buffers",
		runE16)
	register("E17", "L1 prefetcher sensitivity",
		"mobile cores ship next-line prefetchers, which change the L2 access mix; the headline comparison must survive one",
		runE17)
	register("E18", "Comparison against drowsy SRAM",
		"the circuit-level alternative: drowsy SRAM reduces leakage without changing technology, but the STT-RAM designs save substantially more",
		runE18)
}

// runE18 compares the paper's designs against the drowsy-SRAM
// alternative baseline across the app suite.
func runE18(opts Options) (Result, error) {
	var res Result
	schemes := []string{"baseline-sram", "baseline-drowsy", "sp-mr", "dp-sr"}
	mx, err := matrix(opts, schemes)
	if err != nil {
		return res, err
	}
	cols := append([]string{"app"}, schemes[1:]...)
	tb := report.NewTable("E18: L2 energy normalized to baseline-sram (drowsy SRAM vs STT-RAM designs)", cols...)
	norm := map[string][]float64{}
	ipcNorm := map[string][]float64{}
	for _, app := range appNames(opts) {
		base := mx["baseline-sram"][app]
		row := []string{app}
		for _, scheme := range schemes[1:] {
			v := mx[scheme][app].L2EnergyJ() / base.L2EnergyJ()
			norm[scheme] = append(norm[scheme], v)
			ipcNorm[scheme] = append(ipcNorm[scheme], mx[scheme][app].IPC()/base.IPC())
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		tb.AddRow(row...)
	}
	geo := []string{"geomean"}
	for _, scheme := range schemes[1:] {
		g := stats.GeoMean(norm[scheme])
		geo = append(geo, fmt.Sprintf("%.3f", g))
		res.addValue("norm_energy_"+scheme, g)
		res.addValue("norm_ipc_"+scheme, stats.GeoMean(ipcNorm[scheme]))
	}
	tb.AddRow(geo...)
	res.Tables = append(res.Tables, tb)
	res.addNote("drowsy SRAM saves %s of L2 energy at essentially no performance cost, but the STT-RAM designs save %s (sp-mr) and %s (dp-sr) — the technology change dominates the circuit technique",
		report.Pct(1-res.Values["norm_energy_baseline-drowsy"]),
		report.Pct(1-res.Values["norm_energy_sp-mr"]),
		report.Pct(1-res.Values["norm_energy_dp-sr"]))
	return res, nil
}

// runE13 re-runs the baseline and the static partition under every
// replacement policy.
func runE13(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	policies := []string{"lru", "plru", "srrip", "fifo", "random"}

	tb := report.NewTable(fmt.Sprintf("E13: replacement policy sensitivity (app %s)", app.Name),
		"policy", "baseline missrate", "baseline IPC", "sp missrate", "sp IPC")
	for _, pol := range policies {
		base := config.Default()
		base.Unified.Policy = pol
		bRep, err := runWorkload(opts, base, app, appSeed(opts.Seed, 0))
		if err != nil {
			return res, err
		}
		spCfg, err := sim.MachineByName("sp")
		if err != nil {
			return res, err
		}
		spCfg.User.Policy = pol
		spCfg.Kernel.Policy = pol
		sRep, err := runWorkload(opts, spCfg, app, appSeed(opts.Seed, 0))
		if err != nil {
			return res, err
		}
		tb.AddRow(pol,
			report.Pct(bRep.L2.MissRate()), fmt.Sprintf("%.4f", bRep.IPC()),
			report.Pct(sRep.L2.MissRate()), fmt.Sprintf("%.4f", sRep.IPC()))
		res.addValue("baseline_missrate_"+pol, bRep.L2.MissRate())
		res.addValue("sp_missrate_"+pol, sRep.L2.MissRate())
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("the partition's behaviour is stable across policies; LRU-family policies (lru, plru, srrip) stay within ~1 point of each other")
	return res, nil
}

// runE14 sweeps the baseline's installed capacity.
func runE14(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	sizes := []int{256, 512, 1024, 2048} // KB

	tb := report.NewTable(fmt.Sprintf("E14: unified SRAM L2 size sweep (app %s)", app.Name),
		"size", "missrate", "IPC", "L2 energy", "energy/1MB-relative")
	var oneMB float64
	var energies []float64
	for _, kb := range sizes {
		cfg := config.Default()
		cfg.Name = fmt.Sprintf("sram-%dk", kb)
		cfg.Unified.SizeKB = kb
		rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
		if err != nil {
			return res, err
		}
		e := rep.L2EnergyJ()
		energies = append(energies, e)
		if kb == 1024 {
			oneMB = e
		}
		res.addValue(fmt.Sprintf("missrate_%dk", kb), rep.L2.MissRate())
		res.addValue(fmt.Sprintf("energy_%dk", kb), e)
		tb.AddRow(fmt.Sprintf("%dKB", kb),
			report.Pct(rep.L2.MissRate()), fmt.Sprintf("%.4f", rep.IPC()),
			report.Joules(e), "")
	}
	// Fill the relative column now that the 1MB point is known.
	rel := report.NewTable("E14: energy relative to the 1MB baseline", "size", "relative energy")
	for i, kb := range sizes {
		r := 0.0
		if oneMB > 0 {
			r = energies[i] / oneMB
		}
		rel.AddRow(fmt.Sprintf("%dKB", kb), fmt.Sprintf("%.3f", r))
	}
	res.Tables = append(res.Tables, tb, rel)
	res.addNote("energy scales close to linearly with installed capacity while the miss rate saturates beyond the working set — shrinking capacity is the first-order energy lever")
	return res, nil
}

// runE16 repeats the headline comparison under the open-page DRAM
// model and reports both sets of numbers side by side.
func runE16(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]

	tb := report.NewTable(fmt.Sprintf("E16: headline comparison vs DRAM model (app %s)", app.Name),
		"scheme", "flat saving", "flat loss", "open-page saving", "open-page loss")
	type point struct{ saving, loss float64 }
	results := map[string]map[string]point{"flat": {}, "open-page": {}}
	for _, dramPolicy := range []string{"flat", "open-page"} {
		baseCfg, err := sim.MachineByName("baseline-sram")
		if err != nil {
			return res, err
		}
		baseCfg.DRAM.Policy = dramPolicy
		base, err := runWorkload(opts, baseCfg, app, appSeed(opts.Seed, 0))
		if err != nil {
			return res, err
		}
		for _, scheme := range []string{"sp-mr", "dp-sr"} {
			cfg, err := sim.MachineByName(scheme)
			if err != nil {
				return res, err
			}
			cfg.DRAM.Policy = dramPolicy
			rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
			if err != nil {
				return res, err
			}
			results[dramPolicy][scheme] = point{
				saving: 1 - rep.L2EnergyJ()/base.L2EnergyJ(),
				loss:   1 - rep.IPC()/base.IPC(),
			}
		}
	}
	for _, scheme := range []string{"sp-mr", "dp-sr"} {
		f, o := results["flat"][scheme], results["open-page"][scheme]
		tb.AddRow(scheme,
			report.Pct(f.saving), report.Pct(f.loss),
			report.Pct(o.saving), report.Pct(o.loss))
		res.addValue("flat_saving_"+scheme, f.saving)
		res.addValue("openpage_saving_"+scheme, o.saving)
		res.addValue("flat_loss_"+scheme, f.loss)
		res.addValue("openpage_loss_"+scheme, o.loss)
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("savings under the open-page model stay within a few points of the flat model — the L2 conclusions are not artifacts of the DRAM abstraction")
	return res, nil
}

// runE17 repeats the headline comparison with the L1 next-line
// prefetcher enabled.
func runE17(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]

	tb := report.NewTable(fmt.Sprintf("E17: headline comparison vs L1 prefetching (app %s)", app.Name),
		"scheme", "no-pf saving", "no-pf loss", "pf saving", "pf loss")
	type point struct{ saving, loss float64 }
	results := map[bool]map[string]point{false: {}, true: {}}
	var pfBaseIPC, noPfBaseIPC float64
	for _, pf := range []bool{false, true} {
		baseCfg, err := sim.MachineByName("baseline-sram")
		if err != nil {
			return res, err
		}
		baseCfg.Prefetch = pf
		base, err := runWorkload(opts, baseCfg, app, appSeed(opts.Seed, 0))
		if err != nil {
			return res, err
		}
		if pf {
			pfBaseIPC = base.IPC()
		} else {
			noPfBaseIPC = base.IPC()
		}
		for _, scheme := range []string{"sp-mr", "dp-sr"} {
			cfg, err := sim.MachineByName(scheme)
			if err != nil {
				return res, err
			}
			cfg.Prefetch = pf
			rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
			if err != nil {
				return res, err
			}
			results[pf][scheme] = point{
				saving: 1 - rep.L2EnergyJ()/base.L2EnergyJ(),
				loss:   1 - rep.IPC()/base.IPC(),
			}
		}
	}
	for _, scheme := range []string{"sp-mr", "dp-sr"} {
		n, p := results[false][scheme], results[true][scheme]
		tb.AddRow(scheme,
			report.Pct(n.saving), report.Pct(n.loss),
			report.Pct(p.saving), report.Pct(p.loss))
		res.addValue("nopf_saving_"+scheme, n.saving)
		res.addValue("pf_saving_"+scheme, p.saving)
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("base_ipc_gain_from_pf", pfBaseIPC/noPfBaseIPC-1)
	res.addNote("the prefetcher lifts baseline IPC by %.1f%% and shifts the L2 access mix, but the savings comparison is unchanged in shape",
		(pfBaseIPC/noPfBaseIPC-1)*100)
	return res, nil
}

// runE15 sweeps the idle share of the workload and tracks each
// scheme's saving.
func runE15(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	// Idle stretches every 1000 accesses; sweep their length.
	idleCycles := []uint64{0, 50_000, 200_000, 800_000}

	tb := report.NewTable(fmt.Sprintf("E15: energy saving vs idle time (app %s)", app.Name),
		"idle frac", "baseline energy", "sp-mr saving", "dp-sr saving")
	var firstSPMR, lastSPMR float64
	for i, idle := range idleCycles {
		var baseE float64
		var idleFrac float64
		savings := map[string]float64{}
		for _, scheme := range []string{"baseline-sram", "sp-mr", "dp-sr"} {
			cfg, err := sim.MachineByName(scheme)
			if err != nil {
				return res, err
			}
			cfg.IdleEvery = 1000
			cfg.IdleCycles = idle
			rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
			if err != nil {
				return res, err
			}
			if scheme == "baseline-sram" {
				baseE = rep.L2EnergyJ()
				if w := rep.CPU.WallCycles(); w > 0 {
					idleFrac = float64(rep.CPU.IdleCycles) / float64(w)
				}
			} else {
				savings[scheme] = 1 - rep.L2EnergyJ()/baseE
			}
		}
		tb.AddRow(report.Pct(idleFrac), report.Joules(baseE),
			report.Pct(savings["sp-mr"]), report.Pct(savings["dp-sr"]))
		res.addValue(fmt.Sprintf("spmr_saving_idle%d", idle), savings["sp-mr"])
		res.addValue(fmt.Sprintf("dpsr_saving_idle%d", idle), savings["dp-sr"])
		if i == 0 {
			firstSPMR = savings["sp-mr"]
		}
		lastSPMR = savings["sp-mr"]
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("spmr_saving_active", firstSPMR)
	res.addValue("spmr_saving_idlest", lastSPMR)
	res.addNote("savings grow with idle share (from %s to %s for sp-mr): idle platforms are pure leakage, exactly where STT-RAM wins most",
		report.Pct(firstSPMR), report.Pct(lastSPMR))
	return res, nil
}
