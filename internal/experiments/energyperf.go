package experiments

import (
	"fmt"

	"mobilecache/internal/energy"
	"mobilecache/internal/report"
	"mobilecache/internal/stats"
)

func init() {
	register("E5", "SRAM / STT-RAM technology parameters",
		"table of read/write energy, latency, leakage and retention per technology",
		runE5)
	register("E6", "L2 energy breakdown per scheme",
		"SRAM energy is leakage-dominated; STT-RAM trades leakage for write and refresh energy",
		runE6)
	register("E7", "Normalized L2 energy per app and scheme",
		"static technique reduces cache energy by ~75%; dynamic technique by ~85%",
		runE7)
	register("E8", "Performance (IPC) per app and scheme",
		"static technique loses ~2% performance; dynamic technique ~3%",
		runE8)
	register("T2", "Summary: energy savings and performance loss",
		"static: 75% energy saving at 2% performance loss; dynamic: 85% at 3%",
		runT2)
}

// runE5 renders the technology table (the paper's parameters table).
func runE5(Options) (Result, error) {
	var res Result
	tb := report.NewTable("E5: technology parameters (64B line, 1MB bank, 2GHz clock)",
		"tech", "read (pJ)", "write (pJ)", "read (cyc)", "write (cyc)", "leakage (mW/MB)", "retention")
	for _, p := range energy.AllDefaultParams() {
		ret := "unbounded"
		if p.RetentionCycles > 0 {
			ret = fmt.Sprintf("%.3gs", p.RetentionSeconds)
		}
		tb.AddRow(p.Tech.String(),
			fmt.Sprintf("%.0f", p.ReadPJ), fmt.Sprintf("%.0f", p.WritePJ),
			fmt.Sprint(p.ReadCycles), fmt.Sprint(p.WriteCycles),
			fmt.Sprintf("%.0f", p.LeakageMWPerMB), ret)
	}
	res.Tables = append(res.Tables, tb)
	sram := energy.DefaultParams(energy.SRAM)
	stt := energy.DefaultParams(energy.STTLong)
	res.addValue("leakage_ratio_sram_over_stt", sram.LeakageMWPerMB/stt.LeakageMWPerMB)
	res.addNote("SRAM leaks %.0fx more than STT-RAM per MB; STT-RAM writes cost %.1fx-%.1fx an SRAM write",
		sram.LeakageMWPerMB/stt.LeakageMWPerMB,
		energy.DefaultParams(energy.STTShort).WritePJ/sram.WritePJ,
		stt.WritePJ/sram.WritePJ)
	return res, nil
}

// runE6 breaks the L2 energy of every scheme into its buckets on a
// representative app.
func runE6(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	sub := opts
	sub.Apps = opts.Apps[:1]
	mx, err := matrix(sub, allSchemes)
	if err != nil {
		return res, err
	}
	tb := report.NewTable(fmt.Sprintf("E6: L2 energy breakdown on %s", app.Name),
		"scheme", "read", "write", "leakage", "refresh", "total", "powered")
	base := mx["baseline-sram"][app.Name].L2EnergyJ()
	for _, scheme := range allSchemes {
		rep := mx[scheme][app.Name]
		bd := rep.Energy.L2
		tb.AddRow(scheme,
			report.Joules(bd.ReadJ), report.Joules(bd.WriteJ),
			report.Joules(bd.LeakageJ), report.Joules(bd.RefreshJ),
			report.Joules(bd.Total()), report.Bytes(rep.L2PoweredBytes))
		res.addValue("total_"+scheme, bd.Total())
		res.addValue("leakfrac_"+scheme, bd.LeakageJ/bd.Total())
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("baseline L2 energy is %s of which %s leakage; every proposed scheme attacks that term",
		report.Joules(base), report.Pct(mx["baseline-sram"][app.Name].Energy.L2.LeakageJ/base))
	return res, nil
}

// runE7 is the headline figure: normalized L2 energy, all apps x all
// schemes, geometric mean at the bottom.
func runE7(opts Options) (Result, error) {
	var res Result
	mx, err := matrix(opts, allSchemes)
	if err != nil {
		return res, err
	}
	cols := append([]string{"app"}, allSchemes...)
	tb := report.NewTable("E7: L2 energy normalized to baseline-sram", cols...)
	norm := map[string][]float64{}
	for _, app := range appNames(opts) {
		base := mx["baseline-sram"][app].L2EnergyJ()
		row := []string{app}
		for _, scheme := range allSchemes {
			v := mx[scheme][app].L2EnergyJ() / base
			norm[scheme] = append(norm[scheme], v)
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		tb.AddRow(row...)
	}
	geo := []string{"geomean"}
	for _, scheme := range allSchemes {
		g := stats.GeoMean(norm[scheme])
		geo = append(geo, fmt.Sprintf("%.3f", g))
		res.addValue("norm_energy_"+scheme, g)
		res.addValue("saving_"+scheme, 1-g)
	}
	tb.AddRow(geo...)
	res.Tables = append(res.Tables, tb)
	if svg, err := report.SVGGroupedBars(
		"L2 energy normalized to baseline-sram", "normalized energy",
		appNames(opts), norm, allSchemes[1:]); err == nil {
		res.addFigure("e7_normalized_energy.svg", svg)
	}
	res.addNote("static multi-retention (sp-mr) saves %s of L2 energy; dynamic short-retention (dp-sr) saves %s (paper: ~75%% and ~85%%)",
		report.Pct(res.Values["saving_sp-mr"]), report.Pct(res.Values["saving_dp-sr"]))
	return res, nil
}

// runE8 is the companion performance figure: normalized IPC.
func runE8(opts Options) (Result, error) {
	var res Result
	mx, err := matrix(opts, allSchemes)
	if err != nil {
		return res, err
	}
	cols := append([]string{"app"}, allSchemes...)
	tb := report.NewTable("E8: IPC normalized to baseline-sram", cols...)
	norm := map[string][]float64{}
	for _, app := range appNames(opts) {
		base := mx["baseline-sram"][app].IPC()
		row := []string{app}
		for _, scheme := range allSchemes {
			v := mx[scheme][app].IPC() / base
			norm[scheme] = append(norm[scheme], v)
			row = append(row, fmt.Sprintf("%.4f", v))
		}
		tb.AddRow(row...)
	}
	geo := []string{"geomean"}
	for _, scheme := range allSchemes {
		g := stats.GeoMean(norm[scheme])
		geo = append(geo, fmt.Sprintf("%.4f", g))
		res.addValue("norm_ipc_"+scheme, g)
		res.addValue("perf_loss_"+scheme, 1-g)
	}
	tb.AddRow(geo...)
	res.Tables = append(res.Tables, tb)
	res.addNote("performance loss: sp-mr %s, dp-sr %s (paper: ~2%% and ~3%%)",
		report.Pct(res.Values["perf_loss_sp-mr"]), report.Pct(res.Values["perf_loss_dp-sr"]))
	return res, nil
}

// runT2 condenses E7+E8 into the paper's summary claims.
func runT2(opts Options) (Result, error) {
	var res Result
	mx, err := matrix(opts, allSchemes)
	if err != nil {
		return res, err
	}
	tb := report.NewTable("T2: summary (geomean over apps, vs baseline-sram)",
		"scheme", "L2 energy saving", "performance loss", "paper energy", "paper perf loss")
	paperEnergy := map[string]string{"sp": "-", "sp-mr": "75%", "dp": "-", "dp-sr": "85%"}
	paperPerf := map[string]string{"sp": "-", "sp-mr": "2%", "dp": "-", "dp-sr": "3%"}
	for _, scheme := range proposedSchemes {
		var normE, normI []float64
		for _, app := range appNames(opts) {
			base := mx["baseline-sram"][app]
			rep := mx[scheme][app]
			normE = append(normE, rep.L2EnergyJ()/base.L2EnergyJ())
			normI = append(normI, rep.IPC()/base.IPC())
		}
		saving := 1 - stats.GeoMean(normE)
		loss := 1 - stats.GeoMean(normI)
		tb.AddRow(scheme, report.Pct(saving), report.Pct(loss), paperEnergy[scheme], paperPerf[scheme])
		res.addValue("saving_"+scheme, saving)
		res.addValue("perf_loss_"+scheme, loss)
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("shape check: savings grow baseline < sp < sp-mr <= dp-sr with low single-digit performance loss")
	return res, nil
}
