package experiments

import (
	"strings"
	"testing"

	"mobilecache/internal/invariant"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
)

// The PR's accuracy gate: at the default 1/8 low-bit spec, every
// standard machine's aggregate L2 miss rate and total energy stay
// within 2% of the exact simulation over the quick-matrix grid. Runs
// under strict audit so both arms are also invariant-checked.
func TestSampleValidationQuickMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation grid is slow; run without -short")
	}
	t.Cleanup(sim.SetAuditMode(invariant.ModeStrict))
	v, err := ValidateSample(QuickOptions(), sample.Spec{Factor: 8}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sim.StandardMachines()); len(v.Machines) != want {
		t.Fatalf("%d machines validated, want %d", len(v.Machines), want)
	}
	for _, m := range v.Machines {
		t.Logf("%-14s miss rate %.4f→%.4f (%.2f%%)  energy %.3e→%.3e (%.2f%%)",
			m.Machine, m.FullMissRate, m.SampledMissRate, 100*m.MissRateRelErr,
			m.FullEnergyJ, m.SampledEnergyJ, 100*m.EnergyRelErr)
	}
	if err := v.Err(); err != nil {
		t.Errorf("1/8 sampling breaches the 2%% bound: %v", err)
	}
}

// Options.Validate rejects malformed sampling specs before any cell
// runs, and ValidateSample propagates that rejection.
func TestSampleOptionsValidation(t *testing.T) {
	opts := QuickOptions()
	opts.Sample = sample.Spec{Factor: 3}
	if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("factor 3 accepted or wrong error: %v", err)
	}
	if _, err := ValidateSample(opts, sample.Spec{Factor: 8}, 0.02); err == nil {
		t.Error("ValidateSample accepted options with an invalid spec")
	}
}

// Sampled experiment runs flow through the same registry entry points:
// a representative experiment runs end to end with sampling enabled
// and produces the same table shape as the exact run.
func TestExperimentRunsSampled(t *testing.T) {
	opts := QuickOptions()
	opts.Accesses = 20_000
	full, err := Run("E1", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Sample = sample.Spec{Factor: 8}
	samp, err := Run("E1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(samp.Tables) != len(full.Tables) {
		t.Fatalf("sampled run produced %d tables, full %d", len(samp.Tables), len(full.Tables))
	}
	for name, fv := range full.Values {
		sv, ok := samp.Values[name]
		if !ok {
			t.Errorf("sampled run missing value %q", name)
			continue
		}
		if fv != 0 {
			if d := (sv - fv) / fv; d > 0.25 || d < -0.25 {
				t.Errorf("value %q drifts %.1f%% under 1/8 sampling (full %g sampled %g)",
					name, 100*d, fv, sv)
			}
		}
	}
}
