package experiments

import (
	"fmt"

	"mobilecache/internal/report"
	"mobilecache/internal/stats"
)

func init() {
	register("T3", "Seed robustness of the headline results",
		"the savings/loss comparison must not depend on one particular synthetic trace instantiation",
		runT3)
}

// runT3 repeats the T2 comparison across several workload seeds and
// reports mean and standard deviation of each scheme's saving and loss.
func runT3(opts Options) (Result, error) {
	var res Result
	seeds := []uint64{opts.Seed, opts.Seed + 100, opts.Seed + 200}

	type agg struct{ saving, loss stats.Mean }
	byScheme := map[string]*agg{}
	for _, s := range proposedSchemes {
		byScheme[s] = &agg{}
	}

	for _, seed := range seeds {
		sub := opts
		sub.Seed = seed
		mx, err := matrix(sub, allSchemes)
		if err != nil {
			return res, err
		}
		for _, scheme := range proposedSchemes {
			var normE, normI []float64
			for _, app := range appNames(sub) {
				base := mx["baseline-sram"][app]
				rep := mx[scheme][app]
				normE = append(normE, rep.L2EnergyJ()/base.L2EnergyJ())
				normI = append(normI, rep.IPC()/base.IPC())
			}
			byScheme[scheme].saving.Observe(1 - stats.GeoMean(normE))
			byScheme[scheme].loss.Observe(1 - stats.GeoMean(normI))
		}
	}

	tb := report.NewTable(fmt.Sprintf("T3: robustness over %d seeds (geomean over apps per seed)", len(seeds)),
		"scheme", "saving mean", "saving stddev", "loss mean", "loss stddev")
	for _, scheme := range proposedSchemes {
		a := byScheme[scheme]
		tb.AddRow(scheme,
			report.Pct(a.saving.Value()), fmt.Sprintf("%.4f", a.saving.StdDev()),
			report.Pct(a.loss.Value()), fmt.Sprintf("%.4f", a.loss.StdDev()))
		res.addValue("saving_mean_"+scheme, a.saving.Value())
		res.addValue("saving_stddev_"+scheme, a.saving.StdDev())
		res.addValue("loss_mean_"+scheme, a.loss.Value())
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("saving standard deviations across seeds are ~%.3f for sp-mr and ~%.3f for dp-sr — the conclusions do not hinge on one trace draw",
		byScheme["sp-mr"].saving.StdDev(), byScheme["dp-sr"].saving.StdDev())
	return res, nil
}
