package experiments

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/config"
	"mobilecache/internal/core"
	"mobilecache/internal/energy"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func init() {
	register("E1", "Kernel share of L2 accesses per app",
		"more than 40% of L2 cache accesses are OS kernel accesses on average",
		runE1)
	register("E2", "User/kernel interference in the shared L2",
		"kernel accesses cause unnecessary replacements of user blocks and vice versa, inflating the L2 miss rate",
		runE2)
	register("E3", "Miss rate vs. segment size (static partition sizing)",
		"partitioned segments can shrink the total capacity below the baseline while keeping a similar miss rate",
		runE3)
	register("E4", "Block lifetime and write-interval distributions per segment",
		"kernel blocks live briefly and are rewritten often; user blocks live longer — motivating multi-retention STT-RAM",
		runE4)
}

// runE1 reproduces the motivation figure: the kernel fraction of L2
// accesses for each interactive app on the baseline machine.
func runE1(opts Options) (Result, error) {
	var res Result
	tb := report.NewTable("E1: kernel share of L2 accesses (baseline 1MB SRAM L2)",
		"app", "L2 accesses", "kernel share", "trace kernel share")
	sum := 0.0
	for i, app := range opts.Apps {
		rep, err := runWorkload(opts, config.Default(), app, appSeed(opts.Seed, i))
		if err != nil {
			return res, err
		}
		share := rep.L2.KernelShare()
		sum += share
		// Trace-level share for contrast (L1 filtering shifts it).
		recs, err := workload.Generate(app, appSeed(opts.Seed, i), opts.Accesses)
		if err != nil {
			return res, err
		}
		traceShare := trace.Summarize(trace.NewSliceSource(recs)).KernelShare()
		tb.AddRow(app.Name, fmt.Sprint(rep.L2.TotalAccesses()), report.Pct(share), report.Pct(traceShare))
		res.addValue("l2_kernel_share_"+app.Name, share)
	}
	avg := sum / float64(len(opts.Apps))
	tb.AddRow("average", "", report.Pct(avg), "")
	res.Tables = append(res.Tables, tb)
	res.addValue("avg_l2_kernel_share", avg)
	res.addNote("average kernel share of L2 accesses: %s (paper: >40%%)", report.Pct(avg))
	return res, nil
}

// runE2 quantifies cross-domain interference: the shared baseline vs a
// same-total-capacity static partition (512KB+512KB), so the only
// change is isolation.
func runE2(opts Options) (Result, error) {
	var res Result
	iso := config.Default()
	iso.Name = "sp-equal"
	iso.Scheme = config.SchemeStatic
	iso.Unified = nil
	iso.User = &config.Segment{Name: "L2-user", SizeKB: 512, Ways: 16, BlockBytes: 64, Policy: "lru", Tech: "sram", Refresh: "dirty-only"}
	iso.Kernel = &config.Segment{Name: "L2-kernel", SizeKB: 512, Ways: 16, BlockBytes: 64, Policy: "lru", Tech: "sram", Refresh: "dirty-only"}

	tb := report.NewTable("E2: interference in the shared L2 (1MB shared vs 512KB+512KB isolated)",
		"app", "shared missrate", "isolated missrate", "interference evictions", "per 1k accesses")
	var missDeltaSum, interfSum float64
	for i, app := range opts.Apps {
		seed := appSeed(opts.Seed, i)
		shared, err := runWorkload(opts, config.Default(), app, seed)
		if err != nil {
			return res, err
		}
		isolated, err := runWorkload(opts, iso, app, seed)
		if err != nil {
			return res, err
		}
		per1k := float64(shared.L2.InterferenceEvictions) / float64(shared.L2.TotalAccesses()) * 1000
		tb.AddRow(app.Name,
			report.Pct(shared.L2.MissRate()),
			report.Pct(isolated.L2.MissRate()),
			fmt.Sprint(shared.L2.InterferenceEvictions),
			fmt.Sprintf("%.1f", per1k))
		missDeltaSum += shared.L2.MissRate() - isolated.L2.MissRate()
		interfSum += per1k
	}
	res.Tables = append(res.Tables, tb)
	n := float64(len(opts.Apps))
	res.addValue("avg_missrate_delta", missDeltaSum/n)
	res.addValue("avg_interference_per_1k", interfSum/n)
	res.addNote("isolating the domains removes all %0.f interference evictions per 1k L2 accesses (avg) and changes the miss rate by %+.2f points",
		interfSum/n, missDeltaSum/n*100)
	return res, nil
}

// runE3 runs the sizing search on a representative app's captured L2
// stream: the per-domain miss curves and the chosen shrunk segments.
func runE3(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]

	// Capture the L2-level stream from a baseline run.
	m, err := sim.Build(config.Default())
	if err != nil {
		return res, err
	}
	var l2stream []trace.Access
	m.Hier.L2Tap = func(a trace.Access) { l2stream = append(l2stream, a) }
	gen, err := workload.NewGenerator(app, appSeed(opts.Seed, 0), uint64(opts.Accesses/maxInt(app.Phases, 1)))
	if err != nil {
		return res, err
	}
	sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, opts.Accesses), 0)

	baseline := core.SegmentConfig{Name: "base", SizeBytes: 1024 * 1024, Ways: 16, BlockBytes: 64, Policy: cache.LRU}
	candidates := []uint64{64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024}
	sizing, err := core.ChooseStaticSizes(l2stream, baseline, candidates, 0.02)
	if err != nil {
		return res, err
	}

	tb := report.NewTable(fmt.Sprintf("E3: miss rate vs segment size (app %s, %d L2 accesses)", app.Name, len(l2stream)),
		"segment size", "user missrate", "kernel missrate")
	for i := range sizing.UserCurve {
		tb.AddRow(report.Bytes(sizing.UserCurve[i].SizeBytes),
			report.Pct(sizing.UserCurve[i].MissRate),
			report.Pct(sizing.KernelCurve[i].MissRate))
	}
	res.Tables = append(res.Tables, tb)

	pick := report.NewTable("E3: chosen partition (tolerance 2 points of miss rate)",
		"quantity", "value")
	pick.AddRow("baseline miss rate", report.Pct(sizing.BaselineMissRate))
	pick.AddRow("chosen user segment", report.Bytes(sizing.UserSize))
	pick.AddRow("chosen kernel segment", report.Bytes(sizing.KernelSize))
	pick.AddRow("partition total", report.Bytes(sizing.TotalSize()))
	pick.AddRow("partition miss rate", report.Pct(sizing.CombinedMissRate))
	res.Tables = append(res.Tables, pick)

	res.addValue("baseline_missrate", sizing.BaselineMissRate)
	res.addValue("partition_missrate", sizing.CombinedMissRate)
	res.addValue("total_size_bytes", float64(sizing.TotalSize()))
	res.addValue("shrink_fraction", 1-float64(sizing.TotalSize())/float64(baseline.SizeBytes))
	res.addNote("the partition needs %s vs the 1MB baseline (%.0f%% smaller) at a %.2f-point miss-rate change",
		report.Bytes(sizing.TotalSize()),
		(1-float64(sizing.TotalSize())/float64(baseline.SizeBytes))*100,
		(sizing.CombinedMissRate-sizing.BaselineMissRate)*100)
	return res, nil
}

// runE4 measures per-segment block lifetimes and write intervals on the
// static partition, the behaviour gap that motivates multi-retention
// STT-RAM.
func runE4(opts Options) (Result, error) {
	var res Result
	spCfg, err := sim.MachineByName("sp")
	if err != nil {
		return res, err
	}

	shortRet := energy.DefaultParams(energy.STTShort).RetentionCycles
	msRet := energy.Cycles(2.65e-3) // the ms-class point the DP-SR design uses
	medRet := energy.DefaultParams(energy.STTMedium).RetentionCycles
	shortExp := log2ceil(shortRet)
	msExp := log2ceil(msRet)
	medExp := log2ceil(medRet)

	tb := report.NewTable("E4: block lifetime and write-interval behaviour per segment",
		"app", "segment", "mean lifetime (cyc)", "P[life<short-ret]", "P[life<ms-ret]", "P[life<med-ret]", "mean write gap (cyc)")
	var userBelowMed, kernelBelowShort, kernelBelowMs, userBelowMs float64
	var userGap, kernelGap, userLife, kernelLife float64
	for i, app := range opts.Apps {
		m, err := sim.Build(spCfg)
		if err != nil {
			return res, err
		}
		gen, err := workload.NewGenerator(app, appSeed(opts.Seed, i), uint64(opts.Accesses/maxInt(app.Phases, 1)))
		if err != nil {
			return res, err
		}
		sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, opts.Accesses), 0)
		runCycles := float64(m.CPU.Now())
		for _, d := range []trace.Domain{trace.User, trace.Kernel} {
			cs := m.Static.SegmentCache(d).Stats()
			lt := cs.Lifetimes[d]
			wi := cs.WriteIntervals[d]
			// A segment with no evictions means every block outlived
			// the run: treat its lifetime as the whole run (a lower
			// bound) and its sub-retention CDFs per the run length.
			mean := lt.Mean()
			belowShort, belowMs, belowMed := lt.CDFBelow(shortExp), lt.CDFBelow(msExp), lt.CDFBelow(medExp)
			if lt.Total == 0 {
				mean = runCycles
				belowShort = boolToFrac(runCycles < float64(shortRet))
				belowMs = boolToFrac(runCycles < float64(msRet))
				belowMed = boolToFrac(runCycles < float64(medRet))
			}
			tb.AddRow(app.Name, d.String(),
				fmt.Sprintf("%.0f", mean),
				report.Pct(belowShort),
				report.Pct(belowMs),
				report.Pct(belowMed),
				fmt.Sprintf("%.0f", wi.Mean()))
			if d == trace.User {
				userBelowMed += belowMed
				userBelowMs += belowMs
				userGap += wi.Mean()
				userLife += mean
			} else {
				kernelBelowShort += belowShort
				kernelBelowMs += belowMs
				kernelGap += wi.Mean()
				kernelLife += mean
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	n := float64(len(opts.Apps))
	res.addValue("kernel_life_below_short_ret", kernelBelowShort/n)
	res.addValue("kernel_life_below_ms_ret", kernelBelowMs/n)
	res.addValue("user_life_below_ms_ret", userBelowMs/n)
	res.addValue("user_life_below_med_ret", userBelowMed/n)
	res.addValue("kernel_mean_write_gap", kernelGap/n)
	res.addValue("user_mean_write_gap", userGap/n)
	res.addValue("kernel_mean_lifetime", kernelLife/n)
	res.addValue("user_mean_lifetime", userLife/n)
	res.addNote("kernel blocks live %.0f cycles on average vs %.0f for user blocks; %s of kernel and %s of user lifetimes fit a millisecond retention window",
		kernelLife/n, userLife/n, report.Pct(kernelBelowMs/n), report.Pct(userBelowMs/n))
	return res, nil
}

func boolToFrac(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func log2ceil(x uint64) int {
	n := 0
	for (uint64(1) << uint(n)) < x {
		n++
	}
	return n
}
