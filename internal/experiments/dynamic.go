package experiments

import (
	"fmt"

	"mobilecache/internal/config"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func init() {
	register("E9", "Dynamic partition adaptation over time",
		"the controller tracks per-domain demand, reallocating and gating ways as the workload's phases change",
		runE9)
	register("E12", "Dynamic controller ablation: epoch length and slack",
		"design-choice ablation — repartition interval and miss-rate slack trade energy against performance",
		runE12)
}

// runE9 drives the dynamic design with a session that moves across
// three apps and reports the way-allocation trajectory.
func runE9(opts Options) (Result, error) {
	var res Result
	cfg, err := sim.MachineByName("dp")
	if err != nil {
		return res, err
	}
	m, err := sim.Build(cfg)
	if err != nil {
		return res, err
	}

	// A usage session: up to three apps back to back.
	apps := opts.Apps
	if len(apps) > 3 {
		apps = apps[:3]
	}
	var gens []trace.Source
	names := ""
	for i, app := range apps {
		g, err := workload.NewGenerator(app, appSeed(opts.Seed, i), uint64(opts.Accesses/maxInt(app.Phases, 1)))
		if err != nil {
			return res, err
		}
		gens = append(gens, g)
		if i > 0 {
			names += " -> "
		}
		names += app.Name
	}
	src := workload.NewPhasedSource(opts.Accesses, gens...)
	rep := sim.RunTrace(m, names, src, 0)

	hist := rep.History
	tb := report.NewTable(fmt.Sprintf("E9: partition trajectory over session %q", names),
		"epoch", "at access", "user ways", "kernel ways", "gated ways", "est missrate")
	// Sample up to 24 rows evenly so long runs stay readable.
	step := maxInt(len(hist)/24, 1)
	for i := 0; i < len(hist); i += step {
		d := hist[i]
		tb.AddRow(fmt.Sprint(d.Epoch), fmt.Sprint(d.AtAccess),
			fmt.Sprint(d.UserWays), fmt.Sprint(d.KernelWays), fmt.Sprint(d.GatedWays),
			report.Pct(d.EstimatedMissRate))
	}
	res.Tables = append(res.Tables, tb)

	if len(hist) >= 2 {
		xs := make([]float64, len(hist))
		series := map[string][]float64{"user ways": {}, "kernel ways": {}, "gated ways": {}}
		for i, d := range hist {
			xs[i] = float64(d.AtAccess)
			series["user ways"] = append(series["user ways"], float64(d.UserWays))
			series["kernel ways"] = append(series["kernel ways"], float64(d.KernelWays))
			series["gated ways"] = append(series["gated ways"], float64(d.GatedWays))
		}
		if svg, err := report.SVGStepLines(
			"Dynamic partition allocation over the session", "ways",
			xs, series, []string{"user ways", "kernel ways", "gated ways"}); err == nil {
			res.addFigure("e9_adaptation.svg", svg)
		}
	}

	minPow, maxPow := 16, 0
	distinct := map[[2]int]bool{}
	gatedEpochs := 0
	for _, d := range hist {
		p := d.UserWays + d.KernelWays
		if p < minPow {
			minPow = p
		}
		if p > maxPow {
			maxPow = p
		}
		distinct[[2]int{d.UserWays, d.KernelWays}] = true
		if d.GatedWays > 0 {
			gatedEpochs++
		}
	}
	res.addValue("epochs", float64(len(hist)))
	res.addValue("distinct_allocations", float64(len(distinct)))
	res.addValue("min_powered_ways", float64(minPow))
	res.addValue("max_powered_ways", float64(maxPow))
	res.addValue("gated_epoch_fraction", float64(gatedEpochs)/float64(maxInt(len(hist), 1)))
	res.addValue("flush_writebacks", float64(rep.FlushWritebacks))
	res.addNote("across %d epochs the controller used %d distinct allocations, powering between %d and %d of 16 ways",
		len(hist), len(distinct), minPow, maxPow)
	return res, nil
}

// runE12 sweeps the controller's epoch length and slack on a
// representative app.
func runE12(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	baseCfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		return res, err
	}
	base, err := runWorkload(opts, baseCfg, app, appSeed(opts.Seed, 0))
	if err != nil {
		return res, err
	}

	tb := report.NewTable(fmt.Sprintf("E12: dynamic controller ablation on %s (vs baseline-sram)", app.Name),
		"epoch accesses", "slack", "norm energy", "norm IPC", "avg powered ways", "flush writebacks")
	epochs := []uint64{10_000, 50_000, 200_000}
	slacks := []float64{0.001, 0.005, 0.02}
	bestEnergy, worstEnergy := 10.0, 0.0
	for _, ep := range epochs {
		for _, sl := range slacks {
			cfg, err := sim.MachineByName("dp")
			if err != nil {
				return res, err
			}
			cfg.Dynamic = &config.Dynamic{EpochAccesses: ep, Slack: sl}
			rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
			if err != nil {
				return res, err
			}
			normE := rep.L2EnergyJ() / base.L2EnergyJ()
			normI := rep.IPC() / base.IPC()
			avgWays := 0.0
			for _, d := range rep.History {
				avgWays += float64(d.UserWays + d.KernelWays)
			}
			if len(rep.History) > 0 {
				avgWays /= float64(len(rep.History))
			}
			tb.AddRow(fmt.Sprint(ep), fmt.Sprintf("%.3f", sl),
				fmt.Sprintf("%.3f", normE), fmt.Sprintf("%.4f", normI),
				fmt.Sprintf("%.1f", avgWays), fmt.Sprint(rep.FlushWritebacks))
			res.addValue(fmt.Sprintf("norm_energy_ep%d_sl%g", ep, sl), normE)
			res.addValue(fmt.Sprintf("norm_ipc_ep%d_sl%g", ep, sl), normI)
			if normE < bestEnergy {
				bestEnergy = normE
			}
			if normE > worstEnergy {
				worstEnergy = normE
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("best_norm_energy", bestEnergy)
	res.addValue("worst_norm_energy", worstEnergy)
	res.addNote("controller knobs move normalized L2 energy between %.3f and %.3f; larger slack gates more ways at a small IPC cost",
		bestEnergy, worstEnergy)
	return res, nil
}
