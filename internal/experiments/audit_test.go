package experiments

import (
	"testing"

	"mobilecache/internal/invariant"
	"mobilecache/internal/sim"
)

// TestGoldenAuditQuickMatrix is the CI golden-audit gate: the full
// 7-machine x 3-app quick matrix must come back conservation-clean
// under strict audit. Any miscounted counter anywhere in the
// simulator fails this test with the exact violated invariant.
func TestGoldenAuditQuickMatrix(t *testing.T) {
	restore := sim.SetAuditMode(invariant.ModeStrict)
	t.Cleanup(restore)

	opts := QuickOptions()
	reports, err := matrix(opts, sim.StandardMachineNames())
	if err != nil {
		t.Fatalf("quick matrix failed under strict audit: %v", err)
	}
	// Strict mode already failed the run on any violation; belt and
	// braces, re-audit every report explicitly so the test also covers
	// the Audit entry point experiments use.
	n := 0
	for machine, byApp := range reports {
		for app, rep := range byApp {
			if vs := sim.Audit(rep); len(vs) != 0 {
				t.Errorf("%s/%s: %v", machine, app, vs)
			}
			n++
		}
	}
	if want := len(sim.StandardMachineNames()) * len(opts.Apps); n != want {
		t.Fatalf("audited %d reports, want %d", n, want)
	}
}
