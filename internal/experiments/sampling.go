package experiments

import (
	"context"

	"mobilecache/internal/engine"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
)

// ValidateSample compares sampled against exact simulation on the
// standard validation grid: every standard machine × the option's apps
// × two seed bases, at the option's trace length. Two seed bases are
// part of the methodology, not padding — the adaptive schemes (dp,
// dp-sr) make epoch-boundary partition decisions whose timing shifts
// by ~1% under sampling, and a single unlucky flip can move one
// machine's aggregate energy past a tight tolerance. Aggregating two
// independent trace realisations averages that estimator variance
// down; EXPERIMENTS.md tabulates the measured errors.
//
// Execution errors (a cell failing to simulate) are returned as err;
// tolerance breaches are reported by the validation's Err method so
// callers can print the per-machine table either way.
func ValidateSample(opts Options, spec sample.Spec, tol float64) (engine.SampleValidation, error) {
	if err := opts.Validate(); err != nil {
		return engine.SampleValidation{}, err
	}
	var cells []engine.Cell
	for _, cfg := range sim.StandardMachines() {
		for i, app := range opts.Apps {
			for _, base := range []uint64{opts.Seed, opts.Seed + 1} {
				cells = append(cells, engine.Cell{
					Machine: cfg.Name, Config: cfg, App: app.Name, Profile: app,
					Seed: appSeed(base, i),
				})
			}
		}
	}
	plan := engine.Plan{Cells: cells, Accesses: opts.Accesses}
	return opts.eng().ValidateSample(context.Background(), plan, spec, tol)
}
