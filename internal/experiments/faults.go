package experiments

import (
	"fmt"
	"strings"

	"mobilecache/internal/config"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
)

func init() {
	register("E21", "Retention-fault sensitivity of the STT-RAM designs",
		"the paper's retention targets assume ideal cells; stochastic thermal-tail faults add expiry/refill work and dirty-data losses that erode the energy win as BER grows",
		runE21)
}

// e21BERs spans ideal cells to a pessimistic 1e-3 per-fill fault rate.
var e21BERs = []float64{0, 1e-5, 1e-4, 5e-4, 1e-3}

// faultedMachine returns a copy of a standard machine with retention
// faults injected into every STT-RAM segment. Segments are copied
// before mutation so the caller's config (and the standard-machine
// tables) stay pristine.
func faultedMachine(name string, ber float64, seed uint64) (config.Machine, error) {
	m, err := sim.MachineByName(name)
	if err != nil {
		return config.Machine{}, err
	}
	stt := 0
	for _, sp := range []**config.Segment{&m.Unified, &m.User, &m.Kernel} {
		if *sp == nil || !strings.HasPrefix((*sp).Tech, "stt") {
			continue
		}
		seg := **sp
		seg.FaultBER = ber
		seg.FaultSeed = seed
		*sp = &seg
		stt++
	}
	if stt == 0 {
		return config.Machine{}, fmt.Errorf("E21: machine %s has no STT-RAM segment to fault", name)
	}
	return m, nil
}

// runE21 sweeps the per-fill retention-fault rate on the two headline
// STT-RAM designs and reports how energy, miss rate and data loss
// respond. Faults are seeded from the run seed, so the sweep is
// deterministic.
func runE21(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	machines := []string{"sp-mr", "dp-sr"}

	tb := report.NewTable(fmt.Sprintf("E21: retention-fault sensitivity (app %s)", app.Name),
		"machine", "fault BER", "L2 energy", "L2 missrate", "fault expiries", "dirty losses", "IPC")
	for _, name := range machines {
		var baseE float64
		for _, ber := range e21BERs {
			cfg, err := faultedMachine(name, ber, opts.Seed*0x9e3779b9+7)
			if err != nil {
				return res, err
			}
			rep, err := runWorkload(opts, cfg, app, appSeed(opts.Seed, 0))
			if err != nil {
				return res, err
			}
			tb.AddRow(name, fmt.Sprintf("%.0e", ber),
				report.Joules(rep.L2EnergyJ()), report.Pct(rep.L2.MissRate()),
				fmt.Sprint(rep.L2.FaultExpiries), fmt.Sprint(rep.L2.DirtyExpiries),
				fmt.Sprintf("%.4f", rep.IPC()))
			key := fmt.Sprintf("%s_ber%.0e", name, ber)
			res.addValue("l2_energy_"+key, rep.L2EnergyJ())
			res.addValue("missrate_"+key, rep.L2.MissRate())
			res.addValue("fault_expiries_"+key, float64(rep.L2.FaultExpiries))
			res.addValue("dirty_expiries_"+key, float64(rep.L2.DirtyExpiries))
			if ber == 0 {
				baseE = rep.L2EnergyJ()
			}
		}
		worst := res.Values[fmt.Sprintf("l2_energy_%s_ber%.0e", name, e21BERs[len(e21BERs)-1])]
		if baseE > 0 {
			res.addValue("energy_overhead_pct_"+name, 100*(worst-baseE)/baseE)
			res.addNote("%s: a %.0e per-fill fault rate costs %+.2f%% L2 energy over ideal cells",
				name, e21BERs[len(e21BERs)-1], 100*(worst-baseE)/baseE)
		}
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("faults strike inside the refresh-scan period, so dirty losses appear even under periodic refresh — the reliability cost the retention-relaxed designs must budget for")
	return res, nil
}
